// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VI), one benchmark per artifact, plus ablations of the design choices
// DESIGN.md calls out. The per-figure benches run tiny variants so the
// whole suite finishes in minutes; cmd/accqoc-repro runs the full-size
// versions and EXPERIMENTS.md records the outcomes.
package accqoc_test

import (
	"io"
	"testing"

	"accqoc/internal/cmat"
	"accqoc/internal/experiments"
	"accqoc/internal/gate"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/optimize"
	"accqoc/internal/partition"
	"accqoc/internal/precompile"
	"accqoc/internal/simgraph"
	"accqoc/internal/similarity"
	"accqoc/internal/workload"
)

// benchScale shrinks every experiment so one iteration is seconds, not
// minutes.
func benchScale() experiments.Scale {
	sc := experiments.SmallScale()
	sc.Name = "bench"
	sc.ProfilePrograms = 2
	sc.TargetPrograms = 2
	sc.ProgramGates = [2]int{40, 80}
	sc.Fig11Programs = 3
	sc.AccelGroups = 5
	sc.Fig13Groups = 4
	sc.Fig14Gates = []int{100, 300, 600}
	sc.Fig15Programs = 1
	sc.Fig15Gates = 12
	sc.Grape = grape.Options{TargetInfidelity: 1e-2, MaxIterations: 200, Restarts: -1, Seed: 2}
	sc.Search1Q = grape.SearchOptions{MinDuration: 10, MaxDuration: 120, Resolution: 30}
	sc.Search2Q = grape.SearchOptions{MinDuration: 200, MaxDuration: 1400, Resolution: 300}
	return sc
}

func BenchmarkTable1Policies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(io.Discard)
	}
}

func BenchmarkTable2InstructionMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(io.Discard)
	}
}

func BenchmarkFigure5Crosstalk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5(io.Discard)
	}
}

func BenchmarkFigure7Coverage(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8SimilarityFunctions(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11CrosstalkMapping(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12LatencyReduction(b *testing.B) {
	sc := benchScale()
	p, err := workload.Random("bench12", 5, 30, 77)
	if err != nil {
		b.Fatal(err)
	}
	sc.Fig12Custom = []*workload.Program{p}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13IterationReduction(b *testing.B) {
	sc := benchScale()
	sc.TargetPrograms = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure14GroupGrowth(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure15AccQOCvsBruteForce(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations of DESIGN.md §4 choices ---

// BenchmarkAblationWarmStart compares cold-start training of a small group
// family against MST warm starts.
func BenchmarkAblationWarmStart(b *testing.B) {
	var groups []*grouping.Group
	for i := 0; i < 5; i++ {
		groups = append(groups, &grouping.Group{
			Qubits: []int{0},
			Gates:  []gate.Instance{gate.MustInstance(gate.RZ, []int{0}, 0.4+0.1*float64(i))},
		})
	}
	uniq, err := grouping.Deduplicate(groups)
	if err != nil {
		b.Fatal(err)
	}
	cfg := precompile.Config{Grape: grape.Options{TargetInfidelity: 1e-3, MaxIterations: 300, Seed: 1}}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cold, _, err := precompile.AccelerationStudy(uniq, nil, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(cold.Iterations), "iters")
		}
	})
	b.Run("mst-warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, arms, err := precompile.AccelerationStudy(uniq, []similarity.Func{similarity.TraceFid}, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(arms[0].Iterations), "iters")
		}
	})
}

// BenchmarkAblationGradient compares the exact eigenbasis gradient against
// the first-order GRAPE formula on the same compilation.
func BenchmarkAblationGradient(b *testing.B) {
	h, err := gate.Unitary(gate.H, nil)
	if err != nil {
		b.Fatal(err)
	}
	sys := hamiltonian.OneQubit(hamiltonian.Config{})
	for _, mode := range []grape.GradientMode{grape.GradientExact, grape.GradientFirstOrder} {
		b.Run(string(mode), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := grape.Compile(sys, h, 50,
					grape.Options{Segments: 12, TargetInfidelity: 1e-4, Seed: 3, Gradient: mode}, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Iterations), "iters")
			}
		})
	}
}

// BenchmarkAblationOptimizer compares the §IV-D optimizer menu on one
// compilation task.
func BenchmarkAblationOptimizer(b *testing.B) {
	h, err := gate.Unitary(gate.H, nil)
	if err != nil {
		b.Fatal(err)
	}
	sys := hamiltonian.OneQubit(hamiltonian.Config{})
	for _, m := range []optimize.Method{optimize.BFGS, optimize.LBFGS, optimize.ADAM} {
		b.Run(string(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := grape.Compile(sys, h, 50,
					grape.Options{Segments: 12, TargetInfidelity: 1e-4, Seed: 3, Method: m, MaxIterations: 3000}, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Iterations), "iters")
			}
		})
	}
}

// BenchmarkAblationExpm compares the Hermitian-eigendecomposition
// propagator against the general Padé exponential.
func BenchmarkAblationExpm(b *testing.B) {
	sys := hamiltonian.TwoQubit(hamiltonian.Config{})
	hm := sys.Assemble([]float64{0.03, -0.02, 0.01, 0.04})
	b.Run("hermitian-eigen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cmat.ExpmHermitian(hm, -20); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pade", func(b *testing.B) {
		arg := cmat.Scale(complex(0, -20), hm)
		for i := 0; i < b.N; i++ {
			if _, err := cmat.Expm(arg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMSTOrder compares MST-ordered warm starts against the
// naive sequential ordering on the same category.
func BenchmarkAblationMSTOrder(b *testing.B) {
	var us []*cmat.Matrix
	for i := 0; i < 6; i++ {
		u, err := gate.Unitary(gate.RZ, []float64{0.3 + 0.37*float64(i)})
		if err != nil {
			b.Fatal(err)
		}
		us = append(us, u)
	}
	sys := hamiltonian.OneQubit(hamiltonian.Config{})
	opts := grape.Options{Segments: 12, TargetInfidelity: 1e-3, Seed: 5, MaxIterations: 300}
	runSeq := func(steps []simgraph.Step) int {
		trained := make(map[int]*grape.Result)
		total := 0
		for _, s := range steps {
			var res *grape.Result
			var err error
			if prev := trained[s.WarmFrom]; s.WarmFrom >= 0 && prev != nil {
				res, err = grape.Compile(sys, us[s.Group], 60, opts, prev.Pulse)
			} else {
				res, err = grape.Compile(sys, us[s.Group], 60, opts, nil)
			}
			if err != nil {
				b.Fatal(err)
			}
			total += res.Iterations
			trained[s.Group] = res
		}
		return total
	}
	g, err := simgraph.Build(us, similarity.TraceFid)
	if err != nil {
		b.Fatal(err)
	}
	mst, err := g.PrimMST(0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("mst-order", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(float64(runSeq(mst.CompilationSequence())), "iters")
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(float64(runSeq(simgraph.SequentialSequence(len(us)))), "iters")
		}
	})
}

// BenchmarkAblationPartition compares the balanced MST partition against
// round-robin assignment, reporting makespans.
func BenchmarkAblationPartition(b *testing.B) {
	parent := make([]int, 40)
	weight := make([]float64, 40)
	parent[0] = -1
	for i := 1; i < 40; i++ {
		parent[i] = (i - 1) / 2 // binary-ish tree
		weight[i] = float64(1 + i%7)
	}
	weight[0] = 5
	tree, err := partition.NewTree(parent, weight)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("balanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := partition.Balanced(tree, 4)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Makespan, "makespan")
		}
	})
	b.Run("round-robin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := partition.RoundRobin(tree, 4)
			b.ReportMetric(res.Makespan, "makespan")
		}
	})
}
