package accqoc

import (
	"math"
	"testing"

	"accqoc/internal/circuit"
	"accqoc/internal/cmat"
	"accqoc/internal/gate"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/mapping"
	"accqoc/internal/precompile"
	"accqoc/internal/pulse"
	"accqoc/internal/similarity"
	"accqoc/internal/topology"
)

// fastOptions keeps GRAPE cheap for integration tests: loose fidelity,
// tight iteration caps, narrow search brackets.
func fastOptions(dev *topology.Device) Options {
	return Options{
		Device: dev,
		Policy: grouping.Map2b4l,
		Precompile: precompile.Config{
			Grape:    grape.Options{TargetInfidelity: 1e-2, MaxIterations: 300, Seed: 1},
			Search1Q: grape.SearchOptions{MinDuration: 10, MaxDuration: 120, Resolution: 20},
			Search2Q: grape.SearchOptions{MinDuration: 200, MaxDuration: 1400, Resolution: 200},
		},
	}
}

// smallProgram: a 3-qubit mix that maps onto a linear device with a couple
// of two-qubit groups.
func smallProgram() *circuit.Circuit {
	c := circuit.New(3)
	c.MustAppend(gate.H, []int{0})
	c.MustAppend(gate.CX, []int{0, 1})
	c.MustAppend(gate.T, []int{1})
	c.MustAppend(gate.CX, []int{1, 2})
	c.MustAppend(gate.H, []int{2})
	return c
}

func TestNewDefaults(t *testing.T) {
	c := New(Options{})
	if c.Options().Device.Name != "ibmq-melbourne" {
		t.Fatal("default device should be Melbourne")
	}
	if c.Options().Policy.Name != "map2b4l" {
		t.Fatal("default policy should be map2b4l (the paper's best)")
	}
	if !c.Options().Mapping.CrosstalkAware {
		t.Fatal("crosstalk-aware mapping should default on")
	}
}

func TestDisableCrosstalkAware(t *testing.T) {
	c := New(Options{DisableCrosstalkAware: true})
	if c.Options().Mapping.CrosstalkAware {
		t.Fatal("DisableCrosstalkAware must switch crosstalk-aware mapping off")
	}
	// A custom weight alone must not flip the opt-out back on (the old
	// behavior overloaded CrosstalkWeight == 0 as the enable condition).
	c = New(Options{DisableCrosstalkAware: true, Mapping: mapping.Options{CrosstalkWeight: 1.5}})
	if c.Options().Mapping.CrosstalkAware {
		t.Fatal("custom CrosstalkWeight must not override the opt-out")
	}
	// And with a custom weight but no opt-out, the default still applies.
	c = New(Options{Mapping: mapping.Options{CrosstalkWeight: 1.5}})
	if !c.Options().Mapping.CrosstalkAware {
		t.Fatal("custom CrosstalkWeight must keep the crosstalk-aware default")
	}
}

func TestPrepare(t *testing.T) {
	c := New(fastOptions(topology.Linear(3)))
	prep, err := c.Prepare(smallProgram())
	if err != nil {
		t.Fatal(err)
	}
	if prep.Physical.GateCount() == 0 {
		t.Fatal("empty physical circuit")
	}
	if len(prep.Grouping.Groups) == 0 {
		t.Fatal("no groups")
	}
	for _, g := range prep.Grouping.Groups {
		if len(g.Qubits) > 2 {
			t.Fatal("policy violated: group wider than 2 qubits")
		}
	}
	// map2b4l decomposes swaps: none may survive.
	for _, g := range prep.Physical.Gates {
		if g.Name == gate.Swap {
			t.Fatal("swap survived map-policy lowering")
		}
	}
}

func TestPrepareCCXDecomposition(t *testing.T) {
	c := New(fastOptions(topology.Linear(3)))
	prog := circuit.New(3)
	prog.MustAppend(gate.CCX, []int{0, 1, 2})
	prep, err := c.Prepare(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range prep.Physical.Gates {
		if g.Name == gate.CCX {
			t.Fatal("CCX survived preparation")
		}
	}
}

func TestCompileEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	c := New(fastOptions(topology.Linear(3)))
	res, err := c.Compile(smallProgram())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalGroups == 0 {
		t.Fatal("no groups compiled")
	}
	if res.OverallLatencyNs <= 0 {
		t.Fatal("overall latency not computed")
	}
	if res.GateBasedLatencyNs <= 0 {
		t.Fatal("baseline latency not computed")
	}
	if res.LatencyReduction <= 1 {
		t.Errorf("QOC latency %.0f ns did not beat gate-based %.0f ns",
			res.OverallLatencyNs, res.GateBasedLatencyNs)
	}
	if res.EstimatedFidelity <= 0 || res.EstimatedFidelity > 1 {
		t.Fatalf("fidelity estimate %v out of range", res.EstimatedFidelity)
	}
	if res.TrainingIterations == 0 {
		t.Fatal("cold compile should have trained groups")
	}
	t.Logf("latency: QOC %.0f ns vs gate-based %.0f ns (%.2fx), coverage %.0f%%, %d iters",
		res.OverallLatencyNs, res.GateBasedLatencyNs, res.LatencyReduction,
		100*res.CoverageRate, res.TrainingIterations)
}

func TestLibraryGrowsAcrossCompiles(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	c := New(fastOptions(topology.Linear(3)))
	first, err := c.Compile(smallProgram())
	if err != nil {
		t.Fatal(err)
	}
	if first.CoverageRate == 1 {
		t.Fatal("first compile should start uncovered")
	}
	second, err := c.Compile(smallProgram())
	if err != nil {
		t.Fatal(err)
	}
	if second.CoverageRate != 1 {
		t.Fatalf("second compile coverage = %v, want 1 (library reuse)", second.CoverageRate)
	}
	if second.TrainingIterations != 0 {
		t.Fatal("covered compile must not train")
	}
	if second.OverallLatencyNs != first.OverallLatencyNs {
		t.Fatalf("latency changed across identical compiles: %v vs %v",
			first.OverallLatencyNs, second.OverallLatencyNs)
	}
}

func TestProfileThenCompile(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	c := New(fastOptions(topology.Linear(3)))
	prof, err := c.Profile([]*circuit.Circuit{smallProgram()})
	if err != nil {
		t.Fatal(err)
	}
	if prof.UniqueGroups == 0 || prof.Stats.TotalIterations == 0 {
		t.Fatalf("profile did nothing: %+v", prof)
	}
	res, err := c.Compile(smallProgram())
	if err != nil {
		t.Fatal(err)
	}
	if res.CoverageRate != 1 {
		t.Fatalf("profiled program coverage = %v, want 1", res.CoverageRate)
	}
}

func TestCompileBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	c := New(fastOptions(topology.Linear(3)))
	prog := circuit.New(2)
	prog.MustAppend(gate.H, []int{0})
	prog.MustAppend(gate.CX, []int{0, 1})
	res, err := c.CompileBruteForce(prog, BruteForceOptions{MaxQubits: 2, MaxLayers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueGroups == 0 || res.OverallLatencyNs <= 0 {
		t.Fatalf("brute force result: %+v", res)
	}
	if res.LatencyReduction <= 1 {
		t.Errorf("brute force should beat gate-based: %+v", res)
	}
}

func TestCompileEmptyProgram(t *testing.T) {
	c := New(fastOptions(topology.Linear(3)))
	res, err := c.Compile(circuit.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.OverallLatencyNs != 0 || res.CoverageRate != 1 {
		t.Fatalf("empty program: %+v", res)
	}
}

func TestSetLibraryRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	c1 := New(fastOptions(topology.Linear(3)))
	if _, err := c1.Compile(smallProgram()); err != nil {
		t.Fatal(err)
	}
	c2 := New(fastOptions(topology.Linear(3)))
	c2.SetLibrary(c1.Library())
	res, err := c2.Compile(smallProgram())
	if err != nil {
		t.Fatal(err)
	}
	if res.CoverageRate != 1 {
		t.Fatal("transplanted library should fully cover")
	}
}

// TestLibrarySeedL1AdmitsSimilar2QNeighbor is the regression for the
// fixed librarySeed threshold: it used a flat 0.5 cut-off for every
// similarity function, but entry-wise L1 distances between 4×4 unitaries
// live on a ~d·√d scale (WarmThreshold(L1, 4) = 2.0), so genuinely
// similar 2Q neighbors were silently rejected. The test builds a library
// entry, queries with a unitary whose L1 distance is provably above the
// old cut-off and below the correct one, and requires the seed to be
// admitted.
func TestLibrarySeedL1AdmitsSimilar2QNeighbor(t *testing.T) {
	opts := fastOptions(topology.Linear(3))
	opts.Precompile.Similarity = similarity.L1
	c := New(opts)

	sys, err := hamiltonian.ForQubits(2, opts.Precompile.Ham)
	if err != nil {
		t.Fatal(err)
	}
	// A handmade (untrained) pulse is fine: librarySeed only compares the
	// entry's achieved unitary with the query.
	p := pulse.New(sys.ControlNames, 16, 10)
	for ch := range p.Amps {
		for s := range p.Amps[ch] {
			p.Amps[ch][s] = 0.002 * float64((ch+1)*(s+1))
		}
	}
	lib := precompile.NewLibrary()
	lib.Entries["neighbor"] = &precompile.Entry{
		Key: "neighbor", NumQubits: 2, Pulse: p, LatencyNs: p.Duration(),
	}
	c.SetLibrary(lib)

	base := grape.Propagate(sys, p)
	// Search for a phase perturbation that lands strictly between the old
	// flat threshold and the dimension-correct one.
	oldThreshold := 0.5
	newThreshold := similarity.WarmThreshold(similarity.L1, sys.Dim)
	var query *cmat.Matrix
	var dist float64
	for theta := 0.05; theta < 3.2; theta += 0.05 {
		ph := complex(math.Cos(theta/2), math.Sin(theta/2))
		rot := cmat.FromRows([][]complex128{
			{1 / ph, 0, 0, 0},
			{0, 1 / ph, 0, 0},
			{0, 0, ph, 0},
			{0, 0, 0, ph},
		})
		q := cmat.Mul(base, rot)
		d, derr := similarity.Distance(similarity.L1, q, base)
		if derr != nil {
			t.Fatal(derr)
		}
		if d > oldThreshold+0.1 && d < newThreshold-0.1 {
			query, dist = q, d
			break
		}
	}
	if query == nil {
		t.Fatal("could not construct a query in the regression window")
	}

	seed, hint := c.librarySeed(query, 2)
	if seed == nil {
		t.Fatalf("L1 neighbor at distance %.3f (old cut-off %.1f, correct threshold %.1f) rejected as seed",
			dist, oldThreshold, newThreshold)
	}
	if hint != p.Duration() {
		t.Fatalf("seed hint %v, want entry latency %v", hint, p.Duration())
	}

	// Sanity: a maximally dissimilar query is still rejected under the
	// correct threshold.
	var rows [][]complex128
	for i := 0; i < 4; i++ {
		row := make([]complex128, 4)
		row[3-i] = 1i
		rows = append(rows, row)
	}
	if far, _ := c.librarySeed(cmat.FromRows(rows), 2); far != nil {
		t.Fatal("anti-diagonal unitary admitted as L1 seed")
	}
}
