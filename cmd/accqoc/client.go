package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"accqoc/internal/server"
)

// runClient drives a running accqoc-server: it sends the same compile
// request n times with the given concurrency and reports how request
// latency collapses once the pulse library is warm, then prints the
// server's /v1/library/stats.
func runClient(baseURL, inPath, workloadSpec string, n, concurrency int) error {
	var req server.CompileRequest
	switch {
	case inPath != "" && workloadSpec != "":
		return fmt.Errorf("set exactly one of -in, -workload")
	case inPath != "":
		src, err := os.ReadFile(inPath)
		if err != nil {
			return err
		}
		req.QASM = string(src)
	case workloadSpec != "":
		req.Workload = workloadSpec
	default:
		return fmt.Errorf("client mode needs -in or -workload")
	}
	if n < 1 {
		n = 1
	}
	if concurrency < 1 {
		concurrency = 1
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}

	type sample struct {
		idx   int
		wall  time.Duration
		resp  server.CompileResponse
		err   error
		debug string
	}
	samples := make([]sample, n)

	// The first request runs alone so the cold-path cost is unambiguous;
	// the rest fan out with the requested concurrency against the now-warm
	// (or warming) library.
	post := func(i int) {
		start := time.Now()
		resp, err := http.Post(baseURL+"/v1/compile", "application/json", bytes.NewReader(body))
		s := sample{idx: i, wall: time.Since(start)}
		if err != nil {
			s.err = err
		} else {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				raw, _ := io.ReadAll(resp.Body)
				s.err = fmt.Errorf("status %d", resp.StatusCode)
				s.debug = string(raw)
			} else if derr := json.NewDecoder(resp.Body).Decode(&s.resp); derr != nil {
				s.err = derr
			}
		}
		samples[i] = s
	}

	post(0)
	if samples[0].err != nil {
		return fmt.Errorf("request 0: %w (%s)", samples[0].err, samples[0].debug)
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, concurrency)
	loadStart := time.Now()
	for i := 1; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			post(i)
		}(i)
	}
	wg.Wait()
	loadElapsed := time.Since(loadStart)

	cold := samples[0]
	fmt.Printf("cold request: %v wall, %.1f ms compile, coverage %.0f%%, %d groups trained\n",
		cold.wall.Round(time.Millisecond), cold.resp.CompileMillis,
		100*cold.resp.CoverageRate, cold.resp.UncoveredUnique)

	var warm []time.Duration
	warmServed := 0
	failed := 0
	for _, s := range samples[1:] {
		if s.err != nil {
			failed++
			continue
		}
		warm = append(warm, s.wall)
		if s.resp.WarmServed {
			warmServed++
		}
	}
	if len(warm) > 0 {
		sort.Slice(warm, func(i, j int) bool { return warm[i] < warm[j] })
		median := warm[len(warm)/2]
		fmt.Printf("warm requests: %d sent with concurrency %d in %v (%d warm-served, %d failed)\n",
			len(warm)+failed, concurrency, loadElapsed.Round(time.Millisecond), warmServed, failed)
		fmt.Printf("warm latency: median %v, p0 %v, p100 %v\n",
			median.Round(time.Microsecond), warm[0].Round(time.Microsecond), warm[len(warm)-1].Round(time.Microsecond))
		if median > 0 {
			fmt.Printf("cold/warm speedup: %.1fx\n", float64(cold.wall)/float64(median))
		}
	}

	stats, err := fetchStats(baseURL)
	if err != nil {
		return err
	}
	fmt.Printf("library: %d entries, %d hits, %d misses, %d trainings, %d deduped, %d evictions\n",
		stats.Library.Entries, stats.Library.Hits, stats.Library.Misses,
		stats.Library.Trainings, stats.Library.DedupSuppressed, stats.Library.Evictions)
	fmt.Printf("server:  %d requests, %d failures, %d rejected, %.1f ms total compile, up %.0fs\n",
		stats.Server.Requests, stats.Server.Failures, stats.Server.Rejected,
		stats.Server.TotalCompileMillis, stats.Server.UptimeSeconds)
	return nil
}

func fetchStats(baseURL string) (*server.StatsResponse, error) {
	resp, err := http.Get(baseURL + "/v1/library/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
