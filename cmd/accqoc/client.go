package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"accqoc/internal/jobs"
	"accqoc/internal/server"
)

// deviceWeight is one entry of the -devices traffic mix.
type deviceWeight struct {
	name   string
	weight float64
}

// parseDeviceMix parses a weighted device mix spec like
// "melbourne:0.7,linear5:0.3". Weights must be positive; they are treated
// as ratios (no need to sum to 1). A bare name gets weight 1.
func parseDeviceMix(spec string) ([]deviceWeight, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []deviceWeight
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, hasW := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("device mix %q: empty device name", spec)
		}
		w := 1.0
		if hasW {
			var err error
			w, err = strconv.ParseFloat(strings.TrimSpace(wstr), 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("device mix %q: bad weight for %s", spec, name)
			}
		}
		out = append(out, deviceWeight{name: name, weight: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("device mix %q: no devices", spec)
	}
	return out, nil
}

// assignDevices deterministically spreads n requests across the mix with
// smooth weighted round-robin, so a 0.7/0.3 mix interleaves 7:3 instead of
// sending two monolithic blocks (which would hide cross-device
// interference on the server).
func assignDevices(mix []deviceWeight, n int) []string {
	if len(mix) == 0 {
		return make([]string, n)
	}
	out := make([]string, n)
	cur := make([]float64, len(mix))
	var total float64
	for _, m := range mix {
		total += m.weight
	}
	for i := 0; i < n; i++ {
		best := 0
		for j := range mix {
			cur[j] += mix[j].weight
			if cur[j] > cur[best] {
				best = j
			}
		}
		cur[best] -= total
		out[i] = mix[best].name
	}
	return out
}

// percentile returns the p-th percentile (0..100) of an ascending-sorted
// latency slice, interpolating linearly between the two closest ranks so
// small samples don't snap to min/max the way nearest-rank does.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo] + time.Duration(frac*float64(sorted[lo+1]-sorted[lo]))
}

// deviceSummary is one per-device row of the -json report.
type deviceSummary struct {
	Device    string  `json:"device"`
	Requests  int     `json:"requests"`
	Failed    int     `json:"failed,omitempty"`
	MedianMs  float64 `json:"median_ms,omitempty"`
	WarmHits  int     `json:"warm_served"`
	Seeded    int     `json:"warm_seeded_trainings"`
	GrapeIter int     `json:"grape_iterations"`
}

// groupSizeSummary is one per-group-size row of the -circuits report: how
// much of the scheduled program each group dimension contributes. With a
// 3Q policy enabled server-side this is where the group-size frontier
// becomes visible from the client — fewer, longer slots at size 3.
type groupSizeSummary struct {
	Size            int     `json:"size"`
	Slots           int     `json:"slots"`
	TotalDurationNs float64 `json:"total_duration_ns"`
	MeanDurationNs  float64 `json:"mean_duration_ns"`
	MakespanShare   float64 `json:"makespan_share,omitempty"`
}

// clientSummary is the machine-readable loadgen report emitted by -json,
// replacing hand-rolled BENCH_*.json capture.
type clientSummary struct {
	Endpoint    string `json:"endpoint"`
	Requests    int    `json:"requests"`
	Concurrency int    `json:"concurrency"`

	ColdWallMs    float64 `json:"cold_wall_ms"`
	ColdCompileMs float64 `json:"cold_compile_ms"`
	ColdCoverage  float64 `json:"cold_coverage"`
	GroupsTrained int     `json:"groups_trained"`

	// Circuit-mode schedule view (zero unless -circuits).
	Slots            int                `json:"slots,omitempty"`
	MakespanNs       float64            `json:"makespan_ns,omitempty"`
	GateLatencyNs    float64            `json:"gate_latency_ns,omitempty"`
	LatencyReduction float64            `json:"latency_reduction,omitempty"`
	GroupSizes       []groupSizeSummary `json:"group_sizes,omitempty"`

	WarmRequests  int     `json:"warm_requests"`
	WarmFailed    int     `json:"warm_failed"`
	WarmServed    int     `json:"warm_served"`
	WarmElapsedMs float64 `json:"warm_elapsed_ms"`
	WarmP50Ms     float64 `json:"warm_p50_ms"`
	WarmP95Ms     float64 `json:"warm_p95_ms"`
	WarmP99Ms     float64 `json:"warm_p99_ms"`
	WarmMeanCov   float64 `json:"warm_mean_coverage,omitempty"`
	Speedup       float64 `json:"cold_warm_speedup,omitempty"`

	// Async-mode breakdown (absent unless -async). In async mode the
	// wall/warm latencies above are end-to-end submit→done times; these
	// fields isolate the 202 submit round-trip, i.e. the latency the
	// routing tier answers with before any training happens.
	Async            bool    `json:"async,omitempty"`
	AsyncSubmitP50Ms float64 `json:"async_submit_p50_ms,omitempty"`
	AsyncSubmitP95Ms float64 `json:"async_submit_p95_ms,omitempty"`
	AsyncJobsFailed  int     `json:"async_jobs_failed,omitempty"`

	Devices []deviceSummary   `json:"devices,omitempty"`
	Library libstoreStatsWire `json:"library"`
	Server  serverStatsWire   `json:"server"`
}

// libstoreStatsWire / serverStatsWire mirror the fields of
// /v1/library/stats the text report already prints.
type libstoreStatsWire struct {
	Entries         int64 `json:"entries"`
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	Trainings       int64 `json:"trainings"`
	DedupSuppressed int64 `json:"deduped"`
	Evictions       int64 `json:"evictions"`
}

type serverStatsWire struct {
	Requests           int64   `json:"requests"`
	Failures           int64   `json:"failures"`
	Rejected           int64   `json:"rejected"`
	TotalCompileMillis float64 `json:"total_compile_ms"`
	UptimeSeconds      float64 `json:"uptime_seconds"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// runClient drives a running accqoc-server: it sends the same compile
// request n times with the given concurrency — optionally spread across a
// weighted multi-device mix — and reports how request latency collapses
// once the pulse libraries are warm, with a per-device breakdown, then
// prints the server's /v1/library/stats. With circuits set it exercises
// the whole-program endpoint (POST /v1/circuits/compile) instead, adding
// the scheduled-pulse-program view: makespan, slot count, coverage. With
// async set every request goes through the async job API — POST
// ?async=1, collect the 202 job envelope, poll GET /v1/jobs/{id} to a
// terminal state — so wall times become end-to-end submit→done and the
// report gains the submit round-trip percentiles. With jsonOut set the
// human-readable report is replaced by one clientSummary JSON document
// on stdout.
func runClient(baseURL, inPath, workloadSpec, deviceMix string, n, concurrency int, circuits, async, jsonOut bool) error {
	var req server.CompileRequest
	switch {
	case inPath != "" && workloadSpec != "":
		return fmt.Errorf("set exactly one of -in, -workload")
	case inPath != "":
		src, err := os.ReadFile(inPath)
		if err != nil {
			return err
		}
		req.QASM = string(src)
	case workloadSpec != "":
		req.Workload = workloadSpec
	default:
		return fmt.Errorf("client mode needs -in or -workload")
	}
	if n < 1 {
		n = 1
	}
	if concurrency < 1 {
		concurrency = 1
	}
	mix, err := parseDeviceMix(deviceMix)
	if err != nil {
		return err
	}
	devices := assignDevices(mix, n)

	type sample struct {
		idx    int
		device string
		wall   time.Duration
		// submit is the 202 round-trip in -async mode (zero otherwise);
		// wall then covers submit through the terminal poll.
		submit time.Duration
		resp   server.CompileResponse
		// makespan/slots/sizes carry the schedule view in -circuits mode.
		makespan float64
		slots    int
		sizes    map[int]groupSizeSummary
		// jobFailed marks an async job that was accepted but finished in
		// the failed state (as opposed to a transport/submit error).
		jobFailed bool
		err       error
		debug     string
	}
	samples := make([]sample, n)

	endpoint := "/v1/compile"
	if circuits {
		endpoint = "/v1/circuits/compile"
	}

	// decodeResult parses one compile result payload — a sync response
	// body or an async job's embedded result — into the sample.
	decodeResult := func(s *sample, data []byte) {
		if circuits {
			var cr server.CircuitResponse
			if derr := json.Unmarshal(data, &cr); derr != nil {
				s.err = derr
				return
			}
			s.resp = cr.Compile
			s.makespan = cr.MakespanNs
			s.slots = len(cr.Schedule)
			s.sizes = map[int]groupSizeSummary{}
			for _, sp := range cr.Schedule {
				g := s.sizes[len(sp.Qubits)]
				g.Size = len(sp.Qubits)
				g.Slots++
				g.TotalDurationNs += sp.DurationNs
				s.sizes[g.Size] = g
			}
			return
		}
		if derr := json.Unmarshal(data, &s.resp); derr != nil {
			s.err = derr
		}
	}

	// postAsync drives one request through the job API: submit with
	// ?async=1, collect the 202 envelope, poll the job to a terminal
	// state. wall covers submit through the terminal poll; submit holds
	// the 202 round-trip alone — the routing tier's answer time.
	postAsync := func(i int, payload []byte) sample {
		s := sample{idx: i, device: devices[i]}
		start := time.Now()
		resp, err := http.Post(baseURL+endpoint+"?async=1", "application/json", bytes.NewReader(payload))
		if err != nil {
			s.err = err
			return s
		}
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		s.submit = time.Since(start)
		s.wall = s.submit
		var acc server.AsyncAccepted
		switch {
		case rerr != nil:
			s.err = rerr
			return s
		case resp.StatusCode != http.StatusAccepted:
			s.err = fmt.Errorf("status %d", resp.StatusCode)
			s.debug = string(raw)
			return s
		default:
			if derr := json.Unmarshal(raw, &acc); derr != nil {
				s.err = derr
				return s
			}
		}
		deadline := time.Now().Add(2 * time.Minute)
		for {
			jr, jerr := http.Get(baseURL + acc.Poll)
			if jerr != nil {
				s.err = jerr
				break
			}
			var job jobs.Job
			derr := json.NewDecoder(jr.Body).Decode(&job)
			jr.Body.Close()
			switch {
			case jr.StatusCode != http.StatusOK:
				s.err = fmt.Errorf("poll %s: status %d", acc.JobID, jr.StatusCode)
			case derr != nil:
				s.err = derr
			case job.State == jobs.StateDone:
				decodeResult(&s, job.Result)
			case job.State == jobs.StateFailed:
				s.jobFailed = true
				s.err = fmt.Errorf("job %s failed: %s", acc.JobID, job.Error)
			case time.Now().After(deadline):
				s.err = fmt.Errorf("job %s: poll deadline exceeded in state %s", acc.JobID, job.State)
			default:
				time.Sleep(2 * time.Millisecond)
				continue
			}
			break
		}
		s.wall = time.Since(start)
		return s
	}

	// The first request runs alone so the cold-path cost is unambiguous;
	// the rest fan out with the requested concurrency against the now-warm
	// (or warming) libraries.
	post := func(i int) {
		body := req
		body.Device = devices[i]
		payload, merr := json.Marshal(body)
		if merr != nil {
			samples[i] = sample{idx: i, device: devices[i], err: merr}
			return
		}
		if async {
			samples[i] = postAsync(i, payload)
			return
		}
		start := time.Now()
		resp, err := http.Post(baseURL+endpoint, "application/json", bytes.NewReader(payload))
		s := sample{idx: i, device: devices[i], wall: time.Since(start)}
		if err != nil {
			s.err = err
		} else {
			raw, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case rerr != nil:
				s.err = rerr
			case resp.StatusCode != http.StatusOK:
				s.err = fmt.Errorf("status %d", resp.StatusCode)
				s.debug = string(raw)
			default:
				decodeResult(&s, raw)
			}
		}
		samples[i] = s
	}

	post(0)
	if samples[0].err != nil {
		return fmt.Errorf("request 0: %w (%s)", samples[0].err, samples[0].debug)
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, concurrency)
	loadStart := time.Now()
	for i := 1; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			post(i)
		}(i)
	}
	wg.Wait()
	loadElapsed := time.Since(loadStart)

	cold := samples[0]
	sum := clientSummary{
		Endpoint:      endpoint,
		Requests:      n,
		Concurrency:   concurrency,
		ColdWallMs:    ms(cold.wall),
		ColdCompileMs: cold.resp.CompileMillis,
		ColdCoverage:  cold.resp.CoverageRate,
		GroupsTrained: cold.resp.UncoveredUnique,
	}
	if circuits {
		sum.Slots = cold.slots
		sum.MakespanNs = cold.makespan
		sum.GateLatencyNs = cold.resp.GateLatencyNs
		sum.LatencyReduction = cold.resp.LatencyReduction
		for _, g := range cold.sizes {
			if g.Slots > 0 {
				g.MeanDurationNs = g.TotalDurationNs / float64(g.Slots)
			}
			if cold.makespan > 0 {
				g.MakespanShare = g.TotalDurationNs / cold.makespan
			}
			sum.GroupSizes = append(sum.GroupSizes, g)
		}
		sort.Slice(sum.GroupSizes, func(i, j int) bool { return sum.GroupSizes[i].Size < sum.GroupSizes[j].Size })
	}
	if !jsonOut {
		fmt.Printf("cold request: %v wall, %.1f ms compile, coverage %.0f%%, %d groups trained\n",
			cold.wall.Round(time.Millisecond), cold.resp.CompileMillis,
			100*cold.resp.CoverageRate, cold.resp.UncoveredUnique)
		if circuits {
			fmt.Printf("scheduled program: %d slots, makespan %.0f ns vs %.0f ns gate-based (%.2fx)\n",
				cold.slots, cold.makespan, cold.resp.GateLatencyNs, cold.resp.LatencyReduction)
			for _, g := range sum.GroupSizes {
				fmt.Printf("  %dq groups: %d slots, %.0f ns pulse time (mean %.0f ns, %.0f%% of makespan)\n",
					g.Size, g.Slots, g.TotalDurationNs, g.MeanDurationNs, 100*g.MakespanShare)
			}
		}
	}

	var warm []time.Duration
	warmServed := 0
	failed := 0
	var covSum float64
	for _, s := range samples[1:] {
		if s.err != nil {
			failed++
			continue
		}
		warm = append(warm, s.wall)
		covSum += s.resp.CoverageRate
		if s.resp.WarmServed {
			warmServed++
		}
	}
	sum.WarmRequests = len(warm) + failed
	sum.WarmFailed = failed
	sum.WarmServed = warmServed
	sum.WarmElapsedMs = ms(loadElapsed)
	if len(warm) > 0 {
		sort.Slice(warm, func(i, j int) bool { return warm[i] < warm[j] })
		p50 := percentile(warm, 50)
		p95 := percentile(warm, 95)
		p99 := percentile(warm, 99)
		sum.WarmP50Ms, sum.WarmP95Ms, sum.WarmP99Ms = ms(p50), ms(p95), ms(p99)
		sum.WarmMeanCov = covSum / float64(len(warm))
		if p50 > 0 {
			sum.Speedup = float64(cold.wall) / float64(p50)
		}
		if !jsonOut {
			fmt.Printf("warm requests: %d sent with concurrency %d in %v (%d warm-served, %d failed)\n",
				len(warm)+failed, concurrency, loadElapsed.Round(time.Millisecond), warmServed, failed)
			fmt.Printf("warm latency: p50 %v, p95 %v, p99 %v\n",
				p50.Round(time.Microsecond), p95.Round(time.Microsecond), p99.Round(time.Microsecond))
			if p50 > 0 {
				fmt.Printf("cold/warm speedup: %.1fx\n", sum.Speedup)
			}
			if circuits {
				fmt.Printf("coverage: cold %.0f%%, warm mean %.0f%% (%d of %d fully covered)\n",
					100*cold.resp.CoverageRate, 100*covSum/float64(len(warm)), warmServed, len(warm))
			}
		}
	}

	if async {
		sum.Async = true
		var submits []time.Duration
		jobsFailed := 0
		for _, s := range samples {
			if s.jobFailed {
				jobsFailed++
			}
			if s.submit > 0 && (s.err == nil || s.jobFailed) {
				// The submit round-trip completed (202) even if the job
				// later failed; only transport/reject errors are excluded.
				submits = append(submits, s.submit)
			}
		}
		sum.AsyncJobsFailed = jobsFailed
		if len(submits) > 0 {
			sort.Slice(submits, func(i, j int) bool { return submits[i] < submits[j] })
			sum.AsyncSubmitP50Ms = ms(percentile(submits, 50))
			sum.AsyncSubmitP95Ms = ms(percentile(submits, 95))
		}
		if !jsonOut {
			fmt.Printf("async submit: p50 %.2f ms, p95 %.2f ms over %d accepted jobs (%d jobs failed); wall latencies above are submit→done\n",
				sum.AsyncSubmitP50Ms, sum.AsyncSubmitP95Ms, len(submits), jobsFailed)
		}
	}

	// Per-device breakdown: traffic share, latency, warm-serving and
	// warm-seeding per registered device of the mix.
	if len(mix) > 0 {
		if !jsonOut {
			fmt.Println("per-device breakdown:")
		}
		for _, m := range mix {
			var walls []time.Duration
			sent, devFailed, devWarm, devSeeded, iters := 0, 0, 0, 0, 0
			for _, s := range samples {
				if s.device != m.name {
					continue
				}
				sent++
				if s.err != nil {
					devFailed++
					continue
				}
				walls = append(walls, s.wall)
				if s.resp.WarmServed {
					devWarm++
				}
				devSeeded += s.resp.WarmSeeded
				iters += s.resp.TrainingIterations
			}
			ds := deviceSummary{
				Device: m.name, Requests: sent, Failed: devFailed,
				WarmHits: devWarm, Seeded: devSeeded, GrapeIter: iters,
			}
			var devMedian time.Duration
			if len(walls) > 0 {
				sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
				devMedian = percentile(walls, 50)
				ds.MedianMs = ms(devMedian)
			}
			sum.Devices = append(sum.Devices, ds)
			if !jsonOut {
				line := fmt.Sprintf("  %-12s %3d requests", m.name, sent)
				if len(walls) > 0 {
					line += fmt.Sprintf(", median %v", devMedian.Round(time.Microsecond))
				}
				line += fmt.Sprintf(", %d warm-served, %d warm-seeded trainings, %d GRAPE iters",
					devWarm, devSeeded, iters)
				if devFailed > 0 {
					line += fmt.Sprintf(", %d FAILED", devFailed)
				}
				fmt.Println(line)
			}
		}
	}

	stats, err := fetchStats(baseURL)
	if err != nil {
		return err
	}
	sum.Library = libstoreStatsWire{
		Entries:         int64(stats.Library.Entries),
		Hits:            stats.Library.Hits,
		Misses:          stats.Library.Misses,
		Trainings:       stats.Library.Trainings,
		DedupSuppressed: stats.Library.DedupSuppressed,
		Evictions:       stats.Library.Evictions,
	}
	sum.Server = serverStatsWire{
		Requests:           stats.Server.Requests,
		Failures:           stats.Server.Failures,
		Rejected:           stats.Server.Rejected,
		TotalCompileMillis: stats.Server.TotalCompileMillis,
		UptimeSeconds:      stats.Server.UptimeSeconds,
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(sum)
	}
	fmt.Printf("library: %d entries, %d hits, %d misses, %d trainings, %d deduped, %d evictions\n",
		stats.Library.Entries, stats.Library.Hits, stats.Library.Misses,
		stats.Library.Trainings, stats.Library.DedupSuppressed, stats.Library.Evictions)
	fmt.Printf("server:  %d requests, %d failures, %d rejected, %.1f ms total compile, up %.0fs\n",
		stats.Server.Requests, stats.Server.Failures, stats.Server.Rejected,
		stats.Server.TotalCompileMillis, stats.Server.UptimeSeconds)
	return nil
}

func fetchStats(baseURL string) (*server.StatsResponse, error) {
	resp, err := http.Get(baseURL + "/v1/library/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
