// Command accqoc compiles an OpenQASM 2.0 program to control pulses with
// the AccQOC workflow and reports latency against the gate-based baseline.
//
// Usage:
//
//	accqoc -in program.qasm                      # compile cold
//	accqoc -in program.qasm -lib pulses.json     # use / extend a library
//	accqoc -in program.qasm -policy swap2b3l -device linear16
//
// With -server it becomes a load-generating client against a running
// accqoc-server, demonstrating the warm-cache speedup end to end:
//
//	accqoc -server http://localhost:8080 -in program.qasm -requests 20 -concurrency 4
//	accqoc -server http://localhost:8080 -workload qft:4 -requests 10
//	accqoc -server http://localhost:8080 -workload qft:4 -devices melbourne:0.7,linear5:0.3
//	accqoc -server http://localhost:8080 -workload qft:4 -circuits     # scheduled pulse programs
//	accqoc -server http://localhost:8080 -workload qft:4 -async        # async job API: 202 + poll
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"accqoc"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/precompile"
	"accqoc/internal/qasm"
	"accqoc/internal/topology"
)

func gopts(fidelity float64, maxIter int) grape.Options {
	return grape.Options{TargetInfidelity: fidelity, MaxIterations: maxIter}
}

func main() {
	in := flag.String("in", "", "input OpenQASM 2.0 file (required unless -workload)")
	policyName := flag.String("policy", "map2b4l", "grouping policy (see Table I): map2b2l|map2b3l|map2b4l|swap2b2l|swap2b3l|swap2b4l; with -enable-3q also map3b2l|map3b3l")
	enable3Q := flag.Bool("enable-3q", false,
		"allow the 3-qubit grouping policies (map3b2l, map3b3l): dim-8 groups, much costlier GRAPE training per group")
	deviceName := flag.String("device", "melbourne", "device: melbourne | linear<N> | grid<R>x<C>")
	libPath := flag.String("lib", "", "pulse library JSON to load and update")
	fidelity := flag.Float64("fidelity", 1e-3, "GRAPE target infidelity")
	maxIter := flag.Int("max-iter", 600, "GRAPE iteration cap per optimization")
	verbose := flag.Bool("v", false, "print group-level detail")
	serverURL := flag.String("server", "", "accqoc-server base URL; switches to client/loadgen mode")
	workloadSpec := flag.String("workload", "", "workload spec for -server mode (qft:N | named:NAME | random:Q:G:S)")
	requests := flag.Int("requests", 10, "number of requests to send in -server mode")
	concurrency := flag.Int("concurrency", 4, "concurrent in-flight requests in -server mode")
	deviceMix := flag.String("devices", "",
		"weighted multi-device traffic mix for -server mode, e.g. melbourne:0.7,linear5:0.3 (empty = default device)")
	circuits := flag.Bool("circuits", false,
		"loadgen against POST /v1/circuits/compile: whole-program scheduled pulse programs instead of per-group compiles")
	jsonOut := flag.Bool("json", false,
		"-server mode: emit one machine-readable JSON summary on stdout instead of the text report")
	asyncMode := flag.Bool("async", false,
		"-server mode: submit through the async job API (?async=1) and poll /v1/jobs/{id} to completion")
	flag.Parse()

	if *serverURL != "" {
		if err := runClient(*serverURL, *in, *workloadSpec, *deviceMix, *requests, *concurrency, *circuits, *asyncMode, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	prog, err := qasm.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	policy, err := resolvePolicy(*policyName, *enable3Q)
	if err != nil {
		fatal(err)
	}
	dev, err := parseDevice(*deviceName)
	if err != nil {
		fatal(err)
	}

	comp := accqoc.New(accqoc.Options{
		Device: dev,
		Policy: policy,
		Precompile: precompile.Config{
			Grape: gopts(*fidelity, *maxIter),
		},
	})
	if *libPath != "" {
		if lib, lerr := precompile.Load(*libPath); lerr == nil {
			comp.SetLibrary(lib)
			fmt.Printf("loaded %d library pulses from %s\n", len(lib.Entries), *libPath)
		} else if !os.IsNotExist(lerr) {
			fatal(lerr)
		}
	}

	start := time.Now()
	res, err := comp.Compile(prog)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("program: %s (%d qubits, %d gates)\n", *in, prog.NumQubits, prog.GateCount())
	fmt.Printf("device:  %s, policy %s\n", dev.Name, policy.Name)
	fmt.Printf("mapped:  %d gates, %d swaps inserted, crosstalk metric %d\n",
		res.Physical.GateCount(), res.MapResult.SwapCount, res.CrosstalkMetric)
	fmt.Printf("groups:  %d occurrences, coverage %.1f%% (%d covered), %d uncovered unique\n",
		res.TotalGroups, 100*res.CoverageRate, res.CoveredGroups, res.UncoveredUnique)
	fmt.Printf("training: %d GRAPE iterations in %v\n", res.TrainingIterations, res.TrainingTime.Round(time.Millisecond))
	fmt.Printf("latency: %.0f ns QOC vs %.0f ns gate-based (%.2fx reduction)\n",
		res.OverallLatencyNs, res.GateBasedLatencyNs, res.LatencyReduction)
	fmt.Printf("estimated fidelity: %.4f\n", res.EstimatedFidelity)
	fmt.Printf("total wall time: %v\n", elapsed.Round(time.Millisecond))

	if *verbose {
		for i, g := range res.Grouping.Groups {
			lc := g.LocalCircuit()
			fmt.Printf("  group %3d: qubits %v, %d gates, depth %d\n",
				i, g.Qubits, lc.GateCount(), len(g.GateIndices))
		}
	}
	if *libPath != "" {
		if err := comp.Library().Save(*libPath); err != nil {
			fatal(err)
		}
		fmt.Printf("library saved to %s (%d pulses)\n", *libPath, len(comp.Library().Entries))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "accqoc:", err)
	os.Exit(1)
}

// resolvePolicy maps a policy name to its definition; the 3-qubit set is
// only reachable when the user passed -enable-3q.
func resolvePolicy(name string, enable3Q bool) (grouping.Policy, error) {
	if enable3Q {
		return grouping.PolicyByNameExtended(name)
	}
	p, err := grouping.PolicyByName(name)
	if err != nil {
		if _, ok3 := grouping.PolicyByNameExtended(name); ok3 == nil {
			return grouping.Policy{}, fmt.Errorf("policy %q requires -enable-3q (dim-8 groups train much more slowly)", name)
		}
	}
	return p, err
}

func parseDevice(name string) (*topology.Device, error) {
	if name == "melbourne" {
		return topology.Melbourne(), nil
	}
	var n int
	if _, err := fmt.Sscanf(name, "linear%d", &n); err == nil && n > 1 {
		return topology.Linear(n), nil
	}
	var r, c int
	if _, err := fmt.Sscanf(name, "grid%dx%d", &r, &c); err == nil && r > 0 && c > 0 {
		return topology.Grid(r, c), nil
	}
	return nil, fmt.Errorf("unknown device %q", name)
}
