package main

import (
	"encoding/json"
	"testing"
	"time"
)

func TestParseDeviceMix(t *testing.T) {
	mix, err := parseDeviceMix("melbourne:0.7,linear5:0.3")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].name != "melbourne" || mix[0].weight != 0.7 ||
		mix[1].name != "linear5" || mix[1].weight != 0.3 {
		t.Fatalf("mix = %+v", mix)
	}
	// Bare names weight 1; whitespace tolerated.
	mix, err = parseDeviceMix(" melbourne , linear5:2 ")
	if err != nil {
		t.Fatal(err)
	}
	if mix[0].weight != 1 || mix[1].weight != 2 {
		t.Fatalf("mix = %+v", mix)
	}
	// Empty spec means "no mix" (default device), not an error.
	if mix, err := parseDeviceMix(""); err != nil || mix != nil {
		t.Fatalf("empty spec: %v %v", mix, err)
	}
	for _, bad := range []string{":0.5", "dev:0", "dev:-1", "dev:x", ","} {
		if _, err := parseDeviceMix(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestPercentile(t *testing.T) {
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("empty slice: %v", got)
	}
	one := []time.Duration{7 * time.Millisecond}
	for _, p := range []float64{0, 50, 99, 100} {
		if got := percentile(one, p); got != 7*time.Millisecond {
			t.Fatalf("single sample p%g = %v", p, got)
		}
	}
	// 1..100 ms: the p-th percentile interpolates to (1 + 0.99p) ms.
	var ladder []time.Duration
	for i := 1; i <= 100; i++ {
		ladder = append(ladder, time.Duration(i)*time.Millisecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1 * time.Millisecond},
		{50, 50*time.Millisecond + 500*time.Microsecond},
		{95, 95*time.Millisecond + 50*time.Microsecond},
		{99, 99*time.Millisecond + 10*time.Microsecond},
		{100, 100 * time.Millisecond},
	}
	for _, c := range cases {
		got := percentile(ladder, c.p)
		if diff := got - c.want; diff < -time.Microsecond || diff > time.Microsecond {
			t.Errorf("p%g = %v, want %v", c.p, got, c.want)
		}
	}
	// p50/p95/p99 must not collapse to min/max (the bug this replaced:
	// printing p0/p100 as if they were tail percentiles).
	if percentile(ladder, 95) == ladder[len(ladder)-1] {
		t.Error("p95 equals max")
	}
	if percentile(ladder, 50) == ladder[0] {
		t.Error("p50 equals min")
	}
}

func TestClientSummaryJSONShape(t *testing.T) {
	// The -json report is what BENCH_*.json capture scripts parse: pin the
	// field names so a rename is a conscious break.
	raw, err := json.Marshal(clientSummary{
		Devices:    []deviceSummary{{Device: "melbourne"}},
		GroupSizes: []groupSizeSummary{{Size: 3, Slots: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"endpoint", "requests", "concurrency",
		"cold_wall_ms", "cold_compile_ms", "cold_coverage", "groups_trained",
		"warm_requests", "warm_failed", "warm_served", "warm_elapsed_ms",
		"warm_p50_ms", "warm_p95_ms", "warm_p99_ms",
		"devices", "library", "server", "group_sizes",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("summary JSON missing %q", key)
		}
	}
}

func TestAssignDevicesProportionsAndInterleave(t *testing.T) {
	mix, err := parseDeviceMix("a:0.7,b:0.3")
	if err != nil {
		t.Fatal(err)
	}
	got := assignDevices(mix, 10)
	counts := map[string]int{}
	for _, d := range got {
		counts[d]++
	}
	if counts["a"] != 7 || counts["b"] != 3 {
		t.Fatalf("assignment %v (counts %v), want 7:3", got, counts)
	}
	// Smooth WRR interleaves instead of producing two monolithic blocks:
	// "b" must appear before the last "a".
	firstB, lastA := -1, -1
	for i, d := range got {
		if d == "b" && firstB < 0 {
			firstB = i
		}
		if d == "a" {
			lastA = i
		}
	}
	if firstB < 0 || firstB > lastA {
		t.Fatalf("mix not interleaved: %v", got)
	}
	// Deterministic: two calls agree.
	again := assignDevices(mix, 10)
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("assignment not deterministic")
		}
	}
	// No mix: everything routes to the default (empty) device.
	for _, d := range assignDevices(nil, 3) {
		if d != "" {
			t.Fatalf("no-mix assignment %q", d)
		}
	}
}

func TestGroupSizeSummaryJSONShape(t *testing.T) {
	raw, err := json.Marshal(groupSizeSummary{Size: 3, Slots: 2, TotalDurationNs: 5000, MeanDurationNs: 2500, MakespanShare: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"size", "slots", "total_duration_ns", "mean_duration_ns", "makespan_share"} {
		if _, ok := m[key]; !ok {
			t.Errorf("group size JSON missing %q", key)
		}
	}
}

func TestResolvePolicyGates3Q(t *testing.T) {
	if _, err := resolvePolicy("map3b3l", false); err == nil {
		t.Fatal("map3b3l resolved without -enable-3q")
	}
	p, err := resolvePolicy("map3b3l", true)
	if err != nil || p.MaxQubits != 3 {
		t.Fatalf("map3b3l with -enable-3q = %+v, err %v", p, err)
	}
	if _, err := resolvePolicy("map2b4l", false); err != nil {
		t.Fatalf("map2b4l rejected: %v", err)
	}
	if _, err := resolvePolicy("bogus", true); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
