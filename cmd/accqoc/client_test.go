package main

import (
	"testing"
)

func TestParseDeviceMix(t *testing.T) {
	mix, err := parseDeviceMix("melbourne:0.7,linear5:0.3")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].name != "melbourne" || mix[0].weight != 0.7 ||
		mix[1].name != "linear5" || mix[1].weight != 0.3 {
		t.Fatalf("mix = %+v", mix)
	}
	// Bare names weight 1; whitespace tolerated.
	mix, err = parseDeviceMix(" melbourne , linear5:2 ")
	if err != nil {
		t.Fatal(err)
	}
	if mix[0].weight != 1 || mix[1].weight != 2 {
		t.Fatalf("mix = %+v", mix)
	}
	// Empty spec means "no mix" (default device), not an error.
	if mix, err := parseDeviceMix(""); err != nil || mix != nil {
		t.Fatalf("empty spec: %v %v", mix, err)
	}
	for _, bad := range []string{":0.5", "dev:0", "dev:-1", "dev:x", ","} {
		if _, err := parseDeviceMix(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestAssignDevicesProportionsAndInterleave(t *testing.T) {
	mix, err := parseDeviceMix("a:0.7,b:0.3")
	if err != nil {
		t.Fatal(err)
	}
	got := assignDevices(mix, 10)
	counts := map[string]int{}
	for _, d := range got {
		counts[d]++
	}
	if counts["a"] != 7 || counts["b"] != 3 {
		t.Fatalf("assignment %v (counts %v), want 7:3", got, counts)
	}
	// Smooth WRR interleaves instead of producing two monolithic blocks:
	// "b" must appear before the last "a".
	firstB, lastA := -1, -1
	for i, d := range got {
		if d == "b" && firstB < 0 {
			firstB = i
		}
		if d == "a" {
			lastA = i
		}
	}
	if firstB < 0 || firstB > lastA {
		t.Fatalf("mix not interleaved: %v", got)
	}
	// Deterministic: two calls agree.
	again := assignDevices(mix, 10)
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("assignment not deterministic")
		}
	}
	// No mix: everything routes to the default (empty) device.
	for _, d := range assignDevices(nil, 3) {
		if d != "" {
			t.Fatalf("no-mix assignment %q", d)
		}
	}
}
