// Command accqoc-repro regenerates the paper's evaluation: every table and
// figure of §VI, printed as the rows/series the paper reports.
//
// Usage:
//
//	accqoc-repro                 # run everything at small scale
//	accqoc-repro -scale full     # the paper-sized run (hours)
//	accqoc-repro -only fig7,fig15
//	accqoc-repro -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"accqoc/internal/experiments"
)

type experiment struct {
	name string
	desc string
	run  func(sc experiments.Scale) error
}

func main() {
	scale := flag.String("scale", "small", "experiment scale: small | full")
	only := flag.String("only", "", "comma-separated experiment names (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "small":
		sc = experiments.SmallScale()
	case "full":
		sc = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small or full)\n", *scale)
		os.Exit(2)
	}

	exps := []experiment{
		{"table1", "grouping-policy parameter settings (Table I)", func(sc experiments.Scale) error {
			experiments.Table1(os.Stdout)
			return nil
		}},
		{"table2", "benchmark instruction mixes (Table II)", func(sc experiments.Scale) error {
			experiments.Table2(os.Stdout)
			return nil
		}},
		{"fig5", "crosstalk error-rate inflation (Fig. 5)", func(sc experiments.Scale) error {
			experiments.Fig5(os.Stdout)
			return nil
		}},
		{"fig7", "pre-compilation coverage under map2b4l (Fig. 7)", func(sc experiments.Scale) error {
			_, err := experiments.Fig7(os.Stdout, sc)
			return err
		}},
		{"fig8", "iteration reduction per similarity function (Fig. 8)", func(sc experiments.Scale) error {
			_, err := experiments.Fig8(os.Stdout, sc)
			return err
		}},
		{"fig11", "crosstalk metric, baseline vs aware mapping (Fig. 11)", func(sc experiments.Scale) error {
			_, err := experiments.Fig11(os.Stdout, sc)
			return err
		}},
		{"fig12", "latency reduction, programs × policies (Fig. 12)", func(sc experiments.Scale) error {
			_, err := experiments.Fig12(os.Stdout, sc)
			return err
		}},
		{"fig13", "per-program iteration reduction (Fig. 13)", func(sc experiments.Scale) error {
			_, err := experiments.Fig13(os.Stdout, sc)
			return err
		}},
		{"fig14", "group-count growth vs gate count (Fig. 14)", func(sc experiments.Scale) error {
			_, err := experiments.Fig14(os.Stdout, sc)
			return err
		}},
		{"fig15", "AccQOC vs brute-force QOC (Fig. 15)", func(sc experiments.Scale) error {
			_, err := experiments.Fig15(os.Stdout, sc)
			return err
		}},
		{"frontier", "makespan-vs-iterations group-size frontier, 2b vs 3b policies", func(sc experiments.Scale) error {
			_, err := experiments.Frontier(os.Stdout, sc)
			return err
		}},
	}

	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.name, e.desc)
		}
		return
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(n)] = true
		}
		known := map[string]bool{}
		for _, e := range exps {
			known[e.name] = true
		}
		var unknown []string
		for n := range selected {
			if !known[n] {
				unknown = append(unknown, n)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "unknown experiment(s): %s\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
	}

	start := time.Now()
	for _, e := range exps {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		fmt.Printf("=== %s — %s (scale %s) ===\n", e.name, e.desc, sc.Name)
		t0 := time.Now()
		if err := e.run(sc); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v ---\n\n", e.name, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("all experiments finished in %v\n", time.Since(start).Round(time.Second))
}
