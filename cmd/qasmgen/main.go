// Command qasmgen writes the benchmark suite (§VI-A) as OpenQASM 2.0
// files: the six Table II programs, or the full 159-program suite.
//
// Usage:
//
//	qasmgen -out bench/             # named suite
//	qasmgen -out bench/ -full       # all 159 programs
//	qasmgen -out bench/ -qft 12     # a single QFT instance
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"accqoc/internal/qasm"
	"accqoc/internal/workload"
)

func main() {
	out := flag.String("out", ".", "output directory")
	full := flag.Bool("full", false, "emit the full 159-program suite")
	qft := flag.Int("qft", 0, "emit a single qft_<n> program instead")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	var progs []*workload.Program
	switch {
	case *qft > 0:
		progs = []*workload.Program{workload.QFT(*qft)}
	case *full:
		var err error
		progs, err = workload.FullSuite()
		if err != nil {
			fatal(err)
		}
	default:
		progs = workload.NamedSuite()
	}
	for _, p := range progs {
		path := filepath.Join(*out, p.Name+".qasm")
		if err := os.WriteFile(path, []byte(qasm.Print(p.Circuit)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d qubits, %d gates\n", path, p.Circuit.NumQubits, p.Circuit.GateCount())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qasmgen:", err)
	os.Exit(1)
}
