// Command accqoc-server runs the AccQOC pulse-compilation service: an HTTP
// JSON API over a shared, sharded pulse library. Programs arrive as
// OpenQASM 2.0 or workload specs on POST /v1/compile; groups already in
// the library are served warm, uncovered groups are GRAPE-trained exactly
// once even under concurrent duplicate requests, and the library survives
// restarts through versioned snapshots.
//
// Usage:
//
//	accqoc-server -addr :8080 -lib pulses.snap
//	accqoc-server -device linear16 -policy swap2b3l -workers 8 -capacity 4096
//	accqoc-server -pprof localhost:6060   # expose net/http/pprof for live profiling
//	accqoc-server -seed-index=false       # train cache misses cold (A/B baseline)
//
// Cache misses warm-start by default: uncovered groups are MST-ordered
// per request and seeded from the similarity index over covered library
// entries (-seed-index=false disables).
//
// The snapshot is loaded at boot (if present), saved on SIGINT/SIGTERM
// shutdown, and optionally saved on a timer with -snapshot-every.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"accqoc"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/libstore"
	"accqoc/internal/precompile"
	"accqoc/internal/server"
	"accqoc/internal/topology"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	policyName := flag.String("policy", "map2b4l", "grouping policy: map2b2l|map2b3l|map2b4l|swap2b2l|swap2b3l|swap2b4l")
	deviceName := flag.String("device", "melbourne", "device: melbourne | linear<N> | grid<R>x<C>")
	libPath := flag.String("lib", "", "library snapshot path (loaded at boot, saved at shutdown)")
	format := flag.String("lib-format", "gob", "snapshot payload format: gob | json")
	snapshotEvery := flag.Duration("snapshot-every", 0, "also save the snapshot periodically (0 disables)")
	workers := flag.Int("workers", 0, "concurrent compilations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "pending-request queue depth (full queue answers 503)")
	capacity := flag.Int("capacity", 0, "library entry capacity, LRU-evicted beyond it (0 = unlimited)")
	shards := flag.Int("shards", 16, "library shard count")
	maxGates := flag.Int("max-gates", 4096, "per-request gate budget")
	fidelity := flag.Float64("fidelity", 1e-3, "GRAPE target infidelity")
	maxIter := flag.Int("max-iter", 600, "GRAPE iteration cap per optimization")
	grapeParallel := flag.Int("grape-parallel", 0,
		"per-segment GRAPE workers per training (0 = auto: sequential when the request pool has >1 worker; negative = always sequential)")
	seedIndex := flag.Bool("seed-index", true,
		"warm-start cache-miss trainings from the similarity seed index (MST-ordered per request); false trains misses cold")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address, e.g. localhost:6060 (empty = disabled)")
	flag.Parse()

	policy, err := grouping.PolicyByName(*policyName)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := parseDevice(*deviceName)
	if err != nil {
		log.Fatal(err)
	}
	var snapFormat libstore.Format
	switch *format {
	case "gob":
		snapFormat = libstore.FormatGob
	case "json":
		snapFormat = libstore.FormatJSON
	default:
		log.Fatalf("unknown -lib-format %q (want gob or json)", *format)
	}

	store := libstore.New(libstore.Options{Shards: *shards, Capacity: *capacity})
	if *libPath != "" {
		n, lerr := store.LoadInto(*libPath)
		switch {
		case lerr == nil:
			log.Printf("loaded %d library pulses from %s", n, *libPath)
		case os.IsNotExist(lerr):
			log.Printf("no snapshot at %s yet; starting cold", *libPath)
		default:
			log.Fatalf("snapshot load: %v", lerr)
		}
	}

	segWorkers := *grapeParallel
	if segWorkers == 0 {
		pool := *workers
		if pool == 0 {
			pool = runtime.GOMAXPROCS(0)
		}
		if pool > 1 {
			// The request pool already parallelizes across trainings;
			// per-segment workers inside each would oversubscribe.
			segWorkers = -1
		}
	}

	srv := server.New(server.Config{
		Compile: accqoc.Options{
			Device: dev,
			Policy: policy,
			Precompile: precompile.Config{
				Grape: grape.Options{TargetInfidelity: *fidelity, MaxIterations: *maxIter, Parallel: segWorkers},
			},
		},
		Store:            store,
		Workers:          *workers,
		QueueDepth:       *queue,
		MaxGates:         *maxGates,
		DisableSeedIndex: !*seedIndex,
	})

	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	save := func(reason string) {
		if *libPath == "" {
			return
		}
		if err := store.SaveSnapshot(*libPath, snapFormat); err != nil {
			log.Printf("snapshot save (%s): %v", reason, err)
			return
		}
		log.Printf("saved %d library pulses to %s (%s)", store.Len(), *libPath, reason)
	}

	if *snapshotEvery > 0 && *libPath != "" {
		go func() {
			tick := time.NewTicker(*snapshotEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					save("periodic")
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	go func() {
		log.Printf("accqoc-server listening on %s (device %s, policy %s, %d shards, seed index %v)",
			*addr, dev.Name, policy.Name, *shards, *seedIndex)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	<-ctx.Done()
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	srv.Close()
	save("shutdown")
}

func parseDevice(name string) (*topology.Device, error) {
	if name == "melbourne" {
		return topology.Melbourne(), nil
	}
	var n int
	if _, err := fmt.Sscanf(name, "linear%d", &n); err == nil && n > 1 {
		return topology.Linear(n), nil
	}
	var r, c int
	if _, err := fmt.Sscanf(name, "grid%dx%d", &r, &c); err == nil && r > 0 && c > 0 {
		return topology.Grid(r, c), nil
	}
	return nil, fmt.Errorf("unknown device %q", name)
}
