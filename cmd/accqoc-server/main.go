// Command accqoc-server runs the AccQOC pulse-compilation service: an HTTP
// JSON API over per-device, per-calibration-epoch pulse libraries.
// Programs arrive as OpenQASM 2.0 or workload specs on POST /v1/compile
// (with an optional "device" field routing to a registered device); groups
// already in the device's current-epoch library are served warm, uncovered
// groups are GRAPE-trained exactly once even under concurrent duplicate
// requests, and the default device's library survives restarts through
// versioned, fingerprinted snapshots.
//
// Usage:
//
//	accqoc-server -addr :8080 -lib pulses.snap
//	accqoc-server -device linear16 -policy swap2b3l -workers 8 -capacity 4096
//	accqoc-server -device melbourne -devices linear5,grid2x3   # multi-device serving
//	accqoc-server -calibration-file cal.json                   # SIGHUP re-reads → new epoch
//	accqoc-server -pprof localhost:6060   # expose net/http/pprof for live profiling
//	accqoc-server -seed-index=false       # train cache misses cold (A/B baseline)
//
// Cache misses warm-start by default: uncovered groups are MST-ordered
// per request and seeded from the similarity index over covered library
// entries (-seed-index=false disables).
//
// A calibration event — POST /v1/devices/{name}/calibrate, or SIGHUP with
// -calibration-file pointing at a JSON CalibrationUpdate — opens a new
// epoch for the device and re-trains its covered groups in the background,
// most-requested-first, each seeded by its own previous-epoch pulse.
//
// The snapshot is loaded asynchronously at boot (if present; /healthz
// reports 503 until done), verified against the device+calibration
// fingerprint (-lib-force overrides a mismatch), saved on SIGINT/SIGTERM
// shutdown, and optionally saved on a timer with -snapshot-every.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"accqoc"
	"accqoc/internal/devreg"
	"accqoc/internal/grape"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/grouping"
	"accqoc/internal/libstore"
	"accqoc/internal/precompile"
	"accqoc/internal/server"
	"accqoc/internal/topology"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	policyName := flag.String("policy", "map2b4l", "grouping policy: map2b2l|map2b3l|map2b4l|swap2b2l|swap2b3l|swap2b4l")
	deviceName := flag.String("device", "melbourne", "default device: melbourne | linear<N> | grid<R>x<C>")
	extraDevices := flag.String("devices", "", "comma-separated extra device specs served next to the default (same syntax as -device)")
	libPath := flag.String("lib", "", "library snapshot path for the default device (loaded at boot, saved at shutdown)")
	libForce := flag.Bool("lib-force", false, "load the boot snapshot even when its device+calibration fingerprint mismatches")
	format := flag.String("lib-format", "gob", "snapshot payload format: gob | json")
	snapshotEvery := flag.Duration("snapshot-every", 0, "also save the snapshot periodically (0 disables)")
	calibrationFile := flag.String("calibration-file", "", "JSON CalibrationUpdate re-read on SIGHUP to open a new calibration epoch for the default device")
	workers := flag.Int("workers", 0, "concurrent compilations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "pending-request queue depth (full queue answers 503)")
	capacity := flag.Int("capacity", 0, "library entry capacity per namespace, LRU-evicted beyond it (0 = unlimited)")
	shards := flag.Int("shards", 16, "library shard count")
	maxGates := flag.Int("max-gates", 4096, "per-request gate budget")
	fidelity := flag.Float64("fidelity", 1e-3, "GRAPE target infidelity")
	maxIter := flag.Int("max-iter", 600, "GRAPE iteration cap per optimization")
	grapeParallel := flag.Int("grape-parallel", 0,
		"per-segment GRAPE workers per training (0 = auto: sequential when the request pool has >1 worker; negative = always sequential)")
	seedIndex := flag.Bool("seed-index", true,
		"warm-start cache-miss trainings from the similarity seed index (MST-ordered per request); false trains misses cold")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address, e.g. localhost:6060 (empty = disabled)")
	flag.Parse()

	policy, err := grouping.PolicyByName(*policyName)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := parseDevice(*deviceName)
	if err != nil {
		log.Fatal(err)
	}
	// Apply the calibration file at boot (if present) so the default
	// device starts at the physics its last shutdown snapshot was stamped
	// with — otherwise a routine restart after any SIGHUP recalibration
	// would fingerprint-reject its own snapshot. The file should carry
	// absolute calibration/hamiltonian values for this to be idempotent;
	// a relative drift_pct file reproduces exactly one hot reload.
	var bootHam hamiltonian.Config
	if *calibrationFile != "" {
		switch upd, uerr := readCalibrationFile(*calibrationFile); {
		case uerr == nil:
			p, aerr := upd.Apply(devreg.Profile{Name: *deviceName, Device: dev})
			if aerr != nil {
				log.Fatalf("calibration file: %v", aerr)
			}
			dev, bootHam = p.Device, p.Ham
			log.Printf("applied %s at boot (fingerprint %s)", *calibrationFile, p.Fingerprint())
		case os.IsNotExist(uerr):
			log.Printf("no calibration file at %s yet; using flag defaults", *calibrationFile)
		default:
			log.Fatal(uerr)
		}
	}
	var extras []devreg.Profile
	if *extraDevices != "" {
		seen := map[string]bool{*deviceName: true}
		for _, spec := range strings.Split(*extraDevices, ",") {
			spec = strings.TrimSpace(spec)
			if spec == "" || seen[spec] {
				continue
			}
			seen[spec] = true
			d, derr := parseDevice(spec)
			if derr != nil {
				log.Fatal(derr)
			}
			extras = append(extras, devreg.Profile{Name: spec, Device: d})
		}
	}
	var snapFormat libstore.Format
	switch *format {
	case "gob":
		snapFormat = libstore.FormatGob
	case "json":
		snapFormat = libstore.FormatJSON
	default:
		log.Fatalf("unknown -lib-format %q (want gob or json)", *format)
	}

	storeOpts := libstore.Options{Shards: *shards, Capacity: *capacity}

	segWorkers := *grapeParallel
	if segWorkers == 0 {
		pool := *workers
		if pool == 0 {
			pool = runtime.GOMAXPROCS(0)
		}
		if pool > 1 {
			// The request pool already parallelizes across trainings;
			// per-segment workers inside each would oversubscribe.
			segWorkers = -1
		}
	}

	srv := server.New(server.Config{
		Compile: accqoc.Options{
			Device: dev,
			Policy: policy,
			Precompile: precompile.Config{
				Ham:   bootHam,
				Grape: grape.Options{TargetInfidelity: *fidelity, MaxIterations: *maxIter, Parallel: segWorkers},
			},
		},
		Store:             libstore.New(storeOpts),
		StoreOptions:      storeOpts,
		DeviceName:        *deviceName,
		Devices:           extras,
		BootSnapshot:      *libPath,
		BootSnapshotForce: *libForce,
		Workers:           *workers,
		QueueDepth:        *queue,
		MaxGates:          *maxGates,
		DisableSeedIndex:  !*seedIndex,
	})

	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Surface the async boot load's outcome in the log (the synchronous
	// load used to log or die here; /healthz alone is easy to miss).
	if *libPath != "" {
		go func() {
			for {
				done, n, berr := srv.BootStatus()
				if done {
					switch {
					case berr != nil:
						log.Printf("boot snapshot: %v (serving cold; /healthz reports error)", berr)
					case n > 0:
						log.Printf("loaded %d library pulses from %s", n, *libPath)
					default:
						log.Printf("no snapshot at %s yet; starting cold", *libPath)
					}
					return
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(50 * time.Millisecond):
				}
			}
		}()
	}

	save := func(reason string) {
		if *libPath == "" {
			return
		}
		// Never clobber the snapshot while its boot load is pending or
		// failed: a fingerprint-rejected library would be overwritten by
		// an empty store on the first shutdown.
		if done, _, berr := srv.BootStatus(); berr != nil {
			log.Printf("snapshot save (%s): refusing to overwrite %s — boot load failed (%v); fix the config or pass -lib-force", reason, *libPath, berr)
			return
		} else if !done {
			log.Printf("snapshot save (%s): boot load still in progress; skipping", reason)
			return
		}
		ns, nerr := srv.Registry().Current("")
		if nerr != nil {
			log.Printf("snapshot save (%s): %v", reason, nerr)
			return
		}
		// Stamp the snapshot with the current epoch's fingerprint so a
		// later boot under different physics is rejected, not silently
		// served.
		if err := ns.Store.SaveSnapshotFingerprint(*libPath, snapFormat, ns.Profile.Fingerprint()); err != nil {
			log.Printf("snapshot save (%s): %v", reason, err)
			return
		}
		log.Printf("saved %d library pulses to %s (%s, epoch %d)", ns.Store.Len(), *libPath, reason, ns.Epoch)
	}

	if *snapshotEvery > 0 && *libPath != "" {
		go func() {
			tick := time.NewTicker(*snapshotEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					save("periodic")
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	// SIGHUP re-reads -calibration-file and opens a new calibration epoch
	// for the default device — the operator's hot-reload path after a
	// hardware recalibration lands.
	if *calibrationFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for {
				select {
				case <-hup:
					upd, uerr := readCalibrationFile(*calibrationFile)
					if uerr != nil {
						log.Printf("calibration reload: %v", uerr)
						continue
					}
					epoch, planned, cerr := srv.CalibrateDefault(upd)
					if cerr != nil {
						log.Printf("calibration reload: %v", cerr)
						continue
					}
					log.Printf("calibration reload: %s now at epoch %d, %d groups queued for warm recompilation",
						*deviceName, epoch, planned)
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	go func() {
		log.Printf("accqoc-server listening on %s (device %s + %d extra, policy %s, %d shards, seed index %v)",
			*addr, dev.Name, len(extras), policy.Name, *shards, *seedIndex)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	<-ctx.Done()
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	srv.Close()
	save("shutdown")
}

// readCalibrationFile parses a JSON devreg.CalibrationUpdate.
func readCalibrationFile(path string) (devreg.CalibrationUpdate, error) {
	var upd devreg.CalibrationUpdate
	data, err := os.ReadFile(path)
	if err != nil {
		return upd, err
	}
	if err := json.Unmarshal(data, &upd); err != nil {
		return upd, fmt.Errorf("%s: %w", path, err)
	}
	return upd, nil
}

func parseDevice(name string) (*topology.Device, error) {
	if name == "melbourne" {
		return topology.Melbourne(), nil
	}
	var n int
	if _, err := fmt.Sscanf(name, "linear%d", &n); err == nil && n > 1 {
		return topology.Linear(n), nil
	}
	var r, c int
	if _, err := fmt.Sscanf(name, "grid%dx%d", &r, &c); err == nil && r > 0 && c > 0 {
		return topology.Grid(r, c), nil
	}
	return nil, fmt.Errorf("unknown device %q", name)
}
