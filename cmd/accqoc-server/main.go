// Command accqoc-server runs the AccQOC pulse-compilation service: an HTTP
// JSON API over per-device, per-calibration-epoch pulse libraries.
// Programs arrive as OpenQASM 2.0 or workload specs on POST /v1/compile
// (with an optional "device" field routing to a registered device); groups
// already in the device's current-epoch library are served warm, uncovered
// groups are GRAPE-trained exactly once even under concurrent duplicate
// requests, and the default device's library survives restarts through
// versioned, fingerprinted snapshots.
//
// Usage:
//
//	accqoc-server -addr :8080 -lib pulses.snap
//	accqoc-server -device linear16 -policy swap2b3l -workers 8 -capacity 4096
//	accqoc-server -device melbourne -devices linear5,grid2x3   # multi-device serving
//	accqoc-server -calibration-file cal.json                   # SIGHUP re-reads → new epoch
//	accqoc-server -pprof localhost:6060   # expose net/http/pprof for live profiling
//	accqoc-server -seed-index=false       # train cache misses cold (A/B baseline)
//	accqoc-server -job-ttl 1h -job-cap 4096  # async job ledger sizing
//	accqoc-server -async-jobs=false       # refuse ?async=1 submissions
//	accqoc-server -log-format json        # structured JSON logs for pipelines
//	accqoc-server -observability=false    # no /metrics, /debug/requests, or hooks
//	accqoc-server -capacity 4096 -cache-policy cost  # evict by training cost, not recency
//	accqoc-server -prefetch               # speculative re-training during idle cycles
//
// Observability is on by default: Prometheus text exposition at
// GET /metrics, the request flight recorder (per-stage compile traces) at
// GET /debug/requests, and an X-Request-Id header on every response,
// echoed in request-path log records.
//
// Cache misses warm-start by default: uncovered groups are MST-ordered
// per request and seeded from the similarity index over covered library
// entries (-seed-index=false disables).
//
// A calibration event — POST /v1/devices/{name}/calibrate, or SIGHUP with
// -calibration-file pointing at a JSON CalibrationUpdate — opens a new
// epoch for the device and re-trains its covered groups in the background,
// most-requested-first, each seeded by its own previous-epoch pulse.
//
// The snapshot is loaded asynchronously at boot (if present; /healthz
// reports 503 until done), verified against the device+calibration
// fingerprint (-lib-force overrides a mismatch), saved on SIGINT/SIGTERM
// shutdown, and optionally saved on a timer with -snapshot-every.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"accqoc"
	"accqoc/internal/devreg"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/libstore"
	"accqoc/internal/precompile"
	"accqoc/internal/server"
	"accqoc/internal/topology"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	policyName := flag.String("policy", "map2b4l", "grouping policy: map2b2l|map2b3l|map2b4l|swap2b2l|swap2b3l|swap2b4l; with -enable-3q also map3b2l|map3b3l")
	enable3Q := flag.Bool("enable-3q", false,
		"allow the 3-qubit grouping policies (map3b2l, map3b3l): dim-8 groups, much costlier GRAPE training per group")
	deviceName := flag.String("device", "melbourne", "default device: melbourne | linear<N> | grid<R>x<C>")
	extraDevices := flag.String("devices", "", "comma-separated extra device specs served next to the default (same syntax as -device)")
	libPath := flag.String("lib", "", "library snapshot path for the default device (loaded at boot, saved at shutdown)")
	libForce := flag.Bool("lib-force", false, "load the boot snapshot even when its device+calibration fingerprint mismatches")
	format := flag.String("lib-format", "gob", "snapshot payload format: gob | json")
	snapshotEvery := flag.Duration("snapshot-every", 0, "also save the snapshot periodically (0 disables)")
	calibrationFile := flag.String("calibration-file", "", "JSON CalibrationUpdate re-read on SIGHUP to open a new calibration epoch for the default device")
	workers := flag.Int("workers", 0, "concurrent compilations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "pending-request queue depth (full queue answers 503)")
	asyncJobs := flag.Bool("async-jobs", true,
		"serve the async job API: ?async=1 submissions answer 202 with a job ID pollable at /v1/jobs/{id}; false refuses the hint")
	jobTTL := flag.Duration("job-ttl", 15*time.Minute, "how long finished async jobs stay pollable before eviction")
	jobCap := flag.Int("job-cap", 1024, "async job store capacity (a store full of live jobs answers 503)")
	capacity := flag.Int("capacity", 0, "library entry capacity per namespace, LRU-evicted beyond it (0 = unlimited)")
	shards := flag.Int("shards", 16, "library shard count")
	maxGates := flag.Int("max-gates", 4096, "per-request gate budget")
	fidelity := flag.Float64("fidelity", 1e-3, "GRAPE target infidelity")
	maxIter := flag.Int("max-iter", 600, "GRAPE iteration cap per optimization")
	grapeParallel := flag.Int("grape-parallel", 0,
		"per-segment GRAPE workers per training (0 = auto: sequential when the request pool has >1 worker; negative = always sequential)")
	seedIndex := flag.Bool("seed-index", true,
		"warm-start cache-miss trainings from the similarity seed index (MST-ordered per request); false trains misses cold")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address, e.g. localhost:6060 (empty = disabled)")
	logFormat := flag.String("log-format", "text", "structured log output: text | json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	observability := flag.Bool("observability", true,
		"expose /metrics and /debug/requests and record pipeline metrics/traces; false disables all instrumentation")
	usageAcct := flag.Bool("usage", true,
		"account per-entry training cost, request co-occurrence, and eviction regret per device (GET /v1/library/usage, /debug/costs, accqoc_usage_* metrics); false disables the ledgers")
	usageHistory := flag.Int("usage-history", 256, "request-history ring size per device for the co-occurrence miner")
	cachePolicy := flag.String("cache-policy", "lru",
		"library eviction policy: lru (historical behavior) | cost (evict the lowest iterations*hits score from the usage ledger; requires -usage)")
	prefetch := flag.Bool("prefetch", false,
		"speculatively re-train predicted-miss keys during idle cycles, strictly below request traffic (requires -usage; works best with -seed-index)")
	prefetchEvery := flag.Duration("prefetch-interval", 50*time.Millisecond, "prefetcher idle-cycle period")
	prefetchDepth := flag.Int("prefetch-depth", 4, "ranked predictions examined per device per prefetch cycle")
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "accqoc-server:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	switch *cachePolicy {
	case devreg.PolicyLRU, devreg.PolicyCostAware:
	default:
		fatal("unknown -cache-policy (want lru or cost)", "policy", *cachePolicy)
	}
	if *cachePolicy == devreg.PolicyCostAware && !*usageAcct {
		fatal("-cache-policy cost requires -usage (the ledger is the cost signal)")
	}
	if *prefetch && !*usageAcct {
		fatal("-prefetch requires -usage (predictions are mined from the request history)")
	}

	var policy grouping.Policy
	if *enable3Q {
		policy, err = grouping.PolicyByNameExtended(*policyName)
	} else {
		policy, err = grouping.PolicyByName(*policyName)
		if err != nil {
			if _, err3 := grouping.PolicyByNameExtended(*policyName); err3 == nil {
				err = fmt.Errorf("policy %q requires -enable-3q (dim-8 groups train much more slowly)", *policyName)
			}
		}
	}
	if err != nil {
		fatal("bad -policy", "error", err.Error())
	}
	dev, err := parseDevice(*deviceName)
	if err != nil {
		fatal("bad -device", "error", err.Error())
	}
	// Apply the calibration file at boot (if present) so the default
	// device starts at the physics its last shutdown snapshot was stamped
	// with — otherwise a routine restart after any SIGHUP recalibration
	// would fingerprint-reject its own snapshot. The file should carry
	// absolute calibration/hamiltonian values for this to be idempotent;
	// a relative drift_pct file reproduces exactly one hot reload.
	var bootHam hamiltonian.Config
	if *calibrationFile != "" {
		switch upd, uerr := readCalibrationFile(*calibrationFile); {
		case uerr == nil:
			p, aerr := upd.Apply(devreg.Profile{Name: *deviceName, Device: dev})
			if aerr != nil {
				fatal("calibration file rejected", "path", *calibrationFile, "error", aerr.Error())
			}
			dev, bootHam = p.Device, p.Ham
			logger.Info("applied calibration file at boot",
				"component", "main", "path", *calibrationFile, "fingerprint", p.Fingerprint())
		case os.IsNotExist(uerr):
			logger.Info("no calibration file yet; using flag defaults",
				"component", "main", "path", *calibrationFile)
		default:
			fatal("calibration file unreadable", "path", *calibrationFile, "error", uerr.Error())
		}
	}
	var extras []devreg.Profile
	if *extraDevices != "" {
		seen := map[string]bool{*deviceName: true}
		for _, spec := range strings.Split(*extraDevices, ",") {
			spec = strings.TrimSpace(spec)
			if spec == "" || seen[spec] {
				continue
			}
			seen[spec] = true
			d, derr := parseDevice(spec)
			if derr != nil {
				fatal("bad -devices entry", "spec", spec, "error", derr.Error())
			}
			extras = append(extras, devreg.Profile{Name: spec, Device: d})
		}
	}
	var snapFormat libstore.Format
	switch *format {
	case "gob":
		snapFormat = libstore.FormatGob
	case "json":
		snapFormat = libstore.FormatJSON
	default:
		fatal("unknown -lib-format (want gob or json)", "format", *format)
	}

	storeOpts := libstore.Options{Shards: *shards, Capacity: *capacity}

	segWorkers := *grapeParallel
	if segWorkers == 0 {
		pool := *workers
		if pool == 0 {
			pool = runtime.GOMAXPROCS(0)
		}
		if pool > 1 {
			// The request pool already parallelizes across trainings;
			// per-segment workers inside each would oversubscribe.
			segWorkers = -1
		}
	}

	srv := server.New(server.Config{
		Compile: accqoc.Options{
			Device: dev,
			Policy: policy,
			Precompile: precompile.Config{
				Ham:   bootHam,
				Grape: grape.Options{TargetInfidelity: *fidelity, MaxIterations: *maxIter, Parallel: segWorkers},
			},
		},
		Store:                libstore.New(storeOpts),
		StoreOptions:         storeOpts,
		DeviceName:           *deviceName,
		Devices:              extras,
		BootSnapshot:         *libPath,
		BootSnapshotForce:    *libForce,
		Workers:              *workers,
		QueueDepth:           *queue,
		DisableAsyncJobs:     !*asyncJobs,
		JobTTL:               *jobTTL,
		JobCap:               *jobCap,
		MaxGates:             *maxGates,
		DisableSeedIndex:     !*seedIndex,
		DisableObservability: !*observability,
		DisableUsage:         !*usageAcct,
		UsageHistorySize:     *usageHistory,
		CachePolicy:          *cachePolicy,
		EnablePrefetch:       *prefetch,
		PrefetchInterval:     *prefetchEvery,
		PrefetchDepth:        *prefetchDepth,
		Logger:               logger,
	})

	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "component", "main", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server failed", "component", "main", "error", err.Error())
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Surface the async boot load's outcome in the log (the synchronous
	// load used to log or die here; /healthz alone is easy to miss).
	if *libPath != "" {
		go func() {
			for {
				done, n, berr := srv.BootStatus()
				if done {
					switch {
					case berr != nil:
						logger.Error("boot snapshot failed; serving cold (/healthz reports error)",
							"component", "main", "path", *libPath, "error", berr.Error())
					case n > 0:
						logger.Info("boot snapshot loaded",
							"component", "main", "path", *libPath, "entries", n)
					default:
						logger.Info("no snapshot yet; starting cold",
							"component", "main", "path", *libPath)
					}
					return
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(50 * time.Millisecond):
				}
			}
		}()
	}

	save := func(reason string) {
		if *libPath == "" {
			return
		}
		// Never clobber the snapshot while its boot load is pending or
		// failed: a fingerprint-rejected library would be overwritten by
		// an empty store on the first shutdown.
		if done, _, berr := srv.BootStatus(); berr != nil {
			logger.Error("snapshot save refused: boot load failed; fix the config or pass -lib-force",
				"component", "main", "reason", reason, "path", *libPath, "error", berr.Error())
			return
		} else if !done {
			logger.Warn("snapshot save skipped: boot load still in progress",
				"component", "main", "reason", reason, "path", *libPath)
			return
		}
		ns, nerr := srv.Registry().Current("")
		if nerr != nil {
			logger.Error("snapshot save failed",
				"component", "main", "reason", reason, "error", nerr.Error())
			return
		}
		// Stamp the snapshot with the current epoch's fingerprint so a
		// later boot under different physics is rejected, not silently
		// served.
		if err := ns.Store.SaveSnapshotFingerprint(*libPath, snapFormat, ns.Profile.Fingerprint()); err != nil {
			logger.Error("snapshot save failed",
				"component", "main", "reason", reason, "path", *libPath, "error", err.Error())
			return
		}
		logger.Info("snapshot saved",
			"component", "main", "reason", reason, "path", *libPath,
			"entries", ns.Store.Len(), "device", ns.DeviceName, "epoch", ns.Epoch)
	}

	if *snapshotEvery > 0 && *libPath != "" {
		go func() {
			tick := time.NewTicker(*snapshotEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					save("periodic")
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	// SIGHUP re-reads -calibration-file and opens a new calibration epoch
	// for the default device — the operator's hot-reload path after a
	// hardware recalibration lands.
	if *calibrationFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for {
				select {
				case <-hup:
					upd, uerr := readCalibrationFile(*calibrationFile)
					if uerr != nil {
						logger.Error("calibration reload failed",
							"component", "main", "path", *calibrationFile, "error", uerr.Error())
						continue
					}
					epoch, planned, cerr := srv.CalibrateDefault(upd)
					if cerr != nil {
						logger.Error("calibration reload rejected",
							"component", "main", "device", *deviceName, "error", cerr.Error())
						continue
					}
					logger.Info("calibration reload: new epoch open, warm recompilation queued",
						"component", "main", "device", *deviceName, "epoch", epoch, "planned", planned)
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	go func() {
		logger.Info("accqoc-server listening",
			"component", "main", "addr", *addr, "device", dev.Name,
			"extra_devices", len(extras), "policy", policy.Name,
			"shards", *shards, "seed_index", *seedIndex, "observability", *observability)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("listen failed", "addr", *addr, "error", err.Error())
		}
	}()

	<-ctx.Done()
	logger.Info("shutting down", "component", "main")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Error("http shutdown failed", "component", "main", "error", err.Error())
	}
	srv.Close()
	save("shutdown")
}

// newLogger builds the process logger from the -log-format/-log-level
// flags: human-readable text (default) or one JSON object per line for
// log pipelines. The same logger is handed to the server, so request-path
// records carry component/device/epoch/request-id fields uniformly.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// readCalibrationFile parses a JSON devreg.CalibrationUpdate.
func readCalibrationFile(path string) (devreg.CalibrationUpdate, error) {
	var upd devreg.CalibrationUpdate
	data, err := os.ReadFile(path)
	if err != nil {
		return upd, err
	}
	if err := json.Unmarshal(data, &upd); err != nil {
		return upd, fmt.Errorf("%s: %w", path, err)
	}
	return upd, nil
}

func parseDevice(name string) (*topology.Device, error) {
	if name == "melbourne" {
		return topology.Melbourne(), nil
	}
	var n int
	if _, err := fmt.Sscanf(name, "linear%d", &n); err == nil && n > 1 {
		return topology.Linear(n), nil
	}
	var r, c int
	if _, err := fmt.Sscanf(name, "grid%dx%d", &r, &c); err == nil && r > 0 && c > 0 {
		return topology.Grid(r, c), nil
	}
	return nil, fmt.Errorf("unknown device %q", name)
}
