package hamiltonian

import (
	"math"
	"testing"

	"accqoc/internal/cmat"
)

func TestOneQubitSystem(t *testing.T) {
	s := OneQubit(Config{})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Dim != 2 || len(s.Controls) != 2 {
		t.Fatalf("shape: dim=%d controls=%d", s.Dim, len(s.Controls))
	}
	// On resonance the drift is zero.
	if cmat.FrobeniusNorm(s.Drift) != 0 {
		t.Fatal("default 1q drift should vanish in the rotating frame")
	}
}

func TestOneQubitDetuning(t *testing.T) {
	s := OneQubit(Config{Detuning: 0.02})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(s.Drift.At(0, 0))-0.01) > 1e-15 {
		t.Fatalf("drift = %v, want Δ/2 = 0.01", s.Drift.At(0, 0))
	}
}

func TestTwoQubitSystem(t *testing.T) {
	s := TwoQubit(Config{})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Dim != 4 || len(s.Controls) != 4 {
		t.Fatalf("shape: dim=%d controls=%d", s.Dim, len(s.Controls))
	}
	// ZZ drift: diagonal (J, −J, −J, J).
	j := DefaultCoupling
	want := []float64{j, -j, -j, j}
	for i, w := range want {
		if math.Abs(real(s.Drift.At(i, i))-w) > 1e-15 {
			t.Fatalf("drift[%d][%d] = %v, want %v", i, i, s.Drift.At(i, i), w)
		}
	}
}

func TestForQubits(t *testing.T) {
	if _, err := ForQubits(1, Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ForQubits(2, Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ForQubits(6, Config{}); err == nil {
		t.Fatal("6-qubit model should be rejected (chain cap)")
	}
}

func TestAssemble(t *testing.T) {
	s := OneQubit(Config{})
	h := s.Assemble([]float64{0.5, 0})
	// H = 0.5·σx.
	if h.At(0, 1) != 0.5 || h.At(1, 0) != 0.5 {
		t.Fatalf("assembled H = %v", h)
	}
	if !cmat.IsHermitian(h, 1e-14) {
		t.Fatal("assembled H not Hermitian")
	}
}

func TestAssemblePanicsOnWrongArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OneQubit(Config{}).Assemble([]float64{1})
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := OneQubit(Config{})
	s.Controls[0].Set(0, 1, 2) // breaks Hermiticity
	if err := s.Validate(); err == nil {
		t.Fatal("non-Hermitian control accepted")
	}
	s = OneQubit(Config{})
	s.MaxAmp = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative MaxAmp accepted")
	}
}

func TestConfigDrift(t *testing.T) {
	d := Config{}.Drift(2)
	if d.MaxAmp != DefaultMaxAmp*1.02 {
		t.Fatalf("MaxAmp %v, want %v", d.MaxAmp, DefaultMaxAmp*1.02)
	}
	if d.Coupling != DefaultCoupling*1.02 {
		t.Fatalf("Coupling %v, want %v", d.Coupling, DefaultCoupling*1.02)
	}
	// The detuning shift is the 1q invalidation channel: without it a
	// drifted on-resonance single-qubit system would be physically
	// identical and old pulses would stay exactly valid.
	if want := 0.02 * d.MaxAmp; d.Detuning != want {
		t.Fatalf("Detuning %v, want %v", d.Detuning, want)
	}
	// Drifting a zero-value config must not collapse back to defaults on
	// the other side: the result is explicit.
	if sys := OneQubit(d); sys.Drift.At(0, 0) == 0 {
		t.Fatal("drifted 1q system has a zero drift term")
	}
	// Normalize is idempotent physics: zero value and explicit defaults
	// describe the same system.
	n := Config{}.Normalize()
	if n.MaxAmp != DefaultMaxAmp || n.Coupling != DefaultCoupling || n.Detuning != 0 {
		t.Fatalf("Normalize = %+v", n)
	}
}

func TestRabiFlipTiming(t *testing.T) {
	// Driving σx at amplitude u for t = π/(2u) implements an X rotation:
	// exp(−i·u·t·σx) with u·t = π/2 equals −i·X.
	s := OneQubit(Config{})
	u := s.MaxAmp
	tFlip := math.Pi / (2 * u)
	h := s.Assemble([]float64{u, 0})
	prop, err := cmat.ExpmHermitian(h, -tFlip)
	if err != nil {
		t.Fatal(err)
	}
	wantX := cmat.FromRows([][]complex128{{0, 1}, {1, 0}})
	got := cmat.Scale(1i, prop) // remove the −i global phase
	if !got.EqualApprox(wantX, 1e-10) {
		t.Fatalf("π-pulse did not produce X:\n%v", prop)
	}
	// With the default amplitude bound this is 25 ns.
	if math.Abs(tFlip-25) > 1e-9 {
		t.Fatalf("π-pulse time = %v ns, want 25 ns at default bound", tFlip)
	}
}

func TestCXEntanglingTime(t *testing.T) {
	// The ZZ drift needs J·t = π/4 for the CNOT's entangling content:
	// t = π/(4J) ≈ 312.5 ns with the default coupling.
	tEnt := math.Pi / (4 * DefaultCoupling)
	if math.Abs(tEnt-312.5) > 0.1 {
		t.Fatalf("entangling time = %v ns, want ≈ 312.5 ns", tEnt)
	}
}

func TestChainMatchesTwoQubit(t *testing.T) {
	c2, err := Chain(2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t2 := TwoQubit(Config{})
	if !c2.Drift.EqualApprox(t2.Drift, 1e-14) {
		t.Fatal("2-site chain drift differs from TwoQubit")
	}
	if len(c2.Controls) != len(t2.Controls) {
		t.Fatal("control count differs")
	}
}

func TestChainThreeQubits(t *testing.T) {
	c, err := Chain(3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Dim != 8 || len(c.Controls) != 6 {
		t.Fatalf("chain-3 shape: dim=%d controls=%d", c.Dim, len(c.Controls))
	}
	// Drift diagonal for |000⟩: two bonds both aligned → +2J.
	if math.Abs(real(c.Drift.At(0, 0))-2*DefaultCoupling) > 1e-15 {
		t.Fatalf("chain drift corner = %v", c.Drift.At(0, 0))
	}
}

func TestChainBounds(t *testing.T) {
	if _, err := Chain(0, Config{}); err == nil {
		t.Fatal("chain(0) accepted")
	}
	if _, err := Chain(6, Config{}); err == nil {
		t.Fatal("chain(6) accepted")
	}
	if _, err := ForQubits(3, Config{}); err != nil {
		t.Fatal("ForQubits(3) should use the chain model")
	}
}

func TestAssembleIntoMatchesAssemble(t *testing.T) {
	for _, sys := range []*System{OneQubit(Config{}), TwoQubit(Config{Detuning: 0.01})} {
		amps := make([]float64, len(sys.Controls))
		for i := range amps {
			amps[i] = 0.01 * float64(i+1)
		}
		amps[0] = 0 // zero amplitude short-circuits; must still match
		want := sys.Assemble(amps)
		dst := cmat.New(sys.Dim, sys.Dim)
		dst.Set(0, 0, 99) // stale contents must be overwritten
		sys.AssembleInto(dst, amps)
		if !dst.Equal(want) {
			t.Fatalf("%s: AssembleInto != Assemble", sys.Name)
		}
	}
}

func TestAssembleIntoWrongAmpsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on amplitude count mismatch")
		}
	}()
	sys := OneQubit(Config{})
	sys.AssembleInto(cmat.New(2, 2), []float64{0.1})
}
