// Package hamiltonian builds the control systems GRAPE optimizes over: the
// paper's two-level spin qubit model (ω/2π = 3.9 GHz, §IV-D) expressed in
// the rotating frame, with σx/σy drive controls per qubit and an always-on
// σz⊗σz exchange coupling between qubit pairs.
//
// Units: time in nanoseconds, Hamiltonians in rad/ns (ħ = 1). A control
// amplitude u applied for time t rotates the Bloch vector by 2·u·t radians
// about its axis.
package hamiltonian

import (
	"fmt"

	"accqoc/internal/cmat"
)

// Physical constants of the model, chosen so that gate-speed ratios against
// the IBM-calibrated gate-based latencies land in the regime the paper
// reports (see DESIGN.md "Substitutions").
const (
	// QubitFrequencyGHz is the paper's spin qubit frequency ω/2π. It sets
	// the lab frame; the rotating-frame dynamics below are independent of
	// it, but it is recorded for documentation and serialization.
	QubitFrequencyGHz = 3.9

	// DefaultMaxAmp is the drive amplitude bound in rad/ns
	// (2π × 10 MHz): a π rotation takes 25 ns at full drive.
	DefaultMaxAmp = 0.06283185307179587

	// DefaultCoupling is the σz⊗σz exchange strength J in rad/ns
	// (2π × 0.4 MHz): the π/4 entangling evolution of a CNOT takes
	// ≈ 312 ns, putting time-optimal CX pulses near 1/3 of the
	// IBM-calibrated 974.9 ns.
	DefaultCoupling = 0.002513274122871834

	// DefaultDetuning is the rotating-frame drift detuning (rad/ns).
	DefaultDetuning = 0.0
)

// System is a bilinear control system H(u) = Drift + Σ u_c·Controls[c].
type System struct {
	// Name describes the model, e.g. "spin-1q" or "spin-2q".
	Name string
	// Dim is the Hilbert-space dimension.
	Dim int
	// Drift is the constant part of the Hamiltonian (rad/ns).
	Drift *cmat.Matrix
	// Controls are the drive operators multiplied by the time-dependent
	// amplitudes.
	Controls []*cmat.Matrix
	// ControlNames label the controls for pulse serialization.
	ControlNames []string
	// MaxAmp is the drive amplitude bound (rad/ns), symmetric about zero.
	MaxAmp float64
}

// Config tunes the model constants; the zero value selects the defaults.
// The JSON tags are the wire format of the calibration-epoch admin API,
// where a recalibration ships perturbed Hamiltonian parameters.
type Config struct {
	MaxAmp   float64 `json:"max_amp,omitempty"`   // drive bound, rad/ns
	Coupling float64 `json:"coupling,omitempty"`  // ZZ exchange J, rad/ns
	Detuning float64 `json:"detuning,omitempty"`  // rotating-frame detuning, rad/ns
}

func (c Config) withDefaults() Config {
	if c.MaxAmp == 0 {
		c.MaxAmp = DefaultMaxAmp
	}
	if c.Coupling == 0 {
		c.Coupling = DefaultCoupling
	}
	return c
}

// Normalize resolves the zero-value defaults into explicit numbers, so two
// configs that describe the same physics compare (and fingerprint) equal.
func (c Config) Normalize() Config { return c.withDefaults() }

// Drift returns the config perturbed by pct percent — the
// calibration-epoch model: after a recalibration the same hardware comes
// back with slightly moved control parameters, invalidating every
// compiled pulse while keeping each one a near-perfect warm start for its
// successor. The drive bound and exchange strength scale by (1 + pct/100);
// the qubit frequency also moves, which in the serving rotating frame is a
// detuning shift of (pct/100)·MaxAmp — without it a single-qubit system
// (whose on-resonance drift term is zero) would see no physical change at
// all, and old pulses would stay exactly valid. Defaults are resolved
// first so drifting a zero-value config does not silently re-select the
// defaults (0 × f = 0) on the other side.
func (c Config) Drift(pct float64) Config {
	c = c.withDefaults()
	f := 1 + pct/100
	c.MaxAmp *= f
	c.Coupling *= f
	c.Detuning = c.Detuning*f + (pct/100)*c.MaxAmp
	return c
}

// Pauli matrices.
func pauliX() *cmat.Matrix { return cmat.FromRows([][]complex128{{0, 1}, {1, 0}}) }
func pauliY() *cmat.Matrix { return cmat.FromRows([][]complex128{{0, -1i}, {1i, 0}}) }
func pauliZ() *cmat.Matrix { return cmat.FromRows([][]complex128{{1, 0}, {0, -1}}) }

// OneQubit returns the single-qubit spin system: drift ½Δ·σz (zero at the
// default on-resonance detuning), controls σx and σy.
func OneQubit(cfg Config) *System {
	cfg = cfg.withDefaults()
	return &System{
		Name:         "spin-1q",
		Dim:          2,
		Drift:        cmat.Scale(complex(cfg.Detuning/2, 0), pauliZ()),
		Controls:     []*cmat.Matrix{pauliX(), pauliY()},
		ControlNames: []string{"x", "y"},
		MaxAmp:       cfg.MaxAmp,
	}
}

// TwoQubit returns the coupled pair: drift ½Δ(σz⊗I + I⊗σz) + J·σz⊗σz,
// controls σx/σy on each qubit. The always-on exchange term plus local
// drives is the standard NMR-style universal control set.
func TwoQubit(cfg Config) *System {
	cfg = cfg.withDefaults()
	id := cmat.Identity(2)
	drift := cmat.Scale(complex(cfg.Coupling, 0), cmat.Kron(pauliZ(), pauliZ()))
	if cfg.Detuning != 0 {
		cmat.AccumScaled(drift, complex(cfg.Detuning/2, 0), cmat.Kron(pauliZ(), id))
		cmat.AccumScaled(drift, complex(cfg.Detuning/2, 0), cmat.Kron(id, pauliZ()))
	}
	return &System{
		Name:  "spin-2q",
		Dim:   4,
		Drift: drift,
		Controls: []*cmat.Matrix{
			cmat.Kron(pauliX(), id), cmat.Kron(pauliY(), id),
			cmat.Kron(id, pauliX()), cmat.Kron(id, pauliY()),
		},
		ControlNames: []string{"x0", "y0", "x1", "y1"},
		MaxAmp:       cfg.MaxAmp,
	}
}

// Chain returns an n-qubit spin chain: nearest-neighbor σz⊗σz exchange
// plus σx/σy drives on every qubit. Used by the brute-force QOC baseline,
// whose groups exceed two qubits. The Hilbert space is 2^n-dimensional, so
// n is capped at 5 — per-group GRAPE beyond that is exactly the
// intractability the paper is attacking.
func Chain(n int, cfg Config) (*System, error) {
	if n < 1 || n > 5 {
		return nil, fmt.Errorf("hamiltonian: chain size %d out of range [1,5]", n)
	}
	cfg = cfg.withDefaults()
	dim := 1 << n
	drift := cmat.New(dim, dim)
	embed := func(op *cmat.Matrix, q int) *cmat.Matrix {
		m := cmat.Identity(1)
		for i := 0; i < n; i++ {
			if i == q {
				m = cmat.Kron(m, op)
			} else {
				m = cmat.Kron(m, cmat.Identity(2))
			}
		}
		return m
	}
	embed2 := func(op *cmat.Matrix, q int) *cmat.Matrix { // op on qubits q, q+1
		m := cmat.Identity(1)
		i := 0
		for i < n {
			if i == q {
				m = cmat.Kron(m, op)
				i += 2
				continue
			}
			m = cmat.Kron(m, cmat.Identity(2))
			i++
		}
		return m
	}
	zz := cmat.Kron(pauliZ(), pauliZ())
	for q := 0; q+1 < n; q++ {
		cmat.AccumScaled(drift, complex(cfg.Coupling, 0), embed2(zz, q))
	}
	if cfg.Detuning != 0 {
		for q := 0; q < n; q++ {
			cmat.AccumScaled(drift, complex(cfg.Detuning/2, 0), embed(pauliZ(), q))
		}
	}
	sys := &System{
		Name:   fmt.Sprintf("spin-%dq-chain", n),
		Dim:    dim,
		Drift:  drift,
		MaxAmp: cfg.MaxAmp,
	}
	for q := 0; q < n; q++ {
		sys.Controls = append(sys.Controls, embed(pauliX(), q), embed(pauliY(), q))
		sys.ControlNames = append(sys.ControlNames, fmt.Sprintf("x%d", q), fmt.Sprintf("y%d", q))
	}
	return sys, nil
}

// ForQubits returns the system matching a group's qubit count: the 1- and
// 2-qubit spin models for policy-sized groups, the spin chain above that.
func ForQubits(n int, cfg Config) (*System, error) {
	switch n {
	case 1:
		return OneQubit(cfg), nil
	case 2:
		return TwoQubit(cfg), nil
	default:
		return Chain(n, cfg)
	}
}

// Assemble returns Drift + Σ amps[c]·Controls[c].
func (s *System) Assemble(amps []float64) *cmat.Matrix {
	h := cmat.New(s.Dim, s.Dim)
	s.AssembleInto(h, amps)
	return h
}

// AssembleInto writes Drift + Σ amps[c]·Controls[c] into dst without
// allocating. dst must be Dim×Dim; it is overwritten. The result is
// numerically identical to Assemble's.
func (s *System) AssembleInto(dst *cmat.Matrix, amps []float64) {
	if len(amps) != len(s.Controls) {
		panic(fmt.Sprintf("hamiltonian: %d amplitudes for %d controls", len(amps), len(s.Controls)))
	}
	dst.CopyFrom(s.Drift)
	for c, a := range amps {
		if a != 0 {
			cmat.AccumScaled(dst, complex(a, 0), s.Controls[c])
		}
	}
}

// Validate checks the structural invariants: Hermitian drift and controls
// of matching dimension, positive amplitude bound.
func (s *System) Validate() error {
	if s.Dim <= 0 {
		return fmt.Errorf("hamiltonian: non-positive dimension %d", s.Dim)
	}
	if s.MaxAmp <= 0 {
		return fmt.Errorf("hamiltonian: non-positive MaxAmp %v", s.MaxAmp)
	}
	if s.Drift.Rows != s.Dim || s.Drift.Cols != s.Dim {
		return fmt.Errorf("hamiltonian: drift shape %dx%d vs dim %d", s.Drift.Rows, s.Drift.Cols, s.Dim)
	}
	if !cmat.IsHermitian(s.Drift, 1e-12) {
		return fmt.Errorf("hamiltonian: drift is not Hermitian")
	}
	if len(s.Controls) != len(s.ControlNames) {
		return fmt.Errorf("hamiltonian: %d controls vs %d names", len(s.Controls), len(s.ControlNames))
	}
	for i, c := range s.Controls {
		if c.Rows != s.Dim || c.Cols != s.Dim {
			return fmt.Errorf("hamiltonian: control %d shape %dx%d vs dim %d", i, c.Rows, c.Cols, s.Dim)
		}
		if !cmat.IsHermitian(c, 1e-12) {
			return fmt.Errorf("hamiltonian: control %d is not Hermitian", i)
		}
	}
	return nil
}
