// Package gatepulse is the gate-based compilation baseline (§II-C, Fig. 3):
// every gate maps to a calibrated pulse through a lookup table and the
// program's pulses concatenate along the dependency critical path. Frame
// changes (the u1/rz family) are free, pulse-backed single-qubit gates cost
// one calibrated drive, CX costs the calibrated cross-resonance time, and a
// swap lowers to three CXs.
package gatepulse

import (
	"accqoc/internal/circuit"
	"accqoc/internal/gate"
	"accqoc/internal/latency"
	"accqoc/internal/topology"
)

// frameGates are implemented as frame changes on IBM backends: zero pulse
// duration.
var frameGates = map[gate.Name]bool{
	gate.I: true, gate.Z: true, gate.S: true, gate.Sdg: true,
	gate.T: true, gate.Tdg: true, gate.RZ: true, gate.U1: true,
}

// GateLatency returns the pulse duration (ns) of one gate under the
// device calibration.
func GateLatency(name gate.Name, cal topology.Calibration) float64 {
	switch {
	case frameGates[name]:
		return cal.FrameLatencyNs
	case name == gate.CX || name == gate.CZ:
		return cal.CXLatencyNs
	case name == gate.Swap:
		return 3 * cal.CXLatencyNs
	case name == gate.U2:
		// One X90 pulse on IBM backends: half a generic 1q gate.
		return cal.Gate1QLatencyNs / 2
	case name == gate.CCX:
		// Not hardware-native; callers should decompose first. Priced as
		// its 15-gate expansion's critical path for robustness.
		return 6*cal.CXLatencyNs + 2*cal.Gate1QLatencyNs
	default:
		return cal.Gate1QLatencyNs
	}
}

// Overall returns the gate-based program latency: per-gate calibrated
// pulses concatenated along the dependency critical path (Algorithm 3 on
// the gate DAG).
func Overall(c *circuit.Circuit, cal topology.Calibration) float64 {
	return latency.OverallGates(c, func(g int) float64 {
		return GateLatency(c.Gates[g].Name, cal)
	})
}

// Serial returns the sum of all gate latencies with no parallelism — an
// upper bound used in reports.
func Serial(c *circuit.Circuit, cal topology.Calibration) float64 {
	var total float64
	for _, g := range c.Gates {
		total += GateLatency(g.Name, cal)
	}
	return total
}
