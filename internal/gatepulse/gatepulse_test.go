package gatepulse

import (
	"math"
	"testing"

	"accqoc/internal/circuit"
	"accqoc/internal/gate"
	"accqoc/internal/topology"
)

func cal() topology.Calibration { return topology.MelbourneCalibration() }

func TestGateLatencyTable(t *testing.T) {
	c := cal()
	cases := map[gate.Name]float64{
		gate.RZ:   0,
		gate.T:    0,
		gate.U1:   0,
		gate.X:    100,
		gate.H:    100,
		gate.U2:   50,
		gate.U3:   100,
		gate.CX:   974.9,
		gate.Swap: 3 * 974.9,
	}
	for name, want := range cases {
		if got := GateLatency(name, c); math.Abs(got-want) > 1e-9 {
			t.Errorf("GateLatency(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestOverallSerialChain(t *testing.T) {
	c := circuit.New(2)
	c.MustAppend(gate.X, []int{0})
	c.MustAppend(gate.CX, []int{0, 1})
	c.MustAppend(gate.X, []int{1})
	got := Overall(c, cal())
	want := 100 + 974.9 + 100
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Overall = %v, want %v", got, want)
	}
}

func TestOverallParallelism(t *testing.T) {
	// Two X gates on different qubits run concurrently.
	c := circuit.New(2)
	c.MustAppend(gate.X, []int{0})
	c.MustAppend(gate.X, []int{1})
	if got := Overall(c, cal()); math.Abs(got-100) > 1e-9 {
		t.Fatalf("parallel Overall = %v, want 100", got)
	}
	if got := Serial(c, cal()); math.Abs(got-200) > 1e-9 {
		t.Fatalf("Serial = %v, want 200", got)
	}
}

func TestFrameGatesAreFree(t *testing.T) {
	c := circuit.New(1)
	for i := 0; i < 10; i++ {
		c.MustAppend(gate.RZ, []int{0}, 0.1)
	}
	if got := Overall(c, cal()); got != 0 {
		t.Fatalf("rz chain latency = %v, want 0", got)
	}
}

func TestCXDominatedProgram(t *testing.T) {
	// The paper's observation: CX dominates gate-based latency.
	c := circuit.New(2)
	for i := 0; i < 5; i++ {
		c.MustAppend(gate.CX, []int{0, 1})
	}
	want := 5 * 974.9
	if got := Overall(c, cal()); math.Abs(got-want) > 1e-6 {
		t.Fatalf("CX chain = %v, want %v", got, want)
	}
}
