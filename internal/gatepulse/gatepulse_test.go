package gatepulse

import (
	"math"
	"testing"

	"accqoc/internal/circuit"
	"accqoc/internal/gate"
	"accqoc/internal/topology"
)

func cal() topology.Calibration { return topology.MelbourneCalibration() }

func TestGateLatencyTable(t *testing.T) {
	c := cal()
	cases := map[gate.Name]float64{
		gate.RZ:   0,
		gate.T:    0,
		gate.U1:   0,
		gate.X:    100,
		gate.H:    100,
		gate.U2:   50,
		gate.U3:   100,
		gate.CX:   974.9,
		gate.Swap: 3 * 974.9,
	}
	for name, want := range cases {
		if got := GateLatency(name, c); math.Abs(got-want) > 1e-9 {
			t.Errorf("GateLatency(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestOverallSerialChain(t *testing.T) {
	c := circuit.New(2)
	c.MustAppend(gate.X, []int{0})
	c.MustAppend(gate.CX, []int{0, 1})
	c.MustAppend(gate.X, []int{1})
	got := Overall(c, cal())
	want := 100 + 974.9 + 100
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Overall = %v, want %v", got, want)
	}
}

func TestOverallParallelism(t *testing.T) {
	// Two X gates on different qubits run concurrently.
	c := circuit.New(2)
	c.MustAppend(gate.X, []int{0})
	c.MustAppend(gate.X, []int{1})
	if got := Overall(c, cal()); math.Abs(got-100) > 1e-9 {
		t.Fatalf("parallel Overall = %v, want 100", got)
	}
	if got := Serial(c, cal()); math.Abs(got-200) > 1e-9 {
		t.Fatalf("Serial = %v, want 200", got)
	}
}

func TestFrameGatesAreFree(t *testing.T) {
	c := circuit.New(1)
	for i := 0; i < 10; i++ {
		c.MustAppend(gate.RZ, []int{0}, 0.1)
	}
	if got := Overall(c, cal()); got != 0 {
		t.Fatalf("rz chain latency = %v, want 0", got)
	}
}

// driftedCal is a deliberately non-Melbourne calibration: frame changes
// cost real time, and the 1Q/CX latencies are swapped so any hidden
// assumption that "CX is the long gate" shows up immediately. Every
// pre-registry test pinned MelbourneCalibration(); with calibration
// epochs, GateLatency must be correct for arbitrary calibrations.
func driftedCal() topology.Calibration {
	return topology.Calibration{
		T1ns:            40000,
		T2ns:            35000,
		CXLatencyNs:     100,   // swapped with the 1q latency
		Gate1QLatencyNs: 974.9, // swapped with the CX latency
		FrameLatencyNs:  10,    // frame changes are no longer free
		CXError:         1e-2,
		Gate1QError:     2e-3,
	}
}

func TestGateLatencyNonMelbourneCalibrations(t *testing.T) {
	c := driftedCal()
	cases := map[gate.Name]float64{
		gate.RZ:   10, // frame gates inherit FrameLatencyNs, not zero
		gate.T:    10,
		gate.U1:   10,
		gate.Z:    10,
		gate.X:    974.9,
		gate.H:    974.9,
		gate.U2:   974.9 / 2, // still half a 1q pulse under any calibration
		gate.U3:   974.9,
		gate.CX:   100,
		gate.CZ:   100,
		gate.Swap: 300, // 3 CXs at the swapped latency
		gate.CCX:  6*100 + 2*974.9,
	}
	for name, want := range cases {
		if got := GateLatency(name, c); math.Abs(got-want) > 1e-9 {
			t.Errorf("GateLatency(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestOverallSerialUnderSwappedLatencies(t *testing.T) {
	c := driftedCal()
	// x(q0); cx(q0,q1); x(q1): the chain is serial through q0→q1.
	prog := circuit.New(2)
	prog.MustAppend(gate.X, []int{0})
	prog.MustAppend(gate.CX, []int{0, 1})
	prog.MustAppend(gate.X, []int{1})
	want := 974.9 + 100 + 974.9
	if got := Overall(prog, c); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Overall = %v, want %v", got, want)
	}
	if got := Serial(prog, c); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Serial = %v, want %v", got, want)
	}
	// With swapped latencies, a 1q-dominated program is now slower than a
	// CX-dominated one of equal gate count — the inversion a frozen
	// Melbourne assumption would miss.
	oneQ := circuit.New(2)
	twoQ := circuit.New(2)
	for i := 0; i < 4; i++ {
		oneQ.MustAppend(gate.X, []int{0})
		twoQ.MustAppend(gate.CX, []int{0, 1})
	}
	if o, tw := Overall(oneQ, c), Overall(twoQ, c); o <= tw {
		t.Fatalf("swapped calibration: 1q chain %v not slower than CX chain %v", o, tw)
	}
}

func TestFrameGatesCostFrameLatency(t *testing.T) {
	c := driftedCal()
	prog := circuit.New(1)
	for i := 0; i < 10; i++ {
		prog.MustAppend(gate.RZ, []int{0}, 0.1)
	}
	if got, want := Overall(prog, c), 100.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("rz chain under nonzero frame latency = %v, want %v", got, want)
	}
	// And a zero-frame calibration (the Melbourne default) keeps them free.
	if got := Overall(prog, topology.MelbourneCalibration()); got != 0 {
		t.Fatalf("rz chain under zero frame latency = %v, want 0", got)
	}
}

func TestOverallScalesWithCalibrationDrift(t *testing.T) {
	base := topology.MelbourneCalibration()
	drifted := base.Drift(2)
	prog := circuit.New(2)
	prog.MustAppend(gate.X, []int{0})
	prog.MustAppend(gate.CX, []int{0, 1})
	want := 1.02 * Overall(prog, base)
	if got := Overall(prog, drifted); math.Abs(got-want) > 1e-6 {
		t.Fatalf("2%% drifted Overall = %v, want %v", got, want)
	}
	if got, want := Serial(prog, drifted), 1.02*Serial(prog, base); math.Abs(got-want) > 1e-6 {
		t.Fatalf("2%% drifted Serial = %v, want %v", got, want)
	}
}

func TestCXDominatedProgram(t *testing.T) {
	// The paper's observation: CX dominates gate-based latency.
	c := circuit.New(2)
	for i := 0; i < 5; i++ {
		c.MustAppend(gate.CX, []int{0, 1})
	}
	want := 5 * 974.9
	if got := Overall(c, cal()); math.Abs(got-want) > 1e-6 {
		t.Fatalf("CX chain = %v, want %v", got, want)
	}
}
