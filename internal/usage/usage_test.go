package usage

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"accqoc/internal/precompile"
)

func entry(key string, iters int, wallNs float64, seeded bool) *precompile.Entry {
	return &precompile.Entry{
		Key:         key,
		NumQubits:   1,
		Iterations:  iters,
		TrainWallNs: wallNs,
		Seeded:      seeded,
	}
}

// TestLedgerAccumulation pins the core accounting: trainings, provenance,
// iterations, wall time, hits, and the same-entry idempotency of
// EntryAdded (hook-then-backfill double delivery).
func TestLedgerAccumulation(t *testing.T) {
	l := NewLedger(Options{})
	a := entry("a", 100, 5e6, false)
	l.EntryAdded(a)
	l.EntryAdded(a) // backfill re-delivery: must not recount
	l.EntryHit("a")
	l.EntryHit("a")
	l.EntryAdded(entry("a", 40, 2e6, true)) // epoch re-training accumulates
	l.EntryAdded(entry("b", 7, 1e6, true))

	rep := l.Report(0)
	if rep.TrackedKeys != 2 {
		t.Fatalf("tracked keys = %d, want 2", rep.TrackedKeys)
	}
	if rep.Totals.Trainings != 3 || rep.Totals.Seeded != 2 || rep.Totals.Cold != 1 {
		t.Fatalf("totals trainings/seeded/cold = %d/%d/%d, want 3/2/1",
			rep.Totals.Trainings, rep.Totals.Seeded, rep.Totals.Cold)
	}
	if rep.Totals.Iterations != 147 {
		t.Fatalf("total iterations = %d, want 147", rep.Totals.Iterations)
	}
	if rep.Totals.Hits != 2 {
		t.Fatalf("total hits = %d, want 2", rep.Totals.Hits)
	}
	if got, want := rep.Totals.TrainWallMillis, 8.0; got != want {
		t.Fatalf("total wall millis = %v, want %v", got, want)
	}
	// Ranking: score = iterations × hits, so "a" (140×2) beats "b" (7×0).
	if rep.Top[0].Key != "a" || rep.Top[0].Score != 280 {
		t.Fatalf("top[0] = %+v, want key a score 280", rep.Top[0])
	}
	if rep.Top[0].Trainings != 2 || rep.Top[0].Seeded != 1 || rep.Top[0].Cold != 1 {
		t.Fatalf("row a provenance = %+v", rep.Top[0])
	}
}

// TestLedgerSnapshotCarriedHits pins the restart path: an entry loaded
// with a nonzero Hits field seeds its row's hit count exactly once, even
// when the entry is re-delivered or later replaced.
func TestLedgerSnapshotCarriedHits(t *testing.T) {
	l := NewLedger(Options{})
	e := entry("a", 10, 0, false)
	e.Hits = 7
	l.EntryAdded(e)
	l.EntryAdded(e) // re-delivery
	if st := l.Stats(); st.Hits != 7 {
		t.Fatalf("hits after carried load = %d, want 7", st.Hits)
	}
	repl := entry("a", 3, 0, true)
	repl.Hits = 7 // a replace with the same carried count must not double
	l.EntryAdded(repl)
	if st := l.Stats(); st.Hits != 7 {
		t.Fatalf("hits after replace = %d, want 7", st.Hits)
	}
}

// TestLedgerRegret pins the eviction-regret latch: the first post-eviction
// miss charges the row's accumulated cost once; further misses only count;
// a re-add re-arms the latch.
func TestLedgerRegret(t *testing.T) {
	l := NewLedger(Options{})
	l.EntryAdded(entry("a", 50, 3e6, false))
	l.EntryMissed("zzz") // unknown key: no row, no regret
	l.EntryRemoved("a")
	if st := l.Stats(); st.RegretEvents != 0 || st.Evictions != 1 {
		t.Fatalf("eviction alone charged regret: %+v", st)
	}
	l.EntryMissed("a")
	l.EntryMissed("a")
	st := l.Stats()
	if st.RegretEvents != 1 || st.RegretIterations != 50 {
		t.Fatalf("regret events/iterations = %d/%d, want 1/50", st.RegretEvents, st.RegretIterations)
	}
	if got, want := st.RegretWallSecs, 3e-3; got != want {
		t.Fatalf("regret wall = %v, want %v", got, want)
	}

	// Re-train (re-add) then evict and miss again: a second charge, now
	// with the accumulated cost of both trainings.
	l.EntryAdded(entry("a", 10, 1e6, true))
	l.EntryRemoved("a")
	l.EntryMissed("a")
	st = l.Stats()
	if st.RegretEvents != 2 || st.RegretIterations != 50+60 {
		t.Fatalf("second regret events/iterations = %d/%d, want 2/110", st.RegretEvents, st.RegretIterations)
	}

	rep := l.Report(0)
	if rep.Top[0].MissesEvicted != 3 || rep.Top[0].Evictions != 2 {
		t.Fatalf("row misses/evictions = %d/%d, want 3/2", rep.Top[0].MissesEvicted, rep.Top[0].Evictions)
	}
}

// TestLedgerCoOccurrence pins the request-history miner: unordered pair
// counts, per-key inter-arrival means under a fake clock, and the report
// ordering.
func TestLedgerCoOccurrence(t *testing.T) {
	clock := time.Unix(1000, 0)
	l := NewLedger(Options{now: func() time.Time { return clock }})
	l.RecordRequest([]string{"b", "a", "c"})
	clock = clock.Add(10 * time.Millisecond)
	l.RecordRequest([]string{"a", "b"})
	clock = clock.Add(30 * time.Millisecond)
	l.RecordRequest([]string{"a", "b"})

	rep := l.Report(0)
	if rep.Requests != 3 || rep.HistorySize != 3 {
		t.Fatalf("requests/history = %d/%d, want 3/3", rep.Requests, rep.HistorySize)
	}
	if len(rep.Pairs) != 3 {
		t.Fatalf("pairs = %v, want 3 distinct", rep.Pairs)
	}
	if rep.Pairs[0].Keys != [2]string{"a", "b"} || rep.Pairs[0].Count != 3 {
		t.Fatalf("top pair = %+v, want a,b ×3", rep.Pairs[0])
	}
	var a *EntryCost
	for i := range rep.Top {
		if rep.Top[i].Key == "a" {
			a = &rep.Top[i]
		}
	}
	if a == nil {
		t.Fatal("key a missing from report")
	}
	// Mean inter-arrival of a: (10ms + 30ms) / 2 = 20ms.
	if a.MeanInterarrivalMillis != 20 {
		t.Fatalf("mean inter-arrival = %v ms, want 20", a.MeanInterarrivalMillis)
	}
}

// TestLedgerBounds pins the two caps: the history ring holds the newest
// HistorySize windows, and the pair map never grows past PairCap — at
// capacity an unseen pair displaces the lowest-count one (space-saving),
// with DroppedPairs counting the displacements.
func TestLedgerBounds(t *testing.T) {
	l := NewLedger(Options{HistorySize: 4, PairCap: 2})
	for i := 0; i < 10; i++ {
		l.RecordRequest([]string{fmt.Sprintf("k%02d", i), fmt.Sprintf("k%02d", i+100)})
	}
	rep := l.Report(0)
	if rep.Requests != 10 || rep.HistorySize != 4 {
		t.Fatalf("requests/history = %d/%d, want 10/4", rep.Requests, rep.HistorySize)
	}
	if len(rep.Pairs) != 2 {
		t.Fatalf("pair map grew past cap: %d pairs", len(rep.Pairs))
	}
	if rep.DroppedPairs != 8 {
		t.Fatalf("dropped pairs = %d, want 8", rep.DroppedPairs)
	}
	// A pair displaced long ago can come back: it re-enters with the
	// evicted minimum plus one (the space-saving overestimate), so the
	// recorded count is an upper bound, never a silent drop.
	l.RecordRequest([]string{"k00", "k100"})
	rep = l.Report(0)
	if rep.Pairs[0].Keys != [2]string{"k00", "k100"} {
		t.Fatalf("re-admitted pair missing: %+v", rep.Pairs)
	}
	if len(rep.Pairs) != 2 || rep.DroppedPairs != 9 {
		t.Fatalf("pairs/dropped after re-admission = %d/%d, want 2/9", len(rep.Pairs), rep.DroppedPairs)
	}
}

// TestLedgerPairDisplacement is the starvation regression: before the
// space-saving fix, once the pair map filled, a brand-new hot pair was
// dropped forever while stale cold pairs squatted. Now the fresh hot pair
// must displace the cold one and accumulate.
func TestLedgerPairDisplacement(t *testing.T) {
	l := NewLedger(Options{PairCap: 1})
	l.RecordRequest([]string{"cold1", "cold2"}) // fills the map
	for i := 0; i < 5; i++ {
		l.RecordRequest([]string{"hot1", "hot2"})
	}
	rep := l.Report(0)
	if len(rep.Pairs) != 1 {
		t.Fatalf("pair map size = %d, want 1", len(rep.Pairs))
	}
	if rep.Pairs[0].Keys != [2]string{"hot1", "hot2"} {
		t.Fatalf("hot pair failed to displace cold squatter: %+v", rep.Pairs[0])
	}
	// Displaced min was 1, so the hot pair entered at 2 and gained 4 more.
	if rep.Pairs[0].Count != 6 {
		t.Fatalf("hot pair count = %d, want 6", rep.Pairs[0].Count)
	}
	if rep.DroppedPairs != 1 {
		t.Fatalf("dropped pairs = %d, want 1 displacement", rep.DroppedPairs)
	}
}

// TestLedgerInterarrivalDuplicateTimestamps is the divisor-bias
// regression: same-timestamp arrivals contribute no gap and must not
// inflate the mean's divisor. Three arrivals at t, t, t+20ms sample
// exactly one 20ms gap — the mean is 20ms, not 10ms.
func TestLedgerInterarrivalDuplicateTimestamps(t *testing.T) {
	clock := time.Unix(1000, 0)
	l := NewLedger(Options{now: func() time.Time { return clock }})
	l.RecordRequest([]string{"a"})
	l.RecordRequest([]string{"a"}) // duplicate timestamp: no gap sampled
	clock = clock.Add(20 * time.Millisecond)
	l.RecordRequest([]string{"a"})
	rep := l.Report(0)
	if rep.Top[0].MeanInterarrivalMillis != 20 {
		t.Fatalf("mean inter-arrival = %v ms, want 20", rep.Top[0].MeanInterarrivalMillis)
	}
	// A key with arrivals but no timestamp-distinct gap reports no mean.
	l2 := NewLedger(Options{now: func() time.Time { return clock }})
	l2.RecordRequest([]string{"b"})
	l2.RecordRequest([]string{"b"})
	if got := l2.Report(0).Top[0].MeanInterarrivalMillis; got != 0 {
		t.Fatalf("gapless mean inter-arrival = %v ms, want 0", got)
	}
}

// TestLedgerHitWithoutRow is the registration-order regression: a hit
// delivered before any EntryAdded (hook installed without backfill) must
// create the row rather than vanish, and the later add still adopts
// snapshot-carried hits exactly once on top.
func TestLedgerHitWithoutRow(t *testing.T) {
	l := NewLedger(Options{})
	l.EntryHit("a")
	if st := l.Stats(); st.Hits != 1 || st.TrackedKeys != 1 {
		t.Fatalf("hits/tracked after early hit = %d/%d, want 1/1", st.Hits, st.TrackedKeys)
	}
	e := entry("a", 10, 0, false)
	e.Hits = 2
	l.EntryAdded(e)
	if st := l.Stats(); st.Hits != 3 {
		t.Fatalf("hits after add with carried count = %d, want 3", st.Hits)
	}
}

// TestLedgerTopN pins the report truncation.
func TestLedgerTopN(t *testing.T) {
	l := NewLedger(Options{})
	for i := 0; i < 5; i++ {
		e := entry(fmt.Sprintf("k%d", i), 10*(i+1), 0, false)
		l.EntryAdded(e)
		l.EntryHit(e.Key)
	}
	rep := l.Report(2)
	if len(rep.Top) != 2 {
		t.Fatalf("topN = %d rows, want 2", len(rep.Top))
	}
	if rep.Top[0].Key != "k4" || rep.Top[1].Key != "k3" {
		t.Fatalf("top order = %s,%s, want k4,k3", rep.Top[0].Key, rep.Top[1].Key)
	}
	if rep.TrackedKeys != 5 {
		t.Fatalf("tracked keys = %d, want 5 (truncation must not hide totals)", rep.TrackedKeys)
	}
}

// TestLedgerConcurrency hammers every entry point under the race detector
// and checks the totals settle to the oracle counts.
func TestLedgerConcurrency(t *testing.T) {
	l := NewLedger(Options{HistorySize: 8, PairCap: 64})
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("w%d", w)
			for i := 0; i < perWorker; i++ {
				l.EntryAdded(entry(key, 1, 1, i%2 == 0))
				l.EntryHit(key)
				l.EntryRemoved(key)
				l.EntryMissed(key)
				l.RecordRequest([]string{key, "shared"})
				l.Stats()
				l.Report(4)
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	want := int64(workers * perWorker)
	if st.Trainings != want || st.Hits != want || st.Evictions != want {
		t.Fatalf("trainings/hits/evictions = %d/%d/%d, want %d each", st.Trainings, st.Hits, st.Evictions, want)
	}
	// Every miss follows an eviction of a costed row, so every cycle
	// charges regret exactly once.
	if st.RegretEvents != want {
		t.Fatalf("regret events = %d, want %d", st.RegretEvents, want)
	}
	if st.Requests != want {
		t.Fatalf("requests = %d, want %d", st.Requests, want)
	}
}
