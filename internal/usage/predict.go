package usage

// The Predictor is the read side of the ledger's request-history mining —
// the piece that turns the (previously write-only) history ring and the
// co-occurrence pair table into a ranked next-key forecast for the
// speculative-training driver. Given the keys of a request window it asks:
// which keys, not in this window, tend to arrive alongside these, and
// which of them are due back soon?
//
// The score for a candidate key combines three signals:
//
//   - ring co-occurrence: every recent ring window sharing at least one
//     key with the input window votes for its other keys, weighted by the
//     overlap size and a geometric age decay (newest windows count most);
//   - the pair table: long-run co-occurrence counts between the window's
//     keys and the candidate, normalized by the total request count so the
//     prior stays comparable to the recency term as history grows;
//   - inter-arrival dueness: a multiplicative factor in [1, 2] that grows
//     as the time since the candidate's last arrival approaches its mean
//     inter-arrival gap — a key that is "due" ranks above one just served.
//
// Results are deterministic: ties break on ascending key.

import (
	"sort"
	"strings"
)

// ringDecay is the per-window geometric age decay of the co-occurrence
// vote: the window before last counts 0.85 of the last, and so on.
const ringDecay = 0.85

// Prediction is one ranked likely-next key.
type Prediction struct {
	Key   string  `json:"key"`
	Score float64 `json:"score"`
}

// Predictor mines a Ledger's history ring and pair table. It holds no
// state of its own; construct one per call site with Ledger.Predictor.
type Predictor struct {
	l *Ledger
}

// Predictor returns a predictor over this ledger.
func (l *Ledger) Predictor() *Predictor { return &Predictor{l: l} }

// Predict ranks the keys most likely to arrive next given the keys of a
// request window, best first, at most topN results (topN <= 0 keeps
// everything with a positive score). Keys already in the window are never
// predicted.
func (p *Predictor) Predict(window []string, topN int) []Prediction {
	if len(window) == 0 {
		return nil
	}
	in := make(map[string]bool, len(window))
	for _, k := range window {
		in[k] = true
	}

	l := p.l
	now := l.opts.now().UnixNano()
	l.mu.Lock()
	defer l.mu.Unlock()

	scores := map[string]float64{}

	// Recency vote from the history ring, newest window first.
	weight := 1.0
	l.eachWindowNewestFirst(func(req request) {
		overlap := 0
		for _, k := range req.keys {
			if in[k] {
				overlap++
			}
		}
		if overlap > 0 {
			for _, k := range req.keys {
				if !in[k] {
					scores[k] += weight * float64(overlap)
				}
			}
		}
		weight *= ringDecay
	})

	// Long-run prior from the pair table: counts between a window key and
	// the candidate, as a fraction of all requests.
	if l.requests > 0 {
		for pk, n := range l.pairs {
			a, b, _ := strings.Cut(pk, "\x00")
			switch {
			case in[a] && !in[b]:
				scores[b] += float64(n) / float64(l.requests)
			case in[b] && !in[a]:
				scores[a] += float64(n) / float64(l.requests)
			}
		}
	}

	preds := make([]Prediction, 0, len(scores))
	for k, s := range scores {
		if s <= 0 {
			continue
		}
		preds = append(preds, Prediction{Key: k, Score: s * l.duenessLocked(k, now)})
	}
	sort.Slice(preds, func(i, j int) bool {
		if preds[i].Score != preds[j].Score {
			return preds[i].Score > preds[j].Score
		}
		return preds[i].Key < preds[j].Key
	})
	if topN > 0 && len(preds) > topN {
		preds = preds[:topN]
	}
	return preds
}

// duenessLocked returns the inter-arrival boost for a key: 1 + min(1,
// elapsed/mean), where mean is the key's sampled mean inter-arrival gap.
// Keys without two timestamp-distinct arrivals get the neutral factor 1.
func (l *Ledger) duenessLocked(key string, nowNs int64) float64 {
	r, ok := l.rows[key]
	if !ok || r.interSamples == 0 || r.sumInterNs <= 0 || r.lastArrivalNs <= 0 {
		return 1
	}
	mean := r.sumInterNs / float64(r.interSamples)
	elapsed := float64(nowNs - r.lastArrivalNs)
	if elapsed <= 0 {
		return 1
	}
	due := elapsed / mean
	if due > 1 {
		due = 1
	}
	return 1 + due
}

// eachWindowNewestFirst visits every recorded ring window, newest first.
// Callers hold l.mu.
func (l *Ledger) eachWindowNewestFirst(visit func(request)) {
	n := len(l.ring)
	if n == 0 {
		return
	}
	start := n - 1
	if n == l.opts.HistorySize {
		start = (l.ringNext - 1 + n) % n
	}
	for i := 0; i < n; i++ {
		visit(l.ring[(start-i+n)%n])
	}
}
