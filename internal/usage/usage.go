// Package usage is the cost-and-usage accounting layer of the serving
// stack. The paper's core claim is that similarity structure predicts
// training cost; the ROADMAP's cost-aware cache policy needs that cost
// *measured* per entry before any policy can act on it. This package is
// the measurement substrate and nothing more — deliberately policy-free:
// a Ledger observes the store through libstore.Hook/AccessHook and the
// request stream through RecordRequest, and changes no eviction or
// training decision.
//
// Per entry it accounts observed training iterations and wall time,
// seeded-vs-cold provenance, cumulative hits, and eviction counts; per
// request it maintains a bounded history ring from which group
// co-occurrence (keys arriving together in one request/batch window) and
// per-key inter-arrival statistics are mined; and it charges an
// eviction-regret counter — the ledger cost thrown away — the first time
// an evicted entry misses again.
//
// A Ledger is owned per device (not per epoch) by the device registry, so
// cost history survives recalibrations: keys are content addresses shared
// across epochs, and each new epoch's trainings accumulate onto the same
// rows. All methods are safe for concurrent use; hook callbacks run under
// a store shard lock and must stay cheap (one mutex, map ops only).
package usage

import (
	"sort"
	"strings"
	"sync"
	"time"

	"accqoc/internal/precompile"
)

// Options tunes a Ledger. The zero value selects the defaults.
type Options struct {
	// HistorySize bounds the request-history ring. Default 256.
	HistorySize int
	// PairCap bounds the co-occurrence pair map. At capacity an unseen
	// pair displaces the lowest-count pair (space-saving admission);
	// DroppedPairs counts those displacements. Default 4096.
	PairCap int
	// now overrides the clock (tests).
	now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.HistorySize <= 0 {
		o.HistorySize = 256
	}
	if o.PairCap <= 0 {
		o.PairCap = 4096
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// row is one key's accumulated cost history.
type row struct {
	key       string
	numQubits int
	// live tracks store residency (set by EntryAdded, cleared by
	// EntryRemoved).
	live bool
	// trainings counts distinct entries observed for the key (initial
	// training, epoch re-trainings, post-eviction re-trainings alike);
	// seeded/cold partition them by warm-start provenance.
	trainings int64
	seeded    int64
	cold      int64
	// iterations and wallNs sum the observed training cost.
	iterations int64
	wallNs     float64
	// hits counts lookups that found the key while resident.
	hits int64
	// missesAfterEviction counts lookups that arrived while evicted.
	missesAfterEviction int64
	evictions           int64
	// regretCharged latches after the first post-eviction miss charged
	// this row's cost to the regret totals; re-arms on the next add.
	regretCharged bool
	// lastEntry dedups hook re-deliveries of the same entry (the
	// hook-then-backfill pattern can add one entry twice).
	lastEntry *precompile.Entry
	// arrivals/lastArrivalNs/sumInterNs are the inter-arrival statistics
	// fed by RecordRequest. interSamples counts the gaps actually summed
	// into sumInterNs: same-timestamp arrivals contribute no gap, so the
	// mean divides by interSamples, not arrivals-1.
	arrivals      int64
	lastArrivalNs int64
	sumInterNs    float64
	interSamples  int64
}

// request is one history-ring element.
type request struct {
	unixNs int64
	keys   []string
}

// Ledger is one device's cost accounting. The zero value is not usable;
// construct with NewLedger.
type Ledger struct {
	opts Options

	mu   sync.Mutex
	rows map[string]*row

	ring     []request
	ringNext int
	requests int64

	pairs        map[string]int64 // "keyA\x00keyB" with keyA < keyB
	droppedPairs int64

	regretEvents     int64
	regretIterations int64
	regretWallNs     float64
	evictions        int64
}

// NewLedger returns an empty ledger.
func NewLedger(opts Options) *Ledger {
	opts = opts.withDefaults()
	return &Ledger{
		opts:  opts,
		rows:  map[string]*row{},
		ring:  make([]request, 0, opts.HistorySize),
		pairs: map[string]int64{},
	}
}

func (l *Ledger) rowFor(key string) *row {
	r, ok := l.rows[key]
	if !ok {
		r = &row{key: key}
		l.rows[key] = r
	}
	return r
}

// EntryAdded implements libstore.Hook: accumulate the entry's training
// cost onto its row. Re-delivery of the same *Entry (hook backfill,
// AddLibrary merge) is idempotent; a genuinely new entry for a known key
// (epoch re-training, post-eviction re-training) accumulates.
func (l *Ledger) EntryAdded(e *precompile.Entry) {
	if e == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	r := l.rowFor(e.Key)
	if r.lastEntry == e {
		r.live = true
		return
	}
	if r.trainings == 0 {
		// First sighting: adopt the snapshot-carried hit count, exactly
		// once (replacements and reloads must not double it).
		r.hits += e.Hits
	}
	r.lastEntry = e
	r.live = true
	r.regretCharged = false
	r.numQubits = e.NumQubits
	r.trainings++
	if e.Seeded {
		r.seeded++
	} else {
		r.cold++
	}
	r.iterations += int64(e.Iterations)
	r.wallNs += e.TrainWallNs
}

// EntryRemoved implements libstore.Hook: mark the row evicted. The cost is
// not charged to regret yet — regret means the eviction turned out to be
// wrong, i.e. the key was requested again.
func (l *Ledger) EntryRemoved(key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.rows[key]
	if !ok {
		return
	}
	r.live = false
	r.evictions++
	l.evictions++
}

// EntryHit implements libstore.AccessHook. The row is created if absent
// (hook registered without backfill) so hit counts survive registration
// order, matching EntryAdded/RecordRequest behavior.
func (l *Ledger) EntryHit(key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rowFor(key).hits++
}

// EntryMissed implements libstore.AccessHook: the first miss on an
// evicted, costed row charges its accumulated cost to the regret totals
// (once per eviction — the latch re-arms when the key is re-added).
func (l *Ledger) EntryMissed(key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.rows[key]
	if !ok || r.live {
		return
	}
	r.missesAfterEviction++
	if !r.regretCharged && r.trainings > 0 {
		r.regretCharged = true
		l.regretEvents++
		l.regretIterations += r.iterations
		l.regretWallNs += r.wallNs
	}
}

// AddLibrary backfills the ledger from a store snapshot — the
// hook-first-backfill-second pattern: entries racing in between are
// delivered twice and deduplicated on entry identity.
func (l *Ledger) AddLibrary(lib *precompile.Library) {
	if lib == nil {
		return
	}
	for _, e := range lib.Entries {
		l.EntryAdded(e)
	}
}

// RecordRequest files one resolved request (or async-batch) window: its
// unique keys enter the history ring, every unordered key pair's
// co-occurrence count increments, and each key's inter-arrival statistics
// advance. Callers pass the deduplicated key set of one resolveGroups
// pass; the slice is copied.
func (l *Ledger) RecordRequest(keys []string) {
	if len(keys) == 0 {
		return
	}
	now := l.opts.now().UnixNano()
	kc := append([]string(nil), keys...)
	sort.Strings(kc)

	l.mu.Lock()
	defer l.mu.Unlock()
	l.requests++
	if len(l.ring) < l.opts.HistorySize {
		l.ring = append(l.ring, request{unixNs: now, keys: kc})
	} else {
		l.ring[l.ringNext] = request{unixNs: now, keys: kc}
		l.ringNext = (l.ringNext + 1) % l.opts.HistorySize
	}
	for i := 0; i < len(kc); i++ {
		r := l.rowFor(kc[i])
		r.arrivals++
		if r.lastArrivalNs > 0 && now > r.lastArrivalNs {
			r.sumInterNs += float64(now - r.lastArrivalNs)
			r.interSamples++
		}
		r.lastArrivalNs = now
		for j := i + 1; j < len(kc); j++ {
			if kc[i] == kc[j] {
				continue
			}
			pk := kc[i] + "\x00" + kc[j]
			if _, ok := l.pairs[pk]; !ok && len(l.pairs) >= l.opts.PairCap {
				// Space-saving admission: displace the lowest-count pair
				// instead of refusing forever, and give the newcomer that
				// count plus one (the classic overestimate) so a genuinely
				// hot new pair climbs instead of being instantly re-evicted.
				// DroppedPairs keeps counting the overflow churn.
				l.pairs[pk] = l.evictColdestPairLocked() + 1
				l.droppedPairs++
				continue
			}
			l.pairs[pk]++
		}
	}
}

// evictColdestPairLocked removes the lowest-count pair (ties: lexically
// smallest key, for determinism) and returns its count. Callers hold l.mu
// and guarantee the map is non-empty.
func (l *Ledger) evictColdestPairLocked() int64 {
	var minKey string
	var minCount int64
	first := true
	for pk, n := range l.pairs {
		if first || n < minCount || (n == minCount && pk < minKey) {
			minKey, minCount, first = pk, n, false
		}
	}
	delete(l.pairs, minKey)
	return minCount
}

// Totals are the ledger-wide accumulated sums.
type Totals struct {
	Trainings       int64   `json:"trainings"`
	Seeded          int64   `json:"seeded"`
	Cold            int64   `json:"cold"`
	Iterations      int64   `json:"iterations"`
	TrainWallMillis float64 `json:"train_wall_millis"`
	Hits            int64   `json:"hits"`
}

// Regret totals the ledger cost already thrown away by eviction: each
// event is one evicted entry that was requested again, charged with the
// iterations and wall time its trainings had accumulated.
type Regret struct {
	Events          int64   `json:"events"`
	Iterations      int64   `json:"iterations"`
	TrainWallMillis float64 `json:"train_wall_millis"`
	Evictions       int64   `json:"evictions"`
}

// EntryCost is one key's report row.
type EntryCost struct {
	Key       string `json:"key"`
	NumQubits int    `json:"num_qubits"`
	Live      bool   `json:"live"`
	Hits      int64  `json:"hits"`
	Trainings int64  `json:"trainings"`
	Seeded    int64  `json:"seeded"`
	Cold      int64  `json:"cold"`
	// Iterations and TrainWallMillis are the accumulated observed cost of
	// every training this key has paid for (across epochs and evictions).
	Iterations      int64   `json:"iterations"`
	TrainWallMillis float64 `json:"train_wall_millis"`
	Evictions       int64   `json:"evictions,omitempty"`
	MissesEvicted   int64   `json:"misses_after_eviction,omitempty"`
	// Score ranks the report: iterations × hits, the cost-aware policy's
	// raw signal (expensive and popular sorts first).
	Score float64 `json:"score"`
	// MeanInterarrivalMillis is the mean gap between request windows
	// naming this key; 0 until the key has arrived twice.
	MeanInterarrivalMillis float64 `json:"mean_interarrival_millis,omitempty"`
}

// PairCount is one co-occurrence pair's report row.
type PairCount struct {
	Keys  [2]string `json:"keys"`
	Count int64     `json:"count"`
}

// Report is a point-in-time accounting view (the GET /v1/library/usage
// body, wrapped with a device name by the server).
type Report struct {
	Requests    int64  `json:"requests"`
	TrackedKeys int    `json:"tracked_keys"`
	HistorySize int    `json:"history_size"`
	Totals      Totals `json:"totals"`
	// Top lists the highest-scoring entries, iterations×hits descending
	// (ties: iterations descending, then key).
	Top []EntryCost `json:"top"`
	// Pairs lists the most frequent co-occurring key pairs, count
	// descending (ties by key); DroppedPairs counts space-saving
	// displacements at the pair-map cap — nonzero means cold pairs have
	// been churned out and surviving counts are upper bounds.
	Pairs        []PairCount `json:"pairs"`
	DroppedPairs int64       `json:"dropped_pairs,omitempty"`
	Regret       Regret      `json:"regret"`
}

// Report builds the accounting view, keeping the topN highest-scoring
// entries and topN most frequent pairs (topN <= 0 keeps everything).
func (l *Ledger) Report(topN int) Report {
	l.mu.Lock()
	defer l.mu.Unlock()
	rep := Report{
		Requests:     l.requests,
		TrackedKeys:  len(l.rows),
		HistorySize:  len(l.ring),
		DroppedPairs: l.droppedPairs,
		Regret: Regret{
			Events:          l.regretEvents,
			Iterations:      l.regretIterations,
			TrainWallMillis: l.regretWallNs / 1e6,
			Evictions:       l.evictions,
		},
		Top:   []EntryCost{},
		Pairs: []PairCount{},
	}
	for _, r := range l.rows {
		rep.Totals.Trainings += r.trainings
		rep.Totals.Seeded += r.seeded
		rep.Totals.Cold += r.cold
		rep.Totals.Iterations += r.iterations
		rep.Totals.TrainWallMillis += r.wallNs / 1e6
		rep.Totals.Hits += r.hits
		ec := EntryCost{
			Key:             r.key,
			NumQubits:       r.numQubits,
			Live:            r.live,
			Hits:            r.hits,
			Trainings:       r.trainings,
			Seeded:          r.seeded,
			Cold:            r.cold,
			Iterations:      r.iterations,
			TrainWallMillis: r.wallNs / 1e6,
			Evictions:       r.evictions,
			MissesEvicted:   r.missesAfterEviction,
			Score:           float64(r.iterations) * float64(r.hits),
		}
		if r.interSamples > 0 {
			ec.MeanInterarrivalMillis = r.sumInterNs / float64(r.interSamples) / 1e6
		}
		rep.Top = append(rep.Top, ec)
	}
	sort.Slice(rep.Top, func(i, j int) bool {
		a, b := rep.Top[i], rep.Top[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Iterations != b.Iterations {
			return a.Iterations > b.Iterations
		}
		return a.Key < b.Key
	})
	if topN > 0 && len(rep.Top) > topN {
		rep.Top = rep.Top[:topN]
	}
	for pk, n := range l.pairs {
		a, b, _ := strings.Cut(pk, "\x00")
		rep.Pairs = append(rep.Pairs, PairCount{Keys: [2]string{a, b}, Count: n})
	}
	sort.Slice(rep.Pairs, func(i, j int) bool {
		a, b := rep.Pairs[i], rep.Pairs[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Keys[0] != b.Keys[0] {
			return a.Keys[0] < b.Keys[0]
		}
		return a.Keys[1] < b.Keys[1]
	})
	if topN > 0 && len(rep.Pairs) > topN {
		rep.Pairs = rep.Pairs[:topN]
	}
	return rep
}

// Stats is the scrape-time counter snapshot behind the accqoc_usage_*
// metric families.
type Stats struct {
	Requests         int64
	TrackedKeys      int
	Trainings        int64
	Seeded           int64
	Cold             int64
	Iterations       int64
	TrainWallSeconds float64
	Hits             int64
	RegretEvents     int64
	RegretIterations int64
	RegretWallSecs   float64
	Evictions        int64
	Pairs            int
	DroppedPairs     int64
}

// Stats returns the counter snapshot.
func (l *Ledger) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Requests:         l.requests,
		TrackedKeys:      len(l.rows),
		RegretEvents:     l.regretEvents,
		RegretIterations: l.regretIterations,
		RegretWallSecs:   l.regretWallNs / 1e9,
		Evictions:        l.evictions,
		Pairs:            len(l.pairs),
		DroppedPairs:     l.droppedPairs,
	}
	for _, r := range l.rows {
		st.Trainings += r.trainings
		st.Seeded += r.seeded
		st.Cold += r.cold
		st.Iterations += r.iterations
		st.TrainWallSeconds += r.wallNs / 1e9
		st.Hits += r.hits
	}
	return st
}

// EntryScore implements the cost-aware eviction policy's scorer
// (libstore.Scorer): the primary score is the accumulated iterations×hits
// product — the report's ranking signal — and the tiebreak is the raw
// accumulated iterations, so among never-hit entries an expensive one
// (667 iterations of 2Q training) outlives a nearly-free 1q one. Unknown
// keys score (0, 0). Called under a store shard lock; the ledger mutex is
// a leaf (no ledger method calls back into the store), so this is
// deadlock-free by construction.
func (l *Ledger) EntryScore(key string) (score, tiebreak float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.rows[key]
	if !ok {
		return 0, 0
	}
	return float64(r.iterations) * float64(r.hits), float64(r.iterations)
}

// LastWindow returns a copy of the newest request window's keys (the
// prefetch driver's prediction context), or nil when nothing has been
// recorded.
func (l *Ledger) LastWindow() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ring) == 0 {
		return nil
	}
	newest := len(l.ring) - 1
	if len(l.ring) == l.opts.HistorySize {
		newest = (l.ringNext - 1 + l.opts.HistorySize) % l.opts.HistorySize
	}
	return append([]string(nil), l.ring[newest].keys...)
}
