package usage

import (
	"testing"
	"time"
)

// TestPredictorRanksCoOccurringKeys pins the core mining: partners of the
// window's keys are ranked by recency-decayed ring co-occurrence plus the
// pair-table prior; keys in the window and never-co-occurring keys are
// excluded.
func TestPredictorRanksCoOccurringKeys(t *testing.T) {
	clock := time.Unix(1000, 0)
	l := NewLedger(Options{now: func() time.Time { return clock }})
	tick := func() { clock = clock.Add(10 * time.Millisecond) }

	l.RecordRequest([]string{"a", "b"})
	tick()
	l.RecordRequest([]string{"a", "c"})
	tick()
	l.RecordRequest([]string{"d"}) // no overlap with the probe window
	tick()

	preds := l.Predictor().Predict([]string{"a"}, 0)
	if len(preds) != 2 {
		t.Fatalf("predictions = %+v, want exactly b and c", preds)
	}
	// c co-occurred more recently than b, so it ranks first; d never
	// shared a window with a and must be absent; a itself is never
	// predicted.
	if preds[0].Key != "c" || preds[1].Key != "b" {
		t.Fatalf("order = %s,%s, want c,b", preds[0].Key, preds[1].Key)
	}
	if preds[0].Score <= preds[1].Score {
		t.Fatalf("scores not strictly ordered: %+v", preds)
	}

	if got := l.Predictor().Predict(nil, 0); got != nil {
		t.Fatalf("empty window predicted %+v, want nil", got)
	}
	if got := l.Predictor().Predict([]string{"zzz"}, 0); len(got) != 0 {
		t.Fatalf("unknown window predicted %+v, want none", got)
	}
}

// TestPredictorDueness pins the inter-arrival boost: with symmetric
// co-occurrence, the key whose time-since-last-arrival has reached its
// mean gap outranks the key that was just served, even though the latter
// co-occurred more recently.
func TestPredictorDueness(t *testing.T) {
	clock := time.Unix(1000, 0)
	l := NewLedger(Options{now: func() time.Time { return clock }})
	windows := [][]string{{"a", "b"}, {"a", "c"}, {"a", "b"}, {"a", "c"}}
	for _, w := range windows {
		l.RecordRequest(w)
		clock = clock.Add(10 * time.Millisecond)
	}
	// now = t+40ms: b last arrived at t+20 (elapsed = its 20ms mean, due
	// factor 2); c last arrived at t+30 (half due, factor 1.5).
	preds := l.Predictor().Predict([]string{"a"}, 0)
	if len(preds) != 2 || preds[0].Key != "b" {
		t.Fatalf("predictions = %+v, want due key b first", preds)
	}
}

// TestPredictorTopNAndRingWrap pins truncation and that mining reads the
// wrapped ring in true newest-first order.
func TestPredictorTopNAndRingWrap(t *testing.T) {
	clock := time.Unix(1000, 0)
	l := NewLedger(Options{HistorySize: 2, now: func() time.Time { return clock }})
	l.RecordRequest([]string{"a", "old"}) // falls off the size-2 ring
	clock = clock.Add(10 * time.Millisecond)
	l.RecordRequest([]string{"a", "mid"})
	clock = clock.Add(10 * time.Millisecond)
	l.RecordRequest([]string{"a", "new"})

	if w := l.LastWindow(); len(w) != 2 || w[0] != "a" || w[1] != "new" {
		t.Fatalf("last window = %v, want [a new]", w)
	}
	preds := l.Predictor().Predict([]string{"a"}, 1)
	if len(preds) != 1 {
		t.Fatalf("topN ignored: %+v", preds)
	}
	// "old" survives only in the pair table (its ring window was
	// overwritten), so ring recency must rank "new" first.
	if preds[0].Key != "new" {
		t.Fatalf("top prediction = %s, want new", preds[0].Key)
	}
}

// TestLastWindowEmpty pins the no-history case.
func TestLastWindowEmpty(t *testing.T) {
	if w := NewLedger(Options{}).LastWindow(); w != nil {
		t.Fatalf("last window of empty ledger = %v, want nil", w)
	}
}
