package mapping

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"accqoc/internal/circuit"
	"accqoc/internal/cmat"
	"accqoc/internal/crosstalk"
	"accqoc/internal/gate"
	"accqoc/internal/topology"
)

// permutationMatrix builds the unitary that relabels qubit l to layout[l].
func permutationMatrix(layout []int, n int) *cmat.Matrix {
	dim := 1 << n
	p := cmat.New(dim, dim)
	for logical := 0; logical < dim; logical++ {
		phys := 0
		for l := 0; l < n; l++ {
			bit := (logical >> (n - 1 - l)) & 1
			phys |= bit << (n - 1 - layout[l])
		}
		p.Set(phys, logical, 1)
	}
	return p
}

// checkEquivalent verifies U_mapped = Π_final · U_logical up to global
// phase, for same-size circuit and device.
func checkEquivalent(t *testing.T, logical *circuit.Circuit, res *Result) {
	t.Helper()
	ul, err := logical.Unitary()
	if err != nil {
		t.Fatal(err)
	}
	um, err := res.Mapped.Unitary()
	if err != nil {
		t.Fatal(err)
	}
	pi := permutationMatrix(res.FinalLayout, logical.NumQubits)
	want := cmat.Mul(pi, ul)
	d := float64(ul.Rows)
	overlap := cmplx.Abs(cmat.Trace(cmat.Mul(cmat.Dagger(want), um))) / d
	if math.Abs(overlap-1) > 1e-9 {
		t.Fatalf("mapped circuit not equivalent: overlap=%v", overlap)
	}
}

func TestMapAdjacentNoSwaps(t *testing.T) {
	dev := topology.Linear(3)
	c := circuit.New(3)
	c.MustAppend(gate.CX, []int{0, 1})
	res, err := Map(c, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 0 {
		t.Fatalf("SwapCount = %d, want 0", res.SwapCount)
	}
	checkEquivalent(t, c, res)
}

func TestMapInsertsSwap(t *testing.T) {
	dev := topology.Linear(3)
	c := circuit.New(3)
	c.MustAppend(gate.CX, []int{0, 2}) // distance 2 → one swap
	res, err := Map(c, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 1 {
		t.Fatalf("SwapCount = %d, want 1", res.SwapCount)
	}
	checkEquivalent(t, c, res)
}

func TestMapDirectionFix(t *testing.T) {
	dev := topology.Linear(2) // only CX 0→1 native
	c := circuit.New(2)
	c.MustAppend(gate.CX, []int{1, 0}) // needs the reversed direction
	res, err := Map(c, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DirectionFixes != 1 {
		t.Fatalf("DirectionFixes = %d, want 1", res.DirectionFixes)
	}
	checkEquivalent(t, c, res)
}

func TestMapRandomCircuitsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dev := topology.Linear(4)
	for trial := 0; trial < 10; trial++ {
		c := circuit.New(4)
		for i := 0; i < 12; i++ {
			if rng.Intn(2) == 0 {
				c.MustAppend(gate.H, []int{rng.Intn(4)})
			} else {
				a := rng.Intn(4)
				b := rng.Intn(4)
				for b == a {
					b = rng.Intn(4)
				}
				c.MustAppend(gate.CX, []int{a, b})
			}
		}
		res, err := Map(c, dev, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkEquivalent(t, c, res)
		// Every CX in the output must be native-direction adjacent.
		for _, g := range res.Mapped.Gates {
			if g.Name == gate.CX && !dev.CXDirected(g.Qubits[0], g.Qubits[1]) {
				t.Fatalf("non-native CX %v in mapped output", g.Qubits)
			}
			if g.Name == gate.Swap && !dev.Connected(g.Qubits[0], g.Qubits[1]) {
				t.Fatalf("swap on non-adjacent qubits %v", g.Qubits)
			}
		}
	}
}

func TestMapMelbourneProgram(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dev := topology.Melbourne()
	c := circuit.New(14)
	for i := 0; i < 120; i++ {
		a := rng.Intn(14)
		b := rng.Intn(14)
		for b == a {
			b = rng.Intn(14)
		}
		c.MustAppend(gate.CX, []int{a, b})
	}
	res, err := Map(c, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount == 0 {
		t.Fatal("random 14-qubit program should need swaps on Melbourne")
	}
	for _, g := range res.Mapped.Gates {
		if g.Name == gate.CX && !dev.CXDirected(g.Qubits[0], g.Qubits[1]) {
			t.Fatalf("non-native CX %v", g.Qubits)
		}
	}
}

func TestCrosstalkAwareReducesMetric(t *testing.T) {
	// Across a batch of random programs, crosstalk-aware mapping should
	// not increase, and typically decrease, the total crosstalk metric.
	dev := topology.Melbourne()
	rng := rand.New(rand.NewSource(23))
	var base, aware int
	for trial := 0; trial < 8; trial++ {
		c := circuit.New(14)
		for i := 0; i < 60; i++ {
			a := rng.Intn(14)
			b := rng.Intn(14)
			for b == a {
				b = rng.Intn(14)
			}
			c.MustAppend(gate.CX, []int{a, b})
		}
		r1, err := Map(c, dev, Options{CrosstalkAware: false})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Map(c, dev, Options{CrosstalkAware: true})
		if err != nil {
			t.Fatal(err)
		}
		base += crosstalk.Metric(r1.Mapped, dev)
		aware += crosstalk.Metric(r2.Mapped, dev)
	}
	if aware > base {
		t.Fatalf("crosstalk-aware mapping increased the metric: %d vs %d", aware, base)
	}
	t.Logf("crosstalk metric: baseline=%d aware=%d (reduction %.1f%%)",
		base, aware, 100*float64(base-aware)/float64(base))
}

func TestMapRejectsOversizedCircuit(t *testing.T) {
	dev := topology.Linear(2)
	c := circuit.New(3)
	if _, err := Map(c, dev, Options{}); err == nil {
		t.Fatal("expected error for circuit larger than device")
	}
}

func TestMapRejectsThreeQubitGates(t *testing.T) {
	dev := topology.Linear(3)
	c := circuit.New(3)
	c.MustAppend(gate.CCX, []int{0, 1, 2})
	if _, err := Map(c, dev, Options{}); err == nil {
		t.Fatal("expected error for undecomposed CCX")
	}
}

func TestDecomposeSwaps(t *testing.T) {
	dev := topology.Linear(3)
	c := circuit.New(3)
	c.MustAppend(gate.CX, []int{0, 2})
	res, err := Map(c, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := DecomposeSwaps(res.Mapped, dev)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range flat.Gates {
		if g.Name == gate.Swap {
			t.Fatal("swap survived decomposition")
		}
		if g.Name == gate.CX && !dev.CXDirected(g.Qubits[0], g.Qubits[1]) {
			t.Fatalf("non-native CX %v after decomposition", g.Qubits)
		}
	}
	// The decomposed circuit must implement the same unitary as the
	// swap-bearing one.
	u1, err := res.Mapped.Unitary()
	if err != nil {
		t.Fatal(err)
	}
	u2, err := flat.Unitary()
	if err != nil {
		t.Fatal(err)
	}
	overlap := cmplx.Abs(cmat.Trace(cmat.Mul(cmat.Dagger(u1), u2))) / float64(u1.Rows)
	if math.Abs(overlap-1) > 1e-9 {
		t.Fatalf("swap decomposition changed semantics: overlap=%v", overlap)
	}
}

func TestGreedyFallback(t *testing.T) {
	// With a tiny expansion budget the mapper must still produce a correct
	// result via the greedy router.
	dev := topology.Linear(5)
	c := circuit.New(5)
	c.MustAppend(gate.CX, []int{0, 4})
	c.MustAppend(gate.CX, []int{1, 3})
	res, err := Map(c, dev, Options{MaxExpansions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.GreedyFallbacks == 0 {
		t.Fatal("expected greedy fallback with budget 1")
	}
	checkEquivalent(t, c, res)
}
