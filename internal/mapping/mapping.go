// Package mapping inserts swap gates to make a logical circuit executable
// on a device topology, using per-layer A* search in the style of Zulehner,
// Paler and Wille (TCAD 2018) with the paper's crosstalk-extended heuristic
// (§IV-A):
//
//	h(σ) = Σ_{g∈layer} h(g, σ) + Σ_{gm,gn∈layer} I(gm, gn)
//
// where h(g, σ) is the residual coupling distance of gate g under mapping σ
// and I(gm, gn) indicates two concurrent CX gates mapped too close to each
// other. Directed couplings are honored by sandwiching reversed CX gates in
// Hadamards.
package mapping

import (
	"container/heap"
	"fmt"

	"accqoc/internal/circuit"
	"accqoc/internal/gate"
	"accqoc/internal/topology"
)

// Options configures the mapper.
type Options struct {
	// CrosstalkAware enables the I(gm,gn) term of the heuristic.
	CrosstalkAware bool
	// CrosstalkWeight is the penalty per close concurrent CX pair. The
	// default 0.9 keeps it below one swap so it acts as a strong tiebreak.
	CrosstalkWeight float64
	// MaxExpansions bounds the A* search per layer before falling back to
	// greedy shortest-path routing. Default 20000.
	MaxExpansions int
}

func (o Options) withDefaults() Options {
	if o.CrosstalkWeight == 0 {
		o.CrosstalkWeight = 0.9
	}
	if o.MaxExpansions == 0 {
		o.MaxExpansions = 20000
	}
	return o
}

// Result is a mapped circuit plus bookkeeping.
type Result struct {
	// Mapped is the physical circuit: all gates reference device qubits,
	// swaps appear as explicit swap instances, reversed CXs are wrapped in
	// Hadamards.
	Mapped *circuit.Circuit
	// InitialLayout[l] is the physical qubit initially holding logical l.
	InitialLayout []int
	// FinalLayout[l] is the physical qubit holding logical l at the end.
	FinalLayout []int
	// SwapCount is the number of swap gates inserted.
	SwapCount int
	// DirectionFixes counts CX gates emitted against the native direction
	// (each costs four Hadamards).
	DirectionFixes int
	// GreedyFallbacks counts layers where A* exceeded its budget.
	GreedyFallbacks int
}

// Map routes the logical circuit onto the device. The circuit may use at
// most dev.NumQubits qubits; CCX gates must be decomposed beforehand.
func Map(c *circuit.Circuit, dev *topology.Device, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if c.NumQubits > dev.NumQubits {
		return nil, fmt.Errorf("mapping: circuit needs %d qubits, device %q has %d",
			c.NumQubits, dev.Name, dev.NumQubits)
	}
	for _, g := range c.Gates {
		if len(g.Qubits) > 2 {
			return nil, fmt.Errorf("mapping: gate %s has %d operands; decompose first", g.Name, len(g.Qubits))
		}
	}

	st := &state{
		dev:  dev,
		opts: opts,
		out:  circuit.New(dev.NumQubits),
		l2p:  make([]int, c.NumQubits),
	}
	for l := range st.l2p {
		st.l2p[l] = l
	}
	init := append([]int(nil), st.l2p...)

	dag := circuit.BuildDAG(c)
	layers := dag.Layers()
	twoQOf := func(layer []int) [][2]int {
		var out [][2]int
		for _, gi := range layer {
			g := c.Gates[gi]
			if len(g.Qubits) == 2 {
				out = append(out, [2]int{g.Qubits[0], g.Qubits[1]})
			}
		}
		return out
	}
	for li, layer := range layers {
		twoQ := twoQOf(layer)
		var next [][2]int
		if li+1 < len(layers) {
			next = twoQOf(layers[li+1])
		}
		if len(twoQ) > 0 {
			if err := st.routeLayer(twoQ, next); err != nil {
				return nil, err
			}
		}
		for _, gi := range layer {
			if err := st.emitMapped(c.Gates[gi]); err != nil {
				return nil, err
			}
		}
	}
	return &Result{
		Mapped:          st.out,
		InitialLayout:   init,
		FinalLayout:     append([]int(nil), st.l2p...),
		SwapCount:       st.swaps,
		DirectionFixes:  st.dirFixes,
		GreedyFallbacks: st.fallbacks,
	}, nil
}

type state struct {
	dev       *topology.Device
	opts      Options
	out       *circuit.Circuit
	l2p       []int // logical → physical
	swaps     int
	dirFixes  int
	fallbacks int
}

// emitMapped appends a logical gate translated to physical operands,
// fixing CX direction with Hadamards when needed.
func (s *state) emitMapped(g gate.Instance) error {
	phys := make([]int, len(g.Qubits))
	for i, q := range g.Qubits {
		phys[i] = s.l2p[q]
	}
	if len(phys) == 2 && g.Name == gate.CX {
		c, t := phys[0], phys[1]
		switch {
		case s.dev.CXDirected(c, t):
			return s.out.Append(gate.CX, []int{c, t})
		case s.dev.CXDirected(t, c):
			s.dirFixes++
			for _, q := range []int{c, t} {
				if err := s.out.Append(gate.H, []int{q}); err != nil {
					return err
				}
			}
			if err := s.out.Append(gate.CX, []int{t, c}); err != nil {
				return err
			}
			for _, q := range []int{c, t} {
				if err := s.out.Append(gate.H, []int{q}); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("mapping: CX on non-adjacent physical qubits %d,%d", c, t)
		}
	}
	return s.out.Append(g.Name, phys, g.Params...)
}

// applySwap records a physical swap and updates the layout.
func (s *state) applySwap(a, b int) error {
	if err := s.out.Append(gate.Swap, []int{a, b}); err != nil {
		return err
	}
	s.swaps++
	for l, p := range s.l2p {
		switch p {
		case a:
			s.l2p[l] = b
		case b:
			s.l2p[l] = a
		}
	}
	return nil
}

// routeLayer makes every logical pair in the layer adjacent by inserting
// swaps found with A* (greedy fallback on budget exhaustion). next carries
// the following layer's pairs for crosstalk lookahead.
func (s *state) routeLayer(pairs, next [][2]int) error {
	seq, ok := s.searchAStar(pairs, next)
	if !ok {
		s.fallbacks++
		var err error
		seq, err = s.greedyRoute(pairs)
		if err != nil {
			return err
		}
	}
	for _, sw := range seq {
		if err := s.applySwap(sw[0], sw[1]); err != nil {
			return err
		}
	}
	return nil
}

// --- A* search over layouts ---

type searchNode struct {
	layout []int // logical → physical
	swaps  [][2]int
	g      float64
	f      float64
	index  int
}

type nodeHeap []*searchNode

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].f < h[j].f }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *nodeHeap) Push(x interface{}) { n := x.(*searchNode); n.index = len(*h); *h = append(*h, n) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := old[len(old)-1]
	*h = old[:len(old)-1]
	return n
}

func layoutKey(layout []int) string {
	b := make([]byte, len(layout))
	for i, p := range layout {
		b[i] = byte(p)
	}
	return string(b)
}

// heuristic is the residual swap-distance term Σ h(g, σ) of the paper's
// extended heuristic: each gate at coupling distance d needs at least d−1
// swaps.
func (s *state) heuristic(layout []int, pairs [][2]int) float64 {
	var h float64
	for _, pr := range pairs {
		a, b := layout[pr[0]], layout[pr[1]]
		d := s.dev.Distance(a, b)
		if d < 0 {
			return 1e18 // disconnected device region
		}
		if d > 1 {
			h += float64(d - 1)
		}
	}
	return h
}

// crosstalkPairs is the Σ I(gm, gn) term: the number of close concurrent
// CX pairs the layer would suffer under this layout, including the
// inserted swap gates of the candidate route — swaps lower to CX triples
// that execute adjacent to the layer's gates.
func (s *state) crosstalkPairs(layout []int, pairs [][2]int, swaps [][2]int) int {
	edges := make([]topology.Edge, 0, len(pairs)+len(swaps))
	for _, pr := range pairs {
		edges = append(edges, topology.Edge{From: layout[pr[0]], To: layout[pr[1]]})
	}
	for _, sw := range swaps {
		edges = append(edges, topology.Edge{From: sw[0], To: sw[1]})
	}
	count := 0
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			d := s.dev.EdgeDistance(edges[i], edges[j])
			if d >= 0 && d <= 1 {
				count++
			}
		}
	}
	return count
}

func (s *state) executable(layout []int, pairs [][2]int) bool {
	for _, pr := range pairs {
		if s.dev.Distance(layout[pr[0]], layout[pr[1]]) != 1 {
			return false
		}
	}
	return true
}

// activeQubits returns the physical qubits currently hosting any logical
// qubit of the layer — swaps are only expanded on edges touching these, the
// standard Zulehner pruning.
func (s *state) activeQubits(layout []int, pairs [][2]int) map[int]bool {
	act := map[int]bool{}
	for _, pr := range pairs {
		act[layout[pr[0]]] = true
		act[layout[pr[1]]] = true
	}
	return act
}

// crosstalkSlack is how many extra swaps beyond the minimum the
// crosstalk-aware search may consider. Zero: the crosstalk term only
// arbitrates among minimal-swap routings — extra swaps are themselves
// two-qubit operations and empirically add more close pairs downstream
// than they remove in the current layer.
const crosstalkSlack = 0

func (s *state) searchAStar(pairs, next [][2]int) ([][2]int, bool) {
	start := &searchNode{layout: append([]int(nil), s.l2p...)}
	start.f = s.heuristic(start.layout, pairs)
	if s.executable(start.layout, pairs) && !s.opts.CrosstalkAware {
		return nil, true
	}
	open := &nodeHeap{}
	heap.Init(open)
	heap.Push(open, start)
	// Visited pruning keyed by layout. When crosstalk-aware, two routes to
	// one layout can differ in their swap-edge crosstalk, so the prune
	// keeps the (swaps, penalty) lexicographic best.
	type seen struct {
		g   float64
		pen int
	}
	penOf := func(layout []int, swaps [][2]int) int {
		if !s.opts.CrosstalkAware {
			return 0
		}
		return s.crosstalkPairs(layout, pairs, swaps)
	}
	bestG := map[string]seen{layoutKey(start.layout): {0, penOf(start.layout, nil)}}

	// Phase 1 finds the minimal swap count gStar with plain A*. When
	// crosstalk-aware, phase 2 keeps popping nodes with f ≤ gStar + slack
	// and scores every goal by g + weight·I(σ), the paper's combined
	// objective; otherwise the first goal wins.
	expansions := 0
	gStar := -1.0
	var best *searchNode
	bestCost := 0.0
	bestKey := ""
	for open.Len() > 0 {
		cur := heap.Pop(open).(*searchNode)
		if gStar >= 0 && cur.f > gStar+crosstalkSlack {
			break
		}
		if s.executable(cur.layout, pairs) {
			if !s.opts.CrosstalkAware {
				return cur.swaps, true
			}
			if gStar < 0 {
				gStar = cur.g
			}
			cost := cur.g + s.opts.CrosstalkWeight*float64(s.crosstalkPairs(cur.layout, pairs, cur.swaps)) +
				0.5*s.opts.CrosstalkWeight*float64(s.crosstalkPairs(cur.layout, next, nil))
			key := layoutKey(cur.layout)
			if best == nil || cost < bestCost || (cost == bestCost && key < bestKey) {
				best, bestCost, bestKey = cur, cost, key
			}
			// Goal states still expand: a further swap may trade into the
			// slack budget.
		}
		expansions++
		if expansions > s.opts.MaxExpansions {
			if best != nil {
				return best.swaps, true
			}
			return nil, false
		}
		if gStar >= 0 && cur.g >= gStar+crosstalkSlack {
			continue // deeper nodes cannot beat the slack budget
		}
		act := s.activeQubits(cur.layout, pairs)
		for _, e := range s.dev.UndirectedEdges() {
			if !act[e.From] && !act[e.To] {
				continue
			}
			nl := append([]int(nil), cur.layout...)
			for l, p := range nl {
				switch p {
				case e.From:
					nl[l] = e.To
				case e.To:
					nl[l] = e.From
				}
			}
			ng := cur.g + 1
			key := layoutKey(nl)
			nswaps := append(append([][2]int(nil), cur.swaps...), [2]int{e.From, e.To})
			npen := penOf(nl, nswaps)
			if old, ok := bestG[key]; ok && (old.g < ng || (old.g == ng && old.pen <= npen)) {
				continue
			}
			bestG[key] = seen{ng, npen}
			nn := &searchNode{
				layout: nl,
				swaps:  nswaps,
				g:      ng,
			}
			nn.f = ng + s.heuristic(nl, pairs)
			heap.Push(open, nn)
		}
	}
	if best == nil {
		return nil, false
	}
	return best.swaps, true
}

// greedyRoute walks each non-adjacent pair toward each other along a
// shortest path, one swap at a time. Always terminates on a connected
// device.
func (s *state) greedyRoute(pairs [][2]int) ([][2]int, error) {
	layout := append([]int(nil), s.l2p...)
	var seq [][2]int
	for _, pr := range pairs {
		for s.distOf(layout, pr) > 1 {
			a := layout[pr[0]]
			b := layout[pr[1]]
			// Move a one step along a shortest path toward b.
			next := -1
			for _, nb := range s.dev.Neighbors(a) {
				if s.dev.Distance(nb, b) == s.dev.Distance(a, b)-1 {
					next = nb
					break
				}
			}
			if next < 0 {
				return nil, fmt.Errorf("mapping: no path between physical %d and %d", a, b)
			}
			seq = append(seq, [2]int{a, next})
			for l, p := range layout {
				switch p {
				case a:
					layout[l] = next
				case next:
					layout[l] = a
				}
			}
		}
	}
	return seq, nil
}

func (s *state) distOf(layout []int, pr [2]int) int {
	return s.dev.Distance(layout[pr[0]], layout[pr[1]])
}

// DecomposeSwaps rewrites every swap gate in a physical circuit into three
// CX gates, fixing CX direction with Hadamards as needed — the lowering
// behind the paper's "map" policies (a swap is not a native operation on
// IBM hardware).
func DecomposeSwaps(c *circuit.Circuit, dev *topology.Device) (*circuit.Circuit, error) {
	out := circuit.New(c.NumQubits)
	emitCX := func(ctrl, tgt int) error {
		switch {
		case dev.CXDirected(ctrl, tgt):
			return out.Append(gate.CX, []int{ctrl, tgt})
		case dev.CXDirected(tgt, ctrl):
			for _, q := range []int{ctrl, tgt} {
				if err := out.Append(gate.H, []int{q}); err != nil {
					return err
				}
			}
			if err := out.Append(gate.CX, []int{tgt, ctrl}); err != nil {
				return err
			}
			for _, q := range []int{ctrl, tgt} {
				if err := out.Append(gate.H, []int{q}); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("mapping: swap on non-adjacent qubits %d,%d", ctrl, tgt)
		}
	}
	for _, g := range c.Gates {
		if g.Name != gate.Swap {
			if err := out.Append(g.Name, g.Qubits, g.Params...); err != nil {
				return nil, err
			}
			continue
		}
		a, b := g.Qubits[0], g.Qubits[1]
		if err := emitCX(a, b); err != nil {
			return nil, err
		}
		if err := emitCX(b, a); err != nil {
			return nil, err
		}
		if err := emitCX(a, b); err != nil {
			return nil, err
		}
	}
	return out, nil
}
