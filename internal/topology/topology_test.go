package topology

import "testing"

func TestMelbourneShape(t *testing.T) {
	d := Melbourne()
	if d.NumQubits != 14 {
		t.Fatalf("NumQubits = %d", d.NumQubits)
	}
	if len(d.Edges) != 18 {
		t.Fatalf("directed edge count = %d, want 18", len(d.Edges))
	}
	// Spot-check the published coupling map.
	if !d.CXDirected(1, 0) {
		t.Fatal("CX 1→0 should be native")
	}
	if d.CXDirected(0, 1) {
		t.Fatal("CX 0→1 is not native on Melbourne")
	}
	if !d.Connected(0, 1) || !d.Connected(13, 12) {
		t.Fatal("adjacency wrong")
	}
	if d.Connected(0, 7) {
		t.Fatal("0 and 7 are not coupled")
	}
}

func TestMelbourneConnectedAndDistances(t *testing.T) {
	d := Melbourne()
	for a := 0; a < 14; a++ {
		for b := 0; b < 14; b++ {
			dd := d.Distance(a, b)
			if dd < 0 {
				t.Fatalf("device disconnected between %d and %d", a, b)
			}
			if (dd == 0) != (a == b) {
				t.Fatalf("Distance(%d,%d) = %d", a, b, dd)
			}
			if dd != d.Distance(b, a) {
				t.Fatal("distance not symmetric")
			}
		}
	}
	// Qubit 0 to qubit 7: along the two rows. 0-1-13-12-11-10-9-8-7 or
	// 0-1-2-3-4-5-6-8-7; both length 8. Verify triangle inequality instead
	// of an exact value for robustness, plus a known short pair.
	if d.Distance(0, 2) != 2 {
		t.Fatalf("Distance(0,2) = %d, want 2", d.Distance(0, 2))
	}
	for a := 0; a < 14; a++ {
		for b := 0; b < 14; b++ {
			for c := 0; c < 14; c++ {
				if d.Distance(a, c) > d.Distance(a, b)+d.Distance(b, c) {
					t.Fatal("triangle inequality violated")
				}
			}
		}
	}
}

func TestLinearDevice(t *testing.T) {
	d := Linear(5)
	if d.Distance(0, 4) != 4 {
		t.Fatalf("chain distance = %d", d.Distance(0, 4))
	}
	if !d.CXDirected(1, 2) || d.CXDirected(2, 1) {
		t.Fatal("chain direction wrong")
	}
	nbrs := d.Neighbors(2)
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 3 {
		t.Fatalf("Neighbors(2) = %v", nbrs)
	}
}

func TestGridDevice(t *testing.T) {
	d := Grid(2, 3)
	if d.NumQubits != 6 {
		t.Fatal("grid size wrong")
	}
	if !d.CXDirected(0, 1) || !d.CXDirected(1, 0) {
		t.Fatal("grid should be bidirectional")
	}
	if d.Distance(0, 5) != 3 {
		t.Fatalf("grid distance = %d, want 3", d.Distance(0, 5))
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("bad", 2, []Edge{{0, 5}}, Calibration{}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := New("bad", 2, []Edge{{1, 1}}, Calibration{}); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestUndirectedEdges(t *testing.T) {
	d := Grid(2, 2)
	ue := d.UndirectedEdges()
	if len(ue) != 4 {
		t.Fatalf("2x2 grid has %d undirected edges, want 4", len(ue))
	}
	for _, e := range ue {
		if e.From >= e.To {
			t.Fatal("undirected edges must be normalized From<To")
		}
	}
}

func TestEdgeDistance(t *testing.T) {
	d := Linear(6)
	if got := d.EdgeDistance(Edge{0, 1}, Edge{1, 2}); got != 0 {
		t.Fatalf("shared-qubit edges distance = %d, want 0", got)
	}
	if got := d.EdgeDistance(Edge{0, 1}, Edge{2, 3}); got != 1 {
		t.Fatalf("adjacent edges distance = %d, want 1", got)
	}
	if got := d.EdgeDistance(Edge{0, 1}, Edge{4, 5}); got != 3 {
		t.Fatalf("far edges distance = %d, want 3", got)
	}
}

func TestMelbourneCalibrationValues(t *testing.T) {
	c := MelbourneCalibration()
	if c.T1ns != 57350 || c.T2ns != 61820 {
		t.Fatal("decoherence times do not match the paper §II-E")
	}
	if c.CXLatencyNs != 974.9 || c.CXError != 2.46e-2 {
		t.Fatal("CX calibration does not match the paper §II-E")
	}
}

func TestCalibrationDrift(t *testing.T) {
	base := MelbourneCalibration()
	d := base.Drift(2)
	checks := []struct{ got, want float64 }{
		{d.T1ns, base.T1ns * 1.02},
		{d.T2ns, base.T2ns * 1.02},
		{d.CXLatencyNs, base.CXLatencyNs * 1.02},
		{d.Gate1QLatencyNs, base.Gate1QLatencyNs * 1.02},
		{d.FrameLatencyNs, base.FrameLatencyNs * 1.02},
		{d.CXError, base.CXError * 1.02},
		{d.Gate1QError, base.Gate1QError * 1.02},
	}
	for i, c := range checks {
		if c.got != c.want {
			t.Errorf("field %d: drifted %v, want %v", i, c.got, c.want)
		}
	}
	// Negative drift speeds the device up; zero is identity.
	if Drifted := base.Drift(-2); Drifted.CXLatencyNs >= base.CXLatencyNs {
		t.Fatal("negative drift did not reduce the CX latency")
	}
	if base.Drift(0) != base {
		t.Fatal("zero drift changed the calibration")
	}
}

func TestWithCalibrationSharesTopology(t *testing.T) {
	d := Melbourne()
	cal := d.Calibration.Drift(5)
	nd := d.WithCalibration(cal)
	if nd == d {
		t.Fatal("WithCalibration returned the receiver")
	}
	if nd.Calibration != cal || d.Calibration == cal {
		t.Fatal("calibration not applied copy-on-write")
	}
	// Topology (and precomputed tables) are shared and identical.
	if nd.NumQubits != d.NumQubits || len(nd.Edges) != len(d.Edges) {
		t.Fatal("topology changed")
	}
	for q := 0; q < d.NumQubits; q++ {
		for p := 0; p < d.NumQubits; p++ {
			if nd.Distance(q, p) != d.Distance(q, p) {
				t.Fatal("distance table changed")
			}
		}
	}
}

func TestDisconnectedDistance(t *testing.T) {
	d, err := New("two-islands", 4, []Edge{{0, 1}, {2, 3}}, Calibration{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Distance(0, 3) != -1 {
		t.Fatal("expected -1 for disconnected qubits")
	}
	if d.EdgeDistance(Edge{0, 1}, Edge{2, 3}) != -1 {
		t.Fatal("expected -1 for disconnected edges")
	}
}
