// Package topology models quantum hardware: coupling graphs with directed
// two-qubit gates, BFS distance matrices, and device calibration data
// (decoherence times, gate latencies, gate errors). The shipped devices
// include the IBM Q Melbourne 14-qubit chip the paper evaluates on
// (its Figure 10), plus linear and grid devices for tests.
package topology

import (
	"fmt"
	"sort"
)

// Edge is a directed coupling: a CX with control From and target To is
// natively executable.
type Edge struct {
	From, To int
}

// Device is a quantum chip model: qubit count, directed coupling list and
// calibration. All latency values are in nanoseconds, error rates are
// probabilities per gate.
type Device struct {
	Name      string
	NumQubits int
	Edges     []Edge

	Calibration Calibration

	adj  [][]int // undirected adjacency lists, sorted
	dist [][]int // undirected BFS distances; -1 when disconnected
}

// Calibration holds the device's timing and error model. Values default to
// the Melbourne-era numbers quoted in the paper (§II-E). The JSON tags are
// the wire format of the calibration-epoch admin API (POST
// /v1/devices/{name}/calibrate) and the -calibration-file hot-reload path.
type Calibration struct {
	T1ns            float64 `json:"t1_ns"`             // relaxation time
	T2ns            float64 `json:"t2_ns"`             // dephasing time
	CXLatencyNs     float64 `json:"cx_latency_ns"`     // two-qubit gate duration
	Gate1QLatencyNs float64 `json:"gate1q_latency_ns"` // pulse-backed single-qubit gate duration
	FrameLatencyNs  float64 `json:"frame_latency_ns"`  // frame-change gates (rz/u1/z/s/t family)
	CXError         float64 `json:"cx_error"`          // average CX gate error
	Gate1QError     float64 `json:"gate1q_error"`      // average single-qubit gate error
}

// Validate rejects physically meaningless calibrations. Decoherence
// times and pulse-backed gate latencies must be positive (fidelity
// estimates divide by T1/T2; zero-latency gates would be free); frame
// latency and error rates must be non-negative, errors at most 1. Guards
// the calibration-update API, where a partial JSON body would otherwise
// silently zero every unspecified field.
func (c Calibration) Validate() error {
	switch {
	case c.T1ns <= 0 || c.T2ns <= 0:
		return fmt.Errorf("topology: non-positive decoherence times T1=%v T2=%v", c.T1ns, c.T2ns)
	case c.CXLatencyNs <= 0 || c.Gate1QLatencyNs <= 0:
		return fmt.Errorf("topology: non-positive gate latencies cx=%v 1q=%v", c.CXLatencyNs, c.Gate1QLatencyNs)
	case c.FrameLatencyNs < 0:
		return fmt.Errorf("topology: negative frame latency %v", c.FrameLatencyNs)
	case c.CXError < 0 || c.CXError > 1 || c.Gate1QError < 0 || c.Gate1QError > 1:
		return fmt.Errorf("topology: error rates outside [0,1]: cx=%v 1q=%v", c.CXError, c.Gate1QError)
	}
	return nil
}

// Drift returns the calibration scaled by (1 + pct/100) on every timing
// and error figure — the generic "hardware recalibrated, everything moved
// a little" perturbation used to model a calibration epoch. Positive pct
// slows the device down, negative speeds it up.
func (c Calibration) Drift(pct float64) Calibration {
	f := 1 + pct/100
	return Calibration{
		T1ns:            c.T1ns * f,
		T2ns:            c.T2ns * f,
		CXLatencyNs:     c.CXLatencyNs * f,
		Gate1QLatencyNs: c.Gate1QLatencyNs * f,
		FrameLatencyNs:  c.FrameLatencyNs * f,
		CXError:         c.CXError * f,
		Gate1QError:     c.Gate1QError * f,
	}
}

// MelbourneCalibration returns the calibration quoted in the paper:
// T1 = 57.35 µs, T2 = 61.82 µs, CX ≈ 974.9 ns, CX error 2.46e-2.
func MelbourneCalibration() Calibration {
	return Calibration{
		T1ns:            57350,
		T2ns:            61820,
		CXLatencyNs:     974.9,
		Gate1QLatencyNs: 100,
		FrameLatencyNs:  0,
		CXError:         2.46e-2,
		Gate1QError:     1.0e-3,
	}
}

// New builds a device from a directed edge list and computes adjacency and
// distance tables. Edges must reference qubits in [0, n).
func New(name string, n int, edges []Edge, cal Calibration) (*Device, error) {
	d := &Device{Name: name, NumQubits: n, Edges: append([]Edge(nil), edges...), Calibration: cal}
	adjSet := make([]map[int]bool, n)
	for i := range adjSet {
		adjSet[i] = map[int]bool{}
	}
	for _, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n || e.From == e.To {
			return nil, fmt.Errorf("topology: invalid edge %v on %d qubits", e, n)
		}
		adjSet[e.From][e.To] = true
		adjSet[e.To][e.From] = true
	}
	d.adj = make([][]int, n)
	for i, s := range adjSet {
		for q := range s {
			d.adj[i] = append(d.adj[i], q)
		}
		sort.Ints(d.adj[i])
	}
	d.dist = make([][]int, n)
	for src := 0; src < n; src++ {
		row := make([]int, n)
		for i := range row {
			row[i] = -1
		}
		row[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range d.adj[cur] {
				if row[nb] < 0 {
					row[nb] = row[cur] + 1
					queue = append(queue, nb)
				}
			}
		}
		d.dist[src] = row
	}
	return d, nil
}

// Melbourne returns the 14-qubit IBM Q Melbourne device with the directed
// coupling map of the paper's Figure 10 and the §II-E calibration.
func Melbourne() *Device {
	edges := []Edge{
		{1, 0}, {1, 2}, {2, 3}, {4, 3}, {4, 10}, {5, 4}, {5, 6}, {5, 9},
		{6, 8}, {7, 8}, {9, 8}, {9, 10}, {11, 3}, {11, 10}, {11, 12},
		{12, 2}, {13, 1}, {13, 12},
	}
	d, err := New("ibmq-melbourne", 14, edges, MelbourneCalibration())
	if err != nil {
		panic(err) // static data, cannot fail
	}
	return d
}

// Linear returns an n-qubit chain with CX allowed low→high only, useful in
// tests that need swap insertion and direction fixing.
func Linear(n int) *Device {
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	d, err := New(fmt.Sprintf("linear-%d", n), n, edges, MelbourneCalibration())
	if err != nil {
		panic(err)
	}
	return d
}

// Grid returns a rows×cols lattice with bidirectional CX on every lattice
// edge.
func Grid(rows, cols int) *Device {
	var edges []Edge
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{id(r, c), id(r, c+1)}, Edge{id(r, c+1), id(r, c)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{id(r, c), id(r+1, c)}, Edge{id(r+1, c), id(r, c)})
			}
		}
	}
	d, err := New(fmt.Sprintf("grid-%dx%d", rows, cols), rows*cols, edges, MelbourneCalibration())
	if err != nil {
		panic(err)
	}
	return d
}

// WithCalibration returns a copy of the device carrying cal — the same
// topology under a new calibration epoch. The adjacency and distance
// tables are shared (they are immutable once built).
func (d *Device) WithCalibration(cal Calibration) *Device {
	nd := *d
	nd.Calibration = cal
	return &nd
}

// Distance returns the undirected coupling distance between physical qubits
// a and b (-1 if disconnected).
func (d *Device) Distance(a, b int) int { return d.dist[a][b] }

// Neighbors returns the sorted undirected neighbor list of a physical qubit.
func (d *Device) Neighbors(q int) []int { return d.adj[q] }

// Connected reports whether a and b share a coupling (either direction).
func (d *Device) Connected(a, b int) bool { return d.dist[a][b] == 1 }

// CXDirected reports whether a CX with control c and target t is natively
// available (the edge exists in that direction).
func (d *Device) CXDirected(c, t int) bool {
	for _, e := range d.Edges {
		if e.From == c && e.To == t {
			return true
		}
	}
	return false
}

// UndirectedEdges returns each coupling once with From < To, sorted.
func (d *Device) UndirectedEdges() []Edge {
	seen := map[[2]int]bool{}
	var out []Edge
	for _, e := range d.Edges {
		a, b := e.From, e.To
		if a > b {
			a, b = b, a
		}
		if !seen[[2]int{a, b}] {
			seen[[2]int{a, b}] = true
			out = append(out, Edge{a, b})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// EdgeDistance returns the minimum coupling distance between the endpoint
// sets of two undirected edges: 0 if they share a qubit, 1 if some endpoints
// are adjacent, etc. This is the "closeness" notion behind the paper's
// crosstalk indicator I(gm, gn).
func (d *Device) EdgeDistance(e1, e2 Edge) int {
	best := -1
	for _, a := range []int{e1.From, e1.To} {
		for _, b := range []int{e2.From, e2.To} {
			dd := d.dist[a][b]
			if dd >= 0 && (best < 0 || dd < best) {
				best = dd
			}
		}
	}
	return best
}
