package grouping

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"accqoc/internal/circuit"
	"accqoc/internal/cmat"
	"accqoc/internal/gate"
)

func TestPolicyByNameExtended(t *testing.T) {
	p, err := PolicyByNameExtended("map3b3l")
	if err != nil || p.MaxQubits != 3 || p.MaxLayers != 3 || !p.DecomposeSwap {
		t.Fatalf("map3b3l = %+v, err %v", p, err)
	}
	if p, err := PolicyByNameExtended("map3b2l"); err != nil || p.MaxLayers != 2 {
		t.Fatalf("map3b2l = %+v, err %v", p, err)
	}
	// Table I names still resolve through the extended lookup.
	if p, err := PolicyByNameExtended("swap2b3l"); err != nil || p != Swap2b3l {
		t.Fatalf("swap2b3l = %+v, err %v", p, err)
	}
	// The base lookup must NOT see the 3Q set: they are opt-in only.
	if _, err := PolicyByName("map3b3l"); err == nil {
		t.Fatal("PolicyByName accepted map3b3l without the opt-in path")
	}
	if _, err := PolicyByNameExtended("map9b9l"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestThreeQubitPolicyMergesAdjacentCX: CX(0,1) then CX(1,2) split under
// any 2b policy but merge into one dim-8 group when the qubit cap is 3.
func TestThreeQubitPolicyMergesAdjacentCX(t *testing.T) {
	c := circuit.New(3)
	c.MustAppend(gate.CX, []int{0, 1})
	c.MustAppend(gate.CX, []int{1, 2})
	gr, err := Divide(c, Map3b3l)
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Groups) != 1 {
		t.Fatalf("groups = %d, want 1 merged 3-qubit group", len(gr.Groups))
	}
	g := gr.Groups[0]
	if len(g.Qubits) != 3 {
		t.Fatalf("group qubits = %v, want 3 qubits", g.Qubits)
	}
	u, err := g.Unitary()
	if err != nil {
		t.Fatal(err)
	}
	if u.Rows != 8 || u.Cols != 8 {
		t.Fatalf("group unitary %dx%d, want 8x8", u.Rows, u.Cols)
	}
	if !cmat.IsUnitary(u, 1e-9) {
		t.Fatal("merged group unitary is not unitary")
	}
}

// TestThreeQubitGroupingPreservesSemantics runs the strongest grouping
// invariant — group-DAG product equals the circuit unitary — under the 3Q
// policies on random 4-qubit circuits, so 8×8 group unitaries flow through
// the same checks the 2Q catalog gets.
func TestThreeQubitGroupingPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		n := 4
		c := circuit.New(n)
		for i := 0; i < 15; i++ {
			switch rng.Intn(3) {
			case 0:
				c.MustAppend(gate.H, []int{rng.Intn(n)})
			case 1:
				c.MustAppend(gate.T, []int{rng.Intn(n)})
			default:
				a, b := rng.Intn(n), rng.Intn(n)
				for b == a {
					b = rng.Intn(n)
				}
				c.MustAppend(gate.CX, []int{a, b})
			}
		}
		for _, pol := range Policies3Q {
			gr, err := Divide(c, pol)
			if err != nil {
				t.Fatal(err)
			}
			order := groupTopoOrder(gr)
			if len(order) != len(gr.Groups) {
				t.Fatal("group DAG has a cycle")
			}
			sized := false
			acc := cmat.Identity(1 << n)
			for _, gi := range order {
				g := gr.Groups[gi]
				if len(g.Qubits) > 3 {
					t.Fatalf("group spans %d qubits under %s", len(g.Qubits), pol.Name)
				}
				if len(g.Qubits) == 3 {
					sized = true
				}
				u, err := g.Unitary()
				if err != nil {
					t.Fatal(err)
				}
				acc = cmat.Mul(gate.Embed(u, g.Qubits, n), acc)
			}
			want, err := c.Unitary()
			if err != nil {
				t.Fatal(err)
			}
			d := float64(want.Rows)
			overlap := cmplx.Abs(cmat.Trace(cmat.Mul(cmat.Dagger(want), acc))) / d
			if math.Abs(overlap-1) > 1e-9 {
				t.Fatalf("trial %d policy %s: grouping changed semantics, overlap=%v",
					trial, pol.Name, overlap)
			}
			_ = sized // some random circuits legitimately never merge to 3 qubits
		}
	}
}

// TestDeduplicateThreeQubitGroups checks dim-8 groups flow through the
// dedup keying (phase-canonical only at 8×8 — no permutation matching).
func TestDeduplicateThreeQubitGroups(t *testing.T) {
	mk := func() *Group {
		c := circuit.New(3)
		c.MustAppend(gate.CX, []int{0, 1})
		c.MustAppend(gate.CX, []int{1, 2})
		gr, err := Divide(c, Map3b3l)
		if err != nil {
			t.Fatal(err)
		}
		if len(gr.Groups) != 1 {
			t.Fatalf("groups = %d, want 1", len(gr.Groups))
		}
		return gr.Groups[0]
	}
	uniq, err := Deduplicate([]*Group{mk(), mk()})
	if err != nil {
		t.Fatal(err)
	}
	if len(uniq) != 1 {
		t.Fatalf("unique groups = %d, want 1 (identical dim-8 groups must coalesce)", len(uniq))
	}
	if uniq[0].Count != 2 {
		t.Fatalf("count = %d, want 2", uniq[0].Count)
	}
	if uniq[0].NumQubits != 3 {
		t.Fatalf("NumQubits = %d, want 3", uniq[0].NumQubits)
	}
}
