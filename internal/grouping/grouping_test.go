package grouping

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"accqoc/internal/circuit"
	"accqoc/internal/cmat"
	"accqoc/internal/gate"
)

func TestPolicyCatalog(t *testing.T) {
	if len(Policies) != 6 {
		t.Fatalf("policy count = %d, want 6 (Table I)", len(Policies))
	}
	p, err := PolicyByName("map2b4l")
	if err != nil || p.MaxQubits != 2 || p.MaxLayers != 4 || !p.DecomposeSwap {
		t.Fatalf("map2b4l = %+v, err %v", p, err)
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSingleWireChainFormsOneGroup(t *testing.T) {
	c := circuit.New(2)
	c.MustAppend(gate.H, []int{0})
	c.MustAppend(gate.T, []int{0})
	c.MustAppend(gate.H, []int{0})
	gr, err := Divide(c, Policy{Name: "t", MaxQubits: 2, MaxLayers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(gr.Groups))
	}
	if len(gr.Groups[0].Gates) != 3 {
		t.Fatalf("group size = %d, want 3", len(gr.Groups[0].Gates))
	}
}

func TestTwoQubitBudgetSplits(t *testing.T) {
	// CX(0,1) then CX(1,2): union would span 3 qubits, must split.
	c := circuit.New(3)
	c.MustAppend(gate.CX, []int{0, 1})
	c.MustAppend(gate.CX, []int{1, 2})
	gr, err := Divide(c, Policy{Name: "t", MaxQubits: 2, MaxLayers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(gr.Groups))
	}
	// The second group depends on the first.
	if len(gr.Preds[1]) != 1 || gr.Preds[1][0] != 0 {
		t.Fatalf("Preds[1] = %v", gr.Preds[1])
	}
}

func TestMergeTwoPredecessorGroups(t *testing.T) {
	// H(0) and H(1) form two single-wire groups merged by CX(0,1).
	c := circuit.New(2)
	c.MustAppend(gate.H, []int{0})
	c.MustAppend(gate.H, []int{1})
	c.MustAppend(gate.CX, []int{0, 1})
	gr, err := Divide(c, Policy{Name: "t", MaxQubits: 2, MaxLayers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Groups) != 1 {
		t.Fatalf("groups = %d, want 1 (merge case)", len(gr.Groups))
	}
	if len(gr.Groups[0].Gates) != 3 {
		t.Fatal("merged group should hold all three gates")
	}
}

func TestConvexityInterleavingBlocked(t *testing.T) {
	// A = CX(0,1); B = CX(1,2); C = CX(0,1).
	// C must NOT join A's group because B interleaves on wire 1.
	c := circuit.New(3)
	c.MustAppend(gate.CX, []int{0, 1}) // A
	c.MustAppend(gate.CX, []int{1, 2}) // B
	c.MustAppend(gate.CX, []int{0, 1}) // C
	gr, err := Divide(c, Policy{Name: "t", MaxQubits: 2, MaxLayers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gr.Groups {
		has := map[int]bool{}
		for _, gi := range g.GateIndices {
			has[gi] = true
		}
		if has[0] && has[2] && !has[1] {
			t.Fatal("non-convex group {A, C} produced")
		}
	}
}

func TestLayerDividing(t *testing.T) {
	// Six sequential T gates on one qubit with MaxLayers=2 → 3 chunks.
	c := circuit.New(1)
	for i := 0; i < 6; i++ {
		c.MustAppend(gate.T, []int{0})
	}
	gr, err := Divide(c, Policy{Name: "t", MaxQubits: 2, MaxLayers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(gr.Groups))
	}
	for i, g := range gr.Groups {
		if len(g.Gates) != 2 {
			t.Fatalf("group %d size = %d, want 2", i, len(g.Gates))
		}
	}
	// Chain dependencies 0→1→2.
	if len(gr.Preds[1]) != 1 || len(gr.Preds[2]) != 1 {
		t.Fatalf("layer chunks must chain: %v / %v", gr.Preds[1], gr.Preds[2])
	}
}

func TestLocalCircuitRemap(t *testing.T) {
	g := &Group{
		Qubits: []int{3, 7},
		Gates:  []gate.Instance{gate.MustInstance(gate.CX, []int{7, 3})},
	}
	lc := g.LocalCircuit()
	if lc.NumQubits != 2 {
		t.Fatal("local circuit wire count")
	}
	if lc.Gates[0].Qubits[0] != 1 || lc.Gates[0].Qubits[1] != 0 {
		t.Fatalf("local remap = %v, want [1 0]", lc.Gates[0].Qubits)
	}
}

// groupTopoOrder returns a Kahn topological order of the group DAG.
func groupTopoOrder(gr *Grouping) []int {
	indeg := make([]int, len(gr.Groups))
	for i := range gr.Groups {
		indeg[i] = len(gr.Preds[i])
	}
	var queue, order []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		order = append(order, cur)
		for _, s := range gr.Succs[cur] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	return order
}

func TestGroupingPreservesSemantics(t *testing.T) {
	// Multiply group unitaries in group-DAG topological order and compare
	// against the whole-circuit unitary. This is the strongest grouping
	// invariant: groups are convex and the group DAG is a faithful
	// coarsening.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(2)
		c := circuit.New(n)
		for i := 0; i < 15; i++ {
			switch rng.Intn(3) {
			case 0:
				c.MustAppend(gate.H, []int{rng.Intn(n)})
			case 1:
				c.MustAppend(gate.T, []int{rng.Intn(n)})
			default:
				a, b := rng.Intn(n), rng.Intn(n)
				for b == a {
					b = rng.Intn(n)
				}
				c.MustAppend(gate.CX, []int{a, b})
			}
		}
		for _, pol := range []Policy{
			{Name: "2b2l", MaxQubits: 2, MaxLayers: 2},
			{Name: "2b4l", MaxQubits: 2, MaxLayers: 4},
		} {
			gr, err := Divide(c, pol)
			if err != nil {
				t.Fatal(err)
			}
			order := groupTopoOrder(gr)
			if len(order) != len(gr.Groups) {
				t.Fatal("group DAG has a cycle")
			}
			acc := cmat.Identity(1 << n)
			for _, gi := range order {
				g := gr.Groups[gi]
				u, err := g.Unitary()
				if err != nil {
					t.Fatal(err)
				}
				acc = cmat.Mul(gate.Embed(u, g.Qubits, n), acc)
			}
			want, err := c.Unitary()
			if err != nil {
				t.Fatal(err)
			}
			d := float64(want.Rows)
			overlap := cmplx.Abs(cmat.Trace(cmat.Mul(cmat.Dagger(want), acc))) / d
			if math.Abs(overlap-1) > 1e-9 {
				t.Fatalf("trial %d policy %s: grouping changed semantics, overlap=%v",
					trial, pol.Name, overlap)
			}
		}
	}
}

func TestGroupSizeRespectsPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := circuit.New(5)
	for i := 0; i < 40; i++ {
		a, b := rng.Intn(5), rng.Intn(5)
		for b == a {
			b = rng.Intn(5)
		}
		c.MustAppend(gate.CX, []int{a, b})
	}
	pol := Policy{Name: "2b3l", MaxQubits: 2, MaxLayers: 3}
	gr, err := Divide(c, pol)
	if err != nil {
		t.Fatal(err)
	}
	dag := circuit.BuildDAG(c)
	for _, g := range gr.Groups {
		if len(g.Qubits) > pol.MaxQubits {
			t.Fatalf("group spans %d qubits", len(g.Qubits))
		}
		min, max := 1<<30, -1
		for _, gi := range g.GateIndices {
			if dag.Depth[gi] < min {
				min = dag.Depth[gi]
			}
			if dag.Depth[gi] > max {
				max = dag.Depth[gi]
			}
		}
		if max-min+1 > pol.MaxLayers {
			t.Fatalf("group spans %d layers > %d", max-min+1, pol.MaxLayers)
		}
	}
}

func TestDeduplicate(t *testing.T) {
	mk := func(names ...gate.Name) *Group {
		g := &Group{Qubits: []int{0, 1}}
		for _, n := range names {
			g.Gates = append(g.Gates, gate.MustInstance(n, []int{0, 1}))
		}
		return g
	}
	groups := []*Group{
		mk(gate.CX), mk(gate.CX), mk(gate.CX),
		mk(gate.Swap),
	}
	uniq, err := Deduplicate(groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(uniq) != 2 {
		t.Fatalf("unique = %d, want 2", len(uniq))
	}
	if uniq[0].Count != 3 {
		t.Fatalf("most frequent count = %d, want 3 (sorted by frequency)", uniq[0].Count)
	}
}

func TestDeduplicatePermutedQubits(t *testing.T) {
	// CX(0,1) on qubits {2,3} vs CX(1,0) on qubits {5,6}: same operation
	// with permuted qubits — the paper treats these as duplicates.
	g1 := &Group{Qubits: []int{2, 3}, Gates: []gate.Instance{gate.MustInstance(gate.CX, []int{2, 3})}}
	g2 := &Group{Qubits: []int{5, 6}, Gates: []gate.Instance{gate.MustInstance(gate.CX, []int{6, 5})}}
	uniq, err := Deduplicate([]*Group{g1, g2})
	if err != nil {
		t.Fatal(err)
	}
	if len(uniq) != 1 {
		t.Fatalf("permuted CX groups not deduplicated: %d unique", len(uniq))
	}
	if uniq[0].Count != 2 {
		t.Fatal("count wrong")
	}
}

func TestDeduplicateGlobalPhase(t *testing.T) {
	// rz(θ) and u1(θ) differ only by a global phase — same pulse target.
	g1 := &Group{Qubits: []int{0}, Gates: []gate.Instance{gate.MustInstance(gate.RZ, []int{0}, 0.7)}}
	g2 := &Group{Qubits: []int{0}, Gates: []gate.Instance{gate.MustInstance(gate.U1, []int{0}, 0.7)}}
	uniq, err := Deduplicate([]*Group{g1, g2})
	if err != nil {
		t.Fatal(err)
	}
	if len(uniq) != 1 {
		t.Fatalf("phase-equivalent groups not deduplicated: %d unique", len(uniq))
	}
}

func TestMatrixKeyDistinguishesDifferentOps(t *testing.T) {
	cx, _ := gate.Unitary(gate.CX, nil)
	sw, _ := gate.Unitary(gate.Swap, nil)
	if MatrixKey(cx) == MatrixKey(sw) {
		t.Fatal("CX and SWAP share a key")
	}
	h, _ := gate.Unitary(gate.H, nil)
	x, _ := gate.Unitary(gate.X, nil)
	if MatrixKey(h) == MatrixKey(x) {
		t.Fatal("H and X share a key")
	}
}

func TestDivideInvalidPolicy(t *testing.T) {
	if _, err := Divide(circuit.New(1), Policy{}); err == nil {
		t.Fatal("zero policy accepted")
	}
}

func TestEmptyCircuit(t *testing.T) {
	gr, err := Divide(circuit.New(3), Policy{Name: "t", MaxQubits: 2, MaxLayers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Groups) != 0 {
		t.Fatal("empty circuit produced groups")
	}
}
