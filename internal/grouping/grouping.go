// Package grouping implements the paper's gate-group generation: Algorithm 1
// (bit dividing — greedy merge along the DAG under a qubit-count constraint),
// Algorithm 2 (layer dividing — splitting big groups into depth windows), the
// 2bNl policy catalog of Table I, and group deduplication up to qubit
// permutation and global phase.
//
// Beyond the paper's pseudocode, the bit divider enforces a wire-interval
// rule (a group must occupy a contiguous run of gates on every wire it
// touches) so that every produced group is convex in the DAG and can be
// legally replaced by a single pulse.
package grouping

import (
	"fmt"
	"math/cmplx"
	"sort"
	"strings"

	"accqoc/internal/circuit"
	"accqoc/internal/cmat"
	"accqoc/internal/gate"
)

// Policy is a grouping configuration from the paper's 2bNl catalog
// (Table I): at most MaxQubits qubits and MaxLayers circuit layers per
// group. DecomposeSwap distinguishes the "map" policies (swap lowered to
// three CX before grouping) from the "swap" policies (swap kept native).
type Policy struct {
	Name          string
	MaxQubits     int
	MaxLayers     int
	DecomposeSwap bool
}

// The paper's six candidate policies (Table I).
var (
	Map2b2l  = Policy{Name: "map2b2l", MaxQubits: 2, MaxLayers: 2, DecomposeSwap: true}
	Map2b3l  = Policy{Name: "map2b3l", MaxQubits: 2, MaxLayers: 3, DecomposeSwap: true}
	Map2b4l  = Policy{Name: "map2b4l", MaxQubits: 2, MaxLayers: 4, DecomposeSwap: true}
	Swap2b2l = Policy{Name: "swap2b2l", MaxQubits: 2, MaxLayers: 2, DecomposeSwap: false}
	Swap2b3l = Policy{Name: "swap2b3l", MaxQubits: 2, MaxLayers: 3, DecomposeSwap: false}
	Swap2b4l = Policy{Name: "swap2b4l", MaxQubits: 2, MaxLayers: 4, DecomposeSwap: false}
)

// Three-qubit extensions beyond Table I: same bitDivide/layerDivide
// machinery with the qubit cap raised to 3, so neighbouring two-qubit
// groups on a shared wire merge into dim-8 groups. GRAPE training cost per
// group rises steeply with dimension (the paper's central tradeoff), so
// these are opt-in — servers and CLIs only accept them behind an explicit
// flag, and they resolve through PolicyByNameExtended, never PolicyByName.
var (
	Map3b2l = Policy{Name: "map3b2l", MaxQubits: 3, MaxLayers: 2, DecomposeSwap: true}
	Map3b3l = Policy{Name: "map3b3l", MaxQubits: 3, MaxLayers: 3, DecomposeSwap: true}
)

// Policies lists all six candidates in Table I order.
var Policies = []Policy{Map2b2l, Map2b3l, Map2b4l, Swap2b2l, Swap2b3l, Swap2b4l}

// Policies3Q lists the opt-in three-qubit policies.
var Policies3Q = []Policy{Map3b2l, Map3b3l}

// PolicyByName returns the named Table I policy.
func PolicyByName(name string) (Policy, error) {
	for _, p := range Policies {
		if p.Name == name {
			return p, nil
		}
	}
	return Policy{}, fmt.Errorf("grouping: unknown policy %q", name)
}

// PolicyByNameExtended resolves Table I policies plus the opt-in 3-qubit
// set. Callers gate this behind an explicit user flag: 3Q groups train
// dim-8 unitaries and cost far more GRAPE time per group.
func PolicyByNameExtended(name string) (Policy, error) {
	if p, err := PolicyByName(name); err == nil {
		return p, nil
	}
	for _, p := range Policies3Q {
		if p.Name == name {
			return p, nil
		}
	}
	return Policy{}, fmt.Errorf("grouping: unknown policy %q (known: Table I 2b policies, plus 3Q: map3b2l, map3b3l)", name)
}

// Group is one gate group: a convex set of gates acting on at most
// MaxQubits wires, spanning at most MaxLayers layers.
type Group struct {
	// Qubits are the global (physical) qubits the group touches, sorted.
	Qubits []int
	// Gates are the member gates in program order, on global qubits.
	Gates []gate.Instance
	// GateIndices are the positions of the member gates in the source
	// circuit, in program order.
	GateIndices []int
}

// LocalCircuit re-indexes the group onto wires 0..k−1 (sorted global order)
// and returns it as a standalone circuit.
func (g *Group) LocalCircuit() *circuit.Circuit {
	remap := make(map[int]int, len(g.Qubits))
	for i, q := range g.Qubits {
		remap[q] = i
	}
	c := circuit.New(len(g.Qubits))
	for _, inst := range g.Gates {
		local := make([]int, len(inst.Qubits))
		for i, q := range inst.Qubits {
			local[i] = remap[q]
		}
		c.MustAppend(inst.Name, local, inst.Params...)
	}
	return c
}

// Unitary returns the group's 2^k × 2^k matrix.
func (g *Group) Unitary() (*cmat.Matrix, error) {
	return g.LocalCircuit().Unitary()
}

// Key returns a canonical fingerprint of the group's unitary, invariant
// under global phase and (for two-qubit groups) qubit permutation — the
// paper's deduplication rule (§IV-C).
func (g *Group) Key() (string, error) {
	u, err := g.Unitary()
	if err != nil {
		return "", err
	}
	return MatrixKey(u), nil
}

// MatrixKey canonicalizes a unitary under global phase and qubit
// permutation (for 4×4 matrices) and renders it as a quantized string.
func MatrixKey(u *cmat.Matrix) string {
	k, _ := CanonicalOrientation(u)
	return k
}

// CanonicalOrientation returns the canonical key of a unitary and whether
// the canonical form is the qubit-swapped orientation. When swapped is
// true, a pulse trained for the canonical form drives this group with its
// per-qubit control channels exchanged.
func CanonicalOrientation(u *cmat.Matrix) (key string, swapped bool) {
	best := phaseCanonicalString(u)
	if u.Rows == 4 {
		if s := phaseCanonicalString(permuteQubits2(u)); s < best {
			return s, true
		}
	}
	return best, false
}

// permuteQubits2 returns S·U·S for the 4×4 SWAP S — the same operation with
// the two qubits relabeled.
func permuteQubits2(u *cmat.Matrix) *cmat.Matrix {
	s, err := gate.Unitary(gate.Swap, nil)
	if err != nil {
		panic(err) // static gate, cannot fail
	}
	return cmat.MulChain(s, u, s)
}

// phaseCanonicalString fixes the global phase so the largest-magnitude
// entry is real positive, then prints entries quantized to 1e-6.
func phaseCanonicalString(u *cmat.Matrix) string {
	// Use the largest-magnitude entry as the phase reference: stable under
	// small numerical noise.
	var ref complex128
	var refAbs float64
	for _, v := range u.Data {
		if a := cmplx.Abs(v); a > refAbs+1e-12 {
			refAbs, ref = a, v
		}
	}
	phase := complex(1, 0)
	if refAbs > 0 {
		phase = cmplx.Conj(ref) / complex(refAbs, 0)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d:", u.Rows, u.Cols)
	for _, v := range u.Data {
		w := v * phase
		fmt.Fprintf(&b, "%.5f,%.5f;", quant(real(w)), quant(imag(w)))
	}
	return b.String()
}

func quant(x float64) float64 {
	q := float64(int64(x*1e5+copysignHalf(x))) / 1e5
	if q == 0 {
		return 0 // normalize −0
	}
	return q
}

func copysignHalf(x float64) float64 {
	if x < 0 {
		return -0.5
	}
	return 0.5
}

// Grouping is the result of dividing a circuit: group occurrences in
// topological order plus the restructured group-level DAG (the input to
// Algorithm 3).
type Grouping struct {
	Policy Policy
	Groups []*Group
	// Preds[i] lists group indices that must complete before group i.
	Preds [][]int
	// Succs is the reverse adjacency.
	Succs [][]int
}

// Divide runs Algorithm 1 (bit dividing) then Algorithm 2 (layer dividing)
// on the circuit and builds the group DAG. The circuit should already be
// mapped (and swaps decomposed when the policy says so — see
// ApplyPolicy in the pipeline packages).
func Divide(c *circuit.Circuit, pol Policy) (*Grouping, error) {
	if pol.MaxQubits < 1 || pol.MaxLayers < 1 {
		return nil, fmt.Errorf("grouping: invalid policy %+v", pol)
	}
	dag := circuit.BuildDAG(c)
	big := bitDivide(c, dag, pol.MaxQubits)
	chunks := layerDivide(dag, big, pol.MaxLayers)

	gr := &Grouping{Policy: pol}
	gateToGroup := make([]int, len(c.Gates))
	for _, chunk := range chunks {
		grp := &Group{}
		qubitSet := map[int]bool{}
		for _, gi := range chunk {
			inst := c.Gates[gi]
			grp.Gates = append(grp.Gates, inst)
			grp.GateIndices = append(grp.GateIndices, gi)
			for _, q := range inst.Qubits {
				qubitSet[q] = true
			}
		}
		for q := range qubitSet {
			grp.Qubits = append(grp.Qubits, q)
		}
		sort.Ints(grp.Qubits)
		id := len(gr.Groups)
		gr.Groups = append(gr.Groups, grp)
		for _, gi := range chunk {
			gateToGroup[gi] = id
		}
	}
	// Group DAG from gate DAG.
	n := len(gr.Groups)
	predSet := make([]map[int]bool, n)
	for i := range predSet {
		predSet[i] = map[int]bool{}
	}
	for gi := range c.Gates {
		gg := gateToGroup[gi]
		for _, p := range dag.Preds[gi] {
			pg := gateToGroup[p]
			if pg != gg {
				predSet[gg][pg] = true
			}
		}
	}
	gr.Preds = make([][]int, n)
	gr.Succs = make([][]int, n)
	for i, s := range predSet {
		for p := range s {
			gr.Preds[i] = append(gr.Preds[i], p)
		}
		sort.Ints(gr.Preds[i])
		for _, p := range gr.Preds[i] {
			gr.Succs[p] = append(gr.Succs[p], i)
		}
	}
	return gr, nil
}

// bitDivide is Algorithm 1: greedy merge of each gate with its
// predecessors' groups in topological order, subject to the qubit budget
// and the wire-interval (convexity) rule. It returns big groups as slices
// of gate indices in program order.
func bitDivide(c *circuit.Circuit, dag *circuit.DAG, maxQubits int) [][]int {
	type bigGroup struct {
		gates  []int
		qubits map[int]bool
	}
	var groups []*bigGroup
	owner := map[int]*bigGroup{} // wire → group holding the last gate on it

	for gi, inst := range c.Gates {
		// Candidate groups: owners of the wires this gate reads.
		candSet := map[*bigGroup]bool{}
		for _, q := range inst.Qubits {
			if g := owner[q]; g != nil {
				candSet[g] = true
			}
		}
		cands := make([]*bigGroup, 0, len(candSet))
		for g := range candSet {
			cands = append(cands, g)
		}
		// Deterministic candidate order: by first gate index.
		sort.Slice(cands, func(i, j int) bool { return cands[i].gates[0] < cands[j].gates[0] })

		joinable := func(gs []*bigGroup) bool {
			union := map[int]bool{}
			for _, q := range inst.Qubits {
				union[q] = true
			}
			for _, g := range gs {
				for q := range g.qubits {
					union[q] = true
				}
			}
			if len(union) > maxQubits {
				return false
			}
			// Wire-interval rule: for every wire of this gate that a
			// candidate already uses, that candidate must still own the
			// wire (no foreign gate interleaved).
			for _, g := range gs {
				for _, q := range inst.Qubits {
					if g.qubits[q] && owner[q] != g {
						return false
					}
				}
			}
			// Merging two groups requires disjoint wire sets (each wire
			// owned by exactly one of them).
			if len(gs) == 2 {
				for q := range gs[0].qubits {
					if gs[1].qubits[q] {
						return false
					}
				}
			}
			return true
		}

		var target *bigGroup
		switch {
		case len(cands) == 2 && joinable(cands):
			// Merge the two predecessor groups (Algorithm 1 line 5–6).
			a, b := cands[0], cands[1]
			a.gates = append(a.gates, b.gates...)
			sort.Ints(a.gates)
			for q := range b.qubits {
				a.qubits[q] = true
			}
			for q, g := range owner {
				if g == b {
					owner[q] = a
				}
			}
			for i, g := range groups {
				if g == b {
					groups = append(groups[:i], groups[i+1:]...)
					break
				}
			}
			target = a
		case len(cands) >= 1:
			// Try each candidate singly, in order (line 7–9).
			for _, g := range cands {
				if joinable([]*bigGroup{g}) {
					target = g
					break
				}
			}
		}
		if target == nil {
			target = &bigGroup{qubits: map[int]bool{}}
			groups = append(groups, target)
		}
		target.gates = append(target.gates, gi)
		for _, q := range inst.Qubits {
			target.qubits[q] = true
			owner[q] = target
		}
	}

	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g.gates)
		out = append(out, g.gates)
	}
	// Deterministic order: by first gate index.
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// layerDivide is Algorithm 2: splits each big group into windows of at most
// maxLayers consecutive global depths, measured from the group's shallowest
// gate.
func layerDivide(dag *circuit.DAG, big [][]int, maxLayers int) [][]int {
	var out [][]int
	for _, grp := range big {
		if len(grp) == 0 {
			continue
		}
		start := dag.Depth[grp[0]]
		for _, gi := range grp {
			if dag.Depth[gi] < start {
				start = dag.Depth[gi]
			}
		}
		byWindow := map[int][]int{}
		maxW := 0
		for _, gi := range grp {
			w := (dag.Depth[gi] - start) / maxLayers
			byWindow[w] = append(byWindow[w], gi)
			if w > maxW {
				maxW = w
			}
		}
		for w := 0; w <= maxW; w++ {
			if gates, ok := byWindow[w]; ok {
				sort.Ints(gates)
				out = append(out, gates)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// UniqueGroup is a deduplicated group with its occurrence count.
type UniqueGroup struct {
	Key       string
	Group     *Group // representative occurrence
	Count     int
	NumQubits int
}

// Deduplicate collapses group occurrences by canonical matrix key and
// counts frequencies, most frequent first (§IV-C, §IV-G).
func Deduplicate(groups []*Group) ([]*UniqueGroup, error) {
	keys := make([]string, len(groups))
	for i, g := range groups {
		k, err := g.Key()
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	out := DeduplicateKeyed(groups, keys)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out, nil
}

// DeduplicateKeyed collapses group occurrences using precomputed canonical
// keys (keys[i] belongs to groups[i]), preserving first-occurrence order.
// Callers that already paid for the unitaries (e.g. the serving path) use
// this to avoid recomputing them.
func DeduplicateKeyed(groups []*Group, keys []string) []*UniqueGroup {
	byKey := map[string]*UniqueGroup{}
	var order []string
	for i, g := range groups {
		k := keys[i]
		if u, ok := byKey[k]; ok {
			u.Count++
			continue
		}
		byKey[k] = &UniqueGroup{Key: k, Group: g, Count: 1, NumQubits: len(g.Qubits)}
		order = append(order, k)
	}
	out := make([]*UniqueGroup, 0, len(order))
	for _, k := range order {
		out = append(out, byKey[k])
	}
	return out
}
