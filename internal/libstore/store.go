// Package libstore provides the shared, long-lived pulse-library artifact
// of the AccQOC workflow (§IV/§V): a sharded, mutex-striped,
// content-addressed store of trained pulses. Where precompile.Library is a
// plain map for single-threaded batch builds, Store is the serving-side
// wrapper: concurrent lookups stripe across shards, capacity is bounded by
// per-shard LRU eviction, hit/miss/eviction/training counters feed the
// server's /v1/library/stats endpoint, and GetOrTrain deduplicates
// concurrent requests for the same uncompiled gate group so exactly one
// GRAPE training runs per key (singleflight).
package libstore

import (
	"container/list"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"

	"accqoc/internal/precompile"
)

// Options configures a Store. The zero value selects 16 shards and
// unlimited capacity.
type Options struct {
	// Shards is the stripe count, rounded up to a power of two. More
	// shards mean less lock contention at a small fixed memory cost.
	Shards int
	// Capacity bounds the total entry count exactly: per-shard LRU caps
	// are Capacity/Shards with the remainder spread one-per-shard, so the
	// caps sum to Capacity. When Capacity is smaller than the shard
	// count, the shard count is reduced (keeping a power of two) so every
	// shard can hold at least one entry. A shard whose keys hash hot can
	// still evict while the store as a whole is under Capacity — inherent
	// to sharding — but the store never exceeds Capacity. 0 means
	// unlimited.
	Capacity int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 16
	}
	// Round up to a power of two so shard selection is a mask.
	n := 1
	for n < o.Shards {
		n <<= 1
	}
	o.Shards = n
	if o.Capacity < 0 {
		o.Capacity = 0
	}
	if o.Capacity > 0 {
		// Every shard must be able to hold at least one entry, or keys
		// hashing to a zero-cap shard could never stay resident. Halving
		// keeps the count a power of two for mask selection.
		for o.Shards > o.Capacity {
			o.Shards >>= 1
		}
	}
	return o
}

// Hook observes mutations of the store's entry set — the coherence
// channel for derived structures such as the warm-start seed index.
// Callbacks run synchronously under the owning shard's lock: mutations
// for any one key are therefore ordered, but implementations must not
// call back into the Store (deadlock) and should keep heavy work
// amortized (the seed index pays one pulse propagation per add, well
// under the training that produced the entry).
type Hook interface {
	// EntryAdded fires when a key is inserted or its entry replaced.
	EntryAdded(e *precompile.Entry)
	// EntryRemoved fires when a key is evicted.
	EntryRemoved(key string)
}

// AccessHook is an optional Hook extension observing lookups: EntryHit
// fires on every Get/GetOrTrain that found the key, EntryMissed on every
// one that did not (whether the caller then trains, joins an in-flight
// training, or gives up). Both run under the shard lock with the same
// constraints as Hook. Whether a registered Hook implements AccessHook is
// resolved once at SetHook time, so stores without one pay a single nil
// check per lookup.
type AccessHook interface {
	EntryHit(key string)
	EntryMissed(key string)
}

type hookCell struct {
	h Hook
	a AccessHook // h's AccessHook view, nil when not implemented
}

// teeHook fans mutations out to several hooks in order; access events go
// only to the members that observe them.
type teeHook struct {
	hooks  []Hook
	access []AccessHook
}

func (t *teeHook) EntryAdded(e *precompile.Entry) {
	for _, h := range t.hooks {
		h.EntryAdded(e)
	}
}

func (t *teeHook) EntryRemoved(key string) {
	for _, h := range t.hooks {
		h.EntryRemoved(key)
	}
}

func (t *teeHook) EntryHit(key string) {
	for _, a := range t.access {
		a.EntryHit(key)
	}
}

func (t *teeHook) EntryMissed(key string) {
	for _, a := range t.access {
		a.EntryMissed(key)
	}
}

// TeeHooks combines several hooks into one, for stores with more than one
// derived structure to keep coherent (seed index + usage ledger). Nil
// members are skipped; members implementing AccessHook also receive
// hit/miss events.
func TeeHooks(hooks ...Hook) Hook {
	t := &teeHook{}
	for _, h := range hooks {
		if h == nil {
			continue
		}
		t.hooks = append(t.hooks, h)
		if a, ok := h.(AccessHook); ok {
			t.access = append(t.access, a)
		}
	}
	switch len(t.hooks) {
	case 0:
		return nil
	case 1:
		return t.hooks[0]
	}
	return t
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Inserts   int64 `json:"inserts"`
	// Trainings counts GetOrTrain compute invocations that actually ran.
	Trainings int64 `json:"trainings"`
	// DedupSuppressed counts GetOrTrain callers that piggybacked on an
	// in-flight training instead of starting their own.
	DedupSuppressed int64 `json:"dedup_suppressed"`
	// TrainFailures counts compute invocations that returned an error
	// (the group stays uncovered; callers price it gate-based).
	TrainFailures int64 `json:"train_failures"`
}

// Store is a sharded concurrent pulse-library store. Entries are treated
// as immutable once stored: callers must not mutate a returned *Entry.
type Store struct {
	opts   Options
	seed   maphash.Seed
	shards []*shard
	hook   atomic.Pointer[hookCell]
	policy atomic.Pointer[policyCell]

	hits, misses, evictions, inserts atomic.Int64
	trainings, dedup, trainFailures  atomic.Int64
}

type shard struct {
	mu     sync.Mutex
	cap    int                      // LRU capacity, 0 = unlimited
	items  map[string]*list.Element // value: *node
	lru    *list.List               // front = most recently used
	flight map[string]*flightCall
}

type node struct {
	key   string
	entry *precompile.Entry
	// hits counts lookups that found this entry (Get and GetOrTrain),
	// guarded by the shard lock. The calibration-epoch roll orders its
	// recompilation most-requested-first from these counts.
	hits int64
}

type flightCall struct {
	done  chan struct{}
	entry *precompile.Entry
	err   error
}

// New returns an empty store.
func New(opts Options) *Store {
	opts = opts.withDefaults()
	s := &Store{
		opts:   opts,
		seed:   maphash.MakeSeed(),
		shards: make([]*shard, opts.Shards),
	}
	// Per-shard caps sum exactly to Capacity: base share everywhere, the
	// remainder spread one-per-shard from the front.
	base, rem := 0, 0
	if opts.Capacity > 0 {
		base, rem = opts.Capacity/opts.Shards, opts.Capacity%opts.Shards
	}
	for i := range s.shards {
		c := 0
		if opts.Capacity > 0 {
			c = base
			if i < rem {
				c++
			}
		}
		s.shards[i] = &shard{
			cap:    c,
			items:  map[string]*list.Element{},
			lru:    list.New(),
			flight: map[string]*flightCall{},
		}
	}
	return s
}

// SetHook registers the mutation observer (nil clears it). Mutations
// racing with the registration may be missed; callers that need a
// complete view (e.g. the seed index) should backfill from Snapshot()
// after registering.
func (s *Store) SetHook(h Hook) {
	c := &hookCell{h: h}
	if a, ok := h.(AccessHook); ok {
		c.a = a
	}
	s.hook.Store(c)
}

func (s *Store) hookAdded(e *precompile.Entry) {
	if c := s.hook.Load(); c != nil && c.h != nil {
		c.h.EntryAdded(e)
	}
}

func (s *Store) hookRemoved(key string) {
	if c := s.hook.Load(); c != nil && c.h != nil {
		c.h.EntryRemoved(key)
	}
}

func (s *Store) hookHit(key string) {
	if c := s.hook.Load(); c != nil && c.a != nil {
		c.a.EntryHit(key)
	}
}

func (s *Store) hookMissed(key string) {
	if c := s.hook.Load(); c != nil && c.a != nil {
		c.a.EntryMissed(key)
	}
}

// FromLibrary returns a store pre-populated with a library's entries (for
// example one loaded from a snapshot).
func FromLibrary(lib *precompile.Library, opts Options) *Store {
	s := New(opts)
	s.AddLibrary(lib)
	return s
}

func (s *Store) shardFor(key string) *shard {
	h := maphash.String(s.seed, key)
	return s.shards[h&uint64(len(s.shards)-1)]
}

// Get returns the entry for a canonical group key, counting a hit or miss
// and refreshing LRU recency.
func (s *Store) Get(key string) (*precompile.Entry, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	el, ok := sh.items[key]
	if !ok {
		s.hookMissed(key)
		sh.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	sh.lru.MoveToFront(el)
	// Read under the lock: Put replaces node.entry in place.
	n := el.Value.(*node)
	n.hits++
	entry := n.entry
	s.hookHit(key)
	sh.mu.Unlock()
	s.hits.Add(1)
	return entry, true
}

// Contains reports coverage without touching hit/miss counters or LRU
// order (used for stats-neutral inspection).
func (s *Store) Contains(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	_, ok := sh.items[key]
	sh.mu.Unlock()
	return ok
}

// Put inserts or replaces an entry under its own key.
func (s *Store) Put(e *precompile.Entry) {
	if e == nil {
		return
	}
	sh := s.shardFor(e.Key)
	sh.mu.Lock()
	s.putLocked(sh, e)
	sh.mu.Unlock()
}

// putLocked inserts under sh.mu and applies LRU eviction.
func (s *Store) putLocked(sh *shard, e *precompile.Entry) {
	if el, ok := sh.items[e.Key]; ok {
		el.Value.(*node).entry = e
		sh.lru.MoveToFront(el)
		s.hookAdded(e)
		return
	}
	// A fresh insert adopts the entry's carried hit count, so a
	// snapshot-loaded library resumes its KeysByHits ordering instead of
	// starting every entry at zero.
	sh.items[e.Key] = sh.lru.PushFront(&node{key: e.Key, entry: e, hits: e.Hits})
	s.inserts.Add(1)
	s.hookAdded(e)
	if sh.cap > 0 {
		for sh.lru.Len() > sh.cap {
			victim := s.victimLocked(sh)
			if victim == nil {
				break
			}
			sh.lru.Remove(victim)
			key := victim.Value.(*node).key
			delete(sh.items, key)
			s.evictions.Add(1)
			s.hookRemoved(key)
		}
	}
}

// victimLocked picks the entry to evict from an over-cap shard: the LRU
// tail when no eviction policy is installed (the historical behavior,
// byte-for-byte), otherwise whatever the policy selects from the shard's
// resident keys. The just-inserted entry is a candidate too — a policy may
// decide the newcomer is the least worth keeping.
func (s *Store) victimLocked(sh *shard) *list.Element {
	oldest := sh.lru.Back()
	if oldest == nil {
		return nil
	}
	c := s.policy.Load()
	if c == nil || c.p == nil {
		return oldest
	}
	keys := make([]string, 0, sh.lru.Len())
	for el := oldest; el != nil; el = el.Prev() {
		keys = append(keys, el.Value.(*node).key)
	}
	idx := c.p.Victim(keys)
	if idx <= 0 || idx >= len(keys) {
		return oldest
	}
	return sh.items[keys[idx]]
}

// AddLibrary merges every entry of a plain library into the store.
func (s *Store) AddLibrary(lib *precompile.Library) {
	if lib == nil {
		return
	}
	for _, e := range lib.Entries {
		s.Put(e)
	}
}

// Outcome reports how GetOrTrain resolved a key.
type Outcome int

const (
	// OutcomeHit: the entry was already cached — no training involved.
	OutcomeHit Outcome = iota
	// OutcomeTrained: this call executed the train function.
	OutcomeTrained
	// OutcomeJoined: another caller's in-flight training produced the
	// result; this call waited for it (singleflight suppression).
	OutcomeJoined
)

// GetOrTrain returns the cached entry for key, or runs train to produce
// it. Concurrent callers for the same key are deduplicated: exactly one
// executes train (OutcomeTrained), the rest block until it finishes and
// share the result and its error (OutcomeJoined). A successful result is
// inserted before any waiter is released, so a warm entry is immediately
// visible to Get.
func (s *Store) GetOrTrain(key string, train func() (*precompile.Entry, error)) (*precompile.Entry, Outcome, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		sh.lru.MoveToFront(el)
		n := el.Value.(*node)
		n.hits++
		entry := n.entry
		s.hookHit(key)
		sh.mu.Unlock()
		s.hits.Add(1)
		return entry, OutcomeHit, nil
	}
	s.hookMissed(key)
	s.misses.Add(1)
	if c, ok := sh.flight[key]; ok {
		sh.mu.Unlock()
		s.dedup.Add(1)
		<-c.done
		return c.entry, OutcomeJoined, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	sh.flight[key] = c
	sh.mu.Unlock()

	s.trainings.Add(1)
	entry, err := train()
	if err == nil && entry == nil {
		err = fmt.Errorf("libstore: train returned no entry for %q", key)
	}
	if err == nil && entry.Key != key {
		err = fmt.Errorf("libstore: train returned entry %q for key %q", entry.Key, key)
	}
	if err != nil {
		s.trainFailures.Add(1)
		entry = nil
	}

	sh.mu.Lock()
	delete(sh.flight, key)
	if err == nil {
		s.putLocked(sh, entry)
	}
	sh.mu.Unlock()
	c.entry, c.err = entry, err
	close(c.done)
	return entry, OutcomeTrained, err
}

// Len returns the current entry count.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// Stats returns a counter snapshot.
func (s *Store) Stats() Stats {
	return Stats{
		Entries:         s.Len(),
		Hits:            s.hits.Load(),
		Misses:          s.misses.Load(),
		Evictions:       s.evictions.Load(),
		Inserts:         s.inserts.Load(),
		Trainings:       s.trainings.Load(),
		DedupSuppressed: s.dedup.Load(),
		TrainFailures:   s.trainFailures.Load(),
	}
}

// HitCounts returns a snapshot of the per-entry hit counters, keyed by
// entry key. Entries never hit are present with count 0.
func (s *Store) HitCounts() map[string]int64 {
	out := map[string]int64{}
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k, el := range sh.items {
			out[k] = el.Value.(*node).hits
		}
		sh.mu.Unlock()
	}
	return out
}

// KeysByHits returns every stored key ordered most-requested-first (hit
// count descending, key ascending on ties, so the order is deterministic).
// The calibration-epoch recompilation pipeline walks this order: the
// entries serving the most traffic are re-trained for the new epoch first.
func (s *Store) KeysByHits() []string {
	counts := s.HitCounts()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// Snapshot copies the store's entries into a plain precompile.Library
// (the persistence and interchange format).
func (s *Store) Snapshot() *precompile.Library {
	lib := precompile.NewLibrary()
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k, el := range sh.items {
			lib.Entries[k] = el.Value.(*node).entry
		}
		sh.mu.Unlock()
	}
	return lib
}

// SnapshotWithHits is Snapshot with each entry's Hits field stamped from
// the live per-entry hit counter — the persistence path, so a reloaded
// library resumes its most-requested-first ordering. Entries are shallow
// copies (the live store's entries stay un-mutated; the shared Pulse is
// immutable by convention).
func (s *Store) SnapshotWithHits() *precompile.Library {
	lib := precompile.NewLibrary()
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k, el := range sh.items {
			n := el.Value.(*node)
			e := *n.entry
			e.Hits = n.hits
			lib.Entries[k] = &e
		}
		sh.mu.Unlock()
	}
	return lib
}
