package libstore

import (
	"path/filepath"
	"reflect"
	"testing"
)

// TestSnapshotHitsRoundTrip pins the hit-count persistence path: hits
// accumulated in a store survive SaveSnapshot → LoadInto into a fresh
// store, so KeysByHits ordering (and the usage ledger's carried counts)
// are restored after a restart.
func TestSnapshotHitsRoundTrip(t *testing.T) {
	s := New(Options{Capacity: 64})
	for i := 0; i < 4; i++ {
		s.Put(synthEntry(i))
	}
	// Skewed access: key-0002 ×3, key-0001 ×2, key-0003 ×1, key-0000 ×0.
	for _, k := range []string{"key-0002", "key-0001", "key-0002", "key-0003", "key-0002", "key-0001"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("seed get %s missed", k)
		}
	}
	wantOrder := s.KeysByHits()
	wantHits := s.HitCounts()

	path := filepath.Join(t.TempDir(), "lib.snap")
	if err := s.SaveSnapshot(path, FormatGob); err != nil {
		t.Fatalf("save: %v", err)
	}

	// The on-disk entries must carry the live counters.
	lib, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("load library: %v", err)
	}
	for _, e := range lib.Entries {
		if e.Hits != wantHits[e.Key] {
			t.Fatalf("snapshot entry %s hits = %d, want %d", e.Key, e.Hits, wantHits[e.Key])
		}
	}

	// A fresh store restores the counters and the derived ordering.
	fresh := New(Options{Capacity: 64})
	if n, err := fresh.LoadInto(path); err != nil || n != 4 {
		t.Fatalf("load into: n=%d err=%v", n, err)
	}
	if got := fresh.HitCounts(); !reflect.DeepEqual(got, wantHits) {
		t.Fatalf("restored hit counts = %v, want %v", got, wantHits)
	}
	if got := fresh.KeysByHits(); !reflect.DeepEqual(got, wantOrder) {
		t.Fatalf("restored KeysByHits = %v, want %v", got, wantOrder)
	}

	// A hit after restore keeps counting from the restored value.
	fresh.Get("key-0002")
	if got := fresh.HitCounts()["key-0002"]; got != wantHits["key-0002"]+1 {
		t.Fatalf("post-restore hits = %d, want %d", got, wantHits["key-0002"]+1)
	}
}

// TestSnapshotLegacyNoHits pins backward compatibility: a snapshot written
// from a plain Snapshot() (the pre-ledger wire shape, hit counts omitted)
// still loads, with every counter at zero.
func TestSnapshotLegacyNoHits(t *testing.T) {
	s := New(Options{Capacity: 64})
	for i := 0; i < 3; i++ {
		s.Put(synthEntry(i))
	}
	s.Get("key-0001")
	s.Get("key-0001")

	path := filepath.Join(t.TempDir(), "legacy.snap")
	// Snapshot() deliberately omits counters — the legacy encoding.
	if err := SaveLibrary(s.Snapshot(), path, FormatJSON); err != nil {
		t.Fatalf("save legacy: %v", err)
	}

	fresh := New(Options{Capacity: 64})
	if n, err := fresh.LoadInto(path); err != nil || n != 3 {
		t.Fatalf("load legacy: n=%d err=%v", n, err)
	}
	for k, v := range fresh.HitCounts() {
		if v != 0 {
			t.Fatalf("legacy load gave %s hits=%d, want 0", k, v)
		}
	}
}

// TestSnapshotWithHitsIsolation pins that SnapshotWithHits stamps copies:
// mutating the returned entries must not reach the live store.
func TestSnapshotWithHitsIsolation(t *testing.T) {
	s := New(Options{Capacity: 8})
	s.Put(synthEntry(0))
	s.Get("key-0000")

	lib := s.SnapshotWithHits()
	snap := lib.Entries["key-0000"]
	if len(lib.Entries) != 1 || snap == nil || snap.Hits != 1 {
		t.Fatalf("snapshot entries = %+v, want one entry with 1 hit", lib.Entries)
	}
	snap.Hits = 999
	snap.Iterations = -1

	got, ok := s.Get("key-0000")
	if !ok {
		t.Fatal("live entry vanished")
	}
	if got.Iterations != 10 {
		t.Fatalf("live entry mutated through snapshot: iterations=%d", got.Iterations)
	}
	if s.HitCounts()["key-0000"] != 2 {
		t.Fatalf("live hit counter = %d, want 2", s.HitCounts()["key-0000"])
	}
}
