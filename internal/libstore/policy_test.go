package libstore

import (
	"fmt"
	"testing"

	"accqoc/internal/precompile"
)

// keyedEntry builds a synthetic entry under an explicit key.
func keyedEntry(key string) *precompile.Entry {
	e := synthEntry(0)
	e.Key = key
	return e
}

// mapScorer is a fixed score table (unknown keys score zero, like a
// ledger that never saw them).
type mapScorer map[string][2]float64

func (m mapScorer) EntryScore(key string) (float64, float64) {
	s := m[key]
	return s[0], s[1]
}

// TestPolicyNilIsPureLRU pins the default path: a store with no policy
// (and one with the policy explicitly cleared) evicts exactly the LRU
// tail, same as it always has.
func TestPolicyNilIsPureLRU(t *testing.T) {
	for _, cleared := range []bool{false, true} {
		s := New(Options{Shards: 1, Capacity: 2})
		if cleared {
			s.SetEvictionPolicy(CostAware(mapScorer{}))
			s.SetEvictionPolicy(nil)
		}
		for _, k := range []string{"a", "b", "c"} {
			s.Put(keyedEntry(k))
		}
		if s.Contains("a") || !s.Contains("b") || !s.Contains("c") {
			t.Fatalf("cleared=%v: LRU default broken: a=%v b=%v c=%v",
				cleared, s.Contains("a"), s.Contains("b"), s.Contains("c"))
		}
	}
}

// TestPolicyCostAwareVictim pins the cost-aware choice: the lowest
// iterations×hits score goes first regardless of recency, including the
// just-inserted entry.
func TestPolicyCostAwareVictim(t *testing.T) {
	scores := mapScorer{"a": {100, 100}, "b": {0, 0}, "c": {50, 50}}
	pol := CostAware(scores)
	s := New(Options{Shards: 1, Capacity: 2})
	s.SetEvictionPolicy(pol)
	s.Put(keyedEntry("a"))
	s.Put(keyedEntry("b"))
	s.Put(keyedEntry("c")) // overflow: b has the minimal score, not LRU-tail a
	if s.Contains("b") || !s.Contains("a") || !s.Contains("c") {
		t.Fatalf("victim by score broken: a=%v b=%v c=%v",
			s.Contains("a"), s.Contains("b"), s.Contains("c"))
	}
	if st := pol.Stats(); st.CostPicks != 1 || st.LRUFallbacks != 0 {
		t.Fatalf("policy stats = %+v, want 1 cost pick", st)
	}

	// A worthless newcomer is itself the victim: the store keeps the
	// valuable residents and the insert washes straight through.
	s.Put(keyedEntry("zero"))
	if s.Contains("zero") || !s.Contains("a") || !s.Contains("c") {
		t.Fatalf("worthless newcomer retained over scored residents")
	}
}

// TestPolicyTiebreakProtectsExpensiveTraining pins the second clause of
// the score: among never-hit (score-zero) entries, raw training cost
// decides — a 667-iteration entry outlives a 20-iteration one even when
// it is the older of the two.
func TestPolicyTiebreakProtectsExpensiveTraining(t *testing.T) {
	scores := mapScorer{"cx2q": {0, 667}, "rz1q": {0, 20}, "h1q": {0, 20}}
	pol := CostAware(scores)
	s := New(Options{Shards: 1, Capacity: 2})
	s.SetEvictionPolicy(pol)
	s.Put(keyedEntry("cx2q")) // oldest
	s.Put(keyedEntry("rz1q"))
	s.Put(keyedEntry("h1q"))
	if !s.Contains("cx2q") || s.Contains("rz1q") {
		t.Fatal("expensive never-hit entry was not protected by the iterations tiebreak")
	}

	// All-equal scores: the choice degenerates to LRU order (oldest goes)
	// and the fallback counter ticks.
	tied := CostAware(mapScorer{})
	s2 := New(Options{Shards: 1, Capacity: 2})
	s2.SetEvictionPolicy(tied)
	s2.Put(keyedEntry("a"))
	s2.Put(keyedEntry("b"))
	s2.Put(keyedEntry("c"))
	if s2.Contains("a") || !s2.Contains("b") || !s2.Contains("c") {
		t.Fatal("full tie did not fall back to LRU order")
	}
	if st := tied.Stats(); st.LRUFallbacks != 1 || st.CostPicks != 0 {
		t.Fatalf("policy stats = %+v, want 1 LRU fallback", st)
	}
}

// TestPolicyOutOfRangeFallsBack pins the seam's contract: a policy
// returning a nonsense index degrades to the LRU tail instead of
// corrupting the shard.
func TestPolicyOutOfRangeFallsBack(t *testing.T) {
	for _, idx := range []int{-1, 99} {
		s := New(Options{Shards: 1, Capacity: 2})
		s.SetEvictionPolicy(fixedVictim(idx))
		for _, k := range []string{"a", "b", "c"} {
			s.Put(keyedEntry(k))
		}
		if s.Contains("a") || s.Len() != 2 {
			t.Fatalf("Victim()=%d: want LRU-tail eviction of a, got a=%v len=%d",
				idx, s.Contains("a"), s.Len())
		}
	}
}

type fixedVictim int

func (f fixedVictim) Victim(keys []string) int { return int(f) }

// TestPolicyVictimSeesLRUOrder pins the candidate ordering handed to the
// policy: least recently used first, most recent (the newcomer) last.
func TestPolicyVictimSeesLRUOrder(t *testing.T) {
	var seen [][]string
	s := New(Options{Shards: 1, Capacity: 2})
	s.SetEvictionPolicy(captureVictim{&seen})
	s.Put(keyedEntry("a"))
	s.Put(keyedEntry("b"))
	s.Get("a") // refresh a: LRU order is now b, a
	s.Put(keyedEntry("c"))
	want := []string{"b", "a", "c"}
	if len(seen) != 1 || fmt.Sprint(seen[0]) != fmt.Sprint(want) {
		t.Fatalf("policy saw %v, want [%v]", seen, want)
	}
}

type captureVictim struct{ seen *[][]string }

func (c captureVictim) Victim(keys []string) int {
	*c.seen = append(*c.seen, append([]string(nil), keys...))
	return 0
}
