package libstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestSnapshotFingerprintRoundTrip pins the version-2 layout: a
// fingerprinted snapshot decodes to the same library plus its fingerprint,
// and an empty fingerprint produces a byte-identical version-1 file.
func TestSnapshotFingerprintRoundTrip(t *testing.T) {
	s := New(Options{})
	for i := 0; i < 4; i++ {
		s.Put(synthEntry(i))
	}
	lib := s.Snapshot()
	const fp = "aqfp1:deadbeefdeadbeefdeadbeefdeadbeef"
	for _, format := range []Format{FormatGob, FormatJSON} {
		data, err := EncodeSnapshotFingerprint(lib, format, fp)
		if err != nil {
			t.Fatal(err)
		}
		got, gotFp, err := DecodeSnapshotFingerprint(data)
		if err != nil {
			t.Fatal(err)
		}
		if gotFp != fp {
			t.Fatalf("%s: fingerprint %q, want %q", format, gotFp, fp)
		}
		if len(got.Entries) != len(lib.Entries) {
			t.Fatalf("%s: %d entries, want %d", format, len(got.Entries), len(lib.Entries))
		}
		// The fingerprint-agnostic decoder still reads the file.
		if _, err := DecodeSnapshot(data); err != nil {
			t.Fatalf("%s: DecodeSnapshot on v2: %v", format, err)
		}
	}
	// Empty fingerprint: version-1 output, byte-identical to the legacy
	// encoder, and it decodes with an empty fingerprint.
	v1, err := EncodeSnapshot(lib, FormatGob)
	if err != nil {
		t.Fatal(err)
	}
	if v1[4] != snapshotVersion {
		t.Fatalf("empty-fingerprint snapshot has version %d, want %d", v1[4], snapshotVersion)
	}
	if _, fp0, err := DecodeSnapshotFingerprint(v1); err != nil || fp0 != "" {
		t.Fatalf("v1 decode: fp=%q err=%v", fp0, err)
	}
}

// TestLoadIntoCheckedMismatch is the regression test for the silent
// wrong-device load: a snapshot stamped for one device+calibration must be
// rejected by a store expecting another, and the force escape hatch must
// load it anyway.
func TestLoadIntoCheckedMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lib.snap")
	src := New(Options{})
	for i := 0; i < 3; i++ {
		src.Put(synthEntry(i))
	}
	if err := src.SaveSnapshotFingerprint(path, FormatGob, "aqfp1:device-A"); err != nil {
		t.Fatal(err)
	}

	// Mismatch: nothing loads, the error names both fingerprints, and the
	// snapshot's own fingerprint is reported for logging.
	dst := New(Options{})
	n, got, err := dst.LoadIntoChecked(path, "aqfp1:device-B", false)
	if !errors.Is(err, ErrFingerprint) {
		t.Fatalf("mismatch err = %v, want ErrFingerprint", err)
	}
	if n != 0 || dst.Len() != 0 {
		t.Fatalf("mismatch loaded %d entries (store has %d), want 0", n, dst.Len())
	}
	if got != "aqfp1:device-A" {
		t.Fatalf("reported fingerprint %q", got)
	}

	// Matching fingerprint loads.
	match := New(Options{})
	if n, _, err := match.LoadIntoChecked(path, "aqfp1:device-A", false); err != nil || n != 3 {
		t.Fatalf("match load: n=%d err=%v", n, err)
	}

	// Force overrides the mismatch (the -lib-force escape hatch).
	forced := New(Options{})
	if n, _, err := forced.LoadIntoChecked(path, "aqfp1:device-B", true); err != nil || n != 3 {
		t.Fatalf("forced load: n=%d err=%v", n, err)
	}

	// A legacy (unfingerprinted) snapshot cannot be checked and loads.
	legacyPath := filepath.Join(dir, "legacy.snap")
	if err := src.SaveSnapshot(legacyPath, FormatGob); err != nil {
		t.Fatal(err)
	}
	legacy := New(Options{})
	if n, fp, err := legacy.LoadIntoChecked(legacyPath, "aqfp1:device-B", false); err != nil || n != 3 || fp != "" {
		t.Fatalf("legacy load: n=%d fp=%q err=%v", n, fp, err)
	}

	// Truncating inside the fingerprint section is corruption, not a
	// mismatch.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeSnapshotFingerprint(data[:headerLen+1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated fingerprint err = %v, want ErrCorrupt", err)
	}
}

// TestKeysByHits pins the most-requested-first ordering the calibration
// roll trains in.
func TestKeysByHits(t *testing.T) {
	s := New(Options{Shards: 2})
	for i := 0; i < 4; i++ {
		s.Put(synthEntry(i))
	}
	hit := func(key string, n int) {
		for i := 0; i < n; i++ {
			if _, ok := s.Get(key); !ok {
				t.Fatalf("key %s missing", key)
			}
		}
	}
	hit("key-0002", 5)
	hit("key-0000", 2)
	// GetOrTrain hits count too.
	if _, outcome, err := s.GetOrTrain("key-0000", nil); err != nil || outcome != OutcomeHit {
		t.Fatalf("GetOrTrain hit: outcome=%v err=%v", outcome, err)
	}
	got := s.KeysByHits()
	want := []string{"key-0002", "key-0000", "key-0001", "key-0003"}
	if len(got) != len(want) {
		t.Fatalf("KeysByHits returned %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KeysByHits = %v, want %v", got, want)
		}
	}
	counts := s.HitCounts()
	if counts["key-0002"] != 5 || counts["key-0000"] != 3 || counts["key-0001"] != 0 {
		t.Fatalf("HitCounts = %v", counts)
	}
}
