package libstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"accqoc/internal/gate"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/precompile"
	"accqoc/internal/pulse"
)

// synthEntry builds a deterministic fake entry (no training).
func synthEntry(i int) *precompile.Entry {
	p := pulse.New([]string{"x0", "y0"}, 12, 2.0)
	for c := range p.Amps {
		for s := range p.Amps[c] {
			p.Amps[c][s] = math.Sin(float64(i+c) + float64(s)/3)
		}
	}
	return &precompile.Entry{
		Key:        fmt.Sprintf("key-%04d", i),
		NumQubits:  1,
		Pulse:      p,
		LatencyNs:  24,
		Iterations: 10 + i,
		Frequency:  1,
		Infidelity: 1e-4,
	}
}

func TestStoreGetPutCounters(t *testing.T) {
	s := New(Options{Shards: 4})
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get on empty store succeeded")
	}
	e := synthEntry(1)
	s.Put(e)
	got, ok := s.Get(e.Key)
	if !ok || got != e {
		t.Fatalf("Get(%q) = %v, %v", e.Key, got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Inserts != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry / 1 insert", st)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	// One shard makes the LRU order deterministic.
	s := New(Options{Shards: 1, Capacity: 3})
	for i := 0; i < 3; i++ {
		s.Put(synthEntry(i))
	}
	// Refresh key-0000 so key-0001 is the LRU victim.
	if _, ok := s.Get("key-0000"); !ok {
		t.Fatal("key-0000 missing before eviction")
	}
	s.Put(synthEntry(3))
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Contains("key-0001") {
		t.Fatal("LRU victim key-0001 survived eviction")
	}
	for _, k := range []string{"key-0000", "key-0002", "key-0003"} {
		if !s.Contains(k) {
			t.Fatalf("%s evicted, want key-0001", k)
		}
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestGetOrTrainSingleflight(t *testing.T) {
	s := New(Options{})
	const callers = 32
	release := make(chan struct{})
	var trainCalls int
	var trainedOutcomes atomic.Int64
	var wg sync.WaitGroup
	started := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-started
			e, outcome, err := s.GetOrTrain("key-0007", func() (*precompile.Entry, error) {
				trainCalls++ // only one goroutine may ever run this
				<-release
				return synthEntry(7), nil
			})
			if err != nil {
				t.Errorf("GetOrTrain: %v", err)
			}
			if e == nil || e.Key != "key-0007" {
				t.Errorf("GetOrTrain entry = %+v", e)
			}
			if outcome == OutcomeTrained {
				trainedOutcomes.Add(1)
			}
		}()
	}
	close(started)
	close(release)
	wg.Wait()
	if trainCalls != 1 {
		t.Fatalf("train ran %d times, want exactly 1", trainCalls)
	}
	if trainedOutcomes.Load() != 1 {
		t.Fatalf("%d callers reported OutcomeTrained, want exactly 1", trainedOutcomes.Load())
	}
	st := s.Stats()
	if st.Trainings != 1 {
		t.Fatalf("Trainings = %d, want 1", st.Trainings)
	}
	if st.DedupSuppressed+st.Hits != callers-1 {
		t.Fatalf("dedup %d + hits %d, want %d callers accounted", st.DedupSuppressed, st.Hits, callers-1)
	}
}

func TestGetOrTrainErrorNotCached(t *testing.T) {
	s := New(Options{})
	boom := errors.New("bracket exhausted")
	if _, _, err := s.GetOrTrain("k", func() (*precompile.Entry, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if s.Len() != 0 {
		t.Fatal("failed training was cached")
	}
	if st := s.Stats(); st.TrainFailures != 1 {
		t.Fatalf("TrainFailures = %d, want 1", st.TrainFailures)
	}
	// A later call retries.
	e := synthEntry(0)
	got, outcome, err := s.GetOrTrain("key-0000", func() (*precompile.Entry, error) { return e, nil })
	if err != nil || got != e || outcome != OutcomeTrained {
		t.Fatalf("retry = %v, %v, %v", got, outcome, err)
	}
}

func TestGetOrTrainKeyMismatch(t *testing.T) {
	s := New(Options{})
	if _, _, err := s.GetOrTrain("expected", func() (*precompile.Entry, error) { return synthEntry(1), nil }); err == nil {
		t.Fatal("key-mismatched entry accepted")
	}
}

// TestStoreConcurrentHammer drives readers, writers and singleflight
// trainers across a small keyspace with eviction pressure; run with -race.
func TestStoreConcurrentHammer(t *testing.T) {
	s := New(Options{Shards: 8, Capacity: 64})
	const (
		goroutines = 16
		iters      = 500
		keyspace   = 128
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g*31 + i*17) % keyspace
				key := fmt.Sprintf("key-%04d", k)
				switch i % 4 {
				case 0:
					s.Put(synthEntry(k))
				case 1:
					if e, ok := s.Get(key); ok && e.Key != key {
						t.Errorf("Get(%q) returned entry %q", key, e.Key)
					}
				case 2:
					e, _, err := s.GetOrTrain(key, func() (*precompile.Entry, error) {
						return synthEntry(k), nil
					})
					if err != nil || e.Key != key {
						t.Errorf("GetOrTrain(%q) = %v, %v", key, e, err)
					}
				default:
					s.Len()
					s.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Entries > 64+8 { // capacity, with per-shard ceiling slack
		t.Fatalf("entries %d exceed capacity bound", st.Entries)
	}
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}

func TestSnapshotRoundTripSynthetic(t *testing.T) {
	for _, format := range []Format{FormatGob, FormatJSON} {
		t.Run(format.String(), func(t *testing.T) {
			s := New(Options{})
			for i := 0; i < 20; i++ {
				s.Put(synthEntry(i))
			}
			path := filepath.Join(t.TempDir(), "lib.snap")
			if err := s.SaveSnapshot(path, format); err != nil {
				t.Fatal(err)
			}
			lib, err := LoadSnapshot(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(lib.Entries) != 20 {
				t.Fatalf("loaded %d entries, want 20", len(lib.Entries))
			}
			for k, e := range lib.Entries {
				want := s.Snapshot().Entries[k]
				if e.LatencyNs != want.LatencyNs || e.Iterations != want.Iterations {
					t.Fatalf("entry %s metadata drifted: %+v vs %+v", k, e, want)
				}
				if e.Pulse.Segments() != want.Pulse.Segments() || e.Pulse.Dt != want.Pulse.Dt {
					t.Fatalf("entry %s pulse shape drifted", k)
				}
				for c := range e.Pulse.Amps {
					for i := range e.Pulse.Amps[c] {
						if e.Pulse.Amps[c][i] != want.Pulse.Amps[c][i] {
							t.Fatalf("entry %s amp[%d][%d] drifted", k, c, i)
						}
					}
				}
			}
		})
	}
}

// TestSnapshotRoundTripTrained round-trips a genuinely trained library
// through both formats, verifying the reloaded pulses still implement
// their unitaries.
func TestSnapshotRoundTripTrained(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	var groups []*grouping.Group
	for _, a := range []float64{0.4, 1.1} {
		groups = append(groups, &grouping.Group{
			Qubits: []int{0},
			Gates:  []gate.Instance{gate.MustInstance(gate.RZ, []int{0}, a)},
		})
	}
	uniq, err := grouping.Deduplicate(groups)
	if err != nil {
		t.Fatal(err)
	}
	lib, _, err := precompile.Build(uniq, precompile.Config{
		Grape: grape.Options{TargetInfidelity: 1e-3, MaxIterations: 400, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Entries) != 2 {
		t.Fatalf("trained %d entries, want 2", len(lib.Entries))
	}
	for _, format := range []Format{FormatGob, FormatJSON} {
		path := filepath.Join(t.TempDir(), "trained."+format.String())
		if err := SaveLibrary(lib, path, format); err != nil {
			t.Fatal(err)
		}
		got, err := LoadSnapshot(path)
		if err != nil {
			t.Fatal(err)
		}
		for k, e := range lib.Entries {
			ge, ok := got.Entries[k]
			if !ok {
				t.Fatalf("%s: entry %s lost in round trip", format, k)
			}
			if ge.LatencyNs != e.LatencyNs || ge.Infidelity != e.Infidelity {
				t.Fatalf("%s: entry %s metadata drifted", format, k)
			}
			for c := range e.Pulse.Amps {
				for i := range e.Pulse.Amps[c] {
					if ge.Pulse.Amps[c][i] != e.Pulse.Amps[c][i] {
						t.Fatalf("%s: entry %s amplitudes drifted", format, k)
					}
				}
			}
		}
	}
}

func TestLoadSnapshotCorrupt(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	s := New(Options{})
	for i := 0; i < 4; i++ {
		s.Put(synthEntry(i))
	}
	valid, err := EncodeSnapshot(s.Snapshot(), FormatGob)
	if err != nil {
		t.Fatal(err)
	}
	// A payload bit flip must fail the checksum even when the damaged gob
	// would still decode into a structurally valid library (flipped float
	// bits) — the exact corruption structural validation cannot see.
	bitFlip := append([]byte{}, valid...)
	bitFlip[len(bitFlip)-20] ^= 0x40
	cases := map[string][]byte{
		"empty":        {},
		"short":        {'A', 'Q'},
		"bad-magic":    append([]byte("NOPE"), valid[4:]...),
		"bad-version":  append([]byte("AQLS\xff"), valid[5:]...),
		"bad-format":   append([]byte("AQLS\x01\x09"), valid[6:]...),
		"truncated":    valid[:len(valid)-7],
		"bit-flip":     bitFlip,
		"junk-payload": append(append([]byte{}, valid[:headerLen]...), []byte("this is not gob")...),
	}
	for name, data := range cases {
		if _, err := LoadSnapshot(write(name, data)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	// JSON payload (with a correct checksum) that decodes but fails pulse
	// validation.
	badPulse := []byte(`{"entries":{"k":{"key":"k","num_qubits":1,"pulse":{"labels":["x0"],"amps":[[1,2]],"dt_ns":-1},"latency_ns":1}}}`)
	hdr := make([]byte, headerLen)
	copy(hdr, "AQLS")
	hdr[4] = snapshotVersion
	hdr[5] = byte(FormatJSON)
	binary.LittleEndian.PutUint32(hdr[6:10], crc32.ChecksumIEEE(badPulse))
	if _, err := LoadSnapshot(write("bad-pulse", append(hdr, badPulse...))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad-pulse: err = %v, want ErrCorrupt", err)
	}
	// Entry filed under a map key different from its own Key (would be
	// silently re-keyed by AddLibrary if accepted).
	mismatched := []byte(`{"entries":{"other":{"key":"k","num_qubits":1,"pulse":{"labels":["x0"],"amps":[[1,2]],"dt_ns":2},"latency_ns":1}}}`)
	binary.LittleEndian.PutUint32(hdr[6:10], crc32.ChecksumIEEE(mismatched))
	if _, err := LoadSnapshot(write("key-mismatch", append(hdr, mismatched...))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("key-mismatch: err = %v, want ErrCorrupt", err)
	}
	// Missing file surfaces the os error, not ErrCorrupt.
	if _, err := LoadSnapshot(filepath.Join(dir, "nope.snap")); !os.IsNotExist(err) {
		t.Errorf("missing file: err = %v, want IsNotExist", err)
	}
}

func TestSaveSnapshotAtomic(t *testing.T) {
	s := New(Options{})
	s.Put(synthEntry(0))
	path := filepath.Join(t.TempDir(), "lib.snap")
	if err := s.SaveSnapshot(path, FormatGob); err != nil {
		t.Fatal(err)
	}
	// A second save over the same path must succeed and leave no temp files.
	s.Put(synthEntry(1))
	if err := s.SaveSnapshot(path, FormatGob); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d files, want only the snapshot", len(entries))
	}
	lib, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Entries) != 2 {
		t.Fatalf("reloaded %d entries, want 2", len(lib.Entries))
	}
}

// TestStoreCapacityExactBound pins the capacity fix: the old
// ceil(Capacity/Shards) per-shard rounding let the store hold up to
// Shards−1 entries beyond the requested Capacity.
func TestStoreCapacityExactBound(t *testing.T) {
	for _, tc := range []struct{ shards, capacity int }{
		{16, 100}, // remainder 4: old bound was 16·7 = 112
		{8, 9},    // remainder 1: old bound was 8·2 = 16
		{4, 4},    // divides evenly
		{16, 5},   // capacity below shard count: shards clamp to 4
		{16, 1},   // degenerate: single-entry store
	} {
		s := New(Options{Shards: tc.shards, Capacity: tc.capacity})
		for i := 0; i < 4*tc.capacity+64; i++ {
			s.Put(synthEntry(i))
		}
		if got := s.Len(); got > tc.capacity {
			t.Errorf("shards=%d capacity=%d: %d entries resident, exceeds capacity",
				tc.shards, tc.capacity, got)
		}
		if st := s.Stats(); st.Entries > tc.capacity {
			t.Errorf("shards=%d capacity=%d: Stats.Entries = %d", tc.shards, tc.capacity, st.Entries)
		}
	}
}

// recordingHook captures mutation callbacks for coherence assertions.
// Callbacks for one key are ordered (they run under the key's shard
// lock), so the last event per key is the key's residency — the same
// property the seed index relies on. adds counts every EntryAdded,
// including replacements of resident keys.
type recordingHook struct {
	mu       sync.Mutex
	resident map[string]bool
	adds     map[string]int
}

func newRecordingHook() *recordingHook {
	return &recordingHook{resident: map[string]bool{}, adds: map[string]int{}}
}

func (h *recordingHook) EntryAdded(e *precompile.Entry) {
	h.mu.Lock()
	h.resident[e.Key] = true
	h.adds[e.Key]++
	h.mu.Unlock()
}

func (h *recordingHook) EntryRemoved(key string) {
	h.mu.Lock()
	h.resident[key] = false
	h.mu.Unlock()
}

// live returns the set of keys the hook believes are resident.
func (h *recordingHook) live() map[string]bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := map[string]bool{}
	for k, ok := range h.resident {
		if ok {
			out[k] = true
		}
	}
	return out
}

// TestStoreHookMirrorsMutations drives inserts, replacements and LRU
// evictions and checks the hook's view matches the store exactly.
func TestStoreHookMirrorsMutations(t *testing.T) {
	s := New(Options{Shards: 1, Capacity: 3})
	h := newRecordingHook()
	s.SetHook(h)

	for i := 0; i < 10; i++ {
		s.Put(synthEntry(i))
	}
	s.Put(synthEntry(9)) // replacement fires EntryAdded again
	_, _, err := s.GetOrTrain("key-0042", func() (*precompile.Entry, error) {
		return synthEntry(42), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	live := h.live()
	if len(live) != s.Len() {
		t.Fatalf("hook sees %d live keys, store holds %d", len(live), s.Len())
	}
	for k := range live {
		if !s.Contains(k) {
			t.Errorf("hook believes %q resident, store disagrees", k)
		}
	}
	h.mu.Lock()
	if h.adds["key-0009"] != 2 {
		t.Errorf("replacement fired EntryAdded %d times, want 2", h.adds["key-0009"])
	}
	h.mu.Unlock()
}

// TestStoreHookUnderConcurrency re-runs the hammer with a hook attached;
// meaningful under -race (hook callbacks run inside shard critical
// sections).
func TestStoreHookUnderConcurrency(t *testing.T) {
	s := New(Options{Shards: 4, Capacity: 32})
	h := newRecordingHook()
	s.SetHook(h)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g*31 + i*17) % 64
				if i%2 == 0 {
					s.Put(synthEntry(k))
				} else {
					key := fmt.Sprintf("key-%04d", k)
					_, _, _ = s.GetOrTrain(key, func() (*precompile.Entry, error) {
						return synthEntry(k), nil
					})
				}
			}
		}(g)
	}
	wg.Wait()
	live := h.live()
	if len(live) != s.Len() {
		t.Fatalf("hook sees %d live keys, store holds %d", len(live), s.Len())
	}
	for k := range live {
		if !s.Contains(k) {
			t.Errorf("hook believes %q resident, store disagrees", k)
		}
	}
}
