package libstore

// Pluggable eviction: the shard LRU stays the mechanism (recency order,
// capacity bound, hook delivery), but when a shard must shed an entry the
// *choice* of victim can be delegated to an EvictionPolicy. With no policy
// installed the store behaves byte-for-byte as before — the LRU tail goes.
//
// The cost-aware policy here is the ROADMAP's "cost-aware cache policy":
// eviction by pure recency throws away whatever happens to be old, which
// for a pulse library means a 667-iteration 2Q training is discarded as
// readily as a 20-iteration 1q one. CostAware instead evicts the entry
// whose measured value — the usage ledger's iterations×hits score — is
// lowest, falling back to raw training cost between never-hit entries and
// to LRU order on full ties.

import "sync/atomic"

// EvictionPolicy picks the victim when a shard exceeds its capacity.
// Victim receives the shard's resident keys in LRU order (least recently
// used first, so index 0 is the pure-LRU victim) and returns the index of
// the key to evict; out-of-range returns fall back to index 0. Calls run
// under the shard lock: implementations must be fast and must not call
// back into the Store (deadlock), the same contract as Hook.
type EvictionPolicy interface {
	Victim(keys []string) int
}

type policyCell struct{ p EvictionPolicy }

// SetEvictionPolicy installs the eviction victim selector (nil restores
// pure LRU). Safe to call concurrently with store traffic; evictions
// racing with the swap use whichever policy they load.
func (s *Store) SetEvictionPolicy(p EvictionPolicy) {
	s.policy.Store(&policyCell{p: p})
}

// Scorer values resident keys for the cost-aware policy. EntryScore
// returns a key's retention worth: score is the primary ordering
// (iterations×hits in the usage ledger's terms — expensive and popular is
// worth keeping), tiebreak orders equal scores (raw accumulated training
// iterations, so among never-hit entries the expensive one survives).
// Unknown keys return (0, 0). Called under a shard lock, so the same
// no-call-back constraint as EvictionPolicy applies.
type Scorer interface {
	EntryScore(key string) (score, tiebreak float64)
}

// PolicyStats is the cost-aware policy's counter snapshot.
type PolicyStats struct {
	// CostPicks counts evictions where scoring moved the victim away from
	// the LRU tail.
	CostPicks int64 `json:"cost_picks"`
	// LRUFallbacks counts evictions that degenerated to LRU order: the
	// tail entry already had the minimal (score, tiebreak), tied or not.
	LRUFallbacks int64 `json:"lru_fallbacks"`
}

// CostAwarePolicy evicts the minimal-(score, tiebreak) entry, LRU order
// breaking exact ties.
type CostAwarePolicy struct {
	scorer       Scorer
	costPicks    atomic.Int64
	lruFallbacks atomic.Int64
}

// CostAware returns a cost-aware eviction policy over a scorer.
func CostAware(sc Scorer) *CostAwarePolicy {
	return &CostAwarePolicy{scorer: sc}
}

// Victim implements EvictionPolicy: the index of the lowest-scoring key.
// Strict less keeps the earliest (least recently used) candidate on ties,
// which is the required LRU fallback.
func (p *CostAwarePolicy) Victim(keys []string) int {
	if len(keys) == 0 {
		return 0
	}
	best := 0
	bestScore, bestTie := p.scorer.EntryScore(keys[0])
	for i := 1; i < len(keys); i++ {
		sc, tb := p.scorer.EntryScore(keys[i])
		if sc < bestScore || (sc == bestScore && tb < bestTie) {
			best, bestScore, bestTie = i, sc, tb
		}
	}
	if best == 0 {
		p.lruFallbacks.Add(1)
	} else {
		p.costPicks.Add(1)
	}
	return best
}

// Stats returns the counter snapshot.
func (p *CostAwarePolicy) Stats() PolicyStats {
	return PolicyStats{
		CostPicks:    p.costPicks.Load(),
		LRUFallbacks: p.lruFallbacks.Load(),
	}
}
