package libstore

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"accqoc/internal/precompile"
)

// Snapshot file layout (version 1):
//
//	4 bytes  magic "AQLS"
//	1 byte   snapshot version
//	1 byte   payload format (FormatGob | FormatJSON)
//	4 bytes  IEEE CRC-32 of the payload, little-endian
//	payload  the encoded precompile.Library
//
// Version 2 carries a device+calibration fingerprint between the header
// and the payload (2-byte little-endian length, then the fingerprint
// bytes); its CRC covers everything after the header, fingerprint
// included. A version-2 snapshot is written whenever the caller supplies a
// fingerprint; with an empty fingerprint the output is byte-identical to
// version 1, and version-1 files remain loadable (they simply carry no
// identity to check).
//
// The fingerprint matters as much as the checksum: a snapshot is a cache
// of GRAPE solutions valid only for the exact device Hamiltonian and
// calibration it was trained under. Loading one into a server configured
// for a different device — or the same device after a recalibration —
// would silently serve pulses that drive the wrong unitaries. LoadIntoChecked
// rejects that mismatch instead (with an explicit force escape hatch).
//
// The checksum matters: random corruption inside gob-encoded float64
// amplitudes can decode into a structurally valid library with silently
// wrong pulses, so structural validation alone cannot catch it.
//
// Saves are atomic: the payload is written to a temp file in the target
// directory, synced, and renamed over the destination, so a crash mid-save
// never corrupts an existing snapshot.

// Format selects the snapshot payload encoding.
type Format byte

const (
	// FormatGob is the compact binary encoding (via pulse.GobEncode's
	// versioned layout). Preferred for large libraries.
	FormatGob Format = 1
	// FormatJSON is the human-inspectable encoding, interchangeable with
	// precompile.Library.Save output (payload only, without the header).
	FormatJSON Format = 2
)

func (f Format) String() string {
	switch f {
	case FormatGob:
		return "gob"
	case FormatJSON:
		return "json"
	default:
		return fmt.Sprintf("format(%d)", byte(f))
	}
}

var snapshotMagic = [4]byte{'A', 'Q', 'L', 'S'}

const (
	snapshotVersion = 1
	// snapshotVersionFingerprint adds the device+calibration fingerprint
	// section after the header.
	snapshotVersionFingerprint = 2
)

// ErrCorrupt tags snapshot decode failures; errors.Is(err, ErrCorrupt)
// distinguishes a damaged file from an absent one.
var ErrCorrupt = errors.New("libstore: corrupt snapshot")

// ErrFingerprint tags a snapshot whose device+calibration fingerprint does
// not match the store it is being loaded into: the pulses were trained for
// different physics and would silently drive wrong unitaries.
var ErrFingerprint = errors.New("libstore: snapshot fingerprint mismatch")

// headerLen is magic + version + format + crc32.
const headerLen = 4 + 1 + 1 + 4

// maxFingerprintLen bounds the fingerprint section (a 2-byte length field).
const maxFingerprintLen = 1<<16 - 1

// EncodeSnapshot renders a library in the versioned snapshot layout with no
// fingerprint (a version-1 file, byte-identical to the pre-fingerprint
// encoder).
func EncodeSnapshot(lib *precompile.Library, format Format) ([]byte, error) {
	return EncodeSnapshotFingerprint(lib, format, "")
}

// EncodeSnapshotFingerprint renders a library in the versioned snapshot
// layout carrying the given device+calibration fingerprint. An empty
// fingerprint produces a version-1 file; a non-empty one a version-2 file.
func EncodeSnapshotFingerprint(lib *precompile.Library, format Format, fingerprint string) ([]byte, error) {
	if len(fingerprint) > maxFingerprintLen {
		return nil, fmt.Errorf("libstore: fingerprint %d bytes exceeds %d", len(fingerprint), maxFingerprintLen)
	}
	var payload bytes.Buffer
	switch format {
	case FormatGob:
		if err := gob.NewEncoder(&payload).Encode(lib); err != nil {
			return nil, fmt.Errorf("libstore: gob encode: %w", err)
		}
	case FormatJSON:
		data, err := json.Marshal(lib)
		if err != nil {
			return nil, fmt.Errorf("libstore: json encode: %w", err)
		}
		payload.Write(data)
	default:
		return nil, fmt.Errorf("libstore: unknown snapshot format %d", format)
	}
	version := byte(snapshotVersion)
	var tail []byte
	if fingerprint != "" {
		version = snapshotVersionFingerprint
		tail = make([]byte, 2, 2+len(fingerprint)+payload.Len())
		binary.LittleEndian.PutUint16(tail, uint16(len(fingerprint)))
		tail = append(tail, fingerprint...)
	}
	tail = append(tail, payload.Bytes()...)
	out := make([]byte, headerLen, headerLen+len(tail))
	copy(out, snapshotMagic[:])
	out[4] = version
	out[5] = byte(format)
	binary.LittleEndian.PutUint32(out[6:10], crc32.ChecksumIEEE(tail))
	return append(out, tail...), nil
}

// DecodeSnapshot parses a snapshot produced by EncodeSnapshot, validating
// the header and every entry's pulse and discarding any fingerprint.
func DecodeSnapshot(data []byte) (*precompile.Library, error) {
	lib, _, err := DecodeSnapshotFingerprint(data)
	return lib, err
}

// DecodeSnapshotFingerprint parses a snapshot, returning the library and
// the embedded device+calibration fingerprint ("" for version-1 files,
// which predate fingerprinting).
func DecodeSnapshotFingerprint(data []byte) (*precompile.Library, string, error) {
	if len(data) < headerLen {
		return nil, "", fmt.Errorf("%w: %d bytes, want ≥ %d", ErrCorrupt, len(data), headerLen)
	}
	if !bytes.Equal(data[:4], snapshotMagic[:]) {
		return nil, "", fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	version := data[4]
	if version != snapshotVersion && version != snapshotVersionFingerprint {
		return nil, "", fmt.Errorf("%w: unsupported version %d (want %d or %d)",
			ErrCorrupt, version, snapshotVersion, snapshotVersionFingerprint)
	}
	format := Format(data[5])
	tail := data[headerLen:]
	if want, got := binary.LittleEndian.Uint32(data[6:10]), crc32.ChecksumIEEE(tail); want != got {
		return nil, "", fmt.Errorf("%w: payload checksum %08x, header says %08x", ErrCorrupt, got, want)
	}
	fingerprint := ""
	payload := tail
	if version == snapshotVersionFingerprint {
		if len(tail) < 2 {
			return nil, "", fmt.Errorf("%w: truncated fingerprint section", ErrCorrupt)
		}
		n := int(binary.LittleEndian.Uint16(tail))
		if len(tail) < 2+n {
			return nil, "", fmt.Errorf("%w: fingerprint length %d exceeds snapshot", ErrCorrupt, n)
		}
		fingerprint = string(tail[2 : 2+n])
		payload = tail[2+n:]
	}
	lib := precompile.NewLibrary()
	switch format {
	case FormatGob:
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(lib); err != nil {
			return nil, "", fmt.Errorf("%w: gob payload: %v", ErrCorrupt, err)
		}
	case FormatJSON:
		if err := json.Unmarshal(payload, lib); err != nil {
			return nil, "", fmt.Errorf("%w: json payload: %v", ErrCorrupt, err)
		}
	default:
		return nil, "", fmt.Errorf("%w: unknown format byte %d", ErrCorrupt, byte(format))
	}
	for key, e := range lib.Entries {
		if e == nil || e.Pulse == nil {
			return nil, "", fmt.Errorf("%w: entry %q has no pulse", ErrCorrupt, key)
		}
		if e.Key != key {
			// The map key is the content address; an entry filed under a
			// different key would be silently re-keyed by Store.AddLibrary
			// and served for the wrong group.
			return nil, "", fmt.Errorf("%w: entry filed under %q carries key %q", ErrCorrupt, key, e.Key)
		}
		if err := e.Pulse.Validate(); err != nil {
			return nil, "", fmt.Errorf("%w: entry %q: %v", ErrCorrupt, key, err)
		}
	}
	return lib, fingerprint, nil
}

// SaveSnapshot atomically writes the store's current entries to path with
// no fingerprint (legacy layout). Per-entry hit counts are stamped into
// the saved entries so a reload resumes the most-requested-first ordering.
func (s *Store) SaveSnapshot(path string, format Format) error {
	return SaveLibrary(s.SnapshotWithHits(), path, format)
}

// SaveSnapshotFingerprint atomically writes the store's current entries to
// path, stamped with the device+calibration fingerprint they were trained
// under and with per-entry hit counts.
func (s *Store) SaveSnapshotFingerprint(path string, format Format, fingerprint string) error {
	return SaveLibraryFingerprint(s.SnapshotWithHits(), path, format, fingerprint)
}

// SaveLibrary atomically writes a library snapshot to path.
func SaveLibrary(lib *precompile.Library, path string, format Format) error {
	return SaveLibraryFingerprint(lib, path, format, "")
}

// SaveLibraryFingerprint atomically writes a fingerprinted library
// snapshot to path.
func SaveLibraryFingerprint(lib *precompile.Library, path string, format Format, fingerprint string) error {
	data, err := EncodeSnapshotFingerprint(lib, format, fingerprint)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("libstore: snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("libstore: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("libstore: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("libstore: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("libstore: snapshot rename: %w", err)
	}
	return nil
}

// LoadSnapshot reads a snapshot file into a fresh library.
func LoadSnapshot(path string) (*precompile.Library, error) {
	lib, _, err := LoadSnapshotFingerprint(path)
	return lib, err
}

// LoadSnapshotFingerprint reads a snapshot file into a fresh library and
// returns the embedded fingerprint ("" for pre-fingerprint files).
func LoadSnapshotFingerprint(path string) (*precompile.Library, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	lib, fp, err := DecodeSnapshotFingerprint(data)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	return lib, fp, nil
}

// LoadInto reads a snapshot file and merges its entries into the store
// without any fingerprint check. It returns the number of entries loaded.
func (s *Store) LoadInto(path string) (int, error) {
	n, _, err := s.LoadIntoChecked(path, "", false)
	return n, err
}

// LoadIntoChecked reads a snapshot file and merges its entries into the
// store after verifying its device+calibration fingerprint against want.
// A mismatch returns ErrFingerprint (wrapped) and loads nothing — the
// snapshot was trained for different physics and its pulses would silently
// drive wrong unitaries — unless force is set, which loads anyway (the
// operator's -lib-force escape hatch). Legacy snapshots without a
// fingerprint, or an empty want, skip the check. The snapshot's own
// fingerprint is returned either way so callers can log it.
func (s *Store) LoadIntoChecked(path, want string, force bool) (int, string, error) {
	lib, got, err := LoadSnapshotFingerprint(path)
	if err != nil {
		return 0, "", err
	}
	if want != "" && got != "" && got != want && !force {
		return 0, got, fmt.Errorf("%w: %s was trained under %s, this server runs %s",
			ErrFingerprint, path, got, want)
	}
	s.AddLibrary(lib)
	return len(lib.Entries), got, nil
}
