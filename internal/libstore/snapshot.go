package libstore

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"accqoc/internal/precompile"
)

// Snapshot file layout:
//
//	4 bytes  magic "AQLS"
//	1 byte   snapshot version
//	1 byte   payload format (FormatGob | FormatJSON)
//	4 bytes  IEEE CRC-32 of the payload, little-endian
//	payload  the encoded precompile.Library
//
// The checksum matters: random corruption inside gob-encoded float64
// amplitudes can decode into a structurally valid library with silently
// wrong pulses, so structural validation alone cannot catch it.
//
// Saves are atomic: the payload is written to a temp file in the target
// directory, synced, and renamed over the destination, so a crash mid-save
// never corrupts an existing snapshot.

// Format selects the snapshot payload encoding.
type Format byte

const (
	// FormatGob is the compact binary encoding (via pulse.GobEncode's
	// versioned layout). Preferred for large libraries.
	FormatGob Format = 1
	// FormatJSON is the human-inspectable encoding, interchangeable with
	// precompile.Library.Save output (payload only, without the header).
	FormatJSON Format = 2
)

func (f Format) String() string {
	switch f {
	case FormatGob:
		return "gob"
	case FormatJSON:
		return "json"
	default:
		return fmt.Sprintf("format(%d)", byte(f))
	}
}

var snapshotMagic = [4]byte{'A', 'Q', 'L', 'S'}

const snapshotVersion = 1

// ErrCorrupt tags snapshot decode failures; errors.Is(err, ErrCorrupt)
// distinguishes a damaged file from an absent one.
var ErrCorrupt = errors.New("libstore: corrupt snapshot")

// headerLen is magic + version + format + crc32.
const headerLen = 4 + 1 + 1 + 4

// EncodeSnapshot renders a library in the versioned snapshot layout.
func EncodeSnapshot(lib *precompile.Library, format Format) ([]byte, error) {
	var payload bytes.Buffer
	switch format {
	case FormatGob:
		if err := gob.NewEncoder(&payload).Encode(lib); err != nil {
			return nil, fmt.Errorf("libstore: gob encode: %w", err)
		}
	case FormatJSON:
		data, err := json.Marshal(lib)
		if err != nil {
			return nil, fmt.Errorf("libstore: json encode: %w", err)
		}
		payload.Write(data)
	default:
		return nil, fmt.Errorf("libstore: unknown snapshot format %d", format)
	}
	out := make([]byte, headerLen, headerLen+payload.Len())
	copy(out, snapshotMagic[:])
	out[4] = snapshotVersion
	out[5] = byte(format)
	binary.LittleEndian.PutUint32(out[6:10], crc32.ChecksumIEEE(payload.Bytes()))
	return append(out, payload.Bytes()...), nil
}

// DecodeSnapshot parses a snapshot produced by EncodeSnapshot, validating
// the header and every entry's pulse.
func DecodeSnapshot(data []byte) (*precompile.Library, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes, want ≥ %d", ErrCorrupt, len(data), headerLen)
	}
	if !bytes.Equal(data[:4], snapshotMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	if v := data[4]; v != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrCorrupt, v, snapshotVersion)
	}
	format := Format(data[5])
	payload := data[headerLen:]
	if want, got := binary.LittleEndian.Uint32(data[6:10]), crc32.ChecksumIEEE(payload); want != got {
		return nil, fmt.Errorf("%w: payload checksum %08x, header says %08x", ErrCorrupt, got, want)
	}
	lib := precompile.NewLibrary()
	switch format {
	case FormatGob:
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(lib); err != nil {
			return nil, fmt.Errorf("%w: gob payload: %v", ErrCorrupt, err)
		}
	case FormatJSON:
		if err := json.Unmarshal(payload, lib); err != nil {
			return nil, fmt.Errorf("%w: json payload: %v", ErrCorrupt, err)
		}
	default:
		return nil, fmt.Errorf("%w: unknown format byte %d", ErrCorrupt, byte(format))
	}
	for key, e := range lib.Entries {
		if e == nil || e.Pulse == nil {
			return nil, fmt.Errorf("%w: entry %q has no pulse", ErrCorrupt, key)
		}
		if e.Key != key {
			// The map key is the content address; an entry filed under a
			// different key would be silently re-keyed by Store.AddLibrary
			// and served for the wrong group.
			return nil, fmt.Errorf("%w: entry filed under %q carries key %q", ErrCorrupt, key, e.Key)
		}
		if err := e.Pulse.Validate(); err != nil {
			return nil, fmt.Errorf("%w: entry %q: %v", ErrCorrupt, key, err)
		}
	}
	return lib, nil
}

// SaveSnapshot atomically writes the store's current entries to path.
func (s *Store) SaveSnapshot(path string, format Format) error {
	return SaveLibrary(s.Snapshot(), path, format)
}

// SaveLibrary atomically writes a library snapshot to path.
func SaveLibrary(lib *precompile.Library, path string, format Format) error {
	data, err := EncodeSnapshot(lib, format)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("libstore: snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("libstore: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("libstore: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("libstore: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("libstore: snapshot rename: %w", err)
	}
	return nil
}

// LoadSnapshot reads a snapshot file into a fresh library.
func LoadSnapshot(path string) (*precompile.Library, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lib, err := DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return lib, nil
}

// LoadInto reads a snapshot file and merges its entries into the store.
// It returns the number of entries loaded.
func (s *Store) LoadInto(path string) (int, error) {
	lib, err := LoadSnapshot(path)
	if err != nil {
		return 0, err
	}
	s.AddLibrary(lib)
	return len(lib.Entries), nil
}
