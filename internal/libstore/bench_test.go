package libstore

import (
	"fmt"
	"path/filepath"
	"testing"

	"accqoc/internal/precompile"
)

// benchStore builds a store with n synthetic entries.
func benchStore(n int) *Store {
	s := New(Options{})
	for i := 0; i < n; i++ {
		s.Put(synthEntry(i))
	}
	return s
}

func BenchmarkStoreGetHit(b *testing.B) {
	s := benchStore(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(fmt.Sprintf("key-%04d", i%1024)); !ok {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkStoreGetMiss(b *testing.B) {
	s := benchStore(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(fmt.Sprintf("absent-%04d", i%1024)); ok {
			b.Fatal("unexpected hit")
		}
	}
}

func BenchmarkStoreGetHitParallel(b *testing.B) {
	s := benchStore(1024)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, ok := s.Get(keys[i%1024]); !ok {
				b.Fatal("unexpected miss")
			}
			i++
		}
	})
}

func BenchmarkGetOrTrainWarm(b *testing.B) {
	s := benchStore(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("key-%04d", i%1024)
		if _, _, err := s.GetOrTrain(key, func() (*precompile.Entry, error) {
			b.Fatal("warm path trained")
			return nil, nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkSnapshotSave(b *testing.B, format Format, entries int) {
	lib := benchStore(entries).Snapshot()
	path := filepath.Join(b.TempDir(), "bench.snap")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SaveLibrary(lib, path, format); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkSnapshotLoad(b *testing.B, format Format, entries int) {
	path := filepath.Join(b.TempDir(), "bench.snap")
	if err := SaveLibrary(benchStore(entries).Snapshot(), path, format); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadSnapshot(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotSaveGob(b *testing.B)  { benchmarkSnapshotSave(b, FormatGob, 512) }
func BenchmarkSnapshotSaveJSON(b *testing.B) { benchmarkSnapshotSave(b, FormatJSON, 512) }
func BenchmarkSnapshotLoadGob(b *testing.B)  { benchmarkSnapshotLoad(b, FormatGob, 512) }
func BenchmarkSnapshotLoadJSON(b *testing.B) { benchmarkSnapshotLoad(b, FormatJSON, 512) }
