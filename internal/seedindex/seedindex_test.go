package seedindex

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"accqoc/internal/cmat"
	"accqoc/internal/grape"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/precompile"
	"accqoc/internal/pulse"
	"accqoc/internal/similarity"
)

// rampPulse builds a deterministic non-trivial waveform matched to the
// system's control channels.
func rampPulse(t *testing.T, numQubits int, scale float64) *pulse.Pulse {
	t.Helper()
	sys, err := hamiltonian.ForQubits(numQubits, hamiltonian.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := pulse.New(sys.ControlNames, 8, 2.5)
	for c := range p.Amps {
		for s := range p.Amps[c] {
			p.Amps[c][s] = scale * 0.01 * float64((c+1)*(s+1))
		}
	}
	return p
}

func entryFor(t *testing.T, key string, numQubits int, scale float64) *precompile.Entry {
	t.Helper()
	p := rampPulse(t, numQubits, scale)
	return &precompile.Entry{Key: key, NumQubits: numQubits, Pulse: p, LatencyNs: p.Duration()}
}

// achieved propagates an entry's pulse the way Insert does, for building
// query unitaries near a known index entry.
func achieved(t *testing.T, e *precompile.Entry) *cmat.Matrix {
	t.Helper()
	sys, err := hamiltonian.ForQubits(e.NumQubits, hamiltonian.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return grape.Propagate(sys, e.Pulse)
}

func TestNearestReturnsClosestWithinThreshold(t *testing.T) {
	x := New(similarity.TraceFid, hamiltonian.Config{})
	near := entryFor(t, "near", 1, 1)
	far := entryFor(t, "far", 1, 40)
	x.Insert(near)
	x.Insert(far)

	q := achieved(t, near)
	seed, ok := x.Nearest(q, 1)
	if !ok {
		t.Fatal("no seed for a unitary identical to an indexed entry")
	}
	if seed.Key != "near" {
		t.Fatalf("seed = %q, want \"near\"", seed.Key)
	}
	if seed.Distance > 1e-9 {
		t.Fatalf("distance to itself = %v", seed.Distance)
	}
	if seed.LatencyNs != near.LatencyNs {
		t.Fatalf("seed latency %v, want %v", seed.LatencyNs, near.LatencyNs)
	}
}

func TestNearestGatesOnWarmThreshold(t *testing.T) {
	x := New(similarity.TraceFid, hamiltonian.Config{})
	x.Insert(entryFor(t, "a", 1, 1))

	// A Pauli-X is nearly maximally distant from the near-identity
	// achieved unitary of the small ramp pulse: distance ≈ 1 > 0.3.
	q := cmat.FromRows([][]complex128{{0, 1}, {1, 0}})
	if _, ok := x.Nearest(q, 1); ok {
		t.Fatal("dissimilar unitary admitted as seed")
	}
	st := x.Stats()
	if st.Lookups != 1 || st.Seeded != 0 {
		t.Fatalf("stats = %+v, want 1 lookup / 0 seeded", st)
	}
}

// TestNearestL1UsesDimensionScaledThreshold pins the scale-correctness the
// fixed 0.5 cut-off got wrong: an L1 distance of ~1 between 4×4 unitaries
// is well inside WarmThreshold(L1, 4) = 2 and must be admitted.
func TestNearestL1UsesDimensionScaledThreshold(t *testing.T) {
	x := New(similarity.L1, hamiltonian.Config{})
	e := entryFor(t, "cx-ish", 2, 1)
	x.Insert(e)

	base := achieved(t, e)
	q := perturb(t, base, similarity.L1, 0.5, similarity.WarmThreshold(similarity.L1, 4))
	seed, ok := x.Nearest(q, 2)
	if !ok {
		t.Fatal("L1-similar 2Q unitary rejected: threshold not dimension-scaled")
	}
	if seed.Key != "cx-ish" {
		t.Fatalf("seed = %q", seed.Key)
	}
}

// perturb right-multiplies base by exp(-iθZ⊗I/2)-style phase rotations
// until the distance lands strictly inside (lo, hi].
func perturb(t *testing.T, base *cmat.Matrix, fn similarity.Func, lo, hi float64) *cmat.Matrix {
	t.Helper()
	for theta := 0.05; theta < 3.2; theta += 0.05 {
		rot := cmat.FromRows([][]complex128{
			{complex(math.Cos(theta/2), -math.Sin(theta/2)), 0, 0, 0},
			{0, complex(math.Cos(theta/2), -math.Sin(theta/2)), 0, 0},
			{0, 0, complex(math.Cos(theta/2), math.Sin(theta/2)), 0},
			{0, 0, 0, complex(math.Cos(theta/2), math.Sin(theta/2))},
		})
		q := cmat.Mul(base, rot)
		d, err := similarity.Distance(fn, q, base)
		if err != nil {
			t.Fatal(err)
		}
		if d > lo && d <= hi {
			return q
		}
	}
	t.Fatalf("could not construct a unitary with %s distance in (%v, %v]", fn, lo, hi)
	return nil
}

// TestLookupsNeverPropagate is the acceptance invariant: the propagation
// counter moves only on Insert, never on Nearest.
func TestLookupsNeverPropagate(t *testing.T) {
	x := New(similarity.TraceFid, hamiltonian.Config{})
	for i := 0; i < 5; i++ {
		x.Insert(entryFor(t, fmt.Sprintf("e%d", i), 1, float64(i+1)))
	}
	after := x.Stats().Propagations
	if after != 5 {
		t.Fatalf("inserts propagated %d times, want 5 (once each)", after)
	}
	q := achieved(t, entryFor(t, "q", 1, 2))
	for i := 0; i < 100; i++ {
		x.Nearest(q, 1)
	}
	if got := x.Stats().Propagations; got != after {
		t.Fatalf("lookups propagated: %d → %d", after, got)
	}
}

func TestInsertWithUnitarySkipsPropagation(t *testing.T) {
	x := New(similarity.TraceFid, hamiltonian.Config{})
	e := entryFor(t, "known", 1, 1)
	x.InsertWithUnitary(e, achieved(t, e))
	if st := x.Stats(); st.Propagations != 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 0 propagations / 1 entry", st)
	}
	if _, ok := x.Nearest(achieved(t, e), 1); !ok {
		t.Fatal("entry inserted with known unitary not found")
	}
	// The hook-driven Insert that follows a pre-index (same key, same
	// pulse) must not re-propagate...
	x.Insert(e)
	if st := x.Stats(); st.Propagations != 0 {
		t.Fatalf("hook re-insert propagated: %+v", st)
	}
	// ...but a replaced pulse under the same key must.
	e2 := entryFor(t, "known", 1, 7)
	x.Insert(e2)
	if st := x.Stats(); st.Propagations != 1 || st.Entries != 1 {
		t.Fatalf("replacement stats = %+v, want 1 propagation / 1 entry", st)
	}
}

func TestRemoveDropsEntry(t *testing.T) {
	x := New(similarity.TraceFid, hamiltonian.Config{})
	e := entryFor(t, "gone", 1, 1)
	x.Insert(e)
	x.Remove("gone")
	x.Remove("never-there") // no-op
	if x.Len() != 0 {
		t.Fatalf("Len = %d after removal", x.Len())
	}
	if _, ok := x.Nearest(achieved(t, e), 1); ok {
		t.Fatal("removed entry still seeding")
	}
}

func TestSizeClassesAreIsolated(t *testing.T) {
	x := New(similarity.TraceFid, hamiltonian.Config{})
	x.Insert(entryFor(t, "one-qubit", 1, 1))
	q := achieved(t, entryFor(t, "probe", 2, 1))
	if _, ok := x.Nearest(q, 2); ok {
		t.Fatal("1Q entry seeded a 2Q query")
	}
}

// TestConcurrentInsertLookupRemove exercises the hook-driven mutation
// pattern under the race detector.
func TestConcurrentInsertLookupRemove(t *testing.T) {
	x := New(similarity.TraceFid, hamiltonian.Config{})
	q := achieved(t, entryFor(t, "probe", 1, 3))
	// Pre-build entries: testing.T helpers must not run off the test
	// goroutine.
	entries := make([]*precompile.Entry, 8)
	for i := range entries {
		entries[i] = entryFor(t, fmt.Sprintf("k%d", i), 1, float64(i%5+1))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (g*13 + i) % len(entries)
				switch i % 3 {
				case 0:
					x.EntryAdded(entries[k])
				case 1:
					x.Nearest(q, 1)
				case 2:
					x.EntryRemoved(entries[k].Key)
				}
			}
		}(g)
	}
	wg.Wait()
}
