// Package seedindex maintains the warm-start seed index of the serving
// path: a per-size nearest-neighbor structure over the covered entries of
// a pulse library. The paper's acceleration (§V-B/C, Figs. 8/13) comes
// from starting GRAPE at a similar group's pulse instead of a random
// waveform; the index makes that lookup cheap enough for the request path
// by caching each entry's achieved unitary once — computed by a single
// propagation at insert (or snapshot load) and never re-propagated — so a
// nearest-neighbor query costs only similarity distances over cached
// matrices, zero matrix exponentials.
//
// Admission uses similarity.WarmThreshold(fn, dim): the five similarity
// functions live on different scales (an entry-wise L1 distance between
// 4×4 unitaries is naturally an order of magnitude larger than a
// fidelity-style distance in [0,1]), so a fixed cut-off silently disables
// seeding for some of them.
//
// The index stays coherent with a libstore.Store through the store's
// mutation hook: Index implements the store's Hook interface (EntryAdded /
// EntryRemoved), so inserts and LRU evictions are mirrored without a
// second source of truth.
package seedindex

import (
	"sync"
	"sync/atomic"

	"accqoc/internal/cmat"
	"accqoc/internal/grape"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/precompile"
	"accqoc/internal/pulse"
	"accqoc/internal/similarity"
)

// Seed is a nearest-neighbor result: a covered pulse admissible as a
// GRAPE warm start for the queried unitary.
type Seed struct {
	// Key is the library key of the seeding entry.
	Key string
	// Pulse is the seeding waveform (immutable; callers must not mutate).
	Pulse *pulse.Pulse
	// LatencyNs is the seeding entry's latency — the binary-search hint.
	LatencyNs float64
	// Distance is the similarity distance to the queried unitary.
	Distance float64
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Entries int `json:"entries"`
	// Lookups counts Nearest queries.
	Lookups int64 `json:"lookups"`
	// Seeded counts lookups that admitted a seed under the threshold.
	Seeded int64 `json:"seeded"`
	// Propagations counts insert-time unitary propagations — the only
	// place the index pays for matrix exponentials. Lookups never add to
	// this.
	Propagations int64 `json:"propagations"`
}

// indexed is one covered entry with its cached achieved unitary.
type indexed struct {
	key       string
	numQubits int
	pulse     *pulse.Pulse
	latencyNs float64
	unitary   *cmat.Matrix
}

// Index is a per-size seed index. All methods are safe for concurrent
// use.
type Index struct {
	fn  similarity.Func
	ham hamiltonian.Config

	mu      sync.RWMutex
	bySize  map[int]map[string]*indexed
	sizeOf  map[string]int
	systems map[int]*hamiltonian.System

	// parent is the cross-epoch seeding hook: the previous calibration
	// epoch's index. While a recalibration roll is in flight, Nearest
	// falls through to the parent, so cache misses in the fresh epoch
	// warm-start from the old epoch's pulses — near-perfect seeds for a
	// slightly drifted Hamiltonian. Cleared when the old epoch retires.
	parent atomic.Pointer[Index]

	// observer, when installed via SetObserver, sees every Nearest outcome
	// (candidate distance + admission verdict) — the observability tap for
	// the seed-distance histogram.
	observer atomic.Pointer[func(distance float64, admitted bool)]

	lookups, seeded, propagations atomic.Int64
}

// New returns an empty index using the given similarity function (empty
// selects TraceFid, the paper's best) and physical model.
func New(fn similarity.Func, ham hamiltonian.Config) *Index {
	if fn == "" {
		fn = similarity.TraceFid
	}
	return &Index{
		fn:      fn,
		ham:     ham,
		bySize:  map[int]map[string]*indexed{},
		sizeOf:  map[string]int{},
		systems: map[int]*hamiltonian.System{},
	}
}

// Fn returns the similarity function the index ranks by.
func (x *Index) Fn() similarity.Func { return x.fn }

// system returns the cached Hamiltonian for a group size, building it on
// first use.
func (x *Index) system(numQubits int) (*hamiltonian.System, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if sys, ok := x.systems[numQubits]; ok {
		return sys, nil
	}
	sys, err := hamiltonian.ForQubits(numQubits, x.ham)
	if err != nil {
		return nil, err
	}
	x.systems[numQubits] = sys
	return sys, nil
}

// Insert indexes a library entry, propagating its pulse once to cache the
// achieved unitary. Entries whose size has no physical model are ignored.
// A key already indexed with the identical pulse is a no-op, so callers
// holding the unitary can pre-index via InsertWithUnitary and let a
// subsequent hook-driven Insert skip the propagation entirely (entries
// are immutable by convention, so pointer equality identifies the pulse).
func (x *Index) Insert(e *precompile.Entry) {
	if e == nil || e.Pulse == nil {
		return
	}
	if x.indexed(e.Key, e.Pulse) {
		return
	}
	sys, err := x.system(e.NumQubits)
	if err != nil {
		return
	}
	// The one propagation this entry will ever cost the index.
	u := grape.Propagate(sys, e.Pulse)
	x.propagations.Add(1)
	x.insertUnitary(e, u)
}

// InsertWithUnitary indexes an entry whose unitary the caller already
// knows (e.g. the training target it just converged to), skipping the
// propagation entirely.
func (x *Index) InsertWithUnitary(e *precompile.Entry, u *cmat.Matrix) {
	if e == nil || e.Pulse == nil || u == nil {
		return
	}
	x.insertUnitary(e, u)
}

func (x *Index) insertUnitary(e *precompile.Entry, u *cmat.Matrix) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if old, ok := x.sizeOf[e.Key]; ok && old != e.NumQubits {
		delete(x.bySize[old], e.Key)
	}
	class := x.bySize[e.NumQubits]
	if class == nil {
		class = map[string]*indexed{}
		x.bySize[e.NumQubits] = class
	}
	class[e.Key] = &indexed{
		key:       e.Key,
		numQubits: e.NumQubits,
		pulse:     e.Pulse,
		latencyNs: e.LatencyNs,
		unitary:   u,
	}
	x.sizeOf[e.Key] = e.NumQubits
}

// indexed reports whether key is present with this exact pulse.
func (x *Index) indexed(key string, p *pulse.Pulse) bool {
	x.mu.RLock()
	defer x.mu.RUnlock()
	sz, ok := x.sizeOf[key]
	if !ok {
		return false
	}
	ent := x.bySize[sz][key]
	return ent != nil && ent.pulse == p
}

// Remove drops an entry (e.g. after a store eviction). Unknown keys are
// a no-op.
func (x *Index) Remove(key string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	size, ok := x.sizeOf[key]
	if !ok {
		return
	}
	delete(x.bySize[size], key)
	delete(x.sizeOf, key)
}

// AddLibrary indexes every entry of a library (one propagation each) —
// the snapshot-load path.
func (x *Index) AddLibrary(lib *precompile.Library) {
	if lib == nil {
		return
	}
	for _, e := range lib.Entries {
		x.Insert(e)
	}
}

// EntryAdded satisfies libstore's mutation Hook: new or replaced store
// entries are indexed. It runs under the store's shard lock, so it must
// not call back into the store (it doesn't).
func (x *Index) EntryAdded(e *precompile.Entry) { x.Insert(e) }

// EntryRemoved satisfies libstore's mutation Hook: evicted entries leave
// the index.
func (x *Index) EntryRemoved(key string) { x.Remove(key) }

// SetParent installs a previous epoch's index as the cross-epoch seeding
// fallback (nil clears it). The parent chain must be acyclic; registries
// keep it at depth one by clearing a retired epoch's link.
func (x *Index) SetParent(p *Index) { x.parent.Store(p) }

// Parent returns the current cross-epoch fallback index, nil when none.
func (x *Index) Parent() *Index { return x.parent.Load() }

// Unitary returns the cached achieved unitary for an indexed key. This is
// how a calibration roll recovers each covered entry's training target
// without re-propagating its pulse: the index already paid that
// propagation (or inherited the target) at insert.
func (x *Index) Unitary(key string) (*cmat.Matrix, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	sz, ok := x.sizeOf[key]
	if !ok {
		return nil, false
	}
	ent := x.bySize[sz][key]
	if ent == nil {
		return nil, false
	}
	return ent.unitary, true
}

// scanBest returns the closest entry of the given size across this index
// and its parent chain, without admission or counters.
func (x *Index) scanBest(u *cmat.Matrix, numQubits int) (*indexed, float64) {
	var best *indexed
	bestDist := 0.0
	x.mu.RLock()
	for _, cand := range x.bySize[numQubits] {
		d, err := similarity.Distance(x.fn, u, cand.unitary)
		if err != nil {
			continue
		}
		if best == nil || d < bestDist || (d == bestDist && cand.key < best.key) {
			best, bestDist = cand, d
		}
	}
	x.mu.RUnlock()
	if p := x.parent.Load(); p != nil {
		// A parent (previous-epoch) entry wins only on strictly smaller
		// distance: at a tie the local entry was trained under the
		// current physics and is the better seed.
		if pb, pd := p.scanBest(u, numQubits); pb != nil && (best == nil || pd < bestDist) {
			best, bestDist = pb, pd
		}
	}
	return best, bestDist
}

// Nearest returns the most similar covered entry of the given size whose
// distance to u is within similarity.WarmThreshold(fn, dim) — the
// function- and dimension-correct admission scale. The scan computes only
// similarity distances over cached unitaries; it never propagates a
// pulse. Ties break on the lexically smallest key so results are
// deterministic. When a parent index is linked (a retiring calibration
// epoch), its entries compete too, so fresh-epoch misses seed from
// old-epoch pulses until the roll completes.
func (x *Index) Nearest(u *cmat.Matrix, numQubits int) (Seed, bool) {
	x.lookups.Add(1)
	best, bestDist := x.scanBest(u, numQubits)
	if best == nil || bestDist > similarity.WarmThreshold(x.fn, u.Rows) {
		if obs := x.observer.Load(); obs != nil && best != nil {
			(*obs)(bestDist, false)
		}
		return Seed{}, false
	}
	x.seeded.Add(1)
	if obs := x.observer.Load(); obs != nil {
		(*obs)(bestDist, true)
	}
	return Seed{Key: best.key, Pulse: best.pulse, LatencyNs: best.latencyNs, Distance: bestDist}, true
}

// SetObserver installs a callback seeing every Nearest outcome that found
// a candidate: its similarity distance and whether the admission
// threshold accepted it. Nil clears it. The callback must be fast and
// allocation-free (it runs on the request path).
func (x *Index) SetObserver(fn func(distance float64, admitted bool)) {
	if fn == nil {
		x.observer.Store(nil)
		return
	}
	x.observer.Store(&fn)
}

// Len returns the indexed entry count.
func (x *Index) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.sizeOf)
}

// Stats returns a counter snapshot.
func (x *Index) Stats() Stats {
	return Stats{
		Entries:      x.Len(),
		Lookups:      x.lookups.Load(),
		Seeded:       x.seeded.Load(),
		Propagations: x.propagations.Load(),
	}
}
