package seedindex

import (
	"testing"

	"accqoc/internal/hamiltonian"
	"accqoc/internal/similarity"
)

// TestUnitaryAccessor pins the cross-epoch recompilation contract: the
// index hands back each entry's cached achieved unitary without a new
// propagation, so a calibration roll can recover training targets for
// free.
func TestUnitaryAccessor(t *testing.T) {
	x := New(similarity.TraceFid, hamiltonian.Config{})
	e := entryFor(t, "a", 1, 1)
	x.Insert(e)
	props := x.Stats().Propagations

	u, ok := x.Unitary("a")
	if !ok || u == nil {
		t.Fatal("indexed entry has no cached unitary")
	}
	if _, ok := x.Unitary("absent"); ok {
		t.Fatal("unknown key returned a unitary")
	}
	if got := x.Stats().Propagations; got != props {
		t.Fatalf("Unitary propagated (%d → %d)", props, got)
	}
	// The cached unitary matches what Insert propagated.
	want := achieved(t, e)
	for i := 0; i < u.Rows; i++ {
		for j := 0; j < u.Cols; j++ {
			if u.At(i, j) != want.At(i, j) {
				t.Fatal("cached unitary differs from the propagated one")
			}
		}
	}
}

// TestParentChainSeeding pins the cross-epoch seeding hook: a fresh
// epoch's empty index falls through to its parent (the previous epoch),
// a closer local entry wins once the roll re-covers it, and cutting the
// link (epoch retirement) stops the fallback.
func TestParentChainSeeding(t *testing.T) {
	old := New(similarity.TraceFid, hamiltonian.Config{})
	oldEntry := entryFor(t, "old", 1, 1)
	old.Insert(oldEntry)

	fresh := New(similarity.TraceFid, hamiltonian.Config{})
	fresh.SetParent(old)
	if fresh.Parent() != old {
		t.Fatal("parent not linked")
	}

	q := achieved(t, oldEntry)
	seed, ok := fresh.Nearest(q, 1)
	if !ok || seed.Key != "old" {
		t.Fatalf("fresh epoch did not seed from parent: ok=%v seed=%+v", ok, seed)
	}
	// Lookup counted on the queried index, not the parent.
	if fresh.Stats().Lookups != 1 || fresh.Stats().Seeded != 1 {
		t.Fatalf("fresh stats %+v", fresh.Stats())
	}
	if old.Stats().Lookups != 0 {
		t.Fatalf("parent lookup counter leaked: %+v", old.Stats())
	}

	// Once the same key is re-trained into the fresh epoch (distance 0 to
	// the query), the local entry wins over the parent's.
	reEntry := entryFor(t, "recompiled", 1, 1.0001)
	fresh.InsertWithUnitary(reEntry, q)
	seed, ok = fresh.Nearest(q, 1)
	if !ok || seed.Key != "recompiled" {
		t.Fatalf("local entry did not win: %+v", seed)
	}

	// Retirement cuts the link: only local entries remain reachable.
	fresh.SetParent(nil)
	empty := New(similarity.TraceFid, hamiltonian.Config{})
	empty.SetParent(nil)
	if _, ok := empty.Nearest(q, 1); ok {
		t.Fatal("unparented empty index produced a seed")
	}
}
