package experiments

// The group-size frontier: AccQOC's central tradeoff is that larger gate
// groups shorten the pulse schedule (fewer, jointly-optimized slots) at
// the cost of steeply more GRAPE work per group (dim-8 propagators, more
// segments, longer duration searches). The paper stops at 2-qubit groups;
// with the opt-in 3Q policies the tradeoff is finally measurable. Frontier
// compiles the same workloads under the best 2b policy and the 3b policies
// with identical training budgets and reports both axes: makespan
// (latency) and total GRAPE iterations / wall time (training cost).
// Recorded medians live in BENCH_3q.json and EXPERIMENTS.md.

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"accqoc"
	"accqoc/internal/grouping"
	"accqoc/internal/workload"
)

// FrontierCell is one (program, policy) point of the frontier.
type FrontierCell struct {
	Program            string
	Policy             string
	MaxQubits          int
	Groups             int
	UniqueGroups       int
	MakespanNs         float64
	GateLatencyNs      float64
	Reduction          float64
	TrainingIterations int
	TrainingMillis     float64
	// PerIterMicros is mean training wall time per GRAPE iteration — the
	// per-iteration cost axis the tiled GEMM attacks at dim 8.
	PerIterMicros float64
}

// frontierPrograms returns the evaluation workloads: two QFTs whose
// adjacent CX/CP chains merge readily into 3-qubit groups, plus a random
// program as a mixed-structure control.
func (s Scale) frontierPrograms() ([]*workload.Program, error) {
	if s.FrontierCustom != nil {
		return s.FrontierCustom, nil
	}
	rnd, err := workload.Random("rand_5q", 5, 24, 4100)
	if err != nil {
		return nil, err
	}
	return []*workload.Program{workload.QFT(3), workload.QFT(4), rnd}, nil
}

// Frontier compiles each workload under the strongest Table I policy
// (map2b4l) and the 3-qubit policies, cold library each time, identical
// GRAPE budgets, and reports makespan vs training cost per cell.
func Frontier(w io.Writer, sc Scale) ([]FrontierCell, error) {
	progs, err := sc.frontierPrograms()
	if err != nil {
		return nil, err
	}
	// Identical budget both arms; floor the target so dim-8 trainings
	// terminate in experiment time rather than physics-paper time.
	cfg := sc.precompileConfig()
	if cfg.Grape.TargetInfidelity < 1e-2 {
		cfg.Grape.TargetInfidelity = 1e-2
	}
	if cfg.Grape.MaxIterations > 400 {
		cfg.Grape.MaxIterations = 400
	}

	policies := []grouping.Policy{grouping.Map2b4l, grouping.Map3b2l, grouping.Map3b3l}
	var cells []FrontierCell
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "program\tpolicy\tgroups\tmakespan(ns)\treduction\tGRAPE iters\ttrain(ms)\tus/iter")
	for _, prog := range progs {
		for _, pol := range policies {
			comp := accqoc.New(accqoc.Options{
				Device:     DeviceFor(prog.Circuit),
				Policy:     pol,
				Precompile: cfg,
			})
			res, cerr := comp.Compile(prog.Circuit)
			if cerr != nil {
				return nil, fmt.Errorf("frontier %s/%s: %w", prog.Name, pol.Name, cerr)
			}
			cell := FrontierCell{
				Program:            prog.Name,
				Policy:             pol.Name,
				MaxQubits:          pol.MaxQubits,
				Groups:             res.TotalGroups,
				UniqueGroups:       res.UncoveredUnique,
				MakespanNs:         res.OverallLatencyNs,
				GateLatencyNs:      res.GateBasedLatencyNs,
				Reduction:          res.LatencyReduction,
				TrainingIterations: res.TrainingIterations,
				TrainingMillis:     float64(res.TrainingTime) / float64(time.Millisecond),
			}
			if cell.TrainingIterations > 0 {
				cell.PerIterMicros = float64(res.TrainingTime) / float64(time.Microsecond) / float64(cell.TrainingIterations)
			}
			cells = append(cells, cell)
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\t%.2fx\t%d\t%.0f\t%.1f\n",
				cell.Program, cell.Policy, cell.Groups, cell.MakespanNs,
				cell.Reduction, cell.TrainingIterations, cell.TrainingMillis, cell.PerIterMicros)
		}
	}
	tw.Flush()
	return cells, nil
}
