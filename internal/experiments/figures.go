package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"accqoc"
	"accqoc/internal/circuit"
	"accqoc/internal/crosstalk"
	"accqoc/internal/gate"
	"accqoc/internal/grouping"
	"accqoc/internal/mapping"
	"accqoc/internal/precompile"
	"accqoc/internal/similarity"
	"accqoc/internal/topology"
	"accqoc/internal/workload"
)

func gateName(s string) gate.Name { return gate.Name(s) }

// Fig5 prints the crosstalk error-rate comparison (paper Fig. 5): six
// Melbourne couplings, isolated vs crosstalk-inflated CX error.
func Fig5(w io.Writer) []crosstalk.FigureRow {
	rows := crosstalk.Figure5(topology.Melbourne(), 6)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "pair\tisolated error\twith nearby CX\tinflation")
	for _, r := range rows {
		fmt.Fprintf(tw, "CX(%d,%d)\t%.4f\t%.4f\t%.0f%%\n",
			r.Pair[0], r.Pair[1], r.Isolated, r.Crosstalk,
			100*(r.Crosstalk/r.Isolated-1))
	}
	tw.Flush()
	return rows
}

// Fig7Result is the coverage experiment outcome.
type Fig7Result struct {
	Programs []string
	Coverage []float64
	Average  float64
	Library  *precompile.Library
	// ProfiledUnique is the trained category size (the paper's is 133).
	ProfiledUnique int
}

// Fig7 runs static pre-compilation on the profiling subset and measures
// per-program coverage under map2b4l (paper Fig. 7, avg 89.7%).
func Fig7(w io.Writer, sc Scale) (*Fig7Result, error) {
	profile, targets, err := sc.profileSuite()
	if err != nil {
		return nil, err
	}
	comp := accqoc.New(accqoc.Options{
		Device:     topology.Melbourne(),
		Policy:     grouping.Map2b4l,
		Precompile: sc.precompileConfig(),
	})
	var progs []*circuit.Circuit
	for _, p := range profile {
		progs = append(progs, p.Circuit)
	}
	prof, err := comp.Profile(progs)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{Library: comp.Library(), ProfiledUnique: prof.UniqueGroups}
	var sum float64
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "program\tgroups\tcovered\tcoverage")
	for _, t := range targets {
		prep, perr := comp.Prepare(t.Circuit)
		if perr != nil {
			return nil, perr
		}
		rate, covered, total, cerr := precompile.Coverage(prep.Grouping, comp.Library())
		if cerr != nil {
			return nil, cerr
		}
		res.Programs = append(res.Programs, t.Name)
		res.Coverage = append(res.Coverage, rate)
		sum += rate
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f%%\n", t.Name, total, covered, 100*rate)
	}
	if len(res.Coverage) > 0 {
		res.Average = sum / float64(len(res.Coverage))
	}
	fmt.Fprintf(tw, "average\t\t\t%.1f%%\t(paper: 89.7%%)\n", 100*res.Average)
	tw.Flush()
	return res, nil
}

// Fig8Result is the similarity-function study outcome.
type Fig8Result struct {
	ColdIterations int
	Arms           []precompile.AccelArm
}

// Fig8 measures the average iteration reduction of MST-accelerated
// training under each of the five similarity functions, over a profiled
// group category (paper Fig. 8: fidelity1 best, inverse hurts).
func Fig8(w io.Writer, sc Scale) (*Fig8Result, error) {
	uniq, err := profiledCategory(sc)
	if err != nil {
		return nil, err
	}
	if len(uniq) > sc.AccelGroups {
		uniq = uniq[:sc.AccelGroups]
	}
	cfg := sc.precompileConfig()
	cold, arms, err := precompile.AccelerationStudy(uniq, similarity.All, cfg)
	if err != nil {
		return nil, err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "category: %d unique groups; cold baseline: %d iterations\n", len(uniq), cold.Iterations)
	fmt.Fprintln(tw, "similarity fn\titerations\treduction")
	for _, a := range arms {
		fmt.Fprintf(tw, "%s\t%d\t%.1f%%\n", a.Function, a.Iterations, 100*a.Reduction)
	}
	tw.Flush()
	return &Fig8Result{ColdIterations: cold.Iterations, Arms: arms}, nil
}

// profiledCategory prepares the deduplicated map2b4l category of the
// profiling subset, most frequent first.
func profiledCategory(sc Scale) ([]*grouping.UniqueGroup, error) {
	profile, _, err := sc.profileSuite()
	if err != nil {
		return nil, err
	}
	comp := accqoc.New(accqoc.Options{
		Device:     topology.Melbourne(),
		Policy:     grouping.Map2b4l,
		Precompile: sc.precompileConfig(),
	})
	var all []*grouping.Group
	for _, p := range profile {
		prep, perr := comp.Prepare(p.Circuit)
		if perr != nil {
			return nil, perr
		}
		all = append(all, prep.Grouping.Groups...)
	}
	return grouping.Deduplicate(all)
}

// Fig11Result is the crosstalk-mapping experiment outcome.
type Fig11Result struct {
	Programs  []string
	Before    []int
	After     []int
	Reduction float64 // average relative reduction
}

// Fig11 compares the crosstalk metric of programs mapped without and with
// the crosstalk-extended heuristic (paper Fig. 11, −17.6% average).
func Fig11(w io.Writer, sc Scale) (*Fig11Result, error) {
	n := sc.Fig11Programs
	if n == 0 {
		n = sc.ProfilePrograms
	}
	var profile []*workload.Program
	rng := rand.New(rand.NewSource(1144))
	for i := 0; i < n; i++ {
		span := sc.ProgramGates[1] - sc.ProgramGates[0]
		gates := sc.ProgramGates[0]
		if span > 0 {
			gates += rng.Intn(span)
		}
		p, perr := workload.Random(fmt.Sprintf("xtalk_%02d", i), 4+rng.Intn(11), gates, int64(5200+i))
		if perr != nil {
			return nil, perr
		}
		profile = append(profile, p)
	}
	dev := topology.Melbourne()
	res := &Fig11Result{}
	var sumRed float64
	counted := 0
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "program\tbaseline\tcrosstalk-aware\treduction")
	for _, p := range profile {
		work := p.Circuit.DecomposeCCX()
		base, merr := mapping.Map(work, dev, mapping.Options{CrosstalkAware: false})
		if merr != nil {
			return nil, merr
		}
		aware, merr := mapping.Map(work, dev, mapping.Options{CrosstalkAware: true})
		if merr != nil {
			return nil, merr
		}
		b := crosstalk.Metric(base.Mapped, dev)
		a := crosstalk.Metric(aware.Mapped, dev)
		res.Programs = append(res.Programs, p.Name)
		res.Before = append(res.Before, b)
		res.After = append(res.After, a)
		if b > 0 {
			sumRed += float64(b-a) / float64(b)
			counted++
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f%%\n", p.Name, b, a, pct(b, a))
	}
	if counted > 0 {
		res.Reduction = sumRed / float64(counted)
	}
	fmt.Fprintf(tw, "average\t\t\t%.1f%%\t(paper: 17.6%%)\n", 100*res.Reduction)
	tw.Flush()
	return res, nil
}

func pct(before, after int) float64 {
	if before == 0 {
		return 0
	}
	return 100 * float64(before-after) / float64(before)
}

// Fig14Point is one (gates, groups) sample of the group-growth curve.
type Fig14Point struct {
	Gates        int
	Occurrences  int
	UniqueGroups int
}

// Fig14 measures how the number of distinct 2b4l groups grows with program
// size (paper Fig. 14: strongly sub-linear).
func Fig14(w io.Writer, sc Scale) ([]Fig14Point, error) {
	comp := accqoc.New(accqoc.Options{
		Device:     topology.Melbourne(),
		Policy:     grouping.Map2b4l,
		Precompile: sc.precompileConfig(),
	})
	var pts []Fig14Point
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "gates\tgroup occurrences\tunique groups")
	for i, gates := range sc.Fig14Gates {
		p, err := workload.Random(fmt.Sprintf("growth_%d", gates), 10, gates, int64(9000+i))
		if err != nil {
			return nil, err
		}
		prep, err := comp.Prepare(p.Circuit)
		if err != nil {
			return nil, err
		}
		uniq, err := grouping.Deduplicate(prep.Grouping.Groups)
		if err != nil {
			return nil, err
		}
		pt := Fig14Point{Gates: gates, Occurrences: len(prep.Grouping.Groups), UniqueGroups: len(uniq)}
		pts = append(pts, pt)
		fmt.Fprintf(tw, "%d\t%d\t%d\n", pt.Gates, pt.Occurrences, pt.UniqueGroups)
	}
	tw.Flush()
	return pts, nil
}

// Fig15Row is one program of the AccQOC vs brute-force comparison.
type Fig15Row struct {
	Program             string
	GateBasedNs         float64
	AccQOCNs            float64
	BruteNs             float64
	AccQOCReduction     float64
	BruteReduction      float64
	AccQOCCompileTime   time.Duration
	BruteCompileTime    time.Duration
	CompileTimeSpeedup  float64
	AccQOCIterations    int
	BruteIterations     int
	IterationSpeedupAlt float64
}

// Fig15 compares AccQOC (pre-compiled library + MST-accelerated dynamic
// compilation) against brute-force QOC (largest trainable groups, cold) on
// latency reduction and compile time (paper Fig. 15: 2.43× vs 3.01×
// latency, 9.88× compile-time reduction).
func Fig15(w io.Writer, sc Scale) ([]Fig15Row, error) {
	// Profile a library first (its cost is the static one-time cost).
	profile, _, err := sc.profileSuite()
	if err != nil {
		return nil, err
	}
	comp := accqoc.New(accqoc.Options{
		Device:     topology.Melbourne(),
		Policy:     grouping.Map2b4l,
		Precompile: sc.precompileConfig(),
	})
	var progs []*circuit.Circuit
	for _, p := range profile {
		progs = append(progs, p.Circuit)
	}
	if _, err := comp.Profile(progs); err != nil {
		return nil, err
	}

	var rows []Fig15Row
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "program\tgate-based(ns)\taccqoc(ns)\tbrute(ns)\taccqoc red.\tbrute red.\tcompile speedup")
	for i := 0; i < sc.Fig15Programs; i++ {
		p, perr := workload.Random(fmt.Sprintf("fig15_%d", i), 6, sc.Fig15Gates, int64(7100+i))
		if perr != nil {
			return nil, perr
		}
		acc, aerr := comp.Compile(p.Circuit)
		if aerr != nil {
			return nil, aerr
		}
		brute, berr := comp.CompileBruteForce(p.Circuit, accqoc.BruteForceOptions{MaxQubits: 3, MaxLayers: 8})
		if berr != nil {
			return nil, berr
		}
		row := Fig15Row{
			Program:           p.Name,
			GateBasedNs:       acc.GateBasedLatencyNs,
			AccQOCNs:          acc.OverallLatencyNs,
			BruteNs:           brute.OverallLatencyNs,
			AccQOCReduction:   acc.LatencyReduction,
			BruteReduction:    brute.LatencyReduction,
			AccQOCCompileTime: acc.TrainingTime,
			BruteCompileTime:  brute.TrainingTime,
			AccQOCIterations:  acc.TrainingIterations,
			BruteIterations:   brute.TrainingIterations,
		}
		if acc.TrainingTime > 0 {
			row.CompileTimeSpeedup = float64(brute.TrainingTime) / float64(acc.TrainingTime)
		}
		if acc.TrainingIterations > 0 {
			row.IterationSpeedupAlt = float64(brute.TrainingIterations) / float64(acc.TrainingIterations)
		}
		rows = append(rows, row)
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%.2fx\t%.2fx\t%.1fx\n",
			row.Program, row.GateBasedNs, row.AccQOCNs, row.BruteNs,
			row.AccQOCReduction, row.BruteReduction, row.CompileTimeSpeedup)
	}
	var accRed, bruteRed, speed float64
	for _, r := range rows {
		accRed += r.AccQOCReduction
		bruteRed += r.BruteReduction
		speed += r.CompileTimeSpeedup
	}
	n := float64(len(rows))
	fmt.Fprintf(tw, "average\t\t\t\t%.2fx\t%.2fx\t%.1fx\t(paper: 2.43x / 3.01x / 9.88x)\n",
		accRed/n, bruteRed/n, speed/n)
	tw.Flush()
	return rows, nil
}
