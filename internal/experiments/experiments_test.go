package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"accqoc/internal/grape"
	"accqoc/internal/precompile"
	"accqoc/internal/similarity"
	"accqoc/internal/workload"
)

// tinyScale shrinks everything to smoke-test the harness paths quickly.
func tinyScale() Scale {
	s := SmallScale()
	s.Name = "tiny"
	s.ProfilePrograms = 2
	s.TargetPrograms = 2
	s.ProgramGates = [2]int{30, 60}
	s.AccelGroups = 4
	s.Fig13Groups = 3
	s.Fig14Gates = []int{50, 100}
	s.Fig15Programs = 1
	s.Fig15Gates = 12
	s.Grape = grape.Options{TargetInfidelity: 1e-2, MaxIterations: 200, Restarts: -1, Seed: 3}
	s.Search1Q = grape.SearchOptions{MinDuration: 10, MaxDuration: 120, Resolution: 30}
	s.Search2Q = grape.SearchOptions{MinDuration: 200, MaxDuration: 1400, Resolution: 300}
	return s
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, want := range []string{"map2b2l", "swap2b4l", "decomposed to 3 CX"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf)
	out := buf.String()
	for _, want := range []string{"cm152a", "qft_16", "all"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table2 missing %q:\n%s", want, out)
		}
	}
	rows, avg := Table2Rows()
	if len(rows) != 6 {
		t.Fatal("Table2Rows should have 6 programs")
	}
	if avg["cx"] < 0.3 {
		t.Fatalf("cx average = %v", avg["cx"])
	}
}

func TestFig5(t *testing.T) {
	var buf bytes.Buffer
	rows := Fig5(&buf)
	if len(rows) != 6 {
		t.Fatalf("Fig5 rows = %d", len(rows))
	}
	if !strings.Contains(buf.String(), "20%") {
		t.Fatalf("Fig5 output missing the 20%% inflation:\n%s", buf.String())
	}
}

func TestFig11Tiny(t *testing.T) {
	sc := tinyScale()
	sc.Fig11Programs = 2
	var buf bytes.Buffer
	res, err := Fig11(&buf, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Programs) != 2 || len(res.Before) != 2 || len(res.After) != 2 {
		t.Fatalf("shape: %+v", res)
	}
	for i := range res.Programs {
		if res.Before[i] < 0 || res.After[i] < 0 {
			t.Fatal("negative crosstalk metric")
		}
	}
	// The average reduction over a *large* sample is positive (see the
	// mapping package test and Fig. 11 in EXPERIMENTS.md); two tiny
	// programs only smoke-test the path.
}

func TestFig14Tiny(t *testing.T) {
	var buf bytes.Buffer
	pts, err := Fig14(&buf, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Sub-linear growth: unique groups grow slower than gates.
	gateRatio := float64(pts[1].Gates) / float64(pts[0].Gates)
	groupRatio := float64(pts[1].UniqueGroups) / float64(pts[0].UniqueGroups)
	if groupRatio >= gateRatio {
		t.Errorf("unique groups grew as fast as gates: %v vs %v (paper: sub-linear)",
			groupRatio, gateRatio)
	}
}

func TestFig7Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses")
	}
	var buf bytes.Buffer
	res, err := Fig7(&buf, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.ProfiledUnique == 0 {
		t.Fatal("no profiled groups")
	}
	if res.Average < 0.2 {
		t.Errorf("coverage average %.2f implausibly low for same-mix programs", res.Average)
	}
	t.Logf("tiny coverage average: %.1f%% with %d profiled groups", 100*res.Average, res.ProfiledUnique)
}

func TestScalesAreSane(t *testing.T) {
	small, full := SmallScale(), FullScale()
	if small.ProfilePrograms >= full.ProfilePrograms {
		t.Fatal("full scale must profile more programs")
	}
	if full.Grape.TargetInfidelity > small.Grape.TargetInfidelity {
		t.Fatal("full scale must use tighter fidelity")
	}
	if len(small.fig12Programs()) == 0 || len(full.fig12Programs()) != 6 {
		t.Fatal("fig12 program sets wrong")
	}
}

func TestDeviceFor(t *testing.T) {
	small := workload.QFT(5)
	if dev := DeviceFor(small.Circuit); dev.Name != "ibmq-melbourne" {
		t.Fatalf("qft_5 device = %s", dev.Name)
	}
	big := workload.QFT(16)
	if dev := DeviceFor(big.Circuit); dev.NumQubits < 16 {
		t.Fatalf("qft_16 device too small: %s", dev.Name)
	}
}

func TestAccelArmString(t *testing.T) {
	a := precompile.AccelArm{Function: similarity.TraceFid, Iterations: 100, Reduction: 0.25}
	s := a.String()
	if !strings.Contains(s, "fidelity1") || !strings.Contains(s, "25.0%") {
		t.Fatalf("String = %q", s)
	}
	cold := precompile.AccelArm{Iterations: 50}
	if !strings.Contains(cold.String(), "cold") {
		t.Fatalf("cold String = %q", cold.String())
	}
}

func TestFrontierTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a dim-8 pulse; skipped in -short")
	}
	sc := tinyScale()
	sc.Grape.TargetInfidelity = 0.35
	sc.Grape.MaxIterations = 120
	qft3 := workload.QFT(3)
	sc.FrontierCustom = []*workload.Program{qft3}
	cells, err := Frontier(io.Discard, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 { // one program × (map2b4l, map3b2l, map3b3l)
		t.Fatalf("cells = %d, want 3", len(cells))
	}
	byPolicy := map[string]FrontierCell{}
	for _, c := range cells {
		if c.Program != qft3.Name {
			t.Fatalf("unexpected program %q", c.Program)
		}
		if c.MakespanNs <= 0 || c.Groups <= 0 {
			t.Fatalf("degenerate cell: %+v", c)
		}
		byPolicy[c.Policy] = c
	}
	c2, ok2 := byPolicy["map2b4l"]
	c3, ok3 := byPolicy["map3b3l"]
	if !ok2 || !ok3 {
		t.Fatalf("missing policies in %v", byPolicy)
	}
	// The frontier's defining direction: the 3b policy coarsens the
	// grouping (fewer or equal groups) on a QFT's chained CPs.
	if c3.Groups > c2.Groups {
		t.Fatalf("map3b3l groups %d > map2b4l groups %d", c3.Groups, c2.Groups)
	}
}
