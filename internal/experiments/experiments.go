// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): each Fig*/Table* function computes the underlying data
// with the real pipeline and renders the same rows/series the paper
// reports. The cmd/accqoc-repro binary and the repository-root benchmarks
// are thin wrappers over this package.
//
// Scales: the paper's full suite takes hours of QOC training; the Small
// scale subsamples programs and group categories so the complete set of
// experiments reproduces in minutes while preserving every trend. Absolute
// numbers are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"accqoc/internal/circuit"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/precompile"
	"accqoc/internal/topology"
	"accqoc/internal/workload"
)

// Scale bounds the experiment sizes.
type Scale struct {
	Name string
	// ProfilePrograms is the profiling-set size (the paper uses ⅓ of the
	// 159-program suite).
	ProfilePrograms int
	// TargetPrograms is how many programs coverage/latency experiments
	// evaluate.
	TargetPrograms int
	// ProgramGates bounds random-program sizes [min, max].
	ProgramGates [2]int
	// AccelGroups caps the unique-group category for the Fig. 8 study.
	AccelGroups int
	// Fig13Groups caps per-program categories in Fig. 13.
	Fig13Groups int
	// Fig11Programs sizes the crosstalk-mapping comparison (training-free,
	// so it can use a larger sample than the QOC experiments).
	Fig11Programs int
	// Fig14Gates are the program sizes of the group-growth experiment.
	Fig14Gates []int
	// Fig15Programs is the AccQOC-vs-brute-force program count.
	Fig15Programs int
	// Fig15Gates bounds Fig. 15 program sizes (brute-force QOC trains
	// 3-qubit groups — expensive by design).
	Fig15Gates int
	// Fig12Custom overrides the Fig. 12 program set (used by quick
	// benchmarks; nil selects the named suite subset for the scale).
	Fig12Custom []*workload.Program
	// FrontierCustom overrides the group-size frontier program set (used
	// by tests; nil selects the default QFT + random workloads).
	FrontierCustom []*workload.Program
	// Grape tunes the training budget.
	Grape grape.Options
	// Search brackets.
	Search1Q, Search2Q grape.SearchOptions
}

// SmallScale finishes the full experiment set in minutes on a laptop core.
func SmallScale() Scale {
	return Scale{
		Name:            "small",
		ProfilePrograms: 8,
		TargetPrograms:  7,
		ProgramGates:    [2]int{150, 400},
		Fig11Programs:   20,
		AccelGroups:     22,
		Fig13Groups:     10,
		Fig14Gates:      []int{200, 400, 700, 1000, 1400, 2000},
		Fig15Programs:   2,
		Fig15Gates:      70,
		Grape: grape.Options{
			TargetInfidelity: 1e-3,
			MaxIterations:    300,
			Restarts:         -1,
			Seed:             7,
		},
		Search1Q: grape.SearchOptions{MinDuration: 10, MaxDuration: 160, Resolution: 15},
		Search2Q: grape.SearchOptions{MinDuration: 150, MaxDuration: 1500, Resolution: 100},
	}
}

// FullScale mirrors the paper's setup more closely (⅓ of 159 programs,
// tighter fidelity). Expect a multi-hour run.
func FullScale() Scale {
	s := SmallScale()
	s.Name = "full"
	s.ProfilePrograms = 53
	s.TargetPrograms = 20
	s.Fig11Programs = 53
	s.ProgramGates = [2]int{200, 2000}
	s.AccelGroups = 133
	s.Fig13Groups = 40
	s.Fig15Programs = 6
	s.Fig15Gates = 150
	s.Grape.TargetInfidelity = 1e-4
	s.Grape.MaxIterations = 800
	s.Grape.Restarts = 1
	s.Search2Q.Resolution = 50
	return s
}

// precompileConfig assembles the library-training configuration for a
// scale.
func (s Scale) precompileConfig() precompile.Config {
	return precompile.Config{
		Grape:    s.Grape,
		UseMST:   true,
		Search1Q: s.Search1Q,
		Search2Q: s.Search2Q,
	}
}

// profileSuite returns the deterministic profiling and target program sets
// for a scale: disjoint random suite programs sized within ProgramGates.
func (s Scale) profileSuite() (profile, targets []*workload.Program, err error) {
	rng := rand.New(rand.NewSource(2020))
	mk := func(tag string, i int) (*workload.Program, error) {
		span := s.ProgramGates[1] - s.ProgramGates[0]
		gates := s.ProgramGates[0]
		if span > 0 {
			gates += rng.Intn(span)
		}
		qubits := 4 + rng.Intn(11)
		return workload.Random(fmt.Sprintf("%s_%02d", tag, i), qubits, gates, int64(3000+i))
	}
	for i := 0; i < s.ProfilePrograms; i++ {
		p, perr := mk("prof", i)
		if perr != nil {
			return nil, nil, perr
		}
		profile = append(profile, p)
	}
	for i := 0; i < s.TargetPrograms; i++ {
		p, perr := mk("targ", 100+i)
		if perr != nil {
			return nil, nil, perr
		}
		targets = append(targets, p)
	}
	return profile, targets, nil
}

// DeviceFor picks the evaluation device: Melbourne when the program fits,
// a 4×4 grid otherwise (qft_16).
func DeviceFor(c *circuit.Circuit) *topology.Device {
	if c.NumQubits <= 14 {
		return topology.Melbourne()
	}
	return topology.Grid(4, 4)
}

// Table1 prints the six grouping-policy parameter settings (Table I).
func Table1(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tswap handling\t#qubits\t#layers")
	for _, p := range grouping.Policies {
		handling := "kept native"
		if p.DecomposeSwap {
			handling = "decomposed to 3 CX"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\n", p.Name, handling, p.MaxQubits, p.MaxLayers)
	}
	tw.Flush()
}

// Table2Rows computes the instruction mixes of the named suite.
func Table2Rows() ([]workload.MixRow, map[string]float64) {
	rows, avg := workload.TableII(workload.NamedSuite())
	flat := map[string]float64{}
	for n, f := range avg {
		flat[string(n)] = f
	}
	return rows, flat
}

// Table2 prints the Table II reproduction.
func Table2(w io.Writer) {
	rows, avg := Table2Rows()
	cols := []string{"x", "t", "h", "cx", "rz", "tdg"}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "program\ttotal\t%s\t%s\t%s\t%s\t%s\t%s\n",
		cols[0], cols[1], cols[2], cols[3], cols[4], cols[5])
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d", r.Name, r.Total)
		for _, c := range cols {
			fmt.Fprintf(tw, "\t%d", r.Counts[gateName(c)])
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintf(tw, "all\t\t")
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprintf(tw, "%.1f%%", 100*avg[c])
	}
	fmt.Fprintln(tw)
	tw.Flush()
}
