package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"accqoc"
	"accqoc/internal/grouping"
	"accqoc/internal/precompile"
	"accqoc/internal/similarity"
	"accqoc/internal/workload"
)

// fig12Programs picks the latency-reduction programs for a scale: the
// paper's six (Fig. 12) at full scale, a representative pair at small
// scale.
func (s Scale) fig12Programs() []*workload.Program {
	if len(s.Fig12Custom) > 0 {
		return s.Fig12Custom
	}
	named := workload.NamedSuite()
	byName := map[string]*workload.Program{}
	for _, p := range named {
		byName[p.Name] = p
	}
	if s.Name == "full" {
		return named
	}
	return []*workload.Program{byName["4gt4-v0"], byName["qft_10"]}
}

// Fig12Cell is one bar of the latency-reduction chart.
type Fig12Cell struct {
	Program   string
	Policy    string
	Reduction float64 // gate-based / QOC latency
	// OptimizedReduction re-measures after the most-frequent-group
	// re-training (§IV-G) — the red bars of Fig. 12.
	OptimizedReduction float64
}

// Fig12 measures overall latency reduction for each program under all six
// grouping policies (paper Fig. 12: mostly 1.2×–2.6×), with and without
// the most-frequent-group optimization. A single pulse library is shared
// across policies — entries are keyed by group matrix, so overlapping
// groups train once.
func Fig12(w io.Writer, sc Scale) ([]Fig12Cell, error) {
	shared := precompile.NewLibrary()
	var cells []Fig12Cell
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "program\tpolicy\treduction\twith freq-opt")
	for _, prog := range sc.fig12Programs() {
		for _, pol := range grouping.Policies {
			comp := accqoc.New(accqoc.Options{
				Device:     DeviceFor(prog.Circuit),
				Policy:     pol,
				Precompile: sc.precompileConfig(),
			})
			comp.SetLibrary(shared)
			res, err := comp.Compile(prog.Circuit)
			if err != nil {
				return nil, err
			}
			cell := Fig12Cell{Program: prog.Name, Policy: pol.Name, Reduction: res.LatencyReduction}
			// §IV-G: re-train the most frequent group with a larger
			// budget, then re-measure (the library is fully covering now,
			// so the re-compile is pure lookup).
			if _, _, err := precompile.OptimizeMostFrequent(shared, sc.precompileConfig()); err == nil {
				if res2, err2 := comp.Compile(prog.Circuit); err2 == nil {
					cell.OptimizedReduction = res2.LatencyReduction
				}
			}
			if cell.OptimizedReduction < cell.Reduction {
				cell.OptimizedReduction = cell.Reduction
			}
			cells = append(cells, cell)
			fmt.Fprintf(tw, "%s\t%s\t%.2fx\t%.2fx\n", cell.Program, cell.Policy, cell.Reduction, cell.OptimizedReduction)
		}
	}
	var sum, osum float64
	for _, c := range cells {
		sum += c.Reduction
		osum += c.OptimizedReduction
	}
	n := float64(len(cells))
	fmt.Fprintf(tw, "average\t\t%.2fx\t%.2fx\t(paper: 1.2x–2.6x per policy, avg 2.43x)\n", sum/n, osum/n)
	tw.Flush()
	return cells, nil
}

// Fig13Row is one program's iteration-reduction measurement.
type Fig13Row struct {
	Program    string
	Groups     int
	Cold       int
	Reductions map[similarity.Func]float64
}

// Fig13 measures per-program training-iteration reduction for the five
// similarity functions (paper Fig. 13: up to 28% with fidelity1; the
// inverse function hurts). Programs: the profiled category plus target
// programs, as in the paper's seven.
func Fig13(w io.Writer, sc Scale) ([]Fig13Row, error) {
	_, targets, err := sc.profileSuite()
	if err != nil {
		return nil, err
	}
	if len(targets) > 6 {
		targets = targets[:6]
	}
	comp := accqoc.New(accqoc.Options{
		Policy:     grouping.Map2b4l,
		Precompile: sc.precompileConfig(),
	})

	var rows []Fig13Row
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "program\tgroups\tcold iters")
	for _, fn := range similarity.All {
		fmt.Fprintf(tw, "\t%s", fn)
	}
	fmt.Fprintln(tw)

	// The paper's Fig. 13 includes the profiled category as its seventh
	// entry; here it is the first row.
	cat, err := profiledCategory(sc)
	if err != nil {
		return nil, err
	}
	if len(cat) > sc.Fig13Groups {
		cat = cat[:sc.Fig13Groups]
	}
	catRow, err := accelRow("profiled-category", cat, sc)
	if err != nil {
		return nil, err
	}
	rows = append(rows, *catRow)
	printFig13Row(tw, *catRow)

	for _, t := range targets {
		prep, perr := comp.Prepare(t.Circuit)
		if perr != nil {
			return nil, perr
		}
		uniq, derr := grouping.Deduplicate(prep.Grouping.Groups)
		if derr != nil {
			return nil, derr
		}
		if len(uniq) > sc.Fig13Groups {
			uniq = uniq[:sc.Fig13Groups]
		}
		row, rerr := accelRow(t.Name, uniq, sc)
		if rerr != nil {
			return nil, rerr
		}
		rows = append(rows, *row)
		printFig13Row(tw, *row)
	}
	tw.Flush()
	return rows, nil
}

func accelRow(name string, uniq []*grouping.UniqueGroup, sc Scale) (*Fig13Row, error) {
	cold, arms, err := precompile.AccelerationStudy(uniq, similarity.All, sc.precompileConfig())
	if err != nil {
		return nil, err
	}
	row := &Fig13Row{Program: name, Groups: len(uniq), Cold: cold.Iterations, Reductions: map[similarity.Func]float64{}}
	for _, a := range arms {
		row.Reductions[a.Function] = a.Reduction
	}
	return row, nil
}

func printFig13Row(w io.Writer, r Fig13Row) {
	fmt.Fprintf(w, "%s\t%d\t%d", r.Program, r.Groups, r.Cold)
	for _, fn := range similarity.All {
		fmt.Fprintf(w, "\t%.1f%%", 100*r.Reductions[fn])
	}
	fmt.Fprintln(w)
}
