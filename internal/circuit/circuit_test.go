package circuit

import (
	"math"
	"math/cmplx"
	"testing"

	"accqoc/internal/cmat"
	"accqoc/internal/gate"
)

func bell() *Circuit {
	c := New(2)
	c.MustAppend(gate.H, []int{0})
	c.MustAppend(gate.CX, []int{0, 1})
	return c
}

func TestAppendValidation(t *testing.T) {
	c := New(2)
	if err := c.Append(gate.X, []int{5}); err == nil {
		t.Fatal("out-of-range qubit accepted")
	}
	if err := c.Append("bogus", []int{0}); err == nil {
		t.Fatal("unknown gate accepted")
	}
	if err := c.Append(gate.RZ, []int{0}, 0.5); err != nil {
		t.Fatal(err)
	}
	if c.GateCount() != 1 {
		t.Fatal("gate not appended")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := bell()
	d := c.Clone()
	d.Gates[0].Qubits[0] = 1
	if c.Gates[0].Qubits[0] == 1 {
		t.Fatal("Clone aliases gates")
	}
}

func TestInstructionMix(t *testing.T) {
	c := New(3)
	c.MustAppend(gate.H, []int{0})
	c.MustAppend(gate.H, []int{1})
	c.MustAppend(gate.CX, []int{0, 1})
	c.MustAppend(gate.T, []int{2})
	mix := c.InstructionMix()
	if mix[gate.H] != 2 || mix[gate.CX] != 1 || mix[gate.T] != 1 {
		t.Fatalf("mix = %v", mix)
	}
}

func TestBellUnitary(t *testing.T) {
	u, err := bell().Unitary()
	if err != nil {
		t.Fatal(err)
	}
	if !cmat.IsUnitary(u, 1e-12) {
		t.Fatal("bell circuit unitary is not unitary")
	}
	// Applying to |00⟩ must give (|00⟩+|11⟩)/√2: column 0.
	s := 1 / math.Sqrt2
	if cmplx.Abs(u.At(0, 0)-complex(s, 0)) > 1e-12 ||
		cmplx.Abs(u.At(3, 0)-complex(s, 0)) > 1e-12 ||
		cmplx.Abs(u.At(1, 0)) > 1e-12 || cmplx.Abs(u.At(2, 0)) > 1e-12 {
		t.Fatalf("Bell column 0 wrong:\n%v", u)
	}
}

func TestUnitaryOrderMatters(t *testing.T) {
	// X then H on one qubit: U = H·X (rightmost acts first).
	c := New(1)
	c.MustAppend(gate.X, []int{0})
	c.MustAppend(gate.H, []int{0})
	u, err := c.Unitary()
	if err != nil {
		t.Fatal(err)
	}
	x, _ := gate.Unitary(gate.X, nil)
	h, _ := gate.Unitary(gate.H, nil)
	if !u.EqualApprox(cmat.Mul(h, x), 1e-12) {
		t.Fatal("gate application order wrong in Unitary")
	}
}

func TestUnitaryQubitGuard(t *testing.T) {
	c := New(11)
	if _, err := c.Unitary(); err == nil {
		t.Fatal("expected guard against 11-qubit unitary")
	}
}

func TestDAGChainAndParallel(t *testing.T) {
	// q0: H──CX(c)──T
	// q1:      CX(t)
	// q2: X (independent)
	c := New(3)
	c.MustAppend(gate.H, []int{0})     // 0
	c.MustAppend(gate.X, []int{2})     // 1
	c.MustAppend(gate.CX, []int{0, 1}) // 2
	c.MustAppend(gate.T, []int{0})     // 3
	d := BuildDAG(c)

	if len(d.Preds[0]) != 0 || len(d.Preds[1]) != 0 {
		t.Fatal("roots must have no preds")
	}
	if len(d.Preds[2]) != 1 || d.Preds[2][0] != 0 {
		t.Fatalf("CX preds = %v, want [0]", d.Preds[2])
	}
	if len(d.Preds[3]) != 1 || d.Preds[3][0] != 2 {
		t.Fatalf("T preds = %v, want [2]", d.Preds[3])
	}
	if len(d.Succs[0]) != 1 || d.Succs[0][0] != 2 {
		t.Fatalf("H succs = %v", d.Succs[0])
	}
	wantDepth := []int{0, 0, 1, 2}
	for i, w := range wantDepth {
		if d.Depth[i] != w {
			t.Fatalf("Depth[%d] = %d, want %d", i, d.Depth[i], w)
		}
	}
	if d.NumLayers() != 3 {
		t.Fatalf("NumLayers = %d, want 3", d.NumLayers())
	}
	layers := d.Layers()
	if len(layers[0]) != 2 || len(layers[1]) != 1 || len(layers[2]) != 1 {
		t.Fatalf("layers = %v", layers)
	}
}

func TestDAGTwoQubitJoin(t *testing.T) {
	// Two independent single-qubit gates joined by a CX: the CX has two
	// predecessors.
	c := New(2)
	c.MustAppend(gate.H, []int{0})
	c.MustAppend(gate.H, []int{1})
	c.MustAppend(gate.CX, []int{0, 1})
	d := BuildDAG(c)
	if len(d.Preds[2]) != 2 {
		t.Fatalf("CX should join two preds, got %v", d.Preds[2])
	}
	if d.Depth[2] != 1 {
		t.Fatal("CX depth wrong")
	}
}

func TestEmptyCircuitDAG(t *testing.T) {
	d := BuildDAG(New(4))
	if d.NumLayers() != 0 {
		t.Fatal("empty circuit has layers")
	}
	if len(d.TopologicalOrder()) != 0 {
		t.Fatal("empty circuit has order")
	}
}

func TestDecomposeCCXInCircuit(t *testing.T) {
	c := New(3)
	c.MustAppend(gate.CCX, []int{0, 1, 2})
	dec := c.DecomposeCCX()
	if dec.GateCount() != 15 {
		t.Fatalf("decomposed gate count = %d, want 15", dec.GateCount())
	}
	u1, err := c.Unitary()
	if err != nil {
		t.Fatal(err)
	}
	u2, err := dec.Unitary()
	if err != nil {
		t.Fatal(err)
	}
	overlap := cmplx.Abs(cmat.Trace(cmat.Mul(cmat.Dagger(u1), u2))) / 8
	if math.Abs(overlap-1) > 1e-10 {
		t.Fatalf("decomposition changed the unitary, overlap=%v", overlap)
	}
}

func TestUsedQubitsAndTwoQubitCount(t *testing.T) {
	c := New(5)
	c.MustAppend(gate.X, []int{3})
	c.MustAppend(gate.CX, []int{1, 3})
	q := c.UsedQubits()
	if len(q) != 2 || q[0] != 1 || q[1] != 3 {
		t.Fatalf("UsedQubits = %v", q)
	}
	if c.TwoQubitGateCount() != 1 {
		t.Fatal("TwoQubitGateCount wrong")
	}
}
