// Package circuit provides the shared intermediate representation of the
// AccQOC pipeline: a quantum circuit as an ordered gate list, its DAG of
// data dependencies per qubit wire, ASAP layering, instruction-mix
// statistics, and exact unitary construction for small circuits.
package circuit

import (
	"fmt"
	"sort"

	"accqoc/internal/cmat"
	"accqoc/internal/gate"
)

// Circuit is an ordered list of gates over NumQubits wires. The gate order
// is a valid topological order of the dependency DAG by construction.
type Circuit struct {
	NumQubits int
	Gates     []gate.Instance
}

// New returns an empty circuit on n qubits.
func New(n int) *Circuit {
	if n < 0 {
		panic(fmt.Sprintf("circuit: negative qubit count %d", n))
	}
	return &Circuit{NumQubits: n}
}

// Append validates and adds a gate to the circuit.
func (c *Circuit) Append(n gate.Name, qubits []int, params ...float64) error {
	g, err := gate.NewInstance(n, qubits, params)
	if err != nil {
		return err
	}
	for _, q := range g.Qubits {
		if q >= c.NumQubits {
			return fmt.Errorf("circuit: qubit %d out of range [0,%d)", q, c.NumQubits)
		}
	}
	c.Gates = append(c.Gates, g)
	return nil
}

// MustAppend is Append that panics on error, for hand-built circuits.
func (c *Circuit) MustAppend(n gate.Name, qubits []int, params ...float64) {
	if err := c.Append(n, qubits, params...); err != nil {
		panic(err)
	}
}

// Clone returns a deep copy.
func (c *Circuit) Clone() *Circuit {
	out := New(c.NumQubits)
	out.Gates = make([]gate.Instance, len(c.Gates))
	for i, g := range c.Gates {
		out.Gates[i] = gate.Instance{
			Name:   g.Name,
			Qubits: append([]int(nil), g.Qubits...),
			Params: append([]float64(nil), g.Params...),
		}
	}
	return out
}

// GateCount returns the number of gates.
func (c *Circuit) GateCount() int { return len(c.Gates) }

// InstructionMix counts gates by name — the statistic of the paper's
// Table II.
func (c *Circuit) InstructionMix() map[gate.Name]int {
	mix := make(map[gate.Name]int)
	for _, g := range c.Gates {
		mix[g.Name]++
	}
	return mix
}

// DecomposeCCX returns a copy of the circuit with every Toffoli expanded
// into the standard 15-gate sequence (paper Fig. 2).
func (c *Circuit) DecomposeCCX() *Circuit {
	out := New(c.NumQubits)
	for _, g := range c.Gates {
		out.Gates = append(out.Gates, gate.DecomposeCCX(g)...)
	}
	return out
}

// DAG is the data-dependency graph of a circuit: node i is gate i, with an
// edge i→j when gate j consumes a qubit last written by gate i.
type DAG struct {
	Circuit *Circuit
	Preds   [][]int // Preds[i]: immediate predecessors of gate i (sorted)
	Succs   [][]int // Succs[i]: immediate successors of gate i (sorted)
	Depth   []int   // ASAP layer of gate i, 0-based
}

// BuildDAG constructs the dependency DAG and ASAP depths in one pass over
// the gate list (which is already topologically ordered).
func BuildDAG(c *Circuit) *DAG {
	n := len(c.Gates)
	d := &DAG{
		Circuit: c,
		Preds:   make([][]int, n),
		Succs:   make([][]int, n),
		Depth:   make([]int, n),
	}
	last := make([]int, c.NumQubits) // last gate index touching each qubit
	for i := range last {
		last[i] = -1
	}
	for i, g := range c.Gates {
		predSet := map[int]bool{}
		depth := 0
		for _, q := range g.Qubits {
			if p := last[q]; p >= 0 {
				predSet[p] = true
				if d.Depth[p]+1 > depth {
					depth = d.Depth[p] + 1
				}
			}
			last[q] = i
		}
		d.Depth[i] = depth
		preds := make([]int, 0, len(predSet))
		for p := range predSet {
			preds = append(preds, p)
		}
		sort.Ints(preds)
		d.Preds[i] = preds
		for _, p := range preds {
			d.Succs[p] = append(d.Succs[p], i)
		}
	}
	return d
}

// NumLayers returns the circuit depth (number of ASAP layers).
func (d *DAG) NumLayers() int {
	max := -1
	for _, dep := range d.Depth {
		if dep > max {
			max = dep
		}
	}
	return max + 1
}

// Layers groups gate indices by ASAP depth. Layer l contains all gates at
// depth l, in program order.
func (d *DAG) Layers() [][]int {
	layers := make([][]int, d.NumLayers())
	for i, dep := range d.Depth {
		layers[dep] = append(layers[dep], i)
	}
	return layers
}

// TopologicalOrder returns gate indices in a valid topological order.
// Because circuits are built sequentially this is simply 0..n−1, but the
// method exists so downstream algorithms state their requirement explicitly.
func (d *DAG) TopologicalOrder() []int {
	order := make([]int, len(d.Circuit.Gates))
	for i := range order {
		order[i] = i
	}
	return order
}

// Unitary computes the exact 2^n × 2^n unitary implemented by the circuit.
// Intended for small circuits (groups); it errors above maxQubits (10) to
// guard against accidental exponential blow-ups.
func (c *Circuit) Unitary() (*cmat.Matrix, error) {
	const maxQubits = 10
	if c.NumQubits > maxQubits {
		return nil, fmt.Errorf("circuit: Unitary limited to %d qubits, have %d", maxQubits, c.NumQubits)
	}
	dim := 1 << c.NumQubits
	acc := cmat.Identity(dim)
	for _, g := range c.Gates {
		u, err := g.Unitary()
		if err != nil {
			return nil, err
		}
		acc = cmat.Mul(gate.Embed(u, g.Qubits, c.NumQubits), acc)
	}
	return acc, nil
}

// UsedQubits returns the sorted set of qubits any gate touches.
func (c *Circuit) UsedQubits() []int {
	seen := map[int]bool{}
	for _, g := range c.Gates {
		for _, q := range g.Qubits {
			seen[q] = true
		}
	}
	out := make([]int, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// TwoQubitGateCount counts gates touching two or more qubits.
func (c *Circuit) TwoQubitGateCount() int {
	n := 0
	for _, g := range c.Gates {
		if len(g.Qubits) >= 2 {
			n++
		}
	}
	return n
}
