package obs

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "a histogram", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 111.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// le="1" is cumulative and inclusive: 0.5 and 1 both land in it.
	for _, want := range []string{
		`test_hist_bucket{le="1"} 2`,
		`test_hist_bucket{le="5"} 3`,
		`test_hist_bucket{le="10"} 4`,
		`test_hist_bucket{le="+Inf"} 5`,
		`test_hist_sum 111.5`,
		`test_hist_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecCellsAndSortedOutput(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "endpoint", "code")
	v.With("/b", "200").Add(2)
	v.With("/a", "200").Inc()
	v.With("/a", "500").Inc()
	if v.With("/b", "200") != v.With("/b", "200") {
		t.Fatal("cells not cached")
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	iA := strings.Index(out, `req_total{endpoint="/a",code="200"} 1`)
	iA5 := strings.Index(out, `req_total{endpoint="/a",code="500"} 1`)
	iB := strings.Index(out, `req_total{endpoint="/b",code="200"} 2`)
	if iA < 0 || iA5 < 0 || iB < 0 {
		t.Fatalf("missing samples:\n%s", out)
	}
	if !(iA < iA5 && iA5 < iB) {
		t.Fatalf("samples not sorted by label values:\n%s", out)
	}
}

func TestGaugeFuncAndCollectors(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("depth", "queue depth", func() float64 { return 3 })
	r.CollectCounters("store_hits_total", "hits", []string{"device"}, func(emit Emit) {
		emit(7, "devB")
		emit(4, "devA")
	})
	r.CollectGauges("epoch_age", "age", []string{"device"}, func(emit Emit) {
		emit(1.25, "devA")
	})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"depth 3",
		`store_hits_total{device="devA"} 4`,
		`store_hits_total{device="devB"} 7`,
		`epoch_age{device="devA"} 1.25`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Collector samples sort by label value too.
	if strings.Index(out, `device="devA"} 4`) > strings.Index(out, `device="devB"} 7`) {
		t.Errorf("collector samples not sorted:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "escapes", "path").With(`a"b\c` + "\n").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if want := `esc_total{path="a\"b\\c\n"} 1`; !strings.Contains(b.String(), want) {
		t.Fatalf("escaping wrong, want %q in:\n%s", want, b.String())
	}
}

func TestDuplicateAndInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	for _, fn := range []func(){
		func() { r.Counter("dup_total", "x") },
		func() { r.Counter("9bad", "x") },
		func() { r.CounterVec("ok_total", "x", "bad-label") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "# TYPE x_total counter\nx_total 1\n") {
		t.Fatalf("body:\n%s", rec.Body.String())
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "x")
	h := r.Histogram("conc_hist", "x", LinearBuckets(0, 1, 4))
	g := r.Gauge("conc_gauge", "x")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 5))
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || g.Value() != 8000 {
		t.Fatalf("lost updates: counter=%d hist=%d gauge=%v", c.Value(), h.Count(), g.Value())
	}
}

func TestTraceSpansAndNilSafety(t *testing.T) {
	// Nil trace: everything is a no-op.
	var nilT *Trace
	sp := nilT.StartSpan("x")
	sp.End()
	nilT.SetMeta("d", 1, 2, 3)
	nilT.Finish(200, "")

	tr := NewTrace("rid-1", "/v1/compile")
	s1 := tr.StartSpan("parse")
	time.Sleep(time.Millisecond)
	s1.End()
	s2 := tr.StartSpan("train")
	s2.Key = "k"
	s2.Outcome = "trained"
	s2.Iterations = 42
	s2.End()
	dropped := tr.StartSpan("hit") // never ended: discarded
	_ = dropped
	tr.SetMeta("devA", 3, 2, 5)
	tr.Finish(200, "")
	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(tr.Spans))
	}
	if tr.Spans[0].Name != "parse" || tr.Spans[0].DurationUs <= 0 {
		t.Fatalf("parse span: %+v", tr.Spans[0])
	}
	if tr.Spans[1].Iterations != 42 || tr.Spans[1].Outcome != "trained" {
		t.Fatalf("train span: %+v", tr.Spans[1])
	}
	if tr.DurationMs <= 0 || tr.Status != 200 || tr.Device != "devA" {
		t.Fatalf("trace: %+v", tr)
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("rid", "/x")
	for i := 0; i < maxSpans+10; i++ {
		tr.StartSpan("s").End()
	}
	if len(tr.Spans) != maxSpans || tr.DroppedSpans != 10 {
		t.Fatalf("spans=%d dropped=%d", len(tr.Spans), tr.DroppedSpans)
	}
}

func TestRecorderRingAndSlowest(t *testing.T) {
	r := NewRecorder(3)
	mk := func(id string, ms float64) *Trace {
		tr := NewTrace(id, "/x")
		tr.DurationMs = ms
		return tr
	}
	r.Record(mk("a", 10))
	r.Record(mk("b", 50))
	r.Record(mk("c", 20))
	r.Record(mk("d", 5)) // evicts a from ring; too fast for slowest
	recent, slowest := r.Snapshot()
	gotRecent := []string{}
	for _, tr := range recent {
		gotRecent = append(gotRecent, tr.ID)
	}
	if want := "d,c,b"; strings.Join(gotRecent, ",") != want {
		t.Fatalf("recent = %v, want %s", gotRecent, want)
	}
	gotSlow := []string{}
	for _, tr := range slowest {
		gotSlow = append(gotSlow, tr.ID)
	}
	if want := "b,c,a"; strings.Join(gotSlow, ",") != want {
		t.Fatalf("slowest = %v, want %s", gotSlow, want)
	}
	// d (5ms) displaces a once capacity frees up? No: slowest is full at 3
	// with b(50),c(20),a(10); d(5) loses. Record a slower one.
	r.Record(mk("e", 100))
	_, slowest = r.Snapshot()
	if slowest[0].ID != "e" || len(slowest) != 3 {
		t.Fatalf("slowest after e: %v", slowest)
	}
}

func TestRequestIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestContextThreading(t *testing.T) {
	ctx := context.Background()
	if RequestIDFrom(ctx) != "" || TraceFrom(ctx) != nil {
		t.Fatal("empty context should yield zero values")
	}
	tr := NewTrace("rid-9", "/x")
	ctx = WithTrace(WithRequestID(ctx, "rid-9"), tr)
	if RequestIDFrom(ctx) != "rid-9" || TraceFrom(ctx) != tr {
		t.Fatal("context round-trip failed")
	}
}
