package obs

// Go runtime telemetry for /metrics, read through runtime/metrics lazily
// at scrape time: an idle server pays nothing, and a scrape pays one
// metrics.Read (no stop-the-world, unlike runtime.ReadMemStats). The
// GC-pause distribution arrives as the runtime's own variable-boundary
// histogram and is folded into fixed exponential buckets so the exposed
// family has stable bounds across Go versions.

import (
	"math"
	runtimemetrics "runtime/metrics"
)

const (
	goroutinesMetric  = "/sched/goroutines:goroutines"
	heapObjectsMetric = "/memory/classes/heap/objects:bytes"
	heapUnusedMetric  = "/memory/classes/heap/unused:bytes"
	gcPausesMetric    = "/sched/pauses/total/gc:seconds"
)

// readUint64 samples one uint64 runtime metric, 0 when unsupported.
func readUint64(name string) float64 {
	s := []runtimemetrics.Sample{{Name: name}}
	runtimemetrics.Read(s)
	if s[0].Value.Kind() != runtimemetrics.KindUint64 {
		return 0
	}
	return float64(s[0].Value.Uint64())
}

// gcPauseBounds are the fixed upper bounds (seconds) the runtime's pause
// histogram is folded into: 1µs .. ~4s, factor 4.
func gcPauseBounds() []float64 { return ExponentialBuckets(1e-6, 4, 12) }

// readGCPauses folds the runtime's GC stop-the-world pause histogram into
// the fixed bounds. The runtime tracks no pause sum, so Sum is NaN (the
// exposition renders it literally; rate math should use _count and
// _bucket).
func readGCPauses() HistogramSnapshot {
	bounds := gcPauseBounds()
	out := HistogramSnapshot{
		Bounds: bounds,
		Counts: make([]uint64, len(bounds)+1),
		Sum:    math.NaN(),
	}
	s := []runtimemetrics.Sample{{Name: gcPausesMetric}}
	runtimemetrics.Read(s)
	if s[0].Value.Kind() != runtimemetrics.KindFloat64Histogram {
		return out
	}
	h := s[0].Value.Float64Histogram()
	if h == nil {
		return out
	}
	for i, count := range h.Counts {
		if count == 0 {
			continue
		}
		// The bucket spans (Buckets[i], Buckets[i+1]]; file its count
		// under the first fixed bound covering its upper edge.
		upper := math.Inf(1)
		if i+1 < len(h.Buckets) {
			upper = h.Buckets[i+1]
		}
		j := 0
		for j < len(bounds) && upper > bounds[j] {
			j++
		}
		out.Counts[j] += count
	}
	return out
}

// RegisterRuntimeMetrics adds the Go runtime families to a registry:
// goroutine count, heap in-use bytes, and the GC-pause histogram. All
// three are read lazily at scrape time.
func RegisterRuntimeMetrics(r *Registry) {
	r.GaugeFunc("accqoc_go_goroutines", "Live goroutines.",
		func() float64 { return readUint64(goroutinesMetric) })
	r.GaugeFunc("accqoc_go_heap_inuse_bytes", "Heap memory in use (spans holding live objects, unused slack included).",
		func() float64 { return readUint64(heapObjectsMetric) + readUint64(heapUnusedMetric) })
	r.CollectHistogram("accqoc_go_gc_pause_seconds", "Distribution of GC stop-the-world pause durations since boot.",
		readGCPauses)
}
