package obs

// Per-request tracing and the flight recorder. A Trace is created by the
// server middleware for each request; pipeline stages open Spans on it
// (parse, queue, prepare, plan, per-group training, assemble, validate).
// The whole API is nil-safe: a nil *Trace hands out nil *Spans and every
// method on them is a no-op, so instrumented code never branches on
// "observability enabled" — it just calls through.
//
// Spans are appended to the trace at End(), not at StartSpan: a span the
// caller decides not to keep (library hits on the per-group path, which
// would bloat warm traces with thousands of no-op spans) is simply never
// ended, and garbage-collects with the stack frame.

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpans bounds the spans kept per trace; a pathological circuit with
// thousands of cold groups records the first maxSpans and counts the rest
// in DroppedSpans instead of holding every span alive in the recorder.
const maxSpans = 256

// Span is one timed stage of a request. Fields beyond the timing triple
// are optional stage-specific annotations set by the caller before End.
type Span struct {
	Name string `json:"name"`
	// StartUs is the span's start offset from the trace start; DurationUs
	// its length. Microseconds: compile stages range from ~10us parses to
	// multi-second trainings, and float64 keeps the JSON human-readable.
	StartUs    float64 `json:"start_us"`
	DurationUs float64 `json:"duration_us"`
	// Key is the canonical group key for per-group training spans.
	Key string `json:"key,omitempty"`
	// Outcome is the store outcome for training spans: "trained",
	// "joined" (coalesced behind a concurrent training), "hit".
	Outcome string `json:"outcome,omitempty"`
	// Iterations is the optimizer iteration count for trained groups.
	Iterations int `json:"iterations,omitempty"`
	// Infidelity is the final 1-F of the trained pulse.
	Infidelity float64 `json:"infidelity,omitempty"`
	// SeedDistance is the similarity distance to the warm-start seed
	// (-1: trained cold, no seed admitted).
	SeedDistance float64 `json:"seed_distance,omitempty"`
	// Coalesced marks spans that waited on another request's training.
	Coalesced bool `json:"coalesced,omitempty"`

	trace *Trace
	start time.Time
}

// Trace is the record of one request through the pipeline.
type Trace struct {
	ID       string `json:"id"`
	Endpoint string `json:"endpoint"`
	Device   string `json:"device,omitempty"`
	Epoch    int    `json:"epoch,omitempty"`
	Qubits   int    `json:"qubits,omitempty"`
	Gates    int    `json:"gates,omitempty"`
	// Start is the wall-clock request arrival.
	Start time.Time `json:"start"`
	// DurationMs is the total request latency, set by Finish.
	DurationMs float64 `json:"duration_ms"`
	// Status is the HTTP status code of the response.
	Status int `json:"status"`
	// Error carries the failure message for non-2xx requests.
	Error string `json:"error,omitempty"`
	// Spans are the recorded stages in End order.
	Spans []*Span `json:"spans"`
	// DroppedSpans counts spans discarded past the per-trace cap.
	DroppedSpans int `json:"dropped_spans,omitempty"`

	mu    sync.Mutex
	begin time.Time // monotonic anchor for span offsets
}

// NewTrace starts a trace for one request.
func NewTrace(id, endpoint string) *Trace {
	now := time.Now()
	return &Trace{ID: id, Endpoint: endpoint, Start: now, begin: now}
}

// StartSpan opens a named span. The span is recorded only when End is
// called; dropping it unended discards it. Nil-safe.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	return &Span{
		Name:    name,
		StartUs: float64(now.Sub(t.begin).Microseconds()),
		trace:   t,
		start:   now,
	}
}

// End closes the span and appends it to its trace. Nil-safe; End on an
// already-ended span double-appends, so call it exactly once.
func (sp *Span) End() {
	if sp == nil || sp.trace == nil {
		return
	}
	sp.DurationUs = float64(time.Since(sp.start).Microseconds())
	t := sp.trace
	sp.trace = nil
	t.mu.Lock()
	if len(t.Spans) < maxSpans {
		t.Spans = append(t.Spans, sp)
	} else {
		t.DroppedSpans++
	}
	t.mu.Unlock()
}

// SetMeta records the request's routing and size once known. Nil-safe.
func (t *Trace) SetMeta(device string, epoch, qubits, gates int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Device, t.Epoch, t.Qubits, t.Gates = device, epoch, qubits, gates
	t.mu.Unlock()
}

// Finish stamps the total duration and response status. Nil-safe.
func (t *Trace) Finish(status int, errMsg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.DurationMs = float64(time.Since(t.begin).Microseconds()) / 1e3
	t.Status = status
	t.Error = errMsg
	t.mu.Unlock()
}

// Recorder is the flight recorder: a ring buffer of the last N finished
// traces plus an insert-sorted list of the N slowest since boot.
type Recorder struct {
	mu      sync.Mutex
	ring    []*Trace
	next    int
	full    bool
	slowest []*Trace // descending DurationMs
	size    int
}

// NewRecorder returns a recorder keeping the last size traces and the
// size slowest.
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = 64
	}
	return &Recorder{ring: make([]*Trace, size), size: size}
}

// Record files a finished trace. Nil recorder or nil trace is a no-op.
func (r *Recorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ring[r.next] = t
	r.next = (r.next + 1) % len(r.ring)
	if r.next == 0 {
		r.full = true
	}
	// Insert into slowest (descending) if it beats the current tail.
	if len(r.slowest) < r.size || t.DurationMs > r.slowest[len(r.slowest)-1].DurationMs {
		i := sort.Search(len(r.slowest), func(i int) bool {
			return r.slowest[i].DurationMs < t.DurationMs
		})
		r.slowest = append(r.slowest, nil)
		copy(r.slowest[i+1:], r.slowest[i:])
		r.slowest[i] = t
		if len(r.slowest) > r.size {
			r.slowest = r.slowest[:r.size]
		}
	}
}

// Snapshot returns the recent traces (newest first) and the slowest
// traces (slowest first).
func (r *Recorder) Snapshot() (recent, slowest []*Trace) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		for i := 0; i < len(r.ring); i++ {
			recent = append(recent, r.ring[(n-1-i+len(r.ring))%len(r.ring)])
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			recent = append(recent, r.ring[i])
		}
	}
	slowest = append(slowest, r.slowest...)
	return recent, slowest
}

// Request IDs: a per-process random prefix plus an atomic counter —
// unique across restarts without per-request entropy reads.
var (
	ridPrefix = func() string {
		var b [6]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Degrade to a time-derived prefix; IDs stay process-unique.
			binary.BigEndian.PutUint32(b[:4], uint32(time.Now().UnixNano()))
		}
		return hex.EncodeToString(b[:])
	}()
	ridCounter atomic.Uint64
)

// NewRequestID returns a process-unique request identifier.
func NewRequestID() string {
	return fmt.Sprintf("%s-%06d", ridPrefix, ridCounter.Add(1))
}
