// Package obs is the stdlib-only observability layer of the serving
// stack: a metrics registry (counters, gauges, fixed-bucket histograms)
// rendered in Prometheus text exposition format, per-request trace spans
// covering every stage of the compile pipeline, and a bounded flight
// recorder of recent and slowest request traces (trace.go).
//
// The paper's core claim is that pulse-compilation *cost* (GRAPE
// iterations) dominates and that similarity structure predicts it; this
// package makes those quantities observable per request in production —
// seed distances, warm-start iteration savings, singleflight coalescing,
// roll progress — instead of coarse totals inferred after the fact.
//
// Recording discipline: every instrument records through atomic
// operations on preallocated state — Counter.Inc, Gauge.Set and
// Histogram.Observe allocate nothing and take no locks, so they are safe
// on hot paths (the GRAPE optimizer loop, the store's singleflight).
// Label-value cells are allocated once on first use and cached; serving
// code holds the resolved cell (or resolves per request, off the
// numerical hot path). Scrape-time collectors (CollectCounters /
// CollectGauges) read external counter sources (store stats, registry
// status) only when /metrics is scraped, so an idle server pays nothing.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are allocation-free and safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the exposition to stay
// meaningful; this is not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as float64 bits.
// The zero value is ready to use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates delta with a CAS loop (allocation-free).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: bucket bounds are set at
// registration, Observe is a linear scan over ≤ a few dozen bounds plus
// three atomic adds — no locks, no allocations.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf bucket implicit
	counts []atomic.Int64 // len(bounds)+1, non-cumulative
	count  atomic.Int64
	sum    Gauge
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total observation count.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// LinearBuckets returns count bounds start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count bounds start, start·factor, ...
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets are latency bounds in seconds spanning sub-millisecond
// library hits through multi-second cold GRAPE trainings.
func DurationBuckets() []float64 {
	return []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30}
}

type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	default:
		return "histogram"
	}
}

// Emit appends one dynamic sample during a scrape-time collection; the
// label values must match the family's label names in number and order.
type Emit func(value float64, labelValues ...string)

// family is one metric family: name, help, type, label names, and either
// static cells or a scrape-time collector.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histogram families only

	mu    sync.Mutex
	cells map[string]*cell
	order []string // cell keys in first-use order (render re-sorts)

	gaugeFn     func() float64           // GaugeFunc families
	collect     func(Emit)               // CollectCounters/CollectGauges families
	collectHist func() HistogramSnapshot // CollectHistogram families
}

type cell struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration panics on invalid or duplicate names
// (programmer error); recording methods never panic.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help string, typ metricType, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: buckets,
		cells:   map[string]*cell{},
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

const unlabeledKey = "\x00"

func cellKey(values []string) string {
	if len(values) == 0 {
		return unlabeledKey
	}
	return strings.Join(values, "\x00")
}

func (f *family) cellFor(values []string) *cell {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := cellKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.cells[key]; ok {
		return c
	}
	c := &cell{labelValues: append([]string(nil), values...)}
	switch f.typ {
	case counterType:
		c.counter = &Counter{}
	case gaugeType:
		c.gauge = &Gauge{}
	case histogramType:
		c.hist = newHistogram(f.buckets)
	}
	f.cells[key] = c
	f.order = append(f.order, key)
	return c
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, counterType, nil, nil).cellFor(nil).counter
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, gaugeType, nil, nil).cellFor(nil).gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, gaugeType, nil, nil)
	f.gaugeFn = fn
}

// Histogram registers an unlabeled fixed-bucket histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, histogramType, nil, buckets).cellFor(nil).hist
}

// CounterVec is a counter family with labels; With resolves (and caches)
// the cell for one label-value tuple.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, counterType, labels, nil)}
}

// With returns the counter cell for the given label values.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.cellFor(labelValues).counter
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, gaugeType, labels, nil)}
}

// With returns the gauge cell for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.cellFor(labelValues).gauge
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family; every cell shares
// the same bucket bounds.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, histogramType, labels, buckets)}
}

// With returns the histogram cell for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.cellFor(labelValues).hist
}

// CollectCounters registers a counter family whose samples are produced
// at scrape time by collect — the bridge for counters owned elsewhere
// (libstore hit/miss/eviction/coalesce stats per device namespace).
func (r *Registry) CollectCounters(name, help string, labels []string, collect func(Emit)) {
	f := r.register(name, help, counterType, labels, nil)
	f.collect = collect
}

// CollectGauges registers a gauge family whose samples are produced at
// scrape time by collect (roll progress, epoch age, entry counts).
func (r *Registry) CollectGauges(name, help string, labels []string, collect func(Emit)) {
	f := r.register(name, help, gaugeType, labels, nil)
	f.collect = collect
}

// HistogramSnapshot is a scrape-time histogram reading for
// CollectHistogram families: ascending upper bounds with an implicit +Inf
// bucket, non-cumulative per-bucket counts (len(Bounds)+1; any extra
// counts fold into +Inf), and the observation sum (NaN when the source
// does not track one, e.g. runtime/metrics pause histograms).
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
}

// CollectHistogram registers an unlabeled histogram family whose buckets
// are read at scrape time — the bridge for histograms owned elsewhere
// (the Go runtime's GC-pause distribution).
func (r *Registry) CollectHistogram(name, help string, collect func() HistogramSnapshot) {
	f := r.register(name, help, histogramType, nil, nil)
	f.collectHist = collect
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {a="x",b="y"}; extra appends one more pair (le for
// histogram buckets). Empty label sets render as "".
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(names[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4): families in registration order, samples sorted by
// label values for deterministic output.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "), f.name, f.typ); err != nil {
			return err
		}
		if err := f.writeSamples(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeSamples(w io.Writer) error {
	if f.gaugeFn != nil {
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatValue(f.gaugeFn()))
		return err
	}
	if f.collectHist != nil {
		h := f.collectHist()
		var cum uint64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(nil, nil, "le", formatValue(bound)), cum); err != nil {
				return err
			}
		}
		for i := len(h.Bounds); i < len(h.Counts); i++ {
			cum += h.Counts[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(nil, nil, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", f.name, formatValue(h.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", f.name, cum)
		return err
	}
	if f.collect != nil {
		type sample struct {
			labels string
			value  float64
		}
		var samples []sample
		f.collect(func(value float64, labelValues ...string) {
			if len(labelValues) != len(f.labels) {
				return // arity bug in the collector; drop rather than emit garbage
			}
			samples = append(samples, sample{labels: labelString(f.labels, labelValues, "", ""), value: value})
		})
		sort.Slice(samples, func(i, j int) bool { return samples[i].labels < samples[j].labels })
		for _, s := range samples {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(s.value)); err != nil {
				return err
			}
		}
		return nil
	}

	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	cellsByKey := make(map[string]*cell, len(keys))
	for _, k := range keys {
		cellsByKey[k] = f.cells[k]
	}
	f.mu.Unlock()
	sort.Strings(keys)

	for _, k := range keys {
		c := cellsByKey[k]
		switch f.typ {
		case counterType:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, c.labelValues, "", ""), c.counter.Value()); err != nil {
				return err
			}
		case gaugeType:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, c.labelValues, "", ""), formatValue(c.gauge.Value())); err != nil {
				return err
			}
		case histogramType:
			h := c.hist
			var cum int64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, c.labelValues, "le", formatValue(bound)), cum); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.bounds)].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, c.labelValues, "le", "+Inf"), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, c.labelValues, "", ""), formatValue(h.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, c.labelValues, "", ""), h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler returns an http.Handler serving the registry as GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = io.WriteString(w, b.String())
	})
}
