package obs

import "context"

// Context threading: the server middleware attaches the request ID and
// trace to the request context; pipeline code deep in the worker pool
// retrieves them without new plumbing through every signature.

type ctxKey int

const (
	ridKey ctxKey = iota
	traceKey
)

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey, id)
}

// RequestIDFrom returns the request ID attached to ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridKey).(string)
	return id
}

// WithTrace returns a context carrying the request trace.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey, t)
}

// TraceFrom returns the trace attached to ctx; nil (a valid no-op trace
// target) when absent.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}
