package gate

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"accqoc/internal/cmat"
)

func mustU(t *testing.T, n Name, params ...float64) *cmat.Matrix {
	t.Helper()
	u, err := Unitary(n, params)
	if err != nil {
		t.Fatalf("Unitary(%s): %v", n, err)
	}
	return u
}

func TestAllGatesAreUnitary(t *testing.T) {
	for name, spec := range specs {
		params := make([]float64, spec.Params)
		for i := range params {
			params[i] = 0.3 * float64(i+1)
		}
		u, err := Unitary(name, params)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !cmat.IsUnitary(u, 1e-12) {
			t.Errorf("%s is not unitary", name)
		}
		if u.Rows != 1<<spec.Qubits {
			t.Errorf("%s: dim %d, want %d", name, u.Rows, 1<<spec.Qubits)
		}
	}
}

func TestPauliAlgebra(t *testing.T) {
	x, y, z := mustU(t, X), mustU(t, Y), mustU(t, Z)
	// XY = iZ
	if !cmat.Mul(x, y).EqualApprox(cmat.Scale(1i, z), 1e-12) {
		t.Fatal("XY != iZ")
	}
	// X² = I
	if !cmat.Mul(x, x).EqualApprox(cmat.Identity(2), 1e-12) {
		t.Fatal("X² != I")
	}
	// HXH = Z
	h := mustU(t, H)
	if !cmat.MulChain(h, x, h).EqualApprox(z, 1e-12) {
		t.Fatal("HXH != Z")
	}
}

func TestPhaseGateRelations(t *testing.T) {
	s, sdg := mustU(t, S), mustU(t, Sdg)
	tt, tdg := mustU(t, T), mustU(t, Tdg)
	if !cmat.Mul(s, sdg).EqualApprox(cmat.Identity(2), 1e-12) {
		t.Fatal("S·S† != I")
	}
	// T² = S
	if !cmat.Mul(tt, tt).EqualApprox(s, 1e-12) {
		t.Fatal("T² != S")
	}
	if !cmat.Mul(tdg, tdg).EqualApprox(sdg, 1e-12) {
		t.Fatal("T†² != S†")
	}
}

func TestRotationsMatchUFamily(t *testing.T) {
	theta, phi, lambda := 0.7, 1.1, -0.4
	// u1(λ) = diag(1, e^{iλ})
	u1g := mustU(t, U1, lambda)
	if cmplx.Abs(u1g.At(1, 1)-cmplx.Exp(complex(0, lambda))) > 1e-12 {
		t.Fatal("u1 wrong")
	}
	// u3(θ,0,0) = Ry(θ)
	if !mustU(t, U3, theta, 0, 0).EqualApprox(mustU(t, RY, theta), 1e-12) {
		t.Fatal("u3(θ,0,0) != Ry(θ)")
	}
	// u2(φ,λ) = u3(π/2,φ,λ)
	if !mustU(t, U2, phi, lambda).EqualApprox(mustU(t, U3, math.Pi/2, phi, lambda), 1e-12) {
		t.Fatal("u2 != u3(π/2,·,·)")
	}
	// rz(θ) equals u1(θ) up to global phase e^{−iθ/2}.
	rz := mustU(t, RZ, theta)
	u1t := mustU(t, U1, theta)
	ph := cmplx.Exp(complex(0, -theta/2))
	if !rz.EqualApprox(cmat.Scale(ph, u1t), 1e-12) {
		t.Fatal("rz != e^{−iθ/2}·u1")
	}
}

func TestCXTruthTable(t *testing.T) {
	cx := mustU(t, CX)
	// Basis |c t⟩ with control first: |10⟩ → |11⟩, |11⟩ → |10⟩.
	cases := map[int]int{0: 0, 1: 1, 2: 3, 3: 2}
	for in, out := range cases {
		for r := 0; r < 4; r++ {
			want := complex128(0)
			if r == out {
				want = 1
			}
			if cx.At(r, in) != want {
				t.Fatalf("CX[%d][%d] = %v, want %v", r, in, cx.At(r, in), want)
			}
		}
	}
}

func TestSwapViaThreeCX(t *testing.T) {
	// SWAP = CX(0,1)·CX(1,0)·CX(0,1) with the second CX reversed via
	// embedding.
	cx01 := Embed(mustU(t, CX), []int{0, 1}, 2)
	cx10 := Embed(mustU(t, CX), []int{1, 0}, 2)
	got := cmat.MulChain(cx01, cx10, cx01)
	if !got.EqualApprox(mustU(t, Swap), 1e-12) {
		t.Fatal("three CXs do not make a SWAP")
	}
}

func TestCCXDecompositionMatchesUnitary(t *testing.T) {
	ccx := MustInstance(CCX, []int{0, 1, 2})
	seq := DecomposeCCX(ccx)
	if len(seq) != 15 {
		t.Fatalf("CCX decomposition has %d gates, want 15 (paper Fig. 2)", len(seq))
	}
	acc := cmat.Identity(8)
	for _, g := range seq {
		u, err := g.Unitary()
		if err != nil {
			t.Fatal(err)
		}
		acc = cmat.Mul(Embed(u, g.Qubits, 3), acc)
	}
	want := mustU(t, CCX)
	// Compare up to global phase via trace overlap.
	d := complex(8, 0)
	overlap := cmplx.Abs(cmat.Trace(cmat.Mul(cmat.Dagger(want), acc))) / real(d)
	if math.Abs(overlap-1) > 1e-10 {
		t.Fatalf("CCX decomposition overlap = %v, want 1", overlap)
	}
}

func TestDecomposeNonCCXPassthrough(t *testing.T) {
	g := MustInstance(H, []int{3})
	out := DecomposeCCX(g)
	if len(out) != 1 || out[0].Name != H {
		t.Fatal("non-CCX should pass through")
	}
}

func TestEmbedSingleQubit(t *testing.T) {
	x := mustU(t, X)
	// X on qubit 1 of 2: |q0 q1⟩, flips the low bit.
	full := Embed(x, []int{1}, 2)
	want := cmat.Kron(cmat.Identity(2), x)
	if !full.EqualApprox(want, 1e-12) {
		t.Fatal("Embed(X, q1) != I⊗X")
	}
	full0 := Embed(x, []int{0}, 2)
	want0 := cmat.Kron(x, cmat.Identity(2))
	if !full0.EqualApprox(want0, 1e-12) {
		t.Fatal("Embed(X, q0) != X⊗I")
	}
}

func TestEmbedReversedControl(t *testing.T) {
	cx := mustU(t, CX)
	// CX with control=1, target=0 in a 2-qubit system: flips MSB when LSB=1.
	rev := Embed(cx, []int{1, 0}, 2)
	// |01⟩ (index 1) → |11⟩ (index 3).
	if rev.At(3, 1) != 1 || rev.At(1, 1) != 0 {
		t.Fatalf("reversed CX wrong:\n%v", rev)
	}
}

func TestEmbedPreservesUnitarity(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		u := cmat.RandomUnitary(r, 4)
		full := Embed(u, []int{2, 0}, 3)
		return cmat.IsUnitary(full, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance("bogus", []int{0}, nil); err == nil {
		t.Fatal("unknown gate accepted")
	}
	if _, err := NewInstance(CX, []int{0}, nil); err == nil {
		t.Fatal("wrong qubit count accepted")
	}
	if _, err := NewInstance(CX, []int{1, 1}, nil); err == nil {
		t.Fatal("repeated qubit accepted")
	}
	if _, err := NewInstance(RZ, []int{0}, nil); err == nil {
		t.Fatal("missing parameter accepted")
	}
	if _, err := NewInstance(X, []int{-1}, nil); err == nil {
		t.Fatal("negative qubit accepted")
	}
	g, err := NewInstance(RZ, []int{5}, []float64{1.5})
	if err != nil {
		t.Fatal(err)
	}
	if g.String() != "rz(1.5) q[5]" {
		t.Fatalf("String = %q", g.String())
	}
}

func TestInstanceIsDeepCopy(t *testing.T) {
	qs := []int{0, 1}
	g, err := NewInstance(CX, qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	qs[0] = 9
	if g.Qubits[0] == 9 {
		t.Fatal("Instance aliases caller's qubit slice")
	}
}

func TestUnitaryErrors(t *testing.T) {
	if _, err := Unitary("nope", nil); err == nil {
		t.Fatal("unknown gate")
	}
	if _, err := Unitary(RZ, nil); err == nil {
		t.Fatal("missing params")
	}
}
