// Package gate defines the quantum gate vocabulary used throughout the
// AccQOC pipeline: names, arities, parameter counts, exact unitary matrices
// and the standard Toffoli decomposition into hardware-basic gates.
//
// Conventions: qubit 0 is the most significant bit of a basis-state index,
// matching the Kronecker ordering |q0⟩ ⊗ |q1⟩ ⊗ …. For two-qubit gates the
// first operand is the control (where applicable).
package gate

import (
	"fmt"
	"math"
	"math/cmplx"

	"accqoc/internal/cmat"
)

// Name identifies a gate type. Names follow OpenQASM 2.0 / qelib1.inc.
type Name string

// The supported gate vocabulary.
const (
	I    Name = "id"
	X    Name = "x"
	Y    Name = "y"
	Z    Name = "z"
	H    Name = "h"
	S    Name = "s"
	Sdg  Name = "sdg"
	T    Name = "t"
	Tdg  Name = "tdg"
	RX   Name = "rx"
	RY   Name = "ry"
	RZ   Name = "rz"
	U1   Name = "u1"
	U2   Name = "u2"
	U3   Name = "u3"
	CX   Name = "cx"
	CZ   Name = "cz"
	Swap Name = "swap"
	CCX  Name = "ccx"
)

// Spec describes the static properties of a gate type.
type Spec struct {
	Qubits int // operand count
	Params int // parameter count
}

var specs = map[Name]Spec{
	I: {1, 0}, X: {1, 0}, Y: {1, 0}, Z: {1, 0}, H: {1, 0},
	S: {1, 0}, Sdg: {1, 0}, T: {1, 0}, Tdg: {1, 0},
	RX: {1, 1}, RY: {1, 1}, RZ: {1, 1},
	U1: {1, 1}, U2: {1, 2}, U3: {1, 3},
	CX: {2, 0}, CZ: {2, 0}, Swap: {2, 0},
	CCX: {3, 0},
}

// Lookup returns the Spec for a gate name and whether the name is known.
func Lookup(n Name) (Spec, bool) {
	s, ok := specs[n]
	return s, ok
}

// Known reports whether n is in the supported vocabulary.
func Known(n Name) bool {
	_, ok := specs[n]
	return ok
}

// Unitary returns the exact unitary matrix of the gate with the given
// parameters. The matrix is 2^q × 2^q where q is the gate's operand count.
// It returns an error for unknown names or wrong parameter counts.
func Unitary(n Name, params []float64) (*cmat.Matrix, error) {
	spec, ok := specs[n]
	if !ok {
		return nil, fmt.Errorf("gate: unknown gate %q", n)
	}
	if len(params) != spec.Params {
		return nil, fmt.Errorf("gate: %s takes %d parameter(s), got %d", n, spec.Params, len(params))
	}
	p := func(i int) float64 { return params[i] }
	switch n {
	case I:
		return cmat.Identity(2), nil
	case X:
		return cmat.FromRows([][]complex128{{0, 1}, {1, 0}}), nil
	case Y:
		return cmat.FromRows([][]complex128{{0, -1i}, {1i, 0}}), nil
	case Z:
		return cmat.FromRows([][]complex128{{1, 0}, {0, -1}}), nil
	case H:
		s := complex(1/math.Sqrt2, 0)
		return cmat.FromRows([][]complex128{{s, s}, {s, -s}}), nil
	case S:
		return cmat.FromRows([][]complex128{{1, 0}, {0, 1i}}), nil
	case Sdg:
		return cmat.FromRows([][]complex128{{1, 0}, {0, -1i}}), nil
	case T:
		return cmat.FromRows([][]complex128{{1, 0}, {0, cmplx.Exp(complex(0, math.Pi/4))}}), nil
	case Tdg:
		return cmat.FromRows([][]complex128{{1, 0}, {0, cmplx.Exp(complex(0, -math.Pi/4))}}), nil
	case RX:
		c, s := math.Cos(p(0)/2), math.Sin(p(0)/2)
		return cmat.FromRows([][]complex128{
			{complex(c, 0), complex(0, -s)},
			{complex(0, -s), complex(c, 0)},
		}), nil
	case RY:
		c, s := math.Cos(p(0)/2), math.Sin(p(0)/2)
		return cmat.FromRows([][]complex128{
			{complex(c, 0), complex(-s, 0)},
			{complex(s, 0), complex(c, 0)},
		}), nil
	case RZ:
		return cmat.FromRows([][]complex128{
			{cmplx.Exp(complex(0, -p(0)/2)), 0},
			{0, cmplx.Exp(complex(0, p(0)/2))},
		}), nil
	case U1:
		return cmat.FromRows([][]complex128{{1, 0}, {0, cmplx.Exp(complex(0, p(0)))}}), nil
	case U2:
		return u3(math.Pi/2, p(0), p(1)), nil
	case U3:
		return u3(p(0), p(1), p(2)), nil
	case CX:
		return cmat.FromRows([][]complex128{
			{1, 0, 0, 0},
			{0, 1, 0, 0},
			{0, 0, 0, 1},
			{0, 0, 1, 0},
		}), nil
	case CZ:
		return cmat.FromRows([][]complex128{
			{1, 0, 0, 0},
			{0, 1, 0, 0},
			{0, 0, 1, 0},
			{0, 0, 0, -1},
		}), nil
	case Swap:
		return cmat.FromRows([][]complex128{
			{1, 0, 0, 0},
			{0, 0, 1, 0},
			{0, 1, 0, 0},
			{0, 0, 0, 1},
		}), nil
	case CCX:
		m := cmat.Identity(8)
		// |110⟩ ↔ |111⟩ with qubit 0 as MSB: indices 6 and 7.
		m.Set(6, 6, 0)
		m.Set(7, 7, 0)
		m.Set(6, 7, 1)
		m.Set(7, 6, 1)
		return m, nil
	}
	return nil, fmt.Errorf("gate: unitary for %q not implemented", n)
}

// u3 is the IBM generic single-qubit rotation:
// U3(θ,φ,λ) = [[cos(θ/2), −e^{iλ}sin(θ/2)], [e^{iφ}sin(θ/2), e^{i(φ+λ)}cos(θ/2)]].
func u3(theta, phi, lambda float64) *cmat.Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return cmat.FromRows([][]complex128{
		{c, -cmplx.Exp(complex(0, lambda)) * s},
		{cmplx.Exp(complex(0, phi)) * s, cmplx.Exp(complex(0, phi+lambda)) * c},
	})
}

// Instance is a gate applied to concrete qubits. It is the element type of
// circuits and groups across the pipeline.
type Instance struct {
	Name   Name
	Qubits []int
	Params []float64
}

// NewInstance validates operands against the gate's Spec and returns an
// Instance.
func NewInstance(n Name, qubits []int, params []float64) (Instance, error) {
	spec, ok := specs[n]
	if !ok {
		return Instance{}, fmt.Errorf("gate: unknown gate %q", n)
	}
	if len(qubits) != spec.Qubits {
		return Instance{}, fmt.Errorf("gate: %s takes %d qubit(s), got %d", n, spec.Qubits, len(qubits))
	}
	if len(params) != spec.Params {
		return Instance{}, fmt.Errorf("gate: %s takes %d parameter(s), got %d", n, spec.Params, len(params))
	}
	seen := map[int]bool{}
	for _, q := range qubits {
		if q < 0 {
			return Instance{}, fmt.Errorf("gate: negative qubit %d", q)
		}
		if seen[q] {
			return Instance{}, fmt.Errorf("gate: repeated qubit %d in %s", q, n)
		}
		seen[q] = true
	}
	return Instance{Name: n, Qubits: append([]int(nil), qubits...), Params: append([]float64(nil), params...)}, nil
}

// MustInstance is NewInstance that panics on error; for tests and
// hand-written circuit literals.
func MustInstance(n Name, qubits []int, params ...float64) Instance {
	g, err := NewInstance(n, qubits, params)
	if err != nil {
		panic(err)
	}
	return g
}

// Unitary returns the instance's gate matrix (local, 2^q × 2^q).
func (g Instance) Unitary() (*cmat.Matrix, error) {
	return Unitary(g.Name, g.Params)
}

// String renders the instance in QASM-like syntax: "cx q[0],q[1]".
func (g Instance) String() string {
	s := string(g.Name)
	if len(g.Params) > 0 {
		s += "("
		for i, p := range g.Params {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprintf("%g", p)
		}
		s += ")"
	}
	s += " "
	for i, q := range g.Qubits {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("q[%d]", q)
	}
	return s
}

// DecomposeCCX expands a Toffoli gate on (a, b, c) into the standard
// 15-gate basic sequence (2 H, 6 CX, 4 T, 3 Tdg) — the decomposition the
// paper's Figure 2 refers to. Non-CCX instances are returned unchanged.
func DecomposeCCX(g Instance) []Instance {
	if g.Name != CCX {
		return []Instance{g}
	}
	a, b, c := g.Qubits[0], g.Qubits[1], g.Qubits[2]
	seq := []Instance{
		MustInstance(H, []int{c}),
		MustInstance(CX, []int{b, c}),
		MustInstance(Tdg, []int{c}),
		MustInstance(CX, []int{a, c}),
		MustInstance(T, []int{c}),
		MustInstance(CX, []int{b, c}),
		MustInstance(Tdg, []int{c}),
		MustInstance(CX, []int{a, c}),
		MustInstance(T, []int{b}),
		MustInstance(T, []int{c}),
		MustInstance(H, []int{c}),
		MustInstance(CX, []int{a, b}),
		MustInstance(T, []int{a}),
		MustInstance(Tdg, []int{b}),
		MustInstance(CX, []int{a, b}),
	}
	return seq
}

// Embed lifts a k-qubit gate matrix to an n-qubit unitary acting on the
// given qubit positions (identity elsewhere). qubits[0] is the most
// significant local bit of the small matrix.
func Embed(small *cmat.Matrix, qubits []int, n int) *cmat.Matrix {
	k := len(qubits)
	if small.Rows != 1<<k || small.Cols != 1<<k {
		panic(fmt.Sprintf("gate: Embed: matrix %dx%d does not match %d qubits", small.Rows, small.Cols, k))
	}
	dim := 1 << n
	out := cmat.New(dim, dim)
	// Bit position of qubit q in an n-qubit index (qubit 0 = MSB).
	bitpos := make([]int, k)
	for i, q := range qubits {
		if q < 0 || q >= n {
			panic(fmt.Sprintf("gate: Embed: qubit %d out of range [0,%d)", q, n))
		}
		bitpos[i] = n - 1 - q
	}
	for row := 0; row < dim; row++ {
		// Extract the local row index and the invariant remainder bits.
		var localRow, rest int
		rest = row
		for i, bp := range bitpos {
			bit := (row >> bp) & 1
			localRow |= bit << (k - 1 - i)
			rest &^= 1 << bp
		}
		for localCol := 0; localCol < 1<<k; localCol++ {
			v := small.Data[localRow*small.Cols+localCol]
			if v == 0 {
				continue
			}
			col := rest
			for i, bp := range bitpos {
				bit := (localCol >> (k - 1 - i)) & 1
				col |= bit << bp
			}
			out.Data[row*dim+col] = v
		}
	}
	return out
}
