// Package devreg is the device registry of the serving stack: the layer
// that turns a single-device, frozen-calibration pulse server into the
// fleet-scale, recalibration-surviving system the paper's premise demands.
// AccQOC's whole motivation (§I, §II-E) is that superconducting hardware
// is recalibrated frequently and every recalibration invalidates all
// compiled pulses — so the serving system must treat "device + calibration
// epoch" as the cache key universe, not "device".
//
// The registry holds named device profiles (topology + Hamiltonian
// parameters) and a monotonically increasing calibration epoch per device.
// Each (device, epoch) pair owns its own namespace: a libstore.Store, a
// seedindex.Index kept coherent through the store's mutation hook, and an
// accqoc.Compiler configured for that epoch's physics. Compile requests
// resolve a device name to its current namespace; a calibration event
// opens a new epoch whose recompilation plan re-trains the old epoch's
// covered groups most-requested-first, each seeded by its own old-epoch
// pulse (the warm-start thesis applied across recalibrations). The old
// epoch drains — in-flight requests keep their namespace — and is retired
// once its reference count reaches zero.
package devreg

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"accqoc"
	"accqoc/internal/circuit"
	"accqoc/internal/cmat"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/libstore"
	"accqoc/internal/precompile"
	"accqoc/internal/seedindex"
	"accqoc/internal/similarity"
	"accqoc/internal/topology"
	"accqoc/internal/usage"
)

// Profile is one device's identity at one calibration epoch: the coupling
// topology (whose Calibration field carries the timing/error model) plus
// the Hamiltonian parameters GRAPE optimizes under.
type Profile struct {
	// Name is the registry name clients route with ("melbourne",
	// "linear5"); it is not part of the fingerprint, so renaming a device
	// does not invalidate its snapshots.
	Name   string
	Device *topology.Device
	Ham    hamiltonian.Config
}

// Fingerprint digests the physics a pulse library is valid for: device
// topology, calibration, and Hamiltonian parameters. Two profiles with
// equal fingerprints can exchange pulses; any drift in calibration or
// Hamiltonian produces a new fingerprint (and therefore a new epoch's
// worth of training). Stamped into snapshot headers by the server.
func (p Profile) Fingerprint() string {
	h := sha256.New()
	d := p.Device
	fmt.Fprintf(h, "topology=%s/%d edges=%v\n", d.Name, d.NumQubits, d.Edges)
	c := d.Calibration
	fmt.Fprintf(h, "cal=%v,%v,%v,%v,%v,%v,%v\n",
		c.T1ns, c.T2ns, c.CXLatencyNs, c.Gate1QLatencyNs, c.FrameLatencyNs, c.CXError, c.Gate1QError)
	m := p.Ham.Normalize()
	fmt.Fprintf(h, "ham=%v,%v,%v\n", m.MaxAmp, m.Coupling, m.Detuning)
	return "aqfp1:" + hex.EncodeToString(h.Sum(nil)[:16])
}

// Config assembles a Registry.
type Config struct {
	// Base is the compiler option template. Device and Precompile.Ham are
	// overridden per namespace; everything else (policy, mapping, GRAPE
	// budgets) is shared across devices and epochs.
	Base accqoc.Options
	// StoreOptions configure each namespace's pulse store.
	StoreOptions libstore.Options
	// DisableSeedIndex turns off per-namespace seed indexes. Without an
	// index a calibration event still opens a new epoch, but there is no
	// recompilation plan (the index is where each entry's training target
	// is cached) — misses simply train cold in the new epoch.
	DisableSeedIndex bool
	// SeedObserver, when set, is installed on every namespace's seed index
	// (seedindex.Index.SetObserver): it sees each nearest-seed lookup's
	// candidate distance and admission verdict — the observability tap for
	// the fleet-wide seed-distance histogram.
	SeedObserver func(distance float64, admitted bool)
	// DisableUsage turns off per-device cost-and-usage ledgers. With a
	// ledger on, every epoch's store hook additionally feeds the device's
	// usage.Ledger; the ledger outlives epochs, so cost history survives
	// recalibrations.
	DisableUsage bool
	// Usage tunes the per-device ledgers (history-ring size, pair cap).
	Usage usage.Options
	// CachePolicy selects every namespace store's eviction victim policy:
	// PolicyLRU (or empty — the default, byte-identical to the historical
	// behavior) or PolicyCostAware, which evicts the lowest
	// iterations×hits score as measured by the device's usage ledger and
	// therefore requires usage accounting.
	CachePolicy string
	// EnablePrefetch retains per-device training targets (TargetCache)
	// past eviction so the speculative-training driver can re-train
	// predicted misses. Without a seed index targets are never learned and
	// prefetch has nothing to train from.
	EnablePrefetch bool
	// PrefetchTargetCap bounds each device's target cache. Default 1024.
	PrefetchTargetCap int
}

// Cache policy names accepted by Config.CachePolicy.
const (
	PolicyLRU       = "lru"
	PolicyCostAware = "cost"
)

// Namespace is one (device, epoch) serving context. Fields are immutable
// after construction; Store and Seeds are internally synchronized.
type Namespace struct {
	// DeviceName is the registry name, Epoch the calibration epoch this
	// namespace belongs to (0 = boot).
	DeviceName string
	Epoch      int
	Profile    Profile
	// Comp is the pipeline front end configured for this epoch's physics.
	Comp *accqoc.Compiler
	// Store is the epoch's pulse library.
	Store *libstore.Store
	// Seeds is the epoch's warm-start index, nil when disabled. During a
	// roll its parent link points at the previous epoch's index.
	Seeds *seedindex.Index
	// CreatedAt is when the namespace (the calibration epoch) opened —
	// the anchor for epoch-age gauges.
	CreatedAt time.Time
	// Usage is the owning device's cost ledger (shared across this
	// device's epochs), nil when disabled. The training tier files each
	// resolved request's key set here; store mutations and lookups feed it
	// through the store hook.
	Usage *usage.Ledger
	// Targets is the owning device's retained-training-target cache (the
	// prefetcher's work source), nil unless prefetch is enabled. Shared
	// across the device's epochs like the ledger.
	Targets *TargetCache

	dev      *deviceState
	refs     atomic.Int64
	retiring atomic.Bool
}

// Plan runs the namespace compiler's front end and canonical-key pass for
// one program — the circuit-serving entry point. It touches neither the
// store nor the index (no training, no counters), so a plan can be built
// outside the worker pool and resolved against the namespace later; the
// (device, epoch) physics are baked into the namespace's compiler.
func (ns *Namespace) Plan(prog *circuit.Circuit) (*accqoc.GroupPlan, error) {
	return ns.Comp.PlanGroups(prog)
}

// SimilarityFn returns the similarity function this namespace plans and
// seeds with.
func (ns *Namespace) SimilarityFn() similarity.Func {
	fn := ns.Comp.Options().Precompile.Similarity
	if fn == "" {
		fn = similarity.TraceFid
	}
	return fn
}

// Release drops the reference taken by Registry.Acquire (or held by a
// Roll). A retiring namespace whose last reference is released is removed
// from its device and the successor epoch's cross-epoch seed link is cut.
func (ns *Namespace) Release() {
	if ns == nil {
		return
	}
	if ns.refs.Add(-1) == 0 && ns.retiring.Load() {
		ns.dev.maybeRetire(ns)
	}
}

// Refs reports the live reference count (used by status and tests).
func (ns *Namespace) Refs() int64 { return ns.refs.Load() }

// RollStatus is the progress of a device's most recent (or in-flight)
// cross-epoch recompilation.
type RollStatus struct {
	// Active is true from the calibration event until the pipeline and
	// the epoch swap have fully completed.
	Active bool `json:"active"`
	// Epoch is the epoch being (or last) rolled to.
	Epoch int `json:"epoch"`
	// Planned counts the old-epoch entries scheduled for re-training,
	// most-requested-first. Done/Skipped/Failed partition the processed
	// ones: Skipped entries were already covered in the new epoch (a
	// serving-path miss got there first), Failed ones did not converge.
	Planned int `json:"planned"`
	Done    int `json:"done"`
	Skipped int `json:"skipped"`
	Failed  int `json:"failed"`
	// WarmSeeded counts re-trainings that started from their old-epoch
	// pulse (the cross-epoch warm start); Iterations sums their GRAPE
	// iterations.
	WarmSeeded int `json:"warm_seeded"`
	Iterations int `json:"iterations"`
}

// Pending returns the plan items not yet processed.
func (r RollStatus) Pending() int {
	p := r.Planned - r.Done - r.Skipped - r.Failed
	if p < 0 {
		p = 0
	}
	return p
}

// DeviceStatus is a point-in-time view of one registered device.
type DeviceStatus struct {
	Name        string `json:"name"`
	Topology    string `json:"topology"`
	Qubits      int    `json:"qubits"`
	Epoch       int    `json:"epoch"`
	Entries     int    `json:"entries"`
	Fingerprint string `json:"fingerprint"`
	// EpochAgeSeconds is the time since the current epoch's namespace
	// opened — a long age on a frequently recalibrated device means the
	// calibration feed has gone quiet.
	EpochAgeSeconds float64 `json:"epoch_age_seconds"`
	// Draining reports a previous epoch still alive under in-flight
	// references, and DrainingRefs its reference count.
	Draining     bool           `json:"draining,omitempty"`
	DrainingRefs int64          `json:"draining_refs,omitempty"`
	Library      libstore.Stats `json:"library"`
	Recompile    RollStatus     `json:"recompile"`
}

type deviceState struct {
	mu       sync.Mutex
	name     string
	current  *Namespace
	draining *Namespace
	roll     RollStatus
	// usage is the device's cost ledger, nil when disabled. It lives on
	// the device, not the namespace: calibration epochs come and go, the
	// accumulated cost history stays (keys are content addresses shared
	// across epochs).
	usage *usage.Ledger
	// policy is the device's cost-aware eviction policy (nil under pure
	// LRU); like the ledger it scores, it is epoch-stable and installed on
	// every epoch's store.
	policy *libstore.CostAwarePolicy
	// targets retains training targets past eviction for the prefetcher,
	// nil when prefetch is off. Epoch-stable: unitaries are
	// calibration-independent.
	targets *TargetCache
}

func (d *deviceState) maybeRetire(ns *Namespace) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining == ns && ns.refs.Load() == 0 {
		d.draining = nil
		// The old epoch is gone: cut the successor's cross-epoch seed
		// link so retired pulses stop competing as seeds.
		if d.current != nil && d.current.Seeds != nil {
			d.current.Seeds.SetParent(nil)
		}
	}
}

// Registry is the concurrent device registry. All methods are safe for
// concurrent use.
type Registry struct {
	cfg Config

	mu      sync.RWMutex
	devices map[string]*deviceState
	order   []string
	def     string
}

// New builds a registry holding the default device, whose epoch-0 library
// is store (nil creates a fresh one — e.g. a snapshot-preloaded store
// adopted from the server config). The default profile's Device falls
// back to the Base options' device (or Melbourne) and its Name to
// "default".
func New(cfg Config, def Profile, store *libstore.Store) (*Registry, error) {
	if def.Name == "" {
		def.Name = "default"
	}
	if def.Device == nil {
		def.Device = cfg.Base.Device
	}
	if def.Device == nil {
		def.Device = topology.Melbourne()
	}
	r := &Registry{cfg: cfg, devices: map[string]*deviceState{}}
	if err := r.register(def, store); err != nil {
		return nil, err
	}
	r.def = def.Name
	return r, nil
}

// DefaultName returns the name requests with an empty device field route
// to.
func (r *Registry) DefaultName() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.def
}

// Register adds a device profile at epoch 0 with an empty library.
// Registering an existing name is an error.
func (r *Registry) Register(p Profile) error { return r.register(p, nil) }

func (r *Registry) register(p Profile, store *libstore.Store) error {
	if p.Name == "" {
		return fmt.Errorf("devreg: device profile needs a name")
	}
	if p.Device == nil {
		return fmt.Errorf("devreg: device %q has no topology", p.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.devices[p.Name]; ok {
		return fmt.Errorf("devreg: device %q already registered", p.Name)
	}
	d := &deviceState{name: p.Name}
	if !r.cfg.DisableUsage {
		d.usage = usage.NewLedger(r.cfg.Usage)
	}
	switch r.cfg.CachePolicy {
	case "", PolicyLRU:
	case PolicyCostAware:
		if d.usage == nil {
			return fmt.Errorf("devreg: cache policy %q requires usage accounting", PolicyCostAware)
		}
		d.policy = libstore.CostAware(d.usage)
	default:
		return fmt.Errorf("devreg: unknown cache policy %q (want %q or %q)", r.cfg.CachePolicy, PolicyLRU, PolicyCostAware)
	}
	if r.cfg.EnablePrefetch {
		d.targets = NewTargetCache(r.cfg.PrefetchTargetCap)
	}
	d.current = r.newNamespace(d, p, 0, nil, store)
	r.devices[p.Name] = d
	r.order = append(r.order, p.Name)
	return nil
}

// Current returns a device's current-epoch namespace ("" = default)
// without taking a reference — for inspection (stats endpoints, shutdown
// snapshot saves). Serving paths must use Acquire/Release so a retiring
// epoch outlives their requests.
func (r *Registry) Current(name string) (*Namespace, error) {
	r.mu.RLock()
	if name == "" {
		name = r.def
	}
	d, ok := r.devices[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("devreg: unknown device %q", name)
	}
	d.mu.Lock()
	ns := d.current
	d.mu.Unlock()
	return ns, nil
}

// newNamespace wires one (device, epoch) serving context: compiler, store,
// and (unless disabled) a hook-coherent seed index whose parent is the
// previous epoch's index.
func (r *Registry) newNamespace(d *deviceState, p Profile, epoch int, parent *seedindex.Index, store *libstore.Store) *Namespace {
	opts := r.cfg.Base
	opts.Device = p.Device
	opts.Precompile.Ham = p.Ham
	if store == nil {
		store = libstore.New(r.cfg.StoreOptions)
	}
	ns := &Namespace{
		DeviceName: d.name,
		Epoch:      epoch,
		Profile:    p,
		Comp:       accqoc.New(opts),
		Store:      store,
		CreatedAt:  time.Now(),
		Usage:      d.usage,
		Targets:    d.targets,
		dev:        d,
	}
	if d.policy != nil {
		store.SetEvictionPolicy(d.policy)
	}
	var seeds *seedindex.Index
	if !r.cfg.DisableSeedIndex {
		seeds = seedindex.New(ns.SimilarityFn(), p.Ham)
		seeds.SetParent(parent)
		if r.cfg.SeedObserver != nil {
			seeds.SetObserver(r.cfg.SeedObserver)
		}
	}
	// Hook first, backfill second: entries racing in between are
	// delivered twice (idempotent in both the index and the ledger),
	// never missed. The tee keeps the seed index and the device's usage
	// ledger coherent off one registration; access (hit/miss) events
	// reach only the ledger.
	var hooks []libstore.Hook
	if seeds != nil {
		hooks = append(hooks, seeds)
	}
	if d.usage != nil {
		hooks = append(hooks, d.usage)
	}
	if d.targets != nil && seeds != nil {
		// After the seed index on purpose: the recorder reads the unitary
		// the index just cached for the same EntryAdded.
		hooks = append(hooks, &targetRecorder{seeds: seeds, targets: d.targets})
	}
	if hook := libstore.TeeHooks(hooks...); hook != nil {
		store.SetHook(hook)
		snap := store.Snapshot()
		if seeds != nil {
			seeds.AddLibrary(snap)
		}
		if d.usage != nil {
			d.usage.AddLibrary(snap)
		}
	}
	ns.Seeds = seeds
	return ns
}

// Acquire resolves a device name ("" = default) to its current-epoch
// namespace and takes a reference on it. Callers must Release when done;
// the reference keeps a retiring epoch alive until its last request
// drains.
func (r *Registry) Acquire(name string) (*Namespace, error) {
	r.mu.RLock()
	if name == "" {
		name = r.def
	}
	d, ok := r.devices[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("devreg: unknown device %q", name)
	}
	d.mu.Lock()
	ns := d.current
	ns.refs.Add(1)
	d.mu.Unlock()
	return ns, nil
}

// UsageLedger resolves a device name ("" = default) to its cost ledger.
// The ledger is per-device and epoch-stable, so the returned pointer stays
// valid across calibrations; it is nil when usage accounting is disabled.
func (r *Registry) UsageLedger(name string) (*usage.Ledger, error) {
	r.mu.RLock()
	if name == "" {
		name = r.def
	}
	d, ok := r.devices[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("devreg: unknown device %q", name)
	}
	return d.usage, nil
}

// EvictionPolicy resolves a device name ("" = default) to its cost-aware
// eviction policy, nil when the registry runs pure LRU. Like the ledger it
// scores with, the policy is per-device and epoch-stable.
func (r *Registry) EvictionPolicy(name string) (*libstore.CostAwarePolicy, error) {
	r.mu.RLock()
	if name == "" {
		name = r.def
	}
	d, ok := r.devices[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("devreg: unknown device %q", name)
	}
	return d.policy, nil
}

// Names returns the registered device names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Status reports every registered device in registration order.
func (r *Registry) Status() []DeviceStatus {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	devs := make([]*deviceState, 0, len(names))
	for _, n := range names {
		devs = append(devs, r.devices[n])
	}
	r.mu.RUnlock()
	out := make([]DeviceStatus, 0, len(devs))
	for _, d := range devs {
		d.mu.Lock()
		ns := d.current
		st := DeviceStatus{
			Name:            d.name,
			Topology:        ns.Profile.Device.Name,
			Qubits:          ns.Profile.Device.NumQubits,
			Epoch:           ns.Epoch,
			Fingerprint:     ns.Profile.Fingerprint(),
			EpochAgeSeconds: time.Since(ns.CreatedAt).Seconds(),
			Recompile:       d.roll,
		}
		if d.draining != nil {
			st.Draining = true
			st.DrainingRefs = d.draining.refs.Load()
		}
		d.mu.Unlock()
		// Store stats outside the device lock: they take shard locks.
		st.Library = ns.Store.Stats()
		st.Entries = st.Library.Entries
		out = append(out, st)
	}
	return out
}

// CalibrationUpdate describes a recalibration event: explicit new
// parameters, a relative drift, or both (explicit values win). This is
// also the wire format of POST /v1/devices/{name}/calibrate.
type CalibrationUpdate struct {
	// Calibration, when set, wholesale-replaces the device timing/error
	// model.
	Calibration *topology.Calibration `json:"calibration,omitempty"`
	// Hamiltonian, when set, wholesale-replaces the Hamiltonian
	// parameters (zero fields select model defaults).
	Hamiltonian *hamiltonian.Config `json:"hamiltonian,omitempty"`
	// DriftPct scales the current calibration and Hamiltonian by
	// (1 + pct/100) — the "everything moved a little after recalibration"
	// model. Applied before the explicit overrides.
	DriftPct float64 `json:"drift_pct,omitempty"`
}

func (u CalibrationUpdate) empty() bool {
	return u.Calibration == nil && u.Hamiltonian == nil && u.DriftPct == 0
}

// apply derives the next epoch's profile from the current one, rejecting
// physically meaningless results. A partial JSON calibration body zeroes
// every unspecified field — Calibration.Validate catches that instead of
// letting a free-gate, divide-by-zero-decoherence epoch go live.
func (u CalibrationUpdate) apply(p Profile) (Profile, error) {
	cal := p.Device.Calibration
	ham := p.Ham
	if u.DriftPct != 0 {
		cal = cal.Drift(u.DriftPct)
		ham = ham.Drift(u.DriftPct)
	}
	if u.Calibration != nil {
		cal = *u.Calibration
	}
	if u.Hamiltonian != nil {
		ham = *u.Hamiltonian
	}
	if err := cal.Validate(); err != nil {
		return Profile{}, fmt.Errorf("devreg: calibration update: %w", err)
	}
	// Zero Hamiltonian fields re-select the model defaults (documented),
	// but negative control parameters are never meaningful.
	if ham.MaxAmp < 0 || ham.Coupling < 0 {
		return Profile{}, fmt.Errorf("devreg: calibration update: negative Hamiltonian parameters (max_amp=%v coupling=%v)", ham.MaxAmp, ham.Coupling)
	}
	p.Device = p.Device.WithCalibration(cal)
	p.Ham = ham
	return p, nil
}

// Apply derives the profile a CalibrationUpdate produces, validating it —
// used by the server binary to reconstruct the current epoch's physics
// from a -calibration-file at boot, so a restart after a recalibration
// matches the fingerprint its shutdown snapshot was stamped with.
func (u CalibrationUpdate) Apply(p Profile) (Profile, error) { return u.apply(p) }

// RecompItem is one unit of the cross-epoch recompilation plan: an
// old-epoch entry (the warm-start seed), its cached training target, and
// the key it re-covers in the new epoch.
type RecompItem struct {
	Key     string
	Old     *precompile.Entry
	Unitary *cmat.Matrix
}

// Roll is an open calibration epoch transition. The caller (the server's
// background pipeline) re-trains Plan into New most-requested-first, then
// calls Finish. Old and New each hold a reference until Finish.
type Roll struct {
	Device string
	Epoch  int
	Old    *Namespace
	New    *Namespace
	// Plan lists the old epoch's covered entries ordered by per-entry hit
	// count descending — the most-requested pulses are re-trained first so
	// the hot set warms fastest.
	Plan []RecompItem

	dev  *deviceState
	once sync.Once
}

// Calibrate opens a new calibration epoch for a device: it applies the
// update to the device's profile, creates the new epoch's namespace (empty
// store, seed index parented on the old epoch's), swaps it in as current,
// and returns the recompilation plan over the old epoch's covered entries.
// Serving never blocks: requests acquired before the swap finish against
// the old namespace; new requests miss into the new epoch's cold/MST path
// until the roll re-covers their groups.
func (r *Registry) Calibrate(name string, u CalibrationUpdate) (*Roll, error) {
	if u.empty() {
		return nil, fmt.Errorf("devreg: empty calibration update (set calibration, hamiltonian, or drift_pct)")
	}
	r.mu.RLock()
	if name == "" {
		name = r.def
	}
	d, ok := r.devices[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("devreg: unknown device %q", name)
	}

	d.mu.Lock()
	old := d.current
	p, aerr := u.apply(old.Profile)
	if aerr != nil {
		d.mu.Unlock()
		return nil, aerr
	}

	// Cap the cross-epoch chain at depth one: if an even older epoch is
	// still draining it is beyond seeding usefulness now — cut the old
	// epoch's parent link and let the stale namespace drain unobserved.
	if old.Seeds != nil {
		old.Seeds.SetParent(nil)
	}
	old.retiring.Store(true)

	var parent *seedindex.Index
	if old.Seeds != nil {
		parent = old.Seeds
	}
	epoch := old.Epoch + 1
	next := r.newNamespace(d, p, epoch, parent, nil)
	d.draining = old
	d.current = next

	// Build the plan while holding the device lock so the epoch counter,
	// roll status, and plan are consistent; the store and index snapshots
	// below take only their own locks.
	roll := &Roll{Device: name, Epoch: epoch, Old: old, New: next, dev: d}
	old.refs.Add(1)
	next.refs.Add(1)
	if old.Seeds != nil {
		lib := old.Store.Snapshot()
		for _, key := range old.Store.KeysByHits() {
			e := lib.Entries[key]
			if e == nil || e.Pulse == nil {
				continue
			}
			tgt, ok := old.Seeds.Unitary(key)
			if !ok {
				// Not indexed (e.g. no physical model for its size):
				// nothing to retrain toward; the group re-trains on first
				// miss instead.
				continue
			}
			roll.Plan = append(roll.Plan, RecompItem{Key: key, Old: e, Unitary: tgt})
		}
	}
	d.roll = RollStatus{Active: true, Epoch: epoch, Planned: len(roll.Plan)}
	d.mu.Unlock()
	return roll, nil
}

// Note records one processed plan item on the device's roll status.
func (roll *Roll) Note(skipped, failed, seeded bool, iterations int) {
	d := roll.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.roll.Epoch != roll.Epoch {
		return // a newer roll took over the status
	}
	switch {
	case skipped:
		d.roll.Skipped++
	case failed:
		d.roll.Failed++
	default:
		d.roll.Done++
	}
	if seeded {
		d.roll.WarmSeeded++
	}
	d.roll.Iterations += iterations
}

// Status returns the roll's device-level progress snapshot.
func (roll *Roll) Status() RollStatus {
	d := roll.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.roll
}

// Superseded reports whether a newer calibration has taken over the
// device: the remaining plan would train into an epoch that is already
// draining, so drivers should abandon it (Finish releases the
// references and lets the obsolete epoch retire).
func (roll *Roll) Superseded() bool {
	d := roll.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.roll.Epoch != roll.Epoch
}

// Finish closes the roll: marks it inactive and drops the references on
// both namespaces, which retires the old epoch once its last in-flight
// request drains. Idempotent.
func (roll *Roll) Finish() {
	roll.once.Do(func() {
		d := roll.dev
		d.mu.Lock()
		if d.roll.Epoch == roll.Epoch {
			d.roll.Active = false
		}
		d.mu.Unlock()
		roll.Old.Release()
		roll.New.Release()
	})
}
