package devreg

import (
	"testing"

	"accqoc"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/libstore"
	"accqoc/internal/precompile"
	"accqoc/internal/qasm"
	"accqoc/internal/topology"
)

func fastBase() accqoc.Options {
	return accqoc.Options{
		Device: topology.Linear(3),
		Policy: grouping.Map2b4l,
		Precompile: precompile.Config{
			Grape:    grape.Options{TargetInfidelity: 1e-2, MaxIterations: 300, Seed: 1},
			Search1Q: grape.SearchOptions{MinDuration: 10, MaxDuration: 120, Resolution: 20},
			Search2Q: grape.SearchOptions{MinDuration: 200, MaxDuration: 1400, Resolution: 200},
		},
	}
}

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := New(Config{Base: fastBase()}, Profile{Name: "lin3", Device: topology.Linear(3)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFingerprintSensitivity(t *testing.T) {
	p := Profile{Name: "a", Device: topology.Linear(3)}
	base := p.Fingerprint()
	if base == "" {
		t.Fatal("empty fingerprint")
	}
	// The registry name is routing, not physics: renaming must not change
	// the fingerprint.
	renamed := Profile{Name: "b", Device: topology.Linear(3)}
	if renamed.Fingerprint() != base {
		t.Fatal("fingerprint depends on the registry name")
	}
	// A different topology, a drifted calibration, and a drifted
	// Hamiltonian must each change it.
	if (Profile{Name: "a", Device: topology.Linear(4)}).Fingerprint() == base {
		t.Fatal("fingerprint blind to topology")
	}
	cal := Profile{Name: "a", Device: topology.Linear(3).WithCalibration(topology.MelbourneCalibration().Drift(2))}
	if cal.Fingerprint() == base {
		t.Fatal("fingerprint blind to calibration drift")
	}
	ham := Profile{Name: "a", Device: topology.Linear(3), Ham: hamiltonian.Config{}.Drift(2)}
	if ham.Fingerprint() == base {
		t.Fatal("fingerprint blind to Hamiltonian drift")
	}
	// Zero-value and explicit-default Hamiltonians are the same physics.
	expl := Profile{Name: "a", Device: topology.Linear(3), Ham: hamiltonian.Config{}.Normalize()}
	if expl.Fingerprint() != base {
		t.Fatal("zero-value and normalized default Hamiltonians fingerprint differently")
	}
}

func TestRegisterAcquireRelease(t *testing.T) {
	r := newTestRegistry(t)
	if r.DefaultName() != "lin3" {
		t.Fatalf("default name %q", r.DefaultName())
	}
	if err := r.Register(Profile{Name: "lin3", Device: topology.Linear(3)}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := r.Register(Profile{Name: "lin5", Device: topology.Linear(5)}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Acquire("nope"); err == nil {
		t.Fatal("unknown device acquired")
	}
	ns, err := r.Acquire("") // default
	if err != nil {
		t.Fatal(err)
	}
	if ns.DeviceName != "lin3" || ns.Epoch != 0 {
		t.Fatalf("default namespace %s@%d", ns.DeviceName, ns.Epoch)
	}
	if ns.Refs() != 1 {
		t.Fatalf("refs %d after acquire", ns.Refs())
	}
	ns.Release()
	if ns.Refs() != 0 {
		t.Fatalf("refs %d after release", ns.Refs())
	}
	st := r.Status()
	if len(st) != 2 || st[0].Name != "lin3" || st[1].Name != "lin5" {
		t.Fatalf("status %+v", st)
	}
	if st[0].Fingerprint == st[1].Fingerprint {
		t.Fatal("different topologies share a fingerprint")
	}
}

// trainInto trains every group of a program into the namespace's store,
// as the serving path would.
func trainInto(t *testing.T, ns *Namespace, src string) []string {
	t.Helper()
	prog, err := qasm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := ns.Comp.Prepare(prog)
	if err != nil {
		t.Fatal(err)
	}
	uniq, err := grouping.Deduplicate(prep.Grouping.Groups)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, u := range uniq {
		e, terr := precompile.TrainGroup(u, ns.Comp.Options().Precompile, nil)
		if terr != nil {
			t.Fatal(terr)
		}
		ns.Store.Put(e)
		keys = append(keys, u.Key)
	}
	return keys
}

const twoRxProgram = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nrx(0.5) q[0];\nrx(1.3) q[1];\n"

func TestCalibrateOpensEpochWithPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	r := newTestRegistry(t)
	ns, err := r.Acquire("")
	if err != nil {
		t.Fatal(err)
	}
	keys := trainInto(t, ns, twoRxProgram)
	if len(keys) != 2 {
		t.Fatalf("want 2 trained groups, got %d", len(keys))
	}
	// Make keys[1] the hotter entry so the plan must lead with it.
	for i := 0; i < 3; i++ {
		if _, ok := ns.Store.Get(keys[1]); !ok {
			t.Fatal("trained key missing")
		}
	}
	ns.Release()

	if _, err := r.Calibrate("", CalibrationUpdate{}); err == nil {
		t.Fatal("empty calibration update accepted")
	}
	roll, err := r.Calibrate("", CalibrationUpdate{DriftPct: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer roll.Finish()
	if roll.Epoch != 1 || roll.Old != ns || roll.New == roll.Old {
		t.Fatalf("roll %+v", roll)
	}
	if len(roll.Plan) != 2 {
		t.Fatalf("plan has %d items, want 2", len(roll.Plan))
	}
	if roll.Plan[0].Key != keys[1] {
		t.Fatalf("plan not most-requested-first: got %q first, want %q", roll.Plan[0].Key, keys[1])
	}
	for _, it := range roll.Plan {
		if it.Old == nil || it.Old.Pulse == nil || it.Unitary == nil {
			t.Fatalf("plan item incomplete: %+v", it)
		}
	}
	// The new epoch's physics drifted; its fingerprint must differ.
	if roll.New.Profile.Fingerprint() == roll.Old.Profile.Fingerprint() {
		t.Fatal("calibration drift did not change the fingerprint")
	}
	// The new namespace is current; its store is empty and its seed index
	// chains to the old epoch's.
	cur, err := r.Acquire("")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Release()
	if cur != roll.New || cur.Epoch != 1 {
		t.Fatalf("current is %s@%d, want the rolled namespace", cur.DeviceName, cur.Epoch)
	}
	if cur.Store.Len() != 0 {
		t.Fatalf("new epoch store has %d entries, want 0", cur.Store.Len())
	}
	if cur.Seeds.Parent() != roll.Old.Seeds {
		t.Fatal("new epoch's seed index not parented on the old epoch's")
	}
	st := r.Status()
	if !st[0].Draining || st[0].Epoch != 1 || !st[0].Recompile.Active || st[0].Recompile.Planned != 2 {
		t.Fatalf("status during roll: %+v", st[0])
	}
}

func TestRetireOnDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	r := newTestRegistry(t)
	old, err := r.Acquire("")
	if err != nil {
		t.Fatal(err)
	}
	trainInto(t, old, twoRxProgram)

	roll, err := r.Calibrate("", CalibrationUpdate{DriftPct: -1.5})
	if err != nil {
		t.Fatal(err)
	}
	// The roll and the in-flight request each hold a reference; finishing
	// the roll alone must not retire the old epoch.
	roll.Finish()
	if st := r.Status(); !st[0].Draining {
		t.Fatal("old epoch retired while a request still holds it")
	}
	cur, err := r.Acquire("")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Release()
	if cur.Seeds.Parent() == nil {
		t.Fatal("cross-epoch seed link missing while old epoch drains")
	}
	// Last in-flight request drains: the old epoch retires and the
	// cross-epoch seed link is cut.
	old.Release()
	if st := r.Status(); st[0].Draining {
		t.Fatal("old epoch still draining after last reference released")
	}
	if cur.Seeds.Parent() != nil {
		t.Fatal("cross-epoch seed link not cut at retirement")
	}
}

func TestCalibrateExplicitParams(t *testing.T) {
	r := newTestRegistry(t)
	ns, _ := r.Acquire("")
	ns.Release()
	newCal := topology.MelbourneCalibration()
	newCal.CXLatencyNs = 500
	newHam := hamiltonian.Config{MaxAmp: 0.07, Coupling: 0.003}
	roll, err := r.Calibrate("", CalibrationUpdate{Calibration: &newCal, Hamiltonian: &newHam})
	if err != nil {
		t.Fatal(err)
	}
	defer roll.Finish()
	got := roll.New.Profile
	if got.Device.Calibration.CXLatencyNs != 500 {
		t.Fatalf("calibration not applied: %+v", got.Device.Calibration)
	}
	if got.Ham.MaxAmp != 0.07 || got.Ham.Coupling != 0.003 {
		t.Fatalf("hamiltonian not applied: %+v", got.Ham)
	}
	// The compiler the namespace serves with must carry the new physics.
	if roll.New.Comp.Options().Device.Calibration.CXLatencyNs != 500 {
		t.Fatal("namespace compiler still carries the old calibration")
	}
	if roll.New.Comp.Options().Precompile.Ham.MaxAmp != 0.07 {
		t.Fatal("namespace compiler still carries the old Hamiltonian")
	}
}

// TestCalibrateRejectsInvalidUpdates pins the guard against partial JSON
// bodies: an explicit Calibration replaces the whole struct, so
// unspecified fields arrive zeroed and must be rejected, not served.
func TestCalibrateRejectsInvalidUpdates(t *testing.T) {
	r := newTestRegistry(t)
	partial := topology.Calibration{CXLatencyNs: 120} // everything else zero
	if _, err := r.Calibrate("", CalibrationUpdate{Calibration: &partial}); err == nil {
		t.Fatal("zeroed calibration accepted (free gates, T1=0)")
	}
	negHam := hamiltonian.Config{MaxAmp: -0.1}
	if _, err := r.Calibrate("", CalibrationUpdate{Hamiltonian: &negHam}); err == nil {
		t.Fatal("negative Hamiltonian accepted")
	}
	// A rejected update must not advance the epoch.
	ns, _ := r.Acquire("")
	defer ns.Release()
	if ns.Epoch != 0 {
		t.Fatalf("rejected update advanced epoch to %d", ns.Epoch)
	}
	// Apply round-trips a valid absolute update (the boot-time
	// -calibration-file path).
	p, err := CalibrationUpdate{DriftPct: 2}.Apply(ns.Profile)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fingerprint() == ns.Profile.Fingerprint() {
		t.Fatal("Apply produced identical physics for a nonzero drift")
	}
}

// TestRollSuperseded pins the abandon signal: once a newer calibration
// lands, the older roll reports superseded and its Note calls stop
// mutating the device's roll status.
func TestRollSuperseded(t *testing.T) {
	r := newTestRegistry(t)
	roll1, err := r.Calibrate("", CalibrationUpdate{DriftPct: 1})
	if err != nil {
		t.Fatal(err)
	}
	if roll1.Superseded() {
		t.Fatal("fresh roll reports superseded")
	}
	roll2, err := r.Calibrate("", CalibrationUpdate{DriftPct: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer roll2.Finish()
	if !roll1.Superseded() {
		t.Fatal("older roll does not report superseded")
	}
	before := roll2.Status()
	roll1.Note(false, false, true, 100)
	if after := roll2.Status(); after != before {
		t.Fatalf("superseded roll mutated the live status: %+v → %+v", before, after)
	}
	roll1.Finish()
}

func TestDisabledSeedIndexRollHasNoPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	r, err := New(Config{Base: fastBase(), DisableSeedIndex: true},
		Profile{Name: "lin3", Device: topology.Linear(3)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ns, _ := r.Acquire("")
	trainInto(t, ns, twoRxProgram)
	ns.Release()
	roll, err := r.Calibrate("", CalibrationUpdate{DriftPct: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer roll.Finish()
	if roll.New.Seeds != nil || len(roll.Plan) != 0 {
		t.Fatalf("disabled index produced seeds=%v plan=%d", roll.New.Seeds, len(roll.Plan))
	}
}

func TestRegistryAdoptsPreloadedStore(t *testing.T) {
	store := libstore.New(libstore.Options{})
	r, err := New(Config{Base: fastBase()}, Profile{Name: "lin3", Device: topology.Linear(3)}, store)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := r.Current("")
	if err != nil {
		t.Fatal(err)
	}
	if ns.Store != store {
		t.Fatal("default namespace did not adopt the provided store")
	}
}
