package devreg

// The target cache is the memory the speculative-training driver works
// from: to re-train a predicted miss the prefetcher needs the key's
// training target (its canonical group unitary), but the seed index drops
// a key's cached unitary when the store evicts it — exactly the moment
// prefetch becomes interesting. TargetCache retains those targets past
// eviction, per device and across epochs (a group's unitary is gate
// semantics, independent of calibration — the same reuse RecompItem makes
// across an epoch roll).
//
// Deliberately cached: key, size, unitary, and the last trained latency
// (the pulse-duration search hint). Deliberately NOT cached: the pulse.
// Resurrecting evicted pulses would turn the cache into a second library
// behind the capacity bound's back; a prefetched key re-trains like any
// miss, warm-seeded from the live seed index at best.

import (
	"container/list"
	"sync"

	"accqoc/internal/cmat"
	"accqoc/internal/precompile"
	"accqoc/internal/seedindex"
)

// Target is one retained training target.
type Target struct {
	Key       string
	NumQubits int
	Unitary   *cmat.Matrix
	// LatencyNs is the latency of the last pulse trained for the key — the
	// duration-search hint for a re-training, exactly as an epoch roll
	// seeds it from the old entry.
	LatencyNs float64
}

// TargetCache is a bounded LRU of training targets. All methods are safe
// for concurrent use.
type TargetCache struct {
	mu    sync.Mutex
	cap   int
	items map[string]*list.Element // value: *Target
	lru   *list.List               // front = most recently put/got
}

// NewTargetCache returns an empty cache holding at most cap targets
// (cap <= 0 selects 1024).
func NewTargetCache(cap int) *TargetCache {
	if cap <= 0 {
		cap = 1024
	}
	return &TargetCache{cap: cap, items: map[string]*list.Element{}, lru: list.New()}
}

// Put inserts or refreshes a target under its key.
func (t *TargetCache) Put(tg *Target) {
	if tg == nil || tg.Key == "" || tg.Unitary == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.items[tg.Key]; ok {
		el.Value = tg
		t.lru.MoveToFront(el)
		return
	}
	t.items[tg.Key] = t.lru.PushFront(tg)
	for t.lru.Len() > t.cap {
		oldest := t.lru.Back()
		t.lru.Remove(oldest)
		delete(t.items, oldest.Value.(*Target).Key)
	}
}

// Get returns the target for a key, refreshing its recency.
func (t *TargetCache) Get(key string) (*Target, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.items[key]
	if !ok {
		return nil, false
	}
	t.lru.MoveToFront(el)
	return el.Value.(*Target), true
}

// Len returns the retained target count.
func (t *TargetCache) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.items)
}

// targetRecorder is the store hook feeding the cache. It must sit in the
// tee AFTER the seed index: EntryAdded callbacks run in tee order under
// the same shard lock, so by the time the recorder asks, the index has
// already cached the entry's unitary. Removals are ignored on purpose —
// outliving eviction is the cache's whole job.
type targetRecorder struct {
	seeds   *seedindex.Index
	targets *TargetCache
}

func (t *targetRecorder) EntryAdded(e *precompile.Entry) {
	if u, ok := t.seeds.Unitary(e.Key); ok {
		t.targets.Put(&Target{Key: e.Key, NumQubits: e.NumQubits, Unitary: u, LatencyNs: e.LatencyNs})
	}
}

func (t *targetRecorder) EntryRemoved(key string) {}
