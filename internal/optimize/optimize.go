// Package optimize provides the gradient-based optimizers GRAPE needs:
// gradient descent, ADAM, BFGS and L-BFGS with a strong-Wolfe line search —
// the menu the paper lists in §IV-D (it selects BFGS). All methods minimize
// a smooth objective over ℝⁿ and stop on a target cost, gradient tolerance,
// iteration cap or wall-clock budget.
package optimize

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Objective is a smooth function with gradient. Gradient fills grad (which
// has len(x)) and returns the cost at x, so single-pass implementations can
// share work between value and derivative.
type Objective interface {
	Evaluate(x []float64) float64
	Gradient(x, grad []float64) float64
}

// Method names an optimizer.
type Method string

// Supported methods.
const (
	GD    Method = "gd"
	ADAM  Method = "adam"
	BFGS  Method = "bfgs"
	LBFGS Method = "l-bfgs"
)

// Options controls a run. Zero values select documented defaults.
type Options struct {
	MaxIterations int           // default 500
	TargetCost    float64       // stop when cost ≤ TargetCost (default 0: disabled)
	GradTol       float64       // stop when ‖∇f‖∞ ≤ GradTol (default 1e-9)
	TimeBudget    time.Duration // wall-clock cap (default: none). Mirrors the paper's 600 s budget knob.
	LearningRate  float64       // GD/ADAM step size (default 0.1)
	Memory        int           // L-BFGS history (default 10)
	// IterHook, when set, is called after every accepted iteration with
	// the iteration index, the new cost, and the step norm ‖x_{k+1}−x_k‖.
	// It must be fast and must not retain its arguments; a nil hook costs
	// a single pointer check per iteration (the step norm is only
	// computed when a hook is installed).
	IterHook func(iter int, cost, stepNorm float64)
}

func (o Options) withDefaults() Options {
	if o.MaxIterations == 0 {
		o.MaxIterations = 500
	}
	if o.GradTol == 0 {
		o.GradTol = 1e-9
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.1
	}
	if o.Memory == 0 {
		o.Memory = 10
	}
	return o
}

// Result reports a finished run.
type Result struct {
	X          []float64
	Cost       float64
	Iterations int
	FuncEvals  int
	Converged  bool   // TargetCost or GradTol reached
	Reason     string // human-readable stop reason
}

// ErrUnknownMethod is returned by Minimize for unsupported method names.
var ErrUnknownMethod = errors.New("optimize: unknown method")

// Minimize dispatches on method.
func Minimize(method Method, obj Objective, x0 []float64, opts Options) (*Result, error) {
	switch method {
	case GD:
		return GradientDescent(obj, x0, opts), nil
	case ADAM:
		return Adam(obj, x0, opts), nil
	case BFGS:
		return MinimizeBFGS(obj, x0, opts), nil
	case LBFGS:
		return MinimizeLBFGS(obj, x0, opts), nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownMethod, method)
	}
}

type runState struct {
	opts      Options
	deadline  time.Time
	hasBudget bool
	evals     int
}

func newRunState(opts Options) *runState {
	s := &runState{opts: opts}
	if opts.TimeBudget > 0 {
		s.deadline = time.Now().Add(opts.TimeBudget)
		s.hasBudget = true
	}
	return s
}

func (s *runState) expired() bool {
	return s.hasBudget && time.Now().After(s.deadline)
}

func infNorm(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// GradientDescent is plain steepest descent with a fixed learning rate and
// halving backtracking when a step increases the cost.
func GradientDescent(obj Objective, x0 []float64, opts Options) *Result {
	opts = opts.withDefaults()
	st := newRunState(opts)
	n := len(x0)
	x := append([]float64(nil), x0...)
	grad := make([]float64, n)
	trial := make([]float64, n)
	cost := obj.Gradient(x, grad)
	st.evals++

	for iter := 0; iter < opts.MaxIterations; iter++ {
		if cost <= opts.TargetCost {
			return &Result{X: x, Cost: cost, Iterations: iter, FuncEvals: st.evals, Converged: true, Reason: "target cost reached"}
		}
		if infNorm(grad) <= opts.GradTol {
			return &Result{X: x, Cost: cost, Iterations: iter, FuncEvals: st.evals, Converged: true, Reason: "gradient tolerance reached"}
		}
		if st.expired() {
			return &Result{X: x, Cost: cost, Iterations: iter, FuncEvals: st.evals, Reason: "time budget exhausted"}
		}
		step := opts.LearningRate
		var trialCost float64
		for k := 0; ; k++ {
			for i := range trial {
				trial[i] = x[i] - step*grad[i]
			}
			trialCost = obj.Evaluate(trial)
			st.evals++
			if trialCost < cost || k >= 30 {
				break
			}
			step /= 2
		}
		if trialCost >= cost {
			return &Result{X: x, Cost: cost, Iterations: iter, FuncEvals: st.evals, Reason: "no descent step found"}
		}
		if opts.IterHook != nil {
			// trial − x = −step·grad, so the step norm is step·‖grad‖₂.
			opts.IterHook(iter, trialCost, step*norm2(grad))
		}
		copy(x, trial)
		cost = obj.Gradient(x, grad)
		st.evals++
	}
	return &Result{X: x, Cost: cost, Iterations: opts.MaxIterations, FuncEvals: st.evals, Reason: "iteration cap"}
}

// Adam implements the ADAM optimizer (Kingma & Ba 2015) with the usual
// β1=0.9, β2=0.999 moments.
func Adam(obj Objective, x0 []float64, opts Options) *Result {
	opts = opts.withDefaults()
	st := newRunState(opts)
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	n := len(x0)
	x := append([]float64(nil), x0...)
	m := make([]float64, n)
	v := make([]float64, n)
	grad := make([]float64, n)
	cost := obj.Gradient(x, grad)
	st.evals++

	for iter := 0; iter < opts.MaxIterations; iter++ {
		if cost <= opts.TargetCost {
			return &Result{X: x, Cost: cost, Iterations: iter, FuncEvals: st.evals, Converged: true, Reason: "target cost reached"}
		}
		if infNorm(grad) <= opts.GradTol {
			return &Result{X: x, Cost: cost, Iterations: iter, FuncEvals: st.evals, Converged: true, Reason: "gradient tolerance reached"}
		}
		if st.expired() {
			return &Result{X: x, Cost: cost, Iterations: iter, FuncEvals: st.evals, Reason: "time budget exhausted"}
		}
		t := float64(iter + 1)
		var stepSq float64
		for i := 0; i < n; i++ {
			m[i] = beta1*m[i] + (1-beta1)*grad[i]
			v[i] = beta2*v[i] + (1-beta2)*grad[i]*grad[i]
			mh := m[i] / (1 - math.Pow(beta1, t))
			vh := v[i] / (1 - math.Pow(beta2, t))
			d := opts.LearningRate * mh / (math.Sqrt(vh) + eps)
			x[i] -= d
			if opts.IterHook != nil {
				stepSq += d * d
			}
		}
		cost = obj.Gradient(x, grad)
		st.evals++
		if opts.IterHook != nil {
			opts.IterHook(iter, cost, math.Sqrt(stepSq))
		}
	}
	return &Result{X: x, Cost: cost, Iterations: opts.MaxIterations, FuncEvals: st.evals, Reason: "iteration cap"}
}
