package optimize

import (
	"math"
	"testing"
	"time"
)

// quadratic: f(x) = Σ cᵢ(xᵢ−aᵢ)², minimum at a.
type quadratic struct {
	a, c []float64
}

func (q quadratic) Evaluate(x []float64) float64 {
	var f float64
	for i := range x {
		d := x[i] - q.a[i]
		f += q.c[i] * d * d
	}
	return f
}

func (q quadratic) Gradient(x, grad []float64) float64 {
	var f float64
	for i := range x {
		d := x[i] - q.a[i]
		f += q.c[i] * d * d
		grad[i] = 2 * q.c[i] * d
	}
	return f
}

// rosenbrock: the classic banana function, minimum 0 at (1,1).
type rosenbrock struct{}

func (rosenbrock) Evaluate(x []float64) float64 {
	a := 1 - x[0]
	b := x[1] - x[0]*x[0]
	return a*a + 100*b*b
}

func (rosenbrock) Gradient(x, grad []float64) float64 {
	a := 1 - x[0]
	b := x[1] - x[0]*x[0]
	grad[0] = -2*a - 400*x[0]*b
	grad[1] = 200 * b
	return a*a + 100*b*b
}

func methods() []Method { return []Method{GD, ADAM, BFGS, LBFGS} }

func TestAllMethodsQuadratic(t *testing.T) {
	q := quadratic{a: []float64{1, -2, 3}, c: []float64{1, 4, 0.5}}
	for _, m := range methods() {
		res, err := Minimize(m, q, []float64{0, 0, 0}, Options{MaxIterations: 3000, GradTol: 1e-10, LearningRate: 0.05})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Cost > 1e-8 {
			t.Errorf("%s: cost %v after %d iters (%s)", m, res.Cost, res.Iterations, res.Reason)
		}
		for i, want := range q.a {
			if math.Abs(res.X[i]-want) > 1e-3 {
				t.Errorf("%s: x[%d] = %v, want %v", m, i, res.X[i], want)
			}
		}
	}
}

func TestBFGSRosenbrock(t *testing.T) {
	res := MinimizeBFGS(rosenbrock{}, []float64{-1.2, 1}, Options{MaxIterations: 200, GradTol: 1e-10})
	if res.Cost > 1e-10 {
		t.Fatalf("BFGS on Rosenbrock: cost %v after %d iters (%s)", res.Cost, res.Iterations, res.Reason)
	}
	if math.Abs(res.X[0]-1) > 1e-4 || math.Abs(res.X[1]-1) > 1e-4 {
		t.Fatalf("BFGS did not reach (1,1): %v", res.X)
	}
	if res.Iterations > 100 {
		t.Errorf("BFGS took %d iterations on Rosenbrock; expected superlinear convergence", res.Iterations)
	}
}

func TestLBFGSRosenbrock(t *testing.T) {
	res := MinimizeLBFGS(rosenbrock{}, []float64{-1.2, 1}, Options{MaxIterations: 300, GradTol: 1e-10})
	if res.Cost > 1e-9 {
		t.Fatalf("L-BFGS on Rosenbrock: cost %v (%s)", res.Cost, res.Reason)
	}
}

func TestBFGSBeatsGDOnIllConditioned(t *testing.T) {
	q := quadratic{a: []float64{1, 1}, c: []float64{1, 1000}}
	opts := Options{MaxIterations: 500, GradTol: 1e-12, LearningRate: 0.0005}
	gd := GradientDescent(q, []float64{0, 0}, opts)
	bf := MinimizeBFGS(q, []float64{0, 0}, opts)
	if bf.Iterations >= gd.Iterations && gd.Converged {
		t.Errorf("BFGS (%d iters) should beat GD (%d iters) on ill-conditioned quadratic",
			bf.Iterations, gd.Iterations)
	}
	if bf.Cost > 1e-10 {
		t.Fatalf("BFGS cost %v", bf.Cost)
	}
}

func TestTargetCostStopsEarly(t *testing.T) {
	q := quadratic{a: []float64{5}, c: []float64{1}}
	res := MinimizeBFGS(q, []float64{0}, Options{MaxIterations: 100, TargetCost: 1e-3})
	if !res.Converged {
		t.Fatalf("expected convergence: %s", res.Reason)
	}
	if res.Cost > 1e-3 {
		t.Fatalf("cost %v above target", res.Cost)
	}
}

func TestIterationCap(t *testing.T) {
	res := Adam(rosenbrock{}, []float64{-1.2, 1}, Options{MaxIterations: 3, LearningRate: 1e-4})
	if res.Iterations != 3 || res.Converged {
		t.Fatalf("expected iteration cap at 3: %+v", res)
	}
}

func TestTimeBudget(t *testing.T) {
	// A 1 ns budget expires immediately.
	res := MinimizeBFGS(rosenbrock{}, []float64{-1.2, 1}, Options{MaxIterations: 100000, TimeBudget: time.Nanosecond})
	if res.Reason != "time budget exhausted" {
		t.Fatalf("reason = %q", res.Reason)
	}
}

func TestUnknownMethod(t *testing.T) {
	if _, err := Minimize("sgd", rosenbrock{}, []float64{0, 0}, Options{}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestStartAtMinimum(t *testing.T) {
	q := quadratic{a: []float64{2, 3}, c: []float64{1, 1}}
	for _, m := range methods() {
		res, err := Minimize(m, q, []float64{2, 3}, Options{MaxIterations: 50})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || res.Iterations != 0 {
			t.Errorf("%s: starting at the minimum should converge instantly: %+v", m, res)
		}
	}
}

func TestResultDoesNotAliasInput(t *testing.T) {
	q := quadratic{a: []float64{1}, c: []float64{1}}
	x0 := []float64{0}
	res := MinimizeBFGS(q, x0, Options{MaxIterations: 50, GradTol: 1e-12})
	if x0[0] != 0 {
		t.Fatal("optimizer mutated the caller's x0")
	}
	if res.Cost > 1e-10 {
		t.Fatal("did not converge")
	}
}
