package optimize

import "math"

// MinimizeBFGS runs dense BFGS with a strong-Wolfe line search (Nocedal &
// Wright, Algorithms 6.1 + 3.5/3.6). The inverse Hessian approximation
// starts at the identity and is reset whenever the curvature condition
// fails badly.
func MinimizeBFGS(obj Objective, x0 []float64, opts Options) *Result {
	opts = opts.withDefaults()
	st := newRunState(opts)
	n := len(x0)
	x := append([]float64(nil), x0...)
	grad := make([]float64, n)
	cost := obj.Gradient(x, grad)
	st.evals++

	// hInv is the inverse Hessian approximation, row-major n×n.
	hInv := make([]float64, n*n)
	resetH := func() {
		for i := range hInv {
			hInv[i] = 0
		}
		for i := 0; i < n; i++ {
			hInv[i*n+i] = 1
		}
	}
	resetH()

	dir := make([]float64, n)
	xNew := make([]float64, n)
	gradNew := make([]float64, n)
	s := make([]float64, n)
	y := make([]float64, n)
	hy := make([]float64, n)

	for iter := 0; iter < opts.MaxIterations; iter++ {
		if cost <= opts.TargetCost {
			return &Result{X: x, Cost: cost, Iterations: iter, FuncEvals: st.evals, Converged: true, Reason: "target cost reached"}
		}
		if infNorm(grad) <= opts.GradTol {
			return &Result{X: x, Cost: cost, Iterations: iter, FuncEvals: st.evals, Converged: true, Reason: "gradient tolerance reached"}
		}
		if st.expired() {
			return &Result{X: x, Cost: cost, Iterations: iter, FuncEvals: st.evals, Reason: "time budget exhausted"}
		}
		// dir = −H⁻¹·grad
		for i := 0; i < n; i++ {
			var sum float64
			row := hInv[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				sum += row[j] * grad[j]
			}
			dir[i] = -sum
		}
		// Ensure descent; reset H on failure.
		if dot(dir, grad) >= 0 {
			resetH()
			for i := range dir {
				dir[i] = -grad[i]
			}
		}
		alpha, newCost, ok := wolfeLineSearch(obj, st, x, dir, cost, grad, xNew, gradNew)
		if !ok {
			return &Result{X: x, Cost: cost, Iterations: iter, FuncEvals: st.evals, Reason: "line search failed"}
		}
		_ = alpha
		for i := 0; i < n; i++ {
			s[i] = xNew[i] - x[i]
			y[i] = gradNew[i] - grad[i]
		}
		sy := dot(s, y)
		if sy > 1e-12*norm2(s)*norm2(y) {
			updateInverseHessian(hInv, s, y, hy, sy, n)
		} else {
			resetH()
		}
		if opts.IterHook != nil {
			opts.IterHook(iter, newCost, norm2(s))
		}
		copy(x, xNew)
		copy(grad, gradNew)
		cost = newCost
	}
	return &Result{X: x, Cost: cost, Iterations: opts.MaxIterations, FuncEvals: st.evals, Reason: "iteration cap"}
}

// updateInverseHessian applies the BFGS update
// H ← (I − ρ·s·yᵀ)·H·(I − ρ·y·sᵀ) + ρ·s·sᵀ with ρ = 1/(yᵀs), using the
// caller's hy buffer for H·y. The update term is symmetric and H stays
// symmetric, so only the upper triangle is computed and then mirrored.
func updateInverseHessian(hInv, s, y, hy []float64, sy float64, n int) {
	rho := 1 / sy
	for i := 0; i < n; i++ {
		var sum float64
		row := hInv[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			sum += row[j] * y[j]
		}
		hy[i] = sum
	}
	yhy := dot(y, hy)
	// H += ρ²·(yᵀHy)·s·sᵀ + ρ·s·sᵀ − ρ·(s·hyᵀ + hy·sᵀ)
	c1 := rho*rho*yhy + rho
	for i := 0; i < n; i++ {
		si, hyi := s[i], hy[i]
		for j := i; j < n; j++ {
			d := c1*si*s[j] - rho*(si*hy[j]+hyi*s[j])
			hInv[i*n+j] += d
			if i != j {
				hInv[j*n+i] += d
			}
		}
	}
}

// MinimizeLBFGS runs limited-memory BFGS with the two-loop recursion.
func MinimizeLBFGS(obj Objective, x0 []float64, opts Options) *Result {
	opts = opts.withDefaults()
	st := newRunState(opts)
	n := len(x0)
	m := opts.Memory
	x := append([]float64(nil), x0...)
	grad := make([]float64, n)
	cost := obj.Gradient(x, grad)
	st.evals++

	var sHist, yHist [][]float64
	var rhoHist []float64

	dir := make([]float64, n)
	xNew := make([]float64, n)
	gradNew := make([]float64, n)
	alphas := make([]float64, m+1)
	// History slices evicted from the ring are recycled here instead of
	// re-allocated every accepted step.
	var spareS, spareY []float64

	for iter := 0; iter < opts.MaxIterations; iter++ {
		if cost <= opts.TargetCost {
			return &Result{X: x, Cost: cost, Iterations: iter, FuncEvals: st.evals, Converged: true, Reason: "target cost reached"}
		}
		if infNorm(grad) <= opts.GradTol {
			return &Result{X: x, Cost: cost, Iterations: iter, FuncEvals: st.evals, Converged: true, Reason: "gradient tolerance reached"}
		}
		if st.expired() {
			return &Result{X: x, Cost: cost, Iterations: iter, FuncEvals: st.evals, Reason: "time budget exhausted"}
		}
		// Two-loop recursion.
		copy(dir, grad)
		k := len(sHist)
		alphas := alphas[:k]
		for i := k - 1; i >= 0; i-- {
			alphas[i] = rhoHist[i] * dot(sHist[i], dir)
			axpy(dir, -alphas[i], yHist[i])
		}
		if k > 0 {
			gamma := dot(sHist[k-1], yHist[k-1]) / dot(yHist[k-1], yHist[k-1])
			scaleVec(dir, gamma)
		}
		for i := 0; i < k; i++ {
			beta := rhoHist[i] * dot(yHist[i], dir)
			axpy(dir, alphas[i]-beta, sHist[i])
		}
		for i := range dir {
			dir[i] = -dir[i]
		}
		if dot(dir, grad) >= 0 {
			sHist, yHist, rhoHist = nil, nil, nil
			for i := range dir {
				dir[i] = -grad[i]
			}
		}
		_, newCost, ok := wolfeLineSearch(obj, st, x, dir, cost, grad, xNew, gradNew)
		if !ok {
			return &Result{X: x, Cost: cost, Iterations: iter, FuncEvals: st.evals, Reason: "line search failed"}
		}
		s, y := spareS, spareY
		spareS, spareY = nil, nil
		if s == nil {
			s = make([]float64, n)
			y = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			s[i] = xNew[i] - x[i]
			y[i] = gradNew[i] - grad[i]
		}
		if opts.IterHook != nil {
			opts.IterHook(iter, newCost, norm2(s))
		}
		if sy := dot(s, y); sy > 1e-12*norm2(s)*norm2(y) {
			sHist = append(sHist, s)
			yHist = append(yHist, y)
			rhoHist = append(rhoHist, 1/sy)
			if len(sHist) > m {
				spareS, spareY = sHist[0], yHist[0]
				sHist = sHist[1:]
				yHist = yHist[1:]
				rhoHist = rhoHist[1:]
			}
		} else {
			spareS, spareY = s, y
		}
		copy(x, xNew)
		copy(grad, gradNew)
		cost = newCost
	}
	return &Result{X: x, Cost: cost, Iterations: opts.MaxIterations, FuncEvals: st.evals, Reason: "iteration cap"}
}

// wolfeLineSearch finds a step along dir satisfying the strong Wolfe
// conditions (c1 = 1e-4, c2 = 0.9). On success xNew/gradNew hold the new
// point and its gradient, and the new cost is returned.
func wolfeLineSearch(obj Objective, st *runState, x, dir []float64, f0 float64, g0 []float64, xNew, gradNew []float64) (alpha, cost float64, ok bool) {
	const c1, c2 = 1e-4, 0.9
	const maxSteps = 25
	d0 := dot(g0, dir)
	if d0 >= 0 {
		return 0, f0, false
	}
	eval := func(a float64) (float64, float64) {
		for i := range x {
			xNew[i] = x[i] + a*dir[i]
		}
		c := obj.Gradient(xNew, gradNew)
		st.evals++
		return c, dot(gradNew, dir)
	}

	var alphaPrev, fPrev float64 = 0, f0
	alphaCur := 1.0
	var fCur, dCur float64
	for i := 0; i < maxSteps; i++ {
		fCur, dCur = eval(alphaCur)
		if fCur > f0+c1*alphaCur*d0 || (i > 0 && fCur >= fPrev) {
			return zoom(obj, st, x, dir, f0, d0, alphaPrev, fPrev, alphaCur, eval, xNew, gradNew)
		}
		if math.Abs(dCur) <= -c2*d0 {
			return alphaCur, fCur, true
		}
		if dCur >= 0 {
			return zoom(obj, st, x, dir, f0, d0, alphaCur, fCur, alphaPrev, eval, xNew, gradNew)
		}
		alphaPrev, fPrev = alphaCur, fCur
		alphaCur *= 2
	}
	// Accept the last point if it at least decreases the cost.
	if fCur < f0 {
		return alphaCur, fCur, true
	}
	return 0, f0, false
}

// zoom is the interval-refinement phase of the Wolfe search (N&W Alg 3.6).
func zoom(obj Objective, st *runState, x, dir []float64, f0, d0, lo, fLo, hi float64,
	eval func(float64) (float64, float64), xNew, gradNew []float64) (float64, float64, bool) {
	const c1, c2 = 1e-4, 0.9
	for i := 0; i < 30; i++ {
		a := (lo + hi) / 2
		f, d := eval(a)
		if f > f0+c1*a*d0 || f >= fLo {
			hi = a
		} else {
			if math.Abs(d) <= -c2*d0 {
				return a, f, true
			}
			if d*(hi-lo) >= 0 {
				hi = lo
			}
			lo, fLo = a, f
		}
		if math.Abs(hi-lo) < 1e-14 {
			if f < f0 {
				return a, f, true
			}
			break
		}
	}
	// Final attempt: return lo if it improves on f0.
	f, _ := eval(lo)
	if f < f0 {
		return lo, f, true
	}
	return 0, f0, false
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(a []float64) float64 { return math.Sqrt(dot(a, a)) }

func axpy(dst []float64, alpha float64, v []float64) {
	for i := range dst {
		dst[i] += alpha * v[i]
	}
}

func scaleVec(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}
