package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// maxSpecQubits is a plausibility ceiling on generator qubit counts:
// real devices are orders of magnitude smaller, and a runaway value
// would otherwise allocate before any gate budget can intervene.
const maxSpecQubits = 4096

// FromSpec builds a benchmark program from a compact spec string — the
// workload-DSL ingestion path of the compilation server, where clients name
// a generator instead of shipping QASM:
//
//	qft:N                   exact N-qubit QFT
//	named:NAME              a Table II suite program (4gt4-v0, cm152a, ex2,
//	                        f2, qft_10, qft_16)
//	random:QUBITS:GATES:SEED   suite-mix random program
func FromSpec(spec string) (*Program, error) {
	return FromSpecBudget(spec, 0)
}

// FromSpecBudget is FromSpec under a gate budget (0 = unlimited). The
// budget is enforced on the predicted size before anything is generated:
// a few-byte spec like random:4:2000000000:1 must fail fast, not build
// two billion gates first.
func FromSpecBudget(spec string, maxGates int) (*Program, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	switch parts[0] {
	case "qft":
		if len(parts) != 2 {
			return nil, fmt.Errorf("workload: spec %q: want qft:N", spec)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil || n < 1 || n > maxSpecQubits {
			return nil, fmt.Errorf("workload: spec %q: bad qubit count", spec)
		}
		// n Hadamards plus 5 gates (3 rz, 2 cx) per controlled phase.
		predicted := int64(n) + 5*int64(n)*int64(n-1)/2
		if maxGates > 0 && predicted > int64(maxGates) {
			return nil, fmt.Errorf("workload: qft:%d has %d gates, budget is %d", n, predicted, maxGates)
		}
		return QFT(n), nil
	case "named":
		if len(parts) != 2 {
			return nil, fmt.Errorf("workload: spec %q: want named:NAME", spec)
		}
		for _, p := range NamedSuite() {
			if p.Name == parts[1] {
				if n := p.Circuit.GateCount(); maxGates > 0 && n > maxGates {
					return nil, fmt.Errorf("workload: %s has %d gates, budget is %d", p.Name, n, maxGates)
				}
				return p, nil
			}
		}
		return nil, fmt.Errorf("workload: unknown named program %q", parts[1])
	case "random":
		if len(parts) != 4 {
			return nil, fmt.Errorf("workload: spec %q: want random:QUBITS:GATES:SEED", spec)
		}
		qubits, err1 := strconv.Atoi(parts[1])
		gates, err2 := strconv.Atoi(parts[2])
		seed, err3 := strconv.ParseInt(parts[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || qubits < 2 || qubits > maxSpecQubits || gates < 1 {
			return nil, fmt.Errorf("workload: spec %q: bad parameters", spec)
		}
		if maxGates > 0 && gates > maxGates {
			return nil, fmt.Errorf("workload: random spec asks %d gates, budget is %d", gates, maxGates)
		}
		return Random(fmt.Sprintf("random_%d_%d_%d", qubits, gates, seed), qubits, gates, seed)
	default:
		return nil, fmt.Errorf("workload: unknown spec kind %q (want qft|named|random)", parts[0])
	}
}
