package workload

import (
	"math"
	"math/cmplx"
	"testing"

	"accqoc/internal/cmat"
	"accqoc/internal/gate"
)

func TestQFTGateCounts(t *testing.T) {
	p := QFT(10)
	mix := p.Circuit.InstructionMix()
	if mix[gate.H] != 10 {
		t.Fatalf("h = %d, want 10", mix[gate.H])
	}
	if mix[gate.CX] != 90 {
		t.Fatalf("cx = %d, want 90 (Table II)", mix[gate.CX])
	}
	if mix[gate.RZ] != 135 {
		t.Fatalf("rz = %d, want 135", mix[gate.RZ])
	}
}

func TestQFT2MatchesAnalyticMatrix(t *testing.T) {
	// QFT on 2 qubits (no output swap): F[j][k] = ω^{jk}/2 with ω = i,
	// then qubit order reversed. Verify against the circuit unitary by
	// checking the defining property on basis |00⟩ and unitarity plus
	// matrix entries of the bit-reversed DFT.
	p := QFT(2)
	u, err := p.Circuit.Unitary()
	if err != nil {
		t.Fatal(err)
	}
	if !cmat.IsUnitary(u, 1e-10) {
		t.Fatal("QFT circuit not unitary")
	}
	// DFT matrix with bit-reversed row order (standard no-swap QFT).
	omega := cmplx.Exp(complex(0, math.Pi/2)) // e^{2πi/4}
	dft := cmat.New(4, 4)
	for j := 0; j < 4; j++ {
		for k := 0; k < 4; k++ {
			dft.Set(j, k, cmplx.Pow(omega, complex(float64(j*k), 0))/2)
		}
	}
	// Bit reversal on 2 bits swaps indices 1 and 2 (rows).
	rev := cmat.New(4, 4)
	perm := []int{0, 2, 1, 3}
	for i, pi := range perm {
		rev.Set(pi, i, 1)
	}
	want := cmat.Mul(rev, dft)
	d := float64(4)
	overlap := cmplx.Abs(cmat.Trace(cmat.Mul(cmat.Dagger(want), u))) / d
	if math.Abs(overlap-1) > 1e-9 {
		t.Fatalf("QFT(2) does not match bit-reversed DFT: overlap=%v\n%v", overlap, u)
	}
}

func TestSyntheticExactCounts(t *testing.T) {
	counts := map[gate.Name]int{gate.X: 3, gate.CX: 5, gate.T: 2}
	p, err := Synthetic("test", 4, 7, counts)
	if err != nil {
		t.Fatal(err)
	}
	mix := p.Circuit.InstructionMix()
	for n, want := range counts {
		if mix[n] != want {
			t.Fatalf("%s = %d, want %d", n, mix[n], want)
		}
	}
	if p.Circuit.GateCount() != 10 {
		t.Fatalf("total = %d", p.Circuit.GateCount())
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	counts := map[gate.Name]int{gate.H: 4, gate.CX: 4}
	p1, _ := Synthetic("a", 4, 9, counts)
	p2, _ := Synthetic("a", 4, 9, counts)
	if p1.Circuit.GateCount() != p2.Circuit.GateCount() {
		t.Fatal("nondeterministic size")
	}
	for i := range p1.Circuit.Gates {
		g1, g2 := p1.Circuit.Gates[i], p2.Circuit.Gates[i]
		if g1.Name != g2.Name || g1.Qubits[0] != g2.Qubits[0] {
			t.Fatal("nondeterministic content")
		}
	}
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := Synthetic("bad", 1, 1, map[gate.Name]int{gate.CX: 1}); err == nil {
		t.Fatal("1 qubit with CX accepted")
	}
	if _, err := Synthetic("bad", 4, 1, map[gate.Name]int{"bogus": 1}); err == nil {
		t.Fatal("unknown gate accepted")
	}
}

func TestNamedSuiteMatchesTableII(t *testing.T) {
	suite := NamedSuite()
	if len(suite) != 6 {
		t.Fatalf("named suite = %d programs, want 6", len(suite))
	}
	byName := map[string]*Program{}
	for _, p := range suite {
		byName[p.Name] = p
	}
	// cm152a row: x=5 t=304 h=152 cx=532 rz=0 tdg=228 (total 1221).
	cm := byName["cm152a"]
	if cm == nil {
		t.Fatal("cm152a missing")
	}
	mix := cm.Circuit.InstructionMix()
	if mix[gate.T] != 304 || mix[gate.CX] != 532 || mix[gate.Tdg] != 228 || cm.Circuit.GateCount() != 1221 {
		t.Fatalf("cm152a mix = %v", mix)
	}
	// qft_16: 240 CX per Table II.
	qft16 := byName["qft_16"]
	if qft16.Circuit.InstructionMix()[gate.CX] != 240 {
		t.Fatal("qft_16 cx count wrong")
	}
}

func TestRandomMixApproximatesSuiteAverage(t *testing.T) {
	p, err := Random("r", 10, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	mix := p.Circuit.InstructionMix()
	total := float64(p.Circuit.GateCount())
	if math.Abs(float64(mix[gate.CX])/total-0.45) > 0.05 {
		t.Fatalf("cx fraction = %v, want ≈ 0.45", float64(mix[gate.CX])/total)
	}
	if math.Abs(float64(mix[gate.T])/total-0.22) > 0.05 {
		t.Fatalf("t fraction = %v, want ≈ 0.22", float64(mix[gate.T])/total)
	}
}

func TestFullSuite(t *testing.T) {
	suite, err := FullSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 159 {
		t.Fatalf("suite = %d programs, want 159 (§VI-A)", len(suite))
	}
	names := map[string]bool{}
	for _, p := range suite {
		if names[p.Name] {
			t.Fatalf("duplicate program name %s", p.Name)
		}
		names[p.Name] = true
		// qft_16 is the one program beyond Melbourne's 14 qubits (the
		// paper carries the same tension); everything else must map.
		if p.Circuit.NumQubits > 14 && p.Name != "qft_16" {
			t.Fatalf("%s exceeds the 14-qubit Melbourne device", p.Name)
		}
		if p.Circuit.GateCount() == 0 {
			t.Fatalf("%s is empty", p.Name)
		}
	}
}

func TestTableIIReport(t *testing.T) {
	rows, avg := TableII(NamedSuite())
	if len(rows) != 6 {
		t.Fatal("row count")
	}
	// CX should be the plurality gate overall, as in the paper (45%).
	if avg[gate.CX] < 0.3 {
		t.Fatalf("cx average fraction = %v, want the dominant share", avg[gate.CX])
	}
}
