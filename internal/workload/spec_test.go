package workload

import (
	"strings"
	"testing"
	"time"
)

func TestFromSpec(t *testing.T) {
	p, err := FromSpec("qft:3")
	if err != nil {
		t.Fatal(err)
	}
	if p.Circuit.NumQubits != 3 || p.Circuit.GateCount() != 3+5*3 {
		t.Fatalf("qft:3 = %d qubits, %d gates", p.Circuit.NumQubits, p.Circuit.GateCount())
	}
	p, err = FromSpec("named:f2")
	if err != nil || p.Name != "f2" {
		t.Fatalf("named:f2 = %v, %v", p, err)
	}
	p, err = FromSpec("random:4:50:7")
	if err != nil {
		t.Fatal(err)
	}
	if p.Circuit.NumQubits != 4 || p.Circuit.GateCount() != 50 {
		t.Fatalf("random:4:50:7 = %d qubits, %d gates", p.Circuit.NumQubits, p.Circuit.GateCount())
	}
	// Determinism: the same spec yields the same circuit.
	q, _ := FromSpec("random:4:50:7")
	if q.Circuit.GateCount() != p.Circuit.GateCount() || q.Name != p.Name {
		t.Fatal("random spec not deterministic")
	}

	for _, bad := range []string{
		"", "qft", "qft:x", "qft:0", "qft:100000", "named:", "named:nope",
		"random:1:10:1", "random:4:0:1", "random:4:10", "warp:9",
	} {
		if _, err := FromSpec(bad); err == nil {
			t.Errorf("FromSpec(%q) accepted", bad)
		}
	}
}

// TestFromSpecBudgetRejectsBeforeGeneration is the DoS guard: a tiny spec
// demanding a huge program must fail fast on the predicted size, not
// after building it.
func TestFromSpecBudgetRejectsBeforeGeneration(t *testing.T) {
	for _, spec := range []string{
		"random:4:2000000000:1", // 2e9 gates
		"qft:4000",              // ~4e7 gates
	} {
		start := time.Now()
		_, err := FromSpecBudget(spec, 4096)
		if err == nil {
			t.Fatalf("FromSpecBudget(%q, 4096) accepted", spec)
		}
		if !strings.Contains(err.Error(), "budget") {
			t.Fatalf("FromSpecBudget(%q) error %v does not mention the budget", spec, err)
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("FromSpecBudget(%q) took %v — generated before checking", spec, elapsed)
		}
	}
	// Named programs over budget are rejected too.
	if _, err := FromSpecBudget("named:f2", 10); err == nil {
		t.Fatal("named:f2 accepted under a 10-gate budget")
	}
	// And the budget leaves reasonable requests alone.
	if _, err := FromSpecBudget("qft:4", 4096); err != nil {
		t.Fatal(err)
	}
}
