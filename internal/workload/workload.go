// Package workload generates the benchmark programs of the paper's §VI-A:
// exact QFT circuits, RevLib-style synthetic reversible circuits matching
// the instruction mixes of Table II, and the 159-program suite whose
// average mix the table's "all" row reports. RevLib files themselves are
// not redistributable; what the experiments consume — instruction mix, DAG
// shape, gate counts — is reproduced deterministically (see DESIGN.md
// "Substitutions").
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"accqoc/internal/circuit"
	"accqoc/internal/gate"
)

// Program is a named benchmark circuit.
type Program struct {
	Name    string
	Circuit *circuit.Circuit
}

// QFT builds the n-qubit quantum Fourier transform with controlled-phase
// gates lowered to {u1-as-rz, cx}: cu1(λ) = rz(λ/2)a · cx · rz(−λ/2)b · cx
// · rz(λ/2)b. Gate counts: n Hadamards, n(n−1) CX, 3n(n−1)/2 RZ. (Table II
// reports 2 rz per controlled phase for its ScaffCC lowering; the cx column
// — which dominates latency — matches exactly.)
func QFT(n int) *Program {
	c := circuit.New(n)
	for i := 0; i < n; i++ {
		c.MustAppend(gate.H, []int{i})
		for j := i + 1; j < n; j++ {
			lambda := math.Pi / math.Pow(2, float64(j-i))
			c.MustAppend(gate.RZ, []int{j}, lambda/2)
			c.MustAppend(gate.CX, []int{j, i})
			c.MustAppend(gate.RZ, []int{i}, -lambda/2)
			c.MustAppend(gate.CX, []int{j, i})
			c.MustAppend(gate.RZ, []int{i}, lambda/2)
		}
	}
	return &Program{Name: fmt.Sprintf("qft_%d", n), Circuit: c}
}

// Synthetic generates a deterministic random circuit with exactly the given
// per-gate counts on the given qubit count — the RevLib-style substitute.
// Rotation gates draw angles from the 8th-turn lattice typical of
// reversible-circuit synthesis.
func Synthetic(name string, qubits int, seed int64, counts map[gate.Name]int) (*Program, error) {
	if qubits < 2 {
		return nil, fmt.Errorf("workload: need ≥ 2 qubits, got %d", qubits)
	}
	rng := rand.New(rand.NewSource(seed))
	// Deterministic expansion of the multiset.
	names := make([]gate.Name, 0)
	keys := make([]string, 0, len(counts))
	for n := range counts {
		keys = append(keys, string(n))
	}
	sort.Strings(keys)
	for _, k := range keys {
		n := gate.Name(k)
		if !gate.Known(n) {
			return nil, fmt.Errorf("workload: unknown gate %q", k)
		}
		for i := 0; i < counts[n]; i++ {
			names = append(names, n)
		}
	}
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })

	c := circuit.New(qubits)
	for _, n := range names {
		spec, _ := gate.Lookup(n)
		qs := pickQubits(rng, qubits, spec.Qubits)
		params := make([]float64, spec.Params)
		for i := range params {
			params[i] = math.Pi / 4 * float64(1+rng.Intn(7))
		}
		if err := c.Append(n, qs, params...); err != nil {
			return nil, err
		}
	}
	return &Program{Name: name, Circuit: c}, nil
}

func pickQubits(rng *rand.Rand, n, k int) []int {
	qs := make([]int, 0, k)
	seen := map[int]bool{}
	for len(qs) < k {
		q := rng.Intn(n)
		if !seen[q] {
			seen[q] = true
			qs = append(qs, q)
		}
	}
	return qs
}

// namedSpec describes a Table II benchmark row: x, t, h, cx, rz, tdg.
type namedSpec struct {
	name   string
	qubits int
	seed   int64
	counts map[gate.Name]int
}

// tableII mirrors the paper's Table II rows (RevLib names carry their gate
// count as a suffix: 4gt4-v0_79 etc.). qft rows are generated exactly.
var tableII = []namedSpec{
	{"4gt4-v0", 5, 101, map[gate.Name]int{gate.X: 0, gate.T: 56, gate.H: 28, gate.CX: 105, gate.RZ: 0, gate.Tdg: 42}},
	{"cm152a", 12, 102, map[gate.Name]int{gate.X: 5, gate.T: 304, gate.H: 152, gate.CX: 532, gate.RZ: 0, gate.Tdg: 228}},
	{"ex2", 7, 103, map[gate.Name]int{gate.X: 5, gate.T: 156, gate.H: 78, gate.CX: 275, gate.RZ: 0, gate.Tdg: 117}},
	{"f2", 8, 104, map[gate.Name]int{gate.X: 6, gate.T: 300, gate.H: 150, gate.CX: 525, gate.RZ: 0, gate.Tdg: 225}},
}

// NamedSuite returns the six Table II programs: four RevLib-style synthetic
// circuits plus qft_10 and qft_16.
func NamedSuite() []*Program {
	var out []*Program
	for _, spec := range tableII {
		p, err := Synthetic(spec.name, spec.qubits, spec.seed, spec.counts)
		if err != nil {
			panic(err) // static specs cannot fail
		}
		out = append(out, p)
	}
	out = append(out, QFT(10), QFT(16))
	return out
}

// suiteMix is the "all" row of Table II: the suite-average instruction mix.
var suiteMix = []struct {
	name gate.Name
	frac float64
}{
	{gate.X, 0.001},
	{gate.T, 0.22},
	{gate.H, 0.15},
	{gate.CX, 0.45},
	{gate.RZ, 0.011},
	{gate.Tdg, 0.17},
}

// Random generates one suite-style program: the instruction mix follows the
// Table II "all" distribution with multinomial jitter.
func Random(name string, qubits, gates int, seed int64) (*Program, error) {
	rng := rand.New(rand.NewSource(seed))
	counts := map[gate.Name]int{}
	for i := 0; i < gates; i++ {
		r := rng.Float64()
		var total float64
		for _, m := range suiteMix {
			total += m.frac
		}
		r *= total
		for _, m := range suiteMix {
			if r < m.frac {
				counts[m.name]++
				break
			}
			r -= m.frac
		}
	}
	return Synthetic(name, qubits, seed+7, counts)
}

// FullSuite generates the 159-program benchmark suite: the six named
// programs plus deterministic random programs of 200–2000 gates on 4–14
// qubits ("We randomly sampled some quantum programs with between 200 and
// 2000 gates, and two QFT programs").
func FullSuite() ([]*Program, error) {
	out := NamedSuite()
	rng := rand.New(rand.NewSource(42))
	for i := len(out); i < 159; i++ {
		qubits := 4 + rng.Intn(11)    // 4..14
		gates := 200 + rng.Intn(1801) // 200..2000
		p, err := Random(fmt.Sprintf("rand_%03d", i), qubits, gates, int64(1000+i))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// MixRow is one row of the Table II reproduction.
type MixRow struct {
	Name   string
	Counts map[gate.Name]int
	Total  int
}

// TableII computes the instruction-mix table for a set of programs plus
// the all-programs average fractions (the paper's last row).
func TableII(programs []*Program) (rows []MixRow, avg map[gate.Name]float64) {
	grand := map[gate.Name]int{}
	grandTotal := 0
	for _, p := range programs {
		mix := p.Circuit.InstructionMix()
		row := MixRow{Name: p.Name, Counts: mix, Total: p.Circuit.GateCount()}
		rows = append(rows, row)
		for n, c := range mix {
			grand[n] += c
		}
		grandTotal += row.Total
	}
	avg = map[gate.Name]float64{}
	if grandTotal > 0 {
		for n, c := range grand {
			avg[n] = float64(c) / float64(grandTotal)
		}
	}
	return rows, avg
}
