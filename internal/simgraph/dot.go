package simgraph

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the MST as a Graphviz digraph for inspection: vertices in
// Prim order (the compilation sequence), edges parent→child annotated with
// the similarity distance. Vertex 0 is the identity root. labels, when
// non-nil, names the caller's unitaries (labels[i] describes unitary i,
// i.e. vertex i+1).
func (m *MST) DOT(labels []string) string {
	var b strings.Builder
	b.WriteString("digraph mst {\n")
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [shape=box, fontsize=10];\n")
	order := make(map[int]int, len(m.Order))
	for pos, v := range m.Order {
		order[v] = pos
	}
	name := func(v int) string {
		if v == 0 {
			return "identity"
		}
		if labels != nil && v-1 < len(labels) {
			return labels[v-1]
		}
		return fmt.Sprintf("g%d", v-1)
	}
	// Deterministic vertex listing.
	verts := append([]int(nil), m.Order...)
	sort.Ints(verts)
	for _, v := range verts {
		fmt.Fprintf(&b, "  v%d [label=\"%s\\n#%d in CS\"];\n", v, escapeDot(name(v)), order[v])
	}
	for _, v := range verts {
		if m.Parent[v] < 0 {
			continue
		}
		fmt.Fprintf(&b, "  v%d -> v%d [label=\"%.3f\"];\n", m.Parent[v], v, m.Cost[v])
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
