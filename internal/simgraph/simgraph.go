// Package simgraph builds the paper's similarity graph SG — a complete
// graph whose vertices are gate groups (plus the identity matrix as a
// special root) and whose edge weights are pairwise dissimilarities — and
// extracts the compilation sequence CS from a Prim minimum spanning tree
// rooted at the identity (§V-C, Fig. 9). Each vertex's MST parent is the
// pulse its training warm-starts from.
package simgraph

import (
	"fmt"
	"math"

	"accqoc/internal/cmat"
	"accqoc/internal/similarity"
)

// Graph is a complete weighted graph over n+1 vertices: vertex 0 is the
// identity root, vertices 1..n are the caller's unitaries in order.
type Graph struct {
	Fn      similarity.Func
	N       int         // total vertices including the identity root
	Weights [][]float64 // symmetric dissimilarity matrix
}

// Build constructs the similarity graph over the given unitaries. All
// matrices must share one dimension; the identity of that dimension is
// inserted as vertex 0.
func Build(us []*cmat.Matrix, fn similarity.Func) (*Graph, error) {
	if len(us) == 0 {
		return nil, fmt.Errorf("simgraph: no unitaries")
	}
	dim := us[0].Rows
	verts := make([]*cmat.Matrix, 0, len(us)+1)
	verts = append(verts, cmat.Identity(dim))
	for i, u := range us {
		if u.Rows != dim || u.Cols != dim {
			return nil, fmt.Errorf("simgraph: unitary %d is %dx%d, want %dx%d (build one graph per group size)",
				i, u.Rows, u.Cols, dim, dim)
		}
		verts = append(verts, u)
	}
	n := len(verts)
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d, err := similarity.Distance(fn, verts[i], verts[j])
			if err != nil {
				return nil, err
			}
			w[i][j] = d
			w[j][i] = d
		}
	}
	return &Graph{Fn: fn, N: n, Weights: w}, nil
}

// MST is a minimum spanning tree with Prim's vertex-selection order — the
// paper's compilation sequence.
type MST struct {
	// Parent[v] is v's MST parent; Parent[root] = -1.
	Parent []int
	// Order lists vertices in Prim selection order, starting at the root.
	Order []int
	// Cost[v] is the weight of the edge (Parent[v], v).
	Cost []float64
	// TotalWeight is the MST weight sum.
	TotalWeight float64
}

// PrimMST grows a minimum spanning tree from the given root (vertex 0 is
// the identity) and records the selection order.
func (g *Graph) PrimMST(root int) (*MST, error) {
	if root < 0 || root >= g.N {
		return nil, fmt.Errorf("simgraph: root %d out of range [0,%d)", root, g.N)
	}
	n := g.N
	inTree := make([]bool, n)
	parent := make([]int, n)
	cost := make([]float64, n)
	for i := range parent {
		parent[i] = -1
		cost[i] = math.Inf(1)
	}
	cost[root] = 0
	order := make([]int, 0, n)
	total := 0.0
	for len(order) < n {
		// Pick the cheapest fringe vertex (deterministic tie-break on
		// index keeps runs reproducible).
		best := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (best < 0 || cost[v] < cost[best]) {
				best = v
			}
		}
		if math.IsInf(cost[best], 1) {
			return nil, fmt.Errorf("simgraph: graph disconnected (infinite weight)")
		}
		inTree[best] = true
		order = append(order, best)
		if parent[best] >= 0 {
			total += cost[best]
		}
		for v := 0; v < n; v++ {
			if !inTree[v] && g.Weights[best][v] < cost[v] {
				cost[v] = g.Weights[best][v]
				parent[v] = best
			}
		}
	}
	c := make([]float64, n)
	for v := 0; v < n; v++ {
		if parent[v] >= 0 {
			c[v] = g.Weights[parent[v]][v]
		}
	}
	return &MST{Parent: parent, Order: order, Cost: c, TotalWeight: total}, nil
}

// Step is one entry of a compilation sequence: compile Group (an index into
// the caller's unitary list) warm-starting from WarmFrom (another index, or
// -1 for the identity).
type Step struct {
	Group    int
	WarmFrom int
	Distance float64 // MST edge weight to the warm-start source
}

// CompilationSequence converts the MST (over the identity-rooted graph) to
// the ordered compile schedule: vertices in Prim order, each warm-started
// from its MST parent. Vertex indices are shifted down by one so they index
// the caller's original unitary slice.
func (m *MST) CompilationSequence() []Step {
	steps := make([]Step, 0, len(m.Order)-1)
	for _, v := range m.Order {
		if v == 0 {
			continue // the identity root is not compiled
		}
		steps = append(steps, Step{
			Group:    v - 1,
			WarmFrom: m.Parent[v] - 1, // -1 when the parent is the identity
			Distance: m.Cost[v],
		})
	}
	return steps
}

// SequentialSequence is the baseline ordering the MST competes against:
// compile groups in their natural order, each warm-started from its
// predecessor (group i−1), the first from the identity.
func SequentialSequence(n int) []Step {
	steps := make([]Step, n)
	for i := 0; i < n; i++ {
		steps[i] = Step{Group: i, WarmFrom: i - 1}
	}
	return steps
}

// ColdSequence compiles every group from the identity — the brute-force
// baseline with no warm starts at all.
func ColdSequence(n int) []Step {
	steps := make([]Step, n)
	for i := 0; i < n; i++ {
		steps[i] = Step{Group: i, WarmFrom: -1}
	}
	return steps
}
