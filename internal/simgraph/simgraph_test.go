package simgraph

import (
	"math"
	"strings"
	"testing"

	"accqoc/internal/cmat"
	"accqoc/internal/gate"
	"accqoc/internal/similarity"
)

func rzU(t *testing.T, theta float64) *cmat.Matrix {
	t.Helper()
	u, err := gate.Unitary(gate.RZ, []float64{theta})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestBuildShape(t *testing.T) {
	us := []*cmat.Matrix{rzU(t, 0.1), rzU(t, 0.2), rzU(t, 0.3)}
	g, err := Build(us, similarity.TraceFid)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 {
		t.Fatalf("N = %d, want 4 (3 groups + identity)", g.N)
	}
	for i := 0; i < g.N; i++ {
		if g.Weights[i][i] != 0 {
			t.Fatal("nonzero diagonal")
		}
		for j := 0; j < g.N; j++ {
			if math.Abs(g.Weights[i][j]-g.Weights[j][i]) > 1e-12 {
				t.Fatal("asymmetric weights")
			}
		}
	}
}

func TestBuildRejectsMixedSizes(t *testing.T) {
	cx, _ := gate.Unitary(gate.CX, nil)
	if _, err := Build([]*cmat.Matrix{rzU(t, 1), cx}, similarity.L2); err == nil {
		t.Fatal("mixed sizes accepted")
	}
	if _, err := Build(nil, similarity.L2); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestPrimMSTChainStructure(t *testing.T) {
	// rz angles 0 (identity-adjacent), 0.5, 1.0, 1.5: the MST under a
	// monotone angle metric is the path identity→0.5→1.0→1.5 (nearest
	// neighbors chain).
	us := []*cmat.Matrix{rzU(t, 0.5), rzU(t, 1.0), rzU(t, 1.5)}
	g, err := Build(us, similarity.TraceFid)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := g.PrimMST(0)
	if err != nil {
		t.Fatal(err)
	}
	// Parents: vertex1(0.5)→0(id), vertex2(1.0)→1, vertex3(1.5)→2.
	want := []int{-1, 0, 1, 2}
	for v, p := range mst.Parent {
		if p != want[v] {
			t.Fatalf("Parent = %v, want %v", mst.Parent, want)
		}
	}
	if mst.Order[0] != 0 {
		t.Fatal("Prim order must start at the root")
	}
	if mst.TotalWeight <= 0 {
		t.Fatal("MST weight should be positive")
	}
}

func TestMSTMinimality(t *testing.T) {
	// Hand-checkable 3-vertex graph: identity, rz(0.1), rz(2.0).
	// Direct edges id→0.1 (cheap) and 0.1→2.0 beat id→2.0 plus anything.
	us := []*cmat.Matrix{rzU(t, 0.1), rzU(t, 2.0)}
	g, err := Build(us, similarity.TraceFid)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := g.PrimMST(0)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: 3 possible spanning trees on 3 vertices.
	w := g.Weights
	trees := []float64{
		w[0][1] + w[1][2],
		w[0][1] + w[0][2],
		w[0][2] + w[1][2],
	}
	best := math.Inf(1)
	for _, tw := range trees {
		if tw < best {
			best = tw
		}
	}
	if math.Abs(mst.TotalWeight-best) > 1e-12 {
		t.Fatalf("MST weight %v, brute force %v", mst.TotalWeight, best)
	}
}

func TestCompilationSequence(t *testing.T) {
	us := []*cmat.Matrix{rzU(t, 0.5), rzU(t, 1.0), rzU(t, 1.5)}
	g, _ := Build(us, similarity.TraceFid)
	mst, _ := g.PrimMST(0)
	steps := mst.CompilationSequence()
	if len(steps) != 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	// First compiled group warm-starts from the identity.
	if steps[0].WarmFrom != -1 {
		t.Fatalf("first step warm-from = %d, want -1", steps[0].WarmFrom)
	}
	// Every later step warm-starts from an already-compiled group.
	compiled := map[int]bool{}
	for _, s := range steps {
		if s.WarmFrom != -1 && !compiled[s.WarmFrom] {
			t.Fatalf("step for group %d warm-starts from uncompiled %d", s.Group, s.WarmFrom)
		}
		compiled[s.Group] = true
	}
}

func TestSequenceHelpers(t *testing.T) {
	seq := SequentialSequence(3)
	if seq[0].WarmFrom != -1 || seq[2].WarmFrom != 1 {
		t.Fatalf("sequential = %+v", seq)
	}
	cold := ColdSequence(3)
	for _, s := range cold {
		if s.WarmFrom != -1 {
			t.Fatal("cold sequence must have no warm starts")
		}
	}
}

func TestPrimRootValidation(t *testing.T) {
	us := []*cmat.Matrix{rzU(t, 0.5)}
	g, _ := Build(us, similarity.TraceFid)
	if _, err := g.PrimMST(9); err == nil {
		t.Fatal("bad root accepted")
	}
}

func TestMSTCoversAllVerticesOnce(t *testing.T) {
	us := []*cmat.Matrix{rzU(t, 0.3), rzU(t, 0.9), rzU(t, 2.2), rzU(t, -1.0)}
	g, _ := Build(us, similarity.L2)
	mst, err := g.PrimMST(0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, v := range mst.Order {
		if seen[v] {
			t.Fatal("vertex repeated in Prim order")
		}
		seen[v] = true
	}
	if len(seen) != g.N {
		t.Fatalf("order covers %d of %d vertices", len(seen), g.N)
	}
}

func TestDOTExport(t *testing.T) {
	us := []*cmat.Matrix{rzU(t, 0.5), rzU(t, 1.0)}
	g, _ := Build(us, similarity.TraceFid)
	mst, err := g.PrimMST(0)
	if err != nil {
		t.Fatal(err)
	}
	dot := mst.DOT([]string{"rz(0.5)", "rz(1.0)"})
	for _, want := range []string{"digraph mst", "identity", "rz(0.5)", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Every non-root vertex has exactly one incoming edge.
	if got := strings.Count(dot, "->"); got != g.N-1 {
		t.Fatalf("DOT has %d edges, want %d", got, g.N-1)
	}
	// Labels needing escaping do not break the output.
	dot2 := mst.DOT([]string{`a"b`, `c\d`})
	if !strings.Contains(dot2, `a\"b`) {
		t.Fatal("quote not escaped")
	}
}
