package compilesvc

// This file is the extracted plan/execute core of the serving pipeline:
// Prepare, a stats-neutral coverage plan that MST-orders a request's
// cache misses (§V-C), singleflight training along the tree edges with
// warm-start seeds from the namespace's similarity index, and Algorithm 3
// latency assembly. It moved here verbatim from internal/server when the
// stack split into routing and training tiers; the only addition is the
// optional per-key outcome tally that lets a shared async-batch pass
// rebuild per-request counters afterwards.

import (
	"sort"
	"time"

	"accqoc"
	"accqoc/internal/circuit"
	"accqoc/internal/cmat"
	"accqoc/internal/devreg"
	"accqoc/internal/grouping"
	"accqoc/internal/latency"
	"accqoc/internal/libstore"
	"accqoc/internal/obs"
	"accqoc/internal/precompile"
	"accqoc/internal/simgraph"
	"accqoc/internal/similarity"
)

// trainStep is one planned cold training: a unique group, its canonical
// target unitary, and its warm-start edge from the similarity MST.
type trainStep struct {
	// cold indexes the request's cold set; trained results are recorded
	// under it so MST children can find their parent's entry.
	cold    int
	uniq    *grouping.UniqueGroup
	unitary *cmat.Matrix
	// warmFrom is the MST parent's cold index, -1 when the group is
	// rooted at the identity (then the seed index supplies the anchor).
	warmFrom int
	// warmDist is the MST edge weight to warmFrom.
	warmDist float64
}

// planColdSteps orders a request's uncovered unique groups for training:
// per size class, a Prim MST over the similarity graph (identity-rooted,
// §V-C) fixes both the order and the warm-start edges, exactly as the
// batch pre-compilation does — but over the live miss set of one
// request. Singleton classes train directly. Classes are planned in
// ascending size for determinism.
func planColdSteps(cold []*grouping.UniqueGroup, fn similarity.Func) ([]trainStep, error) {
	if len(cold) == 0 {
		return nil, nil
	}
	us := make([]*cmat.Matrix, len(cold))
	bySize := map[int][]int{}
	for i, u := range cold {
		m, err := u.Group.Unitary()
		if err != nil {
			return nil, err
		}
		us[i] = precompile.CanonicalUnitary(m)
		bySize[u.NumQubits] = append(bySize[u.NumQubits], i)
	}
	sizes := make([]int, 0, len(bySize))
	for sz := range bySize {
		sizes = append(sizes, sz)
	}
	sort.Ints(sizes)

	steps := make([]trainStep, 0, len(cold))
	for _, sz := range sizes {
		idxs := bySize[sz]
		if len(idxs) == 1 {
			i := idxs[0]
			steps = append(steps, trainStep{cold: i, uniq: cold[i], unitary: us[i], warmFrom: -1})
			continue
		}
		classUs := make([]*cmat.Matrix, len(idxs))
		for j, i := range idxs {
			classUs[j] = us[i]
		}
		g, err := simgraph.Build(classUs, fn)
		if err != nil {
			return nil, err
		}
		mst, err := g.PrimMST(0)
		if err != nil {
			return nil, err
		}
		for _, st := range mst.CompilationSequence() {
			i := idxs[st.Group]
			warm := -1
			if st.WarmFrom >= 0 {
				warm = idxs[st.WarmFrom]
			}
			steps = append(steps, trainStep{
				cold: i, uniq: cold[i], unitary: us[i],
				warmFrom: warm, warmDist: st.Distance,
			})
		}
	}
	return steps, nil
}

// seedFor picks the warm start for one cold step: the MST parent when it
// trained earlier in this request (its pulse admitted under
// WarmThreshold, its latency always transferring as the binary-search
// hint), otherwise the nearest covered entry from the namespace's seed
// index (which, during a calibration roll, chains to the previous
// epoch's). Called only from inside the training closure, so
// planned-but-hit groups never pay for a lookup.
func seedFor(ns *devreg.Namespace, fn similarity.Func, st trainStep, trained []*precompile.Entry) (*precompile.Entry, float64) {
	if st.warmFrom >= 0 {
		if prev := trained[st.warmFrom]; prev != nil {
			seed := &precompile.Entry{NumQubits: st.uniq.NumQubits, LatencyNs: prev.LatencyNs}
			if st.warmDist <= similarity.WarmThreshold(fn, st.unitary.Rows) {
				seed.Pulse = prev.Pulse
			}
			return seed, st.warmDist
		}
	}
	if sd, ok := ns.Seeds.Nearest(st.unitary, st.uniq.NumQubits); ok {
		return &precompile.Entry{
			NumQubits: st.uniq.NumQubits,
			Pulse:     sd.Pulse,
			LatencyNs: sd.LatencyNs,
		}, sd.Distance
	}
	return nil, 0
}

// keyOutcome records how one unique key resolved during a shared pass,
// so per-request counters can be rebuilt from a batch's union resolve.
type keyOutcome struct {
	outcome    libstore.Outcome
	failed     bool
	iterations int
	seeded     bool
	seedDist   float64
}

// resolve fetches or trains one unique group through the namespace
// store's singleflight and updates the response counters. plan, when
// non-nil, supplies the warm-start seed, its distance, and the group's
// canonical target unitary; it is consulted only if this call actually
// executes the training (a hit or a joined in-flight training never
// evaluates it). A returned unitary pre-indexes the freshly trained entry
// under its target so the store hook's propagation is skipped (the index
// dedups on pulse identity). tally, when non-nil, additionally records
// the per-key outcome for batch accounting.
func (p *Pool) resolve(ns *devreg.Namespace, resp *CompileResponse, entries map[string]*precompile.Entry, u *grouping.UniqueGroup, cfg precompile.Config, plan func() (*precompile.Entry, float64, *cmat.Matrix), tr *obs.Trace, tally map[string]*keyOutcome) *precompile.Entry {
	var seedDist float64
	var seeded bool
	sp := tr.StartSpan("train")
	e, outcome, err := ns.Store.GetOrTrain(u.Key, func() (*precompile.Entry, error) {
		var seed *precompile.Entry
		var unitary *cmat.Matrix
		if plan != nil {
			var d float64
			seed, d, unitary = plan()
			if seed != nil && seed.Pulse != nil {
				seeded, seedDist = true, d
			}
		}
		trained, terr := precompile.TrainGroup(u, cfg, seed)
		if terr == nil && ns.Seeds != nil && unitary != nil {
			ns.Seeds.InsertWithUnitary(trained, unitary)
		}
		return trained, terr
	})
	if outcome == libstore.OutcomeHit {
		resp.CoveredGroups += u.Count
		// A hit span is never ended: warm requests would otherwise bloat
		// every trace with hundreds of no-op lookups.
	} else {
		// Trained here or joined another request's in-flight training:
		// either way this request waited on GRAPE for the group.
		resp.UncoveredUnique++
		if outcome == libstore.OutcomeTrained && err == nil {
			resp.TrainingIterations += e.Iterations
			if seeded {
				resp.WarmSeeded++
				resp.seedDistanceSum += seedDist
				p.warmSeeded.Add(1)
			}
		}
		if sp != nil {
			sp.Key = u.Key
			sp.Outcome = outcomeString(outcome)
			sp.Coalesced = outcome == libstore.OutcomeJoined
			if outcome == libstore.OutcomeTrained && err == nil {
				sp.Iterations = e.Iterations
				sp.Infidelity = e.Infidelity
				if seeded {
					sp.SeedDistance = seedDist
				} else {
					sp.SeedDistance = -1 // trained cold
				}
			}
			sp.End()
		}
	}
	if tally != nil {
		ko := &keyOutcome{outcome: outcome, failed: err != nil}
		if outcome == libstore.OutcomeTrained && err == nil {
			ko.iterations = e.Iterations
			ko.seeded = seeded
			ko.seedDist = seedDist
		}
		tally[u.Key] = ko
	}
	if err != nil {
		// Unreachable within the bracket: price it gate-based below.
		resp.FailedGroups++
		return nil
	}
	entries[u.Key] = e
	return e
}

// compile runs the serving-side pipeline for one namespace in a
// plan/execute shape: Prepare, a stats-neutral coverage plan that
// MST-orders the request's cache misses, singleflight training along the
// tree edges with warm-start seeds, and Algorithm 3 latency assembly.
func (p *Pool) compile(prog *circuit.Circuit, ns *devreg.Namespace, tr *obs.Trace) (*CompileResponse, error) {
	begin := time.Now()
	sp := tr.StartSpan("prepare")
	prep, err := ns.Comp.Prepare(prog)
	if err != nil {
		return nil, err
	}
	gr := prep.Grouping
	keys, err := precompile.Keys(gr)
	if err != nil {
		return nil, err
	}
	sp.End()

	resp := &CompileResponse{
		Qubits:      prog.NumQubits,
		Gates:       prog.GateCount(),
		Epoch:       ns.Epoch,
		TotalGroups: len(gr.Groups),
	}

	// Deduplicate occurrences against the precomputed keys, then resolve
	// every unique group: a warm key is a store hit; a cold key trains
	// exactly once across all concurrent requests (singleflight).
	uniq := grouping.DeduplicateKeyed(gr.Groups, keys)
	entries := p.resolveGroups(ns, resp, uniq, tr, nil)

	sp = tr.StartSpan("latency")
	dev := ns.Comp.Options().Device
	overall, err := latency.OverallGroups(gr, func(i int) (float64, error) {
		if e, ok := entries[keys[i]]; ok {
			return e.LatencyNs, nil
		}
		return accqoc.GateFallbackNs(gr.Groups[i], dev.Calibration), nil
	})
	if err != nil {
		return nil, err
	}
	finalizeResponse(resp, prep.Physical, dev, overall, begin)
	sp.End()
	return resp, nil
}

// resolveGroups is the shared resolution core of the compile and circuit
// paths: every unique group of a request resolves against the namespace
// store — a warm key is a hit, a cold key trains exactly once across all
// concurrent requests (singleflight), MST-ordered with warm-start seeds
// when the seed index is on. It fills the response's coverage, training
// and seeding counters and returns the resolved entries by key. tally,
// when non-nil, records per-key outcomes for batch accounting.
func (p *Pool) resolveGroups(ns *devreg.Namespace, resp *CompileResponse, uniq []*grouping.UniqueGroup, tr *obs.Trace, tally map[string]*keyOutcome) map[string]*precompile.Entry {
	entries := make(map[string]*precompile.Entry, len(uniq))
	cfg := ns.Comp.Options().Precompile
	simFn := ns.SimilarityFn()
	switch {
	case ns.Seeds == nil:
		// Index disabled: resolve in deduplication order with cold
		// random-init trainings — the pre-index serving path, preserved
		// byte for byte.
		for _, u := range uniq {
			p.resolve(ns, resp, entries, u, cfg, nil, tr, tally)
		}
	default:
		// Plan: partition into covered and cold without touching
		// counters or LRU order, then MST-order the cold set.
		psp := tr.StartSpan("plan")
		var covered, cold []*grouping.UniqueGroup
		for _, u := range uniq {
			if ns.Store.Contains(u.Key) {
				covered = append(covered, u)
			} else {
				cold = append(cold, u)
			}
		}
		steps, perr := planColdSteps(cold, simFn)
		psp.End()
		if perr != nil {
			// Planning must never fail a request harder than the legacy
			// path would: the same defect (an unbuildable group unitary,
			// a broken similarity function) surfaces inside TrainGroup
			// on the legacy path, where the group is priced gate-based
			// and counted in failed_groups. Fall back to exactly that.
			for _, u := range uniq {
				p.resolve(ns, resp, entries, u, cfg, nil, tr, tally)
			}
			break
		}
		// Execute: covered keys resolve as hits first, then the cold
		// set trains along the tree edges; every trained group becomes
		// a seed candidate for its MST children later in this request.
		for _, u := range covered {
			u := u
			// A hit never evaluates the closure; it exists for the rare
			// key evicted between plan and execute, which then trains as
			// an identity-rooted step (index-seeded) instead of cold.
			p.resolve(ns, resp, entries, u, cfg, func() (*precompile.Entry, float64, *cmat.Matrix) {
				m, uerr := u.Group.Unitary()
				if uerr != nil {
					return nil, 0, nil
				}
				cu := precompile.CanonicalUnitary(m)
				seed, d := seedFor(ns, simFn, trainStep{uniq: u, unitary: cu, warmFrom: -1}, nil)
				return seed, d, cu
			}, tr, tally)
		}
		trained := make([]*precompile.Entry, len(cold))
		for _, st := range steps {
			st := st
			trained[st.cold] = p.resolve(ns, resp, entries, st.uniq, cfg,
				func() (*precompile.Entry, float64, *cmat.Matrix) {
					seed, d := seedFor(ns, simFn, st, trained)
					return seed, d, st.unitary
				}, tr, tally)
		}
	}
	if resp.WarmSeeded > 0 {
		resp.SeedDistance = resp.seedDistanceSum / float64(resp.WarmSeeded)
	}
	if resp.TotalGroups > 0 {
		resp.CoverageRate = float64(resp.CoveredGroups) / float64(resp.TotalGroups)
	} else {
		resp.CoverageRate = 1
	}
	resp.WarmServed = resp.UncoveredUnique == 0
	if ns.Usage != nil && len(uniq) > 0 {
		// File the request window with the cost ledger: resolveGroups is
		// the single chokepoint of the compile, circuit, and async-batch
		// paths, so a batch's shared pass records its union as one
		// co-occurrence window. Pure observation — no decision downstream
		// of this call reads the ledger.
		keys := make([]string, len(uniq))
		for i, u := range uniq {
			keys[i] = u.Key
		}
		ns.Usage.RecordRequest(keys)
	}
	return entries
}

// recompileOne executes one cross-epoch recompilation item on a worker:
// re-train the old epoch's entry toward its cached target unitary under
// the new epoch's physics, seeded by the old pulse at its native duration.
// The new store's singleflight arbitrates against request traffic — if a
// serving-path miss already covered (or is covering) the key, the item is
// counted skipped rather than trained twice.
func (p *Pool) recompileOne(roll *devreg.Roll, it *devreg.RecompItem) {
	ns := roll.New
	if ns.Store.Contains(it.Key) {
		roll.Note(true, false, false, 0)
		return
	}
	seeded := it.Old.Pulse != nil
	var iters int
	_, outcome, err := ns.Store.GetOrTrain(it.Key, func() (*precompile.Entry, error) {
		e, terr := precompile.RetrainEntry(it.Old, it.Unitary, ns.Comp.Options().Precompile)
		if terr != nil {
			return nil, terr
		}
		iters = e.Iterations
		if ns.Seeds != nil {
			// Pre-index under the known target so the store hook skips
			// its propagation (same zero-propagation invariant as the
			// serving path).
			ns.Seeds.InsertWithUnitary(e, it.Unitary)
		}
		return e, terr
	})
	switch {
	case outcome == libstore.OutcomeTrained && err == nil:
		roll.Note(false, false, seeded, iters)
		if seeded {
			p.warmSeeded.Add(1)
		}
	case outcome == libstore.OutcomeTrained:
		roll.Note(false, true, false, iters)
	default:
		// Hit, or joined a concurrent request's training (whatever its
		// outcome): the racing miss owns that work — the roll item is
		// skipped, not failed.
		roll.Note(true, false, false, 0)
	}
}

// outcomeString names a store outcome for trace spans.
func outcomeString(o libstore.Outcome) string {
	switch o {
	case libstore.OutcomeTrained:
		return "trained"
	case libstore.OutcomeJoined:
		return "joined"
	default:
		return "hit"
	}
}
