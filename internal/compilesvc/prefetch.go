package compilesvc

// The speculative-training driver: the policy consumer of the usage
// ledger's history mining. When the pool is idle — empty queue, a free
// worker — the prefetcher asks each device's Predictor which keys are
// likely next given the most recent request window, filters to predicted
// *misses* that have a retained training target, and trains the best one
// through the namespace store's ordinary GetOrTrain singleflight. The
// objective is the regret counter: every predicted miss re-covered during
// idle cycles is an eviction the ledger would otherwise have charged.
//
// Priority inversion is guarded twice, the same shape as the calibration
// roll driver: admission refuses to enqueue unless the queue is empty and
// a worker is free, and the worker re-checks queue depth at pickup —
// request traffic that arrived while the speculation sat queued wins, and
// the item is abandoned untried. At most one speculative training is in
// flight at a time (the driver feeds items strictly one by one).

import (
	"sync"
	"sync/atomic"
	"time"

	"accqoc/internal/devreg"
	"accqoc/internal/libstore"
	"accqoc/internal/precompile"
)

// PrefetchOptions tunes the driver. The zero value selects the defaults.
type PrefetchOptions struct {
	// Interval is the idle-cycle period. Default 50ms.
	Interval time.Duration
	// Depth is how many ranked predictions are examined per device per
	// cycle (the first actionable one is trained). Default 4.
	Depth int
}

func (o PrefetchOptions) withDefaults() PrefetchOptions {
	if o.Interval <= 0 {
		o.Interval = 50 * time.Millisecond
	}
	if o.Depth <= 0 {
		o.Depth = 4
	}
	return o
}

// PrefetchStats is one device's (or the fleet-aggregated) counter
// snapshot — the accqoc_prefetch_* metric families and the additive
// stats/usage endpoint block.
type PrefetchStats struct {
	// Predicted counts ranked predictions examined; NoTarget the subset
	// that was uncovered but had no retained training target.
	Predicted int64 `json:"predicted"`
	NoTarget  int64 `json:"no_target"`
	// Trained counts speculative trainings that ran to completion, Seeded
	// those that warm-started from the seed index, Iterations their summed
	// GRAPE cost.
	Trained    int64 `json:"trained"`
	Seeded     int64 `json:"seeded"`
	Iterations int64 `json:"iterations"`
	// Skipped counts items already covered (or covered by a racing
	// request's training) by execution time; Abandoned items yielded to
	// request traffic (admission refusal or pickup re-check); Failed
	// trainings that did not converge.
	Skipped   int64 `json:"skipped"`
	Abandoned int64 `json:"abandoned"`
	Failed    int64 `json:"failed"`
}

type prefetchCounters struct {
	predicted, noTarget, trained, seeded atomic.Int64
	iterations, skipped, abandoned       atomic.Int64
	failed                               atomic.Int64
}

func (c *prefetchCounters) snapshot() PrefetchStats {
	return PrefetchStats{
		Predicted:  c.predicted.Load(),
		NoTarget:   c.noTarget.Load(),
		Trained:    c.trained.Load(),
		Seeded:     c.seeded.Load(),
		Iterations: c.iterations.Load(),
		Skipped:    c.skipped.Load(),
		Abandoned:  c.abandoned.Load(),
		Failed:     c.failed.Load(),
	}
}

func (s PrefetchStats) add(o PrefetchStats) PrefetchStats {
	s.Predicted += o.Predicted
	s.NoTarget += o.NoTarget
	s.Trained += o.Trained
	s.Seeded += o.Seeded
	s.Iterations += o.Iterations
	s.Skipped += o.Skipped
	s.Abandoned += o.Abandoned
	s.Failed += o.Failed
	return s
}

// Prefetcher is the idle-cycle driver. Construct with NewPrefetcher;
// Close stops the background loop.
type Prefetcher struct {
	pool *Pool
	reg  *devreg.Registry
	opts PrefetchOptions

	quit      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	mu       sync.Mutex
	counters map[string]*prefetchCounters
}

// NewPrefetcher builds the driver over a pool and a device registry and
// starts its idle-cycle loop.
func NewPrefetcher(pool *Pool, reg *devreg.Registry, opts PrefetchOptions) *Prefetcher {
	pf := &Prefetcher{
		pool:     pool,
		reg:      reg,
		opts:     opts.withDefaults(),
		quit:     make(chan struct{}),
		counters: map[string]*prefetchCounters{},
	}
	pf.wg.Add(1)
	go pf.loop()
	return pf
}

func (pf *Prefetcher) loop() {
	defer pf.wg.Done()
	tick := time.NewTicker(pf.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-pf.quit:
			return
		case <-tick.C:
			pf.RunOnce()
		}
	}
}

// Close stops the loop and waits out any in-flight cycle.
func (pf *Prefetcher) Close() {
	pf.closeOnce.Do(func() { close(pf.quit) })
	pf.wg.Wait()
}

// Stats returns the fleet-aggregated counter snapshot.
func (pf *Prefetcher) Stats() PrefetchStats {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	var s PrefetchStats
	for _, c := range pf.counters {
		s = s.add(c.snapshot())
	}
	return s
}

// StatsFor returns one device's counter snapshot.
func (pf *Prefetcher) StatsFor(device string) PrefetchStats {
	pf.mu.Lock()
	c := pf.counters[device]
	pf.mu.Unlock()
	if c == nil {
		return PrefetchStats{}
	}
	return c.snapshot()
}

func (pf *Prefetcher) countersFor(device string) *prefetchCounters {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	c := pf.counters[device]
	if c == nil {
		c = &prefetchCounters{}
		pf.counters[device] = c
	}
	return c
}

// RunOnce runs one full idle cycle across every registered device:
// predict, filter to actionable misses, and train at most one key per
// device. Exported so tests and replay benchmarks can drive the cycle
// deterministically instead of racing the ticker.
func (pf *Prefetcher) RunOnce() {
	for _, name := range pf.reg.Names() {
		select {
		case <-pf.quit:
			return
		default:
		}
		pf.runDevice(name)
	}
}

func (pf *Prefetcher) runDevice(name string) {
	ns, err := pf.reg.Acquire(name)
	if err != nil {
		return
	}
	defer ns.Release()
	if ns.Usage == nil || ns.Targets == nil {
		return
	}
	// Idle gate: speculation runs strictly below request traffic.
	if pf.pool.QueueLen() > 0 || pf.pool.InFlight() >= pf.pool.Workers() {
		return
	}
	window := ns.Usage.LastWindow()
	if len(window) == 0 {
		return
	}
	c := pf.countersFor(name)
	preds := ns.Usage.Predictor().Predict(window, pf.opts.Depth)
	c.predicted.Add(int64(len(preds)))
	for _, pr := range preds {
		if ns.Store.Contains(pr.Key) {
			continue
		}
		tgt, ok := ns.Targets.Get(pr.Key)
		if !ok {
			c.noTarget.Add(1)
			continue
		}
		it := &prefetchItem{ns: ns, key: pr.Key, tgt: tgt}
		if pf.pool.prefetch(it) != nil {
			// Admission refused (queue pressure or shutdown): yield.
			c.abandoned.Add(1)
			return
		}
		switch it.outcome {
		case prefetchTrained:
			c.trained.Add(1)
			c.iterations.Add(int64(it.iters))
			if it.seeded {
				c.seeded.Add(1)
			}
		case prefetchSkipped:
			c.skipped.Add(1)
		case prefetchAbandoned:
			c.abandoned.Add(1)
		case prefetchFailed:
			c.failed.Add(1)
		}
		// One speculative training per device per cycle.
		return
	}
}

// prefetchOutcome is how one speculative item resolved on the worker.
type prefetchOutcome int

const (
	prefetchAbandoned prefetchOutcome = iota
	prefetchSkipped
	prefetchTrained
	prefetchFailed
)

// prefetchItem is one speculative-training unit of pool work.
type prefetchItem struct {
	ns  *devreg.Namespace
	key string
	tgt *devreg.Target

	// Filled by the worker before the task's done send (which orders the
	// writes ahead of the driver's reads).
	outcome prefetchOutcome
	iters   int
	seeded  bool
}

// prefetch runs one speculative item through the pool, blocking until a
// worker processes (or abandons) it. Admission is the inverse of request
// traffic's: unless the queue is empty and a worker is free, the item is
// refused with ErrQueueFull.
func (p *Pool) prefetch(it *prefetchItem) error {
	if p.QueueLen() > 0 || p.InFlight() >= p.Workers() {
		return ErrQueueFull
	}
	t := &task{prefetch: it, done: make(chan taskResult, 1)}
	if err := p.enqueue(t); err != nil {
		return err
	}
	r := <-t.done
	return r.err
}

// prefetchOne executes one speculative training on a worker: re-check
// queue pressure (abandon if request traffic queued behind the
// speculation), then train the key toward its retained target through the
// store's singleflight, warm-seeded from the live seed index when a
// similar covered entry admits. The retained target supplies the unitary
// and the duration hint — never a pulse, so a prefetched key pays the
// same training a miss would, just off the request path.
func (p *Pool) prefetchOne(it *prefetchItem) {
	if len(p.tasks) > 0 {
		it.outcome = prefetchAbandoned
		return
	}
	ns := it.ns
	if ns.Store.Contains(it.key) {
		it.outcome = prefetchSkipped
		return
	}
	_, outcome, err := ns.Store.GetOrTrain(it.key, func() (*precompile.Entry, error) {
		seed := &precompile.Entry{Key: it.key, NumQubits: it.tgt.NumQubits, LatencyNs: it.tgt.LatencyNs}
		if ns.Seeds != nil {
			if sd, ok := ns.Seeds.Nearest(it.tgt.Unitary, it.tgt.NumQubits); ok {
				seed.Pulse = sd.Pulse
				seed.LatencyNs = sd.LatencyNs
			}
		}
		it.seeded = seed.Pulse != nil
		e, terr := precompile.RetrainEntry(seed, it.tgt.Unitary, ns.Comp.Options().Precompile)
		if terr != nil {
			return nil, terr
		}
		it.iters = e.Iterations
		if ns.Seeds != nil {
			ns.Seeds.InsertWithUnitary(e, it.tgt.Unitary)
		}
		return e, nil
	})
	switch {
	case outcome == libstore.OutcomeTrained && err == nil:
		it.outcome = prefetchTrained
		if it.seeded {
			p.warmSeeded.Add(1)
		}
	case outcome == libstore.OutcomeTrained:
		it.outcome = prefetchFailed
	default:
		// Hit or joined: a racing request owns the training.
		it.outcome = prefetchSkipped
	}
}
