package compilesvc

// Async request batching. Submissions against the same (device, epoch)
// namespace that arrive within one BatchWindow flush to the pool as a
// single task and share one resolveGroups pass: their unique groups are
// unioned, resolved once (coverage plan, MST ordering, singleflight
// training), and each job's response is then rebuilt from the per-key
// outcome tally plus its own occurrence counts. Batching lives in the
// training tier, not the HTTP layer, because only the tier that plans
// groups can know that two circuits share work — the routing tier sees
// opaque programs.
//
// Counter semantics under sharing: when two batched jobs reference the
// same cold group, the one shared training's iterations (and warm-seed
// credit) appear in BOTH responses — each job did wait on that GRAPE run,
// exactly like two concurrent sync requests where one trains and one
// joins, except the batch cannot tell who "owned" the training. The
// store- and pool-level counters (trainings, warm_seeded) still count it
// once.

import (
	"sync"
	"time"

	"accqoc"
	"accqoc/internal/devreg"
	"accqoc/internal/grouping"
	"accqoc/internal/latency"
	"accqoc/internal/libstore"
	"accqoc/internal/obs"
)

// asyncTask is one submitted async request plus its lifecycle callbacks.
type asyncTask struct {
	req   *Request
	start func() bool
	done  func(*Result, error)
	// begin stamps submission time: an async job's CompileMillis covers
	// submit → completion, batch window included.
	begin time.Time
	// waitSpan times submit → batch flush; queueSpan times flush →
	// worker pickup.
	waitSpan  *obs.Span
	queueSpan *obs.Span
}

func (at *asyncTask) fail(err error) { at.done(nil, err) }

// batcher groups async submissions by namespace until their window
// elapses, then flushes each group to the pool as one task.
type batcher struct {
	pool   *Pool
	window time.Duration

	mu     sync.Mutex
	closed bool
	groups map[*devreg.Namespace]*batchGroup
}

type batchGroup struct {
	tasks []*asyncTask
	timer *time.Timer
}

func newBatcher(p *Pool, window time.Duration) *batcher {
	return &batcher{pool: p, window: window, groups: map[*devreg.Namespace]*batchGroup{}}
}

// add admits one async submission, arming the namespace's flush timer on
// first use. The namespace pointer is the batch key: one live namespace
// per (device, epoch), so requests across devices or epochs never batch.
func (b *batcher) add(req *Request, start func() bool, done func(*Result, error)) error {
	at := &asyncTask{req: req, start: start, done: done, begin: time.Now()}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	at.waitSpan = req.Trace.StartSpan("batch_wait")
	g := b.groups[req.NS]
	if g == nil {
		g = &batchGroup{}
		b.groups[req.NS] = g
		ns := req.NS
		g.timer = time.AfterFunc(b.window, func() { b.flush(ns, g) })
	}
	g.tasks = append(g.tasks, at)
	b.mu.Unlock()
	return nil
}

// flush moves one group out of the batcher and onto the pool, retrying
// through transient queue-full (the jobs were already accepted with 202;
// shedding load is the job store's admission control, not the queue's).
func (b *batcher) flush(ns *devreg.Namespace, g *batchGroup) {
	b.mu.Lock()
	if b.groups[ns] != g {
		// Already flushed or swept by close.
		b.mu.Unlock()
		return
	}
	delete(b.groups, ns)
	tasks := g.tasks
	b.mu.Unlock()

	t := &task{batch: tasks}
	for _, at := range tasks {
		at.waitSpan.End()
		at.queueSpan = at.req.Trace.StartSpan("queue")
	}
	for {
		err := b.pool.enqueue(t)
		if err == nil {
			return
		}
		if err == ErrClosed {
			t.fail(ErrClosed)
			return
		}
		select {
		case <-b.pool.quit:
			t.fail(ErrClosed)
			return
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// close fails every unflushed submission with ErrClosed. Groups whose
// timer already entered flush are not in the map anymore and are handled
// by the flush/drain path.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	groups := b.groups
	b.groups = map[*devreg.Namespace]*batchGroup{}
	b.mu.Unlock()
	for _, g := range groups {
		g.timer.Stop()
		for _, at := range g.tasks {
			at.fail(ErrClosed)
		}
	}
}

// runBatch executes one flushed batch on a worker: veto canceled jobs,
// plan each survivor, resolve the union of their unique groups in one
// shared pass, then rebuild each job's counters from the outcome tally
// and finish its own latency/schedule tail.
func (p *Pool) runBatch(tasks []*asyncTask) {
	live := tasks[:0:0]
	for _, at := range tasks {
		// A vetoed task (canceled before pickup) gets no callbacks; the
		// submitter's start hook owns its cleanup.
		if at.start == nil || at.start() {
			live = append(live, at)
		}
	}
	if len(live) == 0 {
		return
	}
	// All tasks of a batch share one namespace by construction.
	ns := live[0].req.NS
	dev := ns.Comp.Options().Device

	type item struct {
		at   *asyncTask
		plan *accqoc.GroupPlan
		resp *CompileResponse
	}
	var items []*item
	seen := map[string]bool{}
	var union []*grouping.UniqueGroup
	for _, at := range live {
		sp := at.req.Trace.StartSpan("prepare")
		plan, err := ns.Plan(at.req.Prog)
		if err != nil {
			at.done(nil, err)
			continue
		}
		sp.End()
		items = append(items, &item{at: at, plan: plan, resp: &CompileResponse{
			Qubits:      at.req.Prog.NumQubits,
			Gates:       at.req.Prog.GateCount(),
			Epoch:       ns.Epoch,
			TotalGroups: len(plan.Prepared.Grouping.Groups),
		}})
		for _, u := range plan.Unique {
			if !seen[u.Key] {
				seen[u.Key] = true
				union = append(union, u)
			}
		}
	}
	if len(items) == 0 {
		return
	}

	// One shared resolve pass over the union. The scratch response soaks
	// up the pass-level counters (discarded); the tally records per-key
	// outcomes for the per-job rebuild below. Plan/train spans land on
	// the first job's trace — it is the batch leader.
	scratch := &CompileResponse{}
	tally := map[string]*keyOutcome{}
	entries := p.resolveGroups(ns, scratch, union, items[0].at.req.Trace, tally)

	for _, it := range items {
		resp := it.resp
		for _, u := range it.plan.Unique {
			ko := tally[u.Key]
			if ko == nil {
				continue // unreachable: every unique key was in the union
			}
			if ko.outcome == libstore.OutcomeHit {
				resp.CoveredGroups += u.Count
				continue
			}
			resp.UncoveredUnique++
			if ko.failed {
				resp.FailedGroups++
				continue
			}
			if ko.outcome == libstore.OutcomeTrained {
				resp.TrainingIterations += ko.iterations
				if ko.seeded {
					resp.WarmSeeded++
					resp.seedDistanceSum += ko.seedDist
				}
			}
		}
		if resp.WarmSeeded > 0 {
			resp.SeedDistance = resp.seedDistanceSum / float64(resp.WarmSeeded)
		}
		if resp.TotalGroups > 0 {
			resp.CoverageRate = float64(resp.CoveredGroups) / float64(resp.TotalGroups)
		} else {
			resp.CoverageRate = 1
		}
		resp.WarmServed = resp.UncoveredUnique == 0

		if it.at.req.Circuit {
			circ, err := assembleCircuit(it.plan, ns, resp, entries, it.at.req.Waveforms, it.at.req.Trace, it.at.begin)
			if err != nil {
				it.at.done(nil, err)
				continue
			}
			it.at.done(&Result{Circ: circ}, nil)
			continue
		}
		gr := it.plan.Prepared.Grouping
		keys := it.plan.Keys
		sp := it.at.req.Trace.StartSpan("latency")
		overall, err := latency.OverallGroups(gr, func(i int) (float64, error) {
			if e, ok := entries[keys[i]]; ok {
				return e.LatencyNs, nil
			}
			return accqoc.GateFallbackNs(gr.Groups[i], dev.Calibration), nil
		})
		if err != nil {
			it.at.done(nil, err)
			continue
		}
		finalizeResponse(resp, it.plan.Prepared.Physical, dev, overall, it.at.begin)
		sp.End()
		it.at.done(&Result{Resp: resp}, nil)
	}
}
