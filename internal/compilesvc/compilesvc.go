// Package compilesvc is the training tier of the serving stack: the
// plan/execute compilation core (coverage planning, MST-ordered
// warm-started training through the namespace store's singleflight,
// Algorithm 3 schedule assembly) behind its own bounded worker pool.
//
// The routing tier (internal/server) speaks only the CompileService
// interface: synchronous requests block on Do, asynchronous jobs enter
// through Submit — where requests against the same namespace are batched
// for a shared resolveGroups pass — and calibration rolls feed one item
// at a time through Recompile. Queue depth, in-flight work and the
// warm-seeding counter are read back through the same interface, so the
// HTTP layer never touches pool internals; the seam is exactly what a
// later multi-process split (consistent-hashed training nodes) needs.
package compilesvc

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"accqoc/internal/devreg"
)

// Queue admission errors. The routing tier maps both to 503 (with a
// Retry-After hint); their messages are part of the served wire format.
var (
	// ErrQueueFull reports a full compile queue.
	ErrQueueFull = errors.New("compilation queue full")
	// ErrClosed reports a service that is shutting down (or has shut
	// down); it also answers tasks swept out of the queue by Close.
	ErrClosed = errors.New("server shutting down")
)

// CompileService is the seam between the routing tier and the training
// tier. Implementations must be safe for concurrent use from handler
// goroutines, roll drivers, and shutdown paths.
type CompileService interface {
	// Do runs one request synchronously: enqueue, wait for a worker, and
	// return the finished result. It fails fast with ErrQueueFull or
	// ErrClosed before any work happens.
	Do(req *Request) (*Result, error)

	// Submit enqueues one request asynchronously. Concurrent submissions
	// against the same namespace are batched within the configured window
	// and resolved in one shared resolveGroups pass. At worker pickup,
	// start is invoked first: returning false vetoes the request (it was
	// canceled) and NO other callback runs — cleanup on veto belongs to
	// start. Otherwise done is invoked exactly once with the result or
	// error (ErrClosed when the service shut down before the work ran).
	// Submit itself returns ErrClosed when the service is already
	// closing; then neither callback runs.
	Submit(req *Request, start func() bool, done func(*Result, error)) error

	// Recompile runs one cross-epoch recompilation item on the pool and
	// blocks until it is processed (ErrQueueFull when the pool is busy —
	// request traffic has priority; ErrClosed during shutdown).
	Recompile(roll *devreg.Roll, it *devreg.RecompItem) error

	// QueueLen and QueueCap report the compile queue's depth and bound;
	// Workers the pool size; InFlight the tasks currently executing.
	QueueLen() int
	QueueCap() int
	Workers() int
	InFlight() int

	// WarmSeeded totals trainings (serving and roll paths alike) that
	// started from a similarity-admitted seed.
	WarmSeeded() int64

	// Close drains queued work, answers stragglers with ErrClosed, and
	// stops the workers. Pending async batches that never reached a
	// worker fail their done callbacks with ErrClosed.
	Close()
}

// Config assembles a Pool.
type Config struct {
	// Workers bounds concurrent compilations. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds pending tasks beyond the running ones; a full
	// queue answers ErrQueueFull. Default 64.
	QueueDepth int
	// BatchWindow is how long an async submission waits for same-
	// namespace company before its batch is flushed to the pool.
	// Default 2ms.
	BatchWindow time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	return c
}

// task is one unit of worker-pool work: a synchronous compile request, a
// flushed async batch, one recompilation item of a calibration roll, or
// one speculative-training item of the prefetcher.
type task struct {
	// req is set for synchronous tasks.
	req *Request
	// batch is set for flushed async batches (one shared resolve pass).
	batch []*asyncTask
	// recomp/roll are set for cross-epoch recompilation items.
	recomp *devreg.RecompItem
	roll   *devreg.Roll
	// prefetch is set for speculative-training items (see prefetch.go).
	prefetch *prefetchItem
	// done answers synchronous, recomp, and prefetch tasks; nil for
	// batches (their asyncTasks carry per-job callbacks).
	done chan taskResult
}

type taskResult struct {
	res *Result
	err error
}

// Pool is the worker-pool CompileService.
type Pool struct {
	cfg   Config
	tasks chan *task
	quit  chan struct{}
	wg    sync.WaitGroup

	batcher *batcher

	inFlight   atomic.Int64
	warmSeeded atomic.Int64

	// closeMu orders enqueues against Close: an enqueue holds the read
	// lock, so once Close holds the write lock and sets closed, every
	// queued task predates the quit signal and the worker drain loop (or
	// Close's final sweep) is guaranteed to answer it.
	closeMu   sync.RWMutex
	closed    bool
	closeOnce sync.Once
}

var _ CompileService = (*Pool)(nil)

// New builds a pool and starts its workers.
func New(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:   cfg,
		tasks: make(chan *task, cfg.QueueDepth),
		quit:  make(chan struct{}),
	}
	p.batcher = newBatcher(p, cfg.BatchWindow)
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// enqueue submits a task unless the pool is closed or the queue is full.
func (p *Pool) enqueue(t *task) error {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.tasks <- t:
		return nil
	default:
		return ErrQueueFull
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	run := func(t *task) {
		p.inFlight.Add(1)
		defer p.inFlight.Add(-1)
		switch {
		case t.recomp != nil:
			p.recompileOne(t.roll, t.recomp)
			t.done <- taskResult{}
		case t.prefetch != nil:
			p.prefetchOne(t.prefetch)
			t.done <- taskResult{}
		case t.batch != nil:
			p.runBatch(t.batch)
		case t.req.Circuit:
			circ, err := p.compileCircuit(t.req.Prog, t.req.NS, t.req.Waveforms, t.req.Trace)
			t.done <- taskResult{res: &Result{Circ: circ}, err: err}
		default:
			resp, err := p.compile(t.req.Prog, t.req.NS, t.req.Trace)
			t.done <- taskResult{res: &Result{Resp: resp}, err: err}
		}
	}
	for {
		select {
		case t := <-p.tasks:
			t.endQueueSpans()
			run(t)
		case <-p.quit:
			// Drain whatever is already queued so no caller hangs.
			for {
				select {
				case t := <-p.tasks:
					t.endQueueSpans()
					run(t)
				default:
					return
				}
			}
		}
	}
}

// endQueueSpans closes the queue-wait spans at worker pickup.
func (t *task) endQueueSpans() {
	if t.batch != nil {
		for _, at := range t.batch {
			at.queueSpan.End()
		}
		return
	}
	if t.req != nil {
		t.req.queueSpan.End()
	}
}

// Do runs one request synchronously through the pool.
func (p *Pool) Do(req *Request) (*Result, error) {
	t := &task{req: req, done: make(chan taskResult, 1)}
	req.queueSpan = req.Trace.StartSpan("queue")
	if err := p.enqueue(t); err != nil {
		req.queueSpan = nil // dropped unended: rejected before queuing
		return nil, err
	}
	// Wait for the worker even if the caller's client goes away: the
	// training is already paid for and warms the shared library.
	r := <-t.done
	return r.res, r.err
}

// Submit enqueues one request for asynchronous, batched execution.
func (p *Pool) Submit(req *Request, start func() bool, done func(*Result, error)) error {
	return p.batcher.add(req, start, done)
}

// Recompile runs one roll item on the pool, blocking until processed.
func (p *Pool) Recompile(roll *devreg.Roll, it *devreg.RecompItem) error {
	t := &task{recomp: it, roll: roll, done: make(chan taskResult, 1)}
	if err := p.enqueue(t); err != nil {
		return err
	}
	r := <-t.done
	return r.err
}

// QueueLen reports tasks waiting in the queue (not yet picked up).
func (p *Pool) QueueLen() int { return len(p.tasks) }

// QueueCap reports the queue bound.
func (p *Pool) QueueCap() int { return p.cfg.QueueDepth }

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.cfg.Workers }

// InFlight reports tasks currently executing on a worker.
func (p *Pool) InFlight() int { return int(p.inFlight.Load()) }

// WarmSeeded totals seed-admitted trainings across the pool's lifetime.
func (p *Pool) WarmSeeded() int64 { return p.warmSeeded.Load() }

// Close stops the pool after draining queued tasks. Unflushed async
// batches and tasks swept out of the queue are answered with ErrClosed.
func (p *Pool) Close() {
	p.closeMu.Lock()
	p.closed = true
	p.closeMu.Unlock()
	// Fail async submissions still waiting in the batcher: their batch
	// would otherwise spin on a closed queue. Flushed batches already in
	// the channel are drained (and executed) by the workers below.
	p.batcher.close()
	p.closeOnce.Do(func() { close(p.quit) })
	p.wg.Wait()
	// Fail anything that slipped into the queue between the workers'
	// drain sweep and their exit (possible only for tasks enqueued before
	// closed was set, so this sweep is the last).
	for {
		select {
		case t := <-p.tasks:
			t.fail(ErrClosed)
		default:
			return
		}
	}
}

// fail answers a swept task with err, whatever its kind.
func (t *task) fail(err error) {
	if t.batch != nil {
		for _, at := range t.batch {
			at.fail(err)
		}
		return
	}
	t.done <- taskResult{err: err}
}
