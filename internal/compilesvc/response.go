package compilesvc

import (
	"crypto/sha256"
	"encoding/hex"
	"time"

	"accqoc/internal/circuit"
	"accqoc/internal/crosstalk"
	"accqoc/internal/devreg"
	"accqoc/internal/gatepulse"
	"accqoc/internal/obs"
	"accqoc/internal/precompile"
	"accqoc/internal/pulse"
	"accqoc/internal/topology"
)

// Request is one unit of compile work handed across the tier seam: an
// ingested program bound to its (device, epoch) namespace. The routing
// tier owns admission, validation and the namespace reference; the
// training tier owns everything between Prepare and the finished
// response.
type Request struct {
	Prog *circuit.Circuit
	// NS is the acquired namespace. The caller holds the reference for
	// the lifetime of the call (Do) or until its done callback returns
	// (Submit).
	NS *devreg.Namespace
	// Circuit requests the whole-circuit pipeline (scheduled pulse
	// program) instead of the plain compile summary; Waveforms
	// additionally inlines the referenced waveforms.
	Circuit   bool
	Waveforms bool
	// Trace is the request's pipeline trace; nil when observability is
	// off (every span call is nil-safe).
	Trace *obs.Trace

	// queueSpan times the handler→worker handoff on the synchronous
	// path; the pool ends it at worker pickup.
	queueSpan *obs.Span
}

// Result is the training tier's answer: exactly one of Resp (plain
// compile) or Circ (whole-circuit) is set, matching Request.Circuit.
type Result struct {
	Resp *CompileResponse
	Circ *CircuitResponse
}

// CompileResponse reports one request's accelerated compilation. It is
// the wire body of POST /v1/compile (the routing tier aliases it).
type CompileResponse struct {
	Qubits int `json:"qubits"`
	Gates  int `json:"gates"`

	// Device echoes the request's device routing (empty for the default
	// wire format); Epoch is the calibration epoch that served the
	// request (0, the boot epoch, is omitted).
	Device string `json:"device,omitempty"`
	Epoch  int    `json:"epoch,omitempty"`

	// Coverage of group occurrences by the library at request start
	// (§V-A). A warm request has coverage 1.
	TotalGroups     int     `json:"total_groups"`
	CoveredGroups   int     `json:"covered_groups"`
	CoverageRate    float64 `json:"coverage_rate"`
	UncoveredUnique int     `json:"uncovered_unique"`
	FailedGroups    int     `json:"failed_groups"`
	WarmServed      bool    `json:"warm_served"`

	// TrainingIterations sums GRAPE iterations across the trainings this
	// request executed itself (joined in-flight trainings excluded) —
	// the compile-cost metric of §VI-G. Async requests whose batch
	// trained a group shared with a concurrent job each report that
	// group's cost.
	TrainingIterations int `json:"training_iterations"`
	// WarmSeeded counts this request's trainings that warm-started from
	// a seed (an MST neighbor trained earlier in the request, or a
	// covered entry from the seed index) instead of a random waveform.
	WarmSeeded int `json:"warm_seeded"`
	// SeedDistance is the mean similarity distance of the admitted
	// seeds; 0 when WarmSeeded is 0.
	SeedDistance float64 `json:"seed_distance"`

	QOCLatencyNs      float64 `json:"qoc_latency_ns"`
	GateLatencyNs     float64 `json:"gate_latency_ns"`
	LatencyReduction  float64 `json:"latency_reduction"`
	EstimatedFidelity float64 `json:"estimated_fidelity"`

	// CompileMillis is the server-side wall time for this request (for
	// async jobs: submit to completion, batching window included).
	CompileMillis float64 `json:"compile_millis"`

	// seedDistanceSum accumulates admitted seed distances during
	// resolution; folded into SeedDistance before the response is sent.
	seedDistanceSum float64
}

// ScheduledPulseWire is one slot of the scheduled pulse program.
type ScheduledPulseWire struct {
	// Group indexes the program's gate groups in grouping order.
	Group int `json:"group"`
	// Qubits are the physical qubits the slot drives.
	Qubits []int `json:"qubits"`
	// StartNs/DurationNs place the slot on the program timeline (ASAP
	// start under Algorithm 3).
	StartNs    float64 `json:"start_ns"`
	DurationNs float64 `json:"duration_ns"`
	// Waveform is the content address of the library pulse driving this
	// slot; empty for groups that failed to train and execute gate-based.
	Waveform string `json:"waveform,omitempty"`
	// Mirrored marks slots whose qubit order is the mirror of the library
	// pulse's canonical orientation: on replay the per-qubit drive
	// channels exchange (inlined waveforms are canonical, not exchanged).
	Mirrored bool `json:"mirrored,omitempty"`
}

// CircuitResponse is the POST /v1/circuits/compile body: the compile
// summary (coverage, training cost, latency vs the gate-based baseline)
// plus the scheduled pulse program itself.
type CircuitResponse struct {
	Compile CompileResponse `json:"compile"`
	// MakespanNs is the program's overall latency — the end of the last
	// scheduled slot (equals compile.qoc_latency_ns).
	MakespanNs float64 `json:"makespan_ns"`
	// Schedule lists every group slot ordered by start time.
	Schedule []ScheduledPulseWire `json:"schedule"`
	// Waveforms maps content addresses to canonical waveforms, present
	// only when the request set include_waveforms.
	Waveforms map[string]*pulse.Pulse `json:"waveforms,omitempty"`
}

// WaveformRef digests a library pulse into the compact content address
// used on the wire. The address covers the waveform bytes themselves —
// not the group key — so a retrained pulse (a new calibration epoch, a
// different device's physics) gets a new ref and a client-side waveform
// cache can never replay a stale wrong-calibration pulse; identical
// waveforms share a ref across requests.
func WaveformRef(e *precompile.Entry) string {
	data, err := e.Pulse.MarshalBinary()
	if err != nil {
		// Unreachable for trained entries (pulses validate on decode);
		// degrade to the key digest rather than dropping the ref.
		data = []byte(e.Key)
	}
	h := sha256.Sum256(data)
	return "wf:" + hex.EncodeToString(h[:12])
}

// finalizeResponse fills the latency/fidelity tail shared by the
// per-group and circuit responses.
func finalizeResponse(resp *CompileResponse, phys *circuit.Circuit, dev *topology.Device, overall float64, begin time.Time) {
	resp.QOCLatencyNs = overall
	resp.GateLatencyNs = gatepulse.Overall(phys, dev.Calibration)
	if overall > 0 {
		resp.LatencyReduction = resp.GateLatencyNs / overall
	}
	resp.EstimatedFidelity = crosstalk.ProgramFidelity(phys, dev, overall)
	resp.CompileMillis = float64(time.Since(begin)) / float64(time.Millisecond)
}
