package compilesvc

// The whole-circuit pipeline: Prepare, coverage/cold partition,
// MST-warm-started training through the shared singleflight, Algorithm 3
// scheduling, and conformance validation. The assemble tail is shared
// between the synchronous path (compileCircuit) and the async batch path
// (runBatch), which resolves a union of groups once and assembles each
// job's schedule from the shared entries.

import (
	"fmt"
	"time"

	"accqoc"
	"accqoc/internal/circuit"
	"accqoc/internal/devreg"
	"accqoc/internal/obs"
	"accqoc/internal/precompile"
	"accqoc/internal/pulse"
)

// compileCircuit runs the whole-circuit pipeline for one namespace:
// plan (front end + canonical keys), resolve every unique group through
// the shared singleflight/MST machinery, assemble the schedule, and
// validate it against the schedule invariants before answering.
func (p *Pool) compileCircuit(prog *circuit.Circuit, ns *devreg.Namespace, inlineWaveforms bool, tr *obs.Trace) (*CircuitResponse, error) {
	begin := time.Now()
	sp := tr.StartSpan("prepare")
	plan, err := ns.Plan(prog)
	if err != nil {
		return nil, err
	}
	sp.End()
	gr := plan.Prepared.Grouping
	resp := &CompileResponse{
		Qubits:      prog.NumQubits,
		Gates:       prog.GateCount(),
		Epoch:       ns.Epoch,
		TotalGroups: len(gr.Groups),
	}
	entries := p.resolveGroups(ns, resp, plan.Unique, tr, nil)
	return assembleCircuit(plan, ns, resp, entries, inlineWaveforms, tr, begin)
}

// assembleCircuit is the schedule tail shared by the sync and batch
// circuit paths: Algorithm 3 assembly over the resolved entries,
// conformance validation, and the wire-format schedule with
// content-addressed waveform refs.
func assembleCircuit(plan *accqoc.GroupPlan, ns *devreg.Namespace, resp *CompileResponse, entries map[string]*precompile.Entry, inlineWaveforms bool, tr *obs.Trace, begin time.Time) (*CircuitResponse, error) {
	sp := tr.StartSpan("assemble")
	res := plan.Result()
	dev := ns.Comp.Options().Device
	sched, err := accqoc.AssembleSchedule(res, dev.Calibration, func(key string) (*precompile.Entry, bool) {
		e, ok := entries[key]
		return e, ok
	})
	if err != nil {
		return nil, err
	}
	res.OverallLatencyNs = sched.MakespanNs
	sp.End()
	// Conformance oracle: a pulse program violating its own invariants
	// (dependency order, per-qubit exclusivity, two-sided makespan) must
	// never reach a waveform generator — fail the request instead.
	vsp := tr.StartSpan("validate")
	if verr := sched.Validate(); verr != nil {
		return nil, fmt.Errorf("scheduled pulse program failed conformance: %w", verr)
	}
	vsp.End()

	finalizeResponse(resp, plan.Prepared.Physical, dev, sched.MakespanNs, begin)

	out := &CircuitResponse{
		Compile:    *resp,
		MakespanNs: sched.MakespanNs,
		Schedule:   make([]ScheduledPulseWire, 0, len(sched.Pulses)),
	}
	// refs dedups the hash work: one MarshalBinary+SHA-256 per unique
	// entry, however many occurrences reference it.
	refs := make(map[string]string, len(entries))
	for _, sp := range sched.Pulses {
		slot := ScheduledPulseWire{
			Group:      sp.Group,
			Qubits:     sp.Qubits,
			StartNs:    sp.StartNs,
			DurationNs: sp.DurationNs,
			Mirrored:   sp.Mirrored,
		}
		if e, eok := entries[sp.Key]; sp.Key != "" && eok && e.Pulse != nil {
			ref, cached := refs[sp.Key]
			if !cached {
				ref = WaveformRef(e)
				refs[sp.Key] = ref
			}
			slot.Waveform = ref
			if inlineWaveforms {
				if out.Waveforms == nil {
					out.Waveforms = map[string]*pulse.Pulse{}
				}
				out.Waveforms[ref] = e.Pulse
			}
		}
		out.Schedule = append(out.Schedule, slot)
	}
	return out, nil
}
