// Package partition implements the paper's §V-D parallelization: the MST's
// edge costs are shifted onto nodes (each vertex carries the cost of the
// edge through which Prim added it; the root carries the cost of training
// from the identity), and the resulting node-weighted tree is divided into
// k connected parts with balanced weight sums. The paper delegates this to
// METIS; the tree-structured instance is solved here directly and optimally
// for the min-max objective via parametric search — see DESIGN.md
// "Substitutions".
package partition

import (
	"fmt"
	"math"
	"sort"
)

// Tree is a node-weighted rooted tree.
type Tree struct {
	Parent []int     // Parent[root] = -1
	Weight []float64 // non-negative node weights
	root   int
	kids   [][]int
}

// NewTree validates parent links and builds child lists. Exactly one root
// (Parent = -1) is required and links must be acyclic.
func NewTree(parent []int, weight []float64) (*Tree, error) {
	n := len(parent)
	if len(weight) != n {
		return nil, fmt.Errorf("partition: %d weights for %d nodes", len(weight), n)
	}
	t := &Tree{Parent: append([]int(nil), parent...), Weight: append([]float64(nil), weight...), root: -1}
	t.kids = make([][]int, n)
	for v, p := range parent {
		if weight[v] < 0 {
			return nil, fmt.Errorf("partition: negative weight %v at node %d", weight[v], v)
		}
		if p == -1 {
			if t.root >= 0 {
				return nil, fmt.Errorf("partition: multiple roots (%d and %d)", t.root, v)
			}
			t.root = v
			continue
		}
		if p < 0 || p >= n {
			return nil, fmt.Errorf("partition: node %d has invalid parent %d", v, p)
		}
		t.kids[p] = append(t.kids[p], v)
	}
	if t.root < 0 && n > 0 {
		return nil, fmt.Errorf("partition: no root")
	}
	// Cycle check: every node must reach the root.
	for v := range parent {
		seen := 0
		for cur := v; cur != -1; cur = parent[cur] {
			seen++
			if seen > n {
				return nil, fmt.Errorf("partition: cycle through node %d", v)
			}
		}
	}
	return t, nil
}

// FromMST builds the node-weighted tree of §V-D from MST parent links and
// per-node edge costs: node v weighs Cost[v] (its MST edge), and the root
// weighs rootCost — "a value proportional to the time it takes to train the
// first node from identity matrix".
func FromMST(parent []int, edgeCost []float64, rootCost float64) (*Tree, error) {
	w := append([]float64(nil), edgeCost...)
	for v, p := range parent {
		if p == -1 {
			w[v] = rootCost
		}
	}
	return NewTree(parent, w)
}

// Result is a k-way partition of tree nodes.
type Result struct {
	// Part[v] is the part id (0..K-1) of node v.
	Part []int
	// K is the number of parts actually used.
	K int
	// PartWeights sums node weights per part.
	PartWeights []float64
	// Makespan is max(PartWeights) — the parallel-training critical path.
	Makespan float64
}

// Balanced cuts the tree into at most k connected parts minimizing the
// maximum part weight. The min-max objective is solved exactly by binary
// searching the bound and greedily cutting bottom-up (the classical
// shifting-style algorithm for tree partitioning).
func Balanced(t *Tree, k int) (*Result, error) {
	n := len(t.Parent)
	if k < 1 {
		return nil, fmt.Errorf("partition: k = %d", k)
	}
	if n == 0 {
		return &Result{Part: nil, K: 0, PartWeights: nil}, nil
	}
	if k > n {
		k = n
	}
	var total, maxW float64
	for _, w := range t.Weight {
		total += w
		if w > maxW {
			maxW = w
		}
	}
	lo, hi := math.Max(maxW, total/float64(k)), total
	// Parametric search on the bound to 1e-9 relative precision, then one
	// final greedy pass to materialize the cuts.
	for iter := 0; iter < 60 && hi-lo > 1e-9*(1+total); iter++ {
		mid := (lo + hi) / 2
		if cuts, ok := t.greedyCut(mid); ok && cuts+1 <= k {
			hi = mid
		} else {
			lo = mid
		}
	}
	cutEdges, _ := t.cutSet(hi)
	return t.materialize(cutEdges, k), nil
}

// greedyCut returns the number of cuts needed so every component's weight
// is ≤ bound, processing leaves upward and cutting the heaviest children
// first. ok is false when a single node exceeds the bound.
func (t *Tree) greedyCut(bound float64) (cuts int, ok bool) {
	cutEdges, ok := t.cutSet(bound)
	return len(cutEdges), ok
}

// cutSet computes the actual set of cut edges (child node ids) for a bound.
func (t *Tree) cutSet(bound float64) (map[int]bool, bool) {
	n := len(t.Parent)
	sub := make([]float64, n)
	cut := map[int]bool{}
	order := t.postorder()
	for _, v := range order {
		if t.Weight[v] > bound {
			return nil, false
		}
		sum := t.Weight[v]
		// Collect child contributions, heaviest first, cutting while over.
		type kid struct {
			id int
			w  float64
		}
		var kids []kid
		for _, c := range t.kids[v] {
			if !cut[c] {
				kids = append(kids, kid{c, sub[c]})
			}
		}
		sort.Slice(kids, func(i, j int) bool { return kids[i].w > kids[j].w })
		for _, kd := range kids {
			sum += kd.w
		}
		for i := 0; sum > bound && i < len(kids); i++ {
			cut[kids[i].id] = true
			sum -= kids[i].w
		}
		if sum > bound {
			return nil, false
		}
		sub[v] = sum
	}
	return cut, true
}

func (t *Tree) postorder() []int {
	n := len(t.Parent)
	order := make([]int, 0, n)
	var stack []int
	visited := make([]bool, n)
	if n == 0 {
		return order
	}
	stack = append(stack, t.root)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		if !visited[v] {
			visited[v] = true
			for _, c := range t.kids[v] {
				stack = append(stack, c)
			}
			continue
		}
		stack = stack[:len(stack)-1]
		order = append(order, v)
	}
	// The two-phase stack walk can re-visit; dedupe while preserving the
	// first pop order.
	seen := make([]bool, n)
	out := order[:0]
	for _, v := range order {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// materialize labels components induced by the cut edges and packs them
// into at most k parts (smallest-weight-first merging when the cut produced
// more components than k — can happen only at loose bounds).
func (t *Tree) materialize(cutEdges map[int]bool, k int) *Result {
	n := len(t.Parent)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	nComp := 0
	// Roots of components: the tree root plus every cut child.
	var weights []float64
	var assign func(v, c int)
	assign = func(v, c int) {
		comp[v] = c
		weights[c] += t.Weight[v]
		for _, ch := range t.kids[v] {
			if !cutEdges[ch] {
				assign(ch, c)
			}
		}
	}
	for v := 0; v < n; v++ {
		isRoot := t.Parent[v] == -1 || cutEdges[v]
		if isRoot && comp[v] == -1 {
			weights = append(weights, 0)
			assign(v, nComp)
			nComp++
		}
	}
	// Merge smallest components while above k (merging is only a labeling
	// concern: parts map to workers, connectivity within a worker is not
	// required once more than k components exist).
	for nComp > k {
		// find two smallest
		i1, i2 := -1, -1
		for i := 0; i < nComp; i++ {
			if i1 < 0 || weights[i] < weights[i1] {
				i2 = i1
				i1 = i
			} else if i2 < 0 || weights[i] < weights[i2] {
				i2 = i
			}
		}
		// merge i2 into i1
		for v := range comp {
			if comp[v] == i2 {
				comp[v] = i1
			}
		}
		weights[i1] += weights[i2]
		weights[i2] = weights[nComp-1]
		for v := range comp {
			if comp[v] == nComp-1 {
				comp[v] = i2
			}
		}
		weights = weights[:nComp-1]
		nComp--
	}
	res := &Result{Part: comp, K: nComp, PartWeights: weights}
	for _, w := range weights {
		if w > res.Makespan {
			res.Makespan = w
		}
	}
	return res
}

// Speedup reports serial-total / makespan for a partition — the parallel
// training speedup the paper's worker pool achieves.
func (r *Result) Speedup(tree *Tree) float64 {
	var total float64
	for _, w := range tree.Weight {
		total += w
	}
	if r.Makespan == 0 {
		return 1
	}
	return total / r.Makespan
}

// RoundRobin is the naive baseline: nodes dealt to k parts in index order,
// ignoring tree structure. Used by the ablation bench.
func RoundRobin(t *Tree, k int) *Result {
	n := len(t.Parent)
	if k > n {
		k = n
	}
	res := &Result{Part: make([]int, n), K: k, PartWeights: make([]float64, k)}
	for v := 0; v < n; v++ {
		p := v % k
		res.Part[v] = p
		res.PartWeights[p] += t.Weight[v]
	}
	for _, w := range res.PartWeights {
		if w > res.Makespan {
			res.Makespan = w
		}
	}
	return res
}
