package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// chain builds a path 0→1→…→n−1 with the given weights.
func chain(weights []float64) *Tree {
	parent := make([]int, len(weights))
	parent[0] = -1
	for i := 1; i < len(weights); i++ {
		parent[i] = i - 1
	}
	t, err := NewTree(parent, weights)
	if err != nil {
		panic(err)
	}
	return t
}

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree([]int{-1, 0}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewTree([]int{-1, -1}, []float64{1, 1}); err == nil {
		t.Fatal("two roots accepted")
	}
	if _, err := NewTree([]int{1, 0}, []float64{1, 1}); err == nil {
		t.Fatal("cycle accepted")
	}
	if _, err := NewTree([]int{-1, 5}, []float64{1, 1}); err == nil {
		t.Fatal("invalid parent accepted")
	}
	if _, err := NewTree([]int{-1}, []float64{-2}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestFromMSTShiftsEdgeCosts(t *testing.T) {
	// §V-D: node weight = cost of its MST edge; root gets rootCost.
	tree, err := FromMST([]int{-1, 0, 1}, []float64{0, 3, 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Weight[0] != 7 || tree.Weight[1] != 3 || tree.Weight[2] != 5 {
		t.Fatalf("weights = %v", tree.Weight)
	}
}

func TestBalancedChainTwoParts(t *testing.T) {
	tr := chain([]float64{1, 1, 1, 1})
	res, err := Balanced(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 2 {
		t.Fatalf("makespan = %v, want 2", res.Makespan)
	}
	if res.K != 2 {
		t.Fatalf("K = %d", res.K)
	}
}

func TestBalancedSinglePart(t *testing.T) {
	tr := chain([]float64{2, 3, 4})
	res, err := Balanced(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 9 || res.K != 1 {
		t.Fatalf("K=%d makespan=%v", res.K, res.Makespan)
	}
}

func TestBalancedStar(t *testing.T) {
	// Root with four unit leaves, k=2, parts must stay connected: any part
	// without the root is a single leaf, so the optimum is {root+3 leaves}
	// vs {1 leaf} — makespan 4.
	parent := []int{-1, 0, 0, 0, 0}
	weights := []float64{1, 1, 1, 1, 1}
	tr, err := NewTree(parent, weights)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Balanced(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 4 {
		t.Fatalf("star makespan = %v, want 4 (connected parts)", res.Makespan)
	}
	// With k=3 two leaves can split off: {root+2}, {leaf}, {leaf} → 3.
	res3, err := Balanced(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Makespan != 3 {
		t.Fatalf("star k=3 makespan = %v, want 3", res3.Makespan)
	}
}

func TestBalancedRespectsK(t *testing.T) {
	tr := chain([]float64{1, 1, 1, 1, 1, 1})
	for k := 1; k <= 8; k++ {
		res, err := Balanced(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		if res.K > k {
			t.Fatalf("k=%d: produced %d parts", k, res.K)
		}
		// Part ids must be in range and weights consistent.
		var sum float64
		for _, w := range res.PartWeights {
			sum += w
		}
		if math.Abs(sum-6) > 1e-9 {
			t.Fatalf("k=%d: weight sum %v, want 6", k, sum)
		}
	}
}

func TestBalancedMakespanNeverBelowLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		n := 2 + rng.Intn(20)
		parent := make([]int, n)
		weights := make([]float64, n)
		parent[0] = -1
		for i := 1; i < n; i++ {
			parent[i] = rng.Intn(i) // random tree
		}
		var total, maxW float64
		for i := range weights {
			weights[i] = rng.Float64() * 10
			total += weights[i]
			if weights[i] > maxW {
				maxW = weights[i]
			}
		}
		tr, err := NewTree(parent, weights)
		if err != nil {
			return false
		}
		k := 1 + rng.Intn(5)
		res, err := Balanced(tr, k)
		if err != nil {
			return false
		}
		lower := math.Max(maxW, total/float64(k))
		// Makespan must respect the trivial lower bound and never exceed
		// the serial total.
		return res.Makespan >= lower-1e-6 && res.Makespan <= total+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedBeatsOrMatchesRoundRobinOnChains(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(15)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64()*5 + 0.1
		}
		tr := chain(weights)
		k := 2 + rng.Intn(3)
		bal, err := Balanced(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		rr := RoundRobin(tr, k)
		if bal.Makespan > rr.Makespan+1e-9 {
			// Round-robin ignores connectivity, so it can cheat; but on
			// chains the balanced cut should never be *worse* by more than
			// the largest node.
			var maxW float64
			for _, w := range weights {
				if w > maxW {
					maxW = w
				}
			}
			if bal.Makespan > rr.Makespan+maxW {
				t.Fatalf("balanced %v much worse than round robin %v", bal.Makespan, rr.Makespan)
			}
		}
	}
}

func TestSpeedup(t *testing.T) {
	tr := chain([]float64{1, 1, 1, 1})
	res, err := Balanced(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Speedup(tr)
	if math.Abs(s-2) > 1e-9 {
		t.Fatalf("speedup = %v, want 2", s)
	}
}

func TestPartLabelsAreContiguousComponents(t *testing.T) {
	// On a chain, each part must be a contiguous interval.
	tr := chain([]float64{1, 2, 1, 2, 1, 2})
	res, err := Balanced(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Part); i++ {
		cur := res.Part[i]
		// once a part id ends it must not reappear
		for j := i + 1; j < len(res.Part); j++ {
			if res.Part[j] == cur {
				// fine while contiguous
				if res.Part[j-1] != cur {
					t.Fatalf("part %d not contiguous on chain: %v", cur, res.Part)
				}
			}
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tr, err := NewTree(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Balanced(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 0 {
		t.Fatal("empty tree should produce zero parts")
	}
}

func TestBalancedInvalidK(t *testing.T) {
	tr := chain([]float64{1})
	if _, err := Balanced(tr, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}
