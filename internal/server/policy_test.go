package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accqoc/internal/circuit"
	"accqoc/internal/compilesvc"
	"accqoc/internal/devreg"
	"accqoc/internal/libstore"
	"accqoc/internal/qasm"
)

// Programs over the Linear(3) test device. The anchor h-gate rides along
// in every request so the miner's windows overlap; the cx program's 2Q
// group is the expensive entry the cost policy should protect.
const (
	anchorProgram = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncx q[0],q[1];\nrz(0.2) q[1];\nh q[2];\n"
)

func churnProgram(i int) string {
	return fmt.Sprintf("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nrz(%.2f) q[0];\nh q[2];\n", 0.15+0.07*float64(i))
}

// keysBySize partitions the store's current entries by qubit count.
func keysBySize(s *Server) (oneQ, twoQ []string) {
	for key, e := range s.Store().Snapshot().Entries {
		if e.NumQubits == 2 {
			twoQ = append(twoQ, key)
		} else {
			oneQ = append(oneQ, key)
		}
	}
	return
}

// TestPolicyDefaultEquivalence pins the policy layer's opt-in contract:
// explicit -cache-policy lru -prefetch=false is byte-identical to the
// zero config — same responses, same trained library, and none of the
// new JSON blocks (evict_policy, prefetch) on any endpoint.
func TestPolicyDefaultEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	base := New(Config{Compile: fastOpts(), Workers: 4})
	tsBase := httptest.NewServer(base.Handler())
	defer func() { tsBase.Close(); base.Close() }()
	explicit := New(Config{Compile: fastOpts(), Workers: 4, CachePolicy: "lru", EnablePrefetch: false})
	tsExplicit := httptest.NewServer(explicit.Handler())
	defer func() { tsExplicit.Close(); explicit.Close() }()

	respBase := postRaw(t, tsBase.URL, oneQubitProgram)
	respExplicit := postRaw(t, tsExplicit.URL, oneQubitProgram)

	var a, b CompileResponse
	if err := json.Unmarshal(respBase.body, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(respExplicit.body, &b); err != nil {
		t.Fatal(err)
	}
	a.CompileMillis, b.CompileMillis = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("responses diverge:\nbase     %+v\nexplicit %+v", a, b)
	}

	got := explicit.Store().Snapshot().Entries
	want := base.Store().Snapshot().Entries
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("store sizes diverge: %d vs %d", len(got), len(want))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Fatalf("explicit-lru store missing %q", key)
		}
		if g.Iterations != w.Iterations || !reflect.DeepEqual(g.Pulse.Amps, w.Pulse.Amps) {
			t.Fatalf("entry %q not bit-identical across policy flags", key)
		}
	}

	// The additive JSON blocks stay off the wire under default flags.
	for _, ts := range []*httptest.Server{tsBase, tsExplicit} {
		for _, path := range []string{"/v1/library/usage", "/v1/library/stats"} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var wire map[string]json.RawMessage
			if err := json.Unmarshal(raw, &wire); err != nil {
				t.Fatal(err)
			}
			for _, key := range []string{"evict_policy", "prefetch"} {
				if _, ok := wire[key]; ok {
					t.Errorf("%s carries %q under default flags: %s", path, key, raw)
				}
			}
		}
	}
}

// TestPolicyConfigValidation pins the misconfiguration surface: the cost
// policy without its cost signal, and a policy name the registry does not
// know, both refuse to serve.
func TestPolicyConfigValidation(t *testing.T) {
	mustPanic := func(name string, cfg Config) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: New did not panic", name)
			}
		}()
		New(cfg)
	}
	mustPanic("cost without usage", Config{Compile: fastOpts(), CachePolicy: "cost", DisableUsage: true})
	mustPanic("unknown policy", Config{Compile: fastOpts(), CachePolicy: "mru"})
}

// TestCostPolicyProtectsExpensiveEntry is the tentpole's deterministic
// half: on a capacity-2 store under 1q churn, the cost-aware policy never
// evicts the 667-iteration 2Q entry, while the same workload under LRU
// throws it away immediately.
func TestCostPolicyProtectsExpensiveEntry(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	run := func(policy string) (s *Server, ts *httptest.Server, twoQKey string) {
		s = New(Config{
			Compile:     fastOpts(),
			Workers:     4,
			Store:       libstore.New(libstore.Options{Shards: 1, Capacity: 2}),
			CachePolicy: policy,
		})
		ts = httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		// Train the expensive entry, then hit it once so the ledger scores
		// it (iterations × hits > 0); the tiebreak alone also protects it.
		for i := 0; i < 2; i++ {
			if _, code := postCompile(t, ts.URL, CompileRequest{QASM: anchorProgram}); code != http.StatusOK {
				t.Fatalf("anchor compile %d: status %d", i, code)
			}
		}
		_, twoQs := keysBySize(s)
		if len(twoQs) != 1 {
			t.Fatalf("anchor program produced %d 2Q entries, want 1", len(twoQs))
		}
		twoQKey = twoQs[0]
		// Churn distinct cheap 1q keys through the 2-entry store.
		for i := 0; i < 5; i++ {
			if _, code := postCompile(t, ts.URL, CompileRequest{QASM: churnProgram(i)}); code != http.StatusOK {
				t.Fatalf("churn compile %d: status %d", i, code)
			}
		}
		return s, ts, twoQKey
	}

	sCost, tsCost, costKey := run("cost")
	if !sCost.Store().Contains(costKey) {
		t.Fatalf("cost policy evicted the expensive 2Q entry %q", costKey)
	}
	warm, code := postCompile(t, tsCost.URL, CompileRequest{QASM: anchorProgram})
	if code != http.StatusOK || warm.TrainingIterations != 0 {
		t.Fatalf("anchor re-request retrained under cost policy: %+v (status %d)", warm, code)
	}

	sLRU, _, lruKey := run("lru")
	if sLRU.Store().Contains(lruKey) {
		t.Fatalf("LRU kept the 2Q entry %q through 1q churn; the workload no longer stresses the policy", lruKey)
	}

	// The counters and their wire surfaces agree: every churn eviction was
	// a cost pick or an LRU fallback, and the expensive key was never the
	// victim.
	u := getUsage(t, tsCost.URL, "")
	if u.EvictPolicy == nil || u.EvictPolicy.CostPicks == 0 {
		t.Fatalf("usage evict_policy = %+v, want cost picks > 0", u.EvictPolicy)
	}
	if u.EvictPolicy.CostPicks+u.EvictPolicy.LRUFallbacks != u.Regret.Evictions {
		t.Errorf("policy decisions %d+%d != evictions %d",
			u.EvictPolicy.CostPicks, u.EvictPolicy.LRUFallbacks, u.Regret.Evictions)
	}
	st := getStats(t, tsCost.URL)
	if st.EvictPolicy == nil || *st.EvictPolicy != *u.EvictPolicy {
		t.Errorf("stats evict_policy = %+v, usage says %+v", st.EvictPolicy, u.EvictPolicy)
	}
	exp := scrapeMetrics(t, tsCost.URL)
	if got := exp.sumSeries("accqoc_evict_policy_cost_picks_total"); got != float64(u.EvictPolicy.CostPicks) {
		t.Errorf("accqoc_evict_policy_cost_picks_total = %v, report says %d", got, u.EvictPolicy.CostPicks)
	}
	if got := exp.sumSeries("accqoc_evict_policy_lru_fallbacks_total"); got != float64(u.EvictPolicy.LRUFallbacks) {
		t.Errorf("accqoc_evict_policy_lru_fallbacks_total = %v, report says %d", got, u.EvictPolicy.LRUFallbacks)
	}
}

// TestPrefetchSpeculativeTraining drives the predict→train cycle
// deterministically: evict a co-occurring key through churn, then let one
// idle cycle re-train it from its retained target, and check the
// exactly-once accounting across the request path and the speculative
// path.
func TestPrefetchSpeculativeTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	s := New(Config{
		Compile:          fastOpts(),
		Workers:          4,
		Store:            libstore.New(libstore.Options{Shards: 1, Capacity: 2}),
		EnablePrefetch:   true,
		PrefetchInterval: time.Hour, // the test drives RunOnce itself
	})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	var requestTrained int64
	post := func(src string) {
		t.Helper()
		out, code := postCompile(t, ts.URL, CompileRequest{QASM: src})
		if code != http.StatusOK {
			t.Fatalf("compile status %d", code)
		}
		requestTrained += int64(out.UncoveredUnique)
	}

	// Two anchor requests: the cx group and the h anchor co-occur twice in
	// the miner's ring. Then 1q churn pushes the cx entry out of the
	// 2-entry store (LRU policy here — eviction pressure is the point).
	post(anchorProgram)
	post(anchorProgram)
	_, twoQs := keysBySize(s)
	if len(twoQs) != 1 {
		t.Fatalf("anchor program left %d 2Q entries, want 1", len(twoQs))
	}
	cxKey := twoQs[0]
	post(churnProgram(0))
	post(churnProgram(1))
	if s.Store().Contains(cxKey) {
		t.Fatal("churn did not evict the 2Q entry; prefetch has nothing to do")
	}

	// One idle cycle: the window ({rz1, h}) votes for the evicted cx key
	// through its co-occurrence with the anchor, the target cache still
	// holds its unitary, and the pool is idle — so it re-trains.
	s.Prefetcher().RunOnce()
	if !s.Store().Contains(cxKey) {
		t.Fatalf("idle cycle did not re-train the predicted miss %q; prefetch stats %+v",
			cxKey, s.Prefetcher().Stats())
	}
	pstats := s.Prefetcher().Stats()
	if pstats.Trained != 1 || pstats.Predicted == 0 {
		t.Fatalf("prefetch stats = %+v, want exactly 1 trained from >0 predictions", pstats)
	}
	if pstats.Iterations <= 0 {
		t.Errorf("speculative training reported %d iterations", pstats.Iterations)
	}

	// The re-request is served from the speculation, not a retrain: the
	// 2Q group costs hundreds of iterations, so any request-path training
	// now is at most the cheap anchor's.
	out, code := postCompile(t, ts.URL, CompileRequest{QASM: anchorProgram})
	if code != http.StatusOK {
		t.Fatalf("re-request status %d", code)
	}
	requestTrained += int64(out.UncoveredUnique)
	if int64(out.TrainingIterations) >= pstats.Iterations {
		t.Errorf("re-request trained %d iterations, speculation paid %d — prefetch did not serve it",
			out.TrainingIterations, pstats.Iterations)
	}

	// Exactly-once oracle: every training ran through the same
	// singleflight, so the ledger's total is the request-path sum plus the
	// speculative trainings, with nothing counted twice.
	u := getUsage(t, ts.URL, "?n=1000")
	if u.Totals.Trainings != requestTrained+pstats.Trained {
		t.Errorf("ledger trainings = %d, want request-path %d + speculative %d",
			u.Totals.Trainings, requestTrained, pstats.Trained)
	}
	if u.Prefetch == nil || u.Prefetch.Trained != pstats.Trained {
		t.Errorf("usage prefetch block = %+v, driver says %+v", u.Prefetch, pstats)
	}
	st := getStats(t, ts.URL)
	if st.Server.Prefetch == nil || st.Server.Prefetch.Trained != pstats.Trained {
		t.Errorf("stats prefetch block = %+v, driver says %+v", st.Server.Prefetch, pstats)
	}
	exp := scrapeMetrics(t, ts.URL)
	if got := exp.sumSeries("accqoc_prefetch_trained_total"); got != float64(pstats.Trained) {
		t.Errorf("accqoc_prefetch_trained_total = %v, driver says %d", got, pstats.Trained)
	}
	if got := exp.sumSeries("accqoc_prefetch_iterations_total"); got != float64(pstats.Iterations) {
		t.Errorf("accqoc_prefetch_iterations_total = %v, driver says %d", got, pstats.Iterations)
	}
}

// TestPolicyPrefetchRace is the -race workout for the whole policy half:
// concurrent compiles over a capacity-2 cost-policy store, a goroutine
// hammering idle cycles, concurrent scrapes — then the exactly-once
// iteration oracle and the policy-decision conservation law.
func TestPolicyPrefetchRace(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	s := New(Config{
		Compile:          fastOpts(),
		Workers:          4,
		Store:            libstore.New(libstore.Options{Shards: 1, Capacity: 2}),
		CachePolicy:      "cost",
		EnablePrefetch:   true,
		PrefetchInterval: time.Hour,
	})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	var requestIters atomic.Int64
	stop := make(chan struct{})
	var auxWG sync.WaitGroup
	auxWG.Add(2)
	go func() { // idle-cycle driver racing the request traffic
		defer auxWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				s.Prefetcher().RunOnce()
			}
		}
	}()
	go func() { // scrape pressure on every policy surface
		defer auxWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			scrapeMetrics(t, ts.URL)
			for _, path := range []string{"/v1/library/usage?n=50", "/v1/library/stats"} {
				resp, err := http.Get(ts.URL + path)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}()

	// All-1q traffic: the oracle needs eviction pressure and speculative
	// trainings racing real ones, not expensive 2Q GRAPE runs (the 2Q
	// protection story is TestCostPolicyProtectsExpensiveEntry's, and this
	// box may be a single core).
	const workers, perWorker = 4, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				src := churnProgram((w + i) % 5)
				out, code := postCompile(t, ts.URL, CompileRequest{QASM: src})
				if code != http.StatusOK {
					t.Errorf("worker %d compile %d: status %d", w, i, code)
					return
				}
				requestIters.Add(int64(out.TrainingIterations))
			}
		}()
	}
	wg.Wait()
	close(stop)
	auxWG.Wait()

	u := getUsage(t, ts.URL, "?n=1000")
	pstats := s.Prefetcher().Stats()
	// Exactly-once: the singleflight means every GRAPE iteration in the
	// ledger was paid by exactly one response or one speculation.
	if u.Totals.Iterations != requestIters.Load()+pstats.Iterations {
		t.Errorf("ledger iterations = %d, want request-path %d + speculative %d",
			u.Totals.Iterations, requestIters.Load(), pstats.Iterations)
	}
	// Conservation: the policy ruled on every eviction, one way or the
	// other.
	if u.EvictPolicy == nil {
		t.Fatal("cost-policy server reported no evict_policy block")
	}
	if u.EvictPolicy.CostPicks+u.EvictPolicy.LRUFallbacks != u.Regret.Evictions {
		t.Errorf("policy decisions %d+%d != evictions %d",
			u.EvictPolicy.CostPicks, u.EvictPolicy.LRUFallbacks, u.Regret.Evictions)
	}
	if u.Regret.Evictions == 0 {
		t.Error("capacity-2 store under 5-key churn never evicted")
	}
}

// replayOutcome is one arm's measurement of the capacity-constrained
// replay in BenchmarkPolicyReplay.
type replayOutcome struct {
	regretIters   int64 // ledger regret: iterations of evicted-then-missed entries
	coldTrainings int64 // request-path trainings (sum of per-response uncovered groups)
	requestIters  int64 // request-path GRAPE iterations
	prefetched    int64 // speculative trainings (cost+prefetch arm only)
}

// runPolicyReplay replays the skewed workload against one policy arm:
// rounds of [expensive-anchor, churn ×3] over a 3-entry store, where LRU
// evicts the expensive 2Q group every round and re-trains it on the next
// anchor request. GRAPE is seeded, so request-path iteration counts are
// deterministic per arm; the prediction ranking uses wall-clock
// inter-arrival stats, so exactly which churn key a speculation picks may
// vary — the assertions only use the deterministic margins.
func runPolicyReplay(tb testing.TB, rounds int, costPolicy, prefetch bool) replayOutcome {
	policy := "lru"
	if costPolicy {
		policy = "cost"
	}
	s := New(Config{
		Compile:          fastOpts(),
		Workers:          1,
		Store:            libstore.New(libstore.Options{Shards: 1, Capacity: 4}),
		CachePolicy:      policy,
		EnablePrefetch:   prefetch,
		PrefetchInterval: time.Hour, // driven manually between requests
	})
	defer s.Close()

	anchor, err := qasm.Parse(anchorProgram)
	if err != nil {
		tb.Fatal(err)
	}
	churn := make([]*circuit.Circuit, 3)
	for i := range churn {
		p, perr := qasm.Parse(churnProgram(i))
		if perr != nil {
			tb.Fatal(perr)
		}
		churn[i] = p
	}

	var out replayOutcome
	serve := func(prog *circuit.Circuit) {
		res, derr := s.svc.Do(&compilesvc.Request{Prog: prog, NS: s.defaultNS()})
		if derr != nil {
			tb.Fatal(derr)
		}
		out.coldTrainings += int64(res.Resp.UncoveredUnique)
		out.requestIters += int64(res.Resp.TrainingIterations)
		if prefetch {
			s.Prefetcher().RunOnce()
		}
	}
	serve(anchor) // warm the anchor once outside the measured rounds
	out = replayOutcome{}
	for r := 0; r < rounds; r++ {
		serve(anchor)
		for i := 0; i < 3; i++ {
			serve(churn[i])
		}
	}
	ledger, err := s.Registry().UsageLedger("")
	if err != nil {
		tb.Fatal(err)
	}
	out.regretIters = ledger.Report(0).Regret.Iterations
	if prefetch {
		out.prefetched = s.Prefetcher().Stats().Trained
	}
	return out
}

// runColdStartReplay measures the prefetcher's coverage win: warm the
// 5-key working set at ample capacity, invalidate everything with a
// calibration epoch (no roll driver — the bench models an invalidation
// with nothing re-covering the set), then replay two rounds. Without
// prefetch every key re-trains on the request path; with it, each idle
// cycle between requests re-covers one predicted key off-path, so
// request-path cold trainings must come out strictly lower. The store has
// slack here, so every speculation adds coverage instead of swapping it.
func runColdStartReplay(tb testing.TB, prefetch bool) replayOutcome {
	s := New(Config{
		Compile:          fastOpts(),
		Workers:          1,
		StoreOptions:     libstore.Options{Shards: 1, Capacity: 8},
		CachePolicy:      "cost",
		EnablePrefetch:   prefetch,
		PrefetchInterval: time.Hour,
	})
	defer s.Close()

	anchor, err := qasm.Parse(anchorProgram)
	if err != nil {
		tb.Fatal(err)
	}
	churn := make([]*circuit.Circuit, 3)
	for i := range churn {
		p, perr := qasm.Parse(churnProgram(i))
		if perr != nil {
			tb.Fatal(perr)
		}
		churn[i] = p
	}
	var out replayOutcome
	serve := func(prog *circuit.Circuit) {
		res, derr := s.svc.Do(&compilesvc.Request{Prog: prog, NS: s.defaultNS()})
		if derr != nil {
			tb.Fatal(derr)
		}
		out.coldTrainings += int64(res.Resp.UncoveredUnique)
		out.requestIters += int64(res.Resp.TrainingIterations)
		if prefetch {
			s.Prefetcher().RunOnce()
		}
	}
	round := func() {
		serve(anchor)
		for i := 0; i < 3; i++ {
			serve(churn[i])
		}
	}
	round() // warm the working set (capacity has slack; nothing evicts)

	// The invalidation: a drifted calibration opens an empty-store epoch.
	// The ledger, its history ring, and the target cache are epoch-stable,
	// so the prefetcher knows exactly what was hot and how to re-train it.
	roll, err := s.Registry().Calibrate("", devreg.CalibrationUpdate{DriftPct: 2})
	if err != nil {
		tb.Fatal(err)
	}
	roll.Finish()

	out = replayOutcome{}
	if prefetch {
		// The idle gap after the calibration: the ticker would fire here.
		s.Prefetcher().RunOnce()
	}
	round()
	round()
	if prefetch {
		out.prefetched = s.Prefetcher().Stats().Trained
	}
	return out
}

// BenchmarkPolicyReplay is the acceptance replay committed to
// BENCH_policy.json, in two halves. eviction: the skewed,
// capacity-constrained workload under plain LRU, the cost-aware policy,
// and cost+prefetch — the cost arms must beat LRU on both
// regret-iterations and request-path cold trainings. coldstart: the
// post-calibration cold store, where idle-cycle speculation must strictly
// cut request-path cold trainings. Both improvements are asserted, not
// just reported.
func BenchmarkPolicyReplay(b *testing.B) {
	b.Run("eviction", func(b *testing.B) {
		const rounds = 6
		for i := 0; i < b.N; i++ {
			lru := runPolicyReplay(b, rounds, false, false)
			cost := runPolicyReplay(b, rounds, true, false)
			both := runPolicyReplay(b, rounds, true, true)
			for name, arm := range map[string]replayOutcome{"cost": cost, "cost+prefetch": both} {
				if arm.regretIters >= lru.regretIters {
					b.Errorf("%s regret-iterations %d, LRU %d — want strictly lower", name, arm.regretIters, lru.regretIters)
				}
				if arm.coldTrainings >= lru.coldTrainings {
					b.Errorf("%s cold trainings %d, LRU %d — want strictly lower", name, arm.coldTrainings, lru.coldTrainings)
				}
			}
			b.ReportMetric(float64(lru.regretIters), "lru-regret-iters/op")
			b.ReportMetric(float64(cost.regretIters), "cost-regret-iters/op")
			b.ReportMetric(float64(both.regretIters), "prefetch-regret-iters/op")
			b.ReportMetric(float64(lru.coldTrainings), "lru-cold-trainings/op")
			b.ReportMetric(float64(cost.coldTrainings), "cost-cold-trainings/op")
			b.ReportMetric(float64(both.coldTrainings), "prefetch-cold-trainings/op")
			b.ReportMetric(float64(both.prefetched), "prefetch-speculations/op")
		}
	})
	b.Run("coldstart", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plain := runColdStartReplay(b, false)
			pre := runColdStartReplay(b, true)
			if pre.coldTrainings >= plain.coldTrainings {
				b.Errorf("prefetch cold trainings %d, plain %d — want strictly lower", pre.coldTrainings, plain.coldTrainings)
			}
			// Request-path iterations also drop, but the margin depends on
			// which entries are around to warm-seed from, so it is reported
			// rather than asserted.
			b.ReportMetric(float64(plain.coldTrainings), "plain-cold-trainings/op")
			b.ReportMetric(float64(pre.coldTrainings), "prefetch-cold-trainings/op")
			b.ReportMetric(float64(plain.requestIters), "plain-request-iters/op")
			b.ReportMetric(float64(pre.requestIters), "prefetch-request-iters/op")
			b.ReportMetric(float64(pre.prefetched), "prefetch-speculations/op")
		}
	})
}
