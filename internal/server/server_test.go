package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"accqoc"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/precompile"
	"accqoc/internal/qasm"
	"accqoc/internal/topology"
)

// fastOpts keeps GRAPE budgets small so tests train in milliseconds.
func fastOpts() accqoc.Options {
	return accqoc.Options{
		Device: topology.Linear(3),
		Policy: grouping.Map2b4l,
		Precompile: precompile.Config{
			Grape:    grape.Options{TargetInfidelity: 1e-2, MaxIterations: 300, Seed: 1},
			Search1Q: grape.SearchOptions{MinDuration: 10, MaxDuration: 120, Resolution: 20},
			Search2Q: grape.SearchOptions{MinDuration: 200, MaxDuration: 1400, Resolution: 200},
		},
	}
}

// oneQubitProgram: rz/h gates only, so every group is single-qubit and
// trains fast.
const oneQubitProgram = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
rz(0.4) q[0];
h q[0];
rz(1.1) q[1];
`

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Compile: fastOpts(), Workers: 8})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postCompile(t *testing.T, url string, req CompileRequest) (*CompileResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, resp.StatusCode
	}
	var out CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

func getStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/library/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerWarmCacheEndToEnd is the subsystem's demo: the same circuit
// submitted twice, with the second request served entirely from the warm
// library, visible both in the response and in /v1/library/stats.
func TestServerWarmCacheEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	_, ts := newTestServer(t)

	cold, code := postCompile(t, ts.URL, CompileRequest{QASM: oneQubitProgram})
	if code != http.StatusOK {
		t.Fatalf("cold request status %d", code)
	}
	if cold.UncoveredUnique == 0 || cold.WarmServed {
		t.Fatalf("cold request reported warm: %+v", cold)
	}
	if cold.QOCLatencyNs <= 0 || cold.EstimatedFidelity <= 0 {
		t.Fatalf("cold request missing latency/fidelity: %+v", cold)
	}

	warm, code := postCompile(t, ts.URL, CompileRequest{QASM: oneQubitProgram})
	if code != http.StatusOK {
		t.Fatalf("warm request status %d", code)
	}
	if !warm.WarmServed || warm.CoverageRate != 1 || warm.UncoveredUnique != 0 {
		t.Fatalf("second request not warm: %+v", warm)
	}
	if warm.QOCLatencyNs != cold.QOCLatencyNs {
		t.Fatalf("warm latency %v differs from cold %v", warm.QOCLatencyNs, cold.QOCLatencyNs)
	}
	if warm.CompileMillis >= cold.CompileMillis {
		t.Fatalf("warm compile (%.2fms) not faster than cold (%.2fms)",
			warm.CompileMillis, cold.CompileMillis)
	}

	st := getStats(t, ts.URL)
	if st.Library.Trainings != int64(cold.UncoveredUnique) {
		t.Fatalf("trainings = %d, want %d (one per unique group)",
			st.Library.Trainings, cold.UncoveredUnique)
	}
	if st.Library.Hits == 0 {
		t.Fatal("warm request produced no library hits")
	}
	if st.Server.Requests != 2 || st.Server.Failures != 0 {
		t.Fatalf("server stats %+v, want 2 requests, 0 failures", st.Server)
	}
	if st.Server.TotalCompileMillis <= 0 {
		t.Fatal("no compile time accounted")
	}
}

// TestServerConcurrentDuplicatesTrainOnce submits the same circuit from
// many clients at once on a cold server: the store's singleflight must
// collapse them to exactly one GRAPE training per unique group.
func TestServerConcurrentDuplicatesTrainOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	s, ts := newTestServer(t)

	// Independently compute the program's unique group count.
	prog, err := qasm.Parse(oneQubitProgram)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := accqoc.New(fastOpts()).Prepare(prog)
	if err != nil {
		t.Fatal(err)
	}
	uniq, err := grouping.Deduplicate(prep.Grouping.Groups)
	if err != nil {
		t.Fatal(err)
	}
	wantUnique := len(uniq)
	if wantUnique == 0 {
		t.Fatal("program has no groups")
	}

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, code := postCompile(t, ts.URL, CompileRequest{QASM: oneQubitProgram})
			if code != http.StatusOK {
				t.Errorf("status %d", code)
				return
			}
			if resp.FailedGroups != 0 {
				t.Errorf("failed groups: %+v", resp)
			}
		}()
	}
	wg.Wait()

	st := s.Store().Stats()
	if st.Trainings != int64(wantUnique) {
		t.Fatalf("%d concurrent duplicates ran %d trainings, want exactly %d",
			clients, st.Trainings, wantUnique)
	}
	if st.Entries != wantUnique {
		t.Fatalf("store has %d entries, want %d", st.Entries, wantUnique)
	}
	if st.TrainFailures != 0 {
		t.Fatalf("train failures: %d", st.TrainFailures)
	}
}

func TestServerWorkloadSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	_, ts := newTestServer(t)
	resp, code := postCompile(t, ts.URL, CompileRequest{Workload: "qft:2"})
	if code != http.StatusOK {
		t.Fatalf("qft:2 status %d", code)
	}
	if resp.TotalGroups == 0 || resp.GateLatencyNs <= 0 {
		t.Fatalf("qft:2 response %+v", resp)
	}
}

func TestServerRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []CompileRequest{
		{},                             // neither field
		{QASM: "x", Workload: "qft:2"}, // both fields
		{QASM: "not qasm at all"},      // parse error
		{Workload: "warp:9"},           // unknown spec
		{Workload: "random:1:10:1"},    // bad qubit count
	}
	for i, req := range cases {
		if _, code := postCompile(t, ts.URL, req); code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, code)
		}
	}
	// Raw garbage body.
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", resp.StatusCode)
	}
}

func TestServerGateBudget(t *testing.T) {
	s := New(Config{Compile: fastOpts(), MaxGates: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, code := postCompile(t, ts.URL, CompileRequest{QASM: oneQubitProgram}); code != http.StatusBadRequest {
		t.Fatalf("over-budget program status %d, want 400", code)
	}
	if _, code := postCompile(t, ts.URL, CompileRequest{Workload: "qft:8"}); code != http.StatusBadRequest {
		t.Fatalf("over-budget workload status %d, want 400", code)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Fatalf("healthz body %v", body)
	}
}
