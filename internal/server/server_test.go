package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"accqoc"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/precompile"
	"accqoc/internal/qasm"
	"accqoc/internal/topology"
)

// fastOpts keeps GRAPE budgets small so tests train in milliseconds.
func fastOpts() accqoc.Options {
	return accqoc.Options{
		Device: topology.Linear(3),
		Policy: grouping.Map2b4l,
		Precompile: precompile.Config{
			Grape:    grape.Options{TargetInfidelity: 1e-2, MaxIterations: 300, Seed: 1},
			Search1Q: grape.SearchOptions{MinDuration: 10, MaxDuration: 120, Resolution: 20},
			Search2Q: grape.SearchOptions{MinDuration: 200, MaxDuration: 1400, Resolution: 200},
		},
	}
}

// oneQubitProgram: rz/h gates only, so every group is single-qubit and
// trains fast.
const oneQubitProgram = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
rz(0.4) q[0];
h q[0];
rz(1.1) q[1];
`

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Compile: fastOpts(), Workers: 8})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postCompile(t *testing.T, url string, req CompileRequest) (*CompileResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, resp.StatusCode
	}
	var out CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

func getStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/library/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerWarmCacheEndToEnd is the subsystem's demo: the same circuit
// submitted twice, with the second request served entirely from the warm
// library, visible both in the response and in /v1/library/stats.
func TestServerWarmCacheEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	_, ts := newTestServer(t)

	cold, code := postCompile(t, ts.URL, CompileRequest{QASM: oneQubitProgram})
	if code != http.StatusOK {
		t.Fatalf("cold request status %d", code)
	}
	if cold.UncoveredUnique == 0 || cold.WarmServed {
		t.Fatalf("cold request reported warm: %+v", cold)
	}
	if cold.QOCLatencyNs <= 0 || cold.EstimatedFidelity <= 0 {
		t.Fatalf("cold request missing latency/fidelity: %+v", cold)
	}

	warm, code := postCompile(t, ts.URL, CompileRequest{QASM: oneQubitProgram})
	if code != http.StatusOK {
		t.Fatalf("warm request status %d", code)
	}
	if !warm.WarmServed || warm.CoverageRate != 1 || warm.UncoveredUnique != 0 {
		t.Fatalf("second request not warm: %+v", warm)
	}
	if warm.QOCLatencyNs != cold.QOCLatencyNs {
		t.Fatalf("warm latency %v differs from cold %v", warm.QOCLatencyNs, cold.QOCLatencyNs)
	}
	if warm.CompileMillis >= cold.CompileMillis {
		t.Fatalf("warm compile (%.2fms) not faster than cold (%.2fms)",
			warm.CompileMillis, cold.CompileMillis)
	}

	st := getStats(t, ts.URL)
	if st.Library.Trainings != int64(cold.UncoveredUnique) {
		t.Fatalf("trainings = %d, want %d (one per unique group)",
			st.Library.Trainings, cold.UncoveredUnique)
	}
	if st.Library.Hits == 0 {
		t.Fatal("warm request produced no library hits")
	}
	if st.Server.Requests != 2 || st.Server.Failures != 0 {
		t.Fatalf("server stats %+v, want 2 requests, 0 failures", st.Server)
	}
	if st.Server.TotalCompileMillis <= 0 {
		t.Fatal("no compile time accounted")
	}
}

// TestServerConcurrentDuplicatesTrainOnce submits the same circuit from
// many clients at once on a cold server: the store's singleflight must
// collapse them to exactly one GRAPE training per unique group.
func TestServerConcurrentDuplicatesTrainOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	s, ts := newTestServer(t)

	// Independently compute the program's unique group count.
	prog, err := qasm.Parse(oneQubitProgram)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := accqoc.New(fastOpts()).Prepare(prog)
	if err != nil {
		t.Fatal(err)
	}
	uniq, err := grouping.Deduplicate(prep.Grouping.Groups)
	if err != nil {
		t.Fatal(err)
	}
	wantUnique := len(uniq)
	if wantUnique == 0 {
		t.Fatal("program has no groups")
	}

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, code := postCompile(t, ts.URL, CompileRequest{QASM: oneQubitProgram})
			if code != http.StatusOK {
				t.Errorf("status %d", code)
				return
			}
			if resp.FailedGroups != 0 {
				t.Errorf("failed groups: %+v", resp)
			}
		}()
	}
	wg.Wait()

	st := s.Store().Stats()
	if st.Trainings != int64(wantUnique) {
		t.Fatalf("%d concurrent duplicates ran %d trainings, want exactly %d",
			clients, st.Trainings, wantUnique)
	}
	if st.Entries != wantUnique {
		t.Fatalf("store has %d entries, want %d", st.Entries, wantUnique)
	}
	if st.TrainFailures != 0 {
		t.Fatalf("train failures: %d", st.TrainFailures)
	}
}

func TestServerWorkloadSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	_, ts := newTestServer(t)
	resp, code := postCompile(t, ts.URL, CompileRequest{Workload: "qft:2"})
	if code != http.StatusOK {
		t.Fatalf("qft:2 status %d", code)
	}
	if resp.TotalGroups == 0 || resp.GateLatencyNs <= 0 {
		t.Fatalf("qft:2 response %+v", resp)
	}
}

func TestServerRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []CompileRequest{
		{},                             // neither field
		{QASM: "x", Workload: "qft:2"}, // both fields
		{QASM: "not qasm at all"},      // parse error
		{Workload: "warp:9"},           // unknown spec
		{Workload: "random:1:10:1"},    // bad qubit count
	}
	for i, req := range cases {
		if _, code := postCompile(t, ts.URL, req); code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, code)
		}
	}
	// Raw garbage body.
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", resp.StatusCode)
	}
}

func TestServerGateBudget(t *testing.T) {
	s := New(Config{Compile: fastOpts(), MaxGates: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, code := postCompile(t, ts.URL, CompileRequest{QASM: oneQubitProgram}); code != http.StatusBadRequest {
		t.Fatalf("over-budget program status %d, want 400", code)
	}
	if _, code := postCompile(t, ts.URL, CompileRequest{Workload: "qft:8"}); code != http.StatusBadRequest {
		t.Fatalf("over-budget workload status %d, want 400", code)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var body HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || !body.Ready {
		t.Fatalf("healthz body %+v", body)
	}
	if body.Boot != nil {
		t.Fatalf("no boot snapshot configured, healthz reports %+v", body.Boot)
	}
	if len(body.Devices) != 1 || body.Devices[0].Epoch != 0 {
		t.Fatalf("healthz devices %+v, want one device at epoch 0", body.Devices)
	}
}

// Two programs whose single 1Q groups are distinct but similar: rx
// rotations 0.15 rad apart have TraceFid distance ≈ 1−cos(0.075) ≪ 0.3,
// so the second is seedable from the first.
const (
	rxAProgram = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nrx(0.5) q[0];\n"
	rxBProgram = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nrx(0.65) q[0];\n"
)

// TestServerWarmSeededTraining is the serving-path demo of the paper's
// warm-start acceleration: after training group A, a similar cache-miss
// group B trains from A's pulse — visible in the response counters, the
// stats endpoint, and a strictly lower iteration count than B's cold
// compile.
func TestServerWarmSeededTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}

	// Cold baseline: index disabled, B trains from a random init.
	coldSrv := New(Config{Compile: fastOpts(), Workers: 2, DisableSeedIndex: true})
	coldTS := httptest.NewServer(coldSrv.Handler())
	coldResp, code := postCompile(t, coldTS.URL, CompileRequest{QASM: rxBProgram})
	coldTS.Close()
	coldSrv.Close()
	if code != http.StatusOK {
		t.Fatalf("cold B status %d", code)
	}
	if coldResp.WarmSeeded != 0 || coldResp.SeedDistance != 0 {
		t.Fatalf("disabled index reported seeding: %+v", coldResp)
	}
	if coldResp.TrainingIterations == 0 {
		t.Fatal("cold compile reported zero training iterations")
	}

	// Warm path: train A first, then the similar B.
	s, ts := newTestServer(t)
	aResp, code := postCompile(t, ts.URL, CompileRequest{QASM: rxAProgram})
	if code != http.StatusOK {
		t.Fatalf("A status %d", code)
	}
	if aResp.WarmSeeded != 0 {
		t.Fatalf("first request on an empty library claims a seed: %+v", aResp)
	}
	bResp, code := postCompile(t, ts.URL, CompileRequest{QASM: rxBProgram})
	if code != http.StatusOK {
		t.Fatalf("B status %d", code)
	}
	if bResp.WarmSeeded != 1 {
		t.Fatalf("B trained unseeded next to a similar covered neighbor: %+v", bResp)
	}
	if bResp.SeedDistance <= 0 || bResp.SeedDistance > 0.3 {
		t.Fatalf("seed distance %v outside (0, WarmThreshold]", bResp.SeedDistance)
	}
	if bResp.TrainingIterations >= coldResp.TrainingIterations {
		t.Fatalf("warm-seeded training took %d iterations, cold took %d — seeding did not help",
			bResp.TrainingIterations, coldResp.TrainingIterations)
	}

	st := getStats(t, ts.URL)
	if st.Server.WarmSeeded != 1 {
		t.Fatalf("stats warm_seeded = %d, want 1", st.Server.WarmSeeded)
	}
	if st.SeedIndex == nil {
		t.Fatal("stats missing seed_index block")
	}
	if st.SeedIndex.Entries != s.Store().Len() {
		t.Fatalf("seed index holds %d entries, store %d — hook out of sync",
			st.SeedIndex.Entries, s.Store().Len())
	}
	if st.SeedIndex.Seeded == 0 || st.SeedIndex.Lookups == 0 {
		t.Fatalf("seed index counters flat: %+v", st.SeedIndex)
	}
	// Serving-path trainings pre-index under their known target unitary,
	// so the store hook never propagates: the request path performs zero
	// matrix exponentials for index maintenance (the acceptance
	// invariant; snapshot backfill at boot is the only propagation site).
	if st.SeedIndex.Propagations != 0 {
		t.Fatalf("serving path propagated %d pulses for the index, want 0", st.SeedIndex.Propagations)
	}
}

// TestServerPlanFailureFallsBackToLegacyPath configures an unknown
// similarity function — similarity.Distance errors, so MST planning for
// a multi-group cold request cannot build its graph — and requires the
// request to degrade to the legacy cold path (200, trained groups)
// rather than fail.
func TestServerPlanFailureFallsBackToLegacyPath(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	opts := fastOpts()
	opts.Precompile.Similarity = "no-such-metric"
	s := New(Config{Compile: opts, Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	prog := "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nrx(0.7) q[0];\nrx(0.9) q[1];\n"
	resp, code := postCompile(t, ts.URL, CompileRequest{QASM: prog})
	if code != http.StatusOK {
		t.Fatalf("plan failure escalated to status %d, want 200 via legacy fallback", code)
	}
	if resp.FailedGroups != 0 || resp.UncoveredUnique != 2 {
		t.Fatalf("fallback did not train the groups: %+v", resp)
	}
	if resp.WarmSeeded != 0 {
		t.Fatalf("broken similarity function claimed a seed: %+v", resp)
	}
}

// TestServerInRequestMSTSeeding submits one request holding two similar
// cold groups against an empty library: the plan must train them along
// the MST edge so the second seeds from the first, with no covered
// entries involved at all.
func TestServerInRequestMSTSeeding(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	_, ts := newTestServer(t)
	prog := "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nrx(0.7) q[0];\nrx(0.9) q[1];\n"
	resp, code := postCompile(t, ts.URL, CompileRequest{QASM: prog})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.UncoveredUnique != 2 {
		t.Fatalf("want 2 cold unique groups, got %+v", resp)
	}
	if resp.WarmSeeded != 1 {
		t.Fatalf("MST child did not seed from its in-request parent: %+v", resp)
	}
}

// TestServerDisabledIndexBitIdentical pins the determinism baseline: with
// the seed index off, the serving path must produce exactly the library
// the pre-index implementation did — byte-for-byte equal to training each
// unique group independently, cold, in deduplication order.
func TestServerDisabledIndexBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	s := New(Config{Compile: fastOpts(), Workers: 4, DisableSeedIndex: true})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	for _, prog := range []string{oneQubitProgram, rxAProgram} {
		if _, code := postCompile(t, ts.URL, CompileRequest{QASM: prog}); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
	}

	// Reference: train every unique group directly, cold, from the same
	// deterministic GRAPE options.
	comp := accqoc.New(fastOpts())
	cfg := comp.Options().Precompile
	want := map[string]*precompile.Entry{}
	for _, progSrc := range []string{oneQubitProgram, rxAProgram} {
		prog, err := qasm.Parse(progSrc)
		if err != nil {
			t.Fatal(err)
		}
		prep, err := comp.Prepare(prog)
		if err != nil {
			t.Fatal(err)
		}
		uniq, err := grouping.Deduplicate(prep.Grouping.Groups)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range uniq {
			if _, ok := want[u.Key]; ok {
				continue
			}
			e, err := precompile.TrainGroup(u, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			want[u.Key] = e
		}
	}

	got := s.Store().Snapshot().Entries
	if len(got) != len(want) {
		t.Fatalf("store has %d entries, reference %d", len(got), len(want))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Fatalf("store missing %q", key)
		}
		if g.LatencyNs != w.LatencyNs || g.Iterations != w.Iterations {
			t.Fatalf("entry %q diverges: latency %v vs %v, iterations %d vs %d",
				key, g.LatencyNs, w.LatencyNs, g.Iterations, w.Iterations)
		}
		if !reflect.DeepEqual(g.Pulse.Amps, w.Pulse.Amps) || g.Pulse.Dt != w.Pulse.Dt {
			t.Fatalf("entry %q pulse not bit-identical to the cold reference", key)
		}
	}
}

// TestServerConcurrentSeededDuplicates hammers the warm path from many
// clients at once (run with -race): the hook-driven index mutations and
// seed lookups must be exactly-once-per-group and race-clean.
func TestServerConcurrentSeededDuplicates(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	s, ts := newTestServer(t)
	if _, code := postCompile(t, ts.URL, CompileRequest{QASM: rxAProgram}); code != http.StatusOK {
		t.Fatalf("warmup status %d", code)
	}
	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, code := postCompile(t, ts.URL, CompileRequest{QASM: rxBProgram})
			if code != http.StatusOK {
				t.Errorf("status %d", code)
				return
			}
			if resp.FailedGroups != 0 {
				t.Errorf("failed groups: %+v", resp)
			}
		}()
	}
	wg.Wait()
	st := s.Store().Stats()
	// A's group plus B's group: exactly two trainings ever ran.
	if st.Trainings != 2 {
		t.Fatalf("trainings = %d, want 2 (singleflight with seeding)", st.Trainings)
	}
	if got := s.Store().Len(); getStats(t, ts.URL).SeedIndex.Entries != got {
		t.Fatalf("index/store entry mismatch after concurrent load")
	}
}
