package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"testing"

	"accqoc"
	"accqoc/internal/compilesvc"
	"accqoc/internal/libstore"
	"accqoc/internal/precompile"
	"accqoc/internal/pulse"
	"accqoc/internal/workload"
)

func postCircuit(t *testing.T, url string, req CircuitRequest) (*CircuitResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/circuits/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, resp.StatusCode
	}
	var out CircuitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

// checkWireSchedule asserts every schedule invariant observable from the
// wire alone: slots sorted by start, per-qubit exclusivity, and the
// two-sided makespan (the client-side shadow of accqoc.Schedule.Validate,
// which the server runs as its conformance oracle before answering).
func checkWireSchedule(t *testing.T, cr *CircuitResponse) {
	t.Helper()
	if cr.MakespanNs != cr.Compile.QOCLatencyNs {
		t.Fatalf("makespan %v disagrees with compile latency %v", cr.MakespanNs, cr.Compile.QOCLatencyNs)
	}
	if len(cr.Schedule) != cr.Compile.TotalGroups {
		t.Fatalf("schedule has %d slots for %d groups", len(cr.Schedule), cr.Compile.TotalGroups)
	}
	type span struct{ s, e float64 }
	byQubit := map[int][]span{}
	var maxEnd float64
	for i, sp := range cr.Schedule {
		if i > 0 && sp.StartNs < cr.Schedule[i-1].StartNs {
			t.Fatalf("schedule not sorted by start time at slot %d", i)
		}
		if sp.DurationNs < 0 || sp.StartNs < 0 {
			t.Fatalf("negative time in slot %d: %+v", i, sp)
		}
		end := sp.StartNs + sp.DurationNs
		if end > maxEnd {
			maxEnd = end
		}
		for _, q := range sp.Qubits {
			byQubit[q] = append(byQubit[q], span{sp.StartNs, end})
		}
	}
	for q, spans := range byQubit {
		sort.Slice(spans, func(i, j int) bool { return spans[i].s < spans[j].s })
		for i := 1; i < len(spans); i++ {
			if spans[i].s < spans[i-1].e-1e-9 {
				t.Fatalf("overlapping slots on qubit %d", q)
			}
		}
	}
	if math.Abs(maxEnd-cr.MakespanNs) > 1e-9 {
		t.Fatalf("makespan %v disagrees with last slot end %v", cr.MakespanNs, maxEnd)
	}
}

// TestCircuitEndpointEndToEnd is the tentpole demo: a QASM program with
// one- and two-qubit groups goes in, a validated scheduled pulse program
// comes out; the second submission is served entirely warm with the same
// schedule.
func TestCircuitEndpointEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	_, ts := newTestServer(t)

	cold, code := postCircuit(t, ts.URL, CircuitRequest{CompileRequest: CompileRequest{Workload: "qft:2"}})
	if code != http.StatusOK {
		t.Fatalf("cold status %d", code)
	}
	if cold.Compile.WarmServed || cold.Compile.UncoveredUnique == 0 {
		t.Fatalf("cold circuit reported warm: %+v", cold.Compile)
	}
	if cold.MakespanNs <= 0 || cold.Compile.GateLatencyNs <= 0 {
		t.Fatalf("degenerate latencies: %+v", cold.Compile)
	}
	checkWireSchedule(t, cold)
	for _, sp := range cold.Schedule {
		if sp.Waveform == "" && cold.Compile.FailedGroups == 0 {
			t.Fatalf("trained slot missing waveform ref: %+v", sp)
		}
	}

	warm, code := postCircuit(t, ts.URL, CircuitRequest{CompileRequest: CompileRequest{Workload: "qft:2"}})
	if code != http.StatusOK {
		t.Fatalf("warm status %d", code)
	}
	if !warm.Compile.WarmServed || warm.Compile.CoverageRate != 1 {
		t.Fatalf("second circuit not warm: %+v", warm.Compile)
	}
	if warm.MakespanNs != cold.MakespanNs {
		t.Fatalf("warm makespan %v differs from cold %v", warm.MakespanNs, cold.MakespanNs)
	}
	checkWireSchedule(t, warm)

	// Warm slots reference the same waveforms the cold request trained.
	for i := range warm.Schedule {
		if warm.Schedule[i].Waveform != cold.Schedule[i].Waveform {
			t.Fatalf("slot %d waveform ref changed across requests", i)
		}
	}

	// Inlined waveforms resolve every reference.
	full, code := postCircuit(t, ts.URL, CircuitRequest{
		CompileRequest: CompileRequest{Workload: "qft:2"}, IncludeWaveforms: true,
	})
	if code != http.StatusOK {
		t.Fatalf("include_waveforms status %d", code)
	}
	for _, sp := range full.Schedule {
		if sp.Waveform == "" {
			continue
		}
		p, ok := full.Waveforms[sp.Waveform]
		if !ok {
			t.Fatalf("waveform %s referenced but not inlined", sp.Waveform)
		}
		if p.Duration() != sp.DurationNs {
			t.Fatalf("inlined waveform duration %v disagrees with slot %v", p.Duration(), sp.DurationNs)
		}
	}
}

// TestCircuitEmptyProgram: a declared register with no gates is a legal
// program — an empty, zero-makespan schedule, coverage 1.
func TestCircuitEmptyProgram(t *testing.T) {
	_, ts := newTestServer(t)
	resp, code := postCircuit(t, ts.URL, CircuitRequest{
		CompileRequest: CompileRequest{QASM: "OPENQASM 2.0;\nqreg q[2];\n"},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Schedule) != 0 || resp.MakespanNs != 0 || resp.Compile.CoverageRate != 1 {
		t.Fatalf("empty program response: %+v", resp)
	}
}

// TestCircuitRequestValidation mirrors the per-group endpoint's input
// handling: bad bodies and bad programs are 400s, never 500s.
func TestCircuitRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []CircuitRequest{
		{},
		{CompileRequest: CompileRequest{QASM: "x", Workload: "qft:2"}},
		{CompileRequest: CompileRequest{QASM: "qreg q[-1];"}},
		{CompileRequest: CompileRequest{Workload: "warp:9"}},
		{CompileRequest: CompileRequest{QASM: "OPENQASM 2.0;\nqreg q[1];", Device: "nope"}},
	}
	for i, req := range cases {
		if _, code := postCircuit(t, ts.URL, req); code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, code)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/circuits/compile", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", resp.StatusCode)
	}
}

// circuitResponseKeys pins the new endpoint's wire format, the same way
// PR 4 pinned the legacy /v1/compile key set.
var (
	circuitResponseKeys = []string{"compile", "makespan_ns", "schedule"}
	scheduleSlotKeys    = []string{"group", "qubits", "start_ns", "duration_ns", "waveform"}
)

// TestCircuitWireFormatPinned pins POST /v1/circuits/compile's JSON key
// set: the top level, the embedded compile block (which must stay exactly
// the legacy key set for the default device), and the schedule slots.
func TestCircuitWireFormatPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	_, ts := newTestServer(t)
	resp, raw := postJSON(t, ts.URL+"/v1/circuits/compile", CircuitRequest{
		CompileRequest: CompileRequest{QASM: rxAProgram},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	keysOf := func(obj json.RawMessage) []string {
		var mm map[string]json.RawMessage
		if err := json.Unmarshal(obj, &mm); err != nil {
			t.Fatal(err)
		}
		ks := make([]string, 0, len(mm))
		for k := range mm {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		return ks
	}
	sortedCopy := func(ks []string) []string {
		out := append([]string(nil), ks...)
		sort.Strings(out)
		return out
	}
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	if fmt.Sprint(got) != fmt.Sprint(sortedCopy(circuitResponseKeys)) {
		t.Fatalf("circuit response keys changed:\n got %v\nwant %v", got, circuitResponseKeys)
	}
	// The embedded compile block keeps the exact legacy key set when no
	// device is routed and no calibration has happened.
	if got := keysOf(m["compile"]); fmt.Sprint(got) != fmt.Sprint(sortedCopy(legacyCompileResponseKeys)) {
		t.Fatalf("embedded compile keys changed:\n got %v\nwant %v", got, legacyCompileResponseKeys)
	}
	var slots []json.RawMessage
	if err := json.Unmarshal(m["schedule"], &slots); err != nil {
		t.Fatal(err)
	}
	if len(slots) == 0 {
		t.Fatal("no schedule slots")
	}
	if got := keysOf(slots[0]); fmt.Sprint(got) != fmt.Sprint(sortedCopy(scheduleSlotKeys)) {
		t.Fatalf("schedule slot keys changed:\n got %v\nwant %v", got, scheduleSlotKeys)
	}
}

// TestCircuitPropertyRandomPrograms is the property layer: randomized
// circuits (qasmgen's suite-mix generator) through the endpoint must
// produce wire-valid schedules, and — with identical libraries — the
// batch BuildSchedule path must produce a Validate-clean schedule with
// exactly the server's makespan.
func TestCircuitPropertyRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	s, ts := newTestServer(t)

	for seed := int64(1); seed <= 3; seed++ {
		spec := fmt.Sprintf("random:3:8:%d", seed)
		got, code := postCircuit(t, ts.URL, CircuitRequest{CompileRequest: CompileRequest{Workload: spec}})
		if code != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, code)
		}
		checkWireSchedule(t, got)

		// Batch reference over the identical library: snapshot the store
		// the server just trained into a batch compiler and schedule the
		// same program.
		prog, err := workload.FromSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		comp := accqoc.New(fastOpts())
		comp.SetLibrary(s.Store().Snapshot())
		sched, err := comp.BuildSchedule(prog.Circuit)
		if err != nil {
			t.Fatalf("seed %d: batch schedule: %v", seed, err)
		}
		if err := sched.Validate(); err != nil {
			t.Fatalf("seed %d: batch schedule invalid: %v", seed, err)
		}
		if sched.Result.UncoveredUnique != 0 {
			t.Fatalf("seed %d: batch compile trained %d groups against the server's library",
				seed, sched.Result.UncoveredUnique)
		}
		if sched.MakespanNs != got.MakespanNs {
			t.Fatalf("seed %d: batch makespan %v != server makespan %v",
				seed, sched.MakespanNs, got.MakespanNs)
		}
	}
}

// countingHook wraps the namespace's real store hook (the seed index) and
// counts EntryAdded calls per key — the exactly-once training probe of
// the race test. Adds arrive under shard locks from concurrent workers,
// so the counter takes its own mutex.
type countingHook struct {
	inner libstore.Hook
	mu    sync.Mutex
	adds  map[string]int
}

func (h *countingHook) EntryAdded(e *precompile.Entry) {
	h.mu.Lock()
	h.adds[e.Key]++
	h.mu.Unlock()
	if h.inner != nil {
		h.inner.EntryAdded(e)
	}
}

func (h *countingHook) EntryRemoved(key string) {
	if h.inner != nil {
		h.inner.EntryRemoved(key)
	}
}

// TestCircuitConcurrentSharedGroupsTrainOnce is the coalescing guarantee
// under -race: concurrent circuit compiles whose programs share uncovered
// groups must train each unique group exactly once (counted at the store
// mutation hook), fail zero requests, and leave the store and seed index
// coherent.
func TestCircuitConcurrentSharedGroupsTrainOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	s, ts := newTestServer(t)
	ns := s.defaultNS()
	hook := &countingHook{inner: ns.Seeds, adds: map[string]int{}}
	ns.Store.SetHook(hook)

	// Two programs sharing the rx(0.5) group; three unique groups total.
	progA := "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nrx(0.5) q[0];\nrx(0.9) q[1];\n"
	progB := "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nrx(0.5) q[0];\nrx(1.3) q[1];\n"

	const perProgram = 4
	var wg sync.WaitGroup
	makespans := make([]float64, 2*perProgram)
	for i := 0; i < 2*perProgram; i++ {
		prog := progA
		if i%2 == 1 {
			prog = progB
		}
		wg.Add(1)
		go func(i int, prog string) {
			defer wg.Done()
			resp, code := postCircuit(t, ts.URL, CircuitRequest{CompileRequest: CompileRequest{QASM: prog}})
			if code != http.StatusOK {
				t.Errorf("request %d: status %d", i, code)
				return
			}
			if resp.Compile.FailedGroups != 0 {
				t.Errorf("request %d: failed groups: %+v", i, resp.Compile)
			}
			checkWireSchedule(t, resp)
			makespans[i] = resp.MakespanNs
		}(i, prog)
	}
	wg.Wait()

	// Exactly-once per unique group, at the mutation hook.
	hook.mu.Lock()
	for key, n := range hook.adds {
		if n != 1 {
			t.Errorf("group %.24s… trained %d times, want 1", key, n)
		}
	}
	added := len(hook.adds)
	hook.mu.Unlock()
	if added != 3 {
		t.Fatalf("%d unique groups trained, want 3", added)
	}
	st := s.Store().Stats()
	if st.Trainings != 3 || st.TrainFailures != 0 {
		t.Fatalf("store ran %d trainings (%d failures), want exactly 3 clean",
			st.Trainings, st.TrainFailures)
	}
	if st.Entries != 3 {
		t.Fatalf("store holds %d entries, want 3", st.Entries)
	}
	if ns.Seeds != nil && ns.Seeds.Stats().Entries != 3 {
		t.Fatalf("seed index holds %d entries, store 3 — hook chain broken", ns.Seeds.Stats().Entries)
	}
	// Identical programs agree on their makespan regardless of which
	// request paid for the training.
	for i := 2; i < len(makespans); i += 2 {
		if makespans[i] != makespans[0] {
			t.Fatalf("program A makespans diverge: %v vs %v", makespans[i], makespans[0])
		}
	}
	for i := 3; i < len(makespans); i += 2 {
		if makespans[i] != makespans[1] {
			t.Fatalf("program B makespans diverge: %v vs %v", makespans[i], makespans[1])
		}
	}
	st2 := getStats(t, ts.URL)
	if st2.Server.Failures != 0 {
		t.Fatalf("server reported %d failures", st2.Server.Failures)
	}
}

// TestWaveformRefTracksPulseContent pins the content-address semantics:
// refs follow the waveform bytes, not the group key, so a retrained
// pulse (a new calibration epoch, a different device's physics) can
// never alias its predecessor in a client-side waveform cache.
func TestWaveformRefTracksPulseContent(t *testing.T) {
	p1 := pulse.New([]string{"x0", "y0"}, 4, 2)
	p1.Amps[0][0] = 0.5
	p2 := p1.Clone()
	p2.Amps[0][0] = 0.6 // same key, drifted waveform (what an epoch roll produces)
	a := compilesvc.WaveformRef(&precompile.Entry{Key: "k", Pulse: p1})
	b := compilesvc.WaveformRef(&precompile.Entry{Key: "k", Pulse: p2})
	c := compilesvc.WaveformRef(&precompile.Entry{Key: "other-key", Pulse: p1.Clone()})
	if a == b {
		t.Fatal("refs alias two different waveforms under one key")
	}
	if a != c {
		t.Fatal("identical waveforms should share a ref regardless of key")
	}
}
