package server

// The cost-and-usage surface: GET /v1/library/usage (per-device top-N
// cost report, co-occurrence pairs, eviction regret), GET /debug/costs
// (the full multi-device ledger dump next to /debug/requests), and the
// accqoc_usage_* metric families. All of it reads the per-device
// usage.Ledger owned by the device registry; nothing here feeds back into
// serving decisions. The endpoints are gated on Config.DisableUsage alone
// — they work with observability off — while the metric families
// additionally need /metrics, i.e. observability on.

import (
	"fmt"
	"net/http"
	"strconv"

	"accqoc/internal/obs"
	"accqoc/internal/usage"
)

// usageDefaultTopN bounds the /v1/library/usage report when no ?n= is
// given; usageMaxTopN caps an explicit one.
const (
	usageDefaultTopN = 20
	usageMaxTopN     = 1000
)

// UsageResponse is the GET /v1/library/usage body: one device's cost
// report (top entries by iterations×hits, co-occurrence pairs, regret
// totals) stamped with the device it describes.
type UsageResponse struct {
	Device string `json:"device"`
	usage.Report
}

func (s *Server) handleUsage(w http.ResponseWriter, r *http.Request) {
	device := r.URL.Query().Get("device")
	n := usageDefaultTopN
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", raw))
			return
		}
		if v > usageMaxTopN {
			v = usageMaxTopN
		}
		n = v
	}
	ledger, err := s.registry.UsageLedger(device)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if device == "" {
		device = s.registry.DefaultName()
	}
	writeJSON(w, http.StatusOK, UsageResponse{Device: device, Report: ledger.Report(n)})
}

// DebugCostsResponse is the GET /debug/costs body: every device's full
// ledger report, in registration order.
type DebugCostsResponse struct {
	Devices []UsageResponse `json:"devices"`
}

func (s *Server) handleDebugCosts(w http.ResponseWriter, r *http.Request) {
	out := DebugCostsResponse{Devices: []UsageResponse{}}
	for _, name := range s.registry.Names() {
		ledger, err := s.registry.UsageLedger(name)
		if err != nil || ledger == nil {
			continue
		}
		out.Devices = append(out.Devices, UsageResponse{Device: name, Report: ledger.Report(usageMaxTopN)})
	}
	writeJSON(w, http.StatusOK, out)
}

// registerUsageCollectors installs the accqoc_usage_* scrape-time
// families. Like the store collectors these read external counters only
// when /metrics is scraped; one ledger Stats() per device per family.
func (s *Server) registerUsageCollectors() {
	r := s.obs.reg
	dev := []string{"device"}
	perDevice := func(emit func(obs.Emit, string, usage.Stats)) func(obs.Emit) {
		return func(e obs.Emit) {
			for _, name := range s.registry.Names() {
				ledger, err := s.registry.UsageLedger(name)
				if err != nil || ledger == nil {
					continue
				}
				emit(e, name, ledger.Stats())
			}
		}
	}
	counter := func(name, help string, get func(usage.Stats) float64) {
		r.CollectCounters(name, help, dev, perDevice(func(e obs.Emit, d string, st usage.Stats) {
			e(get(st), d)
		}))
	}
	gauge := func(name, help string, get func(usage.Stats) float64) {
		r.CollectGauges(name, help, dev, perDevice(func(e obs.Emit, d string, st usage.Stats) {
			e(get(st), d)
		}))
	}
	counter("accqoc_usage_requests_total", "Request/batch windows filed with the cost ledger, by device.",
		func(st usage.Stats) float64 { return float64(st.Requests) })
	gauge("accqoc_usage_tracked_keys", "Keys with accumulated cost history in the ledger, by device (epoch-stable).",
		func(st usage.Stats) float64 { return float64(st.TrackedKeys) })
	counter("accqoc_usage_training_iterations_total", "Observed GRAPE iterations accumulated by the cost ledger, by device.",
		func(st usage.Stats) float64 { return float64(st.Iterations) })
	counter("accqoc_usage_training_wall_seconds_total", "Observed training wall time accumulated by the cost ledger, by device.",
		func(st usage.Stats) float64 { return st.TrainWallSeconds })
	r.CollectCounters("accqoc_usage_trainings_total", "Trainings accounted by the cost ledger, by device and warm-start provenance.",
		[]string{"device", "seeded"}, perDevice(func(e obs.Emit, d string, st usage.Stats) {
			e(float64(st.Seeded), d, "true")
			e(float64(st.Cold), d, "false")
		}))
	counter("accqoc_usage_hits_total", "Per-entry lookup hits accumulated by the cost ledger, by device (snapshot-carried counts included).",
		func(st usage.Stats) float64 { return float64(st.Hits) })
	counter("accqoc_usage_regret_events_total", "Evicted entries requested again (one regret charge per eviction), by device.",
		func(st usage.Stats) float64 { return float64(st.RegretEvents) })
	counter("accqoc_usage_regret_iterations_total", "Training iterations whose product was evicted and then missed, by device.",
		func(st usage.Stats) float64 { return float64(st.RegretIterations) })
	counter("accqoc_usage_regret_wall_seconds_total", "Training wall time whose product was evicted and then missed, by device.",
		func(st usage.Stats) float64 { return st.RegretWallSecs })
	gauge("accqoc_usage_cooccurrence_pairs", "Distinct co-occurring key pairs tracked by the request-history miner, by device.",
		func(st usage.Stats) float64 { return float64(st.Pairs) })
	counter("accqoc_usage_cooccurrence_dropped_total", "Pair observations dropped at the pair-map cap (nonzero = pair counts undercount), by device.",
		func(st usage.Stats) float64 { return float64(st.DroppedPairs) })
}
