package server

// The cost-and-usage surface: GET /v1/library/usage (per-device top-N
// cost report, co-occurrence pairs, eviction regret), GET /debug/costs
// (the full multi-device ledger dump next to /debug/requests), and the
// accqoc_usage_* metric families. All of it reads the per-device
// usage.Ledger owned by the device registry; nothing here feeds back into
// serving decisions. The endpoints are gated on Config.DisableUsage alone
// — they work with observability off — while the metric families
// additionally need /metrics, i.e. observability on.

import (
	"fmt"
	"net/http"
	"strconv"

	"accqoc/internal/compilesvc"
	"accqoc/internal/devreg"
	"accqoc/internal/libstore"
	"accqoc/internal/obs"
	"accqoc/internal/usage"
)

// usageDefaultTopN bounds the /v1/library/usage report when no ?n= is
// given; usageMaxTopN caps an explicit one.
const (
	usageDefaultTopN = 20
	usageMaxTopN     = 1000
)

// UsageResponse is the GET /v1/library/usage body: one device's cost
// report (top entries by iterations×hits, co-occurrence pairs, regret
// totals) stamped with the device it describes.
type UsageResponse struct {
	Device string `json:"device"`
	usage.Report
	// EvictPolicy reports the device's cost-aware eviction policy
	// counters; absent under the default LRU policy.
	EvictPolicy *libstore.PolicyStats `json:"evict_policy,omitempty"`
	// Prefetch reports the device's speculative-training counters; absent
	// unless prefetch is enabled.
	Prefetch *compilesvc.PrefetchStats `json:"prefetch,omitempty"`
}

// fillPolicy attaches the policy-half blocks (eviction counters,
// prefetch counters) for a device; both stay nil — and off the wire —
// under default flags.
func (s *Server) fillPolicy(resp *UsageResponse, device string) {
	if pol, _ := s.registry.EvictionPolicy(device); pol != nil {
		st := pol.Stats()
		resp.EvictPolicy = &st
	}
	if s.prefetcher != nil {
		st := s.prefetcher.StatsFor(resp.Device)
		resp.Prefetch = &st
	}
}

func (s *Server) handleUsage(w http.ResponseWriter, r *http.Request) {
	device := r.URL.Query().Get("device")
	n := usageDefaultTopN
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", raw))
			return
		}
		if v > usageMaxTopN {
			v = usageMaxTopN
		}
		n = v
	}
	ledger, err := s.registry.UsageLedger(device)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if device == "" {
		device = s.registry.DefaultName()
	}
	resp := UsageResponse{Device: device, Report: ledger.Report(n)}
	s.fillPolicy(&resp, device)
	writeJSON(w, http.StatusOK, resp)
}

// DebugCostsResponse is the GET /debug/costs body: every device's full
// ledger report, in registration order.
type DebugCostsResponse struct {
	Devices []UsageResponse `json:"devices"`
}

func (s *Server) handleDebugCosts(w http.ResponseWriter, r *http.Request) {
	out := DebugCostsResponse{Devices: []UsageResponse{}}
	for _, name := range s.registry.Names() {
		ledger, err := s.registry.UsageLedger(name)
		if err != nil || ledger == nil {
			continue
		}
		resp := UsageResponse{Device: name, Report: ledger.Report(usageMaxTopN)}
		s.fillPolicy(&resp, name)
		out.Devices = append(out.Devices, resp)
	}
	writeJSON(w, http.StatusOK, out)
}

// registerUsageCollectors installs the accqoc_usage_* scrape-time
// families. Like the store collectors these read external counters only
// when /metrics is scraped; one ledger Stats() per device per family.
func (s *Server) registerUsageCollectors() {
	r := s.obs.reg
	dev := []string{"device"}
	perDevice := func(emit func(obs.Emit, string, usage.Stats)) func(obs.Emit) {
		return func(e obs.Emit) {
			for _, name := range s.registry.Names() {
				ledger, err := s.registry.UsageLedger(name)
				if err != nil || ledger == nil {
					continue
				}
				emit(e, name, ledger.Stats())
			}
		}
	}
	counter := func(name, help string, get func(usage.Stats) float64) {
		r.CollectCounters(name, help, dev, perDevice(func(e obs.Emit, d string, st usage.Stats) {
			e(get(st), d)
		}))
	}
	gauge := func(name, help string, get func(usage.Stats) float64) {
		r.CollectGauges(name, help, dev, perDevice(func(e obs.Emit, d string, st usage.Stats) {
			e(get(st), d)
		}))
	}
	counter("accqoc_usage_requests_total", "Request/batch windows filed with the cost ledger, by device.",
		func(st usage.Stats) float64 { return float64(st.Requests) })
	gauge("accqoc_usage_tracked_keys", "Keys with accumulated cost history in the ledger, by device (epoch-stable).",
		func(st usage.Stats) float64 { return float64(st.TrackedKeys) })
	counter("accqoc_usage_training_iterations_total", "Observed GRAPE iterations accumulated by the cost ledger, by device.",
		func(st usage.Stats) float64 { return float64(st.Iterations) })
	counter("accqoc_usage_training_wall_seconds_total", "Observed training wall time accumulated by the cost ledger, by device.",
		func(st usage.Stats) float64 { return st.TrainWallSeconds })
	r.CollectCounters("accqoc_usage_trainings_total", "Trainings accounted by the cost ledger, by device and warm-start provenance.",
		[]string{"device", "seeded"}, perDevice(func(e obs.Emit, d string, st usage.Stats) {
			e(float64(st.Seeded), d, "true")
			e(float64(st.Cold), d, "false")
		}))
	counter("accqoc_usage_hits_total", "Per-entry lookup hits accumulated by the cost ledger, by device (snapshot-carried counts included).",
		func(st usage.Stats) float64 { return float64(st.Hits) })
	counter("accqoc_usage_regret_events_total", "Evicted entries requested again (one regret charge per eviction), by device.",
		func(st usage.Stats) float64 { return float64(st.RegretEvents) })
	counter("accqoc_usage_regret_iterations_total", "Training iterations whose product was evicted and then missed, by device.",
		func(st usage.Stats) float64 { return float64(st.RegretIterations) })
	counter("accqoc_usage_regret_wall_seconds_total", "Training wall time whose product was evicted and then missed, by device.",
		func(st usage.Stats) float64 { return st.RegretWallSecs })
	gauge("accqoc_usage_cooccurrence_pairs", "Distinct co-occurring key pairs tracked by the request-history miner, by device.",
		func(st usage.Stats) float64 { return float64(st.Pairs) })
	counter("accqoc_usage_cooccurrence_dropped_total", "Coldest pairs displaced at the pair-map cap (nonzero = pair counts are approximate), by device.",
		func(st usage.Stats) float64 { return float64(st.DroppedPairs) })
}

// registerPolicyCollectors installs the accqoc_evict_policy_* and
// accqoc_prefetch_* scrape-time families. Each family is registered only
// when its feature is on, so a default-flag /metrics exposition is
// byte-identical to the pre-policy server.
func (s *Server) registerPolicyCollectors() {
	r := s.obs.reg
	dev := []string{"device"}
	if s.cfg.CachePolicy == devreg.PolicyCostAware {
		perPolicy := func(emit func(obs.Emit, string, libstore.PolicyStats)) func(obs.Emit) {
			return func(e obs.Emit) {
				for _, name := range s.registry.Names() {
					pol, err := s.registry.EvictionPolicy(name)
					if err != nil || pol == nil {
						continue
					}
					emit(e, name, pol.Stats())
				}
			}
		}
		r.CollectCounters("accqoc_evict_policy_cost_picks_total", "Evictions where the cost-aware policy moved the victim off the LRU tail, by device.",
			dev, perPolicy(func(e obs.Emit, d string, st libstore.PolicyStats) {
				e(float64(st.CostPicks), d)
			}))
		r.CollectCounters("accqoc_evict_policy_lru_fallbacks_total", "Evictions where scores tied (or were zero) and the policy fell back to LRU order, by device.",
			dev, perPolicy(func(e obs.Emit, d string, st libstore.PolicyStats) {
				e(float64(st.LRUFallbacks), d)
			}))
	}
	if s.prefetcher != nil {
		perPrefetch := func(emit func(obs.Emit, string, compilesvc.PrefetchStats)) func(obs.Emit) {
			return func(e obs.Emit) {
				for _, name := range s.registry.Names() {
					emit(e, name, s.prefetcher.StatsFor(name))
				}
			}
		}
		pcounter := func(name, help string, get func(compilesvc.PrefetchStats) float64) {
			r.CollectCounters(name, help, dev, perPrefetch(func(e obs.Emit, d string, st compilesvc.PrefetchStats) {
				e(get(st), d)
			}))
		}
		pcounter("accqoc_prefetch_predicted_total", "Ranked predictions examined by the speculative-training driver, by device.",
			func(st compilesvc.PrefetchStats) float64 { return float64(st.Predicted) })
		pcounter("accqoc_prefetch_no_target_total", "Predicted misses skipped for lack of a retained training target, by device.",
			func(st compilesvc.PrefetchStats) float64 { return float64(st.NoTarget) })
		pcounter("accqoc_prefetch_trained_total", "Speculative trainings completed during idle cycles, by device.",
			func(st compilesvc.PrefetchStats) float64 { return float64(st.Trained) })
		pcounter("accqoc_prefetch_seeded_total", "Speculative trainings that warm-started from the seed index, by device.",
			func(st compilesvc.PrefetchStats) float64 { return float64(st.Seeded) })
		pcounter("accqoc_prefetch_iterations_total", "GRAPE iterations spent on speculative trainings, by device.",
			func(st compilesvc.PrefetchStats) float64 { return float64(st.Iterations) })
		pcounter("accqoc_prefetch_skipped_total", "Speculative items already covered by execution time, by device.",
			func(st compilesvc.PrefetchStats) float64 { return float64(st.Skipped) })
		pcounter("accqoc_prefetch_abandoned_total", "Speculative items yielded to request traffic, by device.",
			func(st compilesvc.PrefetchStats) float64 { return float64(st.Abandoned) })
		pcounter("accqoc_prefetch_failed_total", "Speculative trainings that did not converge, by device.",
			func(st compilesvc.PrefetchStats) float64 { return float64(st.Failed) })
	}
}
