package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"accqoc/internal/compilesvc"
	"accqoc/internal/devreg"
	"accqoc/internal/jobs"
)

// This file is the calibration-epoch surface of the server: the admin
// endpoints (GET /v1/devices, POST /v1/devices/{name}/calibrate), the
// background cross-epoch recompilation pipeline that runs on the shared
// worker pool, the asynchronous boot-snapshot load, and the readiness
// handler that reports all of it.

// CalibrateResponse is the POST /v1/devices/{name}/calibrate body.
type CalibrateResponse struct {
	Device string `json:"device"`
	// Epoch is the newly opened calibration epoch.
	Epoch int `json:"epoch"`
	// Planned counts old-epoch entries scheduled for warm recompilation,
	// ordered most-requested-first.
	Planned int `json:"planned"`
	// Fingerprint identifies the new epoch's physics (what snapshots of
	// it will be stamped with).
	Fingerprint string `json:"fingerprint"`
}

// DevicesResponse is the GET /v1/devices body.
type DevicesResponse struct {
	Default string                `json:"default"`
	Devices []devreg.DeviceStatus `json:"devices"`
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, DevicesResponse{
		Default: s.registry.DefaultName(),
		Devices: s.registry.Status(),
	})
}

func (s *Server) handleCalibrate(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var upd devreg.CalibrationUpdate
	if err := json.NewDecoder(r.Body).Decode(&upd); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid calibration body: %w", err))
		return
	}
	roll, err := s.calibrate(r.PathValue("name"), upd)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errClosed) || errors.Is(err, errBootPending) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, CalibrateResponse{
		Device:      roll.Device,
		Epoch:       roll.Epoch,
		Planned:     len(roll.Plan),
		Fingerprint: roll.New.Profile.Fingerprint(),
	})
}

var (
	errClosed      = errors.New("server shutting down")
	errBootPending = errors.New("boot snapshot still loading; retry shortly")
)

// calibrate opens a new epoch for a device and starts its background
// recompilation roll. Calibrations are refused while the boot snapshot
// is still loading: the load targets the boot epoch's namespace, and an
// epoch swap mid-load would strand the snapshot's entries in a draining
// store (and lose them at the next shutdown save).
func (s *Server) calibrate(name string, upd devreg.CalibrationUpdate) (*devreg.Roll, error) {
	if s.closed.Load() {
		return nil, errClosed
	}
	if done, _, _ := s.BootStatus(); !done {
		return nil, errBootPending
	}
	roll, err := s.registry.Calibrate(name, upd)
	if err != nil {
		return nil, err
	}
	s.logger.Info("calibration epoch opened",
		"component", "server",
		"device", roll.Device,
		"epoch", roll.Epoch,
		"planned", len(roll.Plan))
	s.rollWG.Add(1)
	go s.runRoll(roll)
	return roll, nil
}

// CalibrateDefault opens a new calibration epoch for the default device
// and starts its background recompilation — the programmatic equivalent
// of POST /v1/devices/{name}/calibrate, used by the -calibration-file
// SIGHUP hot-reload path. It returns the new epoch and the number of
// groups queued for warm recompilation.
func (s *Server) CalibrateDefault(upd devreg.CalibrationUpdate) (epoch, planned int, err error) {
	roll, err := s.calibrate("", upd)
	if err != nil {
		return 0, 0, err
	}
	return roll.Epoch, len(roll.Plan), nil
}

// runRoll drives one calibration roll to completion: each plan item is
// fed to the training tier one at a time (so the roll never monopolizes
// workers or starves request traffic) and the old epoch is released for
// retirement when the plan is exhausted or the server shuts down. The
// recompilation itself — retrain toward the cached target unitary under
// the new epoch's physics, arbitrated against request traffic by the new
// store's singleflight — lives in the training tier.
func (s *Server) runRoll(roll *devreg.Roll) {
	defer s.rollWG.Done()
	defer roll.Finish()
	for i := range roll.Plan {
		// A newer calibration makes the rest of this plan training into a
		// dead epoch: abandon it so the obsolete namespace can retire and
		// the workers go to the live roll.
		if roll.Superseded() {
			return
		}
		it := &roll.Plan[i]
		for {
			err := s.svc.Recompile(roll, it)
			if err == nil {
				break
			}
			if errors.Is(err, compilesvc.ErrClosed) || s.closed.Load() {
				return
			}
			// Queue full: request traffic has priority; retry shortly.
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// bootState tracks the asynchronous boot-snapshot load gating readiness.
type bootState struct {
	mu         sync.Mutex
	configured bool
	done       bool
	entries    int
	fp         string
	err        error
	loadedAt   time.Time
	mtime      time.Time
}

// startBootLoad kicks off the asynchronous boot-snapshot load, if one is
// configured. The server serves compile traffic (cold) while the load
// runs; /healthz reports 503 until it completes.
func (s *Server) startBootLoad() {
	if s.cfg.BootSnapshot == "" {
		return
	}
	s.boot.mu.Lock()
	s.boot.configured = true
	s.boot.mu.Unlock()
	ns := s.defaultNS()
	want := ns.Profile.Fingerprint()
	path := s.cfg.BootSnapshot
	force := s.cfg.BootSnapshotForce
	s.rollWG.Add(1)
	go func() {
		defer s.rollWG.Done()
		var mtime time.Time
		if fi, err := os.Stat(path); err == nil {
			mtime = fi.ModTime()
		}
		n, fp, err := ns.Store.LoadIntoChecked(path, want, force)
		if os.IsNotExist(err) {
			// No snapshot yet: a cold boot is a ready boot.
			err = nil
		}
		if err != nil {
			s.logger.Error("boot snapshot load failed",
				"component", "server", "path", path, "error", err.Error())
		} else {
			s.logger.Info("boot snapshot loaded",
				"component", "server", "path", path, "entries", n)
		}
		s.boot.mu.Lock()
		s.boot.done = true
		s.boot.entries = n
		s.boot.fp = fp
		s.boot.err = err
		s.boot.loadedAt = time.Now()
		s.boot.mtime = mtime
		s.boot.mu.Unlock()
	}()
}

// BootStatus reports the boot-snapshot load: whether it has completed,
// how many entries it brought in, and its error, if any. Callers that
// persist snapshots (the server binary's shutdown and periodic saves)
// must not overwrite the snapshot path while the load is pending or
// failed — a mismatch-rejected library would otherwise be clobbered by
// an empty store on the first shutdown.
func (s *Server) BootStatus() (done bool, entries int, err error) {
	s.boot.mu.Lock()
	defer s.boot.mu.Unlock()
	if !s.boot.configured {
		return true, 0, nil
	}
	return s.boot.done, s.boot.entries, s.boot.err
}

// BootSnapshotHealth reports the boot-snapshot load inside /healthz.
type BootSnapshotHealth struct {
	Path   string `json:"path"`
	Loaded bool   `json:"loaded"`
	// Entries counts pulses loaded; AgeSeconds is the snapshot file's age
	// (mtime at load time).
	Entries     int     `json:"entries"`
	AgeSeconds  float64 `json:"age_seconds,omitempty"`
	Fingerprint string  `json:"fingerprint,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// DeviceHealth is the per-device readiness block of /healthz.
type DeviceHealth struct {
	Name    string `json:"name"`
	Epoch   int    `json:"epoch"`
	Entries int    `json:"entries"`
	// RecompilePending counts plan items of an active roll not yet
	// processed; Recompile carries the full progress.
	RecompilePending int               `json:"recompile_pending"`
	Recompile        devreg.RollStatus `json:"recompile"`
}

// CompileTierHealth is the training-tier block of /healthz: the live
// queue/in-flight readings, read through the CompileService interface.
type CompileTierHealth struct {
	Workers    int `json:"workers"`
	QueueLen   int `json:"queue_len"`
	QueueDepth int `json:"queue_depth"`
	InFlight   int `json:"in_flight"`
}

// HealthResponse is the GET /healthz body. Status "ok" (200) means ready:
// the boot snapshot, when configured, has loaded. "loading" (503) means
// the load is still in flight; "error" (503) means it failed — the server
// still compiles (cold), but an operator should intervene (wrong -lib
// path, or a fingerprint mismatch wanting -lib-force).
type HealthResponse struct {
	Status  string              `json:"status"`
	Ready   bool                `json:"ready"`
	Boot    *BootSnapshotHealth `json:"boot_snapshot,omitempty"`
	Devices []DeviceHealth      `json:"devices"`
	// Compile reports the training tier; Jobs censuses the async job
	// store by state (absent when the async job API is disabled).
	Compile CompileTierHealth `json:"compile"`
	Jobs    *jobs.Counts      `json:"jobs,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	out := HealthResponse{Status: "ok", Ready: true, Compile: CompileTierHealth{
		Workers:    s.svc.Workers(),
		QueueLen:   s.svc.QueueLen(),
		QueueDepth: s.svc.QueueCap(),
		InFlight:   s.svc.InFlight(),
	}}
	if s.jobStore != nil {
		c := s.jobStore.Counts()
		out.Jobs = &c
	}
	s.boot.mu.Lock()
	if s.boot.configured {
		b := &BootSnapshotHealth{
			Path:    s.cfg.BootSnapshot,
			Loaded:  s.boot.done && s.boot.err == nil,
			Entries: s.boot.entries,
		}
		if !s.boot.mtime.IsZero() {
			b.AgeSeconds = time.Since(s.boot.mtime).Seconds()
		}
		b.Fingerprint = s.boot.fp
		switch {
		case !s.boot.done:
			out.Status, out.Ready = "loading", false
		case s.boot.err != nil:
			b.Error = s.boot.err.Error()
			out.Status, out.Ready = "error", false
		}
		out.Boot = b
	}
	s.boot.mu.Unlock()
	for _, d := range s.registry.Status() {
		out.Devices = append(out.Devices, DeviceHealth{
			Name:             d.Name,
			Epoch:            d.Epoch,
			Entries:          d.Entries,
			RecompilePending: d.Recompile.Pending(),
			Recompile:        d.Recompile,
		})
	}
	code := http.StatusOK
	if !out.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, out)
}
