package server

// The async job API on the tier seam: POST /v1/compile?async=1 and
// POST /v1/circuits/compile?async=1 validate and route exactly like their
// synchronous twins, then hand the work to the training tier's Submit —
// where same-namespace submissions batch into one shared resolveGroups
// pass — and answer 202 Accepted with a job ID immediately. The job's
// lifecycle lives in the bounded store (internal/jobs): poll it on
// GET /v1/jobs/{id}, cancel it while still queued (or reap a finished
// record) with DELETE /v1/jobs/{id}. A full job store is the async path's
// admission control and answers 503 with a Retry-After hint, counted
// separately from sync queue rejections (rejected_async).

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"accqoc/internal/compilesvc"
	"accqoc/internal/jobs"
	"accqoc/internal/obs"
)

// AsyncAccepted is the 202 Accepted body of an async submission.
type AsyncAccepted struct {
	JobID string     `json:"job_id"`
	State jobs.State `json:"state"`
	// Poll is the job's status URL (also sent as the Location header).
	Poll string `json:"poll"`
}

// wantsAsync reports whether the request opted into the async job API.
func wantsAsync(r *http.Request) bool {
	switch r.URL.Query().Get("async") {
	case "1", "true":
		return true
	}
	return false
}

// dispatchAsync is the asynchronous twin of dispatch: same ingest and
// device routing, but the work is submitted to the training tier with
// job-lifecycle callbacks instead of blocking the handler. The namespace
// reference is held until the job's work completes (done) or is vetoed
// by cancellation (start), never by the handler itself.
func (s *Server) dispatchAsync(w http.ResponseWriter, r *http.Request, req CompileRequest, circuit, waveforms bool) {
	if s.jobStore == nil {
		s.failures.Add(1)
		writeError(w, http.StatusBadRequest, errors.New("async jobs are disabled"))
		return
	}
	prog, err := s.ingest(req)
	if err != nil {
		s.failures.Add(1)
		s.logRequestError(r, "ingest", err)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ns, err := s.registry.Acquire(req.Device)
	if err != nil {
		s.failures.Add(1)
		s.logRequestError(r, "route", err)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	kind, endpoint := "compile", "/v1/compile"
	if circuit {
		kind, endpoint = "circuit", "/v1/circuits/compile"
	}
	job, err := s.jobStore.Create(kind, req.Device)
	if err != nil {
		ns.Release()
		s.rejectedAsync.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	id := job.ID

	// The job gets its own pipeline trace keyed by the job ID — the HTTP
	// middleware's trace covers only the 202 submission. It is filed to
	// the flight recorder when the job completes, spans batch_wait and
	// queue included.
	var tr *obs.Trace
	if s.obs != nil {
		tr = obs.NewTrace(id, endpoint+"?async=1")
		tr.SetMeta(ns.DeviceName, ns.Epoch, prog.NumQubits, prog.GateCount())
	}

	begin := time.Now()
	device := req.Device
	creq := &compilesvc.Request{Prog: prog, NS: ns, Circuit: circuit, Waveforms: waveforms, Trace: tr}
	start := func() bool {
		if !s.jobStore.Start(id) {
			// Canceled while queued: the veto means no other callback runs
			// for this job, so the namespace reference is ours to drop.
			ns.Release()
			return false
		}
		return true
	}
	done := func(res *compilesvc.Result, derr error) {
		defer ns.Release()
		if derr != nil {
			if !errors.Is(derr, compilesvc.ErrClosed) {
				// The pipeline ran and failed; shutdown fails never ran.
				s.observeCompile(ns.DeviceName, time.Since(begin))
				s.failures.Add(1)
			}
			s.jobStore.Fail(id, derr.Error())
			s.recordJobTrace(tr, http.StatusInternalServerError, derr.Error())
			return
		}
		var payload any
		var millis float64
		if circuit {
			res.Circ.Compile.Device = device
			payload, millis = res.Circ, res.Circ.Compile.CompileMillis
		} else {
			res.Resp.Device = device
			payload, millis = res.Resp, res.Resp.CompileMillis
		}
		s.observeCompile(ns.DeviceName, time.Since(begin))
		s.compileNs.Add(int64(millis * float64(time.Millisecond)))
		if ferr := s.jobStore.Finish(id, payload); ferr != nil {
			s.failures.Add(1)
			s.recordJobTrace(tr, http.StatusInternalServerError, ferr.Error())
			return
		}
		s.recordJobTrace(tr, http.StatusOK, "")
	}
	if serr := s.svc.Submit(creq, start, done); serr != nil {
		// The job ID never reached the client; drop the record entirely.
		s.jobStore.Discard(id)
		ns.Release()
		s.rejectedAsync.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, serr)
		return
	}
	poll := "/v1/jobs/" + id
	w.Header().Set("Location", poll)
	writeJSON(w, http.StatusAccepted, AsyncAccepted{JobID: id, State: jobs.StateQueued, Poll: poll})
}

// recordJobTrace finishes an async job's pipeline trace and files it to
// the flight recorder; nil-safe under disabled observability.
func (s *Server) recordJobTrace(tr *obs.Trace, code int, errMsg string) {
	if s.obs == nil || tr == nil {
		return
	}
	tr.Finish(code, errMsg)
	s.obs.recorder.Record(tr)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobStore.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.jobStore.Cancel(id) {
		// Canceled while queued: the record (now failed, "canceled") stays
		// pollable until its TTL so the client sees the outcome.
		j, _ := s.jobStore.Get(id)
		writeJSON(w, http.StatusOK, j)
		return
	}
	if s.jobStore.Delete(id) {
		writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
		return
	}
	if _, ok := s.jobStore.Get(id); !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	// Still running: the training is underway and warms the shared
	// library either way; poll until it finishes.
	writeError(w, http.StatusConflict, fmt.Errorf("job %s is running", id))
}
