package server

import (
	"testing"

	"accqoc/internal/circuit"
	"accqoc/internal/compilesvc"
	"accqoc/internal/devreg"
	"accqoc/internal/precompile"
	"accqoc/internal/qasm"
)

// Similar 2Q pairs: one CX-anchored group whose trailing rz angle moves a
// little, so the second program's group is a cache miss with a close
// covered neighbor.
const (
	cx2qAProgram = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncx q[0],q[1];\nrz(0.2) q[1];\n"
	cx2qBProgram = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncx q[0],q[1];\nrz(0.35) q[1];\n"
)

func mustParse(b *testing.B, src string) *circuit.Circuit {
	b.Helper()
	prog, err := qasm.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// benchServe measures one cache-miss service pattern: train program A on
// a fresh server, then serve the similar program B as a miss. The
// reported grape-iters/op is B's training cost — the paper's
// compile-cost metric (§VI-G) — which the seed index should cut relative
// to the cold path. GRAPE is seeded (fastOpts sets Seed), so the
// iteration metric is deterministic; wall time on the shared bench box
// is not the signal.
func benchServe(b *testing.B, progA, progB string, disable bool) {
	pa := mustParse(b, progA)
	pb := mustParse(b, progB)
	var iters, seeded int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(Config{Compile: fastOpts(), Workers: 1, DisableSeedIndex: disable})
		if _, err := s.svc.Do(&compilesvc.Request{Prog: pa, NS: s.defaultNS()}); err != nil {
			b.Fatal(err)
		}
		res, err := s.svc.Do(&compilesvc.Request{Prog: pb, NS: s.defaultNS()})
		if err != nil {
			b.Fatal(err)
		}
		iters += int64(res.Resp.TrainingIterations)
		seeded += int64(res.Resp.WarmSeeded)
		s.Close()
	}
	b.StopTimer()
	if !disable && seeded < int64(b.N) {
		b.Fatalf("warm mode seeded %d of %d misses", seeded, b.N)
	}
	b.ReportMetric(float64(iters)/float64(b.N), "grape-iters/op")
}

// BenchmarkServeColdVsWarm is the serving-path ablation committed to
// BENCH_warmstart.json: identical miss traffic with the seed index off
// (cold) and on (warm).
func BenchmarkServeColdVsWarm(b *testing.B) {
	for _, c := range []struct{ name, a, b string }{
		{"1q", rxAProgram, rxBProgram},
		{"2q", cx2qAProgram, cx2qBProgram},
	} {
		b.Run(c.name+"/cold", func(b *testing.B) { benchServe(b, c.a, c.b, true) })
		b.Run(c.name+"/warm", func(b *testing.B) { benchServe(b, c.a, c.b, false) })
	}
}

// benchEpochRoll measures the cross-epoch recompilation cost for one
// calibration event: epoch 0 is warmed with a 1q and a 2q group, the
// calibration drifts ±2%, and every covered group re-trains for epoch 1.
// The warm arm drives the server's real pipeline unit (recompileOne:
// seeded by the old-epoch pulse at its native duration); the cold arm
// strips the seeds — what every recalibration cost before the registry.
// grape-iters/op is the summed re-training cost per roll. Fidelity is
// tightened to 1e-3 so iteration counts are meaningful; GRAPE is seeded,
// so they are deterministic — wall clock on the shared box is not the
// signal.
func benchEpochRoll(b *testing.B, warm bool) {
	opts := fastOpts()
	opts.Precompile.Grape.TargetInfidelity = 1e-3
	pa := mustParse(b, rxAProgram)
	pc := mustParse(b, cx2qAProgram)
	var iters int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(Config{Compile: opts, Workers: 1})
		for _, prog := range []*circuit.Circuit{pa, pc} {
			if _, err := s.svc.Do(&compilesvc.Request{Prog: prog, NS: s.defaultNS()}); err != nil {
				b.Fatal(err)
			}
		}
		roll, err := s.Registry().Calibrate("", devreg.CalibrationUpdate{DriftPct: 2})
		if err != nil {
			b.Fatal(err)
		}
		if len(roll.Plan) != 2 {
			b.Fatalf("plan has %d items, want 2", len(roll.Plan))
		}
		if warm {
			for j := range roll.Plan {
				if rerr := s.svc.Recompile(roll, &roll.Plan[j]); rerr != nil {
					b.Fatal(rerr)
				}
			}
			st := roll.Status()
			// The acceptance invariant: the warm path seeds every
			// re-trained group from its old-epoch pulse.
			if st.Done != len(roll.Plan) || st.WarmSeeded != st.Done || st.Failed != 0 {
				b.Fatalf("warm roll did not seed every group: %+v", st)
			}
			iters += int64(st.Iterations)
		} else {
			cfg := roll.New.Comp.Options().Precompile
			for _, it := range roll.Plan {
				stripped := &precompile.Entry{
					Key: it.Old.Key, NumQubits: it.Old.NumQubits, Frequency: it.Old.Frequency,
				}
				e, rerr := precompile.RetrainEntry(stripped, it.Unitary, cfg)
				if rerr != nil {
					b.Fatal(rerr)
				}
				iters += int64(e.Iterations)
			}
		}
		roll.Finish()
		s.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(iters)/float64(b.N), "grape-iters/op")
}

// BenchmarkEpochRollWarmVsCold is the calibration-epoch ablation committed
// to BENCH_epoch.json: the same ±2% recalibration re-covered with
// old-epoch warm starts (the registry's roll pipeline) vs cold re-training
// (the pre-registry cost of a recalibration).
func BenchmarkEpochRollWarmVsCold(b *testing.B) {
	b.Run("cold", func(b *testing.B) { benchEpochRoll(b, false) })
	b.Run("warm", func(b *testing.B) { benchEpochRoll(b, true) })
}
