package server

import (
	"testing"

	"accqoc/internal/circuit"
	"accqoc/internal/qasm"
)

// Similar 2Q pairs: one CX-anchored group whose trailing rz angle moves a
// little, so the second program's group is a cache miss with a close
// covered neighbor.
const (
	cx2qAProgram = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncx q[0],q[1];\nrz(0.2) q[1];\n"
	cx2qBProgram = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncx q[0],q[1];\nrz(0.35) q[1];\n"
)

func mustParse(b *testing.B, src string) *circuit.Circuit {
	b.Helper()
	prog, err := qasm.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// benchServe measures one cache-miss service pattern: train program A on
// a fresh server, then serve the similar program B as a miss. The
// reported grape-iters/op is B's training cost — the paper's
// compile-cost metric (§VI-G) — which the seed index should cut relative
// to the cold path. GRAPE is seeded (fastOpts sets Seed), so the
// iteration metric is deterministic; wall time on the shared bench box
// is not the signal.
func benchServe(b *testing.B, progA, progB string, disable bool) {
	pa := mustParse(b, progA)
	pb := mustParse(b, progB)
	var iters, seeded int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(Config{Compile: fastOpts(), Workers: 1, DisableSeedIndex: disable})
		if _, err := s.compile(pa); err != nil {
			b.Fatal(err)
		}
		resp, err := s.compile(pb)
		if err != nil {
			b.Fatal(err)
		}
		iters += int64(resp.TrainingIterations)
		seeded += int64(resp.WarmSeeded)
		s.Close()
	}
	b.StopTimer()
	if !disable && seeded < int64(b.N) {
		b.Fatalf("warm mode seeded %d of %d misses", seeded, b.N)
	}
	b.ReportMetric(float64(iters)/float64(b.N), "grape-iters/op")
}

// BenchmarkServeColdVsWarm is the serving-path ablation committed to
// BENCH_warmstart.json: identical miss traffic with the seed index off
// (cold) and on (warm).
func BenchmarkServeColdVsWarm(b *testing.B) {
	for _, c := range []struct{ name, a, b string }{
		{"1q", rxAProgram, rxBProgram},
		{"2q", cx2qAProgram, cx2qBProgram},
	} {
		b.Run(c.name+"/cold", func(b *testing.B) { benchServe(b, c.a, c.b, true) })
		b.Run(c.name+"/warm", func(b *testing.B) { benchServe(b, c.a, c.b, false) })
	}
}
