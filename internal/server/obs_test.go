package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// exposition is a parsed /metrics scrape: family types plus every sample
// keyed by its full series (name + sorted label string as rendered).
type exposition struct {
	types   map[string]string
	samples map[string]float64
	order   []string
}

var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?) (\S+)$`)

// scrapeMetrics fetches and parses /metrics, failing the test on any
// malformed exposition line — this is the wire-format oracle the CI smoke
// step mirrors.
func scrapeMetrics(t *testing.T, base string) exposition {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics content type %q", ct)
	}
	out := exposition{types: map[string]string{}, samples: map[string]float64{}}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			out.types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		v, perr := strconv.ParseFloat(m[2], 64)
		if perr != nil && m[2] != "+Inf" && m[2] != "-Inf" && m[2] != "NaN" {
			t.Fatalf("malformed sample value in %q", line)
		}
		out.samples[m[1]] = v
		out.order = append(out.order, m[1])
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// sumSeries totals every sample of a family whose labels include all the
// given `key="value"` fragments.
func (e exposition) sumSeries(name string, labelFrags ...string) float64 {
	var total float64
	for series, v := range e.samples {
		if series != name && !strings.HasPrefix(series, name+"{") {
			continue
		}
		ok := true
		for _, frag := range labelFrags {
			if !strings.Contains(series, frag) {
				ok = false
				break
			}
		}
		if ok {
			total += v
		}
	}
	return total
}

// TestMetricsExposition pins the /metrics wire format: family names and
// types, the label sets of the core series, and histogram completeness
// (+Inf bucket, _sum, _count). A rename here is a dashboard break — make
// it a conscious one.
func TestMetricsExposition(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	_, ts := newTestServer(t)
	if _, code := postCompile(t, ts.URL, CompileRequest{QASM: oneQubitProgram}); code != http.StatusOK {
		t.Fatalf("cold compile status %d", code)
	}
	if _, code := postCompile(t, ts.URL, CompileRequest{QASM: oneQubitProgram}); code != http.StatusOK {
		t.Fatalf("warm compile status %d", code)
	}
	exp := scrapeMetrics(t, ts.URL)

	wantTypes := map[string]string{
		"accqoc_http_requests_total":               "counter",
		"accqoc_http_request_duration_seconds":     "histogram",
		"accqoc_http_in_flight":                    "gauge",
		"accqoc_compile_duration_seconds":          "histogram",
		"accqoc_grape_training_iterations":         "histogram",
		"accqoc_grape_training_infidelity":         "histogram",
		"accqoc_grape_optimizer_iterations_total":  "counter",
		"accqoc_grape_step_norm":                   "histogram",
		"accqoc_seed_distance":                     "histogram",
		"accqoc_seed_lookups_total":                "counter",
		"accqoc_store_hits_total":                  "counter",
		"accqoc_store_misses_total":                "counter",
		"accqoc_store_evictions_total":             "counter",
		"accqoc_store_inserts_total":               "counter",
		"accqoc_store_trainings_total":             "counter",
		"accqoc_store_coalesced_total":             "counter",
		"accqoc_store_train_failures_total":        "counter",
		"accqoc_store_entries":                     "gauge",
		"accqoc_device_epoch":                      "gauge",
		"accqoc_device_epoch_age_seconds":          "gauge",
		"accqoc_roll_active":                       "gauge",
		"accqoc_roll_planned":                      "gauge",
		"accqoc_roll_pending":                      "gauge",
		"accqoc_queue_depth":                       "gauge",
		"accqoc_compile_in_flight":                 "gauge",
		"accqoc_jobs":                              "gauge",
		"accqoc_jobs_rejected_total":               "counter",
		"accqoc_usage_requests_total":              "counter",
		"accqoc_usage_tracked_keys":                "gauge",
		"accqoc_usage_training_iterations_total":   "counter",
		"accqoc_usage_training_wall_seconds_total": "counter",
		"accqoc_usage_trainings_total":             "counter",
		"accqoc_usage_hits_total":                  "counter",
		"accqoc_usage_regret_events_total":         "counter",
		"accqoc_usage_regret_iterations_total":     "counter",
		"accqoc_usage_regret_wall_seconds_total":   "counter",
		"accqoc_usage_cooccurrence_pairs":          "gauge",
		"accqoc_usage_cooccurrence_dropped_total":  "counter",
		"accqoc_go_goroutines":                     "gauge",
		"accqoc_go_heap_inuse_bytes":               "gauge",
		"accqoc_go_gc_pause_seconds":               "histogram",
	}
	for name, typ := range wantTypes {
		if got := exp.types[name]; got != typ {
			t.Errorf("family %s: type %q, want %q", name, got, typ)
		}
	}

	// Core series label sets.
	for _, series := range []string{
		`accqoc_http_requests_total{endpoint="/v1/compile",code="200"}`,
		`accqoc_http_request_duration_seconds_count{endpoint="/v1/compile"}`,
		`accqoc_http_request_duration_seconds_bucket{endpoint="/v1/compile",le="+Inf"}`,
		`accqoc_http_request_duration_seconds_sum{endpoint="/v1/compile"}`,
		`accqoc_compile_duration_seconds_count{device="default"}`,
		`accqoc_grape_training_iterations_count{qubits="1"}`,
		`accqoc_grape_training_infidelity_bucket{qubits="1",le="+Inf"}`,
		`accqoc_store_hits_total{device="default"}`,
		`accqoc_store_trainings_total{device="default"}`,
		`accqoc_device_epoch{device="default"}`,
		`accqoc_device_epoch_age_seconds{device="default"}`,
		`accqoc_roll_active{device="default"}`,
		`accqoc_jobs{state="queued"}`,
		`accqoc_jobs{state="running"}`,
		`accqoc_jobs{state="done"}`,
		`accqoc_jobs{state="failed"}`,
		`accqoc_jobs_rejected_total`,
		`accqoc_usage_requests_total{device="default"}`,
		`accqoc_usage_tracked_keys{device="default"}`,
		`accqoc_usage_training_iterations_total{device="default"}`,
		`accqoc_usage_trainings_total{device="default",seeded="false"}`,
		`accqoc_usage_hits_total{device="default"}`,
		`accqoc_usage_regret_events_total{device="default"}`,
		`accqoc_usage_cooccurrence_pairs{device="default"}`,
		`accqoc_go_goroutines`,
		`accqoc_go_heap_inuse_bytes`,
		`accqoc_go_gc_pause_seconds_bucket{le="+Inf"}`,
		`accqoc_go_gc_pause_seconds_count`,
	} {
		if _, ok := exp.samples[series]; !ok {
			t.Errorf("series %s missing from exposition", series)
		}
	}

	if exp.samples[`accqoc_http_requests_total{endpoint="/v1/compile",code="200"}`] != 2 {
		t.Errorf("http_requests_total = %v, want 2",
			exp.samples[`accqoc_http_requests_total{endpoint="/v1/compile",code="200"}`])
	}
	if exp.samples["accqoc_grape_optimizer_iterations_total"] <= 0 {
		t.Error("optimizer iteration counter never incremented")
	}
	if exp.samples[`accqoc_grape_training_iterations_count{qubits="1"}`] <= 0 {
		t.Error("no GRAPE trainings recorded")
	}
	if exp.samples[`accqoc_store_hits_total{device="default"}`] <= 0 {
		t.Error("warm request produced no store hits in /metrics")
	}
	if got := exp.samples[`accqoc_usage_requests_total{device="default"}`]; got != 2 {
		t.Errorf("usage_requests_total = %v, want 2", got)
	}
	if exp.samples[`accqoc_usage_hits_total{device="default"}`] <= 0 {
		t.Error("warm request produced no ledger hits in /metrics")
	}
	if exp.samples[`accqoc_go_goroutines`] <= 0 {
		t.Error("goroutine gauge not positive")
	}
}

// TestDebugRequestsSchema pins the flight-recorder JSON: recent/slowest
// arrays of traces, each with the request ID (matching X-Request-Id),
// endpoint, status, and per-stage spans covering the compile pipeline.
func TestDebugRequestsSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	_, ts := newTestServer(t)

	body := strings.NewReader(fmt.Sprintf(`{"qasm":%q}`, oneQubitProgram))
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status %d", resp.StatusCode)
	}
	rid := resp.Header.Get("X-Request-Id")
	if rid == "" {
		t.Fatal("compile response missing X-Request-Id")
	}

	dr, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Body.Close()
	var out struct {
		Recent []struct {
			ID         string  `json:"id"`
			Endpoint   string  `json:"endpoint"`
			Device     string  `json:"device"`
			Epoch      int     `json:"epoch"`
			Qubits     int     `json:"qubits"`
			Gates      int     `json:"gates"`
			DurationMs float64 `json:"duration_ms"`
			Status     int     `json:"status"`
			Spans      []struct {
				Name       string  `json:"name"`
				DurationUs float64 `json:"duration_us"`
				Outcome    string  `json:"outcome"`
			} `json:"spans"`
		} `json:"recent"`
		Slowest []json.RawMessage `json:"slowest"`
	}
	if err := json.NewDecoder(dr.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Recent) == 0 || len(out.Slowest) == 0 {
		t.Fatalf("flight recorder empty: %d recent, %d slowest", len(out.Recent), len(out.Slowest))
	}
	tr := out.Recent[0]
	if tr.ID != rid {
		t.Errorf("trace id %q != X-Request-Id %q", tr.ID, rid)
	}
	if tr.Endpoint != "/v1/compile" || tr.Status != http.StatusOK {
		t.Errorf("trace endpoint/status = %q/%d", tr.Endpoint, tr.Status)
	}
	if tr.Device != "default" || tr.Qubits != 2 || tr.Gates != 3 {
		t.Errorf("trace meta = %+v", tr)
	}
	if tr.DurationMs <= 0 {
		t.Error("trace duration not recorded")
	}
	stages := map[string]bool{}
	trained := 0
	for _, sp := range tr.Spans {
		stages[sp.Name] = true
		if sp.Name == "train" && sp.Outcome == "trained" {
			trained++
		}
	}
	for _, want := range []string{"parse", "queue", "prepare", "plan", "train"} {
		if !stages[want] {
			t.Errorf("trace missing %q span (got %v)", want, stages)
		}
	}
	if trained == 0 {
		t.Error("cold compile recorded no trained spans")
	}
}

// TestMetricsCoherenceUnderLoad hammers concurrent compiles while other
// goroutines scrape /metrics, then checks the counters add up: requests
// in equals per-endpoint counts out, and every training inserted exactly
// one entry. Run under -race this also proves scrape/record safety.
func TestMetricsCoherenceUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	_, ts := newTestServer(t)
	// Warm the library so the hammer phase is fast (hits, not trainings).
	if _, code := postCompile(t, ts.URL, CompileRequest{QASM: oneQubitProgram}); code != http.StatusOK {
		t.Fatalf("warmup status %d", code)
	}

	const clients, perClient, scrapes = 4, 5, 10
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				postCompile(t, ts.URL, CompileRequest{QASM: oneQubitProgram})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < scrapes; i++ {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Wait()

	exp := scrapeMetrics(t, ts.URL)
	sent := float64(1 + clients*perClient)
	if got := exp.sumSeries("accqoc_http_requests_total", `endpoint="/v1/compile"`); got != sent {
		t.Errorf("sum over codes of /v1/compile requests = %v, want %v", got, sent)
	}
	if got := exp.sumSeries("accqoc_http_request_duration_seconds_count", `endpoint="/v1/compile"`); got != sent {
		t.Errorf("latency histogram count = %v, want %v", got, sent)
	}
	trainings := exp.sumSeries("accqoc_store_trainings_total")
	inserts := exp.sumSeries("accqoc_store_inserts_total")
	failures := exp.sumSeries("accqoc_store_train_failures_total")
	if trainings != inserts+failures {
		t.Errorf("trainings (%v) != inserts (%v) + failures (%v)", trainings, inserts, failures)
	}
	if trainings <= 0 {
		t.Error("no trainings recorded")
	}
	if got := exp.samples["accqoc_http_in_flight"]; got != 0 {
		t.Errorf("in-flight gauge = %v after load drained", got)
	}
}

// TestDisableObservabilityEquivalence pins the escape hatch: with
// observability disabled the server neither exposes the new endpoints nor
// stamps responses, and the library it builds is bit-identical to the
// instrumented server's — the hooks must not perturb training.
func TestDisableObservabilityEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	plain := New(Config{Compile: fastOpts(), Workers: 4, DisableObservability: true})
	tsPlain := httptest.NewServer(plain.Handler())
	defer func() { tsPlain.Close(); plain.Close() }()
	instr := New(Config{Compile: fastOpts(), Workers: 4})
	tsInstr := httptest.NewServer(instr.Handler())
	defer func() { tsInstr.Close(); instr.Close() }()

	respPlain := postRaw(t, tsPlain.URL, oneQubitProgram)
	respInstr := postRaw(t, tsInstr.URL, oneQubitProgram)

	if rid := respPlain.header.Get("X-Request-Id"); rid != "" {
		t.Errorf("disabled server stamped X-Request-Id %q", rid)
	}
	if rid := respInstr.header.Get("X-Request-Id"); rid == "" {
		t.Error("instrumented server missing X-Request-Id")
	}
	for _, path := range []string{"/metrics", "/debug/requests"} {
		resp, err := http.Get(tsPlain.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("disabled server serves %s (status %d)", path, resp.StatusCode)
		}
	}

	// Response bodies agree once the wall-clock field is masked.
	var a, b CompileResponse
	if err := json.Unmarshal(respPlain.body, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(respInstr.body, &b); err != nil {
		t.Fatal(err)
	}
	a.CompileMillis, b.CompileMillis = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("responses diverge:\nplain %+v\ninstr %+v", a, b)
	}

	// And the trained libraries are bit-identical.
	got := plain.Store().Snapshot().Entries
	want := instr.Store().Snapshot().Entries
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("store sizes diverge: %d vs %d", len(got), len(want))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Fatalf("disabled store missing %q", key)
		}
		if g.Iterations != w.Iterations || g.LatencyNs != w.LatencyNs {
			t.Fatalf("entry %q diverges: iterations %d vs %d, latency %v vs %v",
				key, g.Iterations, w.Iterations, g.LatencyNs, w.LatencyNs)
		}
		if !reflect.DeepEqual(g.Pulse.Amps, w.Pulse.Amps) || g.Pulse.Dt != w.Pulse.Dt {
			t.Fatalf("entry %q pulse not bit-identical across observability modes", key)
		}
	}
}

type rawResponse struct {
	header http.Header
	body   []byte
}

func postRaw(t *testing.T, base, qasm string) rawResponse {
	t.Helper()
	payload, err := json.Marshal(CompileRequest{QASM: qasm})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/compile", "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	return rawResponse{header: resp.Header, body: body}
}

// TestTrainingObserverGroupSize3 pins the label cell a dim-8 (3-qubit)
// training observation lands in: the opt-in 3Q policies must show up in
// the convergence histograms as qubits="3", not fall through to a slow
// formatting path or get folded into another cell.
func TestTrainingObserverGroupSize3(t *testing.T) {
	ob := newObsState(4)
	ob.trainingObserver(3, 17, 1e-3, false)

	var buf strings.Builder
	if err := ob.reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, series := range []string{
		`accqoc_grape_training_iterations_count{qubits="3"} 1`,
		`accqoc_grape_training_infidelity_count{qubits="3"} 1`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition missing %s", series)
		}
	}
	// No stray cells: the observation must not have touched 1Q/2Q.
	for _, series := range []string{
		`accqoc_grape_training_iterations_count{qubits="1"} 1`,
		`accqoc_grape_training_iterations_count{qubits="2"} 1`,
	} {
		if strings.Contains(text, series) {
			t.Errorf("dim-8 observation leaked into %s", series)
		}
	}
	if qubitsLabel(3) != "3" {
		t.Fatalf("qubitsLabel(3) = %q", qubitsLabel(3))
	}
}
