// Package server exposes the AccQOC compilation pipeline as an HTTP JSON
// service — the long-lived deployment shape the paper's pre-compiled
// library implies (§IV/§V): many programs, one shared pulse library. The
// server accepts OpenQASM 2.0 or a workload spec on POST /v1/compile, runs
// the Prepare→coverage→train→latency pipeline on a bounded worker pool,
// and serves every trained pulse from the sharded libstore.Store so warm
// requests cost library lookups instead of GRAPE iterations. Concurrent
// requests that need the same uncovered gate group trigger exactly one
// training (the store's singleflight).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"accqoc"
	"accqoc/internal/circuit"
	"accqoc/internal/crosstalk"
	"accqoc/internal/gatepulse"
	"accqoc/internal/grouping"
	"accqoc/internal/latency"
	"accqoc/internal/libstore"
	"accqoc/internal/precompile"
	"accqoc/internal/qasm"
	"accqoc/internal/workload"
)

// Config assembles a Server. The zero value serves the paper's default
// pipeline (Melbourne, map2b4l) on GOMAXPROCS workers with a fresh store.
type Config struct {
	// Compile configures the pipeline (device, policy, GRAPE budgets).
	Compile accqoc.Options
	// Store is the shared pulse library; nil creates an unbounded one.
	Store *libstore.Store
	// Workers bounds concurrent compilations. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds pending requests beyond the running ones; a full
	// queue answers 503. Default 64.
	QueueDepth int
	// MaxGates rejects programs above this gate count (400). Default 4096.
	MaxGates int
	// MaxBodyBytes bounds request bodies. Default 4 MiB.
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.Store == nil {
		c.Store = libstore.New(libstore.Options{})
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxGates <= 0 {
		c.MaxGates = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	return c
}

// CompileRequest is the POST /v1/compile body. Exactly one of QASM or
// Workload must be set.
type CompileRequest struct {
	// QASM is OpenQASM 2.0 source.
	QASM string `json:"qasm,omitempty"`
	// Workload is a generator spec: qft:N, named:NAME,
	// random:QUBITS:GATES:SEED (see workload.FromSpec).
	Workload string `json:"workload,omitempty"`
}

// CompileResponse reports one request's accelerated compilation.
type CompileResponse struct {
	Qubits int `json:"qubits"`
	Gates  int `json:"gates"`

	// Coverage of group occurrences by the library at request start
	// (§V-A). A warm request has coverage 1.
	TotalGroups     int     `json:"total_groups"`
	CoveredGroups   int     `json:"covered_groups"`
	CoverageRate    float64 `json:"coverage_rate"`
	UncoveredUnique int     `json:"uncovered_unique"`
	FailedGroups    int     `json:"failed_groups"`
	WarmServed      bool    `json:"warm_served"`

	QOCLatencyNs      float64 `json:"qoc_latency_ns"`
	GateLatencyNs     float64 `json:"gate_latency_ns"`
	LatencyReduction  float64 `json:"latency_reduction"`
	EstimatedFidelity float64 `json:"estimated_fidelity"`

	// CompileMillis is the server-side wall time for this request.
	CompileMillis float64 `json:"compile_millis"`
}

// StatsResponse is the GET /v1/library/stats body.
type StatsResponse struct {
	Library libstore.Stats `json:"library"`
	Server  ServerStats    `json:"server"`
}

// ServerStats carries request-level counters.
type ServerStats struct {
	UptimeSeconds      float64 `json:"uptime_seconds"`
	Requests           int64   `json:"requests"`
	Failures           int64   `json:"failures"`
	Rejected           int64   `json:"rejected"` // queue-full 503s
	TotalCompileMillis float64 `json:"total_compile_millis"`
	Workers            int     `json:"workers"`
	QueueDepth         int     `json:"queue_depth"`
}

type job struct {
	prog *circuit.Circuit
	done chan jobResult
}

type jobResult struct {
	resp *CompileResponse
	err  error
}

// Server is the HTTP compilation service.
type Server struct {
	cfg   Config
	comp  *accqoc.Compiler
	store *libstore.Store
	mux   *http.ServeMux

	jobs  chan *job
	quit  chan struct{}
	wg    sync.WaitGroup
	start time.Time

	requests, failures, rejected atomic.Int64
	compileNs                    atomic.Int64

	// closeMu orders handler enqueues against Close: an enqueue holds the
	// read lock, so once Close holds the write lock and sets closed, every
	// queued job predates the quit signal and the worker drain loop (or
	// Close's final sweep) is guaranteed to answer it.
	closeMu   sync.RWMutex
	closed    bool
	closeOnce sync.Once
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		comp:  accqoc.New(cfg.Compile),
		store: cfg.Store,
		mux:   http.NewServeMux(),
		jobs:  make(chan *job, cfg.QueueDepth),
		quit:  make(chan struct{}),
		start: time.Now(),
	}
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("GET /v1/library/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Store exposes the backing pulse store.
func (s *Server) Store() *libstore.Store { return s.store }

// Handler returns the HTTP handler (for http.Server or httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the worker pool after draining queued jobs. Requests that
// arrive during or after Close are answered 503.
func (s *Server) Close() {
	s.closeMu.Lock()
	s.closed = true
	s.closeMu.Unlock()
	s.closeOnce.Do(func() { close(s.quit) })
	s.wg.Wait()
	// Fail anything that slipped into the queue between the workers' drain
	// sweep and their exit (possible only for jobs enqueued before closed
	// was set, so this sweep is the last).
	for {
		select {
		case j := <-s.jobs:
			j.done <- jobResult{err: errors.New("server closed")}
		default:
			return
		}
	}
}

// enqueue submits a job unless the server is closed or the queue is full.
func (s *Server) enqueue(j *job) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return errors.New("server shutting down")
	}
	select {
	case s.jobs <- j:
		return nil
	default:
		return errors.New("compilation queue full")
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.jobs:
			resp, err := s.compile(j.prog)
			j.done <- jobResult{resp: resp, err: err}
		case <-s.quit:
			// Drain whatever is already queued so no handler hangs.
			for {
				select {
				case j := <-s.jobs:
					resp, err := s.compile(j.prog)
					j.done <- jobResult{resp: resp, err: err}
				default:
					return
				}
			}
		}
	}
}

// compile runs the serving-side pipeline: Prepare, store-backed coverage,
// singleflight training of uncovered groups, and Algorithm 3 latency
// assembly.
func (s *Server) compile(prog *circuit.Circuit) (*CompileResponse, error) {
	begin := time.Now()
	prep, err := s.comp.Prepare(prog)
	if err != nil {
		return nil, err
	}
	gr := prep.Grouping
	keys, err := precompile.Keys(gr)
	if err != nil {
		return nil, err
	}

	resp := &CompileResponse{
		Qubits:      prog.NumQubits,
		Gates:       prog.GateCount(),
		TotalGroups: len(gr.Groups),
	}

	// Deduplicate occurrences against the precomputed keys, then resolve
	// every unique group: a warm key is a store hit; a cold key trains
	// exactly once across all concurrent requests (singleflight).
	uniq := grouping.DeduplicateKeyed(gr.Groups, keys)
	entries := make(map[string]*precompile.Entry, len(uniq))
	cfg := s.comp.Options().Precompile
	for _, u := range uniq {
		e, outcome, terr := s.store.GetOrTrain(u.Key, func() (*precompile.Entry, error) {
			return precompile.TrainGroup(u, cfg, nil)
		})
		if outcome == libstore.OutcomeHit {
			resp.CoveredGroups += u.Count
		} else {
			// Trained here or joined another request's in-flight training:
			// either way this request waited on GRAPE for the group.
			resp.UncoveredUnique++
		}
		if terr != nil {
			// Unreachable within the bracket: price it gate-based below.
			resp.FailedGroups++
			continue
		}
		entries[u.Key] = e
	}
	if resp.TotalGroups > 0 {
		resp.CoverageRate = float64(resp.CoveredGroups) / float64(resp.TotalGroups)
	} else {
		resp.CoverageRate = 1
	}
	resp.WarmServed = resp.UncoveredUnique == 0

	dev := s.comp.Options().Device
	overall, err := latency.OverallGroups(gr, func(i int) (float64, error) {
		if e, ok := entries[keys[i]]; ok {
			return e.LatencyNs, nil
		}
		var sum float64
		for _, g := range gr.Groups[i].Gates {
			sum += gatepulse.GateLatency(g.Name, dev.Calibration)
		}
		return sum, nil
	})
	if err != nil {
		return nil, err
	}
	resp.QOCLatencyNs = overall
	resp.GateLatencyNs = gatepulse.Overall(prep.Physical, dev.Calibration)
	if overall > 0 {
		resp.LatencyReduction = resp.GateLatencyNs / overall
	}
	resp.EstimatedFidelity = crosstalk.ProgramFidelity(prep.Physical, dev, overall)
	resp.CompileMillis = float64(time.Since(begin)) / float64(time.Millisecond)
	return resp, nil
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req CompileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.failures.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	prog, err := s.ingest(req)
	if err != nil {
		s.failures.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}

	j := &job{prog: prog, done: make(chan jobResult, 1)}
	if err := s.enqueue(j); err != nil {
		s.rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	// Wait for the worker even if the client goes away: the training is
	// already paid for and warms the shared library.
	res := <-j.done
	if res.err != nil {
		s.failures.Add(1)
		writeError(w, http.StatusInternalServerError, res.err)
		return
	}
	s.compileNs.Add(int64(res.resp.CompileMillis * float64(time.Millisecond)))
	writeJSON(w, http.StatusOK, res.resp)
}

// ingest turns a request body into a circuit.
func (s *Server) ingest(req CompileRequest) (*circuit.Circuit, error) {
	switch {
	case req.QASM != "" && req.Workload != "":
		return nil, errors.New("set exactly one of qasm, workload")
	case req.QASM != "":
		return qasm.ParseBudget(req.QASM, s.cfg.MaxGates)
	case req.Workload != "":
		// The budget is enforced inside the generator, before anything of
		// consequence is built.
		p, err := workload.FromSpecBudget(req.Workload, s.cfg.MaxGates)
		if err != nil {
			return nil, err
		}
		return p.Circuit, nil
	default:
		return nil, errors.New("set exactly one of qasm, workload")
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Library: s.store.Stats(),
		Server: ServerStats{
			UptimeSeconds:      time.Since(s.start).Seconds(),
			Requests:           s.requests.Load(),
			Failures:           s.failures.Load(),
			Rejected:           s.rejected.Load(),
			TotalCompileMillis: float64(s.compileNs.Load()) / float64(time.Millisecond),
			Workers:            s.cfg.Workers,
			QueueDepth:         s.cfg.QueueDepth,
		},
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
