// Package server is the routing tier of the AccQOC serving stack: the
// HTTP JSON surface over the training tier (internal/compilesvc), which
// owns the Prepare→coverage→train→latency pipeline and its worker pool.
// This package handles transport, request validation, admission
// accounting, device/namespace routing through the device registry
// (internal/devreg), request IDs and observability spans — and speaks to
// the pipeline exclusively through the compilesvc.CompileService
// interface, so the training tier can later run out-of-process or be
// consistent-hashed across nodes without touching a handler.
//
// Synchronous requests (POST /v1/compile, POST /v1/circuits/compile)
// block on the service's Do and return the finished response; the same
// endpoints with ?async=1 return 202 Accepted plus a job ID backed by the
// bounded job store (internal/jobs), pollable on GET /v1/jobs/{id} and
// cancelable with DELETE while still queued. Async submissions against
// the same (device, epoch) namespace are batched by the training tier
// into one shared resolveGroups pass; exactly-once training holds across
// sync and async traffic because every path resolves through the same
// namespace store singleflight.
//
// A calibration event (POST /v1/devices/{name}/calibrate) opens a new
// epoch and starts a background recompilation roll that feeds the shared
// pool one item at a time through the service's Recompile, so serving
// never blocks on a recalibration.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"accqoc"
	"accqoc/internal/circuit"
	"accqoc/internal/compilesvc"
	"accqoc/internal/devreg"
	"accqoc/internal/jobs"
	"accqoc/internal/libstore"
	"accqoc/internal/obs"
	"accqoc/internal/qasm"
	"accqoc/internal/seedindex"
	"accqoc/internal/usage"
	"accqoc/internal/workload"
)

// Config assembles a Server. The zero value serves the paper's default
// pipeline (Melbourne, map2b4l) on GOMAXPROCS workers with a fresh store.
type Config struct {
	// Compile configures the pipeline (device, policy, GRAPE budgets) for
	// the default device; it is also the option template for the extra
	// Devices (their topology and Hamiltonian override it per namespace).
	Compile accqoc.Options
	// Store is the default device's epoch-0 pulse library; nil creates an
	// unbounded one. Extra devices and later epochs get fresh stores with
	// StoreOptions.
	Store *libstore.Store
	// StoreOptions configure the stores created for extra devices and
	// fresh calibration epochs (shards, capacity).
	StoreOptions libstore.Options
	// DeviceName is the registry name of the default device (the one an
	// absent `device` request field routes to). Default "default".
	DeviceName string
	// Devices are additional device profiles served next to the default,
	// each with its own namespaced library and epochs.
	Devices []devreg.Profile
	// BootSnapshot, when set, is loaded asynchronously into the default
	// device's store after the server starts; /healthz reports 503 until
	// the load completes (the readiness gate). The snapshot's
	// device+calibration fingerprint must match the default profile
	// unless BootSnapshotForce is set.
	BootSnapshot      string
	BootSnapshotForce bool
	// Workers bounds concurrent compilations in the training tier.
	// Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds pending requests beyond the running ones; a full
	// queue answers 503 with a Retry-After hint. Default 64.
	QueueDepth int
	// MaxGates rejects programs above this gate count (400). Default 4096.
	MaxGates int
	// MaxBodyBytes bounds request bodies. Default 4 MiB.
	MaxBodyBytes int64
	// DisableAsyncJobs turns off the async job API: ?async=1 is refused
	// and the /v1/jobs routes are not registered.
	DisableAsyncJobs bool
	// JobTTL bounds how long finished async jobs stay pollable before
	// TTL eviction. Default 15 minutes.
	JobTTL time.Duration
	// JobCap bounds the async job store; a full store answers 503 with
	// Retry-After (counted in rejected_async). Default 1024.
	JobCap int
	// AsyncBatchWindow is how long an async submission waits in the
	// training tier to share one resolveGroups pass with same-namespace
	// company. Default 2ms.
	AsyncBatchWindow time.Duration
	// DisableSeedIndex turns off the warm-start seed index and the
	// plan/execute miss path: cache misses then train cold in
	// deduplication order, reproducing the pre-index serving behavior
	// byte for byte (useful for A/B comparison and as the determinism
	// baseline). It also disables cross-epoch recompilation plans (the
	// index is where training targets are cached).
	DisableSeedIndex bool
	// DisableObservability turns off the whole telemetry layer: no
	// /metrics or /debug/requests routes, no request IDs or X-Request-Id
	// header, no pipeline hooks — responses are byte-identical to the
	// pre-observability server.
	DisableObservability bool
	// FlightRecorderSize bounds the request flight recorder: the last N
	// traces and the N slowest are kept for GET /debug/requests.
	// Default 64.
	FlightRecorderSize int
	// DisableUsage turns off cost-and-usage accounting: no per-device
	// ledgers, no GET /v1/library/usage or /debug/costs routes, no
	// accqoc_usage_* metric families. Usage is independent of
	// DisableObservability (the endpoints work without /metrics); it is
	// policy-free either way — responses and trained libraries are
	// bit-identical with it on or off.
	DisableUsage bool
	// UsageHistorySize bounds the per-device request-history ring the
	// co-occurrence miner reads. Default 256.
	UsageHistorySize int
	// CachePolicy selects the library eviction policy for every
	// namespace store: "lru" (or empty — the default, byte-identical to
	// the historical behavior) or "cost", which evicts the lowest
	// iterations×hits score as measured by the device's usage ledger.
	// "cost" requires usage accounting (DisableUsage must be false).
	CachePolicy string
	// EnablePrefetch starts the idle-cycle speculative-training driver:
	// when the compile queue is empty and a worker is free, the top
	// predicted-miss keys (mined from the usage ledger's request history)
	// are re-trained through the ordinary store singleflight at strictly
	// lower priority than request traffic. Requires usage accounting; does
	// nothing useful without the seed index (training targets are learned
	// from it).
	EnablePrefetch bool
	// PrefetchInterval is the prefetcher's idle-cycle period. Default 50ms.
	PrefetchInterval time.Duration
	// PrefetchDepth is how many ranked predictions the prefetcher examines
	// per device per cycle. Default 4.
	PrefetchDepth int
	// Logger receives the server's structured events (boot-snapshot load,
	// calibration epochs, request failures), each stamped with the
	// request ID when one is in scope. Default slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Store == nil {
		c.Store = libstore.New(c.StoreOptions)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxGates <= 0 {
		c.MaxGates = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.FlightRecorderSize <= 0 {
		c.FlightRecorderSize = 64
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// CompileRequest is the POST /v1/compile body. Exactly one of QASM or
// Workload must be set.
type CompileRequest struct {
	// QASM is OpenQASM 2.0 source.
	QASM string `json:"qasm,omitempty"`
	// Workload is a generator spec: qft:N, named:NAME,
	// random:QUBITS:GATES:SEED (see workload.FromSpec).
	Workload string `json:"workload,omitempty"`
	// Device selects a registered device profile; empty routes to the
	// default device (today's single-device wire format).
	Device string `json:"device,omitempty"`
}

// CompileResponse reports one request's accelerated compilation. The
// type lives in the training tier (it is the pipeline's output); the
// alias preserves this package's wire surface across the tier split.
type CompileResponse = compilesvc.CompileResponse

// StatsResponse is the GET /v1/library/stats body. Library and SeedIndex
// describe the default device's current epoch (the pre-registry wire
// format); per-device views live under GET /v1/devices.
type StatsResponse struct {
	Library libstore.Stats `json:"library"`
	// SeedIndex reports the warm-start index; nil when disabled.
	SeedIndex *seedindex.Stats `json:"seed_index,omitempty"`
	// EvictPolicy reports the default device's cost-aware eviction policy
	// counters; absent under the default LRU policy.
	EvictPolicy *libstore.PolicyStats `json:"evict_policy,omitempty"`
	Server      ServerStats           `json:"server"`
}

// ServerStats carries request-level counters plus the training tier's
// live queue/in-flight readings (reported through the CompileService
// interface — the routing tier holds no pipeline state of its own).
type ServerStats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	Failures      int64   `json:"failures"`
	Rejected      int64   `json:"rejected"` // queue-full 503s (sync)
	// RejectedAsync counts async submissions refused with 503 (job store
	// at capacity, or shutdown).
	RejectedAsync      int64   `json:"rejected_async"`
	TotalCompileMillis float64 `json:"total_compile_millis"`
	// WarmSeeded totals trainings (across all requests) that started
	// from a similarity-admitted seed.
	WarmSeeded int64 `json:"warm_seeded"`
	Workers    int   `json:"workers"`
	QueueDepth int   `json:"queue_depth"`
	// QueueLen/InFlight are the training tier's live readings: tasks
	// waiting in the compile queue and tasks executing on workers.
	QueueLen int `json:"queue_len"`
	InFlight int `json:"in_flight"`
	// Jobs censuses the async job store by state; absent when the async
	// job API is disabled.
	Jobs *jobs.Counts `json:"jobs,omitempty"`
	// Prefetch aggregates the speculative-training driver's counters
	// across devices; absent unless prefetch is enabled.
	Prefetch *compilesvc.PrefetchStats `json:"prefetch,omitempty"`
}

// Server is the HTTP routing tier.
type Server struct {
	cfg Config
	// registry maps device names to their current calibration-epoch
	// namespaces (compiler + store + seed index per epoch).
	registry *devreg.Registry
	mux      *http.ServeMux

	// svc is the training tier: the only way this package reaches the
	// compile pipeline.
	svc compilesvc.CompileService
	// prefetcher is the idle-cycle speculative-training driver; nil unless
	// Config.EnablePrefetch.
	prefetcher *compilesvc.Prefetcher
	// jobStore backs the async job API; nil under DisableAsyncJobs.
	jobStore *jobs.Store

	// rollWG tracks background goroutines outside the worker pool: the
	// boot-snapshot load and calibration-roll drivers. Close waits for
	// them after the training tier drains (a roll driver blocked on a
	// Recompile is answered by the service's shutdown sweep).
	rollWG sync.WaitGroup
	start  time.Time

	requests, failures, rejected atomic.Int64
	rejectedAsync                atomic.Int64
	compileNs                    atomic.Int64

	// obs is the observability bundle (metrics registry, flight recorder,
	// pipeline hooks); nil under Config.DisableObservability, and every
	// recording site nil-checks it.
	obs    *obsState
	logger *slog.Logger

	boot bootState

	// closed gates calibrations and marks the shutdown path; request
	// admission during shutdown is the training tier's job (ErrClosed).
	closed atomic.Bool
}

// New builds a server, its training-tier pool, and (unless disabled) its
// async job store.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	// The observability hooks must be planted in the option template
	// BEFORE the registry copies it into namespaces: every epoch's
	// compiler (and every future epoch's, opened by a calibration)
	// inherits them from cfg.Compile.
	var ob *obsState
	regCfg := devreg.Config{
		Base:             cfg.Compile,
		StoreOptions:     cfg.StoreOptions,
		DisableSeedIndex: cfg.DisableSeedIndex,
		DisableUsage:     cfg.DisableUsage,
		Usage:            usage.Options{HistorySize: cfg.UsageHistorySize},
		CachePolicy:      cfg.CachePolicy,
		EnablePrefetch:   cfg.EnablePrefetch,
	}
	if !cfg.DisableObservability {
		ob = newObsState(cfg.FlightRecorderSize)
		regCfg.Base.Precompile.Grape.IterationHook = ob.grapeIterHook
		regCfg.Base.Precompile.Observer = ob.trainingObserver
		regCfg.SeedObserver = ob.seedObserver
	}
	reg, err := devreg.New(regCfg, devreg.Profile{
		Name:   cfg.DeviceName,
		Device: cfg.Compile.Device,
		Ham:    cfg.Compile.Precompile.Ham,
	}, cfg.Store)
	if err != nil {
		// Reachable through an impossible default profile or an invalid
		// policy combination (e.g. CachePolicy "cost" with usage disabled —
		// the command validates its flags first); surface loudly rather
		// than serving a half-built registry.
		panic(err)
	}
	pool := compilesvc.New(compilesvc.Config{
		Workers:     cfg.Workers,
		QueueDepth:  cfg.QueueDepth,
		BatchWindow: cfg.AsyncBatchWindow,
	})
	s := &Server{
		cfg:      cfg,
		registry: reg,
		mux:      http.NewServeMux(),
		svc:      pool,
		start:    time.Now(),
		obs:      ob,
		logger:   cfg.Logger,
	}
	if cfg.EnablePrefetch {
		s.prefetcher = compilesvc.NewPrefetcher(pool, reg, compilesvc.PrefetchOptions{
			Interval: cfg.PrefetchInterval,
			Depth:    cfg.PrefetchDepth,
		})
	}
	if !cfg.DisableAsyncJobs {
		s.jobStore = jobs.NewStore(cfg.JobCap, cfg.JobTTL)
	}
	for _, p := range cfg.Devices {
		if rerr := reg.Register(p); rerr != nil {
			panic(rerr)
		}
	}
	s.mux.HandleFunc("POST /v1/compile", s.instrument("/v1/compile", true, s.handleCompile))
	s.mux.HandleFunc("POST /v1/circuits/compile", s.instrument("/v1/circuits/compile", true, s.handleCircuits))
	s.mux.HandleFunc("GET /v1/library/stats", s.instrument("/v1/library/stats", false, s.handleStats))
	s.mux.HandleFunc("GET /v1/devices", s.instrument("/v1/devices", false, s.handleDevices))
	s.mux.HandleFunc("POST /v1/devices/{name}/calibrate", s.instrument("/v1/devices/calibrate", false, s.handleCalibrate))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", false, s.handleHealthz))
	if s.jobStore != nil {
		s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs", false, s.handleJobGet))
		s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("/v1/jobs", false, s.handleJobDelete))
	}
	if !cfg.DisableUsage {
		s.mux.HandleFunc("GET /v1/library/usage", s.instrument("/v1/library/usage", false, s.handleUsage))
		s.mux.HandleFunc("GET /debug/costs", s.handleDebugCosts)
	}
	if ob != nil {
		s.registerCollectors()
		obs.RegisterRuntimeMetrics(ob.reg)
		if !cfg.DisableUsage {
			s.registerUsageCollectors()
		}
		s.registerPolicyCollectors()
		s.mux.Handle("GET /metrics", ob.reg.Handler())
		s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	}
	s.startBootLoad()
	return s
}

// Registry exposes the device registry (admin surfaces, tests).
func (s *Server) Registry() *devreg.Registry { return s.registry }

// Service exposes the training tier (tests, future admin surfaces).
func (s *Server) Service() compilesvc.CompileService { return s.svc }

// Prefetcher exposes the speculative-training driver (tests and replay
// benchmarks drive its cycle deterministically); nil unless enabled.
func (s *Server) Prefetcher() *compilesvc.Prefetcher { return s.prefetcher }

// Store exposes the default device's current-epoch pulse store.
func (s *Server) Store() *libstore.Store { return s.defaultNS().Store }

// defaultNS returns the default device's current namespace without a
// reference (inspection only).
func (s *Server) defaultNS() *devreg.Namespace {
	ns, err := s.registry.Current("")
	if err != nil {
		panic(err) // the default device always exists
	}
	return ns
}

// Handler returns the HTTP handler (for http.Server or httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the stack down back to front: the training tier drains its
// queue (answering stragglers and unflushed async batches with
// ErrClosed, which fails their jobs), roll drivers observe the closed
// service and exit, and finally any job still queued in the store —
// there should be none — is marked failed rather than stranded.
func (s *Server) Close() {
	s.closed.Store(true)
	// The prefetcher goes first: its loop feeds the pool, and a
	// speculation enqueued after the pool's sweep would hang the driver.
	if s.prefetcher != nil {
		s.prefetcher.Close()
	}
	s.svc.Close()
	// Roll drivers observe ErrClosed (or their answered item) and exit;
	// the boot loader finishes on its own.
	s.rollWG.Wait()
	if s.jobStore != nil {
		s.jobStore.FailQueued(compilesvc.ErrClosed.Error())
	}
}

// dispatch is the shared request lifecycle of the synchronous compile
// endpoints: ingest the program, route the device field to its
// current-epoch namespace, run one request through the training tier,
// and apply the failure/rejection accounting. A nil return means an
// error response has already been written. r carries the request trace
// and ID planted by the middleware (absent with observability off —
// every obs call below is nil-safe).
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, req CompileRequest, circuit, waveforms bool) *compilesvc.Result {
	tr := obs.TraceFrom(r.Context())
	sp := tr.StartSpan("parse")
	prog, err := s.ingest(req)
	if err != nil {
		s.failures.Add(1)
		s.logRequestError(r, "ingest", err)
		writeError(w, http.StatusBadRequest, err)
		return nil
	}
	sp.End()
	ns, err := s.registry.Acquire(req.Device)
	if err != nil {
		s.failures.Add(1)
		s.logRequestError(r, "route", err)
		writeError(w, http.StatusBadRequest, err)
		return nil
	}
	// The reference keeps this namespace (and its retiring epoch) alive
	// until the response is assembled, even if a calibration lands
	// mid-request.
	defer ns.Release()
	tr.SetMeta(ns.DeviceName, ns.Epoch, prog.NumQubits, prog.GateCount())

	begin := time.Now()
	res, err := s.svc.Do(&compilesvc.Request{
		Prog: prog, NS: ns, Circuit: circuit, Waveforms: waveforms, Trace: tr,
	})
	if err != nil {
		if errors.Is(err, compilesvc.ErrQueueFull) || errors.Is(err, compilesvc.ErrClosed) {
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
			return nil
		}
		// Pipeline failure: the request consumed a worker either way.
		s.observeCompile(ns.DeviceName, time.Since(begin))
		s.failures.Add(1)
		s.logRequestError(r, "compile", err)
		writeError(w, http.StatusInternalServerError, err)
		return nil
	}
	s.observeCompile(ns.DeviceName, time.Since(begin))
	return res
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req CompileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.failures.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	if wantsAsync(r) {
		s.dispatchAsync(w, r, req, false, false)
		return
	}
	res := s.dispatch(w, r, req, false, false)
	if res == nil {
		return
	}
	// Echo the explicit device routing; an empty request field keeps the
	// single-device wire format byte for byte.
	res.Resp.Device = req.Device
	s.compileNs.Add(int64(res.Resp.CompileMillis * float64(time.Millisecond)))
	writeJSON(w, http.StatusOK, res.Resp)
}

// logRequestError files one request failure with its request ID, so log
// lines join up with the flight recorder's traces.
func (s *Server) logRequestError(r *http.Request, stage string, err error) {
	s.logger.Debug("request failed",
		"component", "server",
		"stage", stage,
		"request_id", obs.RequestIDFrom(r.Context()),
		"error", err.Error())
}

// ingest turns a request body into a circuit.
func (s *Server) ingest(req CompileRequest) (*circuit.Circuit, error) {
	switch {
	case req.QASM != "" && req.Workload != "":
		return nil, errors.New("set exactly one of qasm, workload")
	case req.QASM != "":
		return qasm.ParseBudget(req.QASM, s.cfg.MaxGates)
	case req.Workload != "":
		// The budget is enforced inside the generator, before anything of
		// consequence is built.
		p, err := workload.FromSpecBudget(req.Workload, s.cfg.MaxGates)
		if err != nil {
			return nil, err
		}
		return p.Circuit, nil
	default:
		return nil, errors.New("set exactly one of qasm, workload")
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ns := s.defaultNS()
	out := StatsResponse{
		Library: ns.Store.Stats(),
		Server: ServerStats{
			UptimeSeconds:      time.Since(s.start).Seconds(),
			Requests:           s.requests.Load(),
			Failures:           s.failures.Load(),
			Rejected:           s.rejected.Load(),
			RejectedAsync:      s.rejectedAsync.Load(),
			TotalCompileMillis: float64(s.compileNs.Load()) / float64(time.Millisecond),
			WarmSeeded:         s.svc.WarmSeeded(),
			Workers:            s.svc.Workers(),
			QueueDepth:         s.svc.QueueCap(),
			QueueLen:           s.svc.QueueLen(),
			InFlight:           s.svc.InFlight(),
		},
	}
	if s.jobStore != nil {
		c := s.jobStore.Counts()
		out.Server.Jobs = &c
	}
	if ns.Seeds != nil {
		st := ns.Seeds.Stats()
		out.SeedIndex = &st
	}
	if pol, _ := s.registry.EvictionPolicy(""); pol != nil {
		st := pol.Stats()
		out.EvictPolicy = &st
	}
	if s.prefetcher != nil {
		st := s.prefetcher.Stats()
		out.Server.Prefetch = &st
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
