// Package server exposes the AccQOC compilation pipeline as an HTTP JSON
// service — the long-lived deployment shape the paper's pre-compiled
// library implies (§IV/§V): many programs, one shared pulse library per
// (device, calibration epoch). The server accepts OpenQASM 2.0 or a
// workload spec on POST /v1/compile, routes the request's `device` field
// through the device registry (internal/devreg) to the device's
// current-epoch namespace, runs the Prepare→coverage→train→latency
// pipeline on a bounded worker pool, and serves every trained pulse from
// that namespace's sharded libstore.Store so warm requests cost library
// lookups instead of GRAPE iterations. Concurrent requests that need the
// same uncovered gate group trigger exactly one training (the store's
// singleflight).
//
// Cache misses do not train cold: the compile path plans each request —
// covered groups resolve as hits, the uncovered remainder is MST-ordered
// over its similarity graph (§V-C) and trained along tree edges, with
// identity-rooted groups anchored at their nearest covered entry from the
// warm-start seed index (internal/seedindex, kept coherent with the store
// through its mutation hook). Earlier-trained groups of a request seed
// later ones; warm_seeded / seed_distance counters surface the effect in
// the compile response and /v1/library/stats.
//
// A calibration event (POST /v1/devices/{name}/calibrate) opens a new
// epoch and starts a background recompilation roll on the same worker
// pool: the old epoch's covered groups are re-trained
// most-requested-first, each seeded by its own old-epoch pulse, while
// misses during the roll fall through to the new epoch's cold/MST path
// (cross-epoch seeded through the index's parent link) — serving never
// blocks on a recalibration.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"accqoc"
	"accqoc/internal/circuit"
	"accqoc/internal/cmat"
	"accqoc/internal/crosstalk"
	"accqoc/internal/devreg"
	"accqoc/internal/gatepulse"
	"accqoc/internal/grouping"
	"accqoc/internal/latency"
	"accqoc/internal/libstore"
	"accqoc/internal/obs"
	"accqoc/internal/precompile"
	"accqoc/internal/qasm"
	"accqoc/internal/seedindex"
	"accqoc/internal/simgraph"
	"accqoc/internal/similarity"
	"accqoc/internal/topology"
	"accqoc/internal/workload"
)

// Config assembles a Server. The zero value serves the paper's default
// pipeline (Melbourne, map2b4l) on GOMAXPROCS workers with a fresh store.
type Config struct {
	// Compile configures the pipeline (device, policy, GRAPE budgets) for
	// the default device; it is also the option template for the extra
	// Devices (their topology and Hamiltonian override it per namespace).
	Compile accqoc.Options
	// Store is the default device's epoch-0 pulse library; nil creates an
	// unbounded one. Extra devices and later epochs get fresh stores with
	// StoreOptions.
	Store *libstore.Store
	// StoreOptions configure the stores created for extra devices and
	// fresh calibration epochs (shards, capacity).
	StoreOptions libstore.Options
	// DeviceName is the registry name of the default device (the one an
	// absent `device` request field routes to). Default "default".
	DeviceName string
	// Devices are additional device profiles served next to the default,
	// each with its own namespaced library and epochs.
	Devices []devreg.Profile
	// BootSnapshot, when set, is loaded asynchronously into the default
	// device's store after the server starts; /healthz reports 503 until
	// the load completes (the readiness gate). The snapshot's
	// device+calibration fingerprint must match the default profile
	// unless BootSnapshotForce is set.
	BootSnapshot      string
	BootSnapshotForce bool
	// Workers bounds concurrent compilations. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds pending requests beyond the running ones; a full
	// queue answers 503. Default 64.
	QueueDepth int
	// MaxGates rejects programs above this gate count (400). Default 4096.
	MaxGates int
	// MaxBodyBytes bounds request bodies. Default 4 MiB.
	MaxBodyBytes int64
	// DisableSeedIndex turns off the warm-start seed index and the
	// plan/execute miss path: cache misses then train cold in
	// deduplication order, reproducing the pre-index serving behavior
	// byte for byte (useful for A/B comparison and as the determinism
	// baseline). It also disables cross-epoch recompilation plans (the
	// index is where training targets are cached).
	DisableSeedIndex bool
	// DisableObservability turns off the whole telemetry layer: no
	// /metrics or /debug/requests routes, no request IDs or X-Request-Id
	// header, no pipeline hooks — responses are byte-identical to the
	// pre-observability server.
	DisableObservability bool
	// FlightRecorderSize bounds the request flight recorder: the last N
	// traces and the N slowest are kept for GET /debug/requests.
	// Default 64.
	FlightRecorderSize int
	// Logger receives the server's structured events (boot-snapshot load,
	// calibration epochs, request failures), each stamped with the
	// request ID when one is in scope. Default slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Store == nil {
		c.Store = libstore.New(c.StoreOptions)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxGates <= 0 {
		c.MaxGates = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.FlightRecorderSize <= 0 {
		c.FlightRecorderSize = 64
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// CompileRequest is the POST /v1/compile body. Exactly one of QASM or
// Workload must be set.
type CompileRequest struct {
	// QASM is OpenQASM 2.0 source.
	QASM string `json:"qasm,omitempty"`
	// Workload is a generator spec: qft:N, named:NAME,
	// random:QUBITS:GATES:SEED (see workload.FromSpec).
	Workload string `json:"workload,omitempty"`
	// Device selects a registered device profile; empty routes to the
	// default device (today's single-device wire format).
	Device string `json:"device,omitempty"`
}

// CompileResponse reports one request's accelerated compilation.
type CompileResponse struct {
	Qubits int `json:"qubits"`
	Gates  int `json:"gates"`

	// Device echoes the request's device routing (empty for the default
	// wire format); Epoch is the calibration epoch that served the
	// request (0, the boot epoch, is omitted).
	Device string `json:"device,omitempty"`
	Epoch  int    `json:"epoch,omitempty"`

	// Coverage of group occurrences by the library at request start
	// (§V-A). A warm request has coverage 1.
	TotalGroups     int     `json:"total_groups"`
	CoveredGroups   int     `json:"covered_groups"`
	CoverageRate    float64 `json:"coverage_rate"`
	UncoveredUnique int     `json:"uncovered_unique"`
	FailedGroups    int     `json:"failed_groups"`
	WarmServed      bool    `json:"warm_served"`

	// TrainingIterations sums GRAPE iterations across the trainings this
	// request executed itself (joined in-flight trainings excluded) —
	// the compile-cost metric of §VI-G.
	TrainingIterations int `json:"training_iterations"`
	// WarmSeeded counts this request's trainings that warm-started from
	// a seed (an MST neighbor trained earlier in the request, or a
	// covered entry from the seed index) instead of a random waveform.
	WarmSeeded int `json:"warm_seeded"`
	// SeedDistance is the mean similarity distance of the admitted
	// seeds; 0 when WarmSeeded is 0.
	SeedDistance float64 `json:"seed_distance"`

	QOCLatencyNs      float64 `json:"qoc_latency_ns"`
	GateLatencyNs     float64 `json:"gate_latency_ns"`
	LatencyReduction  float64 `json:"latency_reduction"`
	EstimatedFidelity float64 `json:"estimated_fidelity"`

	// CompileMillis is the server-side wall time for this request.
	CompileMillis float64 `json:"compile_millis"`

	// seedDistanceSum accumulates admitted seed distances during
	// resolution; folded into SeedDistance before the response is sent.
	seedDistanceSum float64
}

// StatsResponse is the GET /v1/library/stats body. Library and SeedIndex
// describe the default device's current epoch (the pre-registry wire
// format); per-device views live under GET /v1/devices.
type StatsResponse struct {
	Library libstore.Stats `json:"library"`
	// SeedIndex reports the warm-start index; nil when disabled.
	SeedIndex *seedindex.Stats `json:"seed_index,omitempty"`
	Server    ServerStats      `json:"server"`
}

// ServerStats carries request-level counters.
type ServerStats struct {
	UptimeSeconds      float64 `json:"uptime_seconds"`
	Requests           int64   `json:"requests"`
	Failures           int64   `json:"failures"`
	Rejected           int64   `json:"rejected"` // queue-full 503s
	TotalCompileMillis float64 `json:"total_compile_millis"`
	// WarmSeeded totals trainings (across all requests) that started
	// from a similarity-admitted seed.
	WarmSeeded int64 `json:"warm_seeded"`
	Workers    int   `json:"workers"`
	QueueDepth int   `json:"queue_depth"`
}

// job is one unit of worker-pool work: a compile request against a
// namespace, a whole-circuit compile (scheduled pulse program), or one
// recompilation item of a calibration roll.
type job struct {
	prog *circuit.Circuit
	ns   *devreg.Namespace
	// circuit marks a whole-circuit job (POST /v1/circuits/compile): the
	// worker answers with a scheduled pulse program instead of the plain
	// compile summary; waveforms additionally inlines the referenced
	// waveforms in the response.
	circuit   bool
	waveforms bool
	// recomp, when non-nil, marks a background cross-epoch recompilation
	// item (roll carries the progress accounting).
	recomp *devreg.RecompItem
	roll   *devreg.Roll
	// trace is the request's pipeline trace (nil when observability is
	// off or the endpoint is not flight-recorded); queueSpan times the
	// handler→worker handoff and is ended at worker pickup.
	trace     *obs.Trace
	queueSpan *obs.Span
	done      chan jobResult
}

type jobResult struct {
	resp *CompileResponse
	circ *CircuitResponse
	err  error
}

// Server is the HTTP compilation service.
type Server struct {
	cfg Config
	// registry maps device names to their current calibration-epoch
	// namespaces (compiler + store + seed index per epoch).
	registry *devreg.Registry
	mux      *http.ServeMux

	jobs chan *job
	quit chan struct{}
	wg   sync.WaitGroup
	// rollWG tracks background goroutines outside the worker pool: the
	// boot-snapshot load and calibration-roll drivers. Close waits for
	// them after the final queue sweep (a roll driver may be blocked on a
	// job the sweep answers).
	rollWG sync.WaitGroup
	start  time.Time

	requests, failures, rejected atomic.Int64
	compileNs, warmSeeded        atomic.Int64

	// obs is the observability bundle (metrics registry, flight recorder,
	// pipeline hooks); nil under Config.DisableObservability, and every
	// recording site nil-checks it.
	obs    *obsState
	logger *slog.Logger

	boot bootState

	// closeMu orders handler enqueues against Close: an enqueue holds the
	// read lock, so once Close holds the write lock and sets closed, every
	// queued job predates the quit signal and the worker drain loop (or
	// Close's final sweep) is guaranteed to answer it.
	closeMu   sync.RWMutex
	closed    bool
	closeOnce sync.Once
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	// The observability hooks must be planted in the option template
	// BEFORE the registry copies it into namespaces: every epoch's
	// compiler (and every future epoch's, opened by a calibration)
	// inherits them from cfg.Compile.
	var ob *obsState
	regCfg := devreg.Config{
		Base:             cfg.Compile,
		StoreOptions:     cfg.StoreOptions,
		DisableSeedIndex: cfg.DisableSeedIndex,
	}
	if !cfg.DisableObservability {
		ob = newObsState(cfg.FlightRecorderSize)
		regCfg.Base.Precompile.Grape.IterationHook = ob.grapeIterHook
		regCfg.Base.Precompile.Observer = ob.trainingObserver
		regCfg.SeedObserver = ob.seedObserver
	}
	reg, err := devreg.New(regCfg, devreg.Profile{
		Name:   cfg.DeviceName,
		Device: cfg.Compile.Device,
		Ham:    cfg.Compile.Precompile.Ham,
	}, cfg.Store)
	if err != nil {
		// Only reachable through an impossible default profile; surface
		// loudly rather than serving a half-built registry.
		panic(err)
	}
	s := &Server{
		cfg:      cfg,
		registry: reg,
		mux:      http.NewServeMux(),
		jobs:     make(chan *job, cfg.QueueDepth),
		quit:     make(chan struct{}),
		start:    time.Now(),
		obs:      ob,
		logger:   cfg.Logger,
	}
	for _, p := range cfg.Devices {
		if rerr := reg.Register(p); rerr != nil {
			panic(rerr)
		}
	}
	s.mux.HandleFunc("POST /v1/compile", s.instrument("/v1/compile", true, s.handleCompile))
	s.mux.HandleFunc("POST /v1/circuits/compile", s.instrument("/v1/circuits/compile", true, s.handleCircuits))
	s.mux.HandleFunc("GET /v1/library/stats", s.instrument("/v1/library/stats", false, s.handleStats))
	s.mux.HandleFunc("GET /v1/devices", s.instrument("/v1/devices", false, s.handleDevices))
	s.mux.HandleFunc("POST /v1/devices/{name}/calibrate", s.instrument("/v1/devices/calibrate", false, s.handleCalibrate))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", false, s.handleHealthz))
	if ob != nil {
		s.registerCollectors()
		s.mux.Handle("GET /metrics", ob.reg.Handler())
		s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.startBootLoad()
	return s
}

// Registry exposes the device registry (admin surfaces, tests).
func (s *Server) Registry() *devreg.Registry { return s.registry }

// Store exposes the default device's current-epoch pulse store.
func (s *Server) Store() *libstore.Store { return s.defaultNS().Store }

// defaultNS returns the default device's current namespace without a
// reference (inspection only).
func (s *Server) defaultNS() *devreg.Namespace {
	ns, err := s.registry.Current("")
	if err != nil {
		panic(err) // the default device always exists
	}
	return ns
}

// Handler returns the HTTP handler (for http.Server or httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the worker pool after draining queued jobs. Requests that
// arrive during or after Close are answered 503.
func (s *Server) Close() {
	s.closeMu.Lock()
	s.closed = true
	s.closeMu.Unlock()
	s.closeOnce.Do(func() { close(s.quit) })
	s.wg.Wait()
	// Fail anything that slipped into the queue between the workers' drain
	// sweep and their exit (possible only for jobs enqueued before closed
	// was set, so this sweep is the last).
	for {
		select {
		case j := <-s.jobs:
			j.done <- jobResult{err: errors.New("server closed")}
		default:
			// Roll drivers observe closed (or their swept job) and exit;
			// the boot loader finishes on its own.
			s.rollWG.Wait()
			return
		}
	}
}

// enqueue submits a job unless the server is closed or the queue is full.
func (s *Server) enqueue(j *job) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return errors.New("server shutting down")
	}
	select {
	case s.jobs <- j:
		return nil
	default:
		return errors.New("compilation queue full")
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	run := func(j *job) {
		j.queueSpan.End()
		if j.recomp != nil {
			s.recompileOne(j.roll, j.recomp)
			j.done <- jobResult{}
			return
		}
		if j.circuit {
			circ, err := s.compileCircuit(j.prog, j.ns, j.waveforms, j.trace)
			j.done <- jobResult{circ: circ, err: err}
			return
		}
		resp, err := s.compile(j.prog, j.ns, j.trace)
		j.done <- jobResult{resp: resp, err: err}
	}
	for {
		select {
		case j := <-s.jobs:
			run(j)
		case <-s.quit:
			// Drain whatever is already queued so no handler hangs.
			for {
				select {
				case j := <-s.jobs:
					run(j)
				default:
					return
				}
			}
		}
	}
}

// trainStep is one planned cold training: a unique group, its canonical
// target unitary, and its warm-start edge from the similarity MST.
type trainStep struct {
	// cold indexes the request's cold set; trained results are recorded
	// under it so MST children can find their parent's entry.
	cold    int
	uniq    *grouping.UniqueGroup
	unitary *cmat.Matrix
	// warmFrom is the MST parent's cold index, -1 when the group is
	// rooted at the identity (then the seed index supplies the anchor).
	warmFrom int
	// warmDist is the MST edge weight to warmFrom.
	warmDist float64
}

// planColdSteps orders a request's uncovered unique groups for training:
// per size class, a Prim MST over the similarity graph (identity-rooted,
// §V-C) fixes both the order and the warm-start edges, exactly as the
// batch pre-compilation does — but over the live miss set of one
// request. Singleton classes train directly. Classes are planned in
// ascending size for determinism.
func planColdSteps(cold []*grouping.UniqueGroup, fn similarity.Func) ([]trainStep, error) {
	if len(cold) == 0 {
		return nil, nil
	}
	us := make([]*cmat.Matrix, len(cold))
	bySize := map[int][]int{}
	for i, u := range cold {
		m, err := u.Group.Unitary()
		if err != nil {
			return nil, err
		}
		us[i] = precompile.CanonicalUnitary(m)
		bySize[u.NumQubits] = append(bySize[u.NumQubits], i)
	}
	sizes := make([]int, 0, len(bySize))
	for sz := range bySize {
		sizes = append(sizes, sz)
	}
	sort.Ints(sizes)

	steps := make([]trainStep, 0, len(cold))
	for _, sz := range sizes {
		idxs := bySize[sz]
		if len(idxs) == 1 {
			i := idxs[0]
			steps = append(steps, trainStep{cold: i, uniq: cold[i], unitary: us[i], warmFrom: -1})
			continue
		}
		classUs := make([]*cmat.Matrix, len(idxs))
		for j, i := range idxs {
			classUs[j] = us[i]
		}
		g, err := simgraph.Build(classUs, fn)
		if err != nil {
			return nil, err
		}
		mst, err := g.PrimMST(0)
		if err != nil {
			return nil, err
		}
		for _, st := range mst.CompilationSequence() {
			i := idxs[st.Group]
			warm := -1
			if st.WarmFrom >= 0 {
				warm = idxs[st.WarmFrom]
			}
			steps = append(steps, trainStep{
				cold: i, uniq: cold[i], unitary: us[i],
				warmFrom: warm, warmDist: st.Distance,
			})
		}
	}
	return steps, nil
}

// seedFor picks the warm start for one cold step: the MST parent when it
// trained earlier in this request (its pulse admitted under
// WarmThreshold, its latency always transferring as the binary-search
// hint), otherwise the nearest covered entry from the namespace's seed
// index (which, during a calibration roll, chains to the previous
// epoch's). Called only from inside the training closure, so
// planned-but-hit groups never pay for a lookup.
func seedFor(ns *devreg.Namespace, fn similarity.Func, st trainStep, trained []*precompile.Entry) (*precompile.Entry, float64) {
	if st.warmFrom >= 0 {
		if prev := trained[st.warmFrom]; prev != nil {
			seed := &precompile.Entry{NumQubits: st.uniq.NumQubits, LatencyNs: prev.LatencyNs}
			if st.warmDist <= similarity.WarmThreshold(fn, st.unitary.Rows) {
				seed.Pulse = prev.Pulse
			}
			return seed, st.warmDist
		}
	}
	if sd, ok := ns.Seeds.Nearest(st.unitary, st.uniq.NumQubits); ok {
		return &precompile.Entry{
			NumQubits: st.uniq.NumQubits,
			Pulse:     sd.Pulse,
			LatencyNs: sd.LatencyNs,
		}, sd.Distance
	}
	return nil, 0
}

// resolve fetches or trains one unique group through the namespace
// store's singleflight and updates the response counters. plan, when
// non-nil, supplies the warm-start seed, its distance, and the group's
// canonical target unitary; it is consulted only if this call actually
// executes the training (a hit or a joined in-flight training never
// evaluates it). A returned unitary pre-indexes the freshly trained entry
// under its target so the store hook's propagation is skipped (the index
// dedups on pulse identity).
func (s *Server) resolve(ns *devreg.Namespace, resp *CompileResponse, entries map[string]*precompile.Entry, u *grouping.UniqueGroup, cfg precompile.Config, plan func() (*precompile.Entry, float64, *cmat.Matrix), tr *obs.Trace) *precompile.Entry {
	var seedDist float64
	var seeded bool
	sp := tr.StartSpan("train")
	e, outcome, err := ns.Store.GetOrTrain(u.Key, func() (*precompile.Entry, error) {
		var seed *precompile.Entry
		var unitary *cmat.Matrix
		if plan != nil {
			var d float64
			seed, d, unitary = plan()
			if seed != nil && seed.Pulse != nil {
				seeded, seedDist = true, d
			}
		}
		trained, terr := precompile.TrainGroup(u, cfg, seed)
		if terr == nil && ns.Seeds != nil && unitary != nil {
			ns.Seeds.InsertWithUnitary(trained, unitary)
		}
		return trained, terr
	})
	if outcome == libstore.OutcomeHit {
		resp.CoveredGroups += u.Count
		// A hit span is never ended: warm requests would otherwise bloat
		// every trace with hundreds of no-op lookups.
	} else {
		// Trained here or joined another request's in-flight training:
		// either way this request waited on GRAPE for the group.
		resp.UncoveredUnique++
		if outcome == libstore.OutcomeTrained && err == nil {
			resp.TrainingIterations += e.Iterations
			if seeded {
				resp.WarmSeeded++
				resp.seedDistanceSum += seedDist
				s.warmSeeded.Add(1)
			}
		}
		if sp != nil {
			sp.Key = u.Key
			sp.Outcome = outcomeString(outcome)
			sp.Coalesced = outcome == libstore.OutcomeJoined
			if outcome == libstore.OutcomeTrained && err == nil {
				sp.Iterations = e.Iterations
				sp.Infidelity = e.Infidelity
				if seeded {
					sp.SeedDistance = seedDist
				} else {
					sp.SeedDistance = -1 // trained cold
				}
			}
			sp.End()
		}
	}
	if err != nil {
		// Unreachable within the bracket: price it gate-based below.
		resp.FailedGroups++
		return nil
	}
	entries[u.Key] = e
	return e
}

// compile runs the serving-side pipeline for one namespace in a
// plan/execute shape: Prepare, a stats-neutral coverage plan that
// MST-orders the request's cache misses, singleflight training along the
// tree edges with warm-start seeds, and Algorithm 3 latency assembly.
func (s *Server) compile(prog *circuit.Circuit, ns *devreg.Namespace, tr *obs.Trace) (*CompileResponse, error) {
	begin := time.Now()
	sp := tr.StartSpan("prepare")
	prep, err := ns.Comp.Prepare(prog)
	if err != nil {
		return nil, err
	}
	gr := prep.Grouping
	keys, err := precompile.Keys(gr)
	if err != nil {
		return nil, err
	}
	sp.End()

	resp := &CompileResponse{
		Qubits:      prog.NumQubits,
		Gates:       prog.GateCount(),
		Epoch:       ns.Epoch,
		TotalGroups: len(gr.Groups),
	}

	// Deduplicate occurrences against the precomputed keys, then resolve
	// every unique group: a warm key is a store hit; a cold key trains
	// exactly once across all concurrent requests (singleflight).
	uniq := grouping.DeduplicateKeyed(gr.Groups, keys)
	entries := s.resolveGroups(ns, resp, uniq, tr)

	sp = tr.StartSpan("latency")
	dev := ns.Comp.Options().Device
	overall, err := latency.OverallGroups(gr, func(i int) (float64, error) {
		if e, ok := entries[keys[i]]; ok {
			return e.LatencyNs, nil
		}
		return accqoc.GateFallbackNs(gr.Groups[i], dev.Calibration), nil
	})
	if err != nil {
		return nil, err
	}
	finalizeResponse(resp, prep.Physical, dev, overall, begin)
	sp.End()
	return resp, nil
}

// finalizeResponse fills the latency/fidelity tail shared by the
// per-group and circuit responses.
func finalizeResponse(resp *CompileResponse, phys *circuit.Circuit, dev *topology.Device, overall float64, begin time.Time) {
	resp.QOCLatencyNs = overall
	resp.GateLatencyNs = gatepulse.Overall(phys, dev.Calibration)
	if overall > 0 {
		resp.LatencyReduction = resp.GateLatencyNs / overall
	}
	resp.EstimatedFidelity = crosstalk.ProgramFidelity(phys, dev, overall)
	resp.CompileMillis = float64(time.Since(begin)) / float64(time.Millisecond)
}

// resolveGroups is the shared resolution core of the compile and circuit
// paths: every unique group of a request resolves against the namespace
// store — a warm key is a hit, a cold key trains exactly once across all
// concurrent requests (singleflight), MST-ordered with warm-start seeds
// when the seed index is on. It fills the response's coverage, training
// and seeding counters and returns the resolved entries by key.
func (s *Server) resolveGroups(ns *devreg.Namespace, resp *CompileResponse, uniq []*grouping.UniqueGroup, tr *obs.Trace) map[string]*precompile.Entry {
	entries := make(map[string]*precompile.Entry, len(uniq))
	cfg := ns.Comp.Options().Precompile
	simFn := ns.SimilarityFn()
	switch {
	case ns.Seeds == nil:
		// Index disabled: resolve in deduplication order with cold
		// random-init trainings — the pre-index serving path, preserved
		// byte for byte.
		for _, u := range uniq {
			s.resolve(ns, resp, entries, u, cfg, nil, tr)
		}
	default:
		// Plan: partition into covered and cold without touching
		// counters or LRU order, then MST-order the cold set.
		psp := tr.StartSpan("plan")
		var covered, cold []*grouping.UniqueGroup
		for _, u := range uniq {
			if ns.Store.Contains(u.Key) {
				covered = append(covered, u)
			} else {
				cold = append(cold, u)
			}
		}
		steps, perr := planColdSteps(cold, simFn)
		psp.End()
		if perr != nil {
			// Planning must never fail a request harder than the legacy
			// path would: the same defect (an unbuildable group unitary,
			// a broken similarity function) surfaces inside TrainGroup
			// on the legacy path, where the group is priced gate-based
			// and counted in failed_groups. Fall back to exactly that.
			for _, u := range uniq {
				s.resolve(ns, resp, entries, u, cfg, nil, tr)
			}
			break
		}
		// Execute: covered keys resolve as hits first, then the cold
		// set trains along the tree edges; every trained group becomes
		// a seed candidate for its MST children later in this request.
		for _, u := range covered {
			u := u
			// A hit never evaluates the closure; it exists for the rare
			// key evicted between plan and execute, which then trains as
			// an identity-rooted step (index-seeded) instead of cold.
			s.resolve(ns, resp, entries, u, cfg, func() (*precompile.Entry, float64, *cmat.Matrix) {
				m, uerr := u.Group.Unitary()
				if uerr != nil {
					return nil, 0, nil
				}
				cu := precompile.CanonicalUnitary(m)
				seed, d := seedFor(ns, simFn, trainStep{uniq: u, unitary: cu, warmFrom: -1}, nil)
				return seed, d, cu
			}, tr)
		}
		trained := make([]*precompile.Entry, len(cold))
		for _, st := range steps {
			st := st
			trained[st.cold] = s.resolve(ns, resp, entries, st.uniq, cfg,
				func() (*precompile.Entry, float64, *cmat.Matrix) {
					seed, d := seedFor(ns, simFn, st, trained)
					return seed, d, st.unitary
				}, tr)
		}
	}
	if resp.WarmSeeded > 0 {
		resp.SeedDistance = resp.seedDistanceSum / float64(resp.WarmSeeded)
	}
	if resp.TotalGroups > 0 {
		resp.CoverageRate = float64(resp.CoveredGroups) / float64(resp.TotalGroups)
	} else {
		resp.CoverageRate = 1
	}
	resp.WarmServed = resp.UncoveredUnique == 0
	return entries
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req CompileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.failures.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	res := s.dispatch(w, r, req, false, false)
	if res == nil {
		return
	}
	// Echo the explicit device routing; an empty request field keeps the
	// single-device wire format byte for byte.
	res.resp.Device = req.Device
	s.compileNs.Add(int64(res.resp.CompileMillis * float64(time.Millisecond)))
	writeJSON(w, http.StatusOK, res.resp)
}

// dispatch is the shared request lifecycle of the compile endpoints:
// ingest the program, route the device field to its current-epoch
// namespace, run one job through the worker pool, and apply the
// failure/rejection accounting. A nil return means an error response has
// already been written. r carries the request trace and ID planted by
// the middleware (absent with observability off — every obs call below
// is nil-safe).
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, req CompileRequest, circuit, waveforms bool) *jobResult {
	tr := obs.TraceFrom(r.Context())
	sp := tr.StartSpan("parse")
	prog, err := s.ingest(req)
	if err != nil {
		s.failures.Add(1)
		s.logRequestError(r, "ingest", err)
		writeError(w, http.StatusBadRequest, err)
		return nil
	}
	sp.End()
	ns, err := s.registry.Acquire(req.Device)
	if err != nil {
		s.failures.Add(1)
		s.logRequestError(r, "route", err)
		writeError(w, http.StatusBadRequest, err)
		return nil
	}
	// The reference keeps this namespace (and its retiring epoch) alive
	// until the response is assembled, even if a calibration lands
	// mid-request.
	defer ns.Release()
	tr.SetMeta(ns.DeviceName, ns.Epoch, prog.NumQubits, prog.GateCount())

	begin := time.Now()
	j := &job{prog: prog, ns: ns, circuit: circuit, waveforms: waveforms, trace: tr, queueSpan: tr.StartSpan("queue"), done: make(chan jobResult, 1)}
	if err := s.enqueue(j); err != nil {
		s.rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, err)
		return nil
	}
	// Wait for the worker even if the client goes away: the training is
	// already paid for and warms the shared library.
	res := <-j.done
	s.observeCompile(ns.DeviceName, time.Since(begin))
	if res.err != nil {
		s.failures.Add(1)
		s.logRequestError(r, "compile", res.err)
		writeError(w, http.StatusInternalServerError, res.err)
		return nil
	}
	return &res
}

// logRequestError files one request failure with its request ID, so log
// lines join up with the flight recorder's traces.
func (s *Server) logRequestError(r *http.Request, stage string, err error) {
	s.logger.Debug("request failed",
		"component", "server",
		"stage", stage,
		"request_id", obs.RequestIDFrom(r.Context()),
		"error", err.Error())
}

// ingest turns a request body into a circuit.
func (s *Server) ingest(req CompileRequest) (*circuit.Circuit, error) {
	switch {
	case req.QASM != "" && req.Workload != "":
		return nil, errors.New("set exactly one of qasm, workload")
	case req.QASM != "":
		return qasm.ParseBudget(req.QASM, s.cfg.MaxGates)
	case req.Workload != "":
		// The budget is enforced inside the generator, before anything of
		// consequence is built.
		p, err := workload.FromSpecBudget(req.Workload, s.cfg.MaxGates)
		if err != nil {
			return nil, err
		}
		return p.Circuit, nil
	default:
		return nil, errors.New("set exactly one of qasm, workload")
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ns := s.defaultNS()
	out := StatsResponse{
		Library: ns.Store.Stats(),
		Server: ServerStats{
			UptimeSeconds:      time.Since(s.start).Seconds(),
			Requests:           s.requests.Load(),
			Failures:           s.failures.Load(),
			Rejected:           s.rejected.Load(),
			TotalCompileMillis: float64(s.compileNs.Load()) / float64(time.Millisecond),
			WarmSeeded:         s.warmSeeded.Load(),
			Workers:            s.cfg.Workers,
			QueueDepth:         s.cfg.QueueDepth,
		},
	}
	if ns.Seeds != nil {
		st := ns.Seeds.Stats()
		out.SeedIndex = &st
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
