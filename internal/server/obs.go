package server

// This file is the server's observability surface: the obsState bundle
// wires the internal/obs registry into every layer of the stack —
// per-endpoint/per-device latency histograms and request counters
// (middleware), GRAPE convergence histograms (grape/precompile hooks),
// the seed-distance histogram (seedindex observer via devreg), per-device
// store/roll/epoch collectors read from the device registry at scrape
// time — plus the request flight recorder behind GET /debug/requests.
//
// Everything here is skipped wholesale under Config.DisableObservability:
// New leaves s.obs nil, instrument() returns handlers unwrapped, no hook
// is installed anywhere, and the /metrics and /debug/requests routes are
// never registered, so the disabled server is bit-identical to the
// pre-observability one.

import (
	"net/http"
	"strconv"
	"time"

	"accqoc/internal/devreg"
	"accqoc/internal/obs"
)

// obsState bundles the server's metric instruments and flight recorder.
type obsState struct {
	reg      *obs.Registry
	recorder *obs.Recorder

	httpRequests  *obs.CounterVec // endpoint, code
	httpLatency   *obs.HistogramVec
	inFlight      *obs.Gauge
	deviceLatency *obs.HistogramVec // compile latency by device

	trainIters      *obs.HistogramVec // qubits
	trainInfidelity *obs.HistogramVec // qubits
	optIters        *obs.Counter
	stepNorm        *obs.Histogram
	seedDistance    *obs.Histogram
	seedLookups     *obs.CounterVec // admitted
}

func newObsState(recorderSize int) *obsState {
	r := obs.NewRegistry()
	ob := &obsState{
		reg:      r,
		recorder: obs.NewRecorder(recorderSize),

		httpRequests: r.CounterVec("accqoc_http_requests_total",
			"HTTP requests served, by endpoint and status code.",
			"endpoint", "code"),
		httpLatency: r.HistogramVec("accqoc_http_request_duration_seconds",
			"HTTP request latency by endpoint.",
			obs.DurationBuckets(), "endpoint"),
		inFlight: r.Gauge("accqoc_http_in_flight",
			"Requests currently being served."),
		deviceLatency: r.HistogramVec("accqoc_compile_duration_seconds",
			"Compile request latency by resolved device.",
			obs.DurationBuckets(), "device"),

		trainIters: r.HistogramVec("accqoc_grape_training_iterations",
			"Summed optimizer iterations per completed GRAPE training, by group size.",
			obs.ExponentialBuckets(1, 2, 14), "qubits"),
		trainInfidelity: r.HistogramVec("accqoc_grape_training_infidelity",
			"Final infidelity (1-F) per completed GRAPE training, by group size.",
			obs.ExponentialBuckets(1e-8, 10, 9), "qubits"),
		optIters: r.Counter("accqoc_grape_optimizer_iterations_total",
			"Accepted optimizer iterations across all GRAPE runs."),
		stepNorm: r.Histogram("accqoc_grape_step_norm",
			"Optimizer step norm per accepted iteration.",
			obs.ExponentialBuckets(1e-6, 10, 10)),
		seedDistance: r.Histogram("accqoc_seed_distance",
			"Similarity distance of nearest-seed candidates (admitted or not).",
			obs.ExponentialBuckets(1e-4, 4, 12)),
		seedLookups: r.CounterVec("accqoc_seed_lookups_total",
			"Nearest-seed lookups that found a candidate, by admission verdict.",
			"admitted"),
	}
	return ob
}

// grapeIterHook feeds the per-iteration convergence metrics; it runs once
// per accepted optimizer iteration on the training path and must stay
// allocation-free (atomic adds on preallocated cells only).
func (ob *obsState) grapeIterHook(infidelity, stepNorm float64) {
	ob.optIters.Inc()
	ob.stepNorm.Observe(stepNorm)
}

// qubitsLabel avoids strconv allocations for the overwhelmingly common
// group sizes.
func qubitsLabel(n int) string {
	switch n {
	case 1:
		return "1"
	case 2:
		return "2"
	case 3:
		// Dim-8 groups from the opt-in 3Q policies hit the training path
		// just as hot as 1Q/2Q once enabled.
		return "3"
	default:
		return strconv.Itoa(n)
	}
}

// trainingObserver records one completed GRAPE training (serving path,
// circuit path, or calibration roll alike).
func (ob *obsState) trainingObserver(numQubits, iterations int, infidelity float64, seeded bool) {
	q := qubitsLabel(numQubits)
	ob.trainIters.With(q).Observe(float64(iterations))
	ob.trainInfidelity.With(q).Observe(infidelity)
}

// seedObserver records every nearest-seed lookup that found a candidate.
func (ob *obsState) seedObserver(distance float64, admitted bool) {
	ob.seedDistance.Observe(distance)
	if admitted {
		ob.seedLookups.With("true").Inc()
	} else {
		ob.seedLookups.With("false").Inc()
	}
}

// registerCollectors installs the scrape-time families that read counters
// owned elsewhere: per-device store stats, epochs, and roll progress from
// the device registry. Called after the Server exists (the closures need
// s); an idle server pays for these only when /metrics is scraped.
func (s *Server) registerCollectors() {
	r := s.obs.reg
	dev := []string{"device"}
	counter := func(name, help string, get func(st devreg.DeviceStatus) float64) {
		r.CollectCounters(name, help, dev, func(emit obs.Emit) {
			for _, d := range s.registry.Status() {
				emit(get(d), d.Name)
			}
		})
	}
	gauge := func(name, help string, get func(st devreg.DeviceStatus) float64) {
		r.CollectGauges(name, help, dev, func(emit obs.Emit) {
			for _, d := range s.registry.Status() {
				emit(get(d), d.Name)
			}
		})
	}
	counter("accqoc_store_hits_total", "Pulse store hits by device (current epoch).",
		func(st devreg.DeviceStatus) float64 { return float64(st.Library.Hits) })
	counter("accqoc_store_misses_total", "Pulse store misses by device (current epoch).",
		func(st devreg.DeviceStatus) float64 { return float64(st.Library.Misses) })
	counter("accqoc_store_evictions_total", "Pulse store LRU evictions by device (current epoch).",
		func(st devreg.DeviceStatus) float64 { return float64(st.Library.Evictions) })
	counter("accqoc_store_inserts_total", "Pulse store inserts by device (current epoch).",
		func(st devreg.DeviceStatus) float64 { return float64(st.Library.Inserts) })
	counter("accqoc_store_trainings_total", "GetOrTrain compute invocations by device (current epoch).",
		func(st devreg.DeviceStatus) float64 { return float64(st.Library.Trainings) })
	counter("accqoc_store_coalesced_total", "GetOrTrain callers that joined an in-flight training (singleflight coalesce), by device.",
		func(st devreg.DeviceStatus) float64 { return float64(st.Library.DedupSuppressed) })
	counter("accqoc_store_train_failures_total", "GetOrTrain compute invocations that failed, by device.",
		func(st devreg.DeviceStatus) float64 { return float64(st.Library.TrainFailures) })
	gauge("accqoc_store_entries", "Cached pulse entries by device (current epoch).",
		func(st devreg.DeviceStatus) float64 { return float64(st.Library.Entries) })
	gauge("accqoc_device_epoch", "Current calibration epoch by device.",
		func(st devreg.DeviceStatus) float64 { return float64(st.Epoch) })
	gauge("accqoc_device_epoch_age_seconds", "Age of the current calibration epoch by device.",
		func(st devreg.DeviceStatus) float64 { return st.EpochAgeSeconds })
	gauge("accqoc_roll_active", "1 while a cross-epoch recompilation roll is in flight, by device.",
		func(st devreg.DeviceStatus) float64 {
			if st.Recompile.Active {
				return 1
			}
			return 0
		})
	gauge("accqoc_roll_planned", "Plan size of the device's most recent recompilation roll.",
		func(st devreg.DeviceStatus) float64 { return float64(st.Recompile.Planned) })
	gauge("accqoc_roll_pending", "Unprocessed plan items of the device's recompilation roll (roll progress = planned - pending).",
		func(st devreg.DeviceStatus) float64 { return float64(st.Recompile.Pending()) })
	r.GaugeFunc("accqoc_queue_depth", "Tasks waiting in the training tier's compile queue.",
		func() float64 { return float64(s.svc.QueueLen()) })
	r.GaugeFunc("accqoc_compile_in_flight", "Tasks currently executing on training-tier workers.",
		func() float64 { return float64(s.svc.InFlight()) })
	if s.jobStore != nil {
		r.CollectGauges("accqoc_jobs", "Async jobs held by the job store, by state.",
			[]string{"state"}, func(emit obs.Emit) {
				c := s.jobStore.Counts()
				emit(float64(c.Queued), "queued")
				emit(float64(c.Running), "running")
				emit(float64(c.Done), "done")
				emit(float64(c.Failed), "failed")
			})
		r.CollectCounters("accqoc_jobs_rejected_total", "Async submissions refused with 503 (job store at capacity, or shutdown).",
			nil, func(emit obs.Emit) { emit(float64(s.rejectedAsync.Load())) })
	}
}

// statusWriter captures the response status code for the request counter
// and the trace.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the request middleware: request ID
// generation (returned in X-Request-Id and threaded through the
// context), in-flight gauge, per-endpoint latency histogram and request
// counter, and — for compile endpoints (record=true) — a pipeline trace
// filed to the flight recorder. With observability disabled it returns
// the handler unwrapped, leaving responses byte-identical.
func (s *Server) instrument(endpoint string, record bool, h http.HandlerFunc) http.HandlerFunc {
	if s.obs == nil {
		return h
	}
	ob := s.obs
	latency := ob.httpLatency.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		rid := obs.NewRequestID()
		w.Header().Set("X-Request-Id", rid)
		ctx := obs.WithRequestID(r.Context(), rid)
		var tr *obs.Trace
		if record {
			tr = obs.NewTrace(rid, endpoint)
			ctx = obs.WithTrace(ctx, tr)
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		ob.inFlight.Add(1)
		h(sw, r.WithContext(ctx))
		ob.inFlight.Add(-1)
		latency.Observe(time.Since(begin).Seconds())
		ob.httpRequests.With(endpoint, strconv.Itoa(sw.code)).Inc()
		if tr != nil {
			errMsg := ""
			if sw.code >= 400 {
				errMsg = http.StatusText(sw.code)
			}
			tr.Finish(sw.code, errMsg)
			ob.recorder.Record(tr)
		}
	}
}

// DebugRequestsResponse is the GET /debug/requests body: the flight
// recorder's most recent traces (newest first) and the slowest since
// boot (slowest first), each with per-stage span timings.
type DebugRequestsResponse struct {
	Recent  []*obs.Trace `json:"recent"`
	Slowest []*obs.Trace `json:"slowest"`
}

func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	recent, slowest := s.obs.recorder.Snapshot()
	if recent == nil {
		recent = []*obs.Trace{}
	}
	if slowest == nil {
		slowest = []*obs.Trace{}
	}
	writeJSON(w, http.StatusOK, DebugRequestsResponse{Recent: recent, Slowest: slowest})
}

// observeCompile records the per-device compile latency once a dispatch
// resolves (success or pipeline failure — both consumed a worker).
func (s *Server) observeCompile(device string, elapsed time.Duration) {
	if s.obs == nil {
		return
	}
	s.obs.deviceLatency.With(device).Observe(elapsed.Seconds())
}
