package server

// Tests of the async job API on the routing/training seam: lifecycle and
// sync-equivalence of the returned schedules, the job JSON wire format,
// cancellation and shutdown semantics, job-store admission control, the
// shared-batch training accounting, and the mixed sync/async race test
// (run with -race) proving exactly-once training and zero lost jobs.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accqoc"
	"accqoc/internal/grouping"
	"accqoc/internal/jobs"
	"accqoc/internal/qasm"
)

// submitAsync posts a compile body with ?async=1 and decodes the 202
// envelope (left zero on any other status).
func submitAsync(t *testing.T, base, path string, payload any) (int, http.Header, AsyncAccepted) {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path+"?async=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var acc AsyncAccepted
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, resp.Header, acc
}

// getJob fetches one job record; ok is false on 404.
func getJob(t *testing.T, base, id string) (jobs.Job, bool) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return jobs.Job{}, false
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s status %d", id, resp.StatusCode)
	}
	var j jobs.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j, true
}

// pollJob polls until the job reaches a terminal state.
func pollJob(t *testing.T, base, id string) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := getJob(t, base, id)
		if !ok {
			t.Fatalf("job %s vanished while polling", id)
		}
		if j.State == jobs.StateDone || j.State == jobs.StateFailed {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return jobs.Job{}
}

func cancelJob(t *testing.T, base, id string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestAsyncCircuitMatchesSync is the seam's equivalence oracle: the async
// path (submit, poll, fetch result) must return the same scheduled pulse
// program as a synchronous compile of the same circuit — batching and job
// plumbing change delivery, never the schedule.
func TestAsyncCircuitMatchesSync(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	_, ts := newTestServer(t)

	code, hdr, acc := submitAsync(t, ts.URL, "/v1/circuits/compile",
		CircuitRequest{CompileRequest: CompileRequest{QASM: oneQubitProgram}})
	if code != http.StatusAccepted {
		t.Fatalf("async submit status %d, want 202", code)
	}
	if acc.JobID == "" || acc.State != jobs.StateQueued {
		t.Fatalf("202 envelope %+v", acc)
	}
	if acc.Poll != "/v1/jobs/"+acc.JobID || hdr.Get("Location") != acc.Poll {
		t.Fatalf("poll/Location mismatch: %+v, Location %q", acc, hdr.Get("Location"))
	}

	j := pollJob(t, ts.URL, acc.JobID)
	if j.State != jobs.StateDone {
		t.Fatalf("job state %s (error %q), want done", j.State, j.Error)
	}
	if j.Kind != "circuit" || j.StartedUnixMs == 0 || j.FinishedUnixMs == 0 {
		t.Fatalf("done job record incomplete: %+v", j)
	}
	var asyncCirc CircuitResponse
	if err := json.Unmarshal(j.Result, &asyncCirc); err != nil {
		t.Fatal(err)
	}

	syncCirc, code := postCircuit(t, ts.URL, CircuitRequest{CompileRequest: CompileRequest{QASM: oneQubitProgram}})
	if code != http.StatusOK {
		t.Fatalf("sync status %d", code)
	}
	if !reflect.DeepEqual(asyncCirc.Schedule, syncCirc.Schedule) {
		t.Fatalf("async schedule diverges from sync:\nasync %+v\nsync  %+v",
			asyncCirc.Schedule, syncCirc.Schedule)
	}
	if asyncCirc.MakespanNs != syncCirc.MakespanNs {
		t.Fatalf("makespan %v (async) != %v (sync)", asyncCirc.MakespanNs, syncCirc.MakespanNs)
	}
	if asyncCirc.Compile.QOCLatencyNs != syncCirc.Compile.QOCLatencyNs ||
		asyncCirc.Compile.EstimatedFidelity != syncCirc.Compile.EstimatedFidelity {
		t.Fatalf("latency/fidelity diverge: async %+v sync %+v", asyncCirc.Compile, syncCirc.Compile)
	}
	// The async job ran first on a cold server; it owns the training.
	if asyncCirc.Compile.UncoveredUnique == 0 || asyncCirc.Compile.TrainingIterations == 0 {
		t.Fatalf("cold async job reported no training: %+v", asyncCirc.Compile)
	}
	if !syncCirc.Compile.WarmServed {
		t.Fatalf("sync follow-up not warm: %+v", syncCirc.Compile)
	}
}

// TestJobWireFormat pins the job JSON: the exact key set by lifecycle
// stage and the state strings. A rename here breaks pollers — make it a
// conscious one.
func TestJobWireFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	// The state strings are wire format.
	for want, got := range map[string]jobs.State{
		"queued": jobs.StateQueued, "running": jobs.StateRunning,
		"done": jobs.StateDone, "failed": jobs.StateFailed,
	} {
		if string(got) != want {
			t.Fatalf("state %q renamed to %q", want, got)
		}
	}

	_, ts := newTestServer(t)
	code, _, acc := submitAsync(t, ts.URL, "/v1/compile", CompileRequest{Workload: "qft:2"})
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollJob(t, ts.URL, acc.JobID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + acc.JobID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{
		"id": true, "kind": true, "device": true, "state": true, "error": true,
		"result": true, "created_unix_ms": true, "started_unix_ms": true,
		"finished_unix_ms": true,
	}
	for k := range raw {
		if !allowed[k] {
			t.Errorf("job JSON grew unexpected key %q", k)
		}
	}
	for _, k := range []string{"id", "kind", "state", "result", "created_unix_ms", "started_unix_ms", "finished_unix_ms"} {
		if _, ok := raw[k]; !ok {
			t.Errorf("done job JSON missing key %q", k)
		}
	}
	if _, ok := raw["error"]; ok {
		t.Error("done job carries an error field")
	}
	var state string
	if err := json.Unmarshal(raw["state"], &state); err != nil || state != "done" {
		t.Errorf("state = %q (%v), want done", state, err)
	}
}

// TestAsyncCancelBeforeFlush cancels a job parked in the batch window:
// the job must land failed/"canceled", survive as that record, and the
// training tier must never run its work.
func TestAsyncCancelBeforeFlush(t *testing.T) {
	s := New(Config{Compile: fastOpts(), Workers: 2, AsyncBatchWindow: time.Hour})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	code, _, acc := submitAsync(t, ts.URL, "/v1/compile", CompileRequest{Workload: "qft:2"})
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if dc := cancelJob(t, ts.URL, acc.JobID); dc != http.StatusOK {
		t.Fatalf("cancel status %d", dc)
	}
	j, ok := getJob(t, ts.URL, acc.JobID)
	if !ok || j.State != jobs.StateFailed || j.Error != "canceled" {
		t.Fatalf("canceled job record %+v (ok=%v)", j, ok)
	}
	if tr := s.Store().Stats().Trainings; tr != 0 {
		t.Fatalf("canceled job trained %d groups", tr)
	}
	// A second cancel (or reap) of the now-terminal record deletes it.
	if dc := cancelJob(t, ts.URL, acc.JobID); dc != http.StatusOK {
		t.Fatalf("reap status %d", dc)
	}
	if _, ok := getJob(t, ts.URL, acc.JobID); ok {
		t.Fatal("reaped job still present")
	}
}

// TestAsyncCloseFailsQueuedJobs pins the shutdown sweep: jobs still
// queued (unflushed batch window) when the server closes are marked
// failed with a clear status, never stranded in "queued".
func TestAsyncCloseFailsQueuedJobs(t *testing.T) {
	s := New(Config{Compile: fastOpts(), Workers: 2, AsyncBatchWindow: time.Hour})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		code, _, acc := submitAsync(t, ts.URL, "/v1/compile", CompileRequest{Workload: "qft:2"})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d status %d", i, code)
		}
		ids = append(ids, acc.JobID)
	}
	s.Close()
	for _, id := range ids {
		j, ok := s.jobStore.Get(id)
		if !ok {
			t.Fatalf("job %s lost at shutdown", id)
		}
		if j.State != jobs.StateFailed || j.Error != "server shutting down" {
			t.Fatalf("job %s at shutdown: state %s error %q", id, j.State, j.Error)
		}
	}
	if n := s.svc.InFlight(); n != 0 {
		t.Fatalf("in-flight %d after Close", n)
	}
}

// TestAsyncJobCapRejects pins the async admission control: a job store
// saturated with live jobs answers 503 with a Retry-After hint, counted
// in rejected_async (and the accqoc_jobs_rejected_total series) without
// touching the sync rejection counter.
func TestAsyncJobCapRejects(t *testing.T) {
	s := New(Config{Compile: fastOpts(), Workers: 2, JobCap: 1, AsyncBatchWindow: time.Hour})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	if code, _, _ := submitAsync(t, ts.URL, "/v1/compile", CompileRequest{Workload: "qft:2"}); code != http.StatusAccepted {
		t.Fatalf("first submit status %d", code)
	}
	body, _ := json.Marshal(CompileRequest{Workload: "qft:2"})
	resp, err := http.Post(ts.URL+"/v1/compile?async=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var e map[string]string
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated submit status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("503 missing Retry-After: %v", resp.Header)
	}
	if e["error"] != "job store full" {
		t.Fatalf("503 body %v", e)
	}
	st := getStats(t, ts.URL)
	if st.Server.RejectedAsync != 1 || st.Server.Rejected != 0 {
		t.Fatalf("rejection counters %+v, want rejected_async=1 rejected=0", st.Server)
	}
	exp := scrapeMetrics(t, ts.URL)
	if exp.samples["accqoc_jobs_rejected_total"] != 1 {
		t.Fatalf("accqoc_jobs_rejected_total = %v, want 1", exp.samples["accqoc_jobs_rejected_total"])
	}
	if exp.samples[`accqoc_jobs{state="queued"}`] != 1 {
		t.Fatalf(`accqoc_jobs{state="queued"} = %v, want 1`, exp.samples[`accqoc_jobs{state="queued"}`])
	}
}

// TestAsyncBatchSharesResolve pins the batching win: two async submissions
// of the same circuit inside one window share a single resolveGroups pass
// — the store trains each unique group once, and BOTH jobs report the
// training they waited on (were they resolved sequentially, the second
// would have been a pure cache hit).
func TestAsyncBatchSharesResolve(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	s := New(Config{Compile: fastOpts(), Workers: 2, AsyncBatchWindow: 250 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	code1, _, acc1 := submitAsync(t, ts.URL, "/v1/compile", CompileRequest{QASM: oneQubitProgram})
	code2, _, acc2 := submitAsync(t, ts.URL, "/v1/compile", CompileRequest{QASM: oneQubitProgram})
	if code1 != http.StatusAccepted || code2 != http.StatusAccepted {
		t.Fatalf("submit statuses %d, %d", code1, code2)
	}
	j1, j2 := pollJob(t, ts.URL, acc1.JobID), pollJob(t, ts.URL, acc2.JobID)
	if j1.State != jobs.StateDone || j2.State != jobs.StateDone {
		t.Fatalf("job states %s (%q), %s (%q)", j1.State, j1.Error, j2.State, j2.Error)
	}
	var a, b CompileResponse
	if err := json.Unmarshal(j1.Result, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(j2.Result, &b); err != nil {
		t.Fatal(err)
	}
	if a.UncoveredUnique == 0 || b.UncoveredUnique == 0 {
		t.Fatalf("batched jobs not both cold: a=%+v b=%+v", a, b)
	}
	if a.TrainingIterations == 0 || a.TrainingIterations != b.TrainingIterations {
		t.Fatalf("shared-batch training cost diverges: a=%d b=%d",
			a.TrainingIterations, b.TrainingIterations)
	}
	// The store saw the union once: one training per unique group.
	if tr := s.Store().Stats().Trainings; tr != int64(a.UncoveredUnique) {
		t.Fatalf("store ran %d trainings for %d unique groups", tr, a.UncoveredUnique)
	}
}

// TestStatsAndHealthzReportTrainingTier pins satellite coverage: the
// stats and health endpoints must surface the training tier's queue and
// job-store state through the service interface.
func TestStatsAndHealthzReportTrainingTier(t *testing.T) {
	_, ts := newTestServer(t)
	st := getStats(t, ts.URL)
	if st.Server.Workers <= 0 || st.Server.QueueDepth <= 0 {
		t.Fatalf("stats missing tier shape: %+v", st.Server)
	}
	if st.Server.QueueLen != 0 || st.Server.InFlight != 0 {
		t.Fatalf("idle tier reports queue_len=%d in_flight=%d", st.Server.QueueLen, st.Server.InFlight)
	}
	if st.Server.Jobs == nil {
		t.Fatal("stats missing jobs census")
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Compile.Workers <= 0 || h.Compile.QueueDepth <= 0 {
		t.Fatalf("healthz missing compile tier: %+v", h.Compile)
	}
	if h.Jobs == nil {
		t.Fatal("healthz missing jobs census")
	}
}

// TestAsyncDisabled pins the opt-out: with DisableAsyncJobs the ?async=1
// hint is refused and the job routes don't exist.
func TestAsyncDisabled(t *testing.T) {
	s := New(Config{Compile: fastOpts(), Workers: 2, DisableAsyncJobs: true})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	if code, _, _ := submitAsync(t, ts.URL, "/v1/compile", CompileRequest{Workload: "qft:2"}); code != http.StatusBadRequest {
		t.Fatalf("async submit on disabled server: status %d, want 400", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/job-doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("jobs route on disabled server: status %d, want 404", resp.StatusCode)
	}
	st := getStats(t, ts.URL)
	if st.Server.Jobs != nil {
		t.Fatalf("disabled server censuses jobs: %+v", st.Server.Jobs)
	}
}

// TestMixedSyncAsyncExactlyOnce is the seam's race test (run with -race):
// sync requests, async submissions, polls and cancellations hammer one
// namespace concurrently. Training must stay exactly-once per unique
// group (hook-counted AND store-counted), no submitted job may be lost or
// stranded non-terminal, the store and seed index stay coherent, and the
// training tier drains to zero in-flight on Close.
func TestMixedSyncAsyncExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	opts := fastOpts()
	var hookTrained atomic.Int64
	// Observability is disabled so the counting hook below survives New
	// (the obs layer would otherwise claim the observer slot).
	opts.Precompile.Observer = func(numQubits, iterations int, infidelity float64, seeded bool) {
		hookTrained.Add(1)
	}
	s := New(Config{
		Compile: opts, Workers: 4,
		DisableObservability: true,
		AsyncBatchWindow:     2 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())

	progs := []string{oneQubitProgram, rxAProgram, rxBProgram}
	// The oracle: the union of unique group keys across all programs —
	// however the mixed load interleaves, each key trains exactly once.
	comp := accqoc.New(fastOpts())
	uniqKeys := map[string]bool{}
	for _, src := range progs {
		prog, err := qasm.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		prep, err := comp.Prepare(prog)
		if err != nil {
			t.Fatal(err)
		}
		uniq, err := grouping.Deduplicate(prep.Grouping.Groups)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range uniq {
			uniqKeys[u.Key] = true
		}
	}

	const clients = 6
	var mu sync.Mutex
	var ids []string
	noteJob := func(id string) {
		mu.Lock()
		ids = append(ids, id)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			prog := progs[c%len(progs)]
			// Sync request.
			if _, code := postCompile(t, ts.URL, CompileRequest{QASM: prog}); code != http.StatusOK {
				t.Errorf("sync status %d", code)
			}
			// Async submit, poll to completion.
			code, _, acc := submitAsync(t, ts.URL, "/v1/compile", CompileRequest{QASM: prog})
			if code != http.StatusAccepted {
				t.Errorf("async submit status %d", code)
				return
			}
			noteJob(acc.JobID)
			if j := pollJob(t, ts.URL, acc.JobID); j.State != jobs.StateDone {
				t.Errorf("job %s ended %s (%q)", acc.JobID, j.State, j.Error)
			}
			// Async circuit submit raced by a cancel: every outcome is
			// legal — canceled while queued, 409 while running, or a reap
			// of an already-finished record — but the job must never be
			// lost while live or stranded non-terminal.
			code, _, acc2 := submitAsync(t, ts.URL, "/v1/circuits/compile",
				CircuitRequest{CompileRequest: CompileRequest{QASM: prog}})
			if code != http.StatusAccepted {
				t.Errorf("async circuit submit status %d", code)
				return
			}
			dc := cancelJob(t, ts.URL, acc2.JobID)
			if _, ok := getJob(t, ts.URL, acc2.JobID); ok {
				noteJob(acc2.JobID)
				jj := pollJob(t, ts.URL, acc2.JobID)
				if jj.State == jobs.StateFailed && jj.Error != "canceled" {
					t.Errorf("job %s failed with %q", acc2.JobID, jj.Error)
				}
			} else if dc != http.StatusOK {
				// Gone without a successful cancel/reap: a lost job.
				t.Errorf("job %s vanished (delete status %d)", acc2.JobID, dc)
			}
		}()
	}
	wg.Wait()

	// Zero lost jobs: every submitted ID resolves, terminally.
	for _, id := range ids {
		j, ok := s.jobStore.Get(id)
		if !ok {
			t.Errorf("job %s lost", id)
			continue
		}
		if j.State != jobs.StateDone && j.State != jobs.StateFailed {
			t.Errorf("job %s stranded in %s", id, j.State)
		}
	}

	// Exactly-once training, by both counters.
	st := s.Store().Stats()
	if st.TrainFailures != 0 {
		t.Fatalf("train failures: %d", st.TrainFailures)
	}
	if st.Trainings != int64(len(uniqKeys)) {
		t.Fatalf("store ran %d trainings, want exactly %d (one per unique group)",
			st.Trainings, len(uniqKeys))
	}
	if hookTrained.Load() != st.Trainings {
		t.Fatalf("hook counted %d trainings, store %d", hookTrained.Load(), st.Trainings)
	}
	// Store and seed index coherent after the mixed load.
	stats := getStats(t, ts.URL)
	if stats.SeedIndex == nil || stats.SeedIndex.Entries != s.Store().Len() {
		t.Fatalf("seed index incoherent: %+v vs %d store entries", stats.SeedIndex, s.Store().Len())
	}

	ts.Close()
	s.Close()
	if n := s.svc.InFlight(); n != 0 {
		t.Fatalf("in-flight %d after Close", n)
	}
	if n := s.svc.QueueLen(); n != 0 {
		t.Fatalf("queue length %d after Close", n)
	}
}
