package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"accqoc/internal/compilesvc"
)

// This file is the circuit-level serving surface: POST /v1/circuits/compile
// accepts a whole QASM program (or workload spec) and returns the scheduled
// pulse program a control stack would hand to the waveform generators. The
// pipeline itself — Prepare, coverage/cold partition, MST-warm-started
// training, Algorithm 3 scheduling, conformance validation — lives in the
// training tier (internal/compilesvc); this handler ingests, routes, and
// writes the response.

// CircuitRequest is the POST /v1/circuits/compile body: the compile
// request fields (exactly one of qasm/workload, optional device routing)
// plus schedule-specific options.
type CircuitRequest struct {
	CompileRequest
	// IncludeWaveforms inlines the referenced waveforms in the response's
	// waveforms map (off by default: schedules reference waveforms by
	// stable content address, and warm traffic usually has them cached).
	IncludeWaveforms bool `json:"include_waveforms,omitempty"`
}

// ScheduledPulseWire is one slot of the scheduled pulse program; the
// alias preserves this package's wire surface across the tier split.
type ScheduledPulseWire = compilesvc.ScheduledPulseWire

// CircuitResponse is the POST /v1/circuits/compile body.
type CircuitResponse = compilesvc.CircuitResponse

func (s *Server) handleCircuits(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req CircuitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.failures.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	if wantsAsync(r) {
		s.dispatchAsync(w, r, req.CompileRequest, true, req.IncludeWaveforms)
		return
	}
	res := s.dispatch(w, r, req.CompileRequest, true, req.IncludeWaveforms)
	if res == nil {
		return
	}
	// Echo the explicit device routing, exactly like the per-group path.
	res.Circ.Compile.Device = req.Device
	s.compileNs.Add(int64(res.Circ.Compile.CompileMillis * float64(time.Millisecond)))
	writeJSON(w, http.StatusOK, res.Circ)
}
