package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"accqoc"
	"accqoc/internal/circuit"
	"accqoc/internal/devreg"
	"accqoc/internal/obs"
	"accqoc/internal/precompile"
	"accqoc/internal/pulse"
)

// This file is the circuit-level serving surface: POST /v1/circuits/compile
// accepts a whole QASM program (or workload spec), runs the full AccQOC
// pipeline — Prepare, coverage/cold partition, MST-warm-started training on
// the worker pool, Algorithm 3 scheduling — inside the request's
// (device, epoch) namespace, and returns the scheduled pulse program a
// control stack would hand to the waveform generators. Uncovered groups
// shared by concurrent circuits coalesce through the same singleflight the
// per-group path uses, so one hot group trains exactly once across all
// in-flight circuits, and every response is checked against the schedule
// invariants (accqoc.Schedule.Validate) before it leaves the server.

// CircuitRequest is the POST /v1/circuits/compile body: the compile
// request fields (exactly one of qasm/workload, optional device routing)
// plus schedule-specific options.
type CircuitRequest struct {
	CompileRequest
	// IncludeWaveforms inlines the referenced waveforms in the response's
	// waveforms map (off by default: schedules reference waveforms by
	// stable content address, and warm traffic usually has them cached).
	IncludeWaveforms bool `json:"include_waveforms,omitempty"`
}

// ScheduledPulseWire is one slot of the scheduled pulse program.
type ScheduledPulseWire struct {
	// Group indexes the program's gate groups in grouping order.
	Group int `json:"group"`
	// Qubits are the physical qubits the slot drives.
	Qubits []int `json:"qubits"`
	// StartNs/DurationNs place the slot on the program timeline (ASAP
	// start under Algorithm 3).
	StartNs    float64 `json:"start_ns"`
	DurationNs float64 `json:"duration_ns"`
	// Waveform is the content address of the library pulse driving this
	// slot; empty for groups that failed to train and execute gate-based.
	Waveform string `json:"waveform,omitempty"`
	// Mirrored marks slots whose qubit order is the mirror of the library
	// pulse's canonical orientation: on replay the per-qubit drive
	// channels exchange (inlined waveforms are canonical, not exchanged).
	Mirrored bool `json:"mirrored,omitempty"`
}

// CircuitResponse is the POST /v1/circuits/compile body: the compile
// summary (coverage, training cost, latency vs the gate-based baseline)
// plus the scheduled pulse program itself.
type CircuitResponse struct {
	Compile CompileResponse `json:"compile"`
	// MakespanNs is the program's overall latency — the end of the last
	// scheduled slot (equals compile.qoc_latency_ns).
	MakespanNs float64 `json:"makespan_ns"`
	// Schedule lists every group slot ordered by start time.
	Schedule []ScheduledPulseWire `json:"schedule"`
	// Waveforms maps content addresses to canonical waveforms, present
	// only when the request set include_waveforms.
	Waveforms map[string]*pulse.Pulse `json:"waveforms,omitempty"`
}

// waveformRef digests a library pulse into the compact content address
// used on the wire. The address covers the waveform bytes themselves —
// not the group key — so a retrained pulse (a new calibration epoch, a
// different device's physics) gets a new ref and a client-side waveform
// cache can never replay a stale wrong-calibration pulse; identical
// waveforms share a ref across requests.
func waveformRef(e *precompile.Entry) string {
	data, err := e.Pulse.MarshalBinary()
	if err != nil {
		// Unreachable for trained entries (pulses validate on decode);
		// degrade to the key digest rather than dropping the ref.
		data = []byte(e.Key)
	}
	h := sha256.Sum256(data)
	return "wf:" + hex.EncodeToString(h[:12])
}

// compileCircuit runs the whole-circuit pipeline for one namespace:
// plan (front end + canonical keys), resolve every unique group through
// the shared singleflight/MST machinery, assemble the schedule, and
// validate it against the schedule invariants before answering.
func (s *Server) compileCircuit(prog *circuit.Circuit, ns *devreg.Namespace, inlineWaveforms bool, tr *obs.Trace) (*CircuitResponse, error) {
	begin := time.Now()
	sp := tr.StartSpan("prepare")
	plan, err := ns.Plan(prog)
	if err != nil {
		return nil, err
	}
	sp.End()
	gr := plan.Prepared.Grouping
	resp := &CompileResponse{
		Qubits:      prog.NumQubits,
		Gates:       prog.GateCount(),
		Epoch:       ns.Epoch,
		TotalGroups: len(gr.Groups),
	}
	entries := s.resolveGroups(ns, resp, plan.Unique, tr)

	sp = tr.StartSpan("assemble")
	res := plan.Result()
	dev := ns.Comp.Options().Device
	sched, err := accqoc.AssembleSchedule(res, dev.Calibration, func(key string) (*precompile.Entry, bool) {
		e, ok := entries[key]
		return e, ok
	})
	if err != nil {
		return nil, err
	}
	res.OverallLatencyNs = sched.MakespanNs
	sp.End()
	// Conformance oracle: a pulse program violating its own invariants
	// (dependency order, per-qubit exclusivity, two-sided makespan) must
	// never reach a waveform generator — fail the request instead.
	vsp := tr.StartSpan("validate")
	if verr := sched.Validate(); verr != nil {
		return nil, fmt.Errorf("scheduled pulse program failed conformance: %w", verr)
	}
	vsp.End()

	finalizeResponse(resp, plan.Prepared.Physical, dev, sched.MakespanNs, begin)

	out := &CircuitResponse{
		Compile:    *resp,
		MakespanNs: sched.MakespanNs,
		Schedule:   make([]ScheduledPulseWire, 0, len(sched.Pulses)),
	}
	// refs dedups the hash work: one MarshalBinary+SHA-256 per unique
	// entry, however many occurrences reference it.
	refs := make(map[string]string, len(entries))
	for _, sp := range sched.Pulses {
		slot := ScheduledPulseWire{
			Group:      sp.Group,
			Qubits:     sp.Qubits,
			StartNs:    sp.StartNs,
			DurationNs: sp.DurationNs,
			Mirrored:   sp.Mirrored,
		}
		if e, eok := entries[sp.Key]; sp.Key != "" && eok && e.Pulse != nil {
			ref, cached := refs[sp.Key]
			if !cached {
				ref = waveformRef(e)
				refs[sp.Key] = ref
			}
			slot.Waveform = ref
			if inlineWaveforms {
				if out.Waveforms == nil {
					out.Waveforms = map[string]*pulse.Pulse{}
				}
				out.Waveforms[ref] = e.Pulse
			}
		}
		out.Schedule = append(out.Schedule, slot)
	}
	return out, nil
}

func (s *Server) handleCircuits(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req CircuitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.failures.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	res := s.dispatch(w, r, req.CompileRequest, true, req.IncludeWaveforms)
	if res == nil {
		return
	}
	// Echo the explicit device routing, exactly like the per-group path.
	res.circ.Compile.Device = req.Device
	s.compileNs.Add(int64(res.circ.Compile.CompileMillis * float64(time.Millisecond)))
	writeJSON(w, http.StatusOK, res.circ)
}
