package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"accqoc/internal/grouping"
)

// threeQubitProgram: CX(0,1);CX(1,2) merges into one dim-8 group under the
// opt-in map3b3l policy; the trailing H keeps a 1Q group in the mix so the
// per-size dispatch is exercised side by side.
const threeQubitProgram = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
cx q[0],q[1];
cx q[1],q[2];
h q[0];
`

// newTest3QServer is newTestServer with the 3-qubit policy enabled and the
// GRAPE budget loosened: a dim-8 group trains 40 segments over an 8×8
// propagator chain, so a tight 1e-2 target would dominate the test suite.
func newTest3QServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	opts := fastOpts()
	opts.Policy = grouping.Map3b3l
	opts.Precompile.Grape.TargetInfidelity = 0.3
	opts.Precompile.Grape.MaxIterations = 200
	s := New(Config{Compile: opts, Workers: 8})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// TestCircuit3QPolicyEndToEnd compiles a program whose CX pair merges into
// a single 3-qubit group through /v1/circuits/compile: the schedule must
// validate, carry a 3-qubit slot, and resolve every waveform reference —
// the acceptance gate for the group-size frontier being actually servable.
func TestCircuit3QPolicyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a dim-8 pulse; skipped in -short")
	}
	_, ts := newTest3QServer(t)

	resp, code := postCircuit(t, ts.URL, CircuitRequest{
		CompileRequest:   CompileRequest{QASM: threeQubitProgram},
		IncludeWaveforms: true,
	})
	if code != http.StatusOK {
		t.Fatalf("3Q circuit compile status %d", code)
	}
	checkWireSchedule(t, resp)
	if resp.Compile.FailedGroups != 0 {
		t.Fatalf("3Q training failed: %+v", resp.Compile)
	}

	var got3q bool
	for _, sp := range resp.Schedule {
		if len(sp.Qubits) == 3 {
			got3q = true
		}
		if sp.Waveform == "" {
			t.Fatalf("slot missing waveform ref: %+v", sp)
		}
		p, ok := resp.Waveforms[sp.Waveform]
		if !ok {
			t.Fatalf("waveform %s referenced but not inlined", sp.Waveform)
		}
		if p.Duration() != sp.DurationNs {
			t.Fatalf("waveform duration %v disagrees with slot %v", p.Duration(), sp.DurationNs)
		}
		if p.Channels() != 2*len(sp.Qubits) {
			t.Fatalf("slot on %d qubits has %d channels, want %d",
				len(sp.Qubits), p.Channels(), 2*len(sp.Qubits))
		}
	}
	if !got3q {
		t.Fatal("no 3-qubit slot in the schedule: the CX pair did not merge under map3b3l")
	}

	// The warm path serves the same dim-8 group from the library.
	warm, code := postCircuit(t, ts.URL, CircuitRequest{
		CompileRequest: CompileRequest{QASM: threeQubitProgram},
	})
	if code != http.StatusOK {
		t.Fatalf("warm 3Q status %d", code)
	}
	if !warm.Compile.WarmServed || warm.Compile.CoverageRate != 1 {
		t.Fatalf("3Q groups not served warm on repeat: %+v", warm.Compile)
	}
	if warm.MakespanNs != resp.MakespanNs {
		t.Fatalf("warm makespan %v differs from cold %v", warm.MakespanNs, resp.MakespanNs)
	}
}
