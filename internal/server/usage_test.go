package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accqoc/internal/libstore"
)

func getUsage(t *testing.T, base, query string) UsageResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/library/usage" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("usage status %d: %s", resp.StatusCode, body)
	}
	var out UsageResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("usage decode: %v", err)
	}
	return out
}

// TestUsageEndpointSchema pins the GET /v1/library/usage wire format and
// checks the report against the store's own hit counters as an
// independent oracle.
func TestUsageEndpointSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	s, ts := newTestServer(t)

	// Two identical compiles: the second is served warm, so every group
	// key gains one hit and the two keys co-occur twice.
	for i := 0; i < 2; i++ {
		if _, code := postCompile(t, ts.URL, CompileRequest{QASM: oneQubitProgram}); code != http.StatusOK {
			t.Fatalf("compile %d: status %d", i, code)
		}
	}

	// Wire-format pin: the exact top-level JSON keys, not just the Go
	// struct round-trip.
	resp, err := http.Get(ts.URL + "/v1/library/usage")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("usage status %d err %v", resp.StatusCode, err)
	}
	var wire map[string]json.RawMessage
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"device", "requests", "tracked_keys", "history_size", "totals", "top", "pairs", "regret"} {
		if _, ok := wire[key]; !ok {
			t.Errorf("usage response missing %q: %s", key, raw)
		}
	}
	var topRows []map[string]json.RawMessage
	if err := json.Unmarshal(wire["top"], &topRows); err != nil || len(topRows) == 0 {
		t.Fatalf("top rows: %v (%s)", err, wire["top"])
	}
	for _, key := range []string{"key", "num_qubits", "live", "hits", "trainings", "seeded", "cold", "iterations", "train_wall_millis", "score"} {
		if _, ok := topRows[0][key]; !ok {
			t.Errorf("top row missing %q: %v", key, topRows[0])
		}
	}

	u := getUsage(t, ts.URL, "")
	if u.Device != "default" {
		t.Errorf("device = %q, want default", u.Device)
	}
	if u.Requests != 2 {
		t.Errorf("requests = %d, want 2", u.Requests)
	}

	// Oracle: the store's own per-key hit counters.
	hits := s.Store().HitCounts()
	entries := s.Store().Snapshot().Entries
	if u.TrackedKeys != len(entries) {
		t.Errorf("tracked keys = %d, store holds %d", u.TrackedKeys, len(entries))
	}
	var totalHits int64
	for _, r := range u.Top {
		e, ok := entries[r.Key]
		if !ok {
			t.Fatalf("ledger row %q not in store", r.Key)
		}
		if r.Hits != hits[r.Key] {
			t.Errorf("row %q hits = %d, store counter %d", r.Key, r.Hits, hits[r.Key])
		}
		if r.Trainings != 1 || int64(e.Iterations) != r.Iterations {
			t.Errorf("row %q trainings/iterations = %d/%d, want 1/%d", r.Key, r.Trainings, r.Iterations, e.Iterations)
		}
		if !r.Live || r.TrainWallMillis <= 0 {
			t.Errorf("row %q live=%v wall=%v, want live with positive wall time", r.Key, r.Live, r.TrainWallMillis)
		}
		totalHits += r.Hits
	}
	if u.Totals.Hits != totalHits || totalHits == 0 {
		t.Errorf("totals.hits = %d, rows sum %d (want equal, nonzero)", u.Totals.Hits, totalHits)
	}
	if len(entries) > 1 && len(u.Pairs) == 0 {
		t.Error("multi-group program produced no co-occurrence pairs")
	}
	for _, p := range u.Pairs {
		if p.Count != 2 {
			t.Errorf("pair %v count = %d, want 2 (two identical requests)", p.Keys, p.Count)
		}
	}

	// Parameter validation.
	for _, q := range []string{"?n=0", "?n=abc", "?device=nope"} {
		resp, err := http.Get(ts.URL + "/v1/library/usage" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET usage%s: status %d, want 400", q, resp.StatusCode)
		}
	}
	if u2 := getUsage(t, ts.URL, "?n=1"); len(u2.Top) != 1 {
		t.Errorf("?n=1 returned %d rows", len(u2.Top))
	}

	// /debug/costs lists every device.
	dresp, err := http.Get(ts.URL + "/debug/costs")
	if err != nil {
		t.Fatal(err)
	}
	var costs DebugCostsResponse
	err = json.NewDecoder(dresp.Body).Decode(&costs)
	dresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(costs.Devices) != 1 || costs.Devices[0].Device != "default" || costs.Devices[0].Requests != 2 {
		t.Errorf("debug costs = %+v, want one default device with 2 requests", costs.Devices)
	}
}

// TestDisableUsageEquivalence pins the accounting's policy-freedom: with
// the ledger off the usage endpoints vanish, and both the responses and
// the trained library are bit-identical to the accounting server's.
func TestDisableUsageEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	plain := New(Config{Compile: fastOpts(), Workers: 4, DisableUsage: true})
	tsPlain := httptest.NewServer(plain.Handler())
	defer func() { tsPlain.Close(); plain.Close() }()
	acct := New(Config{Compile: fastOpts(), Workers: 4})
	tsAcct := httptest.NewServer(acct.Handler())
	defer func() { tsAcct.Close(); acct.Close() }()

	respPlain := postRaw(t, tsPlain.URL, oneQubitProgram)
	respAcct := postRaw(t, tsAcct.URL, oneQubitProgram)

	for _, path := range []string{"/v1/library/usage", "/debug/costs"} {
		resp, err := http.Get(tsPlain.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("disabled server serves %s (status %d)", path, resp.StatusCode)
		}
	}
	getUsage(t, tsAcct.URL, "") // enabled server serves it

	var a, b CompileResponse
	if err := json.Unmarshal(respPlain.body, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(respAcct.body, &b); err != nil {
		t.Fatal(err)
	}
	a.CompileMillis, b.CompileMillis = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("responses diverge:\nplain %+v\nacct  %+v", a, b)
	}

	got := plain.Store().Snapshot().Entries
	want := acct.Store().Snapshot().Entries
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("store sizes diverge: %d vs %d", len(got), len(want))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Fatalf("disabled store missing %q", key)
		}
		if g.Iterations != w.Iterations || g.LatencyNs != w.LatencyNs {
			t.Fatalf("entry %q diverges: iterations %d vs %d", key, g.Iterations, w.Iterations)
		}
		if !reflect.DeepEqual(g.Pulse.Amps, w.Pulse.Amps) || g.Pulse.Dt != w.Pulse.Dt {
			t.Fatalf("entry %q pulse not bit-identical across usage modes", key)
		}
	}
}

// TestUsageSnapshotCycle pins the acceptance path: hit counts ride the
// snapshot, and a server booted from it reports a ledger matching the
// first server's counters.
func TestUsageSnapshotCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	first, tsFirst := newTestServer(t)
	for i := 0; i < 3; i++ {
		if _, code := postCompile(t, tsFirst.URL, CompileRequest{QASM: oneQubitProgram}); code != http.StatusOK {
			t.Fatalf("compile %d: status %d", i, code)
		}
	}
	oracleHits := first.Store().HitCounts()
	oracleEntries := first.Store().Snapshot().Entries
	path := filepath.Join(t.TempDir(), "lib.snap")
	if err := first.Store().SaveSnapshot(path, libstore.FormatGob); err != nil {
		t.Fatalf("save: %v", err)
	}

	second := New(Config{Compile: fastOpts(), Workers: 4, BootSnapshot: path})
	tsSecond := httptest.NewServer(second.Handler())
	defer func() { tsSecond.Close(); second.Close() }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(tsSecond.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("boot snapshot never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}

	u := getUsage(t, tsSecond.URL, "?n=1000")
	if u.Requests != 0 {
		t.Errorf("restored ledger requests = %d, want 0", u.Requests)
	}
	if u.TrackedKeys != len(oracleEntries) {
		t.Fatalf("restored tracked keys = %d, want %d", u.TrackedKeys, len(oracleEntries))
	}
	var totalHits int64
	for _, r := range u.Top {
		e, ok := oracleEntries[r.Key]
		if !ok {
			t.Fatalf("restored row %q unknown to first server", r.Key)
		}
		if r.Hits != oracleHits[r.Key] {
			t.Errorf("restored row %q hits = %d, oracle %d", r.Key, r.Hits, oracleHits[r.Key])
		}
		if r.Iterations != int64(e.Iterations) || r.Trainings != 1 {
			t.Errorf("restored row %q iterations/trainings = %d/%d, want %d/1", r.Key, r.Iterations, r.Trainings, e.Iterations)
		}
		totalHits += r.Hits
	}
	if totalHits == 0 {
		t.Error("no hits survived the snapshot cycle")
	}
	// The store-side ordering survives too.
	if got, want := second.Store().KeysByHits(), first.Store().KeysByHits(); !reflect.DeepEqual(got, want) {
		t.Errorf("KeysByHits after cycle = %v, want %v", got, want)
	}
}

// TestUsageLedgerOracleUnderLoad is the -race workout: concurrent
// compiles over a capacity-2 store (forced evictions and regret),
// concurrent /metrics and /v1/library/usage scrapes, then the ledger's
// totals checked against independently counted request results.
func TestUsageLedgerOracleUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	s := New(Config{
		Compile: fastOpts(),
		Workers: 4,
		Store:   libstore.New(libstore.Options{Shards: 1, Capacity: 2}),
	})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	// Six distinct single-qubit programs over a 2-entry store: steady
	// eviction pressure, and revisiting them makes evicted keys miss
	// again (regret).
	prog := func(i int) string {
		return fmt.Sprintf("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\nrz(%.2f) q[0];\n", 0.1+0.07*float64(i))
	}

	const workers, perWorker = 4, 9
	var compiles, trainedIters atomic.Int64
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			scrapeMetrics(t, ts.URL)
			resp, err := http.Get(ts.URL + "/v1/library/usage?n=50")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				out, code := postCompile(t, ts.URL, CompileRequest{QASM: prog((w + i) % 6)})
				if code != http.StatusOK {
					t.Errorf("worker %d compile %d: status %d", w, i, code)
					return
				}
				compiles.Add(1)
				trainedIters.Add(int64(out.TrainingIterations))
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	u := getUsage(t, ts.URL, "?n=1000")
	if u.Requests != compiles.Load() {
		t.Errorf("ledger requests = %d, oracle %d", u.Requests, compiles.Load())
	}
	if u.Totals.Trainings != u.Totals.Seeded+u.Totals.Cold {
		t.Errorf("trainings %d != seeded %d + cold %d", u.Totals.Trainings, u.Totals.Seeded, u.Totals.Cold)
	}
	// Every executed training is reported by exactly one response
	// (singleflight) and accounted exactly once by the ledger.
	if u.Totals.Iterations != trainedIters.Load() {
		t.Errorf("ledger iterations = %d, responses sum %d", u.Totals.Iterations, trainedIters.Load())
	}
	// 6 distinct keys over capacity 2 must evict, and revisits must
	// charge regret, bounded by one event per eviction.
	if u.Regret.Evictions == 0 {
		t.Error("capacity-2 store never evicted")
	}
	if u.Regret.Events == 0 || u.Regret.Events > u.Regret.Evictions {
		t.Errorf("regret events = %d, want in [1, %d]", u.Regret.Events, u.Regret.Evictions)
	}
	// Evicted-and-retrained keys accumulate multiple trainings; totals
	// must cover every store-resident key's row.
	rows := map[string]bool{}
	for _, r := range u.Top {
		rows[r.Key] = true
		if r.Trainings < 1 {
			t.Errorf("row %q has no trainings", r.Key)
		}
	}
	for key := range s.Store().Snapshot().Entries {
		if !rows[key] {
			t.Errorf("store key %q missing from ledger", key)
		}
	}

	// The metric families agree with the report.
	exp := scrapeMetrics(t, ts.URL)
	if got := exp.sumSeries("accqoc_usage_requests_total"); got != float64(u.Requests) {
		t.Errorf("accqoc_usage_requests_total = %v, report says %d", got, u.Requests)
	}
	if got := exp.sumSeries("accqoc_usage_training_iterations_total"); got != float64(u.Totals.Iterations) {
		t.Errorf("accqoc_usage_training_iterations_total = %v, report says %d", got, u.Totals.Iterations)
	}
	if got := exp.sumSeries("accqoc_usage_regret_events_total"); got != float64(u.Regret.Events) {
		t.Errorf("accqoc_usage_regret_events_total = %v, report says %d", got, u.Regret.Events)
	}
}
