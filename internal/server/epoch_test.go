package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"accqoc/internal/circuit"
	"accqoc/internal/compilesvc"
	"accqoc/internal/devreg"
	"accqoc/internal/libstore"
	"accqoc/internal/precompile"
	"accqoc/internal/pulse"
	"accqoc/internal/qasm"
	"accqoc/internal/topology"
)

// legacyCompileResponseKeys is the exact JSON key set of the pre-registry
// compile response — the single-device wire format that must be preserved
// byte for byte when no device field is sent and no calibration has
// happened.
var legacyCompileResponseKeys = []string{
	"qubits", "gates", "total_groups", "covered_groups", "coverage_rate",
	"uncovered_unique", "failed_groups", "warm_served",
	"training_iterations", "warm_seeded", "seed_distance",
	"qoc_latency_ns", "gate_latency_ns", "latency_reduction",
	"estimated_fidelity", "compile_millis",
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestServerDefaultWireFormatUnchanged pins the single-device equivalence:
// with no device field and no calibrate call, a compile response carries
// exactly the legacy JSON keys — no device, no epoch, nothing new leaks
// into the pre-registry wire format.
func TestServerDefaultWireFormatUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	_, ts := newTestServer(t)
	resp, raw := postJSON(t, ts.URL+"/v1/compile", CompileRequest{QASM: rxAProgram})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	want := append([]string(nil), legacyCompileResponseKeys...)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("compile response keys changed:\n got %v\nwant %v", got, want)
	}
}

// multiDeviceServer serves lin3 (default) plus a linear-5 profile.
func multiDeviceServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{
		Compile:    fastOpts(),
		DeviceName: "lin3",
		Devices:    []devreg.Profile{{Name: "lin5", Device: topology.Linear(5)}},
		Workers:    4,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func TestServerMultiDeviceRouting(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	s, ts := multiDeviceServer(t)

	// Unknown device: 400 before any work.
	resp, raw := postJSON(t, ts.URL+"/v1/compile", CompileRequest{QASM: rxAProgram, Device: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown device status %d: %s", resp.StatusCode, raw)
	}

	// The same program lands in each device's own namespace.
	for _, dev := range []string{"", "lin5"} {
		resp, raw := postJSON(t, ts.URL+"/v1/compile", CompileRequest{QASM: rxAProgram, Device: dev})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("device %q status %d: %s", dev, resp.StatusCode, raw)
		}
		var out CompileResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		if out.Device != dev {
			t.Fatalf("device echo %q, want %q", out.Device, dev)
		}
	}
	def, err := s.Registry().Current("")
	if err != nil {
		t.Fatal(err)
	}
	lin5, err := s.Registry().Current("lin5")
	if err != nil {
		t.Fatal(err)
	}
	if def.Store == lin5.Store {
		t.Fatal("devices share a store")
	}
	if def.Store.Len() == 0 || lin5.Store.Len() == 0 {
		t.Fatalf("per-device stores: default %d entries, lin5 %d", def.Store.Len(), lin5.Store.Len())
	}

	// The devices endpoint lists both with distinct fingerprints.
	devs := getDevices(t, ts.URL)
	if devs.Default != "lin3" || len(devs.Devices) != 2 {
		t.Fatalf("devices response %+v", devs)
	}
	if devs.Devices[0].Fingerprint == devs.Devices[1].Fingerprint {
		t.Fatal("distinct devices share a fingerprint")
	}
	for _, d := range devs.Devices {
		if d.Epoch != 0 || d.Entries == 0 {
			t.Fatalf("device status %+v", d)
		}
	}
}

func getDevices(t *testing.T, url string) DevicesResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/devices")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out DevicesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerCalibrateEpochRoll is the subsystem's demo: warm a device,
// recalibrate with a ±2% drift, and watch the background roll re-cover
// every group in the new epoch — warm-seeded from the old epoch's pulses —
// while the next request serves warm at epoch 1.
func TestServerCalibrateEpochRoll(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	s, ts := newTestServer(t)

	// Warm epoch 0 with two distinct 1q groups.
	for _, prog := range []string{rxAProgram, rxBProgram} {
		if _, code := postCompile(t, ts.URL, CompileRequest{QASM: prog}); code != http.StatusOK {
			t.Fatalf("warmup status %d", code)
		}
	}
	epoch0 := s.Store().Snapshot()
	if len(epoch0.Entries) != 2 {
		t.Fatalf("epoch 0 has %d entries, want 2", len(epoch0.Entries))
	}

	// Bad calibrations are rejected.
	if resp, raw := postJSON(t, ts.URL+"/v1/devices/nope/calibrate", devreg.CalibrationUpdate{DriftPct: 2}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown device calibrate: %d %s", resp.StatusCode, raw)
	}
	if resp, raw := postJSON(t, ts.URL+"/v1/devices/default/calibrate", devreg.CalibrationUpdate{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty calibrate: %d %s", resp.StatusCode, raw)
	}

	resp, raw := postJSON(t, ts.URL+"/v1/devices/default/calibrate", devreg.CalibrationUpdate{DriftPct: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("calibrate status %d: %s", resp.StatusCode, raw)
	}
	var cal CalibrateResponse
	if err := json.Unmarshal(raw, &cal); err != nil {
		t.Fatal(err)
	}
	if cal.Epoch != 1 || cal.Planned != 2 {
		t.Fatalf("calibrate response %+v, want epoch 1 with 2 planned", cal)
	}

	// The roll runs on the worker pool in the background; wait for it.
	deadline := time.Now().Add(30 * time.Second)
	var dev devreg.DeviceStatus
	for {
		dev = getDevices(t, ts.URL).Devices[0]
		if !dev.Recompile.Active && dev.Epoch == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("roll did not finish: %+v", dev)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if dev.Recompile.Done != 2 || dev.Recompile.Failed != 0 {
		t.Fatalf("roll progress %+v, want 2 done", dev.Recompile)
	}
	// The acceptance invariant: every re-trained group warm-seeded from
	// its old-epoch pulse.
	if dev.Recompile.WarmSeeded != dev.Recompile.Done {
		t.Fatalf("roll seeded %d of %d re-trainings", dev.Recompile.WarmSeeded, dev.Recompile.Done)
	}
	// Iterations may legitimately be zero at the loose test fidelity: the
	// old pulse can still satisfy the target under a 2% drift, which is
	// the warm start working perfectly. The ±iteration economics are
	// pinned by BenchmarkEpochRollWarmVsCold at tighter fidelity.

	// Epoch 1 covers the same keys with re-trained pulses.
	epoch1 := s.Store().Snapshot()
	if len(epoch1.Entries) != 2 {
		t.Fatalf("epoch 1 has %d entries, want 2", len(epoch1.Entries))
	}
	for key, e0 := range epoch0.Entries {
		e1, ok := epoch1.Entries[key]
		if !ok {
			t.Fatalf("epoch 1 missing %q", key)
		}
		if e1.Pulse == e0.Pulse {
			t.Fatalf("entry %q was not re-trained (same pulse object)", key)
		}
	}

	// A repeat request serves warm from the new epoch and reports it.
	warm, code := postCompile(t, ts.URL, CompileRequest{QASM: rxAProgram})
	if code != http.StatusOK {
		t.Fatalf("post-roll status %d", code)
	}
	if !warm.WarmServed {
		t.Fatalf("post-roll request not warm: %+v", warm)
	}
	if warm.Epoch != 1 {
		t.Fatalf("post-roll epoch %d, want 1", warm.Epoch)
	}
	// The old epoch drained (no in-flight requests): it must be retired.
	if st := getDevices(t, ts.URL).Devices[0]; st.Draining {
		t.Fatalf("old epoch still draining: %+v", st)
	}
}

// TestServerCrossEpochSeedingDuringRoll pins the miss path while a roll is
// in flight: a fresh-epoch cache miss must warm-start from the previous
// epoch's index through the parent link (deterministically, by driving
// compile directly instead of racing the background pipeline).
func TestServerCrossEpochSeedingDuringRoll(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	s := New(Config{Compile: fastOpts(), Workers: 1})
	defer s.Close()
	progA := mustParseT(t, rxAProgram)
	progB := mustParseT(t, rxBProgram)
	if _, err := s.svc.Do(&compilesvc.Request{Prog: progA, NS: s.defaultNS()}); err != nil {
		t.Fatal(err)
	}
	// Open the epoch directly on the registry: no background pipeline
	// races this test.
	roll, err := s.Registry().Calibrate("", devreg.CalibrationUpdate{DriftPct: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer roll.Finish()

	res, err := s.svc.Do(&compilesvc.Request{Prog: progB, NS: roll.New})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resp.UncoveredUnique != 1 || res.Resp.WarmSeeded != 1 {
		t.Fatalf("fresh-epoch miss not cross-epoch seeded: %+v", res.Resp)
	}
	if res.Resp.Epoch != 1 {
		t.Fatalf("epoch %d, want 1", res.Resp.Epoch)
	}
}

// TestServerEpochRollUnderConcurrentTraffic is the race acceptance
// criterion: an epoch roll lands while concurrent clients compile, and
// every request must succeed (run under -race in CI).
func TestServerEpochRollUnderConcurrentTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	_, ts := newTestServer(t)
	if _, code := postCompile(t, ts.URL, CompileRequest{QASM: rxAProgram}); code != http.StatusOK {
		t.Fatal("warmup failed")
	}

	const clients = 6
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			prog := rxAProgram
			if i%2 == 1 {
				prog = rxBProgram
			}
			for k := 0; k < 3; k++ {
				if _, code := postCompile(t, ts.URL, CompileRequest{QASM: prog}); code != http.StatusOK {
					t.Errorf("client %d request %d: status %d", i, k, code)
				}
			}
		}(i)
	}
	close(start)
	// Two calibrations land mid-traffic.
	for _, drift := range []float64{1.5, -1} {
		if resp, raw := postJSON(t, ts.URL+"/v1/devices/default/calibrate",
			devreg.CalibrationUpdate{DriftPct: drift}); resp.StatusCode != http.StatusOK {
			t.Fatalf("calibrate: %d %s", resp.StatusCode, raw)
		}
	}
	wg.Wait()
	st := getStats(t, ts.URL)
	if st.Server.Failures != 0 || st.Server.Rejected != 0 {
		t.Fatalf("roll under traffic failed requests: %+v", st.Server)
	}
	if dev := getDevices(t, ts.URL).Devices[0]; dev.Epoch != 2 {
		t.Fatalf("device at epoch %d, want 2", dev.Epoch)
	}
}

// bootEntry builds a minimal valid entry for snapshot fixtures.
func bootEntry(i int) *precompile.Entry {
	p := pulse.New([]string{"x", "y"}, 12, 2.0)
	for c := range p.Amps {
		for s := range p.Amps[c] {
			p.Amps[c][s] = 0.01 * math.Sin(float64(i+c+s))
		}
	}
	return &precompile.Entry{Key: fmt.Sprintf("boot-%d", i), NumQubits: 1, Pulse: p, LatencyNs: 24}
}

// TestServerBootSnapshotReadiness pins the /healthz readiness gate: 503
// while the boot snapshot loads or after a fingerprint mismatch, 200 once
// a matching (or forced) snapshot is in.
func TestServerBootSnapshotReadiness(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "boot.snap")
	lib := precompile.NewLibrary()
	for i := 0; i < 3; i++ {
		e := bootEntry(i)
		lib.Entries[e.Key] = e
	}
	goodFP := devreg.Profile{Name: "lin3", Device: fastOpts().Device, Ham: fastOpts().Precompile.Ham}.Fingerprint()
	if err := libstore.SaveLibraryFingerprint(lib, path, libstore.FormatGob, goodFP); err != nil {
		t.Fatal(err)
	}

	waitHealth := func(s *Server, wantStatus string, wantCode int) HealthResponse {
		t.Helper()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			var out HealthResponse
			if derr := json.NewDecoder(resp.Body).Decode(&out); derr != nil {
				t.Fatal(derr)
			}
			resp.Body.Close()
			if out.Status == wantStatus {
				if resp.StatusCode != wantCode {
					t.Fatalf("status %q with code %d, want %d", out.Status, resp.StatusCode, wantCode)
				}
				return out
			}
			if time.Now().After(deadline) {
				t.Fatalf("healthz never reached %q: %+v", wantStatus, out)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Matching fingerprint: ready, entries loaded, snapshot age reported.
	s := New(Config{Compile: fastOpts(), DeviceName: "lin3", BootSnapshot: path, Workers: 1})
	h := waitHealth(s, "ok", http.StatusOK)
	if h.Boot == nil || !h.Boot.Loaded || h.Boot.Entries != 3 {
		t.Fatalf("boot health %+v", h.Boot)
	}
	if h.Boot.AgeSeconds < 0 {
		t.Fatalf("negative snapshot age %v", h.Boot.AgeSeconds)
	}
	if s.Store().Len() != 3 {
		t.Fatalf("store has %d entries after boot load", s.Store().Len())
	}
	s.Close()

	// Mismatched fingerprint (a different device's server): unready with
	// an explanatory error and nothing loaded — the regression the
	// snapshot identity exists to catch.
	mismatchOpts := fastOpts()
	mismatchOpts.Device = topology.Linear(4)
	bad := New(Config{Compile: mismatchOpts, DeviceName: "lin4", BootSnapshot: path, Workers: 1})
	h = waitHealth(bad, "error", http.StatusServiceUnavailable)
	if h.Boot == nil || h.Boot.Loaded || h.Boot.Error == "" {
		t.Fatalf("mismatch boot health %+v", h.Boot)
	}
	if bad.Store().Len() != 0 {
		t.Fatalf("mismatched snapshot loaded %d entries", bad.Store().Len())
	}
	bad.Close()

	// The -lib-force escape hatch loads it anyway and reports ready.
	forced := New(Config{Compile: mismatchOpts, DeviceName: "lin4",
		BootSnapshot: path, BootSnapshotForce: true, Workers: 1})
	h = waitHealth(forced, "ok", http.StatusOK)
	if h.Boot == nil || !h.Boot.Loaded || h.Boot.Entries != 3 {
		t.Fatalf("forced boot health %+v", h.Boot)
	}
	forced.Close()

	// No snapshot on disk yet: a cold boot is a ready boot.
	cold := New(Config{Compile: fastOpts(), BootSnapshot: filepath.Join(dir, "absent.snap"), Workers: 1})
	h = waitHealth(cold, "ok", http.StatusOK)
	if h.Boot == nil || h.Boot.Entries != 0 {
		t.Fatalf("cold boot health %+v", h.Boot)
	}
	cold.Close()
}

func mustParseT(t *testing.T, src string) *circuit.Circuit {
	t.Helper()
	prog, err := qasm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}
