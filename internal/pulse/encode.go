package pulse

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary snapshot encoding. Pulse libraries are persisted in bulk (the
// libstore snapshot path); the default gob struct encoding would work but
// gives no validation and no format stability across field renames. The
// versioned layout below is the stable wire form:
//
//	u8  version (binaryVersion)
//	f64 dt_ns
//	u32 channels
//	u32 segments
//	channels × (u32 len | bytes)   channel labels, UTF-8
//	channels × segments × f64      amplitudes, channel-major
//
// All integers and floats are little-endian.
const binaryVersion = 1

// maxBinaryDim bounds decoded channel/segment counts so a corrupt or
// hostile snapshot cannot trigger an enormous allocation.
const maxBinaryDim = 1 << 20

// MarshalBinary implements encoding.BinaryMarshaler.
func (p *Pulse) MarshalBinary() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteByte(binaryVersion)
	le := binary.LittleEndian
	var scratch [8]byte
	le.PutUint64(scratch[:], math.Float64bits(p.Dt))
	buf.Write(scratch[:])
	le.PutUint32(scratch[:4], uint32(p.Channels()))
	buf.Write(scratch[:4])
	le.PutUint32(scratch[:4], uint32(p.Segments()))
	buf.Write(scratch[:4])
	for _, l := range p.Labels {
		le.PutUint32(scratch[:4], uint32(len(l)))
		buf.Write(scratch[:4])
		buf.WriteString(l)
	}
	for _, ch := range p.Amps {
		for _, a := range ch {
			le.PutUint64(scratch[:], math.Float64bits(a))
			buf.Write(scratch[:])
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler and validates the
// decoded pulse.
func (p *Pulse) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	version, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("pulse: truncated binary encoding: %w", err)
	}
	if version != binaryVersion {
		return fmt.Errorf("pulse: unsupported binary version %d (want %d)", version, binaryVersion)
	}
	le := binary.LittleEndian
	var scratch [8]byte
	readF64 := func() (float64, error) {
		if _, err := io.ReadFull(r, scratch[:]); err != nil {
			return 0, fmt.Errorf("pulse: truncated binary encoding")
		}
		return math.Float64frombits(le.Uint64(scratch[:])), nil
	}
	readU32 := func() (int, error) {
		if _, err := io.ReadFull(r, scratch[:4]); err != nil {
			return 0, fmt.Errorf("pulse: truncated binary encoding")
		}
		return int(le.Uint32(scratch[:4])), nil
	}
	dt, err := readF64()
	if err != nil {
		return err
	}
	channels, err := readU32()
	if err != nil {
		return err
	}
	segments, err := readU32()
	if err != nil {
		return err
	}
	if channels < 0 || channels > maxBinaryDim || segments < 0 || segments > maxBinaryDim {
		return fmt.Errorf("pulse: implausible dimensions %d×%d", channels, segments)
	}
	labels := make([]string, channels)
	for i := range labels {
		n, err := readU32()
		if err != nil {
			return err
		}
		if n < 0 || n > maxBinaryDim || n > r.Len() {
			return fmt.Errorf("pulse: implausible label length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return fmt.Errorf("pulse: truncated binary encoding")
		}
		labels[i] = string(b)
	}
	if want := channels * segments * 8; r.Len() != want {
		return fmt.Errorf("pulse: amplitude payload %d bytes, want %d", r.Len(), want)
	}
	out := New(labels, segments, dt)
	for c := 0; c < channels; c++ {
		for s := 0; s < segments; s++ {
			a, err := readF64()
			if err != nil {
				return err
			}
			out.Amps[c][s] = a
		}
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*p = *out
	return nil
}

// GobEncode/GobDecode route gob through the versioned binary layout, so
// gob snapshots validate on decode and survive field renames.
func (p *Pulse) GobEncode() ([]byte, error) { return p.MarshalBinary() }

// GobDecode implements gob.GobDecoder.
func (p *Pulse) GobDecode(data []byte) error { return p.UnmarshalBinary(data) }
