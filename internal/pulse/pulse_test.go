package pulse

import (
	"encoding/json"
	"math"
	"testing"
)

func ramp(segments int) *Pulse {
	p := New([]string{"x", "y"}, segments, 2)
	for s := 0; s < segments; s++ {
		p.Amps[0][s] = float64(s)
		p.Amps[1][s] = -float64(s)
	}
	return p
}

func TestShapeAndDuration(t *testing.T) {
	p := New([]string{"x", "y"}, 10, 2.5)
	if p.Channels() != 2 || p.Segments() != 10 {
		t.Fatalf("shape %dx%d", p.Channels(), p.Segments())
	}
	if p.Duration() != 25 {
		t.Fatalf("Duration = %v", p.Duration())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadPulses(t *testing.T) {
	p := New([]string{"x"}, 4, 1)
	p.Dt = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero dt accepted")
	}
	q := New([]string{"x", "y"}, 4, 1)
	q.Amps[1] = q.Amps[1][:2]
	if err := q.Validate(); err == nil {
		t.Fatal("ragged channels accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := ramp(4)
	q := p.Clone()
	q.Amps[0][0] = 99
	if p.Amps[0][0] == 99 {
		t.Fatal("Clone aliases amplitudes")
	}
}

func TestClipAndMaxAbs(t *testing.T) {
	p := ramp(5) // amplitudes 0..4
	if p.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", p.MaxAbs())
	}
	n := p.Clip(2.5)
	if n != 4 { // samples 3,4 on both channels
		t.Fatalf("clipped %d samples, want 4", n)
	}
	if p.MaxAbs() != 2.5 {
		t.Fatalf("MaxAbs after clip = %v", p.MaxAbs())
	}
}

func TestResamplePreservesConstant(t *testing.T) {
	p := New([]string{"x"}, 8, 1)
	for s := range p.Amps[0] {
		p.Amps[0][s] = 0.7
	}
	q := p.Resample(20, 0.4)
	if q.Segments() != 20 || q.Dt != 0.4 {
		t.Fatal("resample shape wrong")
	}
	for _, a := range q.Amps[0] {
		if math.Abs(a-0.7) > 1e-12 {
			t.Fatalf("constant pulse distorted: %v", a)
		}
	}
}

func TestResampleRampEndpoints(t *testing.T) {
	p := ramp(10)
	q := p.Resample(5, 4)
	// A downsampled ramp stays monotone.
	for s := 1; s < q.Segments(); s++ {
		if q.Amps[0][s] < q.Amps[0][s-1] {
			t.Fatal("resampled ramp not monotone")
		}
	}
	if q.Duration() != 20 {
		t.Fatalf("resampled duration = %v", q.Duration())
	}
}

func TestResampleEmpty(t *testing.T) {
	p := New([]string{"x"}, 0, 1)
	q := p.Resample(4, 1)
	for _, a := range q.Amps[0] {
		if a != 0 {
			t.Fatal("resampling an empty pulse should yield zeros")
		}
	}
}

func TestConcat(t *testing.T) {
	a := ramp(3)
	b := ramp(2)
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Segments() != 5 {
		t.Fatalf("concat segments = %d", c.Segments())
	}
	if c.Amps[0][3] != 0 || c.Amps[0][4] != 1 {
		t.Fatalf("concat content wrong: %v", c.Amps[0])
	}
}

func TestConcatMismatches(t *testing.T) {
	a := New([]string{"x"}, 2, 1)
	b := New([]string{"y"}, 2, 1)
	if _, err := Concat(a, b); err == nil {
		t.Fatal("label mismatch accepted")
	}
	c := New([]string{"x"}, 2, 2)
	if _, err := Concat(a, c); err == nil {
		t.Fatal("dt mismatch accepted")
	}
}

func TestEnergy(t *testing.T) {
	p := New([]string{"x"}, 2, 3)
	p.Amps[0][0] = 2
	p.Amps[0][1] = 1
	if got := p.Energy(); math.Abs(got-15) > 1e-12 { // (4+1)*3
		t.Fatalf("Energy = %v, want 15", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := ramp(4)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Pulse
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q.Segments() != 4 || q.Channels() != 2 || q.Dt != 2 {
		t.Fatalf("round trip shape: %+v", q)
	}
	if q.Amps[0][3] != 3 {
		t.Fatal("round trip content")
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var q Pulse
	if err := json.Unmarshal([]byte(`{"labels":["x"],"amps":[[1,2]],"dt_ns":0}`), &q); err == nil {
		t.Fatal("invalid pulse decoded without error")
	}
}
