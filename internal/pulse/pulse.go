// Package pulse represents piecewise-constant control pulses — the output
// artifact of QOC compilation — with concatenation, resampling (the warm-
// start transport between groups of different durations), clipping and JSON
// serialization for pulse libraries.
package pulse

import (
	"encoding/json"
	"fmt"
	"math"
)

// Pulse is a piecewise-constant multi-channel waveform. Amps[c][s] is the
// amplitude of control channel c during segment s; every segment lasts Dt
// nanoseconds.
type Pulse struct {
	Labels []string    `json:"labels"`
	Amps   [][]float64 `json:"amps"`
	Dt     float64     `json:"dt_ns"`
}

// New allocates a zero pulse with the given channel labels and segment
// count.
func New(labels []string, segments int, dt float64) *Pulse {
	amps := make([][]float64, len(labels))
	for i := range amps {
		amps[i] = make([]float64, segments)
	}
	return &Pulse{Labels: append([]string(nil), labels...), Amps: amps, Dt: dt}
}

// Channels returns the number of control channels.
func (p *Pulse) Channels() int { return len(p.Amps) }

// Segments returns the number of time slices.
func (p *Pulse) Segments() int {
	if len(p.Amps) == 0 {
		return 0
	}
	return len(p.Amps[0])
}

// Duration returns the pulse length in nanoseconds.
func (p *Pulse) Duration() float64 { return p.Dt * float64(p.Segments()) }

// Clone returns a deep copy.
func (p *Pulse) Clone() *Pulse {
	out := New(p.Labels, p.Segments(), p.Dt)
	for c := range p.Amps {
		copy(out.Amps[c], p.Amps[c])
	}
	return out
}

// Validate checks rectangular shape and a positive time step.
func (p *Pulse) Validate() error {
	if p.Dt <= 0 {
		return fmt.Errorf("pulse: non-positive dt %v", p.Dt)
	}
	if len(p.Amps) != len(p.Labels) {
		return fmt.Errorf("pulse: %d channels vs %d labels", len(p.Amps), len(p.Labels))
	}
	for c := 1; c < len(p.Amps); c++ {
		if len(p.Amps[c]) != len(p.Amps[0]) {
			return fmt.Errorf("pulse: ragged channel %d: %d segments vs %d", c, len(p.Amps[c]), len(p.Amps[0]))
		}
	}
	return nil
}

// MaxAbs returns the largest absolute amplitude across all channels.
func (p *Pulse) MaxAbs() float64 {
	var m float64
	for _, ch := range p.Amps {
		for _, a := range ch {
			if ab := math.Abs(a); ab > m {
				m = ab
			}
		}
	}
	return m
}

// Clip limits every amplitude to [−bound, bound] in place and returns the
// number of clipped samples.
func (p *Pulse) Clip(bound float64) int {
	n := 0
	for _, ch := range p.Amps {
		for i, a := range ch {
			switch {
			case a > bound:
				ch[i] = bound
				n++
			case a < -bound:
				ch[i] = -bound
				n++
			}
		}
	}
	return n
}

// Resample returns a pulse with the requested segment count and time step
// whose waveform linearly interpolates this pulse's samples (segment
// midpoints). This is how a trained pulse seeds a group with a different
// latency (warm start across binary-search durations).
func (p *Pulse) Resample(segments int, dt float64) *Pulse {
	out := New(p.Labels, segments, dt)
	src := p.Segments()
	if src == 0 || segments == 0 {
		return out
	}
	for c := range p.Amps {
		for s := 0; s < segments; s++ {
			// Midpoint position of the new segment in [0, 1).
			pos := (float64(s) + 0.5) / float64(segments)
			x := pos*float64(src) - 0.5
			i0 := int(math.Floor(x))
			frac := x - float64(i0)
			i1 := i0 + 1
			if i0 < 0 {
				i0, i1, frac = 0, 0, 0
			}
			if i1 >= src {
				i0, i1, frac = src-1, src-1, 0
			}
			out.Amps[c][s] = p.Amps[c][i0]*(1-frac) + p.Amps[c][i1]*frac
		}
	}
	return out
}

// Concat appends q after p. The pulses must have identical channel labels
// and time step.
func Concat(p, q *Pulse) (*Pulse, error) {
	if len(p.Labels) != len(q.Labels) {
		return nil, fmt.Errorf("pulse: channel mismatch %d vs %d", len(p.Labels), len(q.Labels))
	}
	for i := range p.Labels {
		if p.Labels[i] != q.Labels[i] {
			return nil, fmt.Errorf("pulse: label mismatch %q vs %q", p.Labels[i], q.Labels[i])
		}
	}
	if p.Dt != q.Dt {
		return nil, fmt.Errorf("pulse: dt mismatch %v vs %v", p.Dt, q.Dt)
	}
	out := New(p.Labels, p.Segments()+q.Segments(), p.Dt)
	for c := range out.Amps {
		copy(out.Amps[c], p.Amps[c])
		copy(out.Amps[c][p.Segments():], q.Amps[c])
	}
	return out, nil
}

// Energy returns Σ u²·dt, a smoothness/power figure of merit used by
// regularized objectives and reports.
func (p *Pulse) Energy() float64 {
	var e float64
	for _, ch := range p.Amps {
		for _, a := range ch {
			e += a * a
		}
	}
	return e * p.Dt
}

// MarshalJSON/UnmarshalJSON use the natural field encoding; Pulse is a
// plain data holder, so the default marshaling applies. These methods exist
// only to validate on decode.
func (p *Pulse) UnmarshalJSON(data []byte) error {
	type alias Pulse
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*p = Pulse(a)
	return p.Validate()
}
