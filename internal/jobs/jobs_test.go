package jobs

import (
	"encoding/json"
	"testing"
	"time"
)

// fakeClock pins the store's clock for deterministic TTL tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestStore(cap int, ttl time.Duration) (*Store, *fakeClock) {
	s := NewStore(cap, ttl)
	c := &fakeClock{t: time.Unix(1700000000, 0)}
	s.now = c.now
	return s, c
}

func TestJobLifecycle(t *testing.T) {
	s, _ := newTestStore(8, time.Minute)
	j, err := s.Create("compile", "melbourne")
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued || j.ID == "" || j.CreatedUnixMs == 0 {
		t.Fatalf("created job %+v", j)
	}
	if !s.Start(j.ID) {
		t.Fatal("Start refused a queued job")
	}
	if s.Start(j.ID) {
		t.Fatal("Start accepted a running job")
	}
	if err := s.Finish(j.ID, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(j.ID)
	if !ok || got.State != StateDone || got.FinishedUnixMs == 0 {
		t.Fatalf("finished job %+v ok=%v", got, ok)
	}
	var res map[string]int
	if err := json.Unmarshal(got.Result, &res); err != nil || res["x"] != 1 {
		t.Fatalf("result %s err %v", got.Result, err)
	}
	// Terminal jobs are immutable: a late Fail must not clobber done.
	s.Fail(j.ID, "late")
	if got, _ := s.Get(j.ID); got.State != StateDone {
		t.Fatalf("Fail overwrote terminal state: %+v", got)
	}
	if !s.Delete(j.ID) {
		t.Fatal("Delete refused a terminal job")
	}
	if _, ok := s.Get(j.ID); ok {
		t.Fatal("job survived Delete")
	}
}

func TestCancelOnlyQueued(t *testing.T) {
	s, _ := newTestStore(8, time.Minute)
	j, _ := s.Create("compile", "")
	if !s.Cancel(j.ID) {
		t.Fatal("Cancel refused a queued job")
	}
	got, _ := s.Get(j.ID)
	if got.State != StateFailed || got.Error != "canceled" {
		t.Fatalf("canceled job %+v", got)
	}
	// A worker that raced the cancel must see Start refuse.
	if s.Start(j.ID) {
		t.Fatal("Start accepted a canceled job")
	}

	r, _ := s.Create("compile", "")
	s.Start(r.ID)
	if s.Cancel(r.ID) {
		t.Fatal("Cancel interrupted a running job")
	}
	if s.Delete(r.ID) {
		t.Fatal("Delete removed a live job")
	}
}

func TestTTLEviction(t *testing.T) {
	s, clock := newTestStore(8, time.Minute)
	j, _ := s.Create("compile", "")
	s.Start(j.ID)
	if err := s.Finish(j.ID, 1); err != nil {
		t.Fatal(err)
	}
	clock.advance(59 * time.Second)
	if _, ok := s.Get(j.ID); !ok {
		t.Fatal("terminal job evicted before TTL")
	}
	clock.advance(2 * time.Second)
	if _, ok := s.Get(j.ID); ok {
		t.Fatal("terminal job survived TTL")
	}
	// Live jobs never TTL out.
	live, _ := s.Create("compile", "")
	clock.advance(time.Hour)
	if _, ok := s.Get(live.ID); !ok {
		t.Fatal("queued job TTL-evicted")
	}
}

func TestCapacityRefusesWhenAllLive(t *testing.T) {
	s, _ := newTestStore(2, time.Minute)
	a, _ := s.Create("compile", "")
	if _, err := s.Create("compile", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("compile", ""); err != ErrFull {
		t.Fatalf("Create at capacity: err %v, want ErrFull", err)
	}
	// Finishing one makes room: the oldest terminal job is evicted even
	// inside its TTL when the store is saturated.
	s.Start(a.ID)
	s.Finish(a.ID, 1)
	c, err := s.Create("compile", "")
	if err != nil {
		t.Fatalf("Create after finish: %v", err)
	}
	if _, ok := s.Get(a.ID); ok {
		t.Fatal("terminal job not evicted under capacity pressure")
	}
	if _, ok := s.Get(c.ID); !ok {
		t.Fatal("new job missing")
	}
}

func TestFailQueuedSweep(t *testing.T) {
	s, _ := newTestStore(8, time.Minute)
	q1, _ := s.Create("compile", "")
	q2, _ := s.Create("circuit", "")
	r, _ := s.Create("compile", "")
	s.Start(r.ID)
	d, _ := s.Create("compile", "")
	s.Start(d.ID)
	s.Finish(d.ID, 1)

	if n := s.FailQueued("server shutting down"); n != 2 {
		t.Fatalf("FailQueued swept %d jobs, want 2", n)
	}
	for _, id := range []string{q1.ID, q2.ID} {
		got, _ := s.Get(id)
		if got.State != StateFailed || got.Error != "server shutting down" {
			t.Fatalf("queued job after sweep: %+v", got)
		}
	}
	if got, _ := s.Get(r.ID); got.State != StateRunning {
		t.Fatalf("running job swept: %+v", got)
	}
	if got, _ := s.Get(d.ID); got.State != StateDone {
		t.Fatalf("done job swept: %+v", got)
	}
	c := s.Counts()
	if c.Queued != 0 || c.Running != 1 || c.Done != 1 || c.Failed != 2 {
		t.Fatalf("counts after sweep: %+v", c)
	}
}

func TestCountsAndDiscard(t *testing.T) {
	s, _ := newTestStore(8, time.Minute)
	j, _ := s.Create("compile", "")
	if c := s.Counts(); c.Queued != 1 {
		t.Fatalf("counts %+v", c)
	}
	s.Discard(j.ID)
	if s.Len() != 0 {
		t.Fatalf("Len %d after Discard", s.Len())
	}
}
