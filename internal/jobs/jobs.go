// Package jobs is the routing tier's async job ledger: a bounded
// in-memory store of compile jobs submitted through the async API
// (POST /v1/compile?async=1 and /v1/circuits/compile?async=1), polled on
// GET /v1/jobs/{id} and canceled/reaped on DELETE /v1/jobs/{id}.
//
// A job moves queued → running → done|failed; queued jobs can additionally
// be canceled (→ failed, error "canceled") or bulk-failed at shutdown.
// Terminal jobs (done/failed) are TTL-evicted — the store is a ledger of
// recent work, not a durable queue — and the store is capacity-bounded:
// when, after evicting every expired terminal job, the store is still
// full, Create refuses and the caller answers 503 (the async analogue of
// the compile queue's admission control).
//
// The store holds no goroutines and never blocks: every method is one
// mutex-guarded state transition, so it is safe from handler goroutines,
// worker-pool callbacks, and shutdown paths concurrently.
package jobs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is one phase of the job lifecycle.
type State string

// The job lifecycle: queued → running → done | failed. Cancellation and
// shutdown move queued jobs directly to failed.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

func (s State) terminal() bool { return s == StateDone || s == StateFailed }

// Job is the wire representation served by GET /v1/jobs/{id}. All
// timestamps are Unix milliseconds.
type Job struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Device string `json:"device,omitempty"`
	State  State  `json:"state"`
	// Error carries the failure reason for failed jobs ("canceled" for
	// client cancellations, "server shutting down" for shutdown fails).
	Error string `json:"error,omitempty"`
	// Result is the completed compile/circuit response, present only on
	// done jobs.
	Result         json.RawMessage `json:"result,omitempty"`
	CreatedUnixMs  int64           `json:"created_unix_ms"`
	StartedUnixMs  int64           `json:"started_unix_ms,omitempty"`
	FinishedUnixMs int64           `json:"finished_unix_ms,omitempty"`
}

// Counts is a point-in-time census of the store by state (the job-state
// gauges behind /metrics and the stats/health endpoints).
type Counts struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
}

// ErrFull is returned by Create when the store is at capacity and no
// expired terminal job can be evicted to make room.
var ErrFull = errors.New("job store full")

type entry struct {
	job      Job
	finished time.Time // eviction clock for terminal jobs
}

// Store is the bounded, TTL-evicting job ledger.
type Store struct {
	mu   sync.Mutex
	jobs map[string]*entry
	cap  int
	ttl  time.Duration
	// now is the store clock, swappable in tests.
	now func() time.Time
}

// NewStore builds a store holding at most cap jobs, evicting terminal
// jobs ttl after they finish. cap <= 0 defaults to 1024; ttl <= 0
// defaults to 15 minutes.
func NewStore(cap int, ttl time.Duration) *Store {
	if cap <= 0 {
		cap = 1024
	}
	if ttl <= 0 {
		ttl = 15 * time.Minute
	}
	return &Store{jobs: make(map[string]*entry), cap: cap, ttl: ttl, now: time.Now}
}

// newID returns a fresh job identifier ("job-" + 16 hex chars).
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; ids only need to be
		// unique within one process lifetime, so fall back loudly-unique.
		panic(fmt.Sprintf("jobs: crypto/rand failed: %v", err))
	}
	return "job-" + hex.EncodeToString(b[:])
}

// evictExpiredLocked drops terminal jobs past their TTL. Callers hold mu.
func (s *Store) evictExpiredLocked(now time.Time) {
	for id, e := range s.jobs {
		if e.job.State.terminal() && now.Sub(e.finished) >= s.ttl {
			delete(s.jobs, id)
		}
	}
}

// evictOneTerminalLocked drops the oldest-finished terminal job to make
// room, returning false when every job is still live. Callers hold mu.
func (s *Store) evictOneTerminalLocked() bool {
	var oldest string
	var oldestAt time.Time
	for id, e := range s.jobs {
		if !e.job.State.terminal() {
			continue
		}
		if oldest == "" || e.finished.Before(oldestAt) {
			oldest, oldestAt = id, e.finished
		}
	}
	if oldest == "" {
		return false
	}
	delete(s.jobs, oldest)
	return true
}

// Create admits a new queued job, evicting expired (then, under pressure,
// the oldest) terminal jobs to stay within capacity. It returns ErrFull
// when the store is saturated with live jobs.
func (s *Store) Create(kind, device string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	s.evictExpiredLocked(now)
	if len(s.jobs) >= s.cap && !s.evictOneTerminalLocked() {
		return Job{}, ErrFull
	}
	j := Job{
		ID:            newID(),
		Kind:          kind,
		Device:        device,
		State:         StateQueued,
		CreatedUnixMs: now.UnixMilli(),
	}
	s.jobs[j.ID] = &entry{job: j}
	return j, nil
}

// Start transitions a queued job to running. It returns false when the
// job is missing or no longer queued (canceled, already failed) — the
// worker's signal to skip the work.
func (s *Store) Start(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.jobs[id]
	if !ok || e.job.State != StateQueued {
		return false
	}
	e.job.State = StateRunning
	e.job.StartedUnixMs = s.now().UnixMilli()
	return true
}

// Finish completes a job with its result (marshaled to JSON). A job that
// is already terminal is left untouched.
func (s *Store) Finish(id string, result any) error {
	raw, err := json.Marshal(result)
	if err != nil {
		s.Fail(id, fmt.Sprintf("result marshal failed: %v", err))
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.jobs[id]
	if !ok || e.job.State.terminal() {
		return nil
	}
	now := s.now()
	e.job.State = StateDone
	e.job.Result = raw
	e.job.FinishedUnixMs = now.UnixMilli()
	e.finished = now
	return nil
}

// Fail moves a queued or running job to failed with the given reason.
// Terminal jobs are left untouched (a cancellation that raced the worker
// keeps its "canceled" status).
func (s *Store) Fail(id, reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failLocked(id, reason)
}

func (s *Store) failLocked(id, reason string) {
	e, ok := s.jobs[id]
	if !ok || e.job.State.terminal() {
		return
	}
	now := s.now()
	e.job.State = StateFailed
	e.job.Error = reason
	e.job.FinishedUnixMs = now.UnixMilli()
	e.finished = now
}

// Cancel fails a queued job with error "canceled". It returns false when
// the job is missing or already past queued — running work is never
// interrupted (its training warms the shared library either way).
func (s *Store) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.jobs[id]
	if !ok || e.job.State != StateQueued {
		return false
	}
	s.failLocked(id, "canceled")
	return true
}

// Get returns a copy of the job. The copy's Result aliases the stored
// raw JSON, which is never mutated after Finish.
func (s *Store) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictExpiredLocked(s.now())
	e, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return e.job, true
}

// Delete removes a terminal job (the reap half of DELETE /v1/jobs/{id}).
// It returns false when the job is missing or still live.
func (s *Store) Delete(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.jobs[id]
	if !ok || !e.job.State.terminal() {
		return false
	}
	delete(s.jobs, id)
	return true
}

// Discard removes a job unconditionally — for the submit-error path,
// where the job record was created but its ID never reached the client.
func (s *Store) Discard(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
}

// FailQueued fails every queued job with the given reason — the shutdown
// sweep that keeps Close from stranding jobs in "queued" forever. It
// returns how many jobs it failed.
func (s *Store) FailQueued(reason string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, e := range s.jobs {
		if e.job.State == StateQueued {
			s.failLocked(id, reason)
			n++
		}
	}
	return n
}

// Counts censuses the store by state.
func (s *Store) Counts() Counts {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictExpiredLocked(s.now())
	var c Counts
	for _, e := range s.jobs {
		switch e.job.State {
		case StateQueued:
			c.Queued++
		case StateRunning:
			c.Running++
		case StateDone:
			c.Done++
		case StateFailed:
			c.Failed++
		}
	}
	return c
}

// Len reports the number of jobs currently held (all states).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}
