// Package cmat implements dense complex linear algebra for quantum optimal
// control: matrix arithmetic, Kronecker products, LU factorization, a
// Hermitian Jacobi eigensolver, a complex Schur decomposition, matrix
// exponentials and principal square roots.
//
// Matrices are dense, row-major []complex128. The package is the numerical
// substrate for every other package in this repository; it has no
// dependencies outside the standard library.
//
// Unless documented otherwise, functions return freshly allocated results
// and never alias their inputs. Dimension mismatches are programmer errors
// and panic; numerical failures (non-convergence, singularity) return errors.
package cmat

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense complex matrix with row-major storage.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols, element (i,j) at Data[i*Cols+j]
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("cmat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("cmat: ragged row %d: len %d want %d", i, len(r), c))
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) complex128 {
	m.boundsCheck(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v complex128) {
	m.boundsCheck(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) boundsCheck(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("cmat: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies a's elements into m. Shapes must match.
func (m *Matrix) CopyFrom(a *Matrix) {
	sameShape("CopyFrom", m, a)
	copy(m.Data, a.Data)
}

// SetIdentity overwrites m (which must be square) with the identity.
func (m *Matrix) SetIdentity() {
	mustSquare("SetIdentity", m)
	for i := range m.Data {
		m.Data[i] = 0
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
}

// IsSquare reports whether m is square.
func (m *Matrix) IsSquare() bool { return m.Rows == m.Cols }

// Equal reports exact element-wise equality of shape and data.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != other.Data[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports whether m and other have the same shape and all
// elements within tol of each other (absolute difference).
func (m *Matrix) EqualApprox(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if cmplx.Abs(v-other.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix with 4 decimal places, one row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			v := m.Data[i*m.Cols+j]
			fmt.Fprintf(&b, "(%8.4f%+8.4fi) ", real(v), imag(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Add returns a + b.
func Add(a, b *Matrix) *Matrix {
	sameShape("Add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a − b.
func Sub(a, b *Matrix) *Matrix {
	sameShape("Sub", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Scale returns s·a.
func Scale(s complex128, a *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = s * a.Data[i]
	}
	return out
}

// AddScaled returns a + s·b, a fused building block for Hamiltonian
// assembly H = H0 + Σ u_k H_k.
func AddScaled(a *Matrix, s complex128, b *Matrix) *Matrix {
	sameShape("AddScaled", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + s*b.Data[i]
	}
	return out
}

// AccumScaled adds s·b into a in place (a += s·b).
func AccumScaled(a *Matrix, s complex128, b *Matrix) {
	sameShape("AccumScaled", a, b)
	for i := range a.Data {
		a.Data[i] += s * b.Data[i]
	}
}

// Mul returns the matrix product a·b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("cmat: Mul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes dst = a·b without allocating. dst must have shape
// a.Rows × b.Cols and must not alias a or b. Square 2×2 and 4×4 products —
// the one- and two-qubit shapes that dominate every QOC workload — are
// dispatched to fully unrolled kernels; products with at least 8 output
// rows and columns (three-qubit groups and up) take the row-blocked
// path of gemm.go, which is bit-identical to the naive loop.
func MulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("cmat: MulInto shape mismatch")
	}
	n, k, p := a.Rows, a.Cols, b.Cols
	switch {
	case n == 2 && k == 2 && p == 2:
		mul2x2(dst.Data, a.Data, b.Data)
		return
	case n == 4 && k == 4 && p == 4:
		mul4x4(dst.Data, a.Data, b.Data)
		return
	case n >= gemmMinDim && p >= gemmMinDim:
		mulRows(dst, a, b, 0, n)
		return
	}
	mulNaive(dst, a, b)
}

// MulChain multiplies matrices left to right: MulChain(a,b,c) = a·b·c.
func MulChain(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("cmat: MulChain of zero matrices")
	}
	out := ms[0].Clone()
	for _, m := range ms[1:] {
		out = Mul(out, m)
	}
	return out
}

// Dagger returns the conjugate transpose a†.
func Dagger(a *Matrix) *Matrix {
	out := New(a.Cols, a.Rows)
	DaggerInto(out, a)
	return out
}

// DaggerInto computes dst = a† without allocating. dst must have shape
// a.Cols × a.Rows and must not alias a. Large operands (both dims ≥ 8)
// transpose in cache blocks; the element values are identical either way.
func DaggerInto(dst, a *Matrix) {
	if dst.Rows != a.Cols || dst.Cols != a.Rows {
		panic(fmt.Sprintf("cmat: DaggerInto shape mismatch %dx%d vs %dx%d", dst.Rows, dst.Cols, a.Rows, a.Cols))
	}
	if a.Rows >= gemmMinDim && a.Cols >= gemmMinDim {
		daggerBlocked(dst, a)
		return
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			v := a.Data[i*a.Cols+j]
			dst.Data[j*a.Rows+i] = complex(real(v), -imag(v))
		}
	}
}

// Transpose returns aᵀ (no conjugation).
func Transpose(a *Matrix) *Matrix {
	out := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[j*a.Rows+i] = a.Data[i*a.Cols+j]
		}
	}
	return out
}

// Conj returns the element-wise complex conjugate.
func Conj(a *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = cmplx.Conj(v)
	}
	return out
}

// Trace returns Σᵢ aᵢᵢ. Panics if a is not square.
func Trace(a *Matrix) complex128 {
	mustSquare("Trace", a)
	var t complex128
	for i := 0; i < a.Rows; i++ {
		t += a.Data[i*a.Cols+i]
	}
	return t
}

// MulABtInto computes dst = a·bᵀ (no conjugation) without allocating or
// forming bᵀ: dst[i][j] = Σₗ a[i][l]·b[j][l], a row-dot-row product that
// walks both operands contiguously. a.Cols must equal b.Cols; dst must be
// a.Rows × b.Rows and must not alias a or b.
func MulABtInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("cmat: MulABtInto shape mismatch")
	}
	if a.Rows >= gemmMinDim && b.Rows >= gemmMinDim {
		mulABtRows(dst, a, b, 0, a.Rows)
		return
	}
	k := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*b.Rows : (i+1)*b.Rows]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s complex128
			for l, av := range arow {
				s += av * brow[l]
			}
			drow[j] = s
		}
	}
}

// MulConjInto computes dst = conj(a)·b without allocating or forming
// conj(a). Shapes follow MulInto's rules; dst must not alias a or b.
func MulConjInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("cmat: MulConjInto shape mismatch")
	}
	n, k, p := a.Rows, a.Cols, b.Cols
	if n >= gemmMinDim && p >= gemmMinDim {
		mulConjRows(dst, a, b, 0, n)
		return
	}
	for i := 0; i < n; i++ {
		row := dst.Data[i*p : (i+1)*p]
		for j := range row {
			row[j] = 0
		}
		for l := 0; l < k; l++ {
			v := a.Data[i*k+l]
			if v == 0 {
				continue
			}
			av := complex(real(v), -imag(v))
			brow := b.Data[l*p : (l+1)*p]
			for j, bv := range brow {
				row[j] += av * bv
			}
		}
	}
}

// TraceMulDagger returns Tr(a†·b) = Σᵢⱼ conj(aᵢⱼ)·bᵢⱼ without forming the
// product — the allocation-free inner product behind gate fidelity. Shapes
// must match.
func TraceMulDagger(a, b *Matrix) complex128 {
	sameShape("TraceMulDagger", a, b)
	var t complex128
	for i, v := range a.Data {
		t += complex(real(v), -imag(v)) * b.Data[i]
	}
	return t
}

// Kron returns the Kronecker (tensor) product a ⊗ b.
func Kron(a, b *Matrix) *Matrix {
	out := New(a.Rows*b.Rows, a.Cols*b.Cols)
	for ia := 0; ia < a.Rows; ia++ {
		for ja := 0; ja < a.Cols; ja++ {
			av := a.Data[ia*a.Cols+ja]
			if av == 0 {
				continue
			}
			for ib := 0; ib < b.Rows; ib++ {
				dstRow := (ia*b.Rows + ib) * out.Cols
				srcRow := ib * b.Cols
				for jb := 0; jb < b.Cols; jb++ {
					out.Data[dstRow+ja*b.Cols+jb] = av * b.Data[srcRow+jb]
				}
			}
		}
	}
	return out
}

// KronChain returns the Kronecker product of all arguments left to right.
func KronChain(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("cmat: KronChain of zero matrices")
	}
	out := ms[0].Clone()
	for _, m := range ms[1:] {
		out = Kron(out, m)
	}
	return out
}

// FrobeniusNorm returns √Σ|aᵢⱼ|².
func FrobeniusNorm(a *Matrix) float64 {
	var s float64
	for _, v := range a.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// L1Norm returns Σ|aᵢⱼ| (entry-wise, the paper's d1 distance kernel).
func L1Norm(a *Matrix) float64 {
	var s float64
	for _, v := range a.Data {
		s += cmplx.Abs(v)
	}
	return s
}

// MaxAbs returns max |aᵢⱼ|.
func MaxAbs(a *Matrix) float64 {
	var s float64
	for _, v := range a.Data {
		if av := cmplx.Abs(v); av > s {
			s = av
		}
	}
	return s
}

// OneNorm returns the induced 1-norm (max absolute column sum), used by the
// Padé scaling heuristic in Expm.
func OneNorm(a *Matrix) float64 {
	var best float64
	for j := 0; j < a.Cols; j++ {
		var s float64
		for i := 0; i < a.Rows; i++ {
			s += cmplx.Abs(a.Data[i*a.Cols+j])
		}
		if s > best {
			best = s
		}
	}
	return best
}

// IsHermitian reports whether a equals its conjugate transpose within tol.
func IsHermitian(a *Matrix, tol float64) bool {
	if !a.IsSquare() {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		for j := i; j < a.Cols; j++ {
			if cmplx.Abs(a.Data[i*a.Cols+j]-cmplx.Conj(a.Data[j*a.Cols+i])) > tol {
				return false
			}
		}
	}
	return true
}

// IsUnitary reports whether a†a = I within tol (Frobenius norm of residual).
func IsUnitary(a *Matrix, tol float64) bool {
	if !a.IsSquare() {
		return false
	}
	res := Sub(Mul(Dagger(a), a), Identity(a.Rows))
	return FrobeniusNorm(res) <= tol
}

func sameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("cmat: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

func mustSquare(op string, a *Matrix) {
	if !a.IsSquare() {
		panic(fmt.Sprintf("cmat: %s requires square matrix, got %dx%d", op, a.Rows, a.Cols))
	}
}
