package cmat

import "math"

// Small-dimension kernels. The QOC workloads are overwhelmingly 2×2 (one
// qubit) and 4×4 (two qubits): every segment of every optimizer evaluation
// multiplies and diagonalizes matrices of exactly these shapes, so MulInto
// and EigenHermitianInto dispatch to the unrolled forms below. The kernels
// accumulate products left to right in ascending-index order, matching the
// generic loops, so results are numerically identical across paths.

// mul2x2 computes dst = a·b for row-major 2×2 complex matrices. Slices must
// not alias.
func mul2x2(dst, a, b []complex128) {
	b00, b01 := b[0], b[1]
	b10, b11 := b[2], b[3]
	a00, a01 := a[0], a[1]
	a10, a11 := a[2], a[3]
	dst[0] = a00*b00 + a01*b10
	dst[1] = a00*b01 + a01*b11
	dst[2] = a10*b00 + a11*b10
	dst[3] = a10*b01 + a11*b11
}

// mul4x4 computes dst = a·b for row-major 4×4 complex matrices. Slices must
// not alias.
func mul4x4(dst, a, b []complex128) {
	b00, b01, b02, b03 := b[0], b[1], b[2], b[3]
	b10, b11, b12, b13 := b[4], b[5], b[6], b[7]
	b20, b21, b22, b23 := b[8], b[9], b[10], b[11]
	b30, b31, b32, b33 := b[12], b[13], b[14], b[15]
	for i := 0; i < 4; i++ {
		a0, a1, a2, a3 := a[i*4], a[i*4+1], a[i*4+2], a[i*4+3]
		dst[i*4+0] = a0*b00 + a1*b10 + a2*b20 + a3*b30
		dst[i*4+1] = a0*b01 + a1*b11 + a2*b21 + a3*b31
		dst[i*4+2] = a0*b02 + a1*b12 + a2*b22 + a3*b32
		dst[i*4+3] = a0*b03 + a1*b13 + a2*b23 + a3*b33
	}
}

// eigenHermitian2x2 writes the closed-form spectral decomposition of the
// Hermitian 2×2 matrix a into out: Values ascending, Vectors unitary with
// column j the eigenvector of Values[j]. The eigenvector formulation is
// chosen per eigenvalue so the un-normalized vector always has norm ≥ the
// off-diagonal magnitude — no cancellation for near-diagonal inputs.
func eigenHermitian2x2(a *Matrix, out *HermitianEigen) {
	p := real(a.Data[0]) // a00, real by Hermiticity
	q := real(a.Data[3]) // a11
	b := a.Data[1]       // a01 = conj(a10)
	// hypot, not sqrt of squares: |b| must survive magnitudes whose square
	// under- or overflows float64.
	babs := math.Hypot(real(b), imag(b))
	v := out.Vectors
	if babs == 0 {
		if p <= q {
			out.Values[0], out.Values[1] = p, q
			v.Data[0], v.Data[1], v.Data[2], v.Data[3] = 1, 0, 0, 1
		} else {
			out.Values[0], out.Values[1] = q, p
			v.Data[0], v.Data[1], v.Data[2], v.Data[3] = 0, 1, 1, 0
		}
		return
	}
	half := (p + q) / 2
	delta := (p - q) / 2
	r := math.Hypot(delta, babs)
	out.Values[0] = half - r
	out.Values[1] = half + r
	// For delta ≥ 0 the row-1 nullspace form (b, λ−p) is well-conditioned
	// for λ₀ and the row-2 form (λ−q, conj(b)) for λ₁; delta < 0 swaps the
	// roles. Both share the same norm √(|b|² + (r+|delta|)²).
	norm := math.Hypot(babs, r+math.Abs(delta))
	inv := complex(1/norm, 0)
	bc := complex(real(b), -imag(b))
	if delta >= 0 {
		// v0 = (b, −(r+delta)), v1 = (r+delta, conj(b)).
		v.Data[0] = b * inv
		v.Data[2] = complex(-(r + delta), 0) * inv
		v.Data[1] = complex(r+delta, 0) * inv
		v.Data[3] = bc * inv
	} else {
		// v0 = (delta−r, conj(b)), v1 = (b, r−delta).
		v.Data[0] = complex(delta-r, 0) * inv
		v.Data[2] = bc * inv
		v.Data[1] = b * inv
		v.Data[3] = complex(r-delta, 0) * inv
	}
}
