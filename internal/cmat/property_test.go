package cmat

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) for the numerical core: each checks
// a mathematical identity on randomized inputs.

func qcfg(n int) *quick.Config { return &quick.Config{MaxCount: n} }

func TestPropExpmUnitaryForSkewHermitian(t *testing.T) {
	r := rng(101)
	f := func(seed int64) bool {
		h := RandomHermitian(r, 3)
		u, err := Expm(Scale(1i, h))
		if err != nil {
			return false
		}
		return IsUnitary(u, 1e-9)
	}
	if err := quick.Check(f, qcfg(25)); err != nil {
		t.Fatal(err)
	}
}

func TestPropExpmInverse(t *testing.T) {
	// exp(A)·exp(−A) = I for any A.
	r := rng(102)
	f := func(seed int64) bool {
		a := Scale(0.7, RandomGinibre(r, 3))
		ea, err1 := Expm(a)
		em, err2 := Expm(Scale(-1, a))
		if err1 != nil || err2 != nil {
			return false
		}
		return Mul(ea, em).EqualApprox(Identity(3), 1e-9)
	}
	if err := quick.Check(f, qcfg(25)); err != nil {
		t.Fatal(err)
	}
}

func TestPropExpmDetTraceIdentity(t *testing.T) {
	// det(exp(A)) = exp(tr(A)).
	r := rng(103)
	f := func(seed int64) bool {
		a := Scale(0.5, RandomGinibre(r, 3))
		ea, err := Expm(a)
		if err != nil {
			return false
		}
		d, err := Det(ea)
		if err != nil {
			return false
		}
		return cmplx.Abs(d-cmplx.Exp(Trace(a))) < 1e-8
	}
	if err := quick.Check(f, qcfg(25)); err != nil {
		t.Fatal(err)
	}
}

func TestPropEigenvaluesSumToTrace(t *testing.T) {
	r := rng(104)
	f := func(seed int64) bool {
		a := RandomGinibre(r, 4)
		vals, err := Eigenvalues(a)
		if err != nil {
			return false
		}
		var sum complex128
		for _, v := range vals {
			sum += v
		}
		return cmplx.Abs(sum-Trace(a)) < 1e-8
	}
	if err := quick.Check(f, qcfg(25)); err != nil {
		t.Fatal(err)
	}
}

func TestPropEigenvaluesProductIsDet(t *testing.T) {
	r := rng(105)
	f := func(seed int64) bool {
		a := RandomGinibre(r, 3)
		vals, err := Eigenvalues(a)
		if err != nil {
			return false
		}
		prod := complex(1, 0)
		for _, v := range vals {
			prod *= v
		}
		d, err := Det(a)
		if err != nil {
			return false
		}
		return cmplx.Abs(prod-d) < 1e-8*(1+cmplx.Abs(d))
	}
	if err := quick.Check(f, qcfg(25)); err != nil {
		t.Fatal(err)
	}
}

func TestPropSimilarityInvarianceOfEigenvalues(t *testing.T) {
	// Eigenvalues are invariant under unitary similarity.
	r := rng(106)
	f := func(seed int64) bool {
		h := RandomHermitian(r, 4)
		u := RandomUnitary(r, 4)
		e1, err1 := EigenHermitian(h)
		e2, err2 := EigenHermitian(MulChain(u, h, Dagger(u)))
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range e1.Values {
			if math.Abs(e1.Values[i]-e2.Values[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg(20)); err != nil {
		t.Fatal(err)
	}
}

func TestPropKronDagger(t *testing.T) {
	// (A⊗B)† = A†⊗B†.
	r := rng(107)
	f := func(seed int64) bool {
		a := RandomGinibre(r, 2)
		b := RandomGinibre(r, 3)
		return Dagger(Kron(a, b)).EqualApprox(Kron(Dagger(a), Dagger(b)), 1e-12)
	}
	if err := quick.Check(f, qcfg(25)); err != nil {
		t.Fatal(err)
	}
}

func TestPropKronTrace(t *testing.T) {
	// tr(A⊗B) = tr(A)·tr(B).
	r := rng(108)
	f := func(seed int64) bool {
		a := RandomGinibre(r, 2)
		b := RandomGinibre(r, 3)
		return cmplx.Abs(Trace(Kron(a, b))-Trace(a)*Trace(b)) < 1e-10
	}
	if err := quick.Check(f, qcfg(25)); err != nil {
		t.Fatal(err)
	}
}

func TestPropSolveConsistentWithInverse(t *testing.T) {
	r := rng(109)
	f := func(seed int64) bool {
		a := RandomGinibre(r, 4)
		b := RandomGinibre(r, 4)
		x, err1 := Solve(a, b)
		inv, err2 := Inverse(a)
		if err1 != nil || err2 != nil {
			return false
		}
		return x.EqualApprox(Mul(inv, b), 1e-8)
	}
	if err := quick.Check(f, qcfg(20)); err != nil {
		t.Fatal(err)
	}
}

func TestPropSqrtmSquares(t *testing.T) {
	// For positive-definite H = G†G + I, sqrtm(H)² = H.
	r := rng(110)
	f := func(seed int64) bool {
		g := RandomGinibre(r, 3)
		h := Add(Mul(Dagger(g), g), Identity(3))
		s, err := Sqrtm(h)
		if err != nil {
			return false
		}
		return Mul(s, s).EqualApprox(h, 1e-7)
	}
	if err := quick.Check(f, qcfg(20)); err != nil {
		t.Fatal(err)
	}
}

func TestPropFrobeniusUnitaryInvariance(t *testing.T) {
	// ‖U·A‖_F = ‖A‖_F for unitary U.
	r := rng(111)
	f := func(seed int64) bool {
		a := RandomGinibre(r, 4)
		u := RandomUnitary(r, 4)
		return math.Abs(FrobeniusNorm(Mul(u, a))-FrobeniusNorm(a)) < 1e-9
	}
	if err := quick.Check(f, qcfg(25)); err != nil {
		t.Fatal(err)
	}
}

func TestPropHessenbergIdempotentOnHessenberg(t *testing.T) {
	// Reducing an already-Hessenberg matrix must not change it much
	// structurally: the result is still Hessenberg and similar to it.
	r := rng(112)
	f := func(seed int64) bool {
		a := RandomGinibre(r, 4)
		h1, _ := Hessenberg(a)
		h2, q2 := Hessenberg(h1)
		if !IsUnitary(q2, 1e-9) {
			return false
		}
		return MulChain(q2, h2, Dagger(q2)).EqualApprox(h1, 1e-9)
	}
	if err := quick.Check(f, qcfg(15)); err != nil {
		t.Fatal(err)
	}
}

func TestPropLUDeterminantMultiplicative(t *testing.T) {
	// det(AB) = det(A)·det(B).
	r := rng(113)
	f := func(seed int64) bool {
		a := RandomGinibre(r, 3)
		b := RandomGinibre(r, 3)
		da, err1 := Det(a)
		db, err2 := Det(b)
		dab, err3 := Det(Mul(a, b))
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return cmplx.Abs(dab-da*db) < 1e-8*(1+cmplx.Abs(da*db))
	}
	if err := quick.Check(f, qcfg(25)); err != nil {
		t.Fatal(err)
	}
}

func TestPropRandomUnitaryComposes(t *testing.T) {
	// The product of Haar unitaries is unitary; daggers invert.
	r := rng(114)
	f := func(seed int64) bool {
		u := RandomUnitary(r, 3)
		v := RandomUnitary(r, 3)
		w := Mul(u, v)
		if !IsUnitary(w, 1e-9) {
			return false
		}
		return Mul(w, Dagger(w)).EqualApprox(Identity(3), 1e-9)
	}
	if err := quick.Check(f, qcfg(25)); err != nil {
		t.Fatal(err)
	}
}
