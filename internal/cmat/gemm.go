package cmat

// Blocked complex GEMM. The unrolled 2×2/4×4 kernels in kernels.go cover
// the one- and two-qubit shapes; everything bigger (three-qubit gate groups
// are 8×8, the brute-force baseline goes to 32×32) used to fall onto the
// naive single-row saxpy loop. The kernels here block the output space by
// rows: dst = a·b walks four A rows per pass so every B row is loaded once
// per four rows of output instead of once per row, quartering the dominant
// memory traffic. (Register-resident accumulator tiles — the textbook GEMM
// shape — were measured slower here: 2×4 complex128 tiles need 16 scalar
// registers for the accumulators alone, the compiler spills, and the tiled
// loop loses to the naive one. Row blocking keeps the inner loop a plain
// contiguous saxpy the compiler handles well.) A·Bᵀ row-dot-row products
// use a 2×2 accumulator tile instead — four accumulators fit in registers
// and each pass streams two A rows against two B rows contiguously.
//
// Bit-exactness contract: for every output element (i, j) the blocked path
// performs the same floating-point operations in the same order as the
// naive loop — k ascending, one fused accumulate per nonzero a[i][l], with
// the identical `a[i][l] == 0` skip — so blocked results are bit-identical
// to the naive reference, and the dim ≥ 8 dispatch in MulInto changes no
// observable value anywhere in the system. The same holds per element for
// the conj(A)·B and A·Bᵀ variants below (A·Bᵀ has no zero-skip in either
// arm, matching its naive form).
//
// MulIntoParallel adds an optional bounded worker pool over disjoint blocks
// of output rows (package-level SetWorkers, default 1 = sequential). Blocks
// never overlap and every element is computed by the same code regardless
// of which worker runs it, so the parallel path is bit-identical by
// construction.

import (
	"sync"
	"sync/atomic"
)

const (
	// gemmMinDim routes MulInto and friends onto the blocked path: below it
	// the unrolled kernels or the naive loop win (row-block bookkeeping
	// costs more than it saves on a 4×4).
	gemmMinDim = 8
	// gemmRowBlock is the parallel work-unit granularity in output rows:
	// big enough that a unit amortizes the handoff, small enough that a
	// 16-row product still splits across two workers.
	gemmRowBlock = 8
)

// gemmWorkers is the bounded pool size used by MulIntoParallel; 1 (the
// default) keeps every multiply sequential.
var gemmWorkers atomic.Int32

func init() { gemmWorkers.Store(1) }

// SetWorkers bounds the worker pool MulIntoParallel fans output-row blocks
// across. Values below 1 are clamped to 1 (sequential). The setting is
// process-wide and safe to change concurrently with multiplies; in-flight
// calls keep the count they started with.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	gemmWorkers.Store(int32(n))
}

// Workers returns the current MulIntoParallel pool bound.
func Workers() int { return int(gemmWorkers.Load()) }

// mulRows computes rows [i0, i1) of dst = a·b, four output rows per B-row
// pass. Shapes are the caller's responsibility. Per output element the
// k-loop runs ascending with the naive loop's exact zero-skip, so results
// are bit-identical to mulNaive for any [i0, i1) split.
func mulRows(dst, a, b *Matrix, i0, i1 int) {
	k, p := a.Cols, b.Cols
	i := i0
	for ; i+3 < i1; i += 4 {
		r0 := dst.Data[i*p : (i+1)*p]
		r1 := dst.Data[(i+1)*p : (i+2)*p]
		r2 := dst.Data[(i+2)*p : (i+3)*p]
		r3 := dst.Data[(i+3)*p : (i+4)*p]
		for j := range r0 {
			r0[j], r1[j], r2[j], r3[j] = 0, 0, 0, 0
		}
		a0 := a.Data[i*k : (i+1)*k]
		a1 := a.Data[(i+1)*k : (i+2)*k]
		a2 := a.Data[(i+2)*k : (i+3)*k]
		a3 := a.Data[(i+3)*k : (i+4)*k]
		for l := 0; l < k; l++ {
			brow := b.Data[l*p : (l+1)*p]
			av0, av1, av2, av3 := a0[l], a1[l], a2[l], a3[l]
			if av0 != 0 && av1 != 0 && av2 != 0 && av3 != 0 {
				// Dense fast path: unitaries and propagators rarely hold
				// exact zeros, so this fused loop is the one that runs.
				for j, bv := range brow {
					r0[j] += av0 * bv
					r1[j] += av1 * bv
					r2[j] += av2 * bv
					r3[j] += av3 * bv
				}
				continue
			}
			if av0 != 0 {
				for j, bv := range brow {
					r0[j] += av0 * bv
				}
			}
			if av1 != 0 {
				for j, bv := range brow {
					r1[j] += av1 * bv
				}
			}
			if av2 != 0 {
				for j, bv := range brow {
					r2[j] += av2 * bv
				}
			}
			if av3 != 0 {
				for j, bv := range brow {
					r3[j] += av3 * bv
				}
			}
		}
	}
	for ; i < i1; i++ {
		row := dst.Data[i*p : (i+1)*p]
		for j := range row {
			row[j] = 0
		}
		arow := a.Data[i*k : (i+1)*k]
		for l := 0; l < k; l++ {
			if av := arow[l]; av != 0 {
				brow := b.Data[l*p : (l+1)*p]
				for j, bv := range brow {
					row[j] += av * bv
				}
			}
		}
	}
}

// mulNaive is the pre-blocking generic loop, kept as the sub-threshold
// path, the bit-equivalence reference for the property tests, and the
// "before" arm of the GEMM benchmarks.
func mulNaive(dst, a, b *Matrix) {
	n, k, p := a.Rows, a.Cols, b.Cols
	for i := 0; i < n; i++ {
		row := dst.Data[i*p : (i+1)*p]
		for j := range row {
			row[j] = 0
		}
		for l := 0; l < k; l++ {
			av := a.Data[i*k+l]
			if av == 0 {
				continue
			}
			brow := b.Data[l*p : (l+1)*p]
			for j, bv := range brow {
				row[j] += av * bv
			}
		}
	}
}

// MulIntoParallel computes dst = a·b like MulInto, fanning blocks of
// output rows across the bounded SetWorkers pool. Blocks are disjoint and
// every element is computed by the same kernel as the sequential path, so
// the result is bit-identical to MulInto for any worker count. Products
// too small to split (or a pool of 1) run sequentially inline.
func MulIntoParallel(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("cmat: MulIntoParallel shape mismatch")
	}
	n, p := a.Rows, b.Cols
	w := Workers()
	blocks := (n + gemmRowBlock - 1) / gemmRowBlock
	if w > blocks {
		w = blocks
	}
	if w <= 1 || n < gemmMinDim || p < gemmMinDim {
		MulInto(dst, a, b)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				bi := int(next.Add(1)) - 1
				if bi >= blocks {
					return
				}
				lo := bi * gemmRowBlock
				hi := lo + gemmRowBlock
				if hi > n {
					hi = n
				}
				mulRows(dst, a, b, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// mulConjRows computes rows [i0, i1) of dst = conj(a)·b with the same
// four-row blocking. Per element it conjugates a[i][l] after the zero test
// on the raw value, exactly as the naive MulConjInto loop does.
func mulConjRows(dst, a, b *Matrix, i0, i1 int) {
	k, p := a.Cols, b.Cols
	i := i0
	for ; i+3 < i1; i += 4 {
		r0 := dst.Data[i*p : (i+1)*p]
		r1 := dst.Data[(i+1)*p : (i+2)*p]
		r2 := dst.Data[(i+2)*p : (i+3)*p]
		r3 := dst.Data[(i+3)*p : (i+4)*p]
		for j := range r0 {
			r0[j], r1[j], r2[j], r3[j] = 0, 0, 0, 0
		}
		a0 := a.Data[i*k : (i+1)*k]
		a1 := a.Data[(i+1)*k : (i+2)*k]
		a2 := a.Data[(i+2)*k : (i+3)*k]
		a3 := a.Data[(i+3)*k : (i+4)*k]
		for l := 0; l < k; l++ {
			brow := b.Data[l*p : (l+1)*p]
			v0, v1, v2, v3 := a0[l], a1[l], a2[l], a3[l]
			if v0 != 0 && v1 != 0 && v2 != 0 && v3 != 0 {
				av0 := complex(real(v0), -imag(v0))
				av1 := complex(real(v1), -imag(v1))
				av2 := complex(real(v2), -imag(v2))
				av3 := complex(real(v3), -imag(v3))
				for j, bv := range brow {
					r0[j] += av0 * bv
					r1[j] += av1 * bv
					r2[j] += av2 * bv
					r3[j] += av3 * bv
				}
				continue
			}
			if v0 != 0 {
				av := complex(real(v0), -imag(v0))
				for j, bv := range brow {
					r0[j] += av * bv
				}
			}
			if v1 != 0 {
				av := complex(real(v1), -imag(v1))
				for j, bv := range brow {
					r1[j] += av * bv
				}
			}
			if v2 != 0 {
				av := complex(real(v2), -imag(v2))
				for j, bv := range brow {
					r2[j] += av * bv
				}
			}
			if v3 != 0 {
				av := complex(real(v3), -imag(v3))
				for j, bv := range brow {
					r3[j] += av * bv
				}
			}
		}
	}
	for ; i < i1; i++ {
		row := dst.Data[i*p : (i+1)*p]
		for j := range row {
			row[j] = 0
		}
		arow := a.Data[i*k : (i+1)*k]
		for l := 0; l < k; l++ {
			v := arow[l]
			if v == 0 {
				continue
			}
			av := complex(real(v), -imag(v))
			brow := b.Data[l*p : (l+1)*p]
			for j, bv := range brow {
				row[j] += av * bv
			}
		}
	}
}

// mulABtRows computes rows [i0, i1) of dst = a·bᵀ with 2×2 accumulator
// tiles: each pass streams two contiguous A rows against two contiguous B
// rows, and the four complex accumulators stay in registers. The naive
// MulABtInto has no zero-skip, so neither does this.
func mulABtRows(dst, a, b *Matrix, i0, i1 int) {
	k, br := a.Cols, b.Rows
	i := i0
	for ; i+1 < i1; i += 2 {
		a0 := a.Data[i*k : (i+1)*k]
		a1 := a.Data[(i+1)*k : (i+2)*k]
		j := 0
		for ; j+1 < br; j += 2 {
			b0 := b.Data[j*k : (j+1)*k]
			b1 := b.Data[(j+1)*k : (j+2)*k]
			var c00, c01, c10, c11 complex128
			for l := 0; l < k; l++ {
				av0, av1 := a0[l], a1[l]
				bv0, bv1 := b0[l], b1[l]
				c00 += av0 * bv0
				c01 += av0 * bv1
				c10 += av1 * bv0
				c11 += av1 * bv1
			}
			dst.Data[i*br+j], dst.Data[i*br+j+1] = c00, c01
			dst.Data[(i+1)*br+j], dst.Data[(i+1)*br+j+1] = c10, c11
		}
		for ; j < br; j++ {
			mulABtCol1(dst.Data, a.Data, b.Data, k, br, i, j)
			mulABtCol1(dst.Data, a.Data, b.Data, k, br, i+1, j)
		}
	}
	for ; i < i1; i++ {
		for j := 0; j < br; j++ {
			mulABtCol1(dst.Data, a.Data, b.Data, k, br, i, j)
		}
	}
}

// mulABtCol1 is the scalar tail of mulABtRows: one output element, full
// k-loop, no zero-skip, matching the naive MulABtInto element for element.
func mulABtCol1(dst, a, b []complex128, k, brows, i, j int) {
	a0 := a[i*k : (i+1)*k]
	b0 := b[j*k : (j+1)*k]
	var c complex128
	for l := 0; l < k; l++ {
		c += a0[l] * b0[l]
	}
	dst[i*brows+j] = c
}

// daggerBlocked writes dst = a† in cache-blocked strips, so both the reads
// and the transposed writes stay within a few cache lines per strip. Pure
// data movement — element values match DaggerInto's loop.
func daggerBlocked(dst, a *Matrix) {
	const tb = 8
	rows, cols := a.Rows, a.Cols
	for ii := 0; ii < rows; ii += tb {
		ihi := ii + tb
		if ihi > rows {
			ihi = rows
		}
		for jj := 0; jj < cols; jj += tb {
			jhi := jj + tb
			if jhi > cols {
				jhi = cols
			}
			for i := ii; i < ihi; i++ {
				for j := jj; j < jhi; j++ {
					v := a.Data[i*cols+j]
					dst.Data[j*rows+i] = complex(real(v), -imag(v))
				}
			}
		}
	}
}
