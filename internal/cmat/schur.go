package cmat

import (
	"math"
	"math/cmplx"
)

// Schur holds a complex Schur decomposition A = Q·T·Q† with Q unitary and T
// upper triangular. The eigenvalues of A are the diagonal entries of T.
type Schur struct {
	T *Matrix
	Q *Matrix
}

// Hessenberg reduces a square matrix to upper Hessenberg form by unitary
// similarity: A = Q·H·Q†. It returns (H, Q).
func Hessenberg(a *Matrix) (h, q *Matrix) {
	mustSquare("Hessenberg", a)
	n := a.Rows
	h = a.Clone()
	q = Identity(n)
	if n <= 2 {
		return h, q
	}
	for col := 0; col < n-2; col++ {
		// Householder vector zeroing h[col+2:n, col].
		var norm float64
		for i := col + 1; i < n; i++ {
			norm += sqAbs(h.Data[i*n+col])
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		x1 := h.Data[(col+1)*n+col]
		var beta complex128
		if x1 == 0 {
			beta = complex(-norm, 0)
		} else {
			beta = -(x1 / complex(cmplx.Abs(x1), 0)) * complex(norm, 0)
		}
		v := make([]complex128, n)
		v[col+1] = x1 - beta
		for i := col + 2; i < n; i++ {
			v[i] = h.Data[i*n+col]
		}
		var vv float64
		for i := col + 1; i < n; i++ {
			vv += sqAbs(v[i])
		}
		if vv == 0 {
			continue
		}
		tau := complex(2/vv, 0)
		applyHouseholderLeft(h, v, tau, col+1, col)
		applyHouseholderRight(h, v, tau, col+1, 0)
		applyHouseholderRight(q, v, tau, col+1, 0)
		// Enforce exact zeros below the subdiagonal.
		h.Data[(col+1)*n+col] = beta
		for i := col + 2; i < n; i++ {
			h.Data[i*n+col] = 0
		}
	}
	return h, q
}

// applyHouseholderLeft computes m ← P·m where P = I − τ·v·v†, restricted to
// rows [lo, n) and columns [colStart, n). v is only read in [lo, n).
func applyHouseholderLeft(m *Matrix, v []complex128, tau complex128, lo, colStart int) {
	n := m.Rows
	for j := colStart; j < m.Cols; j++ {
		var dot complex128
		for i := lo; i < n; i++ {
			dot += cmplx.Conj(v[i]) * m.Data[i*m.Cols+j]
		}
		dot *= tau
		if dot == 0 {
			continue
		}
		for i := lo; i < n; i++ {
			m.Data[i*m.Cols+j] -= dot * v[i]
		}
	}
}

// applyHouseholderRight computes m ← m·P where P = I − τ·v·v†, restricted to
// columns [lo, n) and rows [rowStart, n).
func applyHouseholderRight(m *Matrix, v []complex128, tau complex128, lo, rowStart int) {
	n := m.Cols
	for i := rowStart; i < m.Rows; i++ {
		var dot complex128
		for j := lo; j < n; j++ {
			dot += m.Data[i*m.Cols+j] * v[j]
		}
		dot *= tau
		if dot == 0 {
			continue
		}
		for j := lo; j < n; j++ {
			m.Data[i*m.Cols+j] -= dot * cmplx.Conj(v[j])
		}
	}
}

// SchurDecompose computes a complex Schur decomposition A = Q·T·Q† using
// Householder Hessenberg reduction followed by the shifted QR algorithm with
// Wilkinson shifts and deflation. It works for any square complex matrix.
func SchurDecompose(a *Matrix) (*Schur, error) {
	mustSquare("SchurDecompose", a)
	n := a.Rows
	if n == 0 {
		return &Schur{T: New(0, 0), Q: New(0, 0)}, nil
	}
	t, q := Hessenberg(a)
	scale := MaxAbs(t)
	if scale == 0 {
		return &Schur{T: t, Q: q}, nil
	}
	eps := 1e-14
	maxIter := 40 * n * n
	hi := n - 1
	sinceDeflation := 0
	for iter := 0; iter < maxIter && hi > 0; iter++ {
		// Zero negligible subdiagonals.
		for k := 0; k < hi; k++ {
			d := cmplx.Abs(t.Data[k*n+k]) + cmplx.Abs(t.Data[(k+1)*n+k+1])
			if d == 0 {
				d = scale
			}
			if cmplx.Abs(t.Data[(k+1)*n+k]) <= eps*d {
				t.Data[(k+1)*n+k] = 0
			}
		}
		// Deflate from the bottom.
		for hi > 0 && t.Data[hi*n+hi-1] == 0 {
			hi--
			sinceDeflation = 0
		}
		if hi == 0 {
			break
		}
		// Find the start of the active block.
		lo := hi
		for lo > 0 && t.Data[lo*n+lo-1] != 0 {
			lo--
		}
		// Wilkinson shift from the trailing 2×2 of the active block.
		var mu complex128
		sinceDeflation++
		if sinceDeflation%20 == 0 {
			// Exceptional ad-hoc shift to break symmetry-induced stalls.
			mu = t.Data[hi*n+hi] + complex(0.75*cmplx.Abs(t.Data[hi*n+hi-1]), 0)
		} else {
			aa := t.Data[(hi-1)*n+hi-1]
			bb := t.Data[(hi-1)*n+hi]
			cc := t.Data[hi*n+hi-1]
			dd := t.Data[hi*n+hi]
			tr := aa + dd
			disc := cmplx.Sqrt((aa-dd)*(aa-dd) + 4*bb*cc)
			l1 := (tr + disc) / 2
			l2 := (tr - disc) / 2
			if cmplx.Abs(l1-dd) < cmplx.Abs(l2-dd) {
				mu = l1
			} else {
				mu = l2
			}
		}
		qrStep(t, q, lo, hi, mu)
	}
	if hi > 0 {
		return nil, ErrNoConvergence
	}
	// Zero out the strict lower triangle (it holds numerical dust).
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			t.Data[i*n+j] = 0
		}
	}
	return &Schur{T: t, Q: q}, nil
}

// qrStep performs one explicit shifted QR iteration on the active block
// [lo, hi] of the Hessenberg matrix t, accumulating the transform into q.
func qrStep(t, q *Matrix, lo, hi int, mu complex128) {
	n := t.Rows
	type givens struct {
		ca, sa complex128 // G = [[conj(ca), conj(sa)], [−sa, ca]] / r is unitary
	}
	rots := make([]givens, 0, hi-lo)
	// Shift the diagonal of the active block.
	for k := lo; k <= hi; k++ {
		t.Data[k*n+k] -= mu
	}
	// Left Givens sweep: reduce the block to upper triangular.
	for k := lo; k < hi; k++ {
		a := t.Data[k*n+k]
		b := t.Data[(k+1)*n+k]
		r := math.Sqrt(sqAbs(a) + sqAbs(b))
		if r == 0 {
			rots = append(rots, givens{1, 0})
			continue
		}
		ca := a / complex(r, 0)
		sa := b / complex(r, 0)
		rots = append(rots, givens{ca, sa})
		// Apply G to rows k, k+1 over columns k..n−1:
		// G = [[conj(ca), conj(sa)], [−sa, ca]].
		for j := k; j < n; j++ {
			x := t.Data[k*n+j]
			y := t.Data[(k+1)*n+j]
			t.Data[k*n+j] = cmplx.Conj(ca)*x + cmplx.Conj(sa)*y
			t.Data[(k+1)*n+j] = -sa*x + ca*y
		}
	}
	// Right sweep: t ← t·G†, q ← q·G† for each rotation in order.
	for idx, g := range rots {
		k := lo + idx
		// G† = [[ca, −conj(sa)], [sa, conj(ca)]] acting on columns k, k+1.
		top := k + 2
		if top > hi {
			top = hi
		}
		for i := 0; i <= top; i++ {
			x := t.Data[i*n+k]
			y := t.Data[i*n+k+1]
			t.Data[i*n+k] = x*g.ca + y*g.sa
			t.Data[i*n+k+1] = -x*cmplx.Conj(g.sa) + y*cmplx.Conj(g.ca)
		}
		for i := 0; i < n; i++ {
			x := q.Data[i*n+k]
			y := q.Data[i*n+k+1]
			q.Data[i*n+k] = x*g.ca + y*g.sa
			q.Data[i*n+k+1] = -x*cmplx.Conj(g.sa) + y*cmplx.Conj(g.ca)
		}
	}
	// Restore the shift.
	for k := lo; k <= hi; k++ {
		t.Data[k*n+k] += mu
	}
}

// Eigenvalues returns the eigenvalues of a square complex matrix via Schur
// decomposition, in the order they appear on the diagonal of T.
func Eigenvalues(a *Matrix) ([]complex128, error) {
	s, err := SchurDecompose(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		out[i] = s.T.Data[i*n+i]
	}
	return out, nil
}
