package cmat

import (
	"math"
	"sync"
	"testing"
)

// randSparse returns a rows×cols matrix where roughly half the entries are
// exactly zero, exercising the kernels' zero-skip branches. A few entries
// are negative zero so the tests catch any skip-vs-add divergence (adding
// 0·b to -0 flips its sign; skipping preserves it).
func randSparse(rows, cols int, seed int64) *Matrix {
	r := rng(seed)
	m := New(rows, cols)
	for i := range m.Data {
		switch r.Intn(4) {
		case 0:
			m.Data[i] = complex(2*r.Float64()-1, 2*r.Float64()-1)
		case 1:
			m.Data[i] = complex(2*r.Float64()-1, 0)
		case 2:
			m.Data[i] = 0
		case 3:
			m.Data[i] = complex(math.Copysign(0, -1), 0)
		}
	}
	return m
}

// bitEqual reports whether two matrices are identical at the bit level,
// distinguishing +0 from -0 (Equal uses ==, which conflates them).
func bitEqual(x, y *Matrix) bool {
	if x.Rows != y.Rows || x.Cols != y.Cols {
		return false
	}
	for i := range x.Data {
		a, b := x.Data[i], y.Data[i]
		if math.Float64bits(real(a)) != math.Float64bits(real(b)) ||
			math.Float64bits(imag(a)) != math.Float64bits(imag(b)) {
			return false
		}
	}
	return true
}

// TestMulIntoTiledBitIdentical pins the tiled dim ≥ 8 path to the naive
// reference loop, bit for bit, across square, odd, and rectangular shapes
// that exercise every tile tail (odd row, column remainder < 4).
func TestMulIntoTiledBitIdentical(t *testing.T) {
	shapes := []struct{ n, k, p int }{
		{8, 8, 8}, {16, 16, 16}, {32, 32, 32},
		{9, 9, 9}, {11, 7, 13}, {8, 3, 10}, {15, 16, 9},
	}
	for _, s := range shapes {
		for seed := int64(0); seed < 4; seed++ {
			a := randDense(s.n, s.k, seed)
			b := randDense(s.k, s.p, seed+100)
			if seed%2 == 1 {
				a = randSparse(s.n, s.k, seed)
				b = randSparse(s.k, s.p, seed+100)
			}
			got := New(s.n, s.p)
			want := New(s.n, s.p)
			MulInto(got, a, b)
			mulNaive(want, a, b)
			if !bitEqual(got, want) {
				t.Fatalf("MulInto %dx%dx%d seed %d: tiled differs from naive", s.n, s.k, s.p, seed)
			}
		}
	}
}

// TestMulConjIntoTiledBitIdentical does the same for the conj(A)·B path,
// against a naive loop that mirrors MulConjInto's sub-threshold body.
func TestMulConjIntoTiledBitIdentical(t *testing.T) {
	naive := func(dst, a, b *Matrix) {
		n, k, p := a.Rows, a.Cols, b.Cols
		for i := 0; i < n; i++ {
			row := dst.Data[i*p : (i+1)*p]
			for j := range row {
				row[j] = 0
			}
			for l := 0; l < k; l++ {
				v := a.Data[i*k+l]
				if v == 0 {
					continue
				}
				av := complex(real(v), -imag(v))
				brow := b.Data[l*p : (l+1)*p]
				for j, bv := range brow {
					row[j] += av * bv
				}
			}
		}
	}
	for _, s := range []struct{ n, k, p int }{{8, 8, 8}, {16, 16, 16}, {11, 9, 13}} {
		for seed := int64(0); seed < 4; seed++ {
			a := randSparse(s.n, s.k, seed+7)
			b := randDense(s.k, s.p, seed+200)
			got := New(s.n, s.p)
			want := New(s.n, s.p)
			MulConjInto(got, a, b)
			naive(want, a, b)
			if !bitEqual(got, want) {
				t.Fatalf("MulConjInto %dx%dx%d seed %d: tiled differs from naive", s.n, s.k, s.p, seed)
			}
		}
	}
}

// TestMulABtIntoTiledBitIdentical pins the A·Bᵀ path (no zero-skip in
// either arm) to its naive form.
func TestMulABtIntoTiledBitIdentical(t *testing.T) {
	naive := func(dst, a, b *Matrix) {
		k := a.Cols
		for i := 0; i < a.Rows; i++ {
			for j := 0; j < b.Rows; j++ {
				var s complex128
				for l := 0; l < k; l++ {
					s += a.Data[i*k+l] * b.Data[j*k+l]
				}
				dst.Data[i*b.Rows+j] = s
			}
		}
	}
	for _, s := range []struct{ n, k, m int }{{8, 8, 8}, {16, 16, 16}, {9, 12, 11}} {
		for seed := int64(0); seed < 4; seed++ {
			a := randDense(s.n, s.k, seed+13)
			b := randDense(s.m, s.k, seed+300)
			got := New(s.n, s.m)
			want := New(s.n, s.m)
			MulABtInto(got, a, b)
			naive(want, a, b)
			if !bitEqual(got, want) {
				t.Fatalf("MulABtInto %dx%dx%d seed %d: tiled differs from naive", s.n, s.k, s.m, seed)
			}
		}
	}
}

// TestDaggerIntoBlockedMatchesLoop checks the blocked conjugate transpose
// against the plain loop on large and ragged shapes.
func TestDaggerIntoBlockedMatchesLoop(t *testing.T) {
	for _, s := range []struct{ r, c int }{{8, 8}, {16, 16}, {13, 9}, {9, 21}} {
		a := randDense(s.r, s.c, int64(s.r*100+s.c))
		got := New(s.c, s.r)
		want := New(s.c, s.r)
		DaggerInto(got, a)
		for i := 0; i < a.Rows; i++ {
			for j := 0; j < a.Cols; j++ {
				v := a.Data[i*a.Cols+j]
				want.Data[j*a.Rows+i] = complex(real(v), -imag(v))
			}
		}
		if !bitEqual(got, want) {
			t.Fatalf("DaggerInto %dx%d: blocked differs from loop", s.r, s.c)
		}
	}
}

// TestMulIntoParallelBitIdentical runs the worker pool at several widths
// (run under -race this also exercises the pool for data races) and checks
// bit identity with the sequential product.
func TestMulIntoParallelBitIdentical(t *testing.T) {
	defer SetWorkers(1)
	for _, n := range []int{8, 16, 32, 33} {
		a := randSparse(n, n, int64(n))
		b := randDense(n, n, int64(n)+500)
		want := New(n, n)
		MulInto(want, a, b)
		for _, w := range []int{1, 2, 4, 8} {
			SetWorkers(w)
			got := New(n, n)
			MulIntoParallel(got, a, b)
			if !bitEqual(got, want) {
				t.Fatalf("MulIntoParallel n=%d workers=%d differs from sequential", n, w)
			}
		}
	}
}

// TestMulIntoParallelConcurrentCalls launches many parallel multiplies at
// once so -race can see the pool, the atomic work counter, and SetWorkers
// racing against in-flight calls.
func TestMulIntoParallelConcurrentCalls(t *testing.T) {
	defer SetWorkers(1)
	SetWorkers(4)
	a := randDense(16, 16, 1)
	b := randDense(16, 16, 2)
	want := New(16, 16)
	MulInto(want, a, b)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g == 0 {
				SetWorkers(3) // racing setter: must not corrupt results
			}
			dst := New(16, 16)
			for iter := 0; iter < 10; iter++ {
				MulIntoParallel(dst, a, b)
				if !bitEqual(dst, want) {
					t.Errorf("goroutine %d iter %d: wrong product", g, iter)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSetWorkersClamp(t *testing.T) {
	defer SetWorkers(1)
	SetWorkers(-3)
	if Workers() != 1 {
		t.Fatalf("SetWorkers(-3): Workers() = %d, want 1", Workers())
	}
	SetWorkers(6)
	if Workers() != 6 {
		t.Fatalf("SetWorkers(6): Workers() = %d, want 6", Workers())
	}
}

func TestMulIntoParallelShapePanics(t *testing.T) {
	cases := []struct {
		name      string
		dst, a, b *Matrix
	}{
		{"inner", New(8, 8), New(8, 9), New(8, 8)},
		{"dstRows", New(7, 8), New(8, 8), New(8, 8)},
		{"dstCols", New(8, 7), New(8, 8), New(8, 8)},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: MulIntoParallel did not panic", c.name)
				}
			}()
			MulIntoParallel(c.dst, c.a, c.b)
		}()
	}
}

// TestMulIntoDim8ShapePanics makes sure the tiled dispatch still validates
// shapes before touching data.
func TestMulIntoDim8ShapePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MulInto 8x8 dst mismatch did not panic")
			}
		}()
		MulInto(New(8, 9), New(8, 8), New(8, 8))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MulInto 8x8 inner mismatch did not panic")
			}
		}()
		MulInto(New(8, 8), New(8, 7), New(8, 8))
	}()
}

func benchMul(b *testing.B, n int, mul func(dst, a, b *Matrix)) {
	x := randDense(n, n, 1)
	y := randDense(n, n, 2)
	dst := New(n, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mul(dst, x, y)
	}
}

func BenchmarkMulInto8(b *testing.B)  { benchMul(b, 8, MulInto) }
func BenchmarkMulInto16(b *testing.B) { benchMul(b, 16, MulInto) }
func BenchmarkMulInto32(b *testing.B) { benchMul(b, 32, MulInto) }

func BenchmarkMulNaive8(b *testing.B)  { benchMul(b, 8, mulNaive) }
func BenchmarkMulNaive16(b *testing.B) { benchMul(b, 16, mulNaive) }
func BenchmarkMulNaive32(b *testing.B) { benchMul(b, 32, mulNaive) }
