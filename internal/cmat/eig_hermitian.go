package cmat

import (
	"errors"
	"math"
	"math/cmplx"
	"sort"
)

// HermitianEigen holds the spectral decomposition A = V·diag(Values)·V† of a
// Hermitian matrix. Values are real and sorted ascending; column j of V is
// the eigenvector for Values[j], and V is unitary.
type HermitianEigen struct {
	Values  []float64
	Vectors *Matrix
}

// ErrNoConvergence is returned when an iterative eigensolver fails to reach
// the requested tolerance within its sweep budget.
var ErrNoConvergence = errors.New("cmat: eigensolver did not converge")

// maxJacobiSweeps bounds the cyclic Jacobi iteration. 30 sweeps is far more
// than needed for the ≤ 8×8 matrices quantum groups produce, but keeps the
// solver safe for larger inputs.
const maxJacobiSweeps = 60

// EigenHermitian diagonalizes a Hermitian matrix with the cyclic complex
// Jacobi method. The input is validated to be Hermitian within hermTol; use
// EigenHermitianTol to override the default 1e-9 (relative to max |aij|).
func EigenHermitian(a *Matrix) (*HermitianEigen, error) {
	return EigenHermitianTol(a, 1e-9)
}

// EigenHermitianTol is EigenHermitian with an explicit Hermitian-validation
// tolerance (scaled by max |aij|).
func EigenHermitianTol(a *Matrix, hermTol float64) (*HermitianEigen, error) {
	mustSquare("EigenHermitian", a)
	scale := MaxAbs(a)
	if scale == 0 {
		// Zero matrix: eigenvalues all zero, eigenvectors identity.
		return &HermitianEigen{Values: make([]float64, a.Rows), Vectors: Identity(a.Rows)}, nil
	}
	if !IsHermitian(a, hermTol*scale) {
		return nil, errors.New("cmat: EigenHermitian: input is not Hermitian")
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)

	offNorm := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += 2 * sqAbs(w.Data[i*n+j])
			}
		}
		return math.Sqrt(s)
	}

	tol := 1e-13 * scale * float64(n)
	// Elements already far below the convergence tolerance are skipped —
	// the classical thresholded cyclic Jacobi refinement. The square
	// threshold spreads the budget over the n(n−1)/2 pairs.
	skip2 := tol * tol / float64(n*n)
	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		if offNorm() <= tol {
			return finishHermitian(w, v), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if sqAbs(w.Data[p*n+q]) > skip2 {
					jacobiRotate(w, v, p, q)
				}
			}
		}
	}
	if offNorm() <= tol*1e3 {
		// Accept slightly looser convergence rather than fail outright; the
		// residual is still far below anything the QOC pipeline can resolve.
		return finishHermitian(w, v), nil
	}
	return nil, ErrNoConvergence
}

// jacobiRotate applies a single complex Jacobi rotation zeroing w[p][q]
// (and w[q][p]) of the Hermitian working matrix w, accumulating the
// rotation into v so that original = v·w·v† is preserved.
func jacobiRotate(w, v *Matrix, p, q int) {
	n := w.Rows
	apq := w.Data[p*n+q]
	r := cmplx.Abs(apq)
	if r == 0 {
		return
	}
	// Phase factor so that conj(phase)*apq is real positive.
	phase := apq / complex(r, 0)
	app := real(w.Data[p*n+p])
	aqq := real(w.Data[q*n+q])

	// Stable computation of tan θ for the real symmetric 2×2 subproblem
	// [[app, r],[r, aqq]] (Golub & Van Loan §8.5).
	var t float64
	theta := (aqq - app) / (2 * r)
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c

	// The full 2×2 unitary is U = [[c, s·phase], [−s·conj(phase), c]] applied
	// as w ← U† w U on rows/columns p and q. Column update for all rows i:
	//   w[i][p] ← c·w[i][p] − s·conj(phase)·w[i][q]
	//   w[i][q] ← s·phase·w[i][p_old] + c·w[i][q]
	cs := complex(c, 0)
	sp := complex(s, 0) * phase
	spc := cmplx.Conj(sp)
	for i := 0; i < n; i++ {
		wip := w.Data[i*n+p]
		wiq := w.Data[i*n+q]
		w.Data[i*n+p] = cs*wip - spc*wiq
		w.Data[i*n+q] = sp*wip + cs*wiq
	}
	// Row update: w ← U† w, i.e.
	//   w[p][j] ← c·w[p][j] − s·phase·w[q][j] (conjugated transform)
	for j := 0; j < n; j++ {
		wpj := w.Data[p*n+j]
		wqj := w.Data[q*n+j]
		w.Data[p*n+j] = cs*wpj - sp*wqj
		w.Data[q*n+j] = spc*wpj + cs*wqj
	}
	// Accumulate eigenvectors: v ← v·U.
	for i := 0; i < n; i++ {
		vip := v.Data[i*n+p]
		viq := v.Data[i*n+q]
		v.Data[i*n+p] = cs*vip - spc*viq
		v.Data[i*n+q] = sp*vip + cs*viq
	}
	// Clean the rotated pair to exactly zero to aid convergence detection.
	w.Data[p*n+q] = 0
	w.Data[q*n+p] = 0
}

// finishHermitian extracts sorted eigenvalues and reorders eigenvector
// columns to match.
func finishHermitian(w, v *Matrix) *HermitianEigen {
	n := w.Rows
	type pair struct {
		val float64
		col int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{real(w.Data[i*n+i]), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val < pairs[j].val })
	values := make([]float64, n)
	vectors := New(n, n)
	for newCol, p := range pairs {
		values[newCol] = p.val
		for i := 0; i < n; i++ {
			vectors.Data[i*n+newCol] = v.Data[i*n+p.col]
		}
	}
	return &HermitianEigen{Values: values, Vectors: vectors}
}

// Reconstruct returns V·diag(Values)·V†, which should equal the original
// matrix up to numerical error. Useful for testing.
func (e *HermitianEigen) Reconstruct() *Matrix {
	n := len(e.Values)
	d := New(n, n)
	for i, v := range e.Values {
		d.Data[i*n+i] = complex(v, 0)
	}
	return MulChain(e.Vectors, d, Dagger(e.Vectors))
}

// ApplyFunc returns V·diag(f(λᵢ))·V†: a matrix function of the Hermitian
// operator, e.g. f(λ)=exp(−iλt) yields the unitary propagator.
func (e *HermitianEigen) ApplyFunc(f func(float64) complex128) *Matrix {
	n := len(e.Values)
	d := New(n, n)
	for i, v := range e.Values {
		d.Data[i*n+i] = f(v)
	}
	return MulChain(e.Vectors, d, Dagger(e.Vectors))
}

func sqAbs(v complex128) float64 {
	return real(v)*real(v) + imag(v)*imag(v)
}
