package cmat

import (
	"errors"
	"math"
)

// HermitianEigen holds the spectral decomposition A = V·diag(Values)·V† of a
// Hermitian matrix. Values are real and sorted ascending; column j of V is
// the eigenvector for Values[j], and V is unitary.
type HermitianEigen struct {
	Values  []float64
	Vectors *Matrix
}

// NewHermitianEigen returns an n-dimensional decomposition buffer for
// EigenHermitianInto.
func NewHermitianEigen(n int) *HermitianEigen {
	return &HermitianEigen{Values: make([]float64, n), Vectors: New(n, n)}
}

// ErrNoConvergence is returned when an iterative eigensolver fails to reach
// the requested tolerance within its sweep budget.
var ErrNoConvergence = errors.New("cmat: eigensolver did not converge")

// maxJacobiSweeps bounds the cyclic Jacobi iteration. 30 sweeps is far more
// than needed for the ≤ 8×8 matrices quantum groups produce, but keeps the
// solver safe for larger inputs.
const maxJacobiSweeps = 60

// JacobiWorkspace holds the scratch state of one eigendecomposition so
// repeated solves of the same dimension allocate nothing. A workspace is
// owned by a single goroutine; concurrent solves need one workspace each.
type JacobiWorkspace struct {
	w, v *Matrix
	perm []int
}

// NewJacobiWorkspace returns a workspace for n×n decompositions.
func NewJacobiWorkspace(n int) *JacobiWorkspace {
	return &JacobiWorkspace{w: New(n, n), v: New(n, n), perm: make([]int, n)}
}

// EigenHermitian diagonalizes a Hermitian matrix with the cyclic complex
// Jacobi method (closed form for 2×2). The input is validated to be
// Hermitian within hermTol; use EigenHermitianTol to override the default
// 1e-9 (relative to max |aij|).
func EigenHermitian(a *Matrix) (*HermitianEigen, error) {
	return EigenHermitianTol(a, 1e-9)
}

// EigenHermitianTol is EigenHermitian with an explicit Hermitian-validation
// tolerance (scaled by max |aij|).
func EigenHermitianTol(a *Matrix, hermTol float64) (*HermitianEigen, error) {
	out := NewHermitianEigen(a.Rows)
	if err := eigenHermitianInto(a, NewJacobiWorkspace(a.Rows), out, hermTol, true); err != nil {
		return nil, err
	}
	return out, nil
}

// EigenHermitianInto diagonalizes a into out using ws for scratch,
// allocating nothing. a, ws and out must all have the same dimension and
// must not alias. The decomposition is numerically identical to
// EigenHermitian's — the allocating API is a thin wrapper over this one.
func EigenHermitianInto(a *Matrix, ws *JacobiWorkspace, out *HermitianEigen) error {
	return eigenHermitianInto(a, ws, out, 1e-9, true)
}

// EigenHermitianIntoTrusted is EigenHermitianInto minus the Hermiticity
// validation scan. Only for callers that construct a Hermitian by
// construction (real combinations of validated Hermitian operators) and
// diagonalize in a hot loop; a non-Hermitian input silently yields garbage.
// The decomposition itself is identical to the validated paths'.
func EigenHermitianIntoTrusted(a *Matrix, ws *JacobiWorkspace, out *HermitianEigen) error {
	return eigenHermitianInto(a, ws, out, 0, false)
}

func eigenHermitianInto(a *Matrix, ws *JacobiWorkspace, out *HermitianEigen, hermTol float64, validate bool) error {
	mustSquare("EigenHermitian", a)
	n := a.Rows
	if len(out.Values) != n || out.Vectors.Rows != n || out.Vectors.Cols != n {
		panic("cmat: EigenHermitianInto output dimension mismatch")
	}
	// max |aij| via squared magnitudes: one sqrt instead of n² hypots.
	// Squaring under/overflows beyond ±~1e±154, where hypot does not —
	// fall back to the exact form there so extreme-range inputs keep the
	// old behavior.
	var maxSq float64
	for _, v := range a.Data {
		if s := sqAbs(v); s > maxSq {
			maxSq = s
		}
	}
	scale := math.Sqrt(maxSq)
	if maxSq == 0 || math.IsInf(maxSq, 1) {
		scale = MaxAbs(a)
	}
	if scale == 0 {
		// Zero matrix: eigenvalues all zero, eigenvectors identity.
		for i := range out.Values {
			out.Values[i] = 0
		}
		out.Vectors.SetIdentity()
		return nil
	}
	if validate && !IsHermitian(a, hermTol*scale) {
		return errors.New("cmat: EigenHermitian: input is not Hermitian")
	}
	if n == 2 {
		eigenHermitian2x2(a, out)
		return nil
	}
	if ws.w.Rows != n {
		panic("cmat: EigenHermitianInto workspace dimension mismatch")
	}
	w, v := ws.w, ws.v
	w.CopyFrom(a)
	v.SetIdentity()

	offNorm := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += 2 * sqAbs(w.Data[i*n+j])
			}
		}
		return math.Sqrt(s)
	}

	tol := 1e-13 * scale * float64(n)
	// Elements already far below the convergence tolerance are skipped —
	// the classical thresholded cyclic Jacobi refinement. The square
	// threshold spreads the budget over the n(n−1)/2 pairs.
	skip2 := tol * tol / float64(n*n)
	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		if offNorm() <= tol {
			finishHermitian(w, v, ws.perm, out)
			return nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if sqAbs(w.Data[p*n+q]) > skip2 {
					jacobiRotate(w, v, p, q)
				}
			}
		}
	}
	if offNorm() <= tol*1e3 {
		// Accept slightly looser convergence rather than fail outright; the
		// residual is still far below anything the QOC pipeline can resolve.
		finishHermitian(w, v, ws.perm, out)
		return nil
	}
	return ErrNoConvergence
}

// jacobiRotate applies a single complex Jacobi rotation zeroing w[p][q]
// (and w[q][p]) of the Hermitian working matrix w, accumulating the
// rotation into v so that original = v·w·v† is preserved.
func jacobiRotate(w, v *Matrix, p, q int) {
	n := w.Rows
	apq := w.Data[p*n+q]
	// sqrt of the squared magnitude on the hot path; hypot only when the
	// square under- or overflows.
	s2 := sqAbs(apq)
	var r float64
	if s2 > 0 && !math.IsInf(s2, 1) {
		r = math.Sqrt(s2)
	} else {
		r = math.Hypot(real(apq), imag(apq))
	}
	if r == 0 {
		return
	}
	// Phase factor so that conj(phase)*apq is real positive.
	rinv := 1 / r
	phase := complex(real(apq)*rinv, imag(apq)*rinv)
	app := real(w.Data[p*n+p])
	aqq := real(w.Data[q*n+q])

	// Stable computation of tan θ for the real symmetric 2×2 subproblem
	// [[app, r],[r, aqq]] (Golub & Van Loan §8.5).
	var t float64
	theta := (aqq - app) / (2 * r)
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c

	// The full 2×2 unitary is U = [[c, s·phase], [−s·conj(phase), c]] applied
	// as w ← U† w U on rows/columns p and q. c is real, so the c-terms are
	// scaled componentwise rather than through a full complex multiply.
	// Column update for all rows i:
	//   w[i][p] ← c·w[i][p] − s·conj(phase)·w[i][q]
	//   w[i][q] ← s·phase·w[i][p_old] + c·w[i][q]
	sp := complex(s, 0) * phase
	spc := complex(real(sp), -imag(sp))
	for i := 0; i < n; i++ {
		wip := w.Data[i*n+p]
		wiq := w.Data[i*n+q]
		w.Data[i*n+p] = complex(c*real(wip), c*imag(wip)) - spc*wiq
		w.Data[i*n+q] = sp*wip + complex(c*real(wiq), c*imag(wiq))
	}
	// Row update: w ← U† w, i.e.
	//   w[p][j] ← c·w[p][j] − s·phase·w[q][j] (conjugated transform)
	for j := 0; j < n; j++ {
		wpj := w.Data[p*n+j]
		wqj := w.Data[q*n+j]
		w.Data[p*n+j] = complex(c*real(wpj), c*imag(wpj)) - sp*wqj
		w.Data[q*n+j] = spc*wpj + complex(c*real(wqj), c*imag(wqj))
	}
	// Accumulate eigenvectors: v ← v·U.
	for i := 0; i < n; i++ {
		vip := v.Data[i*n+p]
		viq := v.Data[i*n+q]
		v.Data[i*n+p] = complex(c*real(vip), c*imag(vip)) - spc*viq
		v.Data[i*n+q] = sp*vip + complex(c*real(viq), c*imag(viq))
	}
	// Clean the rotated pair to exactly zero to aid convergence detection.
	w.Data[p*n+q] = 0
	w.Data[q*n+p] = 0
}

// finishHermitian extracts sorted eigenvalues into out and reorders
// eigenvector columns to match, using perm as the sorting scratch
// (insertion sort: allocation-free, and n ≤ 32 in practice).
func finishHermitian(w, v *Matrix, perm []int, out *HermitianEigen) {
	n := w.Rows
	for i := 0; i < n; i++ {
		perm[i] = i
	}
	for i := 1; i < n; i++ {
		p := perm[i]
		key := real(w.Data[p*n+p])
		j := i - 1
		for j >= 0 && real(w.Data[perm[j]*n+perm[j]]) > key {
			perm[j+1] = perm[j]
			j--
		}
		perm[j+1] = p
	}
	for newCol, col := range perm {
		out.Values[newCol] = real(w.Data[col*n+col])
		for i := 0; i < n; i++ {
			out.Vectors.Data[i*n+newCol] = v.Data[i*n+col]
		}
	}
}

// Reconstruct returns V·diag(Values)·V†, which should equal the original
// matrix up to numerical error. Useful for testing.
func (e *HermitianEigen) Reconstruct() *Matrix {
	n := len(e.Values)
	d := New(n, n)
	for i, v := range e.Values {
		d.Data[i*n+i] = complex(v, 0)
	}
	return MulChain(e.Vectors, d, Dagger(e.Vectors))
}

// ApplyFunc returns V·diag(f(λᵢ))·V†: a matrix function of the Hermitian
// operator, e.g. f(λ)=exp(−iλt) yields the unitary propagator.
func (e *HermitianEigen) ApplyFunc(f func(float64) complex128) *Matrix {
	n := len(e.Values)
	dst := New(n, n)
	vdag := Dagger(e.Vectors)
	e.ApplyFuncInto(dst, New(n, n), vdag, f)
	return dst
}

// ApplyFuncInto computes dst = V·diag(f(λᵢ))·V† without allocating. scratch
// must be an n×n buffer, and vdag must hold Dagger(e.Vectors) (callers on
// the hot path keep it cached alongside the decomposition). dst, scratch
// and vdag must be distinct matrices.
func (e *HermitianEigen) ApplyFuncInto(dst, scratch, vdag *Matrix, f func(float64) complex128) {
	n := len(e.Values)
	v := e.Vectors
	for j, l := range e.Values {
		fl := f(l)
		for i := 0; i < n; i++ {
			scratch.Data[i*n+j] = v.Data[i*n+j] * fl
		}
	}
	MulInto(dst, scratch, vdag)
}

func sqAbs(v complex128) float64 {
	return real(v)*real(v) + imag(v)*imag(v)
}
