package cmat

import (
	"math"
	"math/cmplx"
	"testing"
)

// randHermitian returns a random Hermitian n×n matrix.
func randHermitian(n int, seed int64) *Matrix {
	r := rng(seed)
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = complex(2*r.Float64()-1, 0)
		for j := i + 1; j < n; j++ {
			v := complex(2*r.Float64()-1, 2*r.Float64()-1)
			m.Data[i*n+j] = v
			m.Data[j*n+i] = cmplx.Conj(v)
		}
	}
	return m
}

func randDense(rows, cols int, seed int64) *Matrix {
	r := rng(seed)
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(2*r.Float64()-1, 2*r.Float64()-1)
	}
	return m
}

// TestSmallDimKernelsMatchGeneric pins the unrolled 2×2/4×4 kernels to the
// generic triple loop on random inputs.
func TestSmallDimKernelsMatchGeneric(t *testing.T) {
	generic := func(dst, a, b *Matrix) {
		n, k, p := a.Rows, a.Cols, b.Cols
		for i := 0; i < n; i++ {
			for j := 0; j < p; j++ {
				var s complex128
				for l := 0; l < k; l++ {
					s += a.Data[i*k+l] * b.Data[l*p+j]
				}
				dst.Data[i*p+j] = s
			}
		}
	}
	for _, n := range []int{2, 4} {
		for seed := int64(0); seed < 10; seed++ {
			a := randDense(n, n, seed)
			b := randDense(n, n, seed+100)
			got := New(n, n)
			want := New(n, n)
			MulInto(got, a, b)
			generic(want, a, b)
			if !got.EqualApprox(want, 1e-14) {
				t.Fatalf("n=%d seed=%d: kernel product deviates from generic", n, seed)
			}
		}
	}
}

func TestDaggerInto(t *testing.T) {
	a := randDense(3, 5, 7)
	dst := New(5, 3)
	DaggerInto(dst, a)
	if !dst.Equal(Dagger(a)) {
		t.Fatal("DaggerInto != Dagger")
	}
}

func TestCopyFromAndSetIdentity(t *testing.T) {
	a := randDense(3, 3, 1)
	b := New(3, 3)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatal("CopyFrom mismatch")
	}
	b.SetIdentity()
	if !b.Equal(Identity(3)) {
		t.Fatal("SetIdentity mismatch")
	}
}

func TestTraceMulDagger(t *testing.T) {
	a := randDense(4, 4, 2)
	b := randDense(4, 4, 3)
	got := TraceMulDagger(a, b)
	want := Trace(Mul(Dagger(a), b))
	if cmplx.Abs(got-want) > 1e-12 {
		t.Fatalf("TraceMulDagger = %v, want %v", got, want)
	}
}

func TestMulABtInto(t *testing.T) {
	a := randDense(3, 5, 4)
	b := randDense(4, 5, 5)
	dst := New(3, 4)
	MulABtInto(dst, a, b)
	want := Mul(a, Transpose(b))
	if !dst.EqualApprox(want, 1e-13) {
		t.Fatal("MulABtInto != a·bᵀ")
	}
}

func TestMulConjInto(t *testing.T) {
	a := randDense(3, 4, 6)
	b := randDense(4, 2, 7)
	dst := New(3, 2)
	MulConjInto(dst, a, b)
	want := Mul(Conj(a), b)
	if !dst.EqualApprox(want, 1e-13) {
		t.Fatal("MulConjInto != conj(a)·b")
	}
}

// TestEigenHermitianIntoMatchesAllocating asserts the workspace solver is
// bit-identical to the allocating API, across dimensions covering the
// closed-form 2×2 path and the Jacobi path, with workspace reuse.
func TestEigenHermitianIntoMatchesAllocating(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6} {
		ws := NewJacobiWorkspace(n)
		out := NewHermitianEigen(n)
		for seed := int64(0); seed < 8; seed++ {
			a := randHermitian(n, 1000*int64(n)+seed)
			want, err := EigenHermitian(a)
			if err != nil {
				t.Fatal(err)
			}
			if err := EigenHermitianInto(a, ws, out); err != nil {
				t.Fatal(err)
			}
			for i := range want.Values {
				if out.Values[i] != want.Values[i] {
					t.Fatalf("n=%d seed=%d: Values[%d] %v != %v", n, seed, i, out.Values[i], want.Values[i])
				}
			}
			if !out.Vectors.Equal(want.Vectors) {
				t.Fatalf("n=%d seed=%d: Vectors differ", n, seed)
			}
			// The trusted variant skips validation but must decompose
			// identically.
			out2 := NewHermitianEigen(n)
			if err := EigenHermitianIntoTrusted(a, ws, out2); err != nil {
				t.Fatal(err)
			}
			if !out2.Vectors.Equal(want.Vectors) {
				t.Fatalf("n=%d seed=%d: trusted Vectors differ", n, seed)
			}
		}
	}
}

// TestEigen2x2ClosedForm exercises the analytic 2×2 kernel against its
// defining properties, including the near-diagonal regime where the naive
// eigenvector formula cancels.
func TestEigen2x2ClosedForm(t *testing.T) {
	cases := []*Matrix{
		randHermitian(2, 1),
		randHermitian(2, 2),
		FromRows([][]complex128{{1, 0}, {0, -3}}),                // diagonal, descending
		FromRows([][]complex128{{-3, 0}, {0, 5}}),                // diagonal, ascending
		FromRows([][]complex128{{1, 1e-14}, {1e-14, 1 + 1e-13}}), // near-degenerate
		FromRows([][]complex128{{5, 1e-12i}, {-1e-12i, -5}}),     // tiny off-diagonal
	}
	for i, a := range cases {
		e, err := EigenHermitian(a)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if e.Values[0] > e.Values[1] {
			t.Fatalf("case %d: values not ascending: %v", i, e.Values)
		}
		if !IsUnitary(e.Vectors, 1e-12) {
			t.Fatalf("case %d: eigenvectors not unitary", i)
		}
		if !e.Reconstruct().EqualApprox(a, 1e-12) {
			t.Fatalf("case %d: reconstruction failed", i)
		}
	}
}

func TestApplyFuncIntoMatchesApplyFunc(t *testing.T) {
	a := randHermitian(4, 9)
	e, err := EigenHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	f := func(l float64) complex128 {
		sin, cos := math.Sincos(-0.3 * l)
		return complex(cos, sin)
	}
	want := e.ApplyFunc(f)
	dst := New(4, 4)
	scratch := New(4, 4)
	vdag := Dagger(e.Vectors)
	e.ApplyFuncInto(dst, scratch, vdag, f)
	if !dst.Equal(want) {
		t.Fatal("ApplyFuncInto != ApplyFunc")
	}
	if !IsUnitary(dst, 1e-10) {
		t.Fatal("propagator not unitary")
	}
}

// TestEigenHermitianExtremeScales covers the magnitude ranges where naive
// squared-magnitude scaling under- or overflows.
func TestEigenHermitianExtremeScales(t *testing.T) {
	for _, s := range []float64{1e-200, 1e160} {
		a := FromRows([][]complex128{
			{complex(s, 0), complex(0.5*s, 0)},
			{complex(0.5*s, 0), complex(-s, 0)},
		})
		e, err := EigenHermitian(a)
		if err != nil {
			t.Fatalf("scale %g: %v", s, err)
		}
		// λ = ±s·√1.25 for [[1,.5],[.5,-1]]·s.
		want := s * math.Sqrt(1.25)
		if math.Abs(e.Values[1]-want) > 1e-10*want || math.Abs(e.Values[0]+want) > 1e-10*want {
			t.Fatalf("scale %g: eigenvalues %v, want ±%g", s, e.Values, want)
		}
		if !IsUnitary(e.Vectors, 1e-12) {
			t.Fatalf("scale %g: eigenvectors not unitary", s)
		}
	}
	// The overflow range through the Jacobi path (n > 2). (Sub-√underflow
	// magnitudes have always collapsed in the Jacobi off-norm; only the
	// closed-form 2×2 path handles them.)
	for _, s := range []float64{1e160} {
		a := New(3, 3)
		a.Set(0, 1, complex(s, 0))
		a.Set(1, 0, complex(s, 0))
		a.Set(2, 2, complex(2*s, 0))
		e, err := EigenHermitian(a)
		if err != nil {
			t.Fatalf("jacobi scale %g: %v", s, err)
		}
		// Spectrum {−s, s, 2s}.
		if math.Abs(e.Values[0]+s) > 1e-10*s || math.Abs(e.Values[2]-2*s) > 1e-10*s {
			t.Fatalf("jacobi scale %g: eigenvalues %v", s, e.Values)
		}
	}
}
