package cmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestNewZeroAndIdentity(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New should be zero-filled")
		}
	}
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(3)[%d][%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]complex128{{1, 2}, {3i, 4}})
	if m.At(1, 0) != 3i {
		t.Fatalf("At(1,0) = %v, want 3i", m.At(1, 0))
	}
	m.Set(0, 1, 7)
	if m.At(0, 1) != 7 {
		t.Fatal("Set did not stick")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone aliases original")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]complex128{{1, 2}, {3}})
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{5, 6}, {7, 8}})
	sum := Add(a, b)
	if sum.At(1, 1) != 12 {
		t.Fatalf("Add = %v", sum)
	}
	diff := Sub(b, a)
	if diff.At(0, 0) != 4 {
		t.Fatalf("Sub = %v", diff)
	}
	sc := Scale(2i, a)
	if sc.At(0, 1) != 4i {
		t.Fatalf("Scale = %v", sc)
	}
	as := AddScaled(a, 10, b)
	if as.At(0, 0) != 51 {
		t.Fatalf("AddScaled = %v", as)
	}
	acc := a.Clone()
	AccumScaled(acc, 10, b)
	if !acc.Equal(as) {
		t.Fatal("AccumScaled disagrees with AddScaled")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{0, 1}, {1, 0}}) // swap columns
	got := Mul(a, b)
	want := FromRows([][]complex128{{2, 1}, {4, 3}})
	if !got.Equal(want) {
		t.Fatalf("Mul:\n%v want\n%v", got, want)
	}
}

func TestMulIdentityProperty(t *testing.T) {
	r := rng(1)
	f := func(seed int64) bool {
		rr := rng(seed%997 + 1)
		n := 1 + rr.Intn(6)
		a := RandomGinibre(r, n)
		return Mul(a, Identity(n)).EqualApprox(a, 1e-12) &&
			Mul(Identity(n), a).EqualApprox(a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	r := rng(2)
	f := func(seed int64) bool {
		n := 2 + int(seed%3+3)%3
		a, b, c := RandomGinibre(r, n), RandomGinibre(r, n), RandomGinibre(r, n)
		return Mul(Mul(a, b), c).EqualApprox(Mul(a, Mul(b, c)), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDaggerProperties(t *testing.T) {
	r := rng(3)
	a := RandomGinibre(r, 4)
	b := RandomGinibre(r, 4)
	// (AB)† = B†A†
	if !Dagger(Mul(a, b)).EqualApprox(Mul(Dagger(b), Dagger(a)), 1e-12) {
		t.Fatal("(AB)† != B†A†")
	}
	// A†† = A
	if !Dagger(Dagger(a)).EqualApprox(a, 0) {
		t.Fatal("double dagger is not identity")
	}
}

func TestTraceCyclicProperty(t *testing.T) {
	r := rng(4)
	a := RandomGinibre(r, 5)
	b := RandomGinibre(r, 5)
	if cmplx.Abs(Trace(Mul(a, b))-Trace(Mul(b, a))) > 1e-10 {
		t.Fatal("trace is not cyclic")
	}
}

func TestKronKnown(t *testing.T) {
	x := FromRows([][]complex128{{0, 1}, {1, 0}})
	id := Identity(2)
	k := Kron(x, id)
	want := FromRows([][]complex128{
		{0, 0, 1, 0},
		{0, 0, 0, 1},
		{1, 0, 0, 0},
		{0, 1, 0, 0},
	})
	if !k.Equal(want) {
		t.Fatalf("Kron(X, I):\n%v", k)
	}
}

func TestKronMixedProduct(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD)
	r := rng(5)
	a, b, c, d := RandomGinibre(r, 2), RandomGinibre(r, 3), RandomGinibre(r, 2), RandomGinibre(r, 3)
	lhs := Mul(Kron(a, b), Kron(c, d))
	rhs := Kron(Mul(a, c), Mul(b, d))
	if !lhs.EqualApprox(rhs, 1e-10) {
		t.Fatal("Kron mixed-product identity fails")
	}
}

func TestNorms(t *testing.T) {
	a := FromRows([][]complex128{{3, 0}, {0, 4i}})
	if got := FrobeniusNorm(a); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Frobenius = %v, want 5", got)
	}
	if got := L1Norm(a); math.Abs(got-7) > 1e-12 {
		t.Fatalf("L1 = %v, want 7", got)
	}
	if got := MaxAbs(a); math.Abs(got-4) > 1e-12 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
	if got := OneNorm(a); math.Abs(got-4) > 1e-12 {
		t.Fatalf("OneNorm = %v, want 4", got)
	}
}

func TestHermitianUnitaryChecks(t *testing.T) {
	r := rng(6)
	h := RandomHermitian(r, 4)
	if !IsHermitian(h, 1e-12) {
		t.Fatal("RandomHermitian not Hermitian")
	}
	u := RandomUnitary(r, 4)
	if !IsUnitary(u, 1e-10) {
		t.Fatal("RandomUnitary not unitary")
	}
	if IsUnitary(Scale(2, u), 1e-10) {
		t.Fatal("2U flagged unitary")
	}
	g := RandomGinibre(r, 4)
	if IsHermitian(g, 1e-12) {
		t.Fatal("Ginibre flagged Hermitian")
	}
}

func TestLUSolveAndInverse(t *testing.T) {
	r := rng(7)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(7)
		a := RandomGinibre(r, n)
		b := RandomGinibre(r, n)
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if !Mul(a, x).EqualApprox(b, 1e-9) {
			t.Fatalf("AX != B (n=%d)", n)
		}
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("Inverse: %v", err)
		}
		if !Mul(a, inv).EqualApprox(Identity(n), 1e-9) {
			t.Fatal("A·A⁻¹ != I")
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {2, 4}})
	if _, err := Factorize(a); err == nil {
		t.Fatal("expected ErrSingular")
	}
	d, err := Det(a)
	if err != nil || d != 0 {
		t.Fatalf("Det(singular) = %v, %v", d, err)
	}
}

func TestDetKnown(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	d, err := Det(a)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(d-(-2)) > 1e-12 {
		t.Fatalf("Det = %v, want -2", d)
	}
}

func TestDetUnitaryModulusOne(t *testing.T) {
	r := rng(8)
	u := RandomUnitary(r, 5)
	d, err := Det(u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmplx.Abs(d)-1) > 1e-9 {
		t.Fatalf("|det U| = %v, want 1", cmplx.Abs(d))
	}
}

func TestEigenHermitianKnown(t *testing.T) {
	// Pauli X has eigenvalues ±1.
	x := FromRows([][]complex128{{0, 1}, {1, 0}})
	e, err := EigenHermitian(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Values[0]+1) > 1e-12 || math.Abs(e.Values[1]-1) > 1e-12 {
		t.Fatalf("Pauli X eigenvalues = %v", e.Values)
	}
	if !e.Reconstruct().EqualApprox(x, 1e-10) {
		t.Fatal("reconstruction failed")
	}
}

func TestEigenHermitianRandom(t *testing.T) {
	r := rng(9)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(8)
		h := RandomHermitian(r, n)
		e, err := EigenHermitian(h)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !IsUnitary(e.Vectors, 1e-9) {
			t.Fatal("eigenvectors not unitary")
		}
		if !e.Reconstruct().EqualApprox(h, 1e-9) {
			t.Fatal("V·Λ·V† != H")
		}
		for i := 1; i < n; i++ {
			if e.Values[i] < e.Values[i-1] {
				t.Fatal("eigenvalues not sorted")
			}
		}
		// Trace preserved.
		var sum float64
		for _, v := range e.Values {
			sum += v
		}
		if math.Abs(sum-real(Trace(h))) > 1e-9 {
			t.Fatal("eigenvalue sum != trace")
		}
	}
}

func TestEigenHermitianRejectsNonHermitian(t *testing.T) {
	g := RandomGinibre(rng(10), 3)
	if _, err := EigenHermitian(g); err == nil {
		t.Fatal("expected rejection of non-Hermitian input")
	}
}

func TestEigenHermitianZero(t *testing.T) {
	e, err := EigenHermitian(New(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range e.Values {
		if v != 0 {
			t.Fatal("zero matrix must have zero eigenvalues")
		}
	}
}

func TestHessenberg(t *testing.T) {
	r := rng(11)
	for trial := 0; trial < 10; trial++ {
		n := 2 + r.Intn(6)
		a := RandomGinibre(r, n)
		h, q := Hessenberg(a)
		if !IsUnitary(q, 1e-9) {
			t.Fatal("Hessenberg Q not unitary")
		}
		if !MulChain(q, h, Dagger(q)).EqualApprox(a, 1e-9) {
			t.Fatal("QHQ† != A")
		}
		for i := 2; i < n; i++ {
			for j := 0; j < i-1; j++ {
				if h.At(i, j) != 0 {
					t.Fatalf("H[%d][%d] = %v not zero", i, j, h.At(i, j))
				}
			}
		}
	}
}

func TestSchurRandom(t *testing.T) {
	r := rng(12)
	for trial := 0; trial < 15; trial++ {
		n := 1 + r.Intn(7)
		a := RandomGinibre(r, n)
		s, err := SchurDecompose(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !IsUnitary(s.Q, 1e-8) {
			t.Fatal("Schur Q not unitary")
		}
		if !MulChain(s.Q, s.T, Dagger(s.Q)).EqualApprox(a, 1e-8) {
			t.Fatal("QTQ† != A")
		}
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if s.T.At(i, j) != 0 {
					t.Fatal("T not upper triangular")
				}
			}
		}
	}
}

func TestSchurUnitaryInput(t *testing.T) {
	// For a unitary (normal) input the Schur form is diagonal with
	// unit-modulus eigenvalues.
	r := rng(13)
	u := RandomUnitary(r, 6)
	s, err := SchurDecompose(u)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if math.Abs(cmplx.Abs(s.T.At(i, i))-1) > 1e-8 {
			t.Fatalf("|λ| = %v, want 1", cmplx.Abs(s.T.At(i, i)))
		}
		for j := i + 1; j < 6; j++ {
			if cmplx.Abs(s.T.At(i, j)) > 1e-7 {
				t.Fatalf("normal input should give diagonal T, T[%d][%d]=%v", i, j, s.T.At(i, j))
			}
		}
	}
}

func TestEigenvaluesKnown(t *testing.T) {
	// [[2, 1], [0, 3]] has eigenvalues {2, 3}.
	a := FromRows([][]complex128{{2, 1}, {0, 3}})
	vals, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	found2, found3 := false, false
	for _, v := range vals {
		if cmplx.Abs(v-2) < 1e-9 {
			found2 = true
		}
		if cmplx.Abs(v-3) < 1e-9 {
			found3 = true
		}
	}
	if !found2 || !found3 {
		t.Fatalf("eigenvalues = %v, want {2,3}", vals)
	}
}

func TestExpmZeroAndDiagonal(t *testing.T) {
	e, err := Expm(New(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !e.EqualApprox(Identity(3), 1e-12) {
		t.Fatal("expm(0) != I")
	}
	d := New(2, 2)
	d.Set(0, 0, 1)
	d.Set(1, 1, 2i)
	e, err = Expm(d)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(e.At(0, 0)-cmplx.Exp(1)) > 1e-12 ||
		cmplx.Abs(e.At(1, 1)-cmplx.Exp(2i)) > 1e-12 {
		t.Fatalf("expm(diag) = %v", e)
	}
}

func TestExpmPauliRotation(t *testing.T) {
	// exp(−iθ/2·X) = cos(θ/2)I − i·sin(θ/2)X — the Rx gate.
	x := FromRows([][]complex128{{0, 1}, {1, 0}})
	theta := 1.234
	arg := Scale(complex(0, -theta/2), x)
	got, err := Expm(arg)
	if err != nil {
		t.Fatal(err)
	}
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	want := FromRows([][]complex128{
		{complex(c, 0), complex(0, -s)},
		{complex(0, -s), complex(c, 0)},
	})
	if !got.EqualApprox(want, 1e-12) {
		t.Fatalf("Rx via Expm:\n%vwant\n%v", got, want)
	}
}

func TestExpmLargeNormScaling(t *testing.T) {
	// Norm >> theta13 exercises the squaring phase. Compare against the
	// Hermitian path which is exact.
	r := rng(14)
	h := Scale(50, RandomHermitian(r, 4))
	viaEigen, err := ExpmHermitian(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	viaPade, err := Expm(Scale(1i, h))
	if err != nil {
		t.Fatal(err)
	}
	if !viaPade.EqualApprox(viaEigen, 1e-8) {
		t.Fatal("Padé and eigen exponentials disagree at large norm")
	}
}

func TestExpmHermitianUnitarity(t *testing.T) {
	r := rng(15)
	f := func(seed int64) bool {
		h := RandomHermitian(r, 4)
		u, err := ExpmHermitian(h, -0.7)
		if err != nil {
			return false
		}
		return IsUnitary(u, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestExpmAdditivityCommuting(t *testing.T) {
	// exp(A)·exp(B) = exp(A+B) when [A,B]=0; take A,B polynomials of one H.
	r := rng(16)
	h := RandomHermitian(r, 3)
	a := Scale(0.3i, h)
	b := Scale(0.9i, h)
	ea, err1 := Expm(a)
	eb, err2 := Expm(b)
	eab, err3 := Expm(Add(a, b))
	if err1 != nil || err2 != nil || err3 != nil {
		t.Fatal(err1, err2, err3)
	}
	if !Mul(ea, eb).EqualApprox(eab, 1e-10) {
		t.Fatal("exp(A)exp(B) != exp(A+B) for commuting A,B")
	}
}

func TestSqrtmUnitary(t *testing.T) {
	r := rng(17)
	for trial := 0; trial < 10; trial++ {
		u := RandomUnitary(r, 4)
		s, err := Sqrtm(u)
		if err != nil {
			t.Fatal(err)
		}
		if !Mul(s, s).EqualApprox(u, 1e-8) {
			t.Fatal("sqrtm(U)² != U")
		}
	}
}

func TestSqrtmPositiveDiagonal(t *testing.T) {
	d := New(2, 2)
	d.Set(0, 0, 4)
	d.Set(1, 1, 9)
	s, err := Sqrtm(d)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(s.At(0, 0)-2) > 1e-10 || cmplx.Abs(s.At(1, 1)-3) > 1e-10 {
		t.Fatalf("sqrtm(diag(4,9)) = %v", s)
	}
}

func TestSqrtmUpperTriangular(t *testing.T) {
	a := FromRows([][]complex128{{4, 2}, {0, 9}})
	s, err := Sqrtm(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Mul(s, s).EqualApprox(a, 1e-9) {
		t.Fatal("sqrtm(triangular)² != A")
	}
}

func TestMulChainAndKronChain(t *testing.T) {
	a := Identity(2)
	b := FromRows([][]complex128{{0, 1}, {1, 0}})
	if !MulChain(a, b, b).EqualApprox(a, 1e-12) {
		t.Fatal("X·X != I")
	}
	k := KronChain(Identity(2), Identity(2), Identity(2))
	if !k.Equal(Identity(8)) {
		t.Fatal("I⊗I⊗I != I8")
	}
}

func TestTransposeConj(t *testing.T) {
	a := FromRows([][]complex128{{1 + 2i, 3}, {4, 5i}})
	tr := Transpose(a)
	if tr.At(0, 1) != 4 || tr.At(1, 0) != 3 {
		t.Fatal("Transpose wrong")
	}
	cj := Conj(a)
	if cj.At(0, 0) != 1-2i {
		t.Fatal("Conj wrong")
	}
}

func TestShapePanics(t *testing.T) {
	cases := []func(){
		func() { Add(New(2, 2), New(3, 3)) },
		func() { Mul(New(2, 3), New(2, 3)) },
		func() { Trace(New(2, 3)) },
		func() { New(2, 2).At(5, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestRandomUnitaryHaarPhaseInvariance(t *testing.T) {
	// Weak statistical check: the mean of U[0][0] over many draws should be
	// close to zero if phases are fixed correctly (Mezzadri's point).
	r := rng(18)
	var mean complex128
	const draws = 300
	for i := 0; i < draws; i++ {
		mean += RandomUnitary(r, 2).At(0, 0)
	}
	mean /= draws
	if cmplx.Abs(mean) > 0.15 {
		t.Fatalf("mean U00 = %v, suspiciously far from 0 for Haar", mean)
	}
}
