package cmat

import (
	"fmt"
	"math"
	"math/cmplx"
)

// padé-13 numerator coefficients for the scaling-and-squaring matrix
// exponential (Higham, "The Scaling and Squaring Method for the Matrix
// Exponential Revisited", 2005).
var pade13 = [...]float64{
	64764752532480000, 32382376266240000, 7771770303897600,
	1187353796428800, 129060195264000, 10559470521600, 670442572800,
	33522128640, 1323241920, 40840800, 960960, 16380, 182, 1,
}

// theta13 is the 1-norm threshold below which the order-13 Padé approximant
// reaches double precision without scaling.
const theta13 = 5.371920351148152

// Expm computes the matrix exponential e^A for any square complex matrix
// using the order-13 Padé approximant with scaling and squaring.
func Expm(a *Matrix) (*Matrix, error) {
	mustSquare("Expm", a)
	n := a.Rows
	norm := OneNorm(a)
	s := 0
	if norm > theta13 {
		s = int(math.Ceil(math.Log2(norm / theta13)))
	}
	w := a
	if s > 0 {
		w = Scale(complex(math.Ldexp(1, -s), 0), a)
	}

	a2 := Mul(w, w)
	a4 := Mul(a2, a2)
	a6 := Mul(a2, a4)
	id := Identity(n)

	b := func(i int) complex128 { return complex(pade13[i], 0) }

	// U = A · (A6·(b13·A6 + b11·A4 + b9·A2) + b7·A6 + b5·A4 + b3·A2 + b1·I)
	inner := Scale(b(13), a6)
	AccumScaled(inner, b(11), a4)
	AccumScaled(inner, b(9), a2)
	u := Mul(a6, inner)
	AccumScaled(u, b(7), a6)
	AccumScaled(u, b(5), a4)
	AccumScaled(u, b(3), a2)
	AccumScaled(u, b(1), id)
	u = Mul(w, u)

	// V = A6·(b12·A6 + b10·A4 + b8·A2) + b6·A6 + b4·A4 + b2·A2 + b0·I
	inner = Scale(b(12), a6)
	AccumScaled(inner, b(10), a4)
	AccumScaled(inner, b(8), a2)
	v := Mul(a6, inner)
	AccumScaled(v, b(6), a6)
	AccumScaled(v, b(4), a4)
	AccumScaled(v, b(2), a2)
	AccumScaled(v, b(0), id)

	// r = (V − U)⁻¹ (V + U)
	r, err := Solve(Sub(v, u), Add(v, u))
	if err != nil {
		return nil, fmt.Errorf("cmat: Expm Padé solve: %w", err)
	}
	for i := 0; i < s; i++ {
		r = Mul(r, r)
	}
	return r, nil
}

// ExpmHermitian computes exp(i·t·H) for Hermitian H via spectral
// decomposition: V·diag(e^{i·t·λ})·V†. This is the fast, exactly-unitary
// path used by the GRAPE propagators, where the quantum propagator is
// exp(−i·H·dt) (pass t = −dt).
func ExpmHermitian(h *Matrix, t float64) (*Matrix, error) {
	e, err := EigenHermitian(h)
	if err != nil {
		return nil, err
	}
	return e.ApplyFunc(func(l float64) complex128 {
		return cmplx.Exp(complex(0, t*l))
	}), nil
}

// Sqrtm returns the principal square root of a square matrix via its Schur
// decomposition and the Björck–Hammarling recurrence on the triangular
// factor. For normal matrices (unitaries, Hermitians) this reduces to the
// spectral square root. Matrices with eigenvalues on the closed negative
// real axis may not have a principal root; a zero or near-cancelling
// diagonal pair yields an error.
func Sqrtm(a *Matrix) (*Matrix, error) {
	s, err := SchurDecompose(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	t := s.T
	r := New(n, n)
	for i := 0; i < n; i++ {
		r.Data[i*n+i] = cmplx.Sqrt(t.Data[i*n+i])
	}
	for off := 1; off < n; off++ {
		for i := 0; i+off < n; i++ {
			j := i + off
			sum := t.Data[i*n+j]
			for k := i + 1; k < j; k++ {
				sum -= r.Data[i*n+k] * r.Data[k*n+j]
			}
			den := r.Data[i*n+i] + r.Data[j*n+j]
			if cmplx.Abs(den) < 1e-300 {
				if cmplx.Abs(sum) < 1e-12 {
					r.Data[i*n+j] = 0
					continue
				}
				return nil, fmt.Errorf("cmat: Sqrtm: eigenvalue pair cancels (λi=%v, λj=%v)",
					t.Data[i*n+i], t.Data[j*n+j])
			}
			r.Data[i*n+j] = sum / den
		}
	}
	return MulChain(s.Q, r, Dagger(s.Q)), nil
}
