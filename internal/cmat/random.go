package cmat

import (
	"math"
	"math/cmplx"
	"math/rand"
)

// RandomGinibre returns an n×n matrix with i.i.d. standard complex Gaussian
// entries (real and imaginary parts N(0, 1/2) each, so E|z|² = 1).
func RandomGinibre(rng *rand.Rand, n int) *Matrix {
	m := New(n, n)
	s := 1 / math.Sqrt2
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64()*s, rng.NormFloat64()*s)
	}
	return m
}

// RandomHermitian returns a random n×n Hermitian matrix (GUE-style) with
// entries of order one.
func RandomHermitian(rng *rand.Rand, n int) *Matrix {
	g := RandomGinibre(rng, n)
	return Scale(0.5, Add(g, Dagger(g)))
}

// RandomUnitary returns a Haar-distributed n×n unitary matrix obtained from
// the QR decomposition of a Ginibre matrix with the standard phase fix
// (Mezzadri 2007).
func RandomUnitary(rng *rand.Rand, n int) *Matrix {
	g := RandomGinibre(rng, n)
	q, r := qrGramSchmidt(g)
	// Fix the phases so the distribution is Haar: Q ← Q·diag(r_ii/|r_ii|).
	for j := 0; j < n; j++ {
		d := r.Data[j*n+j]
		if d == 0 {
			continue
		}
		ph := d / complex(cmplx.Abs(d), 0)
		for i := 0; i < n; i++ {
			q.Data[i*n+j] *= ph
		}
	}
	return q
}

// qrGramSchmidt computes a reduced QR factorization with modified
// Gram-Schmidt. Adequate for random full-rank inputs; not exported because
// Householder-based routines elsewhere are preferred for structured work.
func qrGramSchmidt(a *Matrix) (q, r *Matrix) {
	n := a.Rows
	q = a.Clone()
	r = New(n, n)
	for j := 0; j < n; j++ {
		// Orthogonalize column j against previous columns.
		for k := 0; k < j; k++ {
			var dot complex128
			for i := 0; i < n; i++ {
				dot += cmplx.Conj(q.Data[i*n+k]) * q.Data[i*n+j]
			}
			r.Data[k*n+j] = dot
			for i := 0; i < n; i++ {
				q.Data[i*n+j] -= dot * q.Data[i*n+k]
			}
		}
		var norm float64
		for i := 0; i < n; i++ {
			norm += sqAbs(q.Data[i*n+j])
		}
		norm = math.Sqrt(norm)
		r.Data[j*n+j] = complex(norm, 0)
		if norm == 0 {
			continue
		}
		inv := complex(1/norm, 0)
		for i := 0; i < n; i++ {
			q.Data[i*n+j] *= inv
		}
	}
	return q, r
}
