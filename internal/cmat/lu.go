package cmat

import (
	"errors"
	"math/cmplx"
)

// ErrSingular is returned when a factorization or solve encounters a
// numerically singular matrix.
var ErrSingular = errors.New("cmat: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P·A = L·U, where L is
// unit lower triangular and U upper triangular, both packed into lu.
type LU struct {
	lu    *Matrix
	pivot []int // row i of the factored matrix came from row pivot[i] of A
	sign  int   // +1 or −1, parity of the permutation (for Det)
}

// Factorize computes the LU factorization of the square matrix a with
// partial (row) pivoting. It returns ErrSingular if a pivot is exactly zero.
func Factorize(a *Matrix) (*LU, error) {
	mustSquare("Factorize", a)
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	for i := range pivot {
		pivot[i] = i
	}
	sign := 1
	for col := 0; col < n; col++ {
		// Find the pivot row.
		p := col
		best := cmplx.Abs(lu.Data[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(lu.Data[r*n+col]); v > best {
				best, p = v, r
			}
		}
		if best == 0 {
			return nil, ErrSingular
		}
		if p != col {
			for j := 0; j < n; j++ {
				lu.Data[p*n+j], lu.Data[col*n+j] = lu.Data[col*n+j], lu.Data[p*n+j]
			}
			pivot[p], pivot[col] = pivot[col], pivot[p]
			sign = -sign
		}
		// Eliminate below the pivot.
		inv := 1 / lu.Data[col*n+col]
		for r := col + 1; r < n; r++ {
			f := lu.Data[r*n+col] * inv
			lu.Data[r*n+col] = f
			if f == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				lu.Data[r*n+j] -= f * lu.Data[col*n+j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// Solve returns X such that A·X = B, where A is the factored matrix.
// B may have any number of columns.
func (f *LU) Solve(b *Matrix) *Matrix {
	n := f.lu.Rows
	if b.Rows != n {
		panic("cmat: LU.Solve dimension mismatch")
	}
	nc := b.Cols
	x := New(n, nc)
	// Apply the permutation: x = P·b.
	for i := 0; i < n; i++ {
		copy(x.Data[i*nc:(i+1)*nc], b.Data[f.pivot[i]*nc:(f.pivot[i]+1)*nc])
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		for k := 0; k < i; k++ {
			l := f.lu.Data[i*n+k]
			if l == 0 {
				continue
			}
			for j := 0; j < nc; j++ {
				x.Data[i*nc+j] -= l * x.Data[k*nc+j]
			}
		}
	}
	// Back substitution with the upper triangle.
	for i := n - 1; i >= 0; i-- {
		for k := i + 1; k < n; k++ {
			u := f.lu.Data[i*n+k]
			if u == 0 {
				continue
			}
			for j := 0; j < nc; j++ {
				x.Data[i*nc+j] -= u * x.Data[k*nc+j]
			}
		}
		d := f.lu.Data[i*n+i]
		for j := 0; j < nc; j++ {
			x.Data[i*nc+j] /= d
		}
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() complex128 {
	d := complex(float64(f.sign), 0)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.Data[i*n+i]
	}
	return d
}

// Inverse returns A⁻¹ computed from an LU factorization of A.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(Identity(a.Rows)), nil
}

// Solve returns X with A·X = B using LU with partial pivoting.
func Solve(a, b *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Det returns the determinant of a.
func Det(a *Matrix) (complex128, error) {
	f, err := Factorize(a)
	if err != nil {
		if errors.Is(err, ErrSingular) {
			return 0, nil
		}
		return 0, err
	}
	return f.Det(), nil
}
