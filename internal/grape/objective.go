package grape

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"accqoc/internal/cmat"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/pulse"
)

// objective implements optimize.Objective over the flattened amplitude
// vector x[s*nc+c].
//
// All scratch state lives in a per-Compile arena allocated once in
// newObjective and reused across every optimizer call, so steady-state
// Evaluate/Gradient calls allocate nothing. The forward pass (per-segment
// eigendecompositions, propagators and cumulative products) is cached by
// input vector: when the optimizer evaluates the cost at x and then asks
// for the gradient at the same x — the accepted point of every line search
// — the propagation is not repeated. Per-segment buffers are indexed by
// segment, so the forward pass can run its independent segments on a
// bounded set of workers (Options.Parallel) with no locking and
// bit-identical results to the sequential path.
type objective struct {
	sys     *hamiltonian.System
	target  *cmat.Matrix
	dt      float64
	nSeg    int
	nCtl    int
	opts    Options
	workers int

	targetDag *cmat.Matrix

	// Per-segment arena: segment s touches only index-s buffers, keeping
	// the parallel forward pass trivially data-race-free.
	h      []*cmat.Matrix            // assembled Hamiltonian
	eigs   []*cmat.HermitianEigen    // spectral decomposition of h
	ws     []*cmat.JacobiWorkspace   // eigensolver scratch
	vDag   []*cmat.Matrix            // Dagger(eigs.Vectors), cached for the gradient
	expMu  [][]complex128            // e^{−i·dt·λ} per eigenvalue
	props  []*cmat.Matrix            // segment propagator U_s
	fwd    []*cmat.Matrix            // U_s···U_1
	bwd    []*cmat.Matrix            // U_N···U_{s+1} (gradient only)
	segScr []*cmat.Matrix            // per-segment propagator-assembly scratch

	// Sequential gradient scratch.
	left, rl, t1, m, w, t2, s2, id *cmat.Matrix

	// ctlNZ caches each control operator's nonzero structure. Drive
	// Hamiltonians are embedded Paulis — n nonzeros out of n² — so the
	// per-control gradient contraction Σ Hc[r][s]·S[r][s] is O(n) instead
	// of two dense matrix products.
	ctlNZ []sparseCtl

	// Forward-pass cache: eigs/vDag/expMu/props/fwd are valid for lastX.
	lastX    []float64
	fwdValid bool
}

// sparseCtl is one control operator in coordinate form: entry k is
// Hc[idx[k]/n][idx[k]%n] = val[k], plus idxT for the transposed walk the
// first-order trace needs.
type sparseCtl struct {
	idx  []int
	idxT []int
	val  []complex128
}

func sparsify(ctl *cmat.Matrix) sparseCtl {
	n := ctl.Rows
	var sc sparseCtl
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			v := ctl.Data[r*n+c]
			if v == 0 {
				continue
			}
			sc.idx = append(sc.idx, r*n+c)
			sc.idxT = append(sc.idxT, c*n+r)
			sc.val = append(sc.val, v)
		}
	}
	return sc
}

func newObjective(sys *hamiltonian.System, target *cmat.Matrix, duration float64, opts Options) *objective {
	n := sys.Dim
	o := &objective{
		sys:       sys,
		target:    target,
		dt:        duration / float64(opts.Segments),
		nSeg:      opts.Segments,
		nCtl:      len(sys.Controls),
		opts:      opts,
		workers:   resolveWorkers(opts.Parallel, n, opts.Segments),
		targetDag: cmat.Dagger(target),
		left:      cmat.New(n, n),
		rl:        cmat.New(n, n),
		t1:        cmat.New(n, n),
		m:         cmat.New(n, n),
		w:         cmat.New(n, n),
		t2:        cmat.New(n, n),
		s2:        cmat.New(n, n),
		id:        cmat.Identity(n),
	}
	o.ctlNZ = make([]sparseCtl, o.nCtl)
	for c, ctl := range sys.Controls {
		o.ctlNZ[c] = sparsify(ctl)
	}
	o.h = make([]*cmat.Matrix, o.nSeg)
	o.eigs = make([]*cmat.HermitianEigen, o.nSeg)
	o.ws = make([]*cmat.JacobiWorkspace, o.nSeg)
	o.vDag = make([]*cmat.Matrix, o.nSeg)
	o.expMu = make([][]complex128, o.nSeg)
	o.props = make([]*cmat.Matrix, o.nSeg)
	o.fwd = make([]*cmat.Matrix, o.nSeg)
	o.bwd = make([]*cmat.Matrix, o.nSeg)
	o.segScr = make([]*cmat.Matrix, o.nSeg)
	for s := 0; s < o.nSeg; s++ {
		o.h[s] = cmat.New(n, n)
		o.eigs[s] = cmat.NewHermitianEigen(n)
		o.ws[s] = cmat.NewJacobiWorkspace(n)
		o.vDag[s] = cmat.New(n, n)
		o.expMu[s] = make([]complex128, n)
		o.props[s] = cmat.New(n, n)
		o.fwd[s] = cmat.New(n, n)
		o.bwd[s] = cmat.New(n, n)
		o.segScr[s] = cmat.New(n, n)
	}
	o.lastX = make([]float64, o.nSeg*o.nCtl)
	return o
}

// resolveWorkers maps the Options.Parallel knob to a concrete worker count.
// 0 selects the automatic policy: parallel segments for multi-qubit systems
// (dim ≥ 4, where a segment carries enough work to pay for handoff), capped
// by GOMAXPROCS; single-qubit segments are too cheap to farm out.
func resolveWorkers(parallel, dim, segments int) int {
	w := parallel
	if w == 0 {
		if dim >= 4 {
			w = runtime.GOMAXPROCS(0)
			if w > 8 {
				w = 8
			}
		} else {
			w = 1
		}
	}
	if w < 1 {
		w = 1
	}
	if w > segments {
		w = segments
	}
	return w
}

func (o *objective) initialVector(seed *pulse.Pulse) []float64 {
	if seed == nil {
		return o.randomInit(o.opts.Seed)
	}
	x := make([]float64, o.nSeg*o.nCtl)
	rs := seed.Resample(o.nSeg, o.dt)
	rs.Clip(o.sys.MaxAmp)
	for s := 0; s < o.nSeg; s++ {
		for c := 0; c < o.nCtl && c < rs.Channels(); c++ {
			x[s*o.nCtl+c] = rs.Amps[c][s]
		}
	}
	return x
}

// randomInit draws the small deterministic random start used for cold
// starts and restart attempts; distinct seeds give independent draws on the
// same objective (and arena).
func (o *objective) randomInit(seed int64) []float64 {
	x := make([]float64, o.nSeg*o.nCtl)
	rng := rand.New(rand.NewSource(seed + 1))
	for i := range x {
		x[i] = 0.1 * o.sys.MaxAmp * (2*rng.Float64() - 1)
	}
	return x
}

func (o *objective) vectorToPulse(x []float64) *pulse.Pulse {
	p := pulse.New(o.sys.ControlNames, o.nSeg, o.dt)
	for s := 0; s < o.nSeg; s++ {
		for c := 0; c < o.nCtl; c++ {
			p.Amps[c][s] = x[s*o.nCtl+c]
		}
	}
	return p
}

// segmentForward fills segment s of the arena from x: Hamiltonian,
// eigendecomposition, e^{−i·dt·λ} values and the propagator
// U_s = V·diag(e^{−i·dt·λ})·V†.
func (o *objective) segmentForward(s int, x []float64) error {
	amps := x[s*o.nCtl : (s+1)*o.nCtl]
	// Sparse assembly: H = Drift + Σ u_c·H_c touching only the controls'
	// nonzero entries (n per embedded Pauli) instead of n² per control.
	h := o.h[s]
	h.CopyFrom(o.sys.Drift)
	for c, a := range amps {
		if a == 0 {
			continue
		}
		nz := &o.ctlNZ[c]
		ac := complex(a, 0)
		for k, idx := range nz.idx {
			h.Data[idx] += ac * nz.val[k]
		}
	}
	// Trusted solve: H is a real combination of operators Validate already
	// proved Hermitian, so the per-call Hermiticity scan is skipped.
	if err := cmat.EigenHermitianIntoTrusted(o.h[s], o.ws[s], o.eigs[s]); err != nil {
		return err
	}
	e := o.eigs[s]
	cmat.DaggerInto(o.vDag[s], e.Vectors)
	em := o.expMu[s]
	for i, l := range e.Values {
		sin, cos := math.Sincos(-o.dt * l)
		em[i] = complex(cos, sin)
	}
	n := o.sys.Dim
	v, scr := e.Vectors, o.segScr[s]
	for j := 0; j < n; j++ {
		fl := em[j]
		for i := 0; i < n; i++ {
			scr.Data[i*n+j] = v.Data[i*n+j] * fl
		}
	}
	cmat.MulInto(o.props[s], scr, o.vDag[s])
	return nil
}

// forward brings the arena's per-segment state and cumulative products up
// to date for x, reusing the previous pass when x is unchanged. Returns
// false when a segment Hamiltonian fails to diagonalize (the caller
// reports +Inf cost).
func (o *objective) forward(x []float64) bool {
	if o.fwdValid && equalVec(o.lastX, x) {
		return true
	}
	o.fwdValid = false
	if o.workers > 1 {
		var next atomic.Int64
		var failed atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < o.workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s := int(next.Add(1)) - 1
					if s >= o.nSeg || failed.Load() {
						return
					}
					if err := o.segmentForward(s, x); err != nil {
						failed.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
		if failed.Load() {
			return false
		}
	} else {
		for s := 0; s < o.nSeg; s++ {
			if err := o.segmentForward(s, x); err != nil {
				return false
			}
		}
	}
	// Cumulative products are inherently sequential: fwd[s] = U_s···U_1.
	cmat.MulInto(o.fwd[0], o.props[0], o.id)
	for s := 1; s < o.nSeg; s++ {
		cmat.MulInto(o.fwd[s], o.props[s], o.fwd[s-1])
	}
	copy(o.lastX, x)
	o.fwdValid = true
	return true
}

func equalVec(a, b []float64) bool {
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// Evaluate returns 1 − F + amplitude penalty.
func (o *objective) Evaluate(x []float64) float64 {
	if !o.forward(x) {
		return math.Inf(1)
	}
	g := cmat.TraceMulDagger(o.target, o.fwd[o.nSeg-1])
	d := float64(o.sys.Dim)
	f := (real(g)*real(g) + imag(g)*imag(g)) / (d * d)
	return 1 - f + o.ampPenalty(x, nil)
}

// Gradient computes the cost and its exact or first-order derivative.
//
// The exact path exploits trace cyclicity: with L_s = V†target·bwd[s] and
// R_s = fwd[s−1],
//
//	∂G/∂u_{s,c} = Tr(L_s · dU_s · R_s) = Tr((R_s·L_s) · dU_s)
//
// and in the eigenbasis of the segment Hamiltonian (dU = V·B_c·V† with
// B_c = Γ ∘ (V†·(−i·dt·H_c)·V)) this becomes Σᵢⱼ M[i][j]·B_c[j][i] with the
// per-segment M = V†·(R_s·L_s)·V shared across controls. Γ reuses the
// e^{μ} values already computed for the propagator.
func (o *objective) Gradient(x, grad []float64) float64 {
	n := o.sys.Dim
	d := float64(n)
	if !o.forward(x) {
		for i := range grad {
			grad[i] = 0
		}
		return math.Inf(1)
	}
	// Backward cumulative products: bwd[s] = U_{N-1}···U_{s+1}
	// (bwd[N-1] = I), 0-indexed.
	o.bwd[o.nSeg-1].SetIdentity()
	for s := o.nSeg - 1; s > 0; s-- {
		cmat.MulInto(o.bwd[s-1], o.bwd[s], o.props[s])
	}
	g := cmat.TraceMulDagger(o.target, o.fwd[o.nSeg-1])
	f := (real(g)*real(g) + imag(g)*imag(g)) / (d * d)

	firstOrder := o.opts.Gradient == GradientFirstOrder
	for s := 0; s < o.nSeg; s++ {
		cmat.MulInto(o.left, o.targetDag, o.bwd[s])
		right := o.id
		if s > 0 {
			right = o.fwd[s-1]
		}
		cmat.MulInto(o.rl, right, o.left)

		if firstOrder {
			// ∂U_s ≈ −i·dt·H_c·U_s ⇒ dG = −i·dt·Tr(U_s·RL·H_c)
			//       = −i·dt·Σₖ Hc[r_k][s_k]·T1[s_k][r_k].
			cmat.MulInto(o.t1, o.props[s], o.rl)
			for c := 0; c < o.nCtl; c++ {
				nz := &o.ctlNZ[c]
				var tr complex128
				for k, it := range nz.idxT {
					tr += o.t1.Data[it] * nz.val[k]
				}
				dG := complex(0, -o.dt) * tr
				grad[s*o.nCtl+c] = -(2 / (d * d)) * (real(g)*real(dG) + imag(g)*imag(dG))
			}
			continue
		}

		// Exact eigenbasis path, restructured so all O(n³) work is shared
		// across controls. With M = V†·(R·L)·V and
		// W[j][i] = M[i][j]·(−i·dt)·Γ[j][i],
		//
		//	dG_c = Σᵢⱼ M[i][j]·(−i·dt·Γ[j][i]·(V†·H_c·V)[j][i])
		//	     = Σᵣₛ Hc[r][s] · S[r][s],  S = conj(V)·(W·Vᵀ)
		//
		// so each control costs only its nonzero count.
		v := o.eigs[s].Vectors
		vDag := o.vDag[s]
		cmat.MulInto(o.t1, o.rl, v)
		cmat.MulInto(o.m, vDag, o.t1)
		em := o.expMu[s]
		vals := o.eigs[s].Values
		for j := 0; j < n; j++ {
			muj := -o.dt * vals[j]
			for i := 0; i < n; i++ {
				// Γ[j][i] = (e^{μj} − e^{μi})/(μj − μi) with μ = −i·dt·λ
				// purely imaginary, so the division is a cheap
				// multiply-by-(−i/y) instead of a full complex division.
				var gamma complex128
				y := muj - (-o.dt * vals[i])
				if y*y < 1e-20 {
					gamma = em[j]
				} else {
					num := em[j] - em[i]
					gamma = complex(imag(num)/y, -real(num)/y)
				}
				o.w.Data[j*n+i] = o.m.Data[i*n+j] * complex(0, -o.dt) * gamma
			}
		}
		cmat.MulABtInto(o.t2, o.w, v)      // T = W·Vᵀ
		cmat.MulConjInto(o.s2, v, o.t2)    // S = conj(V)·T
		for c := 0; c < o.nCtl; c++ {
			nz := &o.ctlNZ[c]
			var dG complex128
			for k, idx := range nz.idx {
				dG += nz.val[k] * o.s2.Data[idx]
			}
			grad[s*o.nCtl+c] = -(2 / (d * d)) * (real(g)*real(dG) + imag(g)*imag(dG))
		}
	}
	return 1 - f + o.ampPenalty(x, grad)
}

// ampPenalty adds a soft quadratic wall beyond ±MaxAmp; if grad is non-nil
// the penalty derivative is accumulated into it.
func (o *objective) ampPenalty(x []float64, grad []float64) float64 {
	w := o.opts.AmpPenaltyWeight
	umax := o.sys.MaxAmp
	var pen float64
	for i, u := range x {
		over := math.Abs(u) - umax
		if over <= 0 {
			continue
		}
		r := over / umax
		pen += w * r * r
		if grad != nil {
			g := 2 * w * r / umax
			if u < 0 {
				g = -g
			}
			grad[i] += g
		}
	}
	return pen
}
