package grape

import (
	"fmt"
	"math"

	"accqoc/internal/cmat"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/pulse"
)

// SearchOptions bounds the latency binary search (§IV-D: "binary search is
// necessary to ensure optimal latency within the target fidelity
// convergence requirement").
type SearchOptions struct {
	// MinDuration / MaxDuration bracket the search in nanoseconds.
	// Defaults: 5 ns and 2000 ns.
	MinDuration float64
	MaxDuration float64
	// Resolution stops the bisection when the bracket is this tight
	// (default 12.5 ns — half a segment at typical settings).
	Resolution float64
	// HintDuration, when positive, is a similar group's known latency.
	// The feasibility probe starts at 1.25× the hint instead of
	// MaxDuration — similar groups have similar speed limits, so this
	// skips most of the bracket. Falls back to MaxDuration when the hint
	// bracket turns out infeasible.
	HintDuration float64
}

func (o SearchOptions) withDefaults() SearchOptions {
	if o.MinDuration == 0 {
		o.MinDuration = 5
	}
	if o.MaxDuration == 0 {
		o.MaxDuration = 2000
	}
	if o.Resolution == 0 {
		o.Resolution = 12.5
	}
	return o
}

// Probe records one binary-search attempt.
type Probe struct {
	Duration   float64
	Converged  bool
	Iterations int
	Infidelity float64
}

// SearchResult is the outcome of CompileBinarySearch.
type SearchResult struct {
	Result
	Duration        float64 // minimal feasible latency found (ns)
	Probes          []Probe
	TotalIterations int // Σ iterations across probes — the compile-cost metric (§VI-G)
}

// CompileBinarySearch finds the (approximately) minimal pulse duration that
// reaches the target fidelity, then returns the pulse trained at that
// duration. Each probe warm-starts from the best pulse found so far,
// resampled to the probe's grid. A nil seed starts the first probe from
// random amplitudes.
func CompileBinarySearch(sys *hamiltonian.System, target *cmat.Matrix, opts Options, sopts SearchOptions, seed *pulse.Pulse) (*SearchResult, error) {
	opts = opts.withDefaults()
	sopts = sopts.withDefaults()
	if sopts.MinDuration <= 0 || sopts.MaxDuration < sopts.MinDuration {
		return nil, fmt.Errorf("grape: invalid search bracket [%v, %v]", sopts.MinDuration, sopts.MaxDuration)
	}

	out := &SearchResult{}
	best := seed
	var bestResult *Result
	bestDuration := math.NaN()

	try := func(d float64, o Options) (bool, error) {
		res, err := Compile(sys, target, d, o, best)
		if err != nil {
			return false, err
		}
		out.Probes = append(out.Probes, Probe{
			Duration: d, Converged: res.Converged,
			Iterations: res.Iterations, Infidelity: res.Infidelity,
		})
		out.TotalIterations += res.Iterations
		if res.Converged {
			best = res.Pulse
			bestResult = res
			bestDuration = d
		}
		return res.Converged, nil
	}

	// Establish a feasible upper bound. Only this probe uses the caller's
	// restart budget: an infeasible *interior* probe is usually a genuine
	// speed-limit violation, and restarting it would triple its cost for
	// nothing (the dominant compile-time sink otherwise).
	lo := sopts.MinDuration
	hi := sopts.MaxDuration
	probeOpts := opts
	probeOpts.Restarts = -1

	tried := false
	if h := sopts.HintDuration; h > 0 {
		// Hint-only: a similar group's latency brackets the speed limit
		// loosely, so hedge 25% above it. With a seed pulse the hint is
		// the seed's *native* duration: probing exactly there reuses the
		// waveform on an identical grid (resampling to a stretched grid
		// distorts every rotation and squanders the warm start), and a
		// seeded probe that converges does so almost immediately.
		hintHi := h * 1.25
		if seed != nil && h >= lo && h <= hi {
			// Even when h sits within Resolution of the floor: bumping a
			// seeded probe off its native grid would reintroduce the
			// stretch distortion.
			hintHi = h
		} else if hintHi < lo+sopts.Resolution {
			hintHi = lo + sopts.Resolution
		}
		if hintHi < hi {
			ok, err := try(hintHi, probeOpts)
			if err != nil {
				return nil, err
			}
			if ok {
				hi = hintHi
				tried = true
			} else {
				lo = hintHi // known infeasible; search above it
			}
		}
	}
	if !tried {
		ok, err := try(hi, opts)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("grape: target unreachable within %v ns at fidelity %v",
				hi, 1-opts.TargetInfidelity)
		}
	}

	// Bisect: invariant — hi feasible, lo infeasible (or the floor).
	for hi-lo > sopts.Resolution {
		mid := (lo + hi) / 2
		ok, err := try(mid, probeOpts)
		if err != nil {
			return nil, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	out.Result = *bestResult
	out.Duration = bestDuration
	return out, nil
}

// MinDurationHeuristic estimates a search floor from quantum-speed-limit
// style reasoning: a single-qubit group needs at least the time of a π
// rotation at full drive; a coupled pair additionally needs the π/4 ZZ
// evolution. Used by callers to tighten the bracket and save probes.
func MinDurationHeuristic(sys *hamiltonian.System) float64 {
	onePi := math.Pi / (2 * sys.MaxAmp)
	if sys.Dim <= 2 {
		return onePi / 2
	}
	// The entangling floor: J is the drift's ZZ coefficient, read from the
	// |00⟩ diagonal element.
	j := math.Abs(real(sys.Drift.At(0, 0)))
	if j == 0 {
		return onePi / 2
	}
	return math.Pi / (4 * j) * 0.5
}

// VerifyPulse recomputes the propagator of p and returns its infidelity
// against the target — an independent check used by tests and the pulse
// library loader.
func VerifyPulse(sys *hamiltonian.System, p *pulse.Pulse, target *cmat.Matrix) float64 {
	u := Propagate(sys, p)
	return 1 - Fidelity(u, target)
}
