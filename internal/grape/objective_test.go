package grape

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"accqoc/internal/cmat"
	"accqoc/internal/gate"
	"accqoc/internal/hamiltonian"
)

// refEvaluate is a straightforward per-call reference of the objective's
// cost: every matrix is freshly allocated through the public cmat API, no
// arena, no caching, no parallelism. It mirrors the objective's operation
// sequence exactly, so the workspace path must reproduce it bit for bit.
func refEvaluate(sys *hamiltonian.System, target *cmat.Matrix, dt float64, nSeg, nCtl int, ampW float64, x []float64) float64 {
	u := cmat.Identity(sys.Dim)
	amps := make([]float64, nCtl)
	for s := 0; s < nSeg; s++ {
		copy(amps, x[s*nCtl:(s+1)*nCtl])
		h := sys.Assemble(amps)
		e, err := cmat.EigenHermitian(h)
		if err != nil {
			return math.Inf(1)
		}
		step := e.ApplyFunc(func(l float64) complex128 {
			sin, cos := math.Sincos(-dt * l)
			return complex(cos, sin)
		})
		u = cmat.Mul(step, u)
	}
	g := cmat.TraceMulDagger(target, u)
	d := float64(sys.Dim)
	f := (real(g)*real(g) + imag(g)*imag(g)) / (d * d)
	return 1 - f + refPenalty(sys, ampW, x, nil)
}

// refGradient is the per-call reference of the exact-mode gradient: same
// formulas as objective.Gradient, fresh allocations throughout.
func refGradient(sys *hamiltonian.System, target *cmat.Matrix, dt float64, nSeg, nCtl int, ampW float64, x, grad []float64) float64 {
	n := sys.Dim
	d := float64(n)
	targetDag := cmat.Dagger(target)
	props := make([]*cmat.Matrix, nSeg)
	eigs := make([]*cmat.HermitianEigen, nSeg)
	vDags := make([]*cmat.Matrix, nSeg)
	expMu := make([][]complex128, nSeg)
	amps := make([]float64, nCtl)
	for s := 0; s < nSeg; s++ {
		copy(amps, x[s*nCtl:(s+1)*nCtl])
		h := sys.Assemble(amps)
		e, err := cmat.EigenHermitian(h)
		if err != nil {
			return math.Inf(1)
		}
		eigs[s] = e
		vDags[s] = cmat.Dagger(e.Vectors)
		em := make([]complex128, n)
		for i, l := range e.Values {
			sin, cos := math.Sincos(-dt * l)
			em[i] = complex(cos, sin)
		}
		expMu[s] = em
		scr := cmat.New(n, n)
		props[s] = cmat.New(n, n)
		eigs[s].ApplyFuncInto(props[s], scr, vDags[s], func(l float64) complex128 {
			sin, cos := math.Sincos(-dt * l)
			return complex(cos, sin)
		})
	}
	fwd := make([]*cmat.Matrix, nSeg)
	fwd[0] = cmat.Mul(props[0], cmat.Identity(n))
	for s := 1; s < nSeg; s++ {
		fwd[s] = cmat.Mul(props[s], fwd[s-1])
	}
	bwd := make([]*cmat.Matrix, nSeg)
	bwd[nSeg-1] = cmat.Identity(n)
	for s := nSeg - 1; s > 0; s-- {
		bwd[s-1] = cmat.Mul(bwd[s], props[s])
	}
	g := cmat.TraceMulDagger(target, fwd[nSeg-1])
	f := (real(g)*real(g) + imag(g)*imag(g)) / (d * d)

	id := cmat.Identity(n)
	for s := 0; s < nSeg; s++ {
		left := cmat.Mul(targetDag, bwd[s])
		right := id
		if s > 0 {
			right = fwd[s-1]
		}
		rl := cmat.Mul(right, left)
		v := eigs[s].Vectors
		m := cmat.Mul(vDags[s], cmat.Mul(rl, v))
		em := expMu[s]
		vals := eigs[s].Values
		w := cmat.New(n, n)
		for j := 0; j < n; j++ {
			muj := -dt * vals[j]
			for i := 0; i < n; i++ {
				var gamma complex128
				y := muj - (-dt * vals[i])
				if y*y < 1e-20 {
					gamma = em[j]
				} else {
					num := em[j] - em[i]
					gamma = complex(imag(num)/y, -real(num)/y)
				}
				w.Data[j*n+i] = m.Data[i*n+j] * complex(0, -dt) * gamma
			}
		}
		t2 := cmat.New(n, n)
		s2 := cmat.New(n, n)
		cmat.MulABtInto(t2, w, v)
		cmat.MulConjInto(s2, v, t2)
		for c := 0; c < nCtl; c++ {
			nz := sparsify(sys.Controls[c])
			var dG complex128
			for k, idx := range nz.idx {
				dG += nz.val[k] * s2.Data[idx]
			}
			grad[s*nCtl+c] = -(2 / (d * d)) * (real(g)*real(dG) + imag(g)*imag(dG))
		}
	}
	return 1 - f + refPenalty(sys, ampW, x, grad)
}

func refPenalty(sys *hamiltonian.System, w float64, x, grad []float64) float64 {
	umax := sys.MaxAmp
	var pen float64
	for i, u := range x {
		over := math.Abs(u) - umax
		if over <= 0 {
			continue
		}
		r := over / umax
		pen += w * r * r
		if grad != nil {
			g := 2 * w * r / umax
			if u < 0 {
				g = -g
			}
			grad[i] += g
		}
	}
	return pen
}

// TestWorkspacePathMatchesPerCallReference asserts that the arena-backed
// objective — buffer reuse, cached forward pass, shared Evaluate/Gradient
// propagation — produces bit-identical costs and gradients to the
// allocate-everything per-call reference, across repeated calls on a fixed
// seed.
func TestWorkspacePathMatchesPerCallReference(t *testing.T) {
	for name, setup := range map[string]struct {
		sys      *hamiltonian.System
		target   *cmat.Matrix
		duration float64
	}{
		"1q-h":  {oneQ(), gateU(t, gate.H), 60},
		"2q-cx": {twoQ(), gateU(t, gate.CX), 400},
	} {
		opts := Options{Segments: 8, Seed: 17, Parallel: -1}.withDefaults()
		obj := newObjective(setup.sys, setup.target, setup.duration, opts)
		rng := rand.New(rand.NewSource(99))
		x := obj.initialVector(nil)
		grad := make([]float64, len(x))
		refGrad := make([]float64, len(x))
		for trial := 0; trial < 4; trial++ {
			// Include an over-amplitude point so the penalty path is covered.
			if trial == 3 {
				for i := range x {
					x[i] = 2 * setup.sys.MaxAmp * (2*rng.Float64() - 1)
				}
			}
			ev := obj.Evaluate(x)
			refEv := refEvaluate(setup.sys, setup.target, obj.dt, obj.nSeg, obj.nCtl, opts.AmpPenaltyWeight, x)
			if ev != refEv {
				t.Fatalf("%s trial %d: Evaluate %v != reference %v", name, trial, ev, refEv)
			}
			// Gradient at the same x exercises the shared forward pass;
			// cost and gradient must still match the reference exactly.
			cost := obj.Gradient(x, grad)
			refCost := refGradient(setup.sys, setup.target, obj.dt, obj.nSeg, obj.nCtl, opts.AmpPenaltyWeight, x, refGrad)
			if cost != refCost {
				t.Fatalf("%s trial %d: Gradient cost %v != reference %v", name, trial, cost, refCost)
			}
			for i := range grad {
				if grad[i] != refGrad[i] {
					t.Fatalf("%s trial %d: grad[%d] = %v != reference %v", name, trial, i, grad[i], refGrad[i])
				}
			}
			for i := range x {
				x[i] += 0.001 * (2*rng.Float64() - 1)
			}
		}
	}
}

// TestParallelMatchesSequential asserts the parallel segment-propagation
// path is bit-identical to the sequential one — and, run under -race with
// GOMAXPROCS > 1 in CI, that it is data-race-free.
func TestParallelMatchesSequential(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		old := runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(old)
	}
	sys := twoQ()
	target := gateU(t, gate.CX)
	seq := Options{Segments: 16, Seed: 23, Parallel: -1}.withDefaults()
	par := seq
	par.Parallel = 4
	objSeq := newObjective(sys, target, 400, seq)
	objPar := newObjective(sys, target, 400, par)
	if objPar.workers < 2 {
		t.Fatalf("parallel objective resolved to %d workers", objPar.workers)
	}
	x := objSeq.initialVector(nil)
	gs := make([]float64, len(x))
	gp := make([]float64, len(x))
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		if es, ep := objSeq.Evaluate(x), objPar.Evaluate(x); es != ep {
			t.Fatalf("trial %d: Evaluate sequential %v != parallel %v", trial, es, ep)
		}
		cs := objSeq.Gradient(x, gs)
		cp := objPar.Gradient(x, gp)
		if cs != cp {
			t.Fatalf("trial %d: Gradient cost sequential %v != parallel %v", trial, cs, cp)
		}
		for i := range gs {
			if gs[i] != gp[i] {
				t.Fatalf("trial %d: grad[%d] sequential %v != parallel %v", trial, i, gs[i], gp[i])
			}
		}
		for i := range x {
			x[i] += 0.002 * (2*rng.Float64() - 1)
		}
	}
	// End-to-end: full compilations must land on identical results.
	rs, err := Compile(sys, target, 450, Options{Segments: 12, MaxIterations: 40, Seed: 29, Restarts: -1, Parallel: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Compile(sys, target, 450, Options{Segments: 12, MaxIterations: 40, Seed: 29, Restarts: -1, Parallel: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Infidelity != rp.Infidelity || rs.Iterations != rp.Iterations {
		t.Fatalf("compile diverged: sequential (inf %v, %d iters) vs parallel (inf %v, %d iters)",
			rs.Infidelity, rs.Iterations, rp.Infidelity, rp.Iterations)
	}
}

// TestGradientFiniteDifferenceBothModes checks both derivative formulas
// against central differences at tolerance 1e-6 on one- and two-qubit
// systems. The first-order formula is exact only in the dt→0 limit, so its
// cases use a fine grid where its O(dt) truncation error sits below the
// tolerance; the exact mode is checked at working segment lengths.
func TestGradientFiniteDifferenceBothModes(t *testing.T) {
	cases := []struct {
		name     string
		sys      *hamiltonian.System
		target   *cmat.Matrix
		duration float64
		mode     GradientMode
	}{
		{"exact-1q", oneQ(), gateU(t, gate.H), 60, GradientExact},
		{"exact-2q", twoQ(), gateU(t, gate.CX), 400, GradientExact},
		{"first-order-1q", oneQ(), gateU(t, gate.H), 0.08, GradientFirstOrder},
		{"first-order-2q", twoQ(), gateU(t, gate.CX), 0.08, GradientFirstOrder},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Segments: 8, Gradient: tc.mode, Seed: 11}.withDefaults()
			obj := newObjective(tc.sys, tc.target, tc.duration, opts)
			x := obj.initialVector(nil)
			for i := range x {
				x[i] += 0.007 * float64(i%5)
			}
			grad := make([]float64, len(x))
			obj.Gradient(x, grad)

			const h = 1e-6
			const tol = 1e-6
			xp := make([]float64, len(x))
			xm := make([]float64, len(x))
			for i := range x {
				copy(xp, x)
				copy(xm, x)
				xp[i] += h
				xm[i] -= h
				fd := (obj.Evaluate(xp) - obj.Evaluate(xm)) / (2 * h)
				if math.Abs(fd-grad[i]) > tol*(1+math.Abs(fd)) {
					t.Errorf("grad[%d] = %v, central difference %v (|Δ| = %.3g)",
						i, grad[i], fd, math.Abs(fd-grad[i]))
				}
			}
		})
	}
}

// TestRestartsReuseObjective pins the restart path behavior: restart
// initializations must be deterministic and distinct per attempt, drawn
// from the shared objective.
func TestRestartsReuseObjective(t *testing.T) {
	sys := oneQ()
	target := gateU(t, gate.H)
	opts := Options{Segments: 10, Seed: 42}.withDefaults()
	obj := newObjective(sys, target, 50, opts)
	a1 := obj.randomInit(opts.Seed + 7919)
	a2 := obj.randomInit(opts.Seed + 2*7919)
	b1 := obj.randomInit(opts.Seed + 7919)
	same, diff := true, false
	for i := range a1 {
		if a1[i] != b1[i] {
			same = false
		}
		if a1[i] != a2[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("randomInit not deterministic for equal seeds")
	}
	if !diff {
		t.Fatal("randomInit identical across attempts")
	}
	// Infeasible target in a tiny duration forces the restart loop through
	// all attempts on the one shared objective.
	res, err := Compile(twoQ(), gateU(t, gate.CX), 50,
		Options{Segments: 6, MaxIterations: 30, Seed: 13, Restarts: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("CX in 50 ns cannot converge")
	}
}
