package grape

import (
	"testing"

	"accqoc/internal/gate"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/obs"
)

// End-to-end compilation benches: the serving-path unit of work behind
// every /v1/compile cache miss. Restarts are disabled so iterations (and
// therefore work) are identical across runs; b.ReportAllocs exposes the
// steady-state allocation behavior of the evaluation core.

func benchCompile(b *testing.B, sys *hamiltonian.System, g gate.Name, duration float64, opts Options) {
	b.Helper()
	target, err := gate.Unitary(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Compile(sys, target, duration, opts, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Iterations), "iters")
	}
}

// obsHook reproduces the server's per-iteration instrumentation (a counter
// increment plus a histogram observation per accepted optimizer iteration)
// so the observed bench variants price exactly what production pays.
func obsHook() func(infidelity, stepNorm float64) {
	r := obs.NewRegistry()
	iters := r.Counter("bench_iterations_total", "bench")
	norm := r.Histogram("bench_step_norm", "bench", obs.ExponentialBuckets(1e-6, 10, 10))
	return func(infidelity, stepNorm float64) {
		iters.Inc()
		norm.Observe(stepNorm)
	}
}

func BenchmarkCompile1Q(b *testing.B) {
	sys := hamiltonian.OneQubit(hamiltonian.Config{})
	benchCompile(b, sys, gate.H, 50,
		Options{Segments: 12, TargetInfidelity: 1e-4, Seed: 3, Restarts: -1})
}

func BenchmarkCompile1QObserved(b *testing.B) {
	sys := hamiltonian.OneQubit(hamiltonian.Config{})
	benchCompile(b, sys, gate.H, 50,
		Options{Segments: 12, TargetInfidelity: 1e-4, Seed: 3, Restarts: -1, IterationHook: obsHook()})
}

func BenchmarkCompile2Q(b *testing.B) {
	sys := hamiltonian.TwoQubit(hamiltonian.Config{})
	benchCompile(b, sys, gate.CX, 500,
		Options{Segments: 32, TargetInfidelity: 1e-3, Seed: 5, MaxIterations: 400, Restarts: -1})
}

func BenchmarkCompile2QObserved(b *testing.B) {
	sys := hamiltonian.TwoQubit(hamiltonian.Config{})
	benchCompile(b, sys, gate.CX, 500,
		Options{Segments: 32, TargetInfidelity: 1e-3, Seed: 5, MaxIterations: 400, Restarts: -1, IterationHook: obsHook()})
}

// Single-call benches isolate the objective's hot loop from the optimizer.

func benchGradient(b *testing.B, sys *hamiltonian.System, g gate.Name, duration float64, segments int) {
	b.Helper()
	target, err := gate.Unitary(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{Segments: segments, Seed: 3}.withDefaults()
	obj := newObjective(sys, target, duration, opts)
	x := obj.initialVector(nil)
	grad := make([]float64, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Perturb so the shared-forward-pass cache cannot short-circuit the
		// work being measured.
		x[0] += 1e-12
		obj.Gradient(x, grad)
	}
}

func BenchmarkGradient1Q(b *testing.B) {
	benchGradient(b, hamiltonian.OneQubit(hamiltonian.Config{}), gate.H, 50, 12)
}

func BenchmarkGradient2Q(b *testing.B) {
	benchGradient(b, hamiltonian.TwoQubit(hamiltonian.Config{}), gate.CX, 500, 32)
}

// BenchmarkGradient3Q prices one objective+gradient pass at the dim-8
// scale the opt-in 3-qubit grouping policies reach: 40 segments of 8x8
// propagator chain (the tiled GEMM path in cmat). Must stay 0 allocs/op.
func BenchmarkGradient3Q(b *testing.B) {
	sys, err := hamiltonian.ForQubits(3, hamiltonian.Config{})
	if err != nil {
		b.Fatal(err)
	}
	benchGradient(b, sys, gate.CCX, 2200, 40)
}

func BenchmarkEvaluate2Q(b *testing.B) {
	target, err := gate.Unitary(gate.CX, nil)
	if err != nil {
		b.Fatal(err)
	}
	sys := hamiltonian.TwoQubit(hamiltonian.Config{})
	opts := Options{Segments: 32, Seed: 3}.withDefaults()
	obj := newObjective(sys, target, 500, opts)
	x := obj.initialVector(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x[0] += 1e-12
		obj.Evaluate(x)
	}
}
