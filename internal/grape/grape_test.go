package grape

import (
	"math"
	"testing"

	"accqoc/internal/cmat"
	"accqoc/internal/gate"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/optimize"
	"accqoc/internal/pulse"
)

func oneQ() *hamiltonian.System { return hamiltonian.OneQubit(hamiltonian.Config{}) }
func twoQ() *hamiltonian.System { return hamiltonian.TwoQubit(hamiltonian.Config{}) }

func gateU(t *testing.T, n gate.Name, params ...float64) *cmat.Matrix {
	t.Helper()
	u, err := gate.Unitary(n, params)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestFidelityBasics(t *testing.T) {
	id := cmat.Identity(2)
	x := gateU(t, gate.X)
	if f := Fidelity(id, id); math.Abs(f-1) > 1e-12 {
		t.Fatalf("F(I,I) = %v", f)
	}
	if f := Fidelity(x, id); f > 1e-12 {
		t.Fatalf("F(X,I) = %v, want 0", f)
	}
	// Global phase invariance.
	if f := Fidelity(cmat.Scale(1i, x), x); math.Abs(f-1) > 1e-12 {
		t.Fatalf("F(iX,X) = %v, want 1", f)
	}
}

func TestExactGradientMatchesFiniteDifference(t *testing.T) {
	for name, setup := range map[string]struct {
		sys      *hamiltonian.System
		target   *cmat.Matrix
		duration float64
	}{
		"1q-h":  {oneQ(), gateU(t, gate.H), 60},
		"2q-cx": {twoQ(), gateU(t, gate.CX), 400},
	} {
		opts := Options{Segments: 6, Gradient: GradientExact, Seed: 3}.withDefaults()
		obj := newObjective(setup.sys, setup.target, setup.duration, opts)
		x := obj.initialVector(nil)
		for i := range x {
			x[i] += 0.01 * float64(i%3)
		}
		grad := make([]float64, len(x))
		obj.Gradient(x, grad)

		const h = 1e-6
		for i := 0; i < len(x); i += 3 {
			xp := append([]float64(nil), x...)
			xm := append([]float64(nil), x...)
			xp[i] += h
			xm[i] -= h
			fd := (obj.Evaluate(xp) - obj.Evaluate(xm)) / (2 * h)
			if math.Abs(fd-grad[i]) > 1e-5*(1+math.Abs(fd)) {
				t.Errorf("%s: grad[%d] = %v, finite diff %v", name, i, grad[i], fd)
			}
		}
	}
}

func TestFirstOrderGradientConvergesToExact(t *testing.T) {
	// The first-order GRAPE formula has O(dt) error: halving dt should
	// roughly halve its deviation from the exact gradient.
	target := gateU(t, gate.H)
	devAt := func(segments int, duration float64) float64 {
		optsE := Options{Segments: segments, Gradient: GradientExact, Seed: 3}.withDefaults()
		optsF := optsE
		optsF.Gradient = GradientFirstOrder
		objE := newObjective(oneQ(), target, duration, optsE)
		objF := newObjective(oneQ(), target, duration, optsF)
		x := objE.initialVector(nil)
		for i := range x {
			x[i] += 0.02 * float64(i%3)
		}
		ge := make([]float64, len(x))
		gf := make([]float64, len(x))
		objE.Gradient(x, ge)
		objF.Gradient(x, gf)
		var worst float64
		for i := range ge {
			if d := math.Abs(ge[i] - gf[i]); d > worst {
				worst = d
			}
		}
		return worst
	}
	coarse := devAt(6, 60) // dt = 10 ns
	fine := devAt(6, 6)    // dt = 1 ns
	if fine >= coarse/2 {
		t.Fatalf("first-order deviation did not shrink with dt: coarse %v, fine %v", coarse, fine)
	}
	if fine > 0.05 {
		t.Fatalf("first-order gradient too far from exact at dt=1ns: %v", fine)
	}
}

func TestCompileXGate(t *testing.T) {
	res, err := Compile(oneQ(), gateU(t, gate.X), 40, Options{Segments: 12, TargetInfidelity: 1e-6, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("X gate did not converge: infidelity %v after %d iters", res.Infidelity, res.Iterations)
	}
	// Independent verification through the propagator.
	if inf := VerifyPulse(oneQ(), res.Pulse, gateU(t, gate.X)); inf > 1e-5 {
		t.Fatalf("verification infidelity %v", inf)
	}
	// Pulse respects the amplitude bound (clipped post-optimization).
	if res.Pulse.MaxAbs() > oneQ().MaxAmp+1e-12 {
		t.Fatal("pulse exceeds amplitude bound")
	}
}

func TestCompileHGateAllOptimizers(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	for _, m := range []optimize.Method{optimize.BFGS, optimize.LBFGS, optimize.ADAM} {
		opts := Options{Segments: 12, TargetInfidelity: 1e-4, Seed: 2, Method: m, MaxIterations: 4000}
		res, err := Compile(oneQ(), gateU(t, gate.H), 50, opts, nil)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !res.Converged {
			t.Errorf("%s: H gate infidelity %v after %d iters", m, res.Infidelity, res.Iterations)
		}
	}
}

func TestCompileZRotationWithoutZControl(t *testing.T) {
	// rz is reachable from {σx, σy} controls only via composite rotations —
	// a real controllability test.
	res, err := Compile(oneQ(), gateU(t, gate.RZ, 1.1), 60, Options{Segments: 16, TargetInfidelity: 1e-5, Seed: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("rz infidelity %v", res.Infidelity)
	}
}

func TestCompileCXGate(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	// CX at 500 ns: comfortably above the ≈312 ns ZZ speed limit (bounded
	// local drives push the practical limit to ≈450 ns), so it converges.
	// Two-qubit targets want ≥32 segments for reliable convergence.
	res, err := Compile(twoQ(), gateU(t, gate.CX), 500, Options{Segments: 32, TargetInfidelity: 1e-4, Seed: 5, MaxIterations: 2000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CX infidelity %v after %d iterations", res.Infidelity, res.Iterations)
	}
	if inf := VerifyPulse(twoQ(), res.Pulse, gateU(t, gate.CX)); inf > 1e-3 {
		t.Fatalf("CX verification infidelity %v", inf)
	}
}

func TestCompileTooShortFails(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	// 50 ns is far below the ZZ speed limit for CX: must NOT converge.
	res, err := Compile(twoQ(), gateU(t, gate.CX), 50, Options{Segments: 10, TargetInfidelity: 1e-4, Seed: 6, MaxIterations: 300}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("CX in 50 ns should be physically impossible")
	}
}

func TestWarmStartReducesIterations(t *testing.T) {
	// Train rz(1.0), then warm-start rz(1.1) from it: fewer iterations than
	// a cold start. This is the paper's §V-B insight in miniature.
	target1 := gateU(t, gate.RZ, 1.0)
	target2 := gateU(t, gate.RZ, 1.1)
	opts := Options{Segments: 16, TargetInfidelity: 1e-5, Seed: 7}
	first, err := Compile(oneQ(), target1, 60, opts, nil)
	if err != nil || !first.Converged {
		t.Fatalf("first: %v / %+v", err, first)
	}
	cold, err := Compile(oneQ(), target2, 60, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Compile(oneQ(), target2, 60, opts, first.Pulse)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Converged {
		t.Fatal("warm start did not converge")
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm start took %d iterations, cold %d — expected acceleration",
			warm.Iterations, cold.Iterations)
	}
}

func TestCompileValidation(t *testing.T) {
	if _, err := Compile(oneQ(), cmat.Identity(4), 10, Options{}, nil); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := Compile(oneQ(), cmat.Scale(2, cmat.Identity(2)), 10, Options{}, nil); err == nil {
		t.Fatal("non-unitary target accepted")
	}
	if _, err := Compile(oneQ(), cmat.Identity(2), -5, Options{}, nil); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestPropagateZeroPulseIsIdentity(t *testing.T) {
	p := pulse.New(oneQ().ControlNames, 8, 5)
	u := Propagate(oneQ(), p)
	if !u.EqualApprox(cmat.Identity(2), 1e-12) {
		t.Fatal("zero pulse on driftless system must be identity")
	}
}

func TestBinarySearchFindsMinimalLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	// For X the speed limit is 25 ns (π at full drive). The search should
	// land within resolution of it.
	sys := oneQ()
	res, err := CompileBinarySearch(sys, gateU(t, gate.X), Options{Segments: 12, TargetInfidelity: 1e-4, Seed: 8},
		SearchOptions{MinDuration: 5, MaxDuration: 200, Resolution: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("binary search result not converged")
	}
	if res.Duration < 24 || res.Duration > 60 {
		t.Fatalf("X latency = %v ns, want near the 25 ns speed limit", res.Duration)
	}
	if len(res.Probes) < 3 {
		t.Fatalf("expected several probes, got %d", len(res.Probes))
	}
	if res.TotalIterations <= 0 {
		t.Fatal("iteration accounting missing")
	}
}

func TestBinarySearchUnreachable(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	// CX cannot be reached in ≤ 100 ns with the default coupling.
	_, err := CompileBinarySearch(twoQ(), gateU(t, gate.CX),
		Options{Segments: 10, TargetInfidelity: 1e-4, Seed: 9, MaxIterations: 200},
		SearchOptions{MinDuration: 5, MaxDuration: 100, Resolution: 10}, nil)
	if err == nil {
		t.Fatal("expected unreachable-target error")
	}
}

func TestMinDurationHeuristic(t *testing.T) {
	if d := MinDurationHeuristic(oneQ()); d <= 0 || d > 25 {
		t.Fatalf("1q floor = %v", d)
	}
	if d := MinDurationHeuristic(twoQ()); d <= 0 || d > 312.5 {
		t.Fatalf("2q floor = %v", d)
	}
}

func TestDeterminismWithSeed(t *testing.T) {
	opts := Options{Segments: 10, TargetInfidelity: 1e-4, Seed: 11}
	r1, err1 := Compile(oneQ(), gateU(t, gate.H), 50, opts, nil)
	r2, err2 := Compile(oneQ(), gateU(t, gate.H), 50, opts, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Iterations != r2.Iterations || r1.Infidelity != r2.Infidelity {
		t.Fatal("same seed should give identical runs")
	}
}
