// Package grape implements GRAPE (GRadient Ascent Pulse Engineering,
// Khaneja et al. 2005): piecewise-constant control pulses are optimized so
// the system's time-ordered propagator reaches a target unitary. This is
// the QOC engine of the paper (§II-D, §IV-D): exact unitary propagation
// through Hermitian eigendecomposition, analytic gradients (first-order or
// exact eigenbasis Fréchet derivative), the §IV-D optimizer menu via
// package optimize, warm starts from previously trained pulses (§V-B), and
// binary search over the pulse latency (§IV-D).
package grape

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"time"

	"accqoc/internal/cmat"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/optimize"
	"accqoc/internal/pulse"
)

// GradientMode selects the derivative formula.
type GradientMode string

const (
	// GradientExact uses the eigenbasis Fréchet derivative of each segment
	// propagator — exact for any segment length. The default.
	GradientExact GradientMode = "exact"
	// GradientFirstOrder uses the classic GRAPE approximation
	// ∂U_k/∂u ≈ −i·dt·H_c·U_k, accurate for small dt.
	GradientFirstOrder GradientMode = "first-order"
)

// Options configures a compilation.
type Options struct {
	Segments         int             // piecewise-constant slices (default 24)
	Method           optimize.Method // default BFGS, the paper's choice
	MaxIterations    int             // optimizer cap (default 1000)
	TargetInfidelity float64         // stop when 1−F ≤ this (default 1e-4, the paper's cost target)
	Seed             int64           // deterministic random init
	Gradient         GradientMode    // default GradientExact
	AmpPenaltyWeight float64         // soft amplitude-bound weight (default 10)
	TimeBudget       time.Duration   // wall-clock cap per optimization (paper: 600 s per probe)
	// Restarts retries non-converged optimizations from fresh random
	// initializations (default 2; pass -1 to disable). GRAPE landscapes
	// have saddle plateaus; multi-start is the standard mitigation.
	// Iterations are summed across attempts so compile-cost accounting
	// stays honest.
	Restarts int
}

func (o Options) withDefaults() Options {
	if o.Segments == 0 {
		o.Segments = 24
	}
	if o.Method == "" {
		o.Method = optimize.BFGS
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 1000
	}
	if o.TargetInfidelity == 0 {
		o.TargetInfidelity = 1e-4
	}
	if o.Gradient == "" {
		o.Gradient = GradientExact
	}
	if o.AmpPenaltyWeight == 0 {
		o.AmpPenaltyWeight = 10
	}
	switch {
	case o.Restarts == 0:
		o.Restarts = 2
	case o.Restarts < 0:
		o.Restarts = 0
	}
	return o
}

// Result is one finished pulse optimization.
type Result struct {
	Pulse        *pulse.Pulse
	Infidelity   float64 // 1 − |Tr(V†U)|²/d²
	Iterations   int
	FuncEvals    int
	Converged    bool
	FinalUnitary *cmat.Matrix
}

// Fidelity is the phase-insensitive overlap |Tr(V†U)|²/d².
func Fidelity(u, v *cmat.Matrix) float64 {
	d := float64(u.Rows)
	g := cmat.Trace(cmat.Mul(cmat.Dagger(v), u))
	return (real(g)*real(g) + imag(g)*imag(g)) / (d * d)
}

// Compile optimizes a pulse of the given duration (ns) toward the target
// unitary. seed, when non-nil, warm-starts the optimization: it is
// resampled onto this problem's grid — the mechanism behind the paper's
// similarity-accelerated training. A nil seed starts from small
// deterministic random amplitudes.
func Compile(sys *hamiltonian.System, target *cmat.Matrix, duration float64, opts Options, seed *pulse.Pulse) (*Result, error) {
	opts = opts.withDefaults()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if target.Rows != sys.Dim || target.Cols != sys.Dim {
		return nil, fmt.Errorf("grape: target %dx%d does not match system dim %d", target.Rows, target.Cols, sys.Dim)
	}
	if !cmat.IsUnitary(target, 1e-8) {
		return nil, fmt.Errorf("grape: target is not unitary")
	}
	if duration <= 0 {
		return nil, fmt.Errorf("grape: non-positive duration %v", duration)
	}

	obj := newObjective(sys, target, duration, opts)
	var best *Result
	totalIters, totalEvals := 0, 0
	for attempt := 0; attempt <= opts.Restarts; attempt++ {
		var x0 []float64
		if attempt == 0 {
			x0 = obj.initialVector(seed)
		} else {
			// Fresh deterministic random init per restart.
			retry := opts
			retry.Seed = opts.Seed + int64(attempt)*7919
			x0 = newObjective(sys, target, duration, retry).initialVector(nil)
		}
		res, err := optimize.Minimize(opts.Method, obj, x0, optimize.Options{
			MaxIterations: opts.MaxIterations,
			TargetCost:    opts.TargetInfidelity,
			GradTol:       1e-12,
			TimeBudget:    opts.TimeBudget,
		})
		if err != nil {
			return nil, err
		}
		totalIters += res.Iterations
		totalEvals += res.FuncEvals
		p := obj.vectorToPulse(res.X)
		p.Clip(sys.MaxAmp)
		final := Propagate(sys, p)
		inf := 1 - Fidelity(final, target)
		if best == nil || inf < best.Infidelity {
			best = &Result{
				Pulse:        p,
				Infidelity:   inf,
				Converged:    inf <= opts.TargetInfidelity,
				FinalUnitary: final,
			}
		}
		if best.Converged {
			break
		}
	}
	best.Iterations = totalIters
	best.FuncEvals = totalEvals
	return best, nil
}

// Propagate computes the exact time-ordered propagator of a pulse on a
// system: U = U_N···U_1 with U_s = exp(−i·H(u_s)·dt).
func Propagate(sys *hamiltonian.System, p *pulse.Pulse) *cmat.Matrix {
	u := cmat.Identity(sys.Dim)
	amps := make([]float64, len(sys.Controls))
	for s := 0; s < p.Segments(); s++ {
		for c := range amps {
			amps[c] = p.Amps[c][s]
		}
		h := sys.Assemble(amps)
		step, err := cmat.ExpmHermitian(h, -p.Dt)
		if err != nil {
			// H is Hermitian by construction; Jacobi cannot fail on it in
			// practice. Degrade loudly rather than silently.
			panic(fmt.Sprintf("grape: propagator eigensolve failed: %v", err))
		}
		u = cmat.Mul(step, u)
	}
	return u
}

// objective implements optimize.Objective over the flattened amplitude
// vector x[s*nc+c].
type objective struct {
	sys    *hamiltonian.System
	target *cmat.Matrix
	dt     float64
	nSeg   int
	nCtl   int
	opts   Options

	targetDag *cmat.Matrix
}

func newObjective(sys *hamiltonian.System, target *cmat.Matrix, duration float64, opts Options) *objective {
	return &objective{
		sys:       sys,
		target:    target,
		dt:        duration / float64(opts.Segments),
		nSeg:      opts.Segments,
		nCtl:      len(sys.Controls),
		opts:      opts,
		targetDag: cmat.Dagger(target),
	}
}

func (o *objective) initialVector(seed *pulse.Pulse) []float64 {
	x := make([]float64, o.nSeg*o.nCtl)
	if seed != nil {
		rs := seed.Resample(o.nSeg, o.dt)
		rs.Clip(o.sys.MaxAmp)
		for s := 0; s < o.nSeg; s++ {
			for c := 0; c < o.nCtl && c < rs.Channels(); c++ {
				x[s*o.nCtl+c] = rs.Amps[c][s]
			}
		}
		return x
	}
	rng := rand.New(rand.NewSource(o.opts.Seed + 1))
	for i := range x {
		x[i] = 0.1 * o.sys.MaxAmp * (2*rng.Float64() - 1)
	}
	return x
}

func (o *objective) vectorToPulse(x []float64) *pulse.Pulse {
	p := pulse.New(o.sys.ControlNames, o.nSeg, o.dt)
	for s := 0; s < o.nSeg; s++ {
		for c := 0; c < o.nCtl; c++ {
			p.Amps[c][s] = x[s*o.nCtl+c]
		}
	}
	return p
}

// Evaluate returns 1 − F + amplitude penalty.
func (o *objective) Evaluate(x []float64) float64 {
	u := cmat.Identity(o.sys.Dim)
	amps := make([]float64, o.nCtl)
	for s := 0; s < o.nSeg; s++ {
		for c := range amps {
			amps[c] = x[s*o.nCtl+c]
		}
		h := o.sys.Assemble(amps)
		e, err := cmat.EigenHermitian(h)
		if err != nil {
			return math.Inf(1)
		}
		step := e.ApplyFunc(func(l float64) complex128 {
			return cmplx.Exp(complex(0, -o.dt*l))
		})
		u = cmat.Mul(step, u)
	}
	g := cmat.Trace(cmat.Mul(o.targetDag, u))
	d := float64(o.sys.Dim)
	f := (real(g)*real(g) + imag(g)*imag(g)) / (d * d)
	return 1 - f + o.ampPenalty(x, nil)
}

// Gradient computes the cost and its exact or first-order derivative.
//
// The exact path exploits trace cyclicity: with L_s = V†target·bwd[s] and
// R_s = fwd[s−1],
//
//	∂G/∂u_{s,c} = Tr(L_s · dU_s · R_s) = Tr((R_s·L_s) · dU_s)
//
// and in the eigenbasis of the segment Hamiltonian (dU = V·B_c·V† with
// B_c = Γ ∘ (V†·(−i·dt·H_c)·V)) this becomes Σᵢⱼ M[i][j]·B_c[j][i] with the
// per-segment M = V†·(R_s·L_s)·V shared across controls. Γ reuses the
// e^{μ} values already computed for the propagator.
func (o *objective) Gradient(x, grad []float64) float64 {
	n := o.sys.Dim
	d := float64(n)

	// Forward pass: per-segment eigendecompositions and propagators.
	props := make([]*cmat.Matrix, o.nSeg)
	eigs := make([]*cmat.HermitianEigen, o.nSeg)
	expMu := make([][]complex128, o.nSeg)
	amps := make([]float64, o.nCtl)
	for s := 0; s < o.nSeg; s++ {
		for c := range amps {
			amps[c] = x[s*o.nCtl+c]
		}
		h := o.sys.Assemble(amps)
		e, err := cmat.EigenHermitian(h)
		if err != nil {
			for i := range grad {
				grad[i] = 0
			}
			return math.Inf(1)
		}
		eigs[s] = e
		em := make([]complex128, n)
		for i, l := range e.Values {
			em[i] = cmplx.Exp(complex(0, -o.dt*l))
		}
		expMu[s] = em
		props[s] = e.ApplyFunc(func(l float64) complex128 {
			return cmplx.Exp(complex(0, -o.dt*l))
		})
	}
	// Cumulative products: fwd[s] = U_s···U_1 (fwd[-1] = I), and
	// bwd[s] = U_{N-1}···U_{s+1} (bwd[N-1] = I), 0-indexed.
	fwd := make([]*cmat.Matrix, o.nSeg)
	acc := cmat.Identity(n)
	for s := 0; s < o.nSeg; s++ {
		next := cmat.New(n, n)
		cmat.MulInto(next, props[s], acc)
		acc = next
		fwd[s] = acc
	}
	bwd := make([]*cmat.Matrix, o.nSeg)
	acc = cmat.Identity(n)
	for s := o.nSeg - 1; s >= 0; s-- {
		bwd[s] = acc
		next := cmat.New(n, n)
		cmat.MulInto(next, acc, props[s])
		acc = next
	}
	uTotal := fwd[o.nSeg-1]
	g := cmat.Trace(cmat.Mul(o.targetDag, uTotal))
	f := (real(g)*real(g) + imag(g)*imag(g)) / (d * d)

	// Scratch matrices reused across segments.
	left := cmat.New(n, n)
	rl := cmat.New(n, n)
	t1 := cmat.New(n, n)
	m := cmat.New(n, n)
	a := cmat.New(n, n)
	id := cmat.Identity(n)

	firstOrder := o.opts.Gradient == GradientFirstOrder
	for s := 0; s < o.nSeg; s++ {
		cmat.MulInto(left, o.targetDag, bwd[s])
		right := id
		if s > 0 {
			right = fwd[s-1]
		}
		cmat.MulInto(rl, right, left)

		if firstOrder {
			// ∂U_s ≈ −i·dt·H_c·U_s ⇒ dG = −i·dt·Tr(U_s·RL·H_c).
			cmat.MulInto(t1, props[s], rl)
			for c := 0; c < o.nCtl; c++ {
				hc := o.sys.Controls[c]
				var tr complex128
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						tr += t1.Data[i*n+j] * hc.Data[j*n+i]
					}
				}
				dG := complex(0, -o.dt) * tr
				grad[s*o.nCtl+c] = -(2 / (d * d)) * (real(g)*real(dG) + imag(g)*imag(dG))
			}
			continue
		}

		v := eigs[s].Vectors
		vDag := cmat.Dagger(v)
		cmat.MulInto(t1, rl, v)
		cmat.MulInto(m, vDag, t1)
		em := expMu[s]
		vals := eigs[s].Values
		for c := 0; c < o.nCtl; c++ {
			// A = V†·H_c·V.
			cmat.MulInto(t1, o.sys.Controls[c], v)
			cmat.MulInto(a, vDag, t1)
			// dG = Σᵢⱼ M[i][j] · (−i·dt·Γ[j][i]·A[j][i]).
			var dG complex128
			for j := 0; j < n; j++ {
				muj := complex(0, -o.dt*vals[j])
				for i := 0; i < n; i++ {
					var gamma complex128
					diff := muj - complex(0, -o.dt*vals[i])
					if real(diff)*real(diff)+imag(diff)*imag(diff) < 1e-20 {
						gamma = em[j]
					} else {
						gamma = (em[j] - em[i]) / diff
					}
					dG += m.Data[i*n+j] * complex(0, -o.dt) * gamma * a.Data[j*n+i]
				}
			}
			grad[s*o.nCtl+c] = -(2 / (d * d)) * (real(g)*real(dG) + imag(g)*imag(dG))
		}
	}
	return 1 - f + o.ampPenalty(x, grad)
}

// ampPenalty adds a soft quadratic wall beyond ±MaxAmp; if grad is non-nil
// the penalty derivative is accumulated into it.
func (o *objective) ampPenalty(x []float64, grad []float64) float64 {
	w := o.opts.AmpPenaltyWeight
	umax := o.sys.MaxAmp
	var pen float64
	for i, u := range x {
		over := math.Abs(u) - umax
		if over <= 0 {
			continue
		}
		r := over / umax
		pen += w * r * r
		if grad != nil {
			g := 2 * w * r / umax
			if u < 0 {
				g = -g
			}
			grad[i] += g
		}
	}
	return pen
}
