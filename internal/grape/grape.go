// Package grape implements GRAPE (GRadient Ascent Pulse Engineering,
// Khaneja et al. 2005): piecewise-constant control pulses are optimized so
// the system's time-ordered propagator reaches a target unitary. This is
// the QOC engine of the paper (§II-D, §IV-D): exact unitary propagation
// through Hermitian eigendecomposition, analytic gradients (first-order or
// exact eigenbasis Fréchet derivative), the §IV-D optimizer menu via
// package optimize, warm starts from previously trained pulses (§V-B), and
// binary search over the pulse latency (§IV-D).
//
// The evaluation core is allocation-free in steady state: each Compile owns
// an arena of per-segment buffers (see objective.go) reused across every
// optimizer call, and the independent per-segment propagations can run on a
// bounded worker set (Options.Parallel).
package grape

import (
	"fmt"
	"math"
	"time"

	"accqoc/internal/cmat"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/optimize"
	"accqoc/internal/pulse"
)

// GradientMode selects the derivative formula.
type GradientMode string

const (
	// GradientExact uses the eigenbasis Fréchet derivative of each segment
	// propagator — exact for any segment length. The default.
	GradientExact GradientMode = "exact"
	// GradientFirstOrder uses the classic GRAPE approximation
	// ∂U_k/∂u ≈ −i·dt·H_c·U_k, accurate for small dt.
	GradientFirstOrder GradientMode = "first-order"
)

// Options configures a compilation.
type Options struct {
	Segments         int             // piecewise-constant slices (default 24)
	Method           optimize.Method // default BFGS, the paper's choice
	MaxIterations    int             // optimizer cap (default 1000)
	TargetInfidelity float64         // stop when 1−F ≤ this (default 1e-4, the paper's cost target)
	Seed             int64           // deterministic random init
	Gradient         GradientMode    // default GradientExact
	AmpPenaltyWeight float64         // soft amplitude-bound weight (default 10)
	TimeBudget       time.Duration   // wall-clock cap per optimization (paper: 600 s per probe)
	// Restarts retries non-converged optimizations from fresh random
	// initializations (default 2; pass -1 to disable). GRAPE landscapes
	// have saddle plateaus; multi-start is the standard mitigation.
	// Iterations are summed across attempts so compile-cost accounting
	// stays honest.
	Restarts int
	// Parallel bounds the workers used for per-segment propagation inside
	// each objective evaluation (segments are independent; only the
	// cumulative products are sequential). 0 selects the automatic policy:
	// up to GOMAXPROCS (capped at 8) for multi-qubit systems, sequential
	// for single-qubit ones. Negative forces sequential evaluation —
	// schedulers that already parallelize across groups (precompile's
	// ParallelBuild, the serving worker pool) set this to avoid
	// oversubscription. Results are bit-identical for every setting.
	Parallel int
	// IterationHook, when set, observes every accepted optimizer iteration
	// across all restart attempts: the current infidelity (cost) and the
	// step norm ‖Δx‖₂. Observability taps it to feed convergence
	// histograms; it must be fast, allocation-free, and must not retain
	// references. Nil costs one pointer check per iteration and leaves
	// results bit-identical.
	IterationHook func(infidelity, stepNorm float64)
}

func (o Options) withDefaults() Options {
	if o.Segments == 0 {
		o.Segments = 24
	}
	if o.Method == "" {
		o.Method = optimize.BFGS
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 1000
	}
	if o.TargetInfidelity == 0 {
		o.TargetInfidelity = 1e-4
	}
	if o.Gradient == "" {
		o.Gradient = GradientExact
	}
	if o.AmpPenaltyWeight == 0 {
		o.AmpPenaltyWeight = 10
	}
	switch {
	case o.Restarts == 0:
		o.Restarts = 2
	case o.Restarts < 0:
		o.Restarts = 0
	}
	return o
}

// Result is one finished pulse optimization.
type Result struct {
	Pulse        *pulse.Pulse
	Infidelity   float64 // 1 − |Tr(V†U)|²/d²
	Iterations   int
	FuncEvals    int
	Converged    bool
	FinalUnitary *cmat.Matrix
}

// Fidelity is the phase-insensitive overlap |Tr(V†U)|²/d².
func Fidelity(u, v *cmat.Matrix) float64 {
	d := float64(u.Rows)
	g := cmat.TraceMulDagger(v, u)
	return (real(g)*real(g) + imag(g)*imag(g)) / (d * d)
}

// Compile optimizes a pulse of the given duration (ns) toward the target
// unitary. seed, when non-nil, warm-starts the optimization: it is
// resampled onto this problem's grid — the mechanism behind the paper's
// similarity-accelerated training. A nil seed starts from small
// deterministic random amplitudes.
func Compile(sys *hamiltonian.System, target *cmat.Matrix, duration float64, opts Options, seed *pulse.Pulse) (*Result, error) {
	opts = opts.withDefaults()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if target.Rows != sys.Dim || target.Cols != sys.Dim {
		return nil, fmt.Errorf("grape: target %dx%d does not match system dim %d", target.Rows, target.Cols, sys.Dim)
	}
	if !cmat.IsUnitary(target, 1e-8) {
		return nil, fmt.Errorf("grape: target is not unitary")
	}
	if duration <= 0 {
		return nil, fmt.Errorf("grape: non-positive duration %v", duration)
	}

	obj := newObjective(sys, target, duration, opts)
	var best *Result
	totalIters, totalEvals := 0, 0
	for attempt := 0; attempt <= opts.Restarts; attempt++ {
		var x0 []float64
		if attempt == 0 {
			x0 = obj.initialVector(seed)
		} else {
			// Fresh deterministic random init per restart, drawn straight
			// from the one objective (and its arena) instead of building a
			// throwaway objective per attempt.
			x0 = obj.randomInit(opts.Seed + int64(attempt)*7919)
		}
		oopts := optimize.Options{
			MaxIterations: opts.MaxIterations,
			TargetCost:    opts.TargetInfidelity,
			GradTol:       1e-12,
			TimeBudget:    opts.TimeBudget,
		}
		if opts.IterationHook != nil {
			hook := opts.IterationHook
			oopts.IterHook = func(_ int, cost, stepNorm float64) { hook(cost, stepNorm) }
		}
		res, err := optimize.Minimize(opts.Method, obj, x0, oopts)
		if err != nil {
			return nil, err
		}
		totalIters += res.Iterations
		totalEvals += res.FuncEvals
		p := obj.vectorToPulse(res.X)
		p.Clip(sys.MaxAmp)
		final := Propagate(sys, p)
		inf := 1 - Fidelity(final, target)
		if best == nil || inf < best.Infidelity {
			best = &Result{
				Pulse:        p,
				Infidelity:   inf,
				Converged:    inf <= opts.TargetInfidelity,
				FinalUnitary: final,
			}
		}
		if best.Converged {
			break
		}
	}
	best.Iterations = totalIters
	best.FuncEvals = totalEvals
	return best, nil
}

// Propagate computes the exact time-ordered propagator of a pulse on a
// system: U = U_N···U_1 with U_s = exp(−i·H(u_s)·dt).
func Propagate(sys *hamiltonian.System, p *pulse.Pulse) *cmat.Matrix {
	n := sys.Dim
	ws := cmat.NewJacobiWorkspace(n)
	eig := cmat.NewHermitianEigen(n)
	h := cmat.New(n, n)
	vDag := cmat.New(n, n)
	scr := cmat.New(n, n)
	step := cmat.New(n, n)
	tmp := cmat.New(n, n)
	u := cmat.Identity(n)
	amps := make([]float64, len(sys.Controls))
	expStep := func(l float64) complex128 {
		sin, cos := math.Sincos(-p.Dt * l)
		return complex(cos, sin)
	}
	for s := 0; s < p.Segments(); s++ {
		for c := range amps {
			amps[c] = p.Amps[c][s]
		}
		sys.AssembleInto(h, amps)
		if err := cmat.EigenHermitianInto(h, ws, eig); err != nil {
			// H is Hermitian by construction; Jacobi cannot fail on it in
			// practice. Degrade loudly rather than silently.
			panic(fmt.Sprintf("grape: propagator eigensolve failed: %v", err))
		}
		cmat.DaggerInto(vDag, eig.Vectors)
		eig.ApplyFuncInto(step, scr, vDag, expStep)
		cmat.MulInto(tmp, step, u)
		u, tmp = tmp, u
	}
	return u
}
